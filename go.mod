module parole

go 1.22
