// Ablation benchmarks for the design choices DESIGN.md calls out: each
// bench trains GENTRANSEQ on the case-study batch with one knob changed and
// reports the mean profit found (in milli-ETH) across seeds, so `go test
// -bench=Ablation` quantifies how much each mechanism contributes.
package parole_test

import (
	"math/rand"
	"testing"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/nn"
	"parole/internal/ovm"
)

// ablationConfig is the shared baseline budget.
func ablationConfig() gentranseq.Config {
	cfg := gentranseq.FastConfig()
	cfg.Episodes = 15
	cfg.MaxSteps = 50
	cfg.RL.Hidden = []int{16}
	return cfg
}

// runAblation trains across a few seeds and returns the mean improvement in
// milli-ETH.
func runAblation(b *testing.B, cfg gentranseq.Config) float64 {
	b.Helper()
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	vm := ovm.New()
	const seeds = 3
	var total float64
	for seed := int64(1); seed <= seeds; seed++ {
		res, err := gentranseq.Optimize(rand.New(rand.NewSource(seed)), vm, s.State, s.Original,
			[]chainid.Address{casestudy.IFU}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Improvement.ETHFloat() * 1000
	}
	return total / seeds
}

// BenchmarkAblationBaseline is the reference point: Table II mechanisms on.
func BenchmarkAblationBaseline(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, ablationConfig())
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationNoTargetNetwork disables the lagged target (sync cadence
// pushed past the training horizon), isolating its stabilization value.
func BenchmarkAblationNoTargetNetwork(b *testing.B) {
	cfg := ablationConfig()
	cfg.RL.TargetUpdateEvery = 1 << 30
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationNoReplay shrinks the replay memory to one batch,
// approximating online-only updates.
func BenchmarkAblationNoReplay(b *testing.B) {
	cfg := ablationConfig()
	cfg.RL.BufferSize = cfg.RL.BatchSize
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationFlatPenalty sets W=1 (no penalty amplification),
// isolating the Eq. 8 weight's contribution to avoiding bad orders.
func BenchmarkAblationFlatPenalty(b *testing.B) {
	cfg := ablationConfig()
	cfg.Env.PenaltyWeight = 1
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationNoInvalidPenalty removes the fixed penalty on orders
// that drop an originally-executable transaction.
func BenchmarkAblationNoInvalidPenalty(b *testing.B) {
	cfg := ablationConfig()
	cfg.Env.InvalidPenalty = 0
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationGreedyOnly trains with ε fixed at 0 (pure exploitation),
// the failure mode Fig. 8's ε=0 curve shows.
func BenchmarkAblationGreedyOnly(b *testing.B) {
	cfg := ablationConfig()
	cfg.RL.Epsilon.Max, cfg.RL.Epsilon.Min = 0, 0
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationDoubleDQN enables the van-Hasselt double estimator — an
// extension beyond the paper's vanilla DQN.
func BenchmarkAblationDoubleDQN(b *testing.B) {
	cfg := ablationConfig()
	cfg.RL.DoubleDQN = true
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationHuberLoss swaps the TD loss for the robust Huber loss —
// the standard DQN choice the paper's stack likely used implicitly.
func BenchmarkAblationHuberLoss(b *testing.B) {
	cfg := ablationConfig()
	cfg.RL.Loss = nn.LossHuber
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}

// BenchmarkAblationPrioritizedReplay enables proportional prioritized
// experience replay (extension; see internal/rl/per.go).
func BenchmarkAblationPrioritizedReplay(b *testing.B) {
	cfg := ablationConfig()
	cfg.RL.Prioritized = true
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = runAblation(b, cfg)
	}
	b.ReportMetric(gain, "mETH-gain")
}
