# Convenience targets for the PAROLE reproduction.

GO ?= go

.PHONY: all build test test-race test-short cover bench bench-smoke experiments experiments-full engine-smoke node-smoke scale-smoke golden-full vet fmt lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# What CI runs: formatting drift fails the build, then vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# One testing.B bench per table/figure plus hot-path micro-benches. The
# output is parsed by cmd/parole-trace bench-emit into BENCH_<date>.json —
# the regression record future runs diff against (internal/benchfmt.Compare).
bench:
	$(GO) test -bench=. -benchmem . | $(GO) run ./cmd/parole-trace bench-emit -tee

# Fast variant for CI smoke: the hot-path micro-benches at a short but
# non-trivial benchtime (1x iterations are too noisy to gate on), emitted as
# a BENCH record and then diffed against the newest committed record. The
# gate covers the candidate-evaluation path (Evaluate/Score benchmarks) and
# the scaling hot paths (IncrementalRoot/MempoolCollect); >25% ns/op growth
# fails the build (cmd/parole-trace bench-diff).
BENCH_BASELINE ?= BENCH_2026-08-08.json
bench-smoke:
	$(GO) test -bench='BenchmarkOVMExecute|BenchmarkOVMEvaluate|BenchmarkEvaluateScratch|BenchmarkObjectiveScore|BenchmarkStateRoot|BenchmarkDQNForward|BenchmarkHillClimbSolve|BenchmarkIncrementalRootUpdate|BenchmarkFullRootRebuild|BenchmarkMempoolCollect10k|BenchmarkMempoolCollectParallel10k' \
		-benchtime=0.3s -benchmem . | $(GO) run ./cmd/parole-trace bench-emit -tee -out BENCH_smoke.json
	$(GO) run ./cmd/parole-trace bench-diff -threshold 25 \
		-filter Evaluate,Score,IncrementalRoot,MempoolCollect $(BENCH_BASELINE) BENCH_smoke.json

# Regenerate every table and figure at the default (minutes-scale) budget.
experiments:
	$(GO) run ./cmd/parole-bench -out results

# The paper's full Table II budgets and grids (hours on one core).
experiments-full:
	$(GO) run ./cmd/parole-bench -full -out results-full

# A seconds-scale engine sweep over every registered experiment with a
# 4-worker pool — the CI smoke proving the deterministic runner drives all
# nine figures end to end (results land in results-smoke/).
engine-smoke:
	$(GO) run ./cmd/parole-bench -smoke -workers 4 -v -out results-smoke

# Boot the real parole-node binary on a random port, drive a 1,200-request
# burst through it with parole-load (which fails on any malformed or error
# response and on zero committed batches), then check the TSV artifact is
# well-formed. This is CI's node-smoke job; see docs/OPERATIONS.md.
NODE_SMOKE_OUT ?= results-smoke/load_smoke.tsv
node-smoke:
	$(GO) build -o results-smoke/parole-node ./cmd/parole-node
	$(GO) build -o results-smoke/parole-load ./cmd/parole-load
	@rm -f results-smoke/node.port; \
	./results-smoke/parole-node -listen 127.0.0.1:0 \
		-port-file results-smoke/node.port -interval 100ms -timeout 2m & \
	NODE_PID=$$!; \
	trap 'kill $$NODE_PID 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do [ -s results-smoke/node.port ] && break; sleep 0.1; done; \
	[ -s results-smoke/node.port ] || { echo "node never wrote its port file"; exit 1; }; \
	./results-smoke/parole-load -rpc http://$$(cat results-smoke/node.port) \
		-requests 1200 -workers 4 -min-batches 1 -out $(NODE_SMOKE_OUT) || exit 1; \
	kill $$NODE_PID 2>/dev/null; wait $$NODE_PID 2>/dev/null; \
	head -1 $(NODE_SMOKE_OUT) | grep -q '^method	requests	errors	p50_ms	p99_ms	tps$$' \
		|| { echo "malformed TSV header in $(NODE_SMOKE_OUT)"; exit 1; }; \
	grep -q '^ALL	' $(NODE_SMOKE_OUT) \
		|| { echo "missing ALL aggregate row in $(NODE_SMOKE_OUT)"; exit 1; }; \
	echo "node-smoke OK: $$(grep '^ALL	' $(NODE_SMOKE_OUT))"

# Run the N=1k scaling experiment twice — serial runner and 4 workers — and
# require the deterministic columns (everything up to the chained batch
# digest and state root; the trailing wall-clock columns vary) to match byte
# for byte. Each point also internally asserts parallel mempool collection
# equals serial and the incremental root equals a cold rebuild, so this is
# CI's end-to-end determinism gate on the batch pipeline; see docs/SCALING.md.
scale-smoke:
	$(GO) run ./cmd/parole-bench -exp scale -smoke -seed 1 -workers 1 -out results-smoke/scale-serial
	$(GO) run ./cmd/parole-bench -exp scale -smoke -seed 1 -workers 4 -out results-smoke/scale-parallel
	@cut -f1-9 results-smoke/scale-serial/scale.tsv > results-smoke/scale-serial.det.tsv; \
	cut -f1-9 results-smoke/scale-parallel/scale.tsv > results-smoke/scale-parallel.det.tsv; \
	diff -u results-smoke/scale-serial.det.tsv results-smoke/scale-parallel.det.tsv \
		|| { echo "scale-smoke: serial and parallel runs diverged"; exit 1; }; \
	echo "scale-smoke OK: $$(tail -1 results-smoke/scale-serial.det.tsv)"

# The complete golden-file suite: every experiment with a committed
# results/*.tsv counterpart is regenerated at the quick scale with a
# 4-worker pool and byte-compared (volatile columns normalized). The
# env-gated cases (fig6 search, fig9, fig11) take minutes.
golden-full:
	PAROLE_GOLDEN_FULL=1 $(GO) test -run TestGolden -v ./internal/experiment

clean:
	rm -rf results-full results-smoke
