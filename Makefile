# Convenience targets for the PAROLE reproduction.

GO ?= go

.PHONY: all build test test-race test-short cover bench bench-smoke experiments experiments-full engine-smoke node-smoke obs-smoke scale-smoke crosschain-smoke golden-full vet fmt lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# What CI runs: formatting drift fails the build, then vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# One testing.B bench per table/figure plus hot-path micro-benches. The
# output is parsed by cmd/parole-trace bench-emit into BENCH_<date>.json —
# the regression record future runs diff against (internal/benchfmt.Compare).
bench:
	$(GO) test -bench=. -benchmem . | $(GO) run ./cmd/parole-trace bench-emit -tee

# Fast variant for CI smoke: the hot-path micro-benches at a short but
# non-trivial benchtime (1x iterations are too noisy to gate on; 0.3s
# proved flaky for the sub-microsecond benches — ±30% run to run — so the
# gated run uses 1s), emitted as
# a BENCH record and then diffed against the newest committed record. The
# gate covers the candidate-evaluation path (Evaluate/Score benchmarks) and
# the scaling hot paths (IncrementalRoot/MempoolCollect/CollectDeepPool/
# StateDigest); >25% ns/op growth fails the build (cmd/parole-trace
# bench-diff).
BENCH_BASELINE ?= BENCH_2026-08-08.post.json
bench-smoke:
	$(GO) test -bench='BenchmarkOVMExecute|BenchmarkOVMEvaluate|BenchmarkEvaluateScratch|BenchmarkObjectiveScore|BenchmarkStateRoot|BenchmarkDQNForward|BenchmarkHillClimbSolve|BenchmarkIncrementalRootUpdate|BenchmarkFullRootRebuild|BenchmarkMempoolCollect10k|BenchmarkCollectDeepPool|BenchmarkCollectDeepPoolResort|BenchmarkStateDigestIncremental|BenchmarkStateDigestCold' \
		-benchtime=1s -benchmem . | $(GO) run ./cmd/parole-trace bench-emit -tee -out BENCH_smoke.json
	$(GO) run ./cmd/parole-trace bench-diff -threshold 25 \
		-filter Evaluate,Score,IncrementalRoot,MempoolCollect,CollectDeepPool,StateDigest \
		-skip Resort,Cold,Rebuild $(BENCH_BASELINE) BENCH_smoke.json

# Regenerate every table and figure at the default (minutes-scale) budget.
experiments:
	$(GO) run ./cmd/parole-bench -out results

# The paper's full Table II budgets and grids (hours on one core).
experiments-full:
	$(GO) run ./cmd/parole-bench -full -out results-full

# A seconds-scale engine sweep over every registered experiment with a
# 4-worker pool — the CI smoke proving the deterministic runner drives all
# nine figures end to end (results land in results-smoke/).
engine-smoke:
	$(GO) run ./cmd/parole-bench -smoke -workers 4 -v -out results-smoke

# Boot the real parole-node binary on a random port, drive a 1,200-request
# burst through it with parole-load (which fails on any malformed or error
# response and on zero committed batches), then check the TSV artifact is
# well-formed. This is CI's node-smoke job; see docs/OPERATIONS.md.
NODE_SMOKE_OUT ?= results-smoke/load_smoke.tsv
node-smoke:
	$(GO) build -o results-smoke/parole-node ./cmd/parole-node
	$(GO) build -o results-smoke/parole-load ./cmd/parole-load
	@rm -f results-smoke/node.port; \
	./results-smoke/parole-node -listen 127.0.0.1:0 \
		-port-file results-smoke/node.port -interval 100ms -timeout 2m & \
	NODE_PID=$$!; \
	trap 'kill $$NODE_PID 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do [ -s results-smoke/node.port ] && break; sleep 0.1; done; \
	[ -s results-smoke/node.port ] || { echo "node never wrote its port file"; exit 1; }; \
	./results-smoke/parole-load -rpc http://$$(cat results-smoke/node.port) \
		-requests 1200 -workers 4 -min-batches 1 -out $(NODE_SMOKE_OUT) || exit 1; \
	kill $$NODE_PID 2>/dev/null; wait $$NODE_PID 2>/dev/null; \
	head -1 $(NODE_SMOKE_OUT) | grep -q '^method	requests	errors	p50_ms	p99_ms	tps$$' \
		|| { echo "malformed TSV header in $(NODE_SMOKE_OUT)"; exit 1; }; \
	grep -q '^ALL	' $(NODE_SMOKE_OUT) \
		|| { echo "missing ALL aggregate row in $(NODE_SMOKE_OUT)"; exit 1; }; \
	echo "node-smoke OK: $$(grep '^ALL	' $(NODE_SMOKE_OUT))"

# Boot the real parole-node, scrape GET /metrics and /readyz while a
# parole-load burst runs, and assert the live observability surface end to
# end: the Prometheus payload parses, rpc_requests_total is present and
# increases across scrapes, the seal-latency histogram has buckets, and
# parole-top renders one refresh against the node. Artifacts (both scrapes,
# the dashboard frame) land in results-smoke/; see docs/OBSERVABILITY.md.
obs-smoke:
	$(GO) build -o results-smoke/parole-node ./cmd/parole-node
	$(GO) build -o results-smoke/parole-load ./cmd/parole-load
	$(GO) build -o results-smoke/parole-top ./cmd/parole-top
	@rm -f results-smoke/obs-node.port; \
	./results-smoke/parole-node -listen 127.0.0.1:0 \
		-port-file results-smoke/obs-node.port -interval 100ms \
		-obs-window 200ms -log-format json -timeout 2m \
		2> results-smoke/obs-node.log & \
	NODE_PID=$$!; \
	trap 'kill $$NODE_PID 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do [ -s results-smoke/obs-node.port ] && break; sleep 0.1; done; \
	[ -s results-smoke/obs-node.port ] || { echo "node never wrote its port file"; cat results-smoke/obs-node.log; exit 1; }; \
	ADDR=$$(cat results-smoke/obs-node.port); \
	for i in $$(seq 1 50); do \
		curl -fsS "http://$$ADDR/readyz" >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS "http://$$ADDR/readyz" | grep -q ok \
		|| { echo "/readyz never answered ok"; exit 1; }; \
	curl -fsS "http://$$ADDR/metrics" > results-smoke/obs-scrape1.prom \
		|| { echo "first /metrics scrape failed"; exit 1; }; \
	./results-smoke/parole-load -rpc "http://$$ADDR" \
		-requests 800 -workers 4 -min-batches 1 -out results-smoke/load_obs.tsv || exit 1; \
	sleep 0.5; \
	curl -fsS "http://$$ADDR/metrics" > results-smoke/obs-scrape2.prom \
		|| { echo "second /metrics scrape failed"; exit 1; }; \
	./results-smoke/parole-top -rpc "http://$$ADDR" -once \
		> results-smoke/obs-top.txt || { echo "parole-top -once failed"; exit 1; }; \
	kill $$NODE_PID 2>/dev/null; wait $$NODE_PID 2>/dev/null; \
	for f in results-smoke/obs-scrape1.prom results-smoke/obs-scrape2.prom; do \
		awk '!/^#/ && !/^$$/ { if (NF != 2 || $$2 !~ /^([+-]?[0-9.]+([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$$/) { print "malformed line in " FILENAME ": " $$0; exit 1 } }' $$f \
			|| exit 1; \
	done; \
	grep -q '^rpc_requests_total ' results-smoke/obs-scrape1.prom \
		|| { echo "rpc_requests_total missing from first scrape"; exit 1; }; \
	R1=$$(awk '/^rpc_requests_total /{print $$2}' results-smoke/obs-scrape1.prom); \
	R2=$$(awk '/^rpc_requests_total /{print $$2}' results-smoke/obs-scrape2.prom); \
	awk -v a="$$R1" -v b="$$R2" 'BEGIN { exit !(b > a) }' \
		|| { echo "rpc_requests_total did not increase under load ($$R1 -> $$R2)"; exit 1; }; \
	grep -q '^node_seal_time_seconds_bucket{le=' results-smoke/obs-scrape2.prom \
		|| { echo "seal-latency histogram buckets missing from scrape"; exit 1; }; \
	C=$$(awk '/^node_seal_time_seconds_count /{print $$2}' results-smoke/obs-scrape2.prom); \
	awk -v c="$$C" 'BEGIN { exit !(c > 0) }' \
		|| { echo "node_seal_time_seconds_count = $$C, want > 0"; exit 1; }; \
	grep -q '^mempool' results-smoke/obs-top.txt \
		|| { echo "parole-top frame missing mempool row"; cat results-smoke/obs-top.txt; exit 1; }; \
	grep -q 'status=ok' results-smoke/obs-top.txt \
		|| { echo "parole-top frame missing status"; cat results-smoke/obs-top.txt; exit 1; }; \
	echo "obs-smoke OK: rpc_requests_total $$R1 -> $$R2, $$(grep -c '^node_seal_time_seconds_bucket' results-smoke/obs-scrape2.prom) seal buckets"

# Run the N=1k scaling experiment three ways — serial runner, 4 workers,
# and a single-shard mempool — and require the deterministic columns
# (everything up to the chained batch digest and state root; the trailing
# wall-clock columns vary) to match byte for byte. The 1-shard run drops the
# recorded shards column (field 3) from its diff, since that is the one
# deterministic cell the override legitimately changes; everything else —
# batch count, executed/skipped, the chained batch digest, the state root —
# must be identical, pinning the pool's shard-count invariance end to end.
# Each point also internally asserts parallel mempool collection equals
# serial and the incremental root equals a cold rebuild, so this is CI's
# end-to-end determinism gate on the batch pipeline; see docs/SCALING.md.
scale-smoke:
	$(GO) run ./cmd/parole-bench -exp scale -smoke -seed 1 -workers 1 -out results-smoke/scale-serial
	$(GO) run ./cmd/parole-bench -exp scale -smoke -seed 1 -workers 4 -out results-smoke/scale-parallel
	$(GO) run ./cmd/parole-bench -exp scale -smoke -seed 1 -workers 1 -mempool-shards 1 -out results-smoke/scale-oneshard
	@cut -f1-8 results-smoke/scale-serial/scale.tsv > results-smoke/scale-serial.det.tsv; \
	cut -f1-8 results-smoke/scale-parallel/scale.tsv > results-smoke/scale-parallel.det.tsv; \
	diff -u results-smoke/scale-serial.det.tsv results-smoke/scale-parallel.det.tsv \
		|| { echo "scale-smoke: serial and parallel runs diverged"; exit 1; }; \
	cut -f1-2,4-8 results-smoke/scale-serial/scale.tsv > results-smoke/scale-serial.noshard.tsv; \
	cut -f1-2,4-8 results-smoke/scale-oneshard/scale.tsv > results-smoke/scale-oneshard.noshard.tsv; \
	diff -u results-smoke/scale-serial.noshard.tsv results-smoke/scale-oneshard.noshard.tsv \
		|| { echo "scale-smoke: 1-shard and 32-shard runs diverged"; exit 1; }; \
	echo "scale-smoke OK: $$(tail -1 results-smoke/scale-serial.det.tsv)"

# The crosschain experiment (docs/CROSSCHAIN.md) at smoke scale, run with a
# serial runner and again with a 4-worker pool. Every crosschain column is
# deterministic (profits are wei-exact, no wall-clock cells), so the two
# TSVs must match byte for byte — the multi-rollup world, the bridge, both
# cross-chain adversaries, and the cross detector all sit on the diffed
# path, making this CI's end-to-end determinism gate on the scenario
# family.
crosschain-smoke:
	$(GO) run ./cmd/parole-bench -exp crosschain -smoke -seed 1 -workers 1 -out results-smoke/crosschain-serial
	$(GO) run ./cmd/parole-bench -exp crosschain -smoke -seed 1 -workers 4 -out results-smoke/crosschain-parallel
	@diff -u results-smoke/crosschain-serial/crosschain.tsv results-smoke/crosschain-parallel/crosschain.tsv \
		|| { echo "crosschain-smoke: serial and 4-worker runs diverged"; exit 1; }; \
	echo "crosschain-smoke OK: $$(($$(wc -l < results-smoke/crosschain-serial/crosschain.tsv) - 1)) cells byte-identical"

# The complete golden-file suite: every experiment with a committed
# results/*.tsv counterpart is regenerated at the quick scale with a
# 4-worker pool and byte-compared (volatile columns normalized). The
# env-gated cases (fig6 search, fig9, fig11) take minutes.
golden-full:
	PAROLE_GOLDEN_FULL=1 $(GO) test -run TestGolden -v ./internal/experiment

clean:
	rm -rf results-full results-smoke
