# Convenience targets for the PAROLE reproduction.

GO ?= go

.PHONY: all build test test-race test-short cover bench bench-smoke experiments experiments-full engine-smoke golden-full vet fmt lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# What CI runs: formatting drift fails the build, then vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# One testing.B bench per table/figure plus hot-path micro-benches. The
# output is parsed by cmd/parole-trace bench-emit into BENCH_<date>.json —
# the regression record future runs diff against (internal/benchfmt.Compare).
bench:
	$(GO) test -bench=. -benchmem . | $(GO) run ./cmd/parole-trace bench-emit -tee

# Fast variant for CI smoke: the hot-path micro-benches at a short but
# non-trivial benchtime (1x iterations are too noisy to gate on), emitted as
# a BENCH record and then diffed against the newest committed record. The
# gate covers the candidate-evaluation path (Evaluate/Score benchmarks);
# >25% ns/op growth fails the build (cmd/parole-trace bench-diff).
BENCH_BASELINE ?= BENCH_2026-08-06.post.json
bench-smoke:
	$(GO) test -bench='BenchmarkOVMExecute|BenchmarkOVMEvaluate|BenchmarkEvaluateScratch|BenchmarkObjectiveScore|BenchmarkStateRoot|BenchmarkDQNForward|BenchmarkHillClimbSolve' \
		-benchtime=0.3s -benchmem . | $(GO) run ./cmd/parole-trace bench-emit -tee -out BENCH_smoke.json
	$(GO) run ./cmd/parole-trace bench-diff -threshold 25 \
		-filter Evaluate,Score $(BENCH_BASELINE) BENCH_smoke.json

# Regenerate every table and figure at the default (minutes-scale) budget.
experiments:
	$(GO) run ./cmd/parole-bench -out results

# The paper's full Table II budgets and grids (hours on one core).
experiments-full:
	$(GO) run ./cmd/parole-bench -full -out results-full

# A seconds-scale engine sweep over every registered experiment with a
# 4-worker pool — the CI smoke proving the deterministic runner drives all
# nine figures end to end (results land in results-smoke/).
engine-smoke:
	$(GO) run ./cmd/parole-bench -smoke -workers 4 -v -out results-smoke

# The complete golden-file suite: every experiment with a committed
# results/*.tsv counterpart is regenerated at the quick scale with a
# 4-worker pool and byte-compared (volatile columns normalized). The
# env-gated cases (fig6 search, fig9, fig11) take minutes.
golden-full:
	PAROLE_GOLDEN_FULL=1 $(GO) test -run TestGolden -v ./internal/experiment

clean:
	rm -rf results-full results-smoke
