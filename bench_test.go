// Benchmarks regenerating the paper's evaluation artifacts — one bench per
// table/figure (Table II, Table III, Fig. 5–11) plus micro-benchmarks on the
// hot paths. Each bench runs a scaled-down configuration so `go test
// -bench=.` finishes on a laptop; `cmd/parole-bench -full` produces the
// paper-budget series recorded in EXPERIMENTS.md.
//
// Custom metrics reported via b.ReportMetric carry the figure's headline
// quantity (profit in sats, reward units, solution-size mode, …) so a bench
// run doubles as a sanity check of each experiment's direction.
package parole_test

import (
	"math/rand"
	"testing"

	"parole"
	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/mempool"
	"parole/internal/ovm"
	"parole/internal/rl"
	"parole/internal/sim"
	"parole/internal/snapshot"
	"parole/internal/solver"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// tinyGen is the benchmark-scale DQN budget.
func tinyGen() gentranseq.Config {
	cfg := gentranseq.FastConfig()
	cfg.Episodes = 8
	cfg.MaxSteps = 30
	cfg.RL.Hidden = []int{16}
	return cfg
}

// BenchmarkTable2TrainingStep measures one DQN training episode under the
// Table II hyper-parameters (the unit of work behind every training figure).
func BenchmarkTable2TrainingStep(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	env, err := gentranseq.NewEnv(ovm.New(), s.State, s.Original,
		[]chainid.Address{casestudy.IFU}, gentranseq.DefaultEnvConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := rl.DefaultConfig()
	cfg.Hidden = []int{16}
	agent, err := rl.NewAgent(rand.New(rand.NewSource(1)), env.ObservationSize(), env.NumActions(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.RunEpisode(env, cfg.Epsilon.At(i), 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3TxBehavior regenerates Table III (PT behavior through the
// full rollup pipeline).
func BenchmarkTable3TxBehavior(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig5CaseStudies replays the three Fig. 5 case studies.
func BenchmarkFig5CaseStudies(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	vm := ovm.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seq := range []parole.Seq{s.Original, s.Case2, s.Case3} {
			if _, _, err := vm.WealthTrace(s.State, seq, casestudy.IFU); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6AvgProfitPerIFU regenerates a reduced Fig. 6 cell grid and
// reports the 1-IFU profit in sats.
func BenchmarkFig6AvgProfitPerIFU(b *testing.B) {
	var lastProfit float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunFig6(sim.Fig6Config{
			MempoolSizes:        []int{10, 25},
			IFUCounts:           []int{1, 2},
			AdversarialFraction: 0.10,
			Aggregators:         10,
			Trials:              1,
			Optimizer:           sim.OptimizerConfig{Kind: sim.OptHillClimb, SolverEvals: 1000},
			Seed:                int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		lastProfit = float64(rows[0].AvgProfitPerIFU.Sats())
	}
	b.ReportMetric(lastProfit, "sats/IFU@N=10")
}

// BenchmarkFig7TotalProfit regenerates a reduced Fig. 7 sweep and reports
// the 50%-adversarial total profit in sats.
func BenchmarkFig7TotalProfit(b *testing.B) {
	var lastProfit float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunFig7(sim.Fig7Config{
			AdversarialPercents: []int{10, 50},
			MempoolSizes:        []int{16},
			IFUs:                1,
			Aggregators:         10,
			Trials:              1,
			Optimizer:           sim.OptimizerConfig{Kind: sim.OptHillClimb, SolverEvals: 1000},
			Seed:                int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		lastProfit = float64(rows[len(rows)-1].TotalProfitSats)
	}
	b.ReportMetric(lastProfit, "sats@50%adv")
}

// BenchmarkFig8RewardCurves regenerates a reduced Fig. 8 (three ε curves).
func BenchmarkFig8RewardCurves(b *testing.B) {
	var lastSmoothed float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultFig8Config()
		cfg.MempoolSize = 8
		cfg.Episodes = 6
		cfg.MaxSteps = 12
		cfg.RL.Hidden = []int{16}
		cfg.Seed = int64(i + 1)
		points, err := sim.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastSmoothed = points[len(points)-1].Smoothed
	}
	b.ReportMetric(lastSmoothed, "final-movavg-reward")
}

// BenchmarkFig9SolutionSizeKDE regenerates a reduced Fig. 9 KDE.
func BenchmarkFig9SolutionSizeKDE(b *testing.B) {
	var lastMode float64
	for i := 0; i < b.N; i++ {
		curves, err := sim.RunFig9(sim.Fig9Config{
			MempoolSize: 8,
			IFUCounts:   []int{1},
			Runs:        3,
			Gen:         tinyGen(),
			CurvePoints: 20,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) > 0 {
			lastMode = curves[0].Mode
		}
	}
	b.ReportMetric(lastMode, "mode-swaps")
}

// BenchmarkFig10SnapshotImpact regenerates the Fig. 10 snapshot study.
func BenchmarkFig10SnapshotImpact(b *testing.B) {
	var arbRatio float64
	for i := 0; i < b.N; i++ {
		cfg := snapshot.DefaultStudyConfig()
		cfg.CollectionsPerCell = 10
		rows, err := snapshot.RunStudy(rand.New(rand.NewSource(int64(i+1))), cfg)
		if err != nil {
			b.Fatal(err)
		}
		var opt, arb float64
		for _, r := range rows {
			if r.Chain == snapshot.Optimism {
				opt += r.TotalProfit.ETHFloat()
			} else {
				arb += r.TotalProfit.ETHFloat()
			}
		}
		if opt > 0 {
			arbRatio = arb / opt
		}
	}
	b.ReportMetric(arbRatio, "arbitrum/optimism-profit")
}

// BenchmarkFig11SolverComparison regenerates a reduced Fig. 11 point set and
// reports the DQN-inference time share versus the solver baselines.
func BenchmarkFig11SolverComparison(b *testing.B) {
	var dqnShare float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunFig11(sim.Fig11Config{
			MempoolSizes:   []int{5, 10},
			IFUs:           1,
			Gen:            tinyGen(),
			InferenceSteps: 15,
			SolverEvals:    200,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		var dqn, total float64
		for _, r := range rows {
			total += float64(r.Duration.Microseconds())
			if r.Solver == "dqn-inference" {
				dqn += float64(r.Duration.Microseconds())
			}
		}
		if total > 0 {
			dqnShare = dqn / total
		}
	}
	b.ReportMetric(dqnShare, "dqn-time-share")
}

// ---------------------------------------------------------------------------
// Hot-path micro-benchmarks.

// BenchmarkOVMExecute measures one 8-tx sequence execution with Merkle
// roots — the full-fidelity path.
func BenchmarkOVMExecute(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	vm := ovm.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Execute(s.State, s.Original); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOVMEvaluate measures the root-free candidate-evaluation path
// GENTRANSEQ hits once per training step.
func BenchmarkOVMEvaluate(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	vm := ovm.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := vm.Evaluate(s.State, s.Original, casestudy.IFU); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateScratch measures the journaled candidate-evaluation
// path. Iterations alternate between two orders differing by one adjacent
// swap — the solver neighborhood shape — so the prefix checkpoint reverts
// and replays a realistic suffix instead of degenerating to a no-op.
func BenchmarkEvaluateScratch(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	vm := ovm.New()
	ev, err := vm.NewEvaluator(s.State)
	if err != nil {
		b.Fatal(err)
	}
	a := s.Original
	c := s.Original.Swapped(2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := a
		if i%2 == 1 {
			seq = c
		}
		if _, _, _, err := vm.EvaluateScratch(ev, seq, casestudy.IFU); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectiveScore measures one solver objective evaluation — the
// Fig. 11 unit of work (98% of solver wall-clock before the scratch path).
// Candidates alternate by an adjacent swap for the same reason as above.
func BenchmarkObjectiveScore(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	obj, err := solver.NewObjective(ovm.New(), s.State, s.Original, []chainid.Address{casestudy.IFU})
	if err != nil {
		b.Fatal(err)
	}
	a := s.Original
	c := s.Original.Swapped(2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := a
		if i%2 == 1 {
			seq = c
		}
		if _, _, err := obj.Score(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateRoot measures the Merkle commitment over the case-study
// world. With the memoized root this is the cache-hit path; the rebuild
// cost lives inside BenchmarkOVMExecute's PostRoot computation.
func BenchmarkStateRoot(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.State.Root()
	}
}

// BenchmarkDQNForward measures one Q-network forward pass at N=50 scale
// (input 400, output C(50,2)=1225).
func BenchmarkDQNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	agent, err := rl.NewAgent(rng, 400, 1225, rl.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]float64, 400)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Greedy(obs, 1225); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHillClimbSolve measures one bounded hill-climb solve on the
// case-study batch.
func BenchmarkHillClimbSolve(b *testing.B) {
	s, err := casestudy.New()
	if err != nil {
		b.Fatal(err)
	}
	vm := ovm.New()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := solver.NewObjective(vm, s.State, s.Original, []chainid.Address{casestudy.IFU})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (solver.HillClimb{}).Solve(rng, obj, solver.Budget{MaxEvaluations: 300}); err != nil {
			b.Fatal(err)
		}
	}
}

// scaleState builds a world state with n funded accounts, its incremental
// tree already built — the fixture for the incremental-root benchmarks.
func scaleState(b *testing.B, n int) *state.State {
	b.Helper()
	st := state.New()
	for i := 0; i < n; i++ {
		st.SetBalance(chainid.UserAddress(i), 1_000_000_000)
	}
	st.Root()
	return st
}

// BenchmarkIncrementalRootUpdate measures a single-leaf write plus Root() at
// 100k accounts — the per-transaction cost of keeping the commitment fresh.
// The incremental tree recomputes one root path (~17 hashes); compare
// BenchmarkFullRootRebuild for what every call used to cost.
func BenchmarkIncrementalRootUpdate(b *testing.B) {
	st := scaleState(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Credit(chainid.UserAddress(i%100_000), 1)
		_ = st.Root()
	}
}

// BenchmarkFullRootRebuild measures a cold Merkle rebuild over the same 100k
// accounts — the reference the ≥10× incremental-update claim in docs/PERF.md
// is measured against.
func BenchmarkFullRootRebuild(b *testing.B) {
	st := scaleState(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.ColdRoot()
	}
}

// scalePool fills a pool with n mints from rotating senders at colliding
// fees.
func scalePool(b *testing.B, n int) *mempool.Pool {
	b.Helper()
	p := mempool.NewWithConfig(mempool.Config{Shards: 32})
	pt := chainid.DeriveAddress("bench-pt")
	for i := 0; i < n; i++ {
		m := tx.Mint(pt, uint64(i), chainid.UserAddress(i%512)).WithFees(wei.Amount(1+i%97), 0)
		if err := p.Add(m); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

// BenchmarkMempoolCollect10k measures one serial 256-tx collection from a
// 10k-deep sharded pool (pop the persistent shard heaps through the k-way
// merge, drain the batch).
func BenchmarkMempoolCollect10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := scalePool(b, 10_000)
		b.StartTimer()
		if got := p.Collect(256); len(got) != 256 {
			b.Fatalf("collected %d", len(got))
		}
	}
}

// BenchmarkCollectDeepPool measures one 256-tx collection from a 100k-deep
// pool — the depth where the sort-per-collection design spent ~100ms sorting
// 100k entries to hand over 256. The persistent heaps make this O(B · log):
// the pool is built once and each collected batch is re-admitted off the
// clock, so the loop times nothing but heap pops and the k-way merge.
// Compare BenchmarkCollectDeepPoolResort for what the old design paid.
func BenchmarkCollectDeepPool(b *testing.B) {
	b.ReportAllocs()
	p := scalePool(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := p.Collect(256)
		if len(got) != 256 {
			b.Fatalf("collected %d", len(got))
		}
		b.StopTimer()
		if err := p.AddAll(got); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkCollectDeepPoolResort is the sort-per-collection reference at the
// same depth: one full canonical re-sort of the 100k-entry pool per batch
// (Pending takes that exact path), which is what every Collect cost before
// the persistent heaps. The ≥10× CollectDeepPool claim in docs/PERF.md is
// measured against this.
func BenchmarkCollectDeepPoolResort(b *testing.B) {
	b.ReportAllocs()
	p := scalePool(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := p.Pending()
		if len(snap) < 256 {
			b.Fatalf("pending %d", len(snap))
		}
	}
}

// scaleContract mints n tokens over rotating owners, its incremental digest
// already built — the fixture for the state-digest benchmarks.
func scaleContract(b *testing.B, n int) *token.Contract {
	b.Helper()
	c, err := token.Deploy(chainid.DeriveAddress("bench-digest"), token.Config{
		Name:         "PAROLE Token",
		Symbol:       "PT",
		MaxSupply:    uint64(2 * n),
		InitialPrice: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Mint(chainid.UserAddress(i%512), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	c.StateDigest()
	return c
}

// BenchmarkStateDigestIncremental measures one transfer plus StateDigest at
// 100k owners — the per-mutation cost of keeping the token commitment fresh.
// The incremental digest re-derives the one dirty 32-id bucket from the
// owner table and re-hashes the ~3.1k (bucket, sub-digest) pairs of the top
// level; compare BenchmarkStateDigestCold for the full per-read rebuild it
// replaces.
func BenchmarkStateDigestIncremental(b *testing.B) {
	c := scaleContract(b, 100_000)
	users := [2]chainid.Address{chainid.UserAddress(0), chainid.UserAddress(512)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Transfer(0, users[i%2], users[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
		_ = c.StateDigest()
	}
}

// BenchmarkStateDigestCold measures the from-scratch digest over the same
// 100k owners — the reference the ≥10× incremental claim in docs/PERF.md is
// measured against.
func BenchmarkStateDigestCold(b *testing.B) {
	c := scaleContract(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ColdStateDigest()
	}
}
