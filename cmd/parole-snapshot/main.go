// Command parole-snapshot generates and analyzes NFT collection snapshots —
// the Fig. 10 real-world study. It can synthesize collections, scan a
// JSON-lines snapshot file for arbitrage, or run the full chain × FT-class
// study through the experiment engine.
//
// Usage:
//
//	parole-snapshot -mode study [-full|-smoke] [-seed S] [-out DIR] [-json]
//	parole-snapshot -mode generate -chain arbitrum -ownerships 1200 [-count K]
//	parole-snapshot -mode scan -in snapshots.jsonl
//
// -mode study is the registered fig10 experiment: the default budget is 25
// collections per (chain, class) cell, -full the paper's 100, -smoke a
// seconds-scale 2. Seeds derive the same way as parole-bench (base seed +
// 30 for fig10), so `parole-snapshot -mode study -out d` and `parole-bench
// -exp fig10 -out d` write identical series. The observability flags are
// shared with the other binaries and never change the seeded outputs.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"parole/internal/cli"
	"parole/internal/experiment"
	"parole/internal/snapshot"
)

const tool = "parole-snapshot"

func main() { cli.Main(tool, run) }

func run() error {
	var obs cli.Observability
	obs.Tool = tool
	var (
		mode       = flag.String("mode", "study", "study, generate, or scan")
		chain      = flag.String("chain", "optimism", "chain for -mode generate: optimism or arbitrum")
		ownerships = flag.Int("ownerships", 1200, "ownership count for -mode generate")
		count      = flag.Int("count", 5, "collections to generate")
		full       = flag.Bool("full", false, "-mode study: the paper's budget (100 collections per cell)")
		smoke      = flag.Bool("smoke", false, "-mode study: seconds-scale smoke budget")
		out        = flag.String("out", "", "-mode study: write the TSV into this directory instead of stdout")
		jsonOut    = flag.Bool("json", false, "with -out, also write a .json mirror")
		in         = flag.String("in", "", "JSON-lines snapshot file for -mode scan")
		seed       = flag.Int64("seed", 1, "RNG seed")
	)
	obs.Register(flag.CommandLine)
	cli.SetUsage(flag.CommandLine, tool, map[string][]string{
		"registered experiments": experiment.Names(),
	}, "registered experiments")
	flag.Parse()

	obs.Start()
	defer func() {
		if _, _, err := obs.Report(); err != nil {
			fmt.Fprintln(os.Stderr, tool+": report:", err)
		}
	}()
	rng := rand.New(rand.NewSource(*seed))

	switch *mode {
	case "study":
		return runStudy(*full, *smoke, *seed, *out, *jsonOut)

	case "generate":
		var cs []*snapshot.Collection
		for i := 0; i < *count; i++ {
			c, err := snapshot.Generate(rng, snapshot.GenConfig{
				Chain:      snapshot.Chain(*chain),
				Ownerships: *ownerships,
			})
			if err != nil {
				return err
			}
			cs = append(cs, c)
		}
		return snapshot.WriteJSONL(os.Stdout, cs)

	case "scan":
		if *in == "" {
			return fmt.Errorf("-mode scan requires -in FILE")
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		cs, err := snapshot.LoadJSONL(f)
		if err != nil {
			return err
		}
		fmt.Println("address\tchain\tft_class\townerships\topportunities\ttotal_profit_eth")
		for _, c := range cs {
			ops := snapshot.ScanArbitrage(c)
			fmt.Printf("%s\t%s\t%s\t%d\t%d\t%s\n",
				c.AddressHex, c.Chain, c.Class(), c.Ownerships, len(ops), snapshot.TotalProfit(c))
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// runStudy runs the registered fig10 experiment through the engine.
func runStudy(full, smoke bool, seed int64, out string, jsonOut bool) error {
	exps, err := experiment.Select("fig10")
	if err != nil {
		return err
	}
	scale := experiment.ScaleQuick
	switch {
	case full && smoke:
		return fmt.Errorf("-full and -smoke are mutually exclusive")
	case full:
		scale = experiment.ScaleFull
	case smoke:
		scale = experiment.ScaleSmoke
	}
	cfg := experiment.Config{Seed: seed, Scale: scale}
	var em experiment.Emitter
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		em = &experiment.DirEmitter{Dir: out, JSON: jsonOut}
	} else {
		em = &experiment.StreamEmitter{W: os.Stdout}
	}
	ctx, cancel := cli.Context(0)
	defer cancel()
	runner := &experiment.Runner{}
	return runner.Run(ctx, exps, cfg, em)
}
