// Command parole-snapshot generates and analyzes NFT collection snapshots —
// the Fig. 10 real-world study. It can synthesize collections, scan a
// JSON-lines snapshot file for arbitrage, or run the full chain × FT-class
// study.
//
// Usage:
//
//	parole-snapshot -mode study [-cells K] [-seed S] [-trace PATH]
//	parole-snapshot -mode generate -chain arbitrum -ownerships 1200 [-count K]
//	parole-snapshot -mode scan -in snapshots.jsonl
//
// -trace enables the span tracer and writes a Chrome trace plus
// summary/timeline TSVs at exit (docs/TRACING.md); it does not change the
// seeded outputs.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"parole/internal/snapshot"
	"parole/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parole-snapshot:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode       = flag.String("mode", "study", "study, generate, or scan")
		chain      = flag.String("chain", "optimism", "chain for -mode generate: optimism or arbitrum")
		ownerships = flag.Int("ownerships", 1200, "ownership count for -mode generate")
		count      = flag.Int("count", 5, "collections to generate")
		cells      = flag.Int("cells", 25, "collections per (chain, class) cell for -mode study")
		in         = flag.String("in", "", "JSON-lines snapshot file for -mode scan")
		seed       = flag.Int64("seed", 1, "RNG seed")
		traceOut   = flag.String("trace", "", "enable span tracing and write a Chrome trace (plus .summary.tsv/.timeline.tsv) to this path at exit")
	)
	flag.Parse()
	if *traceOut != "" {
		trace.Default().Enable()
		defer func() {
			if _, err := trace.Default().WriteFiles(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "parole-snapshot: trace:", err)
			}
		}()
	}
	rng := rand.New(rand.NewSource(*seed))

	switch *mode {
	case "study":
		cfg := snapshot.DefaultStudyConfig()
		cfg.CollectionsPerCell = *cells
		rows, err := snapshot.RunStudy(rng, cfg)
		if err != nil {
			return err
		}
		fmt.Println("chain\tft_class\tcollections\ttotal_profit_eth\tavg_profit_eth")
		for _, row := range rows {
			fmt.Printf("%s\t%s\t%d\t%s\t%s\n",
				row.Chain, row.Class, row.Collections, row.TotalProfit, row.AvgProfit)
		}
		return nil

	case "generate":
		var cs []*snapshot.Collection
		for i := 0; i < *count; i++ {
			c, err := snapshot.Generate(rng, snapshot.GenConfig{
				Chain:      snapshot.Chain(*chain),
				Ownerships: *ownerships,
			})
			if err != nil {
				return err
			}
			cs = append(cs, c)
		}
		return snapshot.WriteJSONL(os.Stdout, cs)

	case "scan":
		if *in == "" {
			return fmt.Errorf("-mode scan requires -in FILE")
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		cs, err := snapshot.LoadJSONL(f)
		if err != nil {
			return err
		}
		fmt.Println("address\tchain\tft_class\townerships\topportunities\ttotal_profit_eth")
		for _, c := range cs {
			ops := snapshot.ScanArbitrage(c)
			fmt.Printf("%s\t%s\t%s\t%d\t%d\t%s\n",
				c.AddressHex, c.Chain, c.Class(), c.Ownerships, len(ops), snapshot.TotalProfit(c))
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}
