// Command parole-load drives sustained JSON-RPC traffic against a running
// parole-node and publishes per-method p50/p99 latency and sustained TPS as
// a results/load_*.tsv artifact.
//
// Usage:
//
//	parole-load -rpc URL [-requests N] [-workers W] [-rps R]
//	            [-users N] [-collections C] [-read-fraction F] [-seed S]
//	            [-out PATH] [-min-batches N] [-timeout D]
//
// The write mix replays synthetic user populations derived from
// internal/snapshot collection histories (see internal/load); the read mix
// rotates over the node's query surface. The schedule is a pure function of
// -seed. The target collection is discovered from the node via
// parole_tokens, and -users must not exceed the node's funded genesis
// population (parole-node -users).
//
// The run fails (non-zero exit) when any response is malformed or any
// request draws a JSON-RPC error, and when the node reports fewer than
// -min-batches committed batches afterwards — the assertions CI's
// node-smoke job relies on. See docs/OPERATIONS.md for how to read the
// artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parole/internal/chainid"
	"parole/internal/cli"
	"parole/internal/load"
	"parole/internal/rpc"
)

const tool = "parole-load"

func main() { cli.Main(tool, run) }

func run() error {
	var (
		url          = flag.String("rpc", "", "parole-node endpoint URL (required), e.g. http://127.0.0.1:8547")
		requests     = flag.Int("requests", 1000, "total RPC requests to issue")
		workers      = flag.Int("workers", 4, "concurrent request workers")
		rps          = flag.Float64("rps", 0, "aggregate request rate limit (0 = unthrottled)")
		users        = flag.Int("users", 20, "synthetic user population size (must be funded on the node)")
		collections  = flag.Int("collections", 6, "snapshot collection histories driving the write mix")
		readFraction = flag.Float64("read-fraction", 0.4, "share of requests that are reads, in [0,1)")
		seed         = flag.Int64("seed", 1, "schedule derivation seed")
		out          = flag.String("out", "", "write the latency/TPS report TSV to this path (e.g. results/load_run.tsv)")
		minBatches   = flag.Int64("min-batches", 1, "fail unless the node reports at least this many committed batches after the run")
		timeout      = flag.Duration("timeout", 2*time.Minute, "abort the run after this duration (0 = none)")
	)
	flag.Parse()
	if *url == "" {
		return fmt.Errorf("-rpc is required (the parole-node endpoint URL)")
	}

	ctx, cancel := cli.Context(*timeout)
	defer cancel()
	client := rpc.NewClient(*url)

	// Discover the target collection from the node.
	var tokens []string
	if err := client.Call(ctx, "parole_tokens", &tokens); err != nil {
		return fmt.Errorf("discover collection: %w", err)
	}
	if len(tokens) == 0 {
		return fmt.Errorf("node at %s has no deployed collection", *url)
	}

	userHex := make([]string, *users)
	for k := range userHex {
		userHex[k] = chainid.UserAddress(k).Hex()
	}
	cfg := load.Config{
		Requests:     *requests,
		Workers:      *workers,
		RPS:          *rps,
		Users:        *users,
		Collections:  *collections,
		ReadFraction: *readFraction,
		Seed:         *seed,
	}
	schedule, err := load.BuildSchedule(cfg, tokens[0], userHex)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "%s: %d requests against %s (%d workers, rps %s, seed %d, collection %s)\n",
		tool, len(schedule), *url, *workers, rpsLabel(*rps), *seed, tokens[0])
	res, err := load.Run(ctx, client, schedule, *workers, *rps)
	if err != nil {
		return err
	}

	rows, err := load.Aggregate(res)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := load.WriteTSV(*out, rows); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s\n", tool, *out)
	} else {
		fmt.Print(load.FormatTSV(rows))
	}
	overall := rows[len(rows)-1]
	fmt.Fprintf(os.Stderr, "%s: %d requests in %s — p50 %.3fms, p99 %.3fms, %.1f req/s sustained\n",
		tool, res.Requests, res.Wall.Round(time.Millisecond), overall.P50, overall.P99, overall.TPS)

	// Acceptance assertions: every response well-formed and error-free,
	// and the node actually committed batches under the load.
	if res.Malformed > 0 {
		return fmt.Errorf("%d malformed responses", res.Malformed)
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d JSON-RPC error responses", res.Errors)
	}
	var batches uint64
	if err := client.Call(ctx, "parole_batchCount", &batches); err != nil {
		return fmt.Errorf("query batch count: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%s: node committed %d batches\n", tool, batches)
	if int64(batches) < *minBatches {
		return fmt.Errorf("node committed %d batches, want at least %d", batches, *minBatches)
	}
	return nil
}

// rpsLabel renders the -rps flag for the run banner.
func rpsLabel(rps float64) string {
	if rps <= 0 {
		return "unthrottled"
	}
	return fmt.Sprintf("%.0f", rps)
}
