// Command parole-trace inspects the Chrome trace-event files the -trace flag
// of the PAROLE binaries writes, and emits benchmark-regression records.
//
// Usage:
//
//	parole-trace summary FILE           per-kind span aggregate (TSV)
//	parole-trace timeline FILE          per-transaction lifecycle events (TSV)
//	parole-trace diff OLD NEW           per-kind time deltas between two traces
//	parole-trace bench-emit [-out FILE] [-tee] [-date YYYY-MM-DD]
//	parole-trace bench-diff [-threshold PCT] [-filter SUBSTR] [-skip SUBSTR] OLD.json NEW.json
//
// summary and timeline recompute the TSV artifacts from the trace JSON alone,
// so a trace copied off another machine (or out of CI) stays inspectable
// without its sibling .summary.tsv/.timeline.tsv files.
//
// bench-emit reads `go test -bench -benchmem` output on stdin, parses every
// benchmark line (including custom ReportMetric units), and writes
// BENCH_<date>.json — the record `make bench` diffs future runs against.
// -tee echoes stdin through to stdout so the benchmark text stays visible in
// a pipeline.
//
// bench-diff compares two such records benchmark by benchmark and exits
// nonzero if any ns/op grew by more than -threshold percent (default 25):
// the CI regression gate. NEW may also be raw `go test -bench` text, so
// `go test -bench . | parole-trace bench-emit -tee | …` pipelines and ad-hoc
// checks against a fresh run both work without an intermediate file.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"parole/internal/benchfmt"
	"parole/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parole-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: parole-trace summary|timeline|diff|bench-emit …")
	}
	switch cmd := args[0]; cmd {
	case "summary", "timeline":
		if len(args) != 2 {
			return fmt.Errorf("usage: parole-trace %s FILE", cmd)
		}
		p, err := load(args[1])
		if err != nil {
			return err
		}
		if cmd == "summary" {
			return p.WriteSummaryTSV(os.Stdout)
		}
		return p.WriteTimelineTSV(os.Stdout)

	case "diff":
		if len(args) != 3 {
			return fmt.Errorf("usage: parole-trace diff OLD NEW")
		}
		return diff(args[1], args[2])

	case "bench-emit":
		return benchEmit(args[1:])

	case "bench-diff":
		return benchDiff(args[1:])

	default:
		return fmt.Errorf("unknown subcommand %q (want summary, timeline, diff, bench-emit, or bench-diff)", cmd)
	}
}

func load(path string) (*trace.Parsed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := trace.ParseChrome(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// diff joins the two traces' per-kind summaries and prints count and total
// self-time deltas, kinds sorted lexically like the summary TSV. Kinds
// present in only one trace show with a count of 0 on the other side.
func diff(oldPath, newPath string) error {
	oldP, err := load(oldPath)
	if err != nil {
		return err
	}
	newP, err := load(newPath)
	if err != nil {
		return err
	}
	oldSums := bySummaryKind(oldP.Summary())
	newSums := bySummaryKind(newP.Summary())
	kinds := map[string]bool{}
	for k := range oldSums {
		kinds[k] = true
	}
	for k := range newSums {
		kinds[k] = true
	}
	ordered := make([]string, 0, len(kinds))
	for k := range kinds {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)

	fmt.Println("kind\told_count\tnew_count\told_total_us\tnew_total_us\ttotal_ratio")
	for _, k := range ordered {
		o, n := oldSums[k], newSums[k]
		oldUS := float64(o.Total.Nanoseconds()) / 1e3
		newUS := float64(n.Total.Nanoseconds()) / 1e3
		ratio := "n/a"
		if oldUS > 0 {
			ratio = fmt.Sprintf("%.3f", newUS/oldUS)
		}
		fmt.Printf("%s\t%d\t%d\t%.1f\t%.1f\t%s\n", k, o.Count, n.Count, oldUS, newUS, ratio)
	}
	return nil
}

func bySummaryKind(sums []trace.KindSummary) map[string]trace.KindSummary {
	out := make(map[string]trace.KindSummary, len(sums))
	for _, s := range sums {
		out[s.Kind] = s
	}
	return out
}

func benchEmit(args []string) error {
	fs := flag.NewFlagSet("bench-emit", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default BENCH_<date>.json in the working directory)")
	tee := fs.Bool("tee", false, "echo stdin through to stdout")
	date := fs.String("date", "", "date stamp YYYY-MM-DD (default today, UTC)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", *date)
	}

	var in io.Reader = os.Stdin
	if *tee {
		in = io.TeeReader(os.Stdin, os.Stdout)
	}
	rep, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("bench-emit: no benchmark lines on stdin")
	}
	rep.Date = *date

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "bench-emit: wrote %d benchmarks to %s\n", len(rep.Results), *out)
	return nil
}

// benchDiff is the CI regression gate: it joins two benchmark records by
// name, prints every delta, and fails if any ns/op ratio exceeds the
// threshold. Speedups never fail the gate — a faster benchmark is a reason
// to refresh the committed record, not to block a build.
func benchDiff(args []string) error {
	fs := flag.NewFlagSet("bench-diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 25, "max allowed ns/op regression in percent before exiting nonzero")
	filter := fs.String("filter", "", "only compare benchmarks whose name contains one of these comma-separated substrings")
	skip := fs.String("skip", "", "exclude benchmarks whose name contains one of these comma-separated substrings (applied after -filter; for cold-reference yardsticks that are recorded but too slow-iterating to gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: parole-trace bench-diff [-threshold PCT] [-filter SUBSTR] [-skip SUBSTR] OLD.json NEW.json")
	}
	if *threshold < 0 {
		return fmt.Errorf("bench-diff: negative threshold %v", *threshold)
	}
	oldRep, err := loadBenchReport(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(fs.Arg(1))
	if err != nil {
		return err
	}

	deltas := benchfmt.Compare(oldRep, newRep)
	if *filter != "" {
		subs := strings.Split(*filter, ",")
		kept := deltas[:0]
		for _, d := range deltas {
			for _, sub := range subs {
				if sub != "" && strings.Contains(d.Name, sub) {
					kept = append(kept, d)
					break
				}
			}
		}
		deltas = kept
	}
	if *skip != "" {
		subs := strings.Split(*skip, ",")
		kept := deltas[:0]
		for _, d := range deltas {
			skipped := false
			for _, sub := range subs {
				if sub != "" && strings.Contains(d.Name, sub) {
					skipped = true
					break
				}
			}
			if !skipped {
				kept = append(kept, d)
			}
		}
		deltas = kept
	}
	if len(deltas) == 0 {
		return fmt.Errorf("bench-diff: no benchmarks in common between %s and %s", fs.Arg(0), fs.Arg(1))
	}

	limit := 1 + *threshold/100
	failed := 0
	fmt.Println("benchmark\told_ns_op\tnew_ns_op\tratio\tverdict")
	for _, d := range deltas {
		verdict := "ok"
		if d.Ratio > limit {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("%s\t%.0f\t%.0f\t%.3f\t%s\n", d.Name, d.OldNsPerOp, d.NewNsPerOp, d.Ratio, verdict)
	}
	if failed > 0 {
		return fmt.Errorf("bench-diff: %d benchmark(s) regressed beyond %.0f%% (ratio > %.2f)", failed, *threshold, limit)
	}
	fmt.Fprintf(os.Stderr, "bench-diff: %d benchmark(s) within %.0f%% of %s\n", len(deltas), *threshold, fs.Arg(0))
	return nil
}

// loadBenchReport reads a benchmark record: JSON written by bench-emit, or —
// falling back on a parse that yields benchmark lines — raw `go test -bench`
// text output.
func loadBenchReport(path string) (*benchfmt.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if rep, jerr := benchfmt.ReadJSON(bytes.NewReader(data)); jerr == nil {
		return rep, nil
	}
	rep, err := benchfmt.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: neither a bench-emit JSON record nor bench text: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return rep, nil
}
