// Command parole-trace inspects the Chrome trace-event files the -trace flag
// of the PAROLE binaries writes, and emits benchmark-regression records.
//
// Usage:
//
//	parole-trace summary FILE           per-kind span aggregate (TSV)
//	parole-trace timeline FILE          per-transaction lifecycle events (TSV)
//	parole-trace diff OLD NEW           per-kind time deltas between two traces
//	parole-trace bench-emit [-out FILE] [-tee] [-date YYYY-MM-DD]
//
// summary and timeline recompute the TSV artifacts from the trace JSON alone,
// so a trace copied off another machine (or out of CI) stays inspectable
// without its sibling .summary.tsv/.timeline.tsv files.
//
// bench-emit reads `go test -bench -benchmem` output on stdin, parses every
// benchmark line (including custom ReportMetric units), and writes
// BENCH_<date>.json — the record `make bench` diffs future runs against.
// -tee echoes stdin through to stdout so the benchmark text stays visible in
// a pipeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"parole/internal/benchfmt"
	"parole/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parole-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: parole-trace summary|timeline|diff|bench-emit …")
	}
	switch cmd := args[0]; cmd {
	case "summary", "timeline":
		if len(args) != 2 {
			return fmt.Errorf("usage: parole-trace %s FILE", cmd)
		}
		p, err := load(args[1])
		if err != nil {
			return err
		}
		if cmd == "summary" {
			return p.WriteSummaryTSV(os.Stdout)
		}
		return p.WriteTimelineTSV(os.Stdout)

	case "diff":
		if len(args) != 3 {
			return fmt.Errorf("usage: parole-trace diff OLD NEW")
		}
		return diff(args[1], args[2])

	case "bench-emit":
		return benchEmit(args[1:])

	default:
		return fmt.Errorf("unknown subcommand %q (want summary, timeline, diff, or bench-emit)", cmd)
	}
}

func load(path string) (*trace.Parsed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := trace.ParseChrome(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// diff joins the two traces' per-kind summaries and prints count and total
// self-time deltas, kinds sorted lexically like the summary TSV. Kinds
// present in only one trace show with a count of 0 on the other side.
func diff(oldPath, newPath string) error {
	oldP, err := load(oldPath)
	if err != nil {
		return err
	}
	newP, err := load(newPath)
	if err != nil {
		return err
	}
	oldSums := bySummaryKind(oldP.Summary())
	newSums := bySummaryKind(newP.Summary())
	kinds := map[string]bool{}
	for k := range oldSums {
		kinds[k] = true
	}
	for k := range newSums {
		kinds[k] = true
	}
	ordered := make([]string, 0, len(kinds))
	for k := range kinds {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)

	fmt.Println("kind\told_count\tnew_count\told_total_us\tnew_total_us\ttotal_ratio")
	for _, k := range ordered {
		o, n := oldSums[k], newSums[k]
		oldUS := float64(o.Total.Nanoseconds()) / 1e3
		newUS := float64(n.Total.Nanoseconds()) / 1e3
		ratio := "n/a"
		if oldUS > 0 {
			ratio = fmt.Sprintf("%.3f", newUS/oldUS)
		}
		fmt.Printf("%s\t%d\t%d\t%.1f\t%.1f\t%s\n", k, o.Count, n.Count, oldUS, newUS, ratio)
	}
	return nil
}

func bySummaryKind(sums []trace.KindSummary) map[string]trace.KindSummary {
	out := make(map[string]trace.KindSummary, len(sums))
	for _, s := range sums {
		out[s.Kind] = s
	}
	return out
}

func benchEmit(args []string) error {
	fs := flag.NewFlagSet("bench-emit", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default BENCH_<date>.json in the working directory)")
	tee := fs.Bool("tee", false, "echo stdin through to stdout")
	date := fs.String("date", "", "date stamp YYYY-MM-DD (default today, UTC)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", *date)
	}

	var in io.Reader = os.Stdin
	if *tee {
		in = io.TeeReader(os.Stdin, os.Stdout)
	}
	rep, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("bench-emit: no benchmark lines on stdin")
	}
	rep.Date = *date

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "bench-emit: wrote %d benchmarks to %s\n", len(rep.Results), *out)
	return nil
}
