// Command parole-node runs the PAROLE rollup as a long-lived service: an
// HTTP JSON-RPC endpoint (internal/rpc) over one rollup deployment, with a
// background sequencer sealing mempool batches on a fixed interval.
//
// Usage:
//
//	parole-node [-listen ADDR] [-port-file PATH]
//	            [-interval D] [-batch-size N] [-challenge-period R]
//	            [-users N] [-fund ETH] [-supply N] [-price ETH]
//	            [-faucet] [-timeout D]
//	            [-log-level L] [-log-format text|json] [-slow-request D]
//	            [-obs-window D] [-obs-windows N]
//	            [-metrics PATH] [-trace PATH] [-pprof ADDR]
//
// The node boots a fresh deployment: one limited-edition bonding-curve
// collection (-supply tokens starting at -price ETH) deployed on L2, and
// -users accounts pre-funded with -fund ETH each through the L1 deposit
// flow (addresses chainid.UserAddress(0..N-1); parole_faucet can fund more
// at runtime unless -faucet=false). "-listen 127.0.0.1:0" picks a random
// port; -port-file writes the bound host:port for scripts and CI.
//
// Besides JSON-RPC (POST /), the listener serves the operational GET
// endpoints: /metrics (Prometheus text exposition), /healthz, and /readyz.
// A reporting-layer loop ticks the windowed time-series collector every
// -obs-window, feeding parole_metricsDelta and cmd/parole-top; structured
// logs go to stderr at -log-level in -log-format. See
// docs/OBSERVABILITY.md.
//
// Shutdown is graceful: SIGINT/SIGTERM (or -timeout) flips /readyz and
// parole_health to draining, closes the listener, in-flight RPC requests
// drain (up to 5s), the sequencer stops, and the -metrics/-trace artifacts
// are written before exit. Transactions still pending in the mempool at
// shutdown were never acknowledged as sequenced and are dropped with the
// process. See docs/OPERATIONS.md for the full runbook and docs/RPC.md for
// the method reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"parole/internal/chainid"
	"parole/internal/cli"
	"parole/internal/logx"
	"parole/internal/mempool"
	"parole/internal/rollup"
	"parole/internal/rpc"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/token"
	"parole/internal/wei"
)

const tool = "parole-node"

// shutdownGrace bounds how long in-flight requests may drain after the
// stop signal.
const shutdownGrace = 5 * time.Second

func main() { cli.Main(tool, run) }

func run() error {
	var obs cli.Observability
	obs.Tool = tool
	var (
		listen          = flag.String("listen", "127.0.0.1:8547", "HTTP JSON-RPC listen address (host:0 picks a random port)")
		portFile        = flag.String("port-file", "", "write the bound host:port to this file after listening")
		interval        = flag.Duration("interval", 500*time.Millisecond, "sequencer sealing interval")
		batchSize       = flag.Int("batch-size", 50, "max transactions per sealed batch (the paper's mempool size N)")
		challengePeriod = flag.Uint64("challenge-period", 2, "ORSC challenge window in rounds")
		users           = flag.Int("users", 32, "accounts pre-funded at genesis (chainid.UserAddress(0..N-1))")
		fund            = flag.Int64("fund", 1000, "ETH deposited to each genesis account")
		supply          = flag.Uint64("supply", 1<<20, "max supply of the genesis collection")
		price           = flag.Float64("price", 0.2, "initial price of the genesis collection, in ETH")
		faucet          = flag.Bool("faucet", true, "serve parole_faucet (dev-mode account funding)")
		timeout         = flag.Duration("timeout", 0, "stop the node after this duration (0 = run until signalled)")
		mempoolShards   = flag.Int("mempool-shards", mempool.DefaultShards, "mempool shard count (per-account lock domains)")
		mempoolCap      = flag.Int("mempool-capacity", 0, "max pending transactions across all shards (0 = unbounded)")
		logLevel        = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
		logFormat       = flag.String("log-format", "text", "structured log format: text or json")
		slowRequest     = flag.Duration("slow-request", 250*time.Millisecond, "warn-log RPC requests slower than this (0 = off)")
		obsWindow       = flag.Duration("obs-window", time.Second, "time-series collector tick interval")
		obsWindows      = flag.Int("obs-windows", telemetry.DefaultWindowCap, "time-series windows retained (ring buffer capacity)")
	)
	obs.Register(flag.CommandLine)
	flag.Parse()

	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := logx.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	logx.Configure(os.Stderr, level, format)
	nodeLog := logx.Component(tool)

	obs.Start()
	ctx, cancel := cli.Context(*timeout)
	defer cancel()

	node := rollup.NewNode(rollup.Config{
		ChallengePeriod: *challengePeriod,
		Mempool:         mempool.Config{Shards: *mempoolShards, Capacity: *mempoolCap},
	})
	collection, err := genesis(node, *users, *fund, *supply, *price)
	if err != nil {
		return fmt.Errorf("genesis: %w", err)
	}
	seq, err := rpc.NewSequencer(node, rpc.SequencerConfig{
		Interval:  *interval,
		BatchSize: *batchSize,
	})
	if err != nil {
		return err
	}
	// The collector and lifecycle are reporting-layer constructs: the
	// collector only reads registry snapshots on its own goroutine, and the
	// lifecycle only feeds /readyz and parole_health. Neither touches the
	// sealed outputs (internal/telemetry guard test).
	lc := rpc.NewLifecycle()
	collector := telemetry.NewCollector(telemetry.Default(), *obsWindows)
	server := rpc.NewServer(node, seq, rpc.Config{
		EnableFaucet: *faucet,
		Lifecycle:    lc,
		Collector:    collector,
		SlowRequest:  *slowRequest,
	})

	ln, err := cli.Listen(*listen, *portFile)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: listening on http://%s (chain id %d)\n", tool, ln.Addr(), rpc.ChainID)
	fmt.Fprintf(os.Stderr, "%s: collection %s (supply %d, initial price %s ETH), %d funded accounts, sealing every %s\n",
		tool, collection.Hex(), *supply, wei.FromFloat(*price), *users, *interval)
	nodeLog.Info("node ready",
		logx.Str("listen", ln.Addr().String()),
		logx.Int("users", *users),
		logx.Dur("interval", *interval))

	go seq.Run(ctx)
	go tickCollector(ctx, collector, *obsWindow)
	go func() {
		<-ctx.Done()
		lc.Draining()
		nodeLog.Info("draining", logx.Dur("grace", shutdownGrace))
	}()
	lc.Ready()

	srv := &http.Server{Handler: rpc.NodeMux(server)}
	serveErr := cli.ServeHTTP(ctx, ln, srv, shutdownGrace)

	sealed, txs, _ := seq.Stats()
	fmt.Fprintf(os.Stderr, "%s: stopped after sealing %d batches (%d txs); %d txs left pending\n",
		tool, sealed, txs, node.Pool().Size())
	if _, _, err := obs.Report(); err != nil {
		if serveErr == nil {
			return err
		}
		fmt.Fprintln(os.Stderr, tool+": report:", err)
	}
	return serveErr
}

// tickCollector advances the windowed time-series collector every interval
// until ctx cancels. It samples runtime memory stats first so gauge deltas
// land in the same window, then folds the registry snapshot into the ring.
// Pure reporting layer: it reads the registry, never writes workload metrics.
func tickCollector(ctx context.Context, c *telemetry.Collector, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			telemetry.Default().SampleMemStats()
			c.Tick(now)
		}
	}
}

// genesis deploys the node's collection and funds the initial accounts
// through the L1 deposit flow. It returns the collection address.
func genesis(node *rollup.Node, users int, fundETH int64, supply uint64, priceETH float64) (chainid.Address, error) {
	addr := chainid.DeriveAddress("parole-node/collection")
	contract, err := token.Deploy(addr, token.Config{
		Name:         "PAROLE Token",
		Symbol:       "PT",
		MaxSupply:    supply,
		InitialPrice: wei.FromFloat(priceETH),
	})
	if err != nil {
		return chainid.Address{}, err
	}
	if err := node.SetupL2(func(s *state.State) error { return s.DeployToken(contract) }); err != nil {
		return chainid.Address{}, err
	}
	amount := wei.FromETH(fundETH)
	for k := 0; k < users; k++ {
		user := chainid.UserAddress(k)
		node.SetupAccount(user, amount)
		if err := node.Deposit(user, amount); err != nil {
			return chainid.Address{}, fmt.Errorf("fund user %d: %w", k, err)
		}
	}
	return addr, nil
}
