// Command parole-bench regenerates every table and figure of the paper's
// evaluation section through the internal/experiment engine and prints TSV
// series (or writes one file per series with -out).
//
// Usage:
//
//	parole-bench [-exp all|table3|fig5|fig6|fig7|fig8|fig9|fig10|fig11|defense]
//	             [-full|-smoke] [-out DIR] [-json] [-seed S]
//	             [-workers W] [-solver-workers W] [-mempool-shards S]
//	             [-timeout D] [-v]
//	             [-metrics PATH] [-trace PATH] [-pprof ADDR]
//
// The default budget finishes in minutes on one core; -full uses the
// paper's Table II training budget (100 episodes × 200 steps) and the full
// grids, which takes considerably longer; -smoke is a seconds-scale budget
// for CI. -workers W runs up to W experiment points concurrently — every
// point owns an independently derived seed and results commit in point
// order, so the output is byte-identical to -workers 1 (the engine's
// property tests pin this). -solver-workers selects Fig. 11's solver
// portfolio (1 = the sequential baselines that produced the committed
// results, >1 = the parallel portfolio solvers, 0 = GOMAXPROCS).
//
// -metrics writes a telemetry snapshot (TSV, or JSON when PATH ends in
// .json) at exit: per-backend solver evaluation counts, per-experiment
// stage timings, RL/NN work volumes, and runtime.MemStats peaks (see
// docs/METRICS.md). -trace enables the span tracer and writes a Chrome
// trace-event JSON (Perfetto-loadable) plus derived .summary.tsv and
// .timeline.tsv artifacts at exit (see docs/TRACING.md); combined with
// -out, the run manifest records the trace file's SHA-256. -pprof serves
// net/http/pprof on ADDR (e.g. "localhost:6060") for live CPU/heap
// profiles during a -full run. None of these flags affect the experiment
// series: seeded TSV outputs are bit-identical with and without them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parole/internal/cli"
	"parole/internal/experiment"
	"parole/internal/sim"
	"parole/internal/telemetry"
)

const tool = "parole-bench"

func main() { cli.Main(tool, run) }

func run() error {
	var obs cli.Observability
	obs.Tool = tool
	var (
		exp           = flag.String("exp", "all", "experiments to run: all, or a comma-separated list of registered names")
		full          = flag.Bool("full", false, "use the paper's full Table II budgets and grids")
		smoke         = flag.Bool("smoke", false, "use a seconds-scale smoke budget (CI)")
		out           = flag.String("out", "", "write one TSV per series into this directory")
		jsonOut       = flag.Bool("json", false, "with -out, also write a .json mirror per series")
		seed          = flag.Int64("seed", 1, "base RNG seed")
		workers       = flag.Int("workers", 1, "experiment points run concurrently (0 = GOMAXPROCS); output is byte-identical to -workers 1")
		solverWorkers = flag.Int("solver-workers", 1, "fig11 solver portfolio: 1 = sequential baselines (committed-results configuration), >1 = parallel portfolio solvers, 0 = GOMAXPROCS")
		mempoolShards = flag.Int("mempool-shards", 0, "scale experiment pool shard count (0 = default 32); batches are shard-count invariant, so only the recorded shards column changes")
		timeout       = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		verbose       = flag.Bool("v", false, "log per-point progress to stderr")
	)
	obs.Register(flag.CommandLine)
	cli.SetUsage(flag.CommandLine, tool, map[string][]string{
		"registered experiments":        experiment.Names(),
		"registered optimizer backends": sim.RegisteredOptimizerNames(),
	}, "registered experiments", "registered optimizer backends")
	flag.Parse()

	obs.Start()
	ctx, cancel := cli.Context(*timeout)
	defer cancel()

	exps, err := experiment.Select(*exp)
	if err != nil {
		return err
	}
	scale := experiment.ScaleQuick
	switch {
	case *full && *smoke:
		return fmt.Errorf("-full and -smoke are mutually exclusive")
	case *full:
		scale = experiment.ScaleFull
	case *smoke:
		scale = experiment.ScaleSmoke
	}
	cfg := experiment.Config{Seed: *seed, Scale: scale, SolverWorkers: *solverWorkers, MempoolShards: *mempoolShards}
	runner := &experiment.Runner{Workers: resolveWorkers(*workers)}
	if *verbose {
		runner.Progress = os.Stderr
	}
	var em experiment.Emitter
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		em = &experiment.DirEmitter{Dir: *out, JSON: *jsonOut}
	} else {
		em = &experiment.StreamEmitter{W: os.Stdout}
	}

	runErr := runner.Run(ctx, exps, cfg, em)
	if err := report(&obs, *out, *exp, scale, *seed, *workers, *solverWorkers); err != nil {
		if runErr == nil {
			return err
		}
		fmt.Fprintln(os.Stderr, tool+": report:", err)
	}
	return runErr
}

// resolveWorkers maps the -workers convention (0 = GOMAXPROCS) to a pool
// size.
func resolveWorkers(w int) int {
	if w == 0 {
		return experiment.DefaultWorkers()
	}
	return w
}

// report writes the telemetry snapshot (-metrics), the trace artifacts
// (-trace), and, for -out runs, the machine-readable run manifest
// manifest.json — which ties the trace file to the run by SHA-256.
func report(obs *cli.Observability, outDir, exp string, scale experiment.Scale, seed int64, workers, solverWorkers int) error {
	snap, traceInfo, err := obs.Report()
	if err != nil {
		return err
	}
	if outDir == "" {
		return nil
	}
	manifest := telemetry.NewManifest(tool, seed, map[string]string{
		"exp":            exp,
		"scale":          scale.String(),
		"full":           fmt.Sprintf("%v", scale == experiment.ScaleFull),
		"workers":        fmt.Sprintf("%d", workers),
		"solver_workers": fmt.Sprintf("%d", solverWorkers),
	}, snap)
	manifest.Trace = traceInfo
	return manifest.WriteFile(filepath.Join(outDir, "manifest.json"))
}
