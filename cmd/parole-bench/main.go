// Command parole-bench regenerates every table and figure of the paper's
// evaluation section and prints TSV series (or writes one file per
// experiment with -out).
//
// Usage:
//
//	parole-bench [-exp all|table3|fig5|fig6|fig7|fig8|fig9|fig10|fig11]
//	             [-full] [-out DIR] [-seed S]
//	             [-metrics PATH] [-trace PATH] [-pprof ADDR]
//
// The default budget finishes in minutes on one core; -full uses the
// paper's Table II training budget (100 episodes × 200 steps) and the full
// grids, which takes considerably longer.
//
// -metrics writes a telemetry snapshot (TSV, or JSON when PATH ends in
// .json) at exit: per-backend solver evaluation counts, per-experiment
// stage timings, RL/NN work volumes, and runtime.MemStats peaks (see
// docs/METRICS.md). -trace enables the span tracer and writes a Chrome
// trace-event JSON (Perfetto-loadable) plus derived .summary.tsv and
// .timeline.tsv artifacts at exit (see docs/TRACING.md); combined with
// -out, the run manifest records the trace file's SHA-256. -pprof serves
// net/http/pprof on ADDR (e.g. "localhost:6060") for live CPU/heap
// profiles during a -full run. None of these flags affect the experiment
// series: seeded TSV outputs are bit-identical with and without them.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"parole/internal/casestudy"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/sim"
	"parole/internal/snapshot"
	"parole/internal/telemetry"
	"parole/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parole-bench:", err)
		os.Exit(1)
	}
}

type runner struct {
	outDir  string
	full    bool
	seed    int64
	workers int
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, defense")
		full     = flag.Bool("full", false, "use the paper's full Table II budgets and grids")
		out      = flag.String("out", "", "write one TSV per experiment into this directory")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		workers  = flag.Int("workers", 1, "fig11 solver workers: 1 = sequential baselines (committed-results configuration), >1 = parallel portfolio solvers, 0 = GOMAXPROCS")
		metrics  = flag.String("metrics", "", "write a telemetry snapshot to this path at exit (TSV, or JSON for .json)")
		traceOut = flag.String("trace", "", "enable span tracing and write a Chrome trace (plus .summary.tsv/.timeline.tsv) to this path at exit")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// Stage timers are reporting-layer wall-clock sampling; enabling them
	// never touches the seeded experiment paths. The span tracer is equally
	// passive (docs/TRACING.md).
	telemetry.Default().EnableTimers(true)
	if *traceOut != "" {
		trace.Default().Enable()
	}
	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "parole-bench: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "parole-bench: pprof at http://%s/debug/pprof/\n", *pprof)
	}

	r := &runner{outDir: *out, full: *full, seed: *seed, workers: *workers}
	if r.outDir != "" {
		if err := os.MkdirAll(r.outDir, 0o755); err != nil {
			return err
		}
	}
	experiments := map[string]func() error{
		"table3":  r.table3,
		"fig5":    r.fig5,
		"fig6":    r.fig6,
		"fig7":    r.fig7,
		"fig8":    r.fig8,
		"fig9":    r.fig9,
		"fig10":   r.fig10,
		"fig11":   r.fig11,
		"defense": r.defense,
	}
	runOne := func(name string, fn func() error) error {
		stop := telemetry.Default().Timer("bench." + name + ".time").Start()
		err := fn()
		stop()
		telemetry.Default().SampleMemStats()
		return err
	}
	runErr := func() error {
		if *exp != "all" {
			fn, ok := experiments[*exp]
			if !ok {
				return fmt.Errorf("unknown experiment %q", *exp)
			}
			return runOne(*exp, fn)
		}
		for _, name := range []string{"table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "defense"} {
			if err := runOne(name, experiments[name]); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}()
	if err := r.report(*exp, *metrics, *traceOut); err != nil {
		if runErr == nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "parole-bench: report:", err)
	}
	return runErr
}

// report writes the telemetry snapshot (-metrics), the trace artifacts
// (-trace), and, for -out runs, the machine-readable run manifest
// results/manifest.json — which ties the trace file to the run by SHA-256.
func (r *runner) report(exp, metricsPath, tracePath string) error {
	snap := telemetry.Default().Snapshot()
	if metricsPath != "" {
		if err := snap.WriteFile(metricsPath); err != nil {
			return err
		}
	}
	traceInfo := &telemetry.TraceInfo{Enabled: trace.Default().Enabled()}
	if tracePath != "" {
		sha, err := trace.Default().WriteFiles(tracePath)
		if err != nil {
			return err
		}
		traceInfo.File = tracePath
		traceInfo.SHA256 = sha
	}
	if r.outDir == "" {
		return nil
	}
	manifest := telemetry.NewManifest("parole-bench", r.seed, map[string]string{
		"exp":  exp,
		"full": fmt.Sprintf("%v", r.full),
	}, snap)
	manifest.Trace = traceInfo
	return manifest.WriteFile(filepath.Join(r.outDir, "manifest.json"))
}

// sink opens the output stream for one experiment.
func (r *runner) sink(name string) (io.Writer, func() error, error) {
	if r.outDir == "" {
		fmt.Printf("\n# %s\n", name)
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(filepath.Join(r.outDir, name+".tsv"))
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// genBudget picks the DQN budget.
func (r *runner) genBudget() gentranseq.Config {
	if r.full {
		return gentranseq.DefaultConfig()
	}
	return gentranseq.FastConfig()
}

func (r *runner) table3() error {
	w, closeFn, err := r.sink("table3")
	if err != nil {
		return err
	}
	defer ignoreClose(closeFn)
	rows, err := sim.RunTable3()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "tx_type\ttx_hash\tblock_number\tl1_state_index\tgas_usage_pct\ttx_fee_gwei")
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.2f\t%d\n",
			row.TxType, row.TxHash, row.BlockNumber, row.L1StateIndex, row.GasUsagePct, row.FeeGwei)
	}
	return closeFn()
}

func (r *runner) fig5() error {
	w, closeFn, err := r.sink("fig5")
	if err != nil {
		return err
	}
	defer ignoreClose(closeFn)
	s, err := casestudy.New()
	if err != nil {
		return err
	}
	vm := ovm.New()
	fmt.Fprintln(w, "case\trow\ttx\tpt_price_eth\tifu_total_eth")
	for _, c := range []struct{ name string }{{name: "case1"}, {name: "case2"}, {name: "case3"}} {
		seq := s.Original
		switch c.name {
		case "case2":
			seq = s.Case2
		case "case3":
			seq = s.Case3
		}
		trace, res, err := vm.WealthTrace(s.State, seq, casestudy.IFU)
		if err != nil {
			return err
		}
		for i, step := range res.Steps {
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\n", c.name, i+1, step.Tx, step.Price, trace[i])
		}
	}
	return closeFn()
}

func (r *runner) fig6() error {
	// Two backends per grid: the hill-climb "strong optimizer" series that
	// isolates the paper's economic claim (more reordering flexibility →
	// more profit), and the DQN series at the configured training budget.
	// See EXPERIMENTS.md for why both are recorded.
	for _, backend := range r.backends() {
		for _, frac := range []float64{0.10, 0.50} {
			name := fmt.Sprintf("fig6_adv%d_%s", int(frac*100), backend.label)
			w, closeFn, err := r.sink(name)
			if err != nil {
				return err
			}
			cfg := sim.DefaultFig6Config()
			cfg.AdversarialFraction = frac
			cfg.Seed = r.seed
			cfg.Optimizer = backend.cfg
			if !r.full {
				cfg.Trials = 2
				if backend.label == "dqn" {
					// The DQN variant is the budget-limited series; one
					// trial and N ≤ 50 keep the default sweep laptop-scale
					// (EXPERIMENTS.md documents the large-N budget regime).
					cfg.Trials = 1
					cfg.MempoolSizes = []int{10, 25, 50}
				}
			}
			rows, err := sim.RunFig6(cfg)
			if err != nil {
				ignoreClose(closeFn)
				return err
			}
			fmt.Fprintln(w, "mempool\tifus\tadv_frac\tavg_profit_per_ifu_eth\tavg_profit_per_ifu_sats\tbatches")
			for _, row := range rows {
				fmt.Fprintf(w, "%d\t%d\t%.2f\t%s\t%d\t%d\n",
					row.MempoolSize, row.IFUs, row.AdversarialFrac,
					row.AvgProfitPerIFU, row.AvgProfitPerIFU.Sats(), row.Batches)
			}
			if err := closeFn(); err != nil {
				return err
			}
		}
	}
	return nil
}

// backend pairs an optimizer config with its file label.
type backend struct {
	label string
	cfg   sim.OptimizerConfig
}

// backends returns the optimizer variants each profit experiment records.
func (r *runner) backends() []backend {
	return []backend{
		{label: "search", cfg: sim.OptimizerConfig{Kind: sim.OptHillClimb, SolverEvals: 0}},
		{label: "dqn", cfg: sim.OptimizerConfig{Kind: sim.OptDQN, Gen: r.genBudget(), AdaptiveSteps: true}},
	}
}

func (r *runner) fig7() error {
	for _, backend := range r.backends() {
		for _, ifus := range []int{1, 2} {
			name := fmt.Sprintf("fig7_ifus%d_%s", ifus, backend.label)
			w, closeFn, err := r.sink(name)
			if err != nil {
				return err
			}
			cfg := sim.DefaultFig7Config()
			cfg.IFUs = ifus
			cfg.Seed = r.seed + int64(ifus)
			cfg.Optimizer = backend.cfg
			if !r.full {
				cfg.Trials = 2
				if backend.label == "dqn" {
					cfg.Trials = 1
					cfg.MempoolSizes = []int{25, 50}
				}
			}
			rows, err := sim.RunFig7(cfg)
			if err != nil {
				ignoreClose(closeFn)
				return err
			}
			fmt.Fprintln(w, "adv_percent\tmempool\tifus\ttotal_profit_eth\ttotal_profit_sats")
			for _, row := range rows {
				fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\n",
					row.AdversarialPercent, row.MempoolSize, row.IFUs,
					row.TotalProfit, row.TotalProfitSats)
			}
			if err := closeFn(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *runner) fig8() error {
	for _, ifus := range []int{1, 2} {
		name := fmt.Sprintf("fig8_ifus%d", ifus)
		w, closeFn, err := r.sink(name)
		if err != nil {
			return err
		}
		cfg := sim.DefaultFig8Config()
		cfg.IFUs = ifus
		cfg.Seed = r.seed + 10 + int64(ifus)
		if r.full {
			cfg.Episodes, cfg.MaxSteps = 100, 200
			cfg.MempoolSize = 50
		}
		points, err := sim.RunFig8(cfg)
		if err != nil {
			ignoreClose(closeFn)
			return err
		}
		fmt.Fprintln(w, "epsilon\tifus\tepisode\treward\tmoving_avg_w9\tbest_gain_eth")
		for _, p := range points {
			fmt.Fprintf(w, "%.2f\t%d\t%d\t%.2f\t%.2f\t%.4f\n",
				p.Epsilon, p.IFUs, p.Episode, p.Reward, p.Smoothed, p.BestGainETH)
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) fig9() error {
	sizes := []int{50, 100}
	if !r.full {
		sizes = []int{25, 50}
	}
	for _, n := range sizes {
		name := fmt.Sprintf("fig9_mempool%d", n)
		w, closeFn, err := r.sink(name)
		if err != nil {
			return err
		}
		cfg := sim.DefaultFig9Config()
		cfg.MempoolSize = n
		cfg.Seed = r.seed + 20 + int64(n)
		cfg.Gen = r.genBudget()
		if !r.full {
			cfg.Runs = 10
		}
		curves, err := sim.RunFig9(cfg)
		if err != nil {
			ignoreClose(closeFn)
			return err
		}
		fmt.Fprintln(w, "mempool\tifus\tsamples\tunsolved\tmode_swaps\tx\tdensity")
		for _, c := range curves {
			for i := range c.X {
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f\t%.2f\t%.5f\n",
					c.MempoolSize, c.IFUs, len(c.Samples), c.Unsolved, c.Mode, c.X[i], c.Density[i])
			}
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) fig10() error {
	w, closeFn, err := r.sink("fig10")
	if err != nil {
		return err
	}
	defer ignoreClose(closeFn)
	cfg := snapshot.DefaultStudyConfig()
	if r.full {
		cfg.CollectionsPerCell = 100
	}
	rows, err := snapshot.RunStudy(rand.New(rand.NewSource(r.seed+30)), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "chain\tft_class\tcollections\ttotal_profit_eth\tavg_profit_eth")
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n",
			row.Chain, row.Class, row.Collections, row.TotalProfit, row.AvgProfit)
	}
	return closeFn()
}

func (r *runner) fig11() error {
	w, closeFn, err := r.sink("fig11")
	if err != nil {
		return err
	}
	defer ignoreClose(closeFn)
	cfg := sim.DefaultFig11Config()
	cfg.Seed = r.seed + 40
	cfg.Gen = r.genBudget()
	cfg.Workers = r.workers
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if !r.full {
		cfg.MempoolSizes = []int{5, 10, 25, 50}
	}
	rows, err := sim.RunFig11(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "mempool\tsolver\texec_time_us\talloc_bytes\tevals\timprovement_eth")
	for _, row := range rows {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%s\n",
			row.MempoolSize, row.Solver, row.Duration.Microseconds(), row.AllocBytes,
			row.Evaluations, row.Improvement)
	}
	return closeFn()
}

func (r *runner) defense() error {
	w, closeFn, err := r.sink("defense")
	if err != nil {
		return err
	}
	defer ignoreClose(closeFn)
	cfg := sim.DefaultDefenseConfig()
	cfg.Seed = r.seed + 50
	if r.full {
		cfg.Scenarios = 20
		cfg.MempoolSize = 25
	}
	rows, err := sim.RunDefenseStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "threshold_eth\tscenarios\ttriggered\tavg_demotions\tavg_undefended_profit_eth\tavg_residual_profit_eth")
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%s\t%s\n",
			row.Threshold, row.Scenarios, row.Triggered, row.AvgDemotions,
			row.AvgUndefendedProfit, row.AvgResidualProfit)
	}
	return closeFn()
}

// ignoreClose swallows close errors on early-exit paths (the happy path
// checks them).
func ignoreClose(closeFn func() error) {
	if err := closeFn(); err != nil && !strings.Contains(err.Error(), "file already closed") {
		fmt.Fprintln(os.Stderr, "parole-bench: close:", err)
	}
}
