// Command parole-train trains the GENTRANSEQ DQN on one scenario and emits
// the per-episode reward series (the raw input of Fig. 8), optionally saving
// the trained Q-network weights.
//
// Usage:
//
//	parole-train [-mempool N] [-ifus K] [-episodes E] [-steps T]
//	             [-epsilon E0] [-seed S] [-weights FILE] [-casestudy]
//	             [-metrics PATH] [-trace PATH] [-pprof ADDR]
//
// -metrics writes a telemetry snapshot (TSV, or JSON when PATH ends in
// .json) after training: episodes, steps, TD losses, replay occupancy,
// target syncs, NN forward/backward counts, and stage timings (see
// docs/METRICS.md). -trace enables the span tracer and writes a Chrome
// trace plus summary/timeline TSVs at exit (docs/TRACING.md). -pprof serves
// net/http/pprof on ADDR for live profiles of a long training run. None of
// these flags changes the seeded reward series.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/cli"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rl"
	"parole/internal/sim"
	"parole/internal/state"
	"parole/internal/stats"
	"parole/internal/telemetry"
	"parole/internal/tx"
)

const tool = "parole-train"

func main() { cli.Main(tool, run) }

func run() error {
	var obs cli.Observability
	obs.Tool = tool
	var (
		mempoolSize = flag.Int("mempool", 25, "batch size N")
		ifus        = flag.Int("ifus", 1, "number of IFUs")
		episodes    = flag.Int("episodes", 100, "training episodes (Table II: 100)")
		steps       = flag.Int("steps", 200, "steps per episode (Table II: 200)")
		epsilon     = flag.Float64("epsilon", 0.95, "initial exploration ε (Table II: 0.95)")
		seed        = flag.Int64("seed", 1, "RNG seed")
		weightsPath = flag.String("weights", "", "write trained Q-network weights to this file")
		useCase     = flag.Bool("casestudy", false, "train on the paper's Section VI batch")
	)
	obs.Register(flag.CommandLine)
	flag.Parse()

	obs.Start()
	defer func() {
		if _, _, err := obs.Report(); err != nil {
			fmt.Fprintln(os.Stderr, tool+": report:", err)
		}
	}()

	rng := rand.New(rand.NewSource(*seed))
	vm := ovm.New()

	var (
		base    *state.State
		batch   tx.Seq
		targets []chainid.Address
	)
	if *useCase {
		s, err := casestudy.New()
		if err != nil {
			return err
		}
		base, batch, targets = s.State, s.Original, []chainid.Address{casestudy.IFU}
	} else {
		sc, err := sim.GenerateScenario(rng, sim.ScenarioConfig{MempoolSize: *mempoolSize, NumIFUs: *ifus})
		if err != nil {
			return err
		}
		base, batch, targets = sc.State, sc.Batch, sc.IFUs
	}

	env, err := gentranseq.NewEnv(vm, base, batch, targets, gentranseq.DefaultEnvConfig())
	if err != nil {
		return err
	}
	rlCfg := rl.DefaultConfig()
	rlCfg.Epsilon.Max = *epsilon
	if rlCfg.Epsilon.Min > *epsilon {
		rlCfg.Epsilon.Min = *epsilon
	}
	agent, err := rl.NewAgent(rng, env.ObservationSize(), env.NumActions(), rlCfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "training: N=%d, IFUs=%d, %d episodes × %d steps, ε0=%.2f, q-network %d params\n",
		len(batch), len(targets), *episodes, *steps, *epsilon, agent.QNetwork().NumParams())

	stopTrain := telemetry.Default().Timer("train.time").Start()
	rewards, err := gentranseq.TrainAgent(agent, env, *episodes, *steps, rlCfg.Epsilon)
	stopTrain()
	telemetry.Default().SampleMemStats()
	if err != nil {
		return err
	}
	smoothed, err := stats.MovingAverage(rewards, 9)
	if err != nil {
		return err
	}
	fmt.Println("episode\tepsilon\treward\tmoving_avg_w9")
	for i, rwd := range rewards {
		fmt.Printf("%d\t%.4f\t%.2f\t%.2f\n", i, rlCfg.Epsilon.At(i), rwd, smoothed[i])
	}
	if best, improvement := env.Best(); best != nil {
		fmt.Fprintf(os.Stderr, "best valid order improves IFU wealth by %s ETH\n", improvement)
	} else {
		fmt.Fprintln(os.Stderr, "no improving valid order found")
	}

	if *weightsPath != "" {
		data, err := agent.QNetwork().MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*weightsPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d bytes of Q-network weights to %s\n", len(data), *weightsPath)
	}
	return nil
}
