// Command parole-top is a terminal dashboard for a running parole-node: it
// polls the parole_metricsDelta and parole_health RPCs on an interval and
// renders node throughput (tx/s, batches/s, rpc/s), rolling seal, batch
// collection, and RPC latency quantiles (p50/p99 over the node's retained
// windows), per-shard mempool depth, state-root update latency, and
// challenge activity.
//
// Usage:
//
//	parole-top [-rpc URL] [-interval D] [-windows N] [-once]
//
// Live mode redraws in place with ANSI escapes until interrupted; -once
// prints a single plain-text refresh and exits (what CI's obs-smoke runs).
// All aggregation happens client-side from the window deltas the node
// already retains — the dashboard adds no load beyond two small RPCs per
// refresh. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	"parole/internal/cli"
	"parole/internal/rpc"
	"parole/internal/telemetry"
)

const tool = "parole-top"

func main() { cli.Main(tool, run) }

func run() error {
	var (
		url      = flag.String("rpc", "http://127.0.0.1:8547", "parole-node JSON-RPC endpoint")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		windows  = flag.Int("windows", 10, "time-series windows to aggregate per refresh (0 = all retained)")
		once     = flag.Bool("once", false, "print one refresh and exit (plain text, no ANSI)")
	)
	flag.Parse()

	client := rpc.NewClient(*url)
	ctx, cancel := cli.Context(0)
	defer cancel()

	if *once {
		frame, err := refresh(ctx, client, *windows)
		if err != nil {
			return err
		}
		fmt.Print(frame)
		return nil
	}

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		frame, err := refresh(ctx, client, *windows)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			frame = fmt.Sprintf("%s: %v\n", tool, err)
		}
		// Home the cursor and clear below rather than wiping the whole
		// screen: no flicker at 1Hz refresh.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-ticker.C:
		}
	}
}

// refresh polls the node once and renders one dashboard frame.
func refresh(ctx context.Context, client *rpc.Client, n int) (string, error) {
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var health rpc.Health
	if err := client.Call(cctx, "parole_health", &health); err != nil {
		return "", err
	}
	var delta rpc.MetricsDelta
	if err := client.Call(cctx, "parole_metricsDelta", &delta, n); err != nil {
		return "", err
	}
	return render(client.URL, health, delta), nil
}

// agg is the client-side aggregation of the polled windows: summed counter
// deltas, merged histograms, last-window gauge levels, and total seconds.
type agg struct {
	secs     float64
	counters map[string]int64
	hists    map[string]telemetry.HistWindow
	gauges   map[string]float64
}

func aggregate(ws []telemetry.Window) agg {
	a := agg{
		counters: map[string]int64{},
		hists:    map[string]telemetry.HistWindow{},
		gauges:   map[string]float64{},
	}
	for _, w := range ws {
		a.secs += w.Seconds()
		for name, d := range w.Counters {
			a.counters[name] += d
		}
		for name, lvl := range w.Gauges {
			a.gauges[name] = lvl // windows arrive oldest-first; keep the last
		}
		for name, hw := range w.Hists {
			m := a.hists[name]
			m.Count += hw.Count
			m.Sum += hw.Sum
			if m.Buckets == nil {
				m.Buckets = append([]telemetry.Bucket(nil), hw.Buckets...)
			} else {
				for i := range hw.Buckets {
					if i < len(m.Buckets) {
						m.Buckets[i].Count += hw.Buckets[i].Count
					}
				}
			}
			a.hists[name] = m
		}
	}
	return a
}

// rate returns the counter's per-second rate over the aggregate.
func (a agg) rate(name string) float64 {
	if a.secs <= 0 {
		return 0
	}
	return float64(a.counters[name]) / a.secs
}

func render(url string, h rpc.Health, d rpc.MetricsDelta) string {
	a := aggregate(d.Windows)
	var b strings.Builder

	fmt.Fprintf(&b, "%s — %s  status=%s up=%s  %d windows / %s\n",
		tool, url, h.Status, fmtSecs(h.UptimeSeconds), len(d.Windows), fmtSecs(a.secs))
	fmt.Fprintf(&b, "chain     l1Height=%d round=%d batches=%d sealed=%d (%d txs) stateRoot=%s\n",
		h.L1Height, h.Round, h.Batches, h.SealedBatches, h.SealedTxs, short(h.StateRoot))

	if !d.Enabled {
		b.WriteString("windows   collector disabled on this node (parole_metricsDelta enabled=false)\n")
	} else if len(d.Windows) == 0 {
		b.WriteString("windows   warming up (ring is empty until the second collector tick)\n")
	} else {
		seal := a.hists["node.seal.time"]
		rpcT := a.hists["rpc.request.time"]
		root := a.hists["state.root.time"]
		collect := a.hists["mempool.collect.time"]
		fmt.Fprintf(&b, "rates     %8.1f tx/s  %6.2f batches/s  rpc %8.1f req/s  %5.2f err/s  %d slow\n",
			a.rate("node.seal.txs"), a.rate("node.seal.batches"),
			a.rate("rpc.requests"), a.rate("rpc.errors"), a.counters["rpc.requests.slow"])
		fmt.Fprintf(&b, "seal      p50=%s p99=%s  (%d batches in window)\n",
			fmtQ(seal, 0.50), fmtQ(seal, 0.99), seal.Count)
		fmt.Fprintf(&b, "collect   p50=%s p99=%s  (%d collections in window)\n",
			fmtQ(collect, 0.50), fmtQ(collect, 0.99), collect.Count)
		fmt.Fprintf(&b, "rpc       p50=%s p99=%s  (%d requests in window)\n",
			fmtQ(rpcT, 0.50), fmtQ(rpcT, 0.99), rpcT.Count)
		fmt.Fprintf(&b, "stateRoot p50=%s p99=%s  (%d updates in window)\n",
			fmtQ(root, 0.50), fmtQ(root, 0.99), root.Count)
		fmt.Fprintf(&b, "challenge +%d adjudicated, +%d upheld in window\n",
			a.counters["rollup.challenges"], a.counters["rollup.challenges.upheld"])
		if heap, ok := a.gauges[telemetry.MetricHeapAllocBytes]; ok {
			fmt.Fprintf(&b, "runtime   heap=%s goroutines=%.0f numGC=%.0f\n",
				fmtBytes(heap), a.gauges[telemetry.MetricNumGoroutine], a.gauges[telemetry.MetricNumGC])
		}
	}

	fmt.Fprintf(&b, "mempool   %d pending / %d shards  %s\n",
		d.Mempool.Pending, len(d.Mempool.ShardDepths), shardBar(d.Mempool.ShardDepths))
	return b.String()
}

// shardBar renders per-shard depths compactly: exact counts for up to 16
// shards, a min/mean/max summary beyond that.
func shardBar(depths []int) string {
	if len(depths) == 0 {
		return ""
	}
	if len(depths) <= 16 {
		parts := make([]string, len(depths))
		for i, d := range depths {
			parts[i] = fmt.Sprint(d)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	min, max, sum := depths[0], depths[0], 0
	for _, d := range depths {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	return fmt.Sprintf("[min=%d mean=%.1f max=%d]", min, float64(sum)/float64(len(depths)), max)
}

// fmtQ formats a histogram quantile (stored in seconds) as a duration, "-"
// when the window holds no observations.
func fmtQ(hw telemetry.HistWindow, q float64) string {
	v := hw.Quantile(q)
	if math.IsNaN(v) {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fmtSecs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Millisecond).String()
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// short abbreviates a 0x hash for one-line display.
func short(hex string) string {
	if len(hex) <= 14 {
		return hex
	}
	return hex[:10] + "…" + hex[len(hex)-4:]
}
