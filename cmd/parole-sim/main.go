// Command parole-sim runs one PAROLE attack scenario end to end and prints
// the before/after orders and the IFU profit.
//
// Usage:
//
//	parole-sim [-mempool N] [-ifus K] [-seed S] [-optimizer KIND]
//	           [-episodes E] [-steps T] [-casestudy]
//	           [-metrics PATH] [-trace PATH] [-pprof ADDR]
//
// -optimizer accepts any registered backend (see -h for the list; dqn is
// the paper's attack). With -casestudy the exact Section VI world of the
// paper is used instead of a randomized scenario. The observability flags
// are shared with the other binaries and never change the seeded outputs
// (docs/METRICS.md, docs/TRACING.md).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/cli"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/sim"
	"parole/internal/state"
	"parole/internal/tx"
	"parole/internal/wei"
)

const tool = "parole-sim"

func main() { cli.Main(tool, run) }

func run() error {
	var obs cli.Observability
	obs.Tool = tool
	var (
		mempoolSize = flag.Int("mempool", 16, "batch size N the aggregator collects")
		ifus        = flag.Int("ifus", 1, "number of illicitly favored users")
		seed        = flag.Int64("seed", 1, "RNG seed")
		optimizer   = flag.String("optimizer", "dqn", "reordering backend (see -h for registered kinds)")
		episodes    = flag.Int("episodes", 0, "DQN training episodes (0 = fast default)")
		steps       = flag.Int("steps", 0, "DQN steps per episode (0 = fast default)")
		useCase     = flag.Bool("casestudy", false, "use the paper's Section VI case-study world")
	)
	obs.Register(flag.CommandLine)
	cli.SetUsage(flag.CommandLine, tool, map[string][]string{
		"registered optimizer backends": sim.RegisteredOptimizerNames(),
	}, "registered optimizer backends")
	flag.Parse()

	obs.Start()
	defer func() {
		if _, _, err := obs.Report(); err != nil {
			fmt.Fprintln(os.Stderr, tool+": report:", err)
		}
	}()

	rng := rand.New(rand.NewSource(*seed))
	vm := ovm.New()

	var (
		base    *state.State
		batch   tx.Seq
		targets []chainid.Address
	)
	if *useCase {
		s, err := casestudy.New()
		if err != nil {
			return err
		}
		base, batch, targets = s.State, s.Original, []chainid.Address{casestudy.IFU}
	} else {
		sc, err := sim.GenerateScenario(rng, sim.ScenarioConfig{
			MempoolSize: *mempoolSize,
			NumIFUs:     *ifus,
		})
		if err != nil {
			return err
		}
		base, batch, targets = sc.State, sc.Batch, sc.IFUs
	}

	gen := gentranseq.FastConfig()
	if *episodes > 0 {
		gen.Episodes = *episodes
	}
	if *steps > 0 {
		gen.MaxSteps = *steps
	}
	ocfg := sim.OptimizerConfig{Kind: sim.OptimizerKind(*optimizer), Gen: gen}

	fmt.Printf("scenario: %d transactions, %d IFU(s), seed %d, optimizer %s\n",
		len(batch), len(targets), *seed, *optimizer)
	printWealth(vm, base, batch, targets, "original (fee) order")

	sc := &sim.Scenario{State: base, Batch: batch, IFUs: targets}
	out, err := sim.OptimizeBatch(rng, vm, sc, ocfg)
	if err != nil {
		return err
	}
	if out.Improvement <= 0 {
		fmt.Println("\nno profitable valid re-ordering found; honest order stands")
		return nil
	}
	fmt.Printf("\nattack succeeded: IFU wealth gain %s ETH (%d sats)\n",
		out.Improvement, out.Improvement.Sats())
	if out.InferenceSwaps >= 0 {
		fmt.Printf("trained agent reached its first candidate after %d swaps\n", out.InferenceSwaps)
	}
	return nil
}

func printWealth(vm *ovm.VM, base *state.State, batch tx.Seq, targets []chainid.Address, label string) {
	wealth, executed, err := vm.FinalWealth(base, batch, targets...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		return
	}
	var total wei.Amount
	for _, w := range wealth {
		total += w
	}
	fmt.Printf("%s: %d/%d executable, IFU wealth %s ETH\n", label, executed, len(batch), total)
	for i, t := range batch {
		fmt.Printf("  TX%-3d %s\n", i+1, t)
	}
}
