// Command parole-sim runs one PAROLE attack scenario end to end and prints
// the before/after orders and the IFU profit.
//
// Usage:
//
//	parole-sim [-mempool N] [-ifus K] [-seed S] [-optimizer dqn|hillclimb|anneal]
//	           [-episodes E] [-steps T] [-casestudy] [-trace PATH]
//
// With -casestudy the exact Section VI world of the paper is used instead of
// a randomized scenario. -trace enables the span tracer and writes a Chrome
// trace plus summary/timeline TSVs at exit (docs/TRACING.md); it does not
// change the seeded outputs.
package main

import (
	"flag"
	"fmt"
	"os"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/sim"
	"parole/internal/state"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"

	"math/rand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parole-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mempoolSize = flag.Int("mempool", 16, "batch size N the aggregator collects")
		ifus        = flag.Int("ifus", 1, "number of illicitly favored users")
		seed        = flag.Int64("seed", 1, "RNG seed")
		optimizer   = flag.String("optimizer", "dqn", "reordering backend: dqn, hillclimb, anneal")
		episodes    = flag.Int("episodes", 0, "DQN training episodes (0 = fast default)")
		steps       = flag.Int("steps", 0, "DQN steps per episode (0 = fast default)")
		useCase     = flag.Bool("casestudy", false, "use the paper's Section VI case-study world")
		traceOut    = flag.String("trace", "", "enable span tracing and write a Chrome trace (plus .summary.tsv/.timeline.tsv) to this path at exit")
	)
	flag.Parse()

	if *traceOut != "" {
		trace.Default().Enable()
		defer func() {
			if _, err := trace.Default().WriteFiles(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "parole-sim: trace:", err)
			}
		}()
	}

	rng := rand.New(rand.NewSource(*seed))
	vm := ovm.New()

	var (
		base    *state.State
		batch   tx.Seq
		targets []chainid.Address
	)
	if *useCase {
		s, err := casestudy.New()
		if err != nil {
			return err
		}
		base, batch, targets = s.State, s.Original, []chainid.Address{casestudy.IFU}
	} else {
		sc, err := sim.GenerateScenario(rng, sim.ScenarioConfig{
			MempoolSize: *mempoolSize,
			NumIFUs:     *ifus,
		})
		if err != nil {
			return err
		}
		base, batch, targets = sc.State, sc.Batch, sc.IFUs
	}

	gen := gentranseq.FastConfig()
	if *episodes > 0 {
		gen.Episodes = *episodes
	}
	if *steps > 0 {
		gen.MaxSteps = *steps
	}
	ocfg := sim.OptimizerConfig{Kind: sim.OptimizerKind(*optimizer), Gen: gen}

	fmt.Printf("scenario: %d transactions, %d IFU(s), seed %d, optimizer %s\n",
		len(batch), len(targets), *seed, *optimizer)
	printWealth(vm, base, batch, targets, "original (fee) order")

	sc := &sim.Scenario{State: base, Batch: batch, IFUs: targets}
	out, err := sim.OptimizeBatch(rng, vm, sc, ocfg)
	if err != nil {
		return err
	}
	if out.Improvement <= 0 {
		fmt.Println("\nno profitable valid re-ordering found; honest order stands")
		return nil
	}
	fmt.Printf("\nattack succeeded: IFU wealth gain %s ETH (%d sats)\n",
		out.Improvement, out.Improvement.Sats())
	if out.InferenceSwaps >= 0 {
		fmt.Printf("trained agent reached its first candidate after %d swaps\n", out.InferenceSwaps)
	}
	return nil
}

func printWealth(vm *ovm.VM, base *state.State, batch tx.Seq, targets []chainid.Address, label string) {
	wealth, executed, err := vm.FinalWealth(base, batch, targets...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		return
	}
	var total wei.Amount
	for _, w := range wealth {
		total += w
	}
	fmt.Printf("%s: %d/%d executable, IFU wealth %s ETH\n", label, executed, len(batch), total)
	for i, t := range batch {
		fmt.Printf("  TX%-3d %s\n", i+1, t)
	}
}
