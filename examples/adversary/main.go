// Command adversary runs the full PAROLE attack inside a live rollup
// network (paper Fig. 3): honest users submit the case-study batch, an
// adversarial aggregator re-orders it with GENTRANSEQ, an honest verifier
// replays the fraud proof and finds nothing to challenge, and the batch
// finalizes on L1 with the IFU measurably richer than the honest
// counterfactual.
package main

import (
	"fmt"
	"log"

	"parole"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// deploy builds a rollup seeded with the case-study world and a batch of
// pending transactions; adversarial selects the aggregator's sequencer.
func deploy(adversarial bool) (*parole.Node, *parole.Network, *parole.AdversarialSequencer, error) {
	s, err := parole.CaseStudy()
	if err != nil {
		return nil, nil, nil, err
	}
	node := parole.NewNode(parole.NodeConfig{ChallengePeriod: 1})
	if err := node.SetupL2(func(st *parole.State) error {
		*st = *s.State
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	aggAddr := parole.AggregatorAddress(1)
	verAddr := parole.VerifierAddress(1)
	node.SetupAccount(aggAddr, parole.FromETH(10))
	node.SetupAccount(verAddr, parole.FromETH(10))

	var sequencer parole.Sequencer
	var adv *parole.AdversarialSequencer
	if adversarial {
		gen := parole.FastGenConfig()
		gen.Episodes = 30
		gen.MaxSteps = 80
		adv, err = parole.NewAdversarialSequencer(node.VM(), parole.NewRand(42), parole.AttackConfig{
			IFUs: []parole.Address{parole.CaseStudyIFU},
			Gen:  gen,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		sequencer = adv
	}
	agg, err := parole.NewAggregator(node, aggAddr, parole.FromETH(5), len(s.Original), sequencer)
	if err != nil {
		return nil, nil, nil, err
	}
	ver, err := parole.NewVerifier(node, verAddr, parole.FromETH(5))
	if err != nil {
		return nil, nil, nil, err
	}
	for _, txn := range s.Original {
		if err := node.SubmitTx(txn); err != nil {
			return nil, nil, nil, err
		}
	}
	return node, parole.NewNetwork(node, []*parole.Aggregator{agg}, []*parole.Verifier{ver}), adv, nil
}

func run() error {
	fmt.Println("PAROLE attack inside a live rollup (paper Fig. 3)")

	// Honest counterfactual.
	honestNode, honestNet, _, err := deploy(false)
	if err != nil {
		return err
	}
	if _, err := honestNet.RunRounds(3); err != nil {
		return err
	}
	honest := honestNode.L2State().TotalWealth(parole.CaseStudyIFU)
	fmt.Printf("honest aggregator:      IFU final wealth %s ETH\n", honest)

	// The attack.
	advNode, advNet, adv, err := deploy(true)
	if err != nil {
		return err
	}
	reports, err := advNet.RunRounds(3)
	if err != nil {
		return err
	}
	attacked := advNode.L2State().TotalWealth(parole.CaseStudyIFU)
	fmt.Printf("adversarial aggregator: IFU final wealth %s ETH\n", attacked)

	var challenged, finalized int
	for _, r := range reports {
		challenged += len(r.Challenged)
		finalized += len(r.Finalized)
	}
	fmt.Printf("\nverifier challenges: %d (a re-ordered batch carries a VALID fraud proof)\n", challenged)
	fmt.Printf("batches finalized on L1: %d\n", finalized)
	for _, rep := range adv.Reports() {
		fmt.Printf("attack log: batch of %d, opportunity=%v, reordered=%v, profit=%s ETH, first candidate after %d swaps\n",
			rep.BatchSize, rep.Opportunity, rep.Reordered, rep.Improvement, rep.InferenceSwaps)
	}
	if attacked > honest {
		fmt.Printf("\nPAROLE extracted %s ETH (%d sats) for the IFU — undetected by the protocol\n",
			attacked-honest, (attacked - honest).Sats())
	} else {
		fmt.Println("\nthe agent found no improving order this run; try another seed")
	}
	return nil
}
