// Command marketplace walks the paper's testbed flow (Section VII, Table
// III): deploy the PAROLE Token on a fresh optimistic rollup — the simulated
// stand-in for OpenSea via Optimism Goerli — run mint/transfer/burn traffic
// through the full deposit → mempool → batch → fraud-proof → finalize
// pipeline, and print each transaction's on-chain behavior.
package main

import (
	"fmt"
	"log"

	"parole"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A rollup whose genesis mirrors the paper's observed L1 heights.
	node := parole.NewNode(parole.NodeConfig{
		GenesisL1Number: 17_934_498,
		ChallengePeriod: 1,
		StateIndexBase:  115_921,
	})

	// Actors: two traders, one bonded aggregator, one bonded verifier.
	var (
		alice = parole.UserAddress(1)
		bob   = parole.UserAddress(2)
		aggA  = parole.AggregatorAddress(1)
		verA  = parole.VerifierAddress(1)
	)
	for _, a := range []parole.Address{alice, bob, aggA, verA} {
		node.SetupAccount(a, parole.FromETH(20))
	}

	// Deploy the PT contract on L2: max supply 10, initial price 0.2 ETH.
	ptAddr := parole.DeriveAddress("parole-token")
	if err := node.SetupL2(func(st *parole.State) error {
		pt, err := parole.DeployToken(ptAddr, parole.TokenConfig{
			Name: "ParoleToken", Symbol: "PT",
			MaxSupply: 10, InitialPrice: parole.FromFloat(0.2),
		})
		if err != nil {
			return err
		}
		return st.DeployToken(pt)
	}); err != nil {
		return err
	}

	// Users exchange L1 ETH for L2 tokens through the ORSC (Fig. 1).
	for _, u := range []parole.Address{alice, bob} {
		if err := node.Deposit(u, parole.FromETH(5)); err != nil {
			return err
		}
	}
	agg, err := parole.NewAggregator(node, aggA, parole.FromETH(5), 1, nil)
	if err != nil {
		return err
	}
	ver, err := parole.NewVerifier(node, verA, parole.FromETH(5))
	if err != nil {
		return err
	}

	fmt.Println("PAROLE Token on the simulated rollup (paper Table III)")
	fmt.Printf("%-9s %-14s %-10s %-9s %-9s %s\n",
		"TX Type", "TX Hash", "Block", "L1 index", "Gas use", "TX fees")

	traffic := []struct {
		name string
		txn  parole.Tx
	}{
		{"Minting", parole.Mint(ptAddr, 0, alice)},
		{"Transfer", parole.Transfer(ptAddr, 0, alice, bob)},
		{"Burning", parole.Burn(ptAddr, 0, bob)},
	}
	gas := parole.DefaultGasSchedule()
	for _, tr := range traffic {
		if err := node.SubmitTx(tr.txn); err != nil {
			return err
		}
		batch, res, err := agg.Step()
		if err != nil {
			return err
		}
		if batch == nil || res.Executed != 1 {
			return fmt.Errorf("%s did not execute", tr.name)
		}
		if _, err := ver.Step(); err != nil {
			return err
		}
		// Finalize through the challenge window.
		finalized := false
		for i := 0; i < 3 && !finalized; i++ {
			if anchors := node.AdvanceRound(); len(anchors) > 0 {
				step := res.Steps[0]
				fmt.Printf("%-9s %-14s %-10d %-9d %-8.2f%% %d Gwei\n",
					tr.name, step.Tx.Hash(), node.L1().Height(),
					anchors[0].StateIndex,
					gas.UsagePercent(step.Tx.Kind),
					int64(step.Fee), // Amount is denominated in gwei
				)
				finalized = true
			}
		}
		if !finalized {
			return fmt.Errorf("%s never finalized", tr.name)
		}
	}

	st := node.L2State()
	pt, err := st.Token(ptAddr)
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal PT state: %d minted, %d mintable, unit price %s ETH\n",
		pt.Minted(), pt.Available(), pt.Price())
	fmt.Printf("alice L2 balance: %s ETH, bob: %s ETH\n",
		st.Balance(alice), st.Balance(bob))
	return nil
}
