// Command quickstart reproduces the paper's Section VI case studies
// (Fig. 5): it executes the original fee order, the candidate altered order,
// and the optimal altered order of the same eight PAROLE-Token transactions,
// printing the per-row price and IFU-balance columns, then lets the PAROLE
// attack rediscover the arbitrage from scratch.
package main

import (
	"fmt"
	"log"

	"parole"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := parole.CaseStudy()
	if err != nil {
		return err
	}
	vm := parole.NewVM()

	fmt.Println("PAROLE case studies (paper Fig. 5)")
	fmt.Println("system status: S⁰=10, P⁰=0.2 ETH, 5 PTs minted, PT price 0.4 ETH")
	fmt.Printf("IFU: 1.5 ETH + 2 PTs = %s ETH total\n", s.State.TotalWealth(parole.CaseStudyIFU))

	cases := []struct {
		name string
		seq  parole.Seq
	}{
		{"case 1 — original (fee) order", s.Original},
		{"case 2 — candidate altered order", s.Case2},
		{"case 3 — optimal altered order", s.Case3},
	}
	for _, c := range cases {
		trace, res, err := vm.WealthTrace(s.State, c.seq, parole.CaseStudyIFU)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", c.name)
		fmt.Printf("  %-40s %-12s %s\n", "transaction", "PT price", "IFU total")
		for i, step := range res.Steps {
			marker := " "
			if step.Tx.Involves(parole.CaseStudyIFU) {
				marker = "*"
			}
			fmt.Printf("  %s %-38s %-12s %s\n", marker, step.Tx, step.Price, trace[i])
		}
		final := res.State.Balance(parole.CaseStudyIFU)
		fmt.Printf("  final: total %s ETH, non-volatile L2 portion %s ETH\n",
			trace[len(trace)-1], final)
	}

	// Now let GENTRANSEQ find it without being told the answer.
	fmt.Println("\nrunning the PAROLE attack (DQN, reduced budget)...")
	gen := parole.FastGenConfig()
	gen.Episodes = 30
	gen.MaxSteps = 80
	out, err := parole.Attack(parole.NewRand(42), vm, s.State, s.Original,
		[]parole.Address{parole.CaseStudyIFU}, gen)
	if err != nil {
		return err
	}
	if !out.Improved {
		fmt.Println("the agent found no improving order this run; try another seed")
		return nil
	}
	fmt.Printf("found a valid order improving the IFU by %s ETH (paper's case 3: %s ETH)\n",
		out.Improvement, parole.FromFloat(0.2333))
	return nil
}
