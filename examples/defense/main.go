// Command defense demonstrates the Section VIII mitigation: the GENTRANSEQ
// machinery runs inside Bedrock's mempool as a detector, computes the worst
// case any involved user could extract by re-ordering the pending batch, and
// demotes the minimal set of transactions to the block behind when the worst
// case exceeds a fee-derived threshold — neutralizing the PAROLE attack
// before an aggregator ever sees the batch.
package main

import (
	"fmt"
	"log"

	"parole"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := parole.CaseStudy()
	if err != nil {
		return err
	}
	vm := parole.NewVM()
	ifus := []parole.Address{parole.CaseStudyIFU}

	// Undefended: what the adversary can extract from the raw batch.
	obj, err := parole.NewSolverObjective(vm, s.State, s.Original, ifus)
	if err != nil {
		return err
	}
	raw, err := parole.HillClimbSolver.Solve(parole.NewRand(3), obj, parole.SolverBudget{MaxEvaluations: 4000})
	if err != nil {
		return err
	}
	fmt.Println("Section VIII defense demo")
	fmt.Printf("undefended batch: adversary extracts up to %s ETH by re-ordering\n", raw.Improvement)

	// The mempool-side detector with a 0.05 ETH base tolerance.
	threshold := parole.FromFloat(0.05)
	det, err := parole.NewDetector(vm, parole.SearchDetectorBackend{
		Rng:            parole.NewRand(7),
		MaxEvaluations: 3000,
	}, parole.DetectorConfig{BaseThreshold: threshold})
	if err != nil {
		return err
	}
	report, err := det.Inspect(s.State, s.Original)
	if err != nil {
		return err
	}
	fmt.Printf("\ndetector: worst case %s ETH (threshold %s) — triggered=%v\n",
		report.WorstProfit, report.Threshold, report.Triggered)
	for i, demoted := range report.Demoted {
		fmt.Printf("  demoted %d: %s (sent to the block behind)\n", i+1, demoted)
	}
	fmt.Printf("residual worst case after demotion: %s ETH\n", report.ResidualProfit)

	// Adversary view of the defended batch.
	demoted := make(map[parole.Hash]bool, len(report.Demoted))
	for _, d := range report.Demoted {
		demoted[d.Hash()] = true
	}
	var surviving parole.Seq
	for _, txn := range s.Original {
		if !demoted[txn.Hash()] {
			surviving = append(surviving, txn)
		}
	}
	if len(surviving) < 2 {
		fmt.Println("defended batch too small to re-order: attack fully neutralized")
		return nil
	}
	obj2, err := parole.NewSolverObjective(vm, s.State, surviving, ifus)
	if err != nil {
		return err
	}
	defended, err := parole.HillClimbSolver.Solve(parole.NewRand(3), obj2, parole.SolverBudget{MaxEvaluations: 4000})
	if err != nil {
		return err
	}
	fmt.Printf("\ndefended batch: adversary now extracts at most %s ETH", defended.Improvement)
	if defended.Improvement <= threshold {
		fmt.Println(" — below the tolerance, attack neutralized")
	} else {
		fmt.Println(" — above tolerance; tighten MaxDemotions or threshold")
	}
	return nil
}
