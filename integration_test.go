package parole_test

import (
	"testing"

	"parole"
)

// TestAttackVersusDefense is the end-to-end arms race: the same pending
// batch flows once through an undefended mempool into an adversarial
// aggregator, and once through the Section VIII detector first. The defended
// path must cut the extractable profit to (at most) the detector's residual.
func TestAttackVersusDefense(t *testing.T) {
	s, err := parole.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	vm := parole.NewVM()
	ifus := []parole.Address{parole.CaseStudyIFU}

	extractable := func(batch parole.Seq) parole.Amount {
		if len(batch) < 2 {
			return 0
		}
		obj, err := parole.NewSolverObjective(vm, s.State, batch, ifus)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := parole.HillClimbSolver.Solve(parole.NewRand(3), obj, parole.SolverBudget{MaxEvaluations: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return sol.Improvement
	}

	// Undefended: the adversary sees the full fee-ordered batch.
	undefended := extractable(s.Original)
	if undefended <= 0 {
		t.Fatal("no extractable profit on the raw batch")
	}

	// Defended: the detector screens the same pending set first.
	threshold := parole.FromFloat(0.05)
	det, err := parole.NewDetector(vm, parole.SearchDetectorBackend{
		Rng:            parole.NewRand(7),
		MaxEvaluations: 3000,
	}, parole.DetectorConfig{BaseThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	report, err := det.Inspect(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Triggered {
		t.Fatal("detector did not trigger on an exploitable batch")
	}
	demoted := make(map[parole.Hash]bool, len(report.Demoted))
	for _, d := range report.Demoted {
		demoted[d.Hash()] = true
	}
	var defendedBatch parole.Seq
	for _, txn := range s.Original {
		if !demoted[txn.Hash()] {
			defendedBatch = append(defendedBatch, txn)
		}
	}
	defended := extractable(defendedBatch)
	if defended >= undefended {
		t.Fatalf("defense did not reduce profit: %s vs %s", defended, undefended)
	}
	if defended > threshold {
		t.Fatalf("residual profit %s exceeds the threshold %s", defended, threshold)
	}
}

// TestMultiIFUAttack: the adversarial sequencer can serve two colluding
// users at once; total profit is positive and the final order stays a valid
// permutation.
func TestMultiIFUAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training")
	}
	s, err := parole.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	vm := parole.NewVM()
	// U19 mints (TX2) and sells (TX4) — a plausible second IFU.
	u19 := parole.UserAddress(19)
	ifus := []parole.Address{parole.CaseStudyIFU, u19}

	gen := parole.FastGenConfig()
	gen.Episodes = 30
	gen.MaxSteps = 80
	out, err := parole.Attack(parole.NewRand(42), vm, s.State, s.Original, ifus, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Improved {
		t.Skip("no improving order for this seed; acceptable for 2 IFUs")
	}
	if !s.Original.SamePermutation(out.Final) {
		t.Fatal("multi-IFU attack violated the permutation constraint")
	}
	// The improvement is the summed wealth gain across both IFUs.
	resHonest, err := vm.Execute(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	resAttack, err := vm.Execute(s.State, out.Final)
	if err != nil {
		t.Fatal(err)
	}
	var gain parole.Amount
	for _, ifu := range ifus {
		gain += resAttack.State.TotalWealth(ifu) - resHonest.State.TotalWealth(ifu)
	}
	if gain != out.Improvement {
		t.Fatalf("reported improvement %s, measured %s", out.Improvement, gain)
	}
}
