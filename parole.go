// Package parole is a research-grade Go implementation of the PAROLE attack
// on optimistic rollups (Khalil & Rahman, "PAROLE: Profitable Arbitrage in
// Optimistic Rollup with ERC-721 Token Transactions", DSN 2024), together
// with every substrate the paper's evaluation runs on: an L1 chain with the
// optimistic-rollup contract, Bedrock's private mempool, an optimistic VM,
// a limited-edition ERC-721 token with scarcity-driven pricing, a
// from-scratch DQN, baseline combinatorial solvers, and the Section VIII
// defense.
//
// The package is a facade: it re-exports the stable public surface of the
// internal packages so a downstream user never imports parole/internal/...
// directly. Three layers matter:
//
//   - World building: NewState, DeployToken, the Mint/Transfer/Burn
//     transaction constructors, and NewVM to execute sequences.
//   - Protocol: NewNode, NewAggregator, NewVerifier, and NewNetwork run the
//     full deposit → mempool → batch → fraud-proof → challenge pipeline.
//   - Attack and defense: NewAdversarialSequencer plugs the PAROLE module
//     into an aggregator; Attack runs it on one batch; NewDetector is the
//     mempool-side mitigation.
//
// See examples/ for runnable walk-throughs and DESIGN.md for the
// paper-to-package map.
package parole

import (
	"math/rand"

	"parole/internal/arbitrage"
	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/core"
	"parole/internal/defense"
	"parole/internal/gentranseq"
	"parole/internal/l1"
	"parole/internal/mempool"
	"parole/internal/ovm"
	"parole/internal/rl"
	"parole/internal/rollup"
	"parole/internal/sim"
	"parole/internal/snapshot"
	"parole/internal/solver"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Identity and money primitives.
type (
	// Address identifies an account or contract (20 bytes).
	Address = chainid.Address
	// Hash is a 32-byte digest (tx ids, state roots, block ids).
	Hash = chainid.Hash
	// Amount is a monetary quantity in gwei (1 ETH = 1e9 gwei).
	Amount = wei.Amount
)

// Monetary constructors and constants.
var (
	// FromETH converts whole ether to an Amount.
	FromETH = wei.FromETH
	// FromFloat converts a float ETH quantity to an Amount (fixtures and
	// display only).
	FromFloat = wei.FromFloat
	// ParseAmount parses a decimal ETH string.
	ParseAmount = wei.Parse
)

// ETH is one ether in gwei.
const ETH = wei.ETH

// Address derivation helpers.
var (
	// DeriveAddress derives a deterministic address from a label.
	DeriveAddress = chainid.DeriveAddress
	// UserAddress returns the k-th simulated user address (U_k).
	UserAddress = chainid.UserAddress
	// AggregatorAddress returns the k-th aggregator address (A_k).
	AggregatorAddress = chainid.AggregatorAddress
	// VerifierAddress returns the k-th verifier address (V_k).
	VerifierAddress = chainid.VerifierAddress
)

// Transactions.
type (
	// Tx is one NFT transaction (mint / transfer / burn).
	Tx = tx.Tx
	// TxKind enumerates the transaction kinds.
	TxKind = tx.Kind
	// Seq is an ordered transaction sequence (an aggregator batch).
	Seq = tx.Seq
)

// Transaction kinds.
const (
	KindMint     = tx.KindMint
	KindTransfer = tx.KindTransfer
	KindBurn     = tx.KindBurn
)

// Transaction constructors.
var (
	// Mint constructs a mint of token id by minter.
	Mint = tx.Mint
	// Transfer constructs a sale of token id from seller to buyer at the
	// current bonding-curve price.
	Transfer = tx.Transfer
	// Burn constructs a burn of token id by its owner.
	Burn = tx.Burn
)

// World state and the limited-edition token.
type (
	// State is the L2 world state (accounts + NFT contracts).
	State = state.State
	// TokenContract is a deployed limited-edition ERC-721 (Eq. 10 pricing).
	TokenContract = token.Contract
	// TokenConfig describes a token deployment (S⁰, P⁰).
	TokenConfig = token.Config
)

// World constructors.
var (
	// NewState returns an empty L2 world state.
	NewState = state.New
	// DeployToken instantiates a limited-edition ERC-721 contract.
	DeployToken = token.Deploy
)

// The optimistic VM.
type (
	// VM executes transaction sequences (Eq. 1–6 semantics, gas metering).
	VM = ovm.VM
	// ExecResult is a full execution trace.
	ExecResult = ovm.Result
	// GasSchedule is the Table III-calibrated fee model.
	GasSchedule = ovm.GasSchedule
)

// NewVM constructs an optimistic VM with the default gas schedule.
var NewVM = ovm.New

// DefaultGasSchedule returns the Table III calibration.
var DefaultGasSchedule = ovm.DefaultGasSchedule

// Rollup protocol.
type (
	// Node is a rollup deployment (L1 + ORSC + mempool + OVM + L2 state).
	Node = rollup.Node
	// NodeConfig parameterizes a deployment.
	NodeConfig = rollup.Config
	// Aggregator is a bonded batch producer.
	Aggregator = rollup.Aggregator
	// Verifier is a bonded fraud-proof checker.
	Verifier = rollup.Verifier
	// Network drives aggregators and verifiers in rounds.
	Network = rollup.Network
	// Sequencer decides batch execution order; honest aggregators use the
	// identity, adversarial ones the PAROLE module.
	Sequencer = rollup.Sequencer
	// Batch is a submitted rollup batch on the ORSC.
	Batch = l1.Batch
	// Mempool is Bedrock's private pending-transaction pool.
	Mempool = mempool.Pool
)

// Protocol constructors.
var (
	// NewNode builds a rollup deployment.
	NewNode = rollup.NewNode
	// NewAggregator registers a bonded aggregator (nil sequencer = honest).
	NewAggregator = rollup.NewAggregator
	// NewVerifier registers a bonded verifier.
	NewVerifier = rollup.NewVerifier
	// NewNetwork assembles a network of actors over a node.
	NewNetwork = rollup.NewNetwork
)

// Attack: the paper's contribution.
type (
	// AttackConfig parameterizes the adversarial sequencer.
	AttackConfig = core.Config
	// AttackReport is the per-batch attack log entry.
	AttackReport = core.Report
	// AdversarialSequencer is the PAROLE rollup.Sequencer.
	AdversarialSequencer = core.Sequencer
	// GenConfig is the GENTRANSEQ budget (Table II defaults).
	GenConfig = gentranseq.Config
	// GenResult is one GENTRANSEQ optimization outcome.
	GenResult = gentranseq.Result
	// Assessment is the arbitrage screen's verdict (Section V-B).
	Assessment = arbitrage.Assessment
	// DQNConfig carries the deep-Q-network hyper-parameters.
	DQNConfig = rl.Config
)

// Attack constructors and helpers.
var (
	// NewAdversarialSequencer builds the PAROLE sequencer.
	NewAdversarialSequencer = core.NewSequencer
	// Attack runs the PAROLE module on one batch.
	Attack = core.Attack
	// AssessArbitrage screens a batch for re-ordering opportunity.
	AssessArbitrage = arbitrage.Assess
	// CheckReorder validates a candidate order per Section V-B.
	CheckReorder = arbitrage.CheckReorder
	// DefaultGenConfig reproduces Table II (100 episodes × 200 steps).
	DefaultGenConfig = gentranseq.DefaultConfig
	// FastGenConfig is the sweep-friendly reduced budget.
	FastGenConfig = gentranseq.FastConfig
)

// Defense: the Section VIII mitigation.
type (
	// Detector screens mempool batches for re-ordering arbitrage.
	Detector = defense.Detector
	// DetectorConfig sets thresholds and demotion bounds.
	DetectorConfig = defense.Config
	// DetectorReport is one inspection outcome.
	DetectorReport = defense.Report
	// SearchDetectorBackend is the fast worst-case optimizer.
	SearchDetectorBackend = defense.SearchOptimizer
	// DQNDetectorBackend is the paper's GENTRANSEQ-based detector.
	DQNDetectorBackend = defense.DQNOptimizer
)

// NewDetector builds the mempool-side defense.
var NewDetector = defense.NewDetector

// Baseline solvers (Fig. 11 comparators).
type (
	// Solver searches for a profitable re-ordering.
	Solver = solver.Solver
	// SolverObjective scores candidate orders.
	SolverObjective = solver.Objective
	// SolverBudget bounds a solve.
	SolverBudget = solver.Budget
	// SolverSolution is a solver's answer.
	SolverSolution = solver.Solution
)

// Solver implementations.
var (
	// NewSolverObjective prepares the re-ordering objective for one batch.
	NewSolverObjective = solver.NewObjective
	// MeasureSolver instruments a solve with time and allocation counters.
	MeasureSolver = solver.Measure
)

// Solver constructors (each value is a ready-to-use Solver).
var (
	ExhaustiveSolver  Solver = solver.Exhaustive{}
	BranchBoundSolver Solver = solver.BranchBound{}
	HillClimbSolver   Solver = solver.HillClimb{}
	AnnealSolver      Solver = solver.Anneal{}
)

// NFT snapshots (Fig. 10).
type (
	// Collection is one NFT collection's price-history snapshot.
	Collection = snapshot.Collection
	// SnapshotChain identifies the rollup mainchain.
	SnapshotChain = snapshot.Chain
	// FTClass is the LFT/MFT/HFT taxonomy.
	FTClass = snapshot.FTClass
)

// Snapshot helpers.
var (
	// GenerateCollection synthesizes a snapshot history.
	GenerateCollection = snapshot.Generate
	// ScanCollectionArbitrage finds buy-low/sell-high opportunities.
	ScanCollectionArbitrage = snapshot.ScanArbitrage
	// LoadSnapshots reads holders.at-style JSON lines.
	LoadSnapshots = snapshot.LoadJSONL
)

// CaseStudy builds the paper's Section VI scenario: the exact PT world of
// the Fig. 5 case studies with the original and both altered orders.
func CaseStudy() (*CaseStudyScenario, error) { return casestudy.New() }

// CaseStudyScenario is the assembled Fig. 5 world.
type CaseStudyScenario = casestudy.Scenario

// Case-study constants.
var (
	// CaseStudyIFU is the illicitly favored user of Section VI.
	CaseStudyIFU = casestudy.IFU
	// CaseStudyToken is the PT contract address.
	CaseStudyToken = casestudy.PTAddr
)

// NewRand returns a deterministic RNG for reproducible attacks; every
// stochastic entry point in the library takes one explicitly.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Experiment drivers (the evaluation harness behind EXPERIMENTS.md).
type (
	// ScenarioConfig parameterizes a randomized rollup workload.
	ScenarioConfig = sim.ScenarioConfig
	// Scenario is one generated workload.
	Scenario = sim.Scenario
	// Fig6Config, Fig7Config, Fig8Config, Fig9Config, Fig11Config, and
	// DefenseStudyConfig parameterize the paper's evaluation sweeps.
	Fig6Config         = sim.Fig6Config
	Fig7Config         = sim.Fig7Config
	Fig8Config         = sim.Fig8Config
	Fig9Config         = sim.Fig9Config
	Fig11Config        = sim.Fig11Config
	DefenseStudyConfig = sim.DefenseConfig
)

// Experiment entry points.
var (
	// GenerateScenario builds a randomized attackable workload.
	GenerateScenario = sim.GenerateScenario
	// RunFig6 … RunFig11 regenerate the paper's figures; RunTable3 the
	// table; RunDefenseStudy the Section VIII evaluation.
	RunFig6         = sim.RunFig6
	RunFig7         = sim.RunFig7
	RunFig8         = sim.RunFig8
	RunFig9         = sim.RunFig9
	RunFig11        = sim.RunFig11
	RunTable3       = sim.RunTable3
	RunDefenseStudy = sim.RunDefenseStudy
	// RunSnapshotStudy regenerates Fig. 10.
	RunSnapshotStudy = snapshot.RunStudy
)
