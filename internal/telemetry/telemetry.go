// Package telemetry is the instrumentation substrate of the PAROLE
// reproduction: a small, dependency-free, concurrency-safe metrics registry
// with counters, gauges, fixed-bucket histograms, and stage timers, plus
// snapshot export (TSV/JSON), runtime.MemStats sampling, and machine-readable
// run manifests.
//
// Design rules (see docs/METRICS.md for the metric catalogue):
//
//   - Instrumented packages record *deterministic* quantities only —
//     counts, sizes, occupancies. Incrementing a counter never touches an
//     RNG, the wall clock, or any value that feeds back into computation,
//     so seeded experiment outputs are bit-identical with telemetry on or
//     off (guarded by TestSeededOutputsUnaffectedByTelemetry).
//   - Wall-clock sampling lives only in the reporting layer: Timer.Start is
//     a no-op until the owning Registry's timers are explicitly enabled,
//     which only the binaries (cmd/parole-bench, cmd/parole-train) do.
//   - Metric names are dot-separated lower-case paths
//     ("solver.hillclimb.restarts"); the registry get-or-creates by name so
//     hot paths can cache the returned pointer in a package-level var.
//
// The zero cost target: a Counter.Add is one atomic add, a Gauge.Set one
// atomic store; a disabled Timer.Start is one atomic load.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is permitted for occupancy-style counters but the
// conventional use is monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric holding the last set value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax stores v only if it exceeds the current value — peak tracking
// (e.g. peak HeapAlloc across MemStats samples).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed bucket layout. Buckets are
// defined by their inclusive upper bounds; an implicit +Inf bucket catches
// the overflow. Observe is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted inclusive upper bounds
	counts []int64   // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  int64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value v ≥ anything (negative values land in the first
// bucket whose bound admits them, or +Inf bucket if none do).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[idx]++
	h.sum += v
	h.count++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the observation total.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshotLocked copies the histogram state.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, sum float64, count int64, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...),
		h.sum, h.count, h.min, h.max
}

// Timer records wall-clock stage durations into a histogram of seconds. It
// is *gated*: until the owning registry enables timers (reporting layer
// only), Start returns a no-op stop function and ObserveDuration does
// nothing, keeping the monotonic clock out of seeded code paths.
type Timer struct {
	reg *Registry
	h   *Histogram
}

// Start begins a stage; invoke the returned stop function to record it.
func (t *Timer) Start() func() {
	if !t.reg.TimersEnabled() {
		return func() {}
	}
	start := time.Now()
	return func() { t.h.Observe(time.Since(start).Seconds()) }
}

// ObserveDuration records an externally measured duration (no-op while the
// registry's timers are disabled).
func (t *Timer) ObserveDuration(d time.Duration) {
	if !t.reg.TimersEnabled() {
		return
	}
	t.h.Observe(d.Seconds())
}

// Fixed bucket layouts. Shared layouts keep snapshots comparable across runs
// and PRs; docs/METRICS.md documents which metric uses which.
var (
	// SizeBuckets covers batch/mempool sizes (paper grid: 5…100).
	SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}
	// DepthBuckets covers permutation/reorder depths and swap counts.
	DepthBuckets = []float64{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 100}
	// DurationBuckets covers stage timings, in seconds (1µs … ~100s).
	DurationBuckets = []float64{
		1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
	}
	// LossBuckets covers TD-loss magnitudes (reward units², wide range).
	LossBuckets = []float64{1e-3, 1e-2, 0.1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6}
)

// Registry owns a namespace of metrics. All methods are safe for concurrent
// use; get-or-create methods return the same instance for the same name.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
	timersOn   atomic.Bool
}

// NewRegistry returns an empty registry with timers disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
}

// defaultRegistry is the process-global registry every instrumented package
// records into.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Counter get-or-creates a counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram get-or-creates a histogram with the given bucket bounds. The
// bounds of the first creation win; later calls with different bounds return
// the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Timer get-or-creates a gated stage timer recording seconds into
// DurationBuckets.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{reg: r, h: newHistogram(DurationBuckets)}
		r.timers[name] = t
	}
	return t
}

// EnableTimers switches wall-clock stage timing on or off. Only the
// reporting layer (the binaries) should enable timers; library code must
// stay deterministic.
func (r *Registry) EnableTimers(on bool) { r.timersOn.Store(on) }

// TimersEnabled reports whether stage timers record.
func (r *Registry) TimersEnabled() bool { return r.timersOn.Load() }

// Reset discards every registered metric (tests and multi-run harnesses).
// Cached metric pointers obtained before Reset keep working but are no
// longer visible in snapshots.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
	r.timers = make(map[string]*Timer)
}

// SanitizeName maps an arbitrary label (e.g. a solver name with slashes)
// into metric-name form: slashes and spaces become dots.
func SanitizeName(label string) string {
	out := make([]rune, 0, len(label))
	for _, c := range label {
		switch c {
		case '/', ' ', '\t':
			out = append(out, '.')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Metricf is a convenience for building per-instance metric names, e.g.
// Metricf("fig11.heap_alloc_peak_bytes.n%03d", n).
func Metricf(format string, args ...any) string {
	return SanitizeName(fmt.Sprintf(format, args...))
}
