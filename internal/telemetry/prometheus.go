package telemetry

// Prometheus text exposition (version 0.0.4) over a registry snapshot — the
// format every scrape ecosystem speaks, produced with zero dependencies.
// parole-node serves it at GET /metrics (docs/OBSERVABILITY.md).
//
// Mapping rules:
//
//   - Metric names are sanitized to the Prometheus grammar: dots, dashes,
//     and any other illegal rune become underscores.
//   - Counters gain the conventional `_total` suffix
//     (`rpc.requests` → `rpc_requests_total`).
//   - Gauges keep their sanitized name.
//   - Histograms export the cumulative `<name>_bucket{le="…"}` series plus
//     `<name>_sum` and `<name>_count`; the registry's per-cell counts are
//     accumulated here, in the exposition layer.
//   - Timers are histograms of seconds and gain a `_seconds` suffix
//     (`node.seal.time` → `node_seal_time_seconds_bucket{…}`).

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PromName maps a dot-separated metric name to Prometheus form, applying
// the kind's conventional suffix.
func PromName(name string, kind MetricKind) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	switch kind {
	case KindCounter:
		out += "_total"
	case KindTimer:
		out += "_seconds"
	}
	return out
}

// promFloat renders a sample value; Prometheus accepts Go's %g for all
// finite values and the spec's +Inf/-Inf/NaN spellings otherwise.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Output order follows the snapshot's (name, kind) sort, so
// identical metric states serialize identically.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		name := PromName(m.Name, m.Kind)
		switch m.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(m.Value)); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(m.Value)); err != nil {
				return err
			}
		case KindHistogram, KindTimer:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.UpperBound), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(m.Sum), name, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
