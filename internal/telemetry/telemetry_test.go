package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.concurrent")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("same name returned different counters")
	}
	if reg.Gauge("a") != reg.Gauge("a") {
		t.Error("same name returned different gauges")
	}
	if reg.Histogram("a", SizeBuckets) != reg.Histogram("a", DepthBuckets) {
		t.Error("same name returned different histograms")
	}
	if reg.Timer("a") != reg.Timer("a") {
		t.Error("same name returned different timers")
	}
}

func TestGaugeSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("peak")
	g.Set(10)
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Errorf("SetMax lowered the gauge: %g", got)
	}
	g.SetMax(20)
	if got := g.Value(); got != 20 {
		t.Errorf("SetMax did not raise the gauge: %g", got)
	}
}

func TestGaugeConcurrentSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("peak")
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			g.SetMax(v)
		}(float64(i))
	}
	wg.Wait()
	if got := g.Value(); got != 64 {
		t.Errorf("concurrent SetMax = %g, want 64", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edges", []float64{1, 5, 10})
	// Bounds are inclusive upper bounds: 1 → first bucket, 1.0001 → second,
	// 10 → third, 10.5 → +Inf overflow. Negative values land in bucket 0.
	for _, v := range []float64{-3, 0.5, 1, 1.0001, 5, 5.5, 10, 10.5, 1e9} {
		h.Observe(v)
	}
	bounds, counts, sum, count, min, max := h.snapshot()
	if want := []float64{1, 5, 10}; len(bounds) != 3 || bounds[0] != want[0] {
		t.Fatalf("bounds = %v", bounds)
	}
	wantCounts := []int64{3, 2, 2, 2} // (−inf,1], (1,5], (5,10], (10,+inf)
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if count != 9 {
		t.Errorf("count = %d, want 9", count)
	}
	if min != -3 || max != 1e9 {
		t.Errorf("min/max = %g/%g", min, max)
	}
	wantSum := -3 + 0.5 + 1 + 1.0001 + 5 + 5.5 + 10 + 10.5 + 1e9
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc", SizeBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

func TestTimerGatedByRegistry(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timer("stage")
	stop := tm.Start()
	time.Sleep(time.Millisecond)
	stop()
	tm.ObserveDuration(time.Second)
	if got := tm.h.Count(); got != 0 {
		t.Fatalf("disabled timer recorded %d observations", got)
	}

	reg.EnableTimers(true)
	stop = tm.Start()
	stop()
	tm.ObserveDuration(time.Second)
	if got := tm.h.Count(); got != 2 {
		t.Fatalf("enabled timer recorded %d observations, want 2", got)
	}
}

// TestSnapshotDeterministicWithTimersDisabled drives two registries through
// the identical sequence of deterministic recordings (timers off, as in any
// seeded library path) and asserts the serialized snapshots match byte for
// byte.
func TestSnapshotDeterministicWithTimersDisabled(t *testing.T) {
	build := func() Snapshot {
		reg := NewRegistry()
		reg.Counter("z.last").Add(3)
		reg.Counter("a.first").Inc()
		reg.Gauge("m.middle").Set(2.5)
		h := reg.Histogram("h.sizes", SizeBuckets)
		for _, v := range []float64{1, 5, 25, 100, 300} {
			h.Observe(v)
		}
		// Timers exist but are disabled — they snapshot as zero.
		stop := reg.Timer("t.stage").Start()
		stop()
		return reg.Snapshot()
	}
	var tsv1, tsv2, js1, js2 bytes.Buffer
	s1, s2 := build(), build()
	if err := s1.WriteTSV(&tsv1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteTSV(&tsv2); err != nil {
		t.Fatal(err)
	}
	if tsv1.String() != tsv2.String() {
		t.Errorf("TSV snapshots differ:\n%s\nvs\n%s", tsv1.String(), tsv2.String())
	}
	if err := s1.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if js1.String() != js2.String() {
		t.Error("JSON snapshots differ")
	}
	// Sorted by name: a.first, h.sizes, m.middle, …
	if s1.Metrics[0].Name != "a.first" {
		t.Errorf("snapshot not sorted: first metric %q", s1.Metrics[0].Name)
	}
	if !json.Valid(js1.Bytes()) {
		t.Error("snapshot JSON is invalid")
	}
	if !strings.Contains(tsv1.String(), "+Inf:") {
		t.Error("TSV missing +Inf overflow bucket")
	}
}

func TestSnapshotGet(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(7)
	snap := reg.Snapshot()
	m, ok := snap.Get("x")
	if !ok || m.Value != 7 || m.Kind != KindCounter {
		t.Errorf("Get(x) = %+v, %v", m, ok)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
}

func TestSampleMemStats(t *testing.T) {
	reg := NewRegistry()
	ms := reg.SampleMemStats()
	if ms.HeapAlloc == 0 {
		t.Skip("HeapAlloc reported 0")
	}
	if got := reg.Gauge(MetricHeapAllocBytes).Value(); got != float64(ms.HeapAlloc) {
		t.Errorf("heap gauge = %g, want %d", got, ms.HeapAlloc)
	}
	if got := reg.Gauge(MetricHeapAllocPeak).Value(); got < float64(ms.HeapAlloc) {
		t.Errorf("peak gauge %g below sample %d", got, ms.HeapAlloc)
	}
}

func TestReset(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gone").Inc()
	reg.Reset()
	if n := len(reg.Snapshot().Metrics); n != 0 {
		t.Errorf("post-reset snapshot has %d metrics", n)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"apopt-analog/branch-and-bound": "apopt-analog.branch-and-bound",
		"plain":                         "plain",
		"a b\tc":                        "a.b.c",
	} {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := Metricf("fig11.n%03d", 5); got != "fig11.n005" {
		t.Errorf("Metricf = %q", got)
	}
}
