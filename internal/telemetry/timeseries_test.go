package telemetry

import (
	"math"
	"testing"
	"time"
)

// t0 is an arbitrary fixed base time; windows only care about differences.
var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func TestCollectorFirstTickIsBaseline(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 4)
	reg.Counter("c").Add(5)
	if _, ok := c.Tick(t0); ok {
		t.Fatal("first Tick must only establish the baseline, got ok=true")
	}
	if got := len(c.Windows(0)); got != 0 {
		t.Fatalf("windows after baseline tick = %d, want 0", got)
	}
}

func TestCollectorCounterDeltasAndGaugeLevels(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 4)
	cnt := reg.Counter("txs")
	g := reg.Gauge("depth")

	cnt.Add(10)
	g.Set(3)
	c.Tick(t0)

	cnt.Add(7)
	g.Set(11)
	w, ok := c.Tick(t0.Add(2 * time.Second))
	if !ok {
		t.Fatal("second Tick must complete a window")
	}
	if w.Index != 0 {
		t.Errorf("Index = %d, want 0", w.Index)
	}
	if got := w.Counters["txs"]; got != 7 {
		t.Errorf("counter delta = %d, want 7 (cumulative value must not leak in)", got)
	}
	if got := w.Gauges["depth"]; got != 11 {
		t.Errorf("gauge level = %v, want 11", got)
	}
	if got := w.Seconds(); got != 2 {
		t.Errorf("Seconds() = %v, want 2", got)
	}

	// An idle window still lists the metric with delta 0.
	w2, _ := c.Tick(t0.Add(3 * time.Second))
	if got, ok := w2.Counters["txs"]; !ok || got != 0 {
		t.Errorf("idle window delta = %d (present=%v), want 0 present", got, ok)
	}
	if w2.Index != 1 {
		t.Errorf("second window Index = %d, want 1", w2.Index)
	}
}

func TestCollectorHistogramDeltas(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 4)
	h := reg.Histogram("lat", []float64{1, 10})

	h.Observe(0.5)
	h.Observe(5)
	c.Tick(t0)

	h.Observe(0.5) // second obs into the first bucket
	h.Observe(100) // +Inf bucket
	w, _ := c.Tick(t0.Add(time.Second))
	hw := w.Hists["lat"]
	if hw.Count != 2 {
		t.Fatalf("window Count = %d, want 2", hw.Count)
	}
	if hw.Sum != 100.5 {
		t.Errorf("window Sum = %v, want 100.5", hw.Sum)
	}
	want := []int64{1, 0, 1} // bounds 1, 10, +Inf
	if len(hw.Buckets) != len(want) {
		t.Fatalf("bucket cells = %d, want %d", len(hw.Buckets), len(want))
	}
	for i, b := range hw.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket[%d] delta = %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(hw.Buckets[2].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", hw.Buckets[2].UpperBound)
	}
}

func TestCollectorMetricRegisteredMidFlight(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 4)
	c.Tick(t0)
	reg.Counter("late").Add(9) // first appears after the baseline
	w, _ := c.Tick(t0.Add(time.Second))
	if got := w.Counters["late"]; got != 9 {
		t.Errorf("mid-flight registration delta = %d, want full value 9", got)
	}
}

func TestCollectorRingWraparound(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 3)
	cnt := reg.Counter("c")
	c.Tick(t0)
	for i := 1; i <= 5; i++ {
		cnt.Inc()
		c.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	ws := c.Windows(0)
	if len(ws) != 3 {
		t.Fatalf("retained windows = %d, want cap 3", len(ws))
	}
	for i, w := range ws {
		if want := uint64(2 + i); w.Index != want {
			t.Errorf("ws[%d].Index = %d, want %d (oldest first, oldest evicted)", i, w.Index, want)
		}
	}
	// Windows(n) trims from the old end.
	last := c.Windows(1)
	if len(last) != 1 || last[0].Index != 4 {
		t.Errorf("Windows(1) = %+v, want just index 4", last)
	}
}

func TestCollectorRate(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 8)
	cnt := reg.Counter("txs")
	c.Tick(t0)
	cnt.Add(30)
	c.Tick(t0.Add(2 * time.Second))
	cnt.Add(10)
	c.Tick(t0.Add(4 * time.Second))
	if got := c.Rate("txs", 0); got != 10 {
		t.Errorf("Rate over all windows = %v, want 10 (40 txs / 4s)", got)
	}
	if got := c.Rate("txs", 1); got != 5 {
		t.Errorf("Rate over last window = %v, want 5 (10 txs / 2s)", got)
	}
	if got := c.Rate("absent", 0); got != 0 {
		t.Errorf("Rate of unknown counter = %v, want 0", got)
	}
}

func TestMergeHistAndQuantile(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, 8)
	h := reg.Histogram("lat", []float64{10, 20, 40})
	c.Tick(t0)
	for i := 0; i < 10; i++ {
		h.Observe(5) // first bucket
	}
	c.Tick(t0.Add(time.Second))
	for i := 0; i < 10; i++ {
		h.Observe(15) // second bucket
	}
	c.Tick(t0.Add(2 * time.Second))

	m := c.MergeHist("lat", 0)
	if m.Count != 20 {
		t.Fatalf("merged Count = %d, want 20", m.Count)
	}
	// p50 lands exactly on the boundary of the first bucket (10 of 20 obs).
	if got := m.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// p75 is halfway through the second bucket: 10 + (15-10)/10 obs... linear
	// interpolation inside (10,20]: rank 15, 5 of 10 into the bucket → 15.
	if got := m.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %v, want 15", got)
	}
	// Only the last window: all 10 obs in (10,20].
	if got := c.Quantile("lat", 1, 1); got != 20 {
		t.Errorf("p100 over last window = %v, want 20", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN((HistWindow{}).Quantile(0.5)) {
		t.Error("empty window quantile must be NaN")
	}
	// All observations in +Inf clamp to the highest finite bound.
	hw := HistWindow{Count: 4, Buckets: []Bucket{
		{UpperBound: 1}, {UpperBound: 2}, {UpperBound: math.Inf(1), Count: 4},
	}}
	if got := hw.Quantile(0.99); got != 2 {
		t.Errorf("overflow-only p99 = %v, want clamp to 2", got)
	}
}

func TestCollectorDoesNotPerturbRegistry(t *testing.T) {
	// The collector is read-only: ticking must leave every metric exactly as
	// the workload wrote it (the cross-package guard test exercises the full
	// seeded pipeline; this pins the registry-level contract).
	reg := NewRegistry()
	cnt := reg.Counter("c")
	cnt.Add(3)
	h := reg.Histogram("h", []float64{1})
	h.Observe(0.5)
	before := reg.Snapshot()
	c := NewCollector(reg, 4)
	c.Tick(t0)
	c.Tick(t0.Add(time.Second))
	c.Windows(0)
	c.Rate("c", 0)
	c.Quantile("h", 0.5, 0)
	after := reg.Snapshot()
	if len(before.Metrics) != len(after.Metrics) {
		t.Fatalf("metric count changed: %d → %d", len(before.Metrics), len(after.Metrics))
	}
	for i := range before.Metrics {
		b, a := before.Metrics[i], after.Metrics[i]
		if b.Name != a.Name || b.Value != a.Value || b.Count != a.Count || b.Sum != a.Sum {
			t.Errorf("metric %q changed: %+v → %+v", b.Name, b, a)
		}
	}
}
