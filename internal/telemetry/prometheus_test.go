package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := []struct {
		name string
		kind MetricKind
		want string
	}{
		{"rpc.requests", KindCounter, "rpc_requests_total"},
		{"node.seal.time", KindTimer, "node_seal_time_seconds"},
		{"runtime.heap_alloc_bytes", KindGauge, "runtime_heap_alloc_bytes"},
		{"solver.bnb.prunes", KindCounter, "solver_bnb_prunes_total"},
		{"fig11.n-100", KindGauge, "fig11_n_100"},
		{"9lives", KindGauge, "_9lives"},
		{"batch.size", KindHistogram, "batch_size"},
	}
	for _, c := range cases {
		if got := PromName(c.name, c.kind); got != c.want {
			t.Errorf("PromName(%q, %s) = %q, want %q", c.name, c.kind, got, c.want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimers(true)
	reg.Counter("rpc.requests").Add(42)
	reg.Gauge("mempool.depth").Set(17.5)
	reg.Timer("node.seal.time").ObserveDuration(3 * time.Millisecond)
	h := reg.Histogram("batch.size", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(999)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE rpc_requests_total counter\nrpc_requests_total 42\n",
		"# TYPE mempool_depth gauge\nmempool_depth 17.5\n",
		"# TYPE node_seal_time_seconds histogram\n",
		"node_seal_time_seconds_count 1\n",
		"# TYPE batch_size histogram\n",
		"batch_size_bucket{le=\"1\"} 1\n",
		"batch_size_bucket{le=\"10\"} 2\n",
		"batch_size_bucket{le=\"+Inf\"} 3\n",
		"batch_size_sum 1004.5\n",
		"batch_size_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Buckets must be cumulative in the exposition even though the registry
	// stores per-cell counts.
	if strings.Contains(out, "batch_size_bucket{le=\"10\"} 1\n") {
		t.Error("le=\"10\" bucket is per-cell, want cumulative")
	}
}

// checkExposition parses a Prometheus text payload and fails on torn rows:
// every non-comment line must be "name[{le=…}] value", every histogram's
// bucket series must be non-decreasing in le-order, and its +Inf bucket must
// equal its _count line. Returns the parsed sample values by series name.
func checkExposition(t *testing.T, payload string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	type histState struct {
		lastCum float64
		infCum  float64
		hasInf  bool
	}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(strings.NewReader(payload))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("torn line (no sample separator): %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil {
			t.Fatalf("unparseable sample %q in line %q: %v", valStr, line, err)
		}
		samples[series] = val
		if i := strings.Index(series, "_bucket{le="); i >= 0 {
			base := series[:i]
			st := hists[base]
			if st == nil {
				st = &histState{}
				hists[base] = st
			}
			if val < st.lastCum {
				t.Fatalf("torn histogram: %s cumulative decreased (%g after %g)", series, val, st.lastCum)
			}
			st.lastCum = val
			if strings.Contains(series, `le="+Inf"`) {
				st.infCum, st.hasInf = val, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for base, st := range hists {
		if !st.hasInf {
			t.Errorf("histogram %s has no +Inf bucket", base)
		}
		count, ok := samples[base+"_count"]
		if !ok {
			t.Errorf("histogram %s has buckets but no _count", base)
		} else if st.infCum != count {
			t.Errorf("histogram %s torn: +Inf cumulative %g != _count %g", base, st.infCum, count)
		}
	}
	return samples
}

// TestScrapeUnderLoad hammers the registry's writers from many goroutines
// while snapshots and Prometheus exposition run concurrently — the -race
// scrape test: output must stay well-formed with no torn histogram rows.
func TestScrapeUnderLoad(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimers(true)
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cnt := reg.Counter(fmt.Sprintf("load.count.%d", i%4))
			g := reg.Gauge("load.level")
			h := reg.Histogram("load.hist", SizeBuckets)
			tm := reg.Timer("load.time")
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				cnt.Inc()
				g.Set(float64(j))
				h.Observe(float64(j % 300))
				tm.ObserveDuration(time.Duration(j%50) * time.Millisecond)
			}
		}(i)
	}

	var lastReqs float64
	for scrape := 0; scrape < 25; scrape++ {
		var buf bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		samples := checkExposition(t, buf.String())
		// Counters are monotone across scrapes even under concurrent writes.
		if v := samples["load_count_0_total"]; v < lastReqs {
			t.Fatalf("counter went backwards: %g after %g", v, lastReqs)
		} else {
			lastReqs = v
		}
	}
	close(stop)
	wg.Wait()

	// Final quiesced scrape still parses and the histogram is consistent.
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, buf.String())
}
