package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricKind classifies a snapshot row.
type MetricKind string

// Snapshot row kinds.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
	KindTimer     MetricKind = "timer"
)

// Bucket is one histogram cell in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper bound; +Inf for the overflow cell
	// (serialized as the string "+Inf" in JSON).
	UpperBound float64 `json:"le"`
	// Count of observations in this cell (not cumulative).
	Count int64 `json:"count"`
}

// MarshalJSON renders +Inf as a string so the output stays valid JSON.
func (b Bucket) MarshalJSON() ([]byte, error) {
	type alias struct {
		UpperBound any   `json:"le"`
		Count      int64 `json:"count"`
	}
	a := alias{UpperBound: b.UpperBound, Count: b.Count}
	if math.IsInf(b.UpperBound, 1) {
		a.UpperBound = "+Inf"
	}
	return json.Marshal(a)
}

// UnmarshalJSON accepts both the numeric form and the "+Inf" string form
// MarshalJSON produces, so JSON snapshots round-trip.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var a struct {
		UpperBound any   `json:"le"`
		Count      int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	b.Count = a.Count
	switch v := a.UpperBound.(type) {
	case float64:
		b.UpperBound = v
	case string:
		switch v {
		case "+Inf", "Inf":
			b.UpperBound = math.Inf(1)
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("telemetry: bucket bound %q: %w", v, err)
			}
			b.UpperBound = f
		}
	default:
		return fmt.Errorf("telemetry: bucket bound has unexpected type %T", a.UpperBound)
	}
	return nil
}

// Metric is one exported metric. Value holds the counter count or gauge
// level; histograms and timers populate Count/Sum/Min/Max/Buckets instead.
type Metric struct {
	Name    string     `json:"name"`
	Kind    MetricKind `json:"kind"`
	Value   float64    `json:"value,omitempty"`
	Count   int64      `json:"count,omitempty"`
	Sum     float64    `json:"sum,omitempty"`
	Min     float64    `json:"min,omitempty"`
	Max     float64    `json:"max,omitempty"`
	Buckets []Bucket   `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time export of a registry, sorted by (name, kind)
// so identical metric states serialize identically.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot exports every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	r.mu.Unlock()

	var out []Metric
	for name, c := range counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	histMetric := func(name string, kind MetricKind, h *Histogram) Metric {
		bounds, counts, sum, count, min, max := h.snapshot()
		m := Metric{Name: name, Kind: kind, Count: count, Sum: sum}
		if count > 0 {
			m.Min, m.Max = min, max
		}
		for i, b := range bounds {
			m.Buckets = append(m.Buckets, Bucket{UpperBound: b, Count: counts[i]})
		}
		m.Buckets = append(m.Buckets, Bucket{UpperBound: math.Inf(1), Count: counts[len(counts)-1]})
		return m
	}
	for name, h := range hists {
		out = append(out, histMetric(name, KindHistogram, h))
	}
	for name, t := range timers {
		out = append(out, histMetric(name, KindTimer, t.h))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return Snapshot{Metrics: out}
}

// Get returns the metric with the given name, if present.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// formatValue prints integral values (counters, byte totals) without an
// exponent and everything else with %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteTSV renders the snapshot as one row per metric:
//
//	name  kind  value  count  sum  min  max  buckets
//
// where buckets is "le:count,le:count,…" (empty for scalars).
func (s Snapshot) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name\tkind\tvalue\tcount\tsum\tmin\tmax\tbuckets"); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		var buckets strings.Builder
		for i, b := range m.Buckets {
			if i > 0 {
				buckets.WriteByte(',')
			}
			if math.IsInf(b.UpperBound, 1) {
				fmt.Fprintf(&buckets, "+Inf:%d", b.Count)
			} else {
				fmt.Fprintf(&buckets, "%g:%d", b.UpperBound, b.Count)
			}
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			m.Name, m.Kind, formatValue(m.Value), m.Count, formatValue(m.Sum),
			formatValue(m.Min), formatValue(m.Max), buckets.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path, choosing the format from the
// extension: ".json" → JSON, anything else → TSV.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create snapshot: %w", err)
	}
	if filepath.Ext(path) == ".json" {
		err = s.WriteJSON(f)
	} else {
		err = s.WriteTSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemStats gauge names populated by SampleMemStats.
const (
	MetricHeapAllocBytes  = "runtime.heap_alloc_bytes"
	MetricHeapAllocPeak   = "runtime.heap_alloc_peak_bytes"
	MetricTotalAllocBytes = "runtime.total_alloc_bytes"
	MetricHeapSysBytes    = "runtime.heap_sys_bytes"
	MetricNumGC           = "runtime.num_gc"
	MetricNumGoroutine    = "runtime.goroutines"
)

// SampleMemStats reads runtime.MemStats into gauges, tracking the peak
// HeapAlloc across samples — the Fig. 11(b) memory axis. Reporting-layer
// only: memory readings never feed back into computation.
func (r *Registry) SampleMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(MetricHeapAllocBytes).Set(float64(ms.HeapAlloc))
	r.Gauge(MetricHeapAllocPeak).SetMax(float64(ms.HeapAlloc))
	r.Gauge(MetricTotalAllocBytes).Set(float64(ms.TotalAlloc))
	r.Gauge(MetricHeapSysBytes).Set(float64(ms.HeapSys))
	r.Gauge(MetricNumGC).Set(float64(ms.NumGC))
	r.Gauge(MetricNumGoroutine).Set(float64(runtime.NumGoroutine()))
	return ms
}

// Manifest is the machine-readable record of one experiment run: what was
// run, with which seed and budget, on which toolchain, and the metric
// snapshot it produced. cmd/parole-bench writes one per -out directory.
type Manifest struct {
	// Tool is the producing binary ("parole-bench", "parole-train").
	Tool string `json:"tool"`
	// Seed is the base RNG seed of the run.
	Seed int64 `json:"seed"`
	// Params records the remaining run parameters (budget, experiment
	// selection, grid overrides) as printable strings.
	Params map[string]string `json:"params,omitempty"`
	// GoVersion, GOOS, and GOARCH pin the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// When is the RFC 3339 completion time (reporting layer; absent from
	// any seeded computation).
	When string `json:"when"`
	// Trace records whether causal tracing (internal/trace) was enabled for
	// the run and, when a trace file was written alongside the outputs, its
	// path and content hash — so trace artifacts stay tied to the run that
	// produced them. Nil when the producing binary predates tracing.
	Trace *TraceInfo `json:"trace,omitempty"`
	// Metrics is the registry snapshot at completion.
	Metrics Snapshot `json:"metrics"`
}

// TraceInfo is the Manifest's record of the run's tracing configuration.
type TraceInfo struct {
	// Enabled reports whether the span tracer recorded during the run.
	Enabled bool `json:"enabled"`
	// File is the trace file path as given on the command line; SHA256 is
	// the hex SHA-256 of its bytes. Both empty when tracing was disabled.
	File   string `json:"file,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
}

// NewManifest stamps a manifest with the current toolchain and time.
func NewManifest(tool string, seed int64, params map[string]string, metrics Snapshot) Manifest {
	return Manifest{
		Tool:      tool,
		Seed:      seed,
		Params:    params,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		When:      time.Now().UTC().Format(time.RFC3339),
		Metrics:   metrics,
	}
}

// WriteFile writes the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(m)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
