package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestSnapshotJSONRoundTripMatchesTSV exercises both snapshot writers
// against each other: a JSON snapshot must re-parse (through
// Bucket.UnmarshalJSON, which restores the "+Inf" overflow bound) into a
// value whose TSV rendering is byte-identical to the original's — so either
// artifact can be regenerated from the other without loss.
func TestSnapshotJSONRoundTripMatchesTSV(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimers(true)
	reg.Counter("rt.count").Add(42)
	reg.Gauge("rt.level").Set(3.75)
	h := reg.Histogram("rt.sizes", SizeBuckets)
	for _, v := range []float64{1, 3, 7, 40, 5000} { // 5000 → +Inf bucket
		h.Observe(v)
	}
	reg.Timer("rt.stage").ObserveDuration(1500 * time.Microsecond)

	snap := reg.Snapshot()

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("JSON snapshot does not re-parse: %v", err)
	}

	// The overflow bucket must come back as the real +Inf, not a string or 0.
	m, ok := back.Get("rt.sizes")
	if !ok {
		t.Fatal("rt.sizes missing after round trip")
	}
	last := m.Buckets[len(m.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Errorf("overflow bound after round trip = %v, want +Inf", last.UpperBound)
	}
	if last.Count != 1 {
		t.Errorf("overflow count after round trip = %d, want 1", last.Count)
	}

	var tsvOrig, tsvBack bytes.Buffer
	if err := snap.WriteTSV(&tsvOrig); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteTSV(&tsvBack); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tsvOrig.Bytes(), tsvBack.Bytes()) {
		t.Errorf("TSV of re-parsed JSON snapshot differs from the original:\n--- original ---\n%s--- reparsed ---\n%s",
			tsvOrig.String(), tsvBack.String())
	}
}

// TestBucketUnmarshalRejectsGarbage pins the error paths of the custom
// bucket decoder.
func TestBucketUnmarshalRejectsGarbage(t *testing.T) {
	var b Bucket
	if err := json.Unmarshal([]byte(`{"le":"not-a-number","count":1}`), &b); err == nil {
		t.Error("non-numeric bound string accepted")
	}
	if err := json.Unmarshal([]byte(`{"le":[1],"count":1}`), &b); err == nil {
		t.Error("array bound accepted")
	}
	if err := json.Unmarshal([]byte(`{"le":"250","count":9}`), &b); err != nil {
		t.Errorf("numeric string bound rejected: %v", err)
	} else if b.UpperBound != 250 || b.Count != 9 {
		t.Errorf("numeric string bound parsed as %v/%d, want 250/9", b.UpperBound, b.Count)
	}
}
