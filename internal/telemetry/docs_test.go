package telemetry

// Documentation drift tests: docs/METRICS.md must catalogue every metric
// name registered in code (and list no stale ones), and docs/TRACING.md
// must document every span kind and lifecycle stage declared in
// internal/trace/kinds.go. Grep-based on purpose — the check must not
// depend on the packages under test importing anything new.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const repoRoot = "../.."

// skipDirs are directories that hold no instrumented source.
var skipDirs = map[string]bool{
	".git": true, ".github": true, "results": true, "results-full": true,
	"docs": true, "testdata": true,
}

// registrationRE captures the literal first argument of a metric
// registration. Dynamic names (concatenation, Metricf) are matched by their
// literal prefix instead.
var (
	registrationRE = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram|Timer)\("([^"]+)"`)
	metricfRE      = regexp.MustCompile(`Metricf\("([^"]+)"`)
	metricConstRE  = regexp.MustCompile(`\n\tMetric\w+\s+= "([^"]+)"`)
	docRowRE       = regexp.MustCompile("(?m)^\\| `([^`]+)` \\|")
	kindConstRE    = regexp.MustCompile(`= "([a-z_.]+)"`)
	formatVerbRE   = regexp.MustCompile(`%[0-9.+#-]*[a-zA-Z]`)
	wildcardRE     = regexp.MustCompile(`<[^>]+>`)
)

// goSources returns the contents of every non-test .go file in the repo.
func goSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(repoRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if skipDirs[info.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[path] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no Go sources found — repo layout changed?")
	}
	return out
}

// codeMetricNames extracts every metric name (or literal prefix of a
// dynamic name) registered in code. Names containing format verbs are
// truncated at the first verb and reported as prefixes.
func codeMetricNames(t *testing.T) (exact, prefixes map[string][]string) {
	exact = map[string][]string{}
	prefixes = map[string][]string{}
	for path, src := range goSources(t) {
		var literals []string
		for _, m := range registrationRE.FindAllStringSubmatch(src, -1) {
			literals = append(literals, m[1])
		}
		for _, m := range metricfRE.FindAllStringSubmatch(src, -1) {
			literals = append(literals, m[1])
		}
		if strings.Contains(path, "internal/telemetry") {
			for _, m := range metricConstRE.FindAllStringSubmatch(src, -1) {
				literals = append(literals, m[1])
			}
		}
		for _, name := range literals {
			dynamic := false
			if i := formatVerbRE.FindStringIndex(name); i != nil {
				name, dynamic = name[:i[0]], true
			}
			if name == "" {
				continue
			}
			if dynamic || strings.HasSuffix(name, ".") || !strings.Contains(name, ".") {
				prefixes[name] = append(prefixes[name], path)
			} else {
				exact[name] = append(exact[name], path)
			}
		}
	}
	return exact, prefixes
}

// docMetricNames parses the METRICS.md catalogue rows into exact names and
// wildcard patterns (rows containing <placeholders>).
func docMetricNames(t *testing.T) (exact map[string]bool, wildcards map[string]*regexp.Regexp) {
	data, err := os.ReadFile(filepath.Join(repoRoot, "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	exact = map[string]bool{}
	wildcards = map[string]*regexp.Regexp{}
	for _, m := range docRowRE.FindAllStringSubmatch(string(data), -1) {
		name := m[1]
		if !strings.Contains(name, ".") {
			continue // table header or bucket-layout row, not a metric
		}
		if wildcardRE.MatchString(name) {
			pat := wildcardRE.ReplaceAllString(regexp.QuoteMeta(name), `.+`)
			wildcards[name] = regexp.MustCompile("^" + pat + "$")
		} else {
			exact[name] = true
		}
	}
	if len(exact) == 0 {
		t.Fatal("no metric rows parsed from docs/METRICS.md — format changed?")
	}
	return exact, wildcards
}

// TestEveryCodeMetricIsDocumented fails when code registers a metric name
// that docs/METRICS.md does not catalogue.
func TestEveryCodeMetricIsDocumented(t *testing.T) {
	codeExact, codePrefixes := codeMetricNames(t)
	docExact, docWild := docMetricNames(t)

	for name, sites := range codeExact {
		if docExact[name] {
			continue
		}
		matched := false
		for _, re := range docWild {
			if re.MatchString(name) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("metric %q (registered in %s) is not documented in docs/METRICS.md", name, sites[0])
		}
	}
	// A dynamic registration prefix must fall under some wildcard row.
	for prefix, sites := range codePrefixes {
		matched := false
		for doc := range docWild {
			static := doc
			if i := strings.Index(doc, "<"); i >= 0 {
				static = doc[:i]
			}
			if strings.HasPrefix(static, prefix) || strings.HasPrefix(prefix, static) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("dynamic metric prefix %q (in %s) matches no wildcard row in docs/METRICS.md", prefix, sites[0])
		}
	}
}

// TestEveryDocumentedMetricExistsInCode fails on stale METRICS.md rows:
// documented names no registration site produces anymore.
func TestEveryDocumentedMetricExistsInCode(t *testing.T) {
	codeExact, _ := codeMetricNames(t)
	docExact, docWild := docMetricNames(t)

	for name := range docExact {
		if _, ok := codeExact[name]; ok {
			continue
		}
		// Dynamic sites (concatenation) register documented exact names too;
		// accept the name if its full text appears in some source file.
		if sourceContains(t, name) {
			continue
		}
		t.Errorf("docs/METRICS.md documents %q but no code registers it (stale row?)", name)
	}
	for doc := range docWild {
		static := doc
		if i := strings.Index(doc, "<"); i >= 0 {
			static = doc[:i]
		}
		if !sourceContains(t, static) {
			t.Errorf("docs/METRICS.md wildcard row %q: prefix %q appears nowhere in code (stale row?)", doc, static)
		}
	}
}

func sourceContains(t *testing.T, needle string) bool {
	for _, src := range goSources(t) {
		if strings.Contains(src, needle) {
			return true
		}
	}
	return false
}

// TestTracingDocCoversAllSpanKindsAndStages fails when a span kind or
// lifecycle stage declared in internal/trace/kinds.go is missing from
// docs/TRACING.md (or documented under a stale name).
func TestTracingDocCoversAllSpanKindsAndStages(t *testing.T) {
	kindsSrc, err := os.ReadFile(filepath.Join(repoRoot, "internal", "trace", "kinds.go"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(filepath.Join(repoRoot, "docs", "TRACING.md"))
	if err != nil {
		t.Fatal(err)
	}
	names := kindConstRE.FindAllStringSubmatch(string(kindsSrc), -1)
	if len(names) < 15 {
		t.Fatalf("parsed only %d constants from kinds.go — extraction broken?", len(names))
	}
	for _, m := range names {
		if !strings.Contains(string(doc), "`"+m[1]+"`") {
			t.Errorf("docs/TRACING.md does not document %q from internal/trace/kinds.go", m[1])
		}
	}
}
