package telemetry_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/logx"
	"parole/internal/ovm"
	"parole/internal/solver"
	"parole/internal/telemetry"
)

// TestSeededOutputsUnaffectedByTelemetry is the determinism guard for the
// instrumentation pass: a seeded solver run and a seeded GENTRANSEQ
// optimization must produce bit-identical outputs whether the full
// reporting layer is live — wall-clock stage timers, a ticking windowed
// Collector, and debug-level structured logging — or everything is off (the
// library default). Counters always record, so this also proves counting
// never feeds back into RNG consumption or results; the collector leg
// proves windowed sampling is read-only; the logx leg proves log sites in
// library code never perturb the workload.
func TestSeededOutputsUnaffectedByTelemetry(t *testing.T) {
	run := func(obsOn bool) string {
		reg := telemetry.Default()
		prev := reg.TimersEnabled()
		reg.EnableTimers(obsOn)
		defer reg.EnableTimers(prev)

		var collector *telemetry.Collector
		if obsOn {
			// Full reporting mode: debug logs to a buffer and a collector
			// ticking around the workload, exactly as parole-node runs.
			var logBuf bytes.Buffer
			logx.Configure(&logBuf, logx.LevelDebug, logx.FormatJSON)
			defer logx.Disable()
			collector = telemetry.NewCollector(reg, 8)
			collector.Tick(time.Now())
		}
		tick := func() {
			if collector != nil {
				collector.Tick(time.Now())
			}
		}

		s, err := casestudy.New()
		if err != nil {
			t.Fatal(err)
		}
		vm := ovm.New()
		ifus := []chainid.Address{casestudy.IFU}
		rng := rand.New(rand.NewSource(7))

		// A metaheuristic solver run (consumes the RNG, records counters,
		// and passes through the Measure reporting layer).
		obj, err := solver.NewObjective(vm, s.State, s.Original, ifus)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := solver.Measure(solver.HillClimb{}, rng, obj, solver.Budget{MaxEvaluations: 400})
		if err != nil {
			t.Fatal(err)
		}
		tick() // complete a window mid-workload

		// A full GENTRANSEQ optimization (DQN training + greedy inference).
		cfg := gentranseq.FastConfig()
		cfg.Episodes, cfg.MaxSteps = 5, 20
		res, err := gentranseq.Optimize(rng, vm, s.State, s.Original, ifus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tick() // and one after

		return fmt.Sprintf("solver seq=%v evals=%d imp=%s complete=%v | gen final=%v imp=%s improved=%v swaps=%d rewards=%v",
			sol.Seq, sol.Evaluations, sol.Improvement, sol.Complete,
			res.Final, res.Improvement, res.Improved, res.InferenceSwaps, res.EpisodeRewards)
	}

	off := run(false)
	on := run(true)
	offAgain := run(false)
	if off != on {
		t.Errorf("seeded outputs differ with observability on vs off:\noff: %s\non:  %s", off, on)
	}
	if off != offAgain {
		t.Errorf("seeded outputs not reproducible across runs:\n1st: %s\n2nd: %s", off, offAgain)
	}
}
