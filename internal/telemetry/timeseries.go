package telemetry

// Windowed time-series collection: a deterministic ring buffer of
// per-interval registry deltas, sampled only in the reporting layer.
//
// The registry's counters and histograms are cumulative; an operator
// watching a live node needs *rates* (tx/s, batches/s, errors/s) and
// *rolling* latency quantiles (seal p50/p99 over the last minute). The
// Collector produces both without touching the instrumented packages: on
// every Tick it snapshots the registry, diffs against the previous
// snapshot, and stores the per-window counter deltas, histogram bucket
// deltas, and gauge levels in a fixed-capacity ring. Nothing here writes
// into a metric and no instrumented path knows the collector exists, so
// the bit-identical-with-telemetry-off guarantee is untouched
// (TestSeededOutputsUnaffectedByTelemetry exercises a ticking collector).
//
// parole-node ticks a Collector on the -obs-window cadence and serves the
// ring through the parole_metricsDelta RPC; cmd/parole-top renders it.

import (
	"math"
	"sync"
	"time"
)

// HistWindow is one histogram's activity inside a single window: the
// non-cumulative per-bucket observation deltas (the final cell is +Inf),
// plus the window's observation count and sum.
type HistWindow struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Window is one completed sampling interval: every counter's delta, every
// gauge's end-of-window level, and every histogram's bucket deltas.
// Metrics with no activity in the window are still present (delta 0), so
// consumers can tell "idle" from "unregistered".
type Window struct {
	// Index increments by one per completed window since the collector
	// started; gaps never occur.
	Index uint64 `json:"index"`
	// Start and End bound the interval (reporting-layer wall clock).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Counters holds per-window deltas keyed by metric name.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds the level observed at End.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Hists holds per-window histogram deltas (timers included) keyed by
	// metric name.
	Hists map[string]HistWindow `json:"hists,omitempty"`
}

// Seconds returns the window's length in seconds.
func (w Window) Seconds() float64 { return w.End.Sub(w.Start).Seconds() }

// Collector maintains the ring of recent windows over one registry. All
// methods are safe for concurrent use; Tick is typically driven by a single
// reporting-layer goroutine while RPC handlers read.
type Collector struct {
	mu      sync.Mutex
	reg     *Registry
	cap     int
	started bool
	prev    Snapshot
	prevAt  time.Time
	ring    []Window // ring[next%cap] is the oldest slot once full
	next    uint64   // index of the next window to complete
}

// DefaultWindowCap is the ring capacity NewCollector resolves a
// non-positive cap to: at the node's default 1s window it holds a minute.
const DefaultWindowCap = 60

// NewCollector returns a collector over reg holding up to capN completed
// windows (capN <= 0 resolves to DefaultWindowCap). No sample is taken
// until the first Tick.
func NewCollector(reg *Registry, capN int) *Collector {
	if capN <= 0 {
		capN = DefaultWindowCap
	}
	return &Collector{reg: reg, cap: capN}
}

// Tick completes one window: snapshot the registry, diff against the
// previous sample, append the delta window to the ring. The first Tick
// only establishes the baseline and reports ok=false; every later Tick
// returns the completed window.
func (c *Collector) Tick(now time.Time) (Window, bool) {
	snap := c.reg.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		c.started = true
		c.prev, c.prevAt = snap, now
		return Window{}, false
	}
	w := diffWindow(c.prev, snap)
	w.Index, w.Start, w.End = c.next, c.prevAt, now
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, w)
	} else {
		c.ring[int(c.next)%c.cap] = w
	}
	c.next++
	c.prev, c.prevAt = snap, now
	return w, true
}

// diffWindow computes cur minus prev. A metric absent from prev (first
// registration mid-flight) contributes its full cumulative value.
func diffWindow(prev, cur Snapshot) Window {
	prevByName := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		prevByName[m.Name+"\x00"+string(m.Kind)] = m
	}
	w := Window{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistWindow{},
	}
	for _, m := range cur.Metrics {
		p, had := prevByName[m.Name+"\x00"+string(m.Kind)]
		switch m.Kind {
		case KindCounter:
			d := int64(m.Value)
			if had {
				d -= int64(p.Value)
			}
			w.Counters[m.Name] = d
		case KindGauge:
			w.Gauges[m.Name] = m.Value
		case KindHistogram, KindTimer:
			hw := HistWindow{Count: m.Count, Sum: m.Sum}
			hw.Buckets = make([]Bucket, len(m.Buckets))
			copy(hw.Buckets, m.Buckets)
			if had && len(p.Buckets) == len(m.Buckets) {
				hw.Count -= p.Count
				hw.Sum -= p.Sum
				for i := range hw.Buckets {
					hw.Buckets[i].Count -= p.Buckets[i].Count
				}
			}
			w.Hists[m.Name] = hw
		}
	}
	return w
}

// Windows returns up to n most recent completed windows, oldest first
// (n <= 0 returns everything retained).
func (c *Collector) Windows(n int) []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	have := len(c.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Window, 0, n)
	for i := int(c.next) - n; i < int(c.next); i++ {
		out = append(out, c.ring[i%c.cap])
	}
	return out
}

// Rate returns the counter's per-second rate over the last n windows
// (n <= 0: all retained). Zero when nothing is retained yet.
func (c *Collector) Rate(name string, n int) float64 {
	ws := c.Windows(n)
	var total int64
	var secs float64
	for _, w := range ws {
		total += w.Counters[name]
		secs += w.Seconds()
	}
	if secs <= 0 {
		return 0
	}
	return float64(total) / secs
}

// MergeHist sums a histogram's per-window deltas over the last n windows
// (n <= 0: all retained) into one HistWindow.
func (c *Collector) MergeHist(name string, n int) HistWindow {
	ws := c.Windows(n)
	var out HistWindow
	for _, w := range ws {
		hw, ok := w.Hists[name]
		if !ok {
			continue
		}
		out.Count += hw.Count
		out.Sum += hw.Sum
		if out.Buckets == nil {
			out.Buckets = make([]Bucket, len(hw.Buckets))
			copy(out.Buckets, hw.Buckets)
			continue
		}
		for i := range hw.Buckets {
			if i < len(out.Buckets) {
				out.Buckets[i].Count += hw.Buckets[i].Count
			}
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of a merged histogram
// window by linear interpolation inside the winning bucket — the same
// estimator as Prometheus's histogram_quantile. Observations in the +Inf
// bucket clamp to the highest finite bound. NaN when the merge is empty.
func (hw HistWindow) Quantile(q float64) float64 {
	if hw.Count <= 0 || len(hw.Buckets) == 0 {
		return math.NaN()
	}
	rank := q * float64(hw.Count)
	var cum int64
	for i, b := range hw.Buckets {
		cum += b.Count
		if float64(cum) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			// Clamp to the highest finite bound, if any.
			if i > 0 {
				return hw.Buckets[i-1].UpperBound
			}
			return math.NaN()
		}
		lower := 0.0
		if i > 0 {
			lower = hw.Buckets[i-1].UpperBound
		}
		prevCum := float64(cum - b.Count)
		if b.Count <= 0 {
			return b.UpperBound
		}
		frac := (rank - prevCum) / float64(b.Count)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower + (b.UpperBound-lower)*frac
	}
	return hw.Buckets[len(hw.Buckets)-1].UpperBound
}

// Quantile is a convenience: merge the histogram's last n windows and
// estimate q over the merge.
func (c *Collector) Quantile(name string, q float64, n int) float64 {
	return c.MergeHist(name, n).Quantile(q)
}
