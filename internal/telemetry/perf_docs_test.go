package telemetry

// Benchmark-documentation drift tests: every micro-benchmark in the
// Makefile's bench-smoke regression gate must be named in docs/PERF.md (the
// gate is only useful if the doc explains what each gated number measures),
// and every benchmark docs/PERF.md names must still exist in a _test.go
// file (no stale rows). Grep-based like the metric/tracing checks above.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	benchGateRE = regexp.MustCompile(`-bench='([^']+)'`)
	benchNameRE = regexp.MustCompile(`Benchmark\w+`)
	benchDeclRE = regexp.MustCompile(`func (Benchmark\w+)\(`)
)

// benchGateNames parses the benchmark alternation out of the Makefile's
// bench-smoke target.
func benchGateNames(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot, "Makefile"))
	if err != nil {
		t.Fatal(err)
	}
	m := benchGateRE.FindStringSubmatch(string(data))
	if m == nil {
		t.Fatal("no -bench='...' alternation found in the Makefile — bench-smoke target changed?")
	}
	names := strings.Split(m[1], "|")
	if len(names) < 5 {
		t.Fatalf("parsed only %d benchmark names from the bench-smoke gate — extraction broken?", len(names))
	}
	return names
}

// benchDecls collects every benchmark function declared in a _test.go file.
func benchDecls(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(repoRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if skipDirs[info.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range benchDeclRE.FindAllStringSubmatch(string(data), -1) {
			out[m[1]] = path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no benchmark declarations found — repo layout changed?")
	}
	return out
}

// TestPerfDocCoversBenchGate fails when a benchmark gated by bench-smoke is
// not named in docs/PERF.md, and when docs/PERF.md names a benchmark that no
// _test.go file declares.
func TestPerfDocCoversBenchGate(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join(repoRoot, "docs", "PERF.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range benchGateNames(t) {
		if !strings.Contains(string(doc), name) {
			t.Errorf("bench-smoke gates %q but docs/PERF.md never mentions it", name)
		}
	}
	decls := benchDecls(t)
	for _, name := range benchNameRE.FindAllString(string(doc), -1) {
		if _, ok := decls[name]; !ok {
			t.Errorf("docs/PERF.md names %q but no _test.go declares it (stale row?)", name)
		}
	}
}
