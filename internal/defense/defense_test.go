package defense_test

import (
	"errors"
	"math/rand"
	"testing"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/defense"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/solver"
	"parole/internal/tx"
	"parole/internal/wei"
)

func newDetector(t *testing.T, cfg defense.Config) *defense.Detector {
	t.Helper()
	d, err := defense.NewDetector(ovm.New(), defense.SearchOptimizer{
		Rng:            rand.New(rand.NewSource(7)),
		MaxEvaluations: 2000,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := defense.NewDetector(nil, defense.SearchOptimizer{}, defense.Config{}); !errors.Is(err, defense.ErrNoVM) {
		t.Errorf("nil vm = %v", err)
	}
	if _, err := defense.NewDetector(ovm.New(), nil, defense.Config{}); err == nil {
		t.Error("nil optimizer accepted")
	}
}

func TestSearchOptimizerNeedsRNG(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	var opt defense.SearchOptimizer
	if _, err := opt.WorstCase(ovm.New(), s.State, s.Original, nil); !errors.Is(err, defense.ErrNoRNG) {
		t.Errorf("nil rng = %v", err)
	}
}

func TestInspectDetectsCaseStudyArbitrage(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{BaseThreshold: wei.FromFloat(0.01)})
	report, err := d.Inspect(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Triggered {
		t.Fatal("detector missed the case-study arbitrage")
	}
	// The worst case must be at least the paper's case-2 candidate gain.
	minGain := casestudy.FinalCase2 - casestudy.FinalCase1
	if report.WorstProfit < minGain {
		t.Fatalf("worst profit %s below the paper's candidate gain %s", report.WorstProfit, minGain)
	}
	if len(report.Demoted) == 0 {
		t.Fatal("triggered detector demoted nothing")
	}
	if report.ResidualProfit > report.WorstProfit {
		t.Fatal("demotion made the worst case worse")
	}
}

func TestInspectToleratesSmallArbitrage(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	// Threshold far above any achievable profit.
	d := newDetector(t, defense.Config{BaseThreshold: wei.FromETH(100)})
	report, err := d.Inspect(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	if report.Triggered || len(report.Demoted) != 0 {
		t.Fatal("detector triggered despite a permissive threshold")
	}
	if report.WorstProfit <= 0 {
		t.Fatal("worst case should still be reported")
	}
}

func TestThresholdGrowsWithPriorityFees(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{BaseThreshold: 100, FeeMultiplier: 2})
	base := d.Threshold(s.Original)
	tipped := s.Original.Clone()
	for i := range tipped {
		tipped[i] = tipped[i].WithFees(tipped[i].BaseFee, 50)
	}
	if got := d.Threshold(tipped); got != base+wei.Amount(2*50*len(tipped)) {
		t.Fatalf("threshold = %d, want %d", got, base+wei.Amount(2*50*len(tipped)))
	}
}

func TestInspectEmptyAndTinyBatches(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{})
	report, err := d.Inspect(s.State, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Triggered {
		t.Fatal("empty batch triggered")
	}
	report, err = d.Inspect(s.State, tx.Seq{s.Original[0]})
	if err != nil {
		t.Fatal(err)
	}
	if report.Triggered {
		t.Fatal("single-tx batch triggered")
	}
}

func TestMaxDemotionsBound(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{BaseThreshold: 1, MaxDemotions: 1})
	report, err := d.Inspect(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Demoted) > 1 {
		t.Fatalf("demoted %d txs, bound was 1", len(report.Demoted))
	}
}

// TestDefenseNeutralizesAttack: after applying the detector's demotions to
// the batch, the adversary's achievable profit drops below the threshold.
func TestDefenseNeutralizesAttack(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	threshold := wei.FromFloat(0.05)
	d := newDetector(t, defense.Config{BaseThreshold: threshold})
	report, err := d.Inspect(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Triggered {
		t.Fatal("expected trigger")
	}
	// Rebuild the surviving batch (original minus demoted).
	demoted := make(map[string]bool, len(report.Demoted))
	for _, dt := range report.Demoted {
		demoted[dt.String()] = true
	}
	var surviving tx.Seq
	for _, t0 := range s.Original {
		if !demoted[t0.String()] {
			surviving = append(surviving, t0)
		}
	}
	if len(surviving) < 2 {
		return // everything relevant was demoted: trivially safe
	}
	// Independent adversary check on the surviving batch.
	obj, err := solver.NewObjective(ovm.New(), s.State, surviving, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.HillClimb{}.Solve(rand.New(rand.NewSource(3)), obj, solver.Budget{MaxEvaluations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Improvement > report.ResidualProfit+threshold {
		t.Fatalf("adversary still extracts %s from the defended batch (residual %s)", sol.Improvement, report.ResidualProfit)
	}
}

func TestDQNOptimizerBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training")
	}
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := gentranseq.FastConfig()
	cfg.Episodes = 10
	cfg.MaxSteps = 40
	opt := defense.DQNOptimizer{Rng: rand.New(rand.NewSource(42)), Cfg: cfg}
	worst, err := opt.WorstCase(ovm.New(), s.State, s.Original, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 0 {
		t.Fatal("DQN detector found no arbitrage on the case-study batch")
	}
}
