package defense

import (
	"fmt"

	"parole/internal/mempool"
	"parole/internal/state"
	"parole/internal/tx"
)

// GuardedCollect is the defended replacement for Pool.Collect: it peeks at
// the next batch in fee order, runs Inspect, applies the demotions to the
// pool ("send to the block behind"), and only then collects — so the batch
// an aggregator receives is already sanitized. This is the deployment shape
// Section VIII sketches: the detector lives between Bedrock's mempool and
// the aggregators.
func (d *Detector) GuardedCollect(pool *mempool.Pool, st *state.State, size int) (tx.Seq, Report, error) {
	pending := pool.Pending()
	if len(pending) > size {
		pending = pending[:size]
	}
	report, err := d.Inspect(st, pending)
	if err != nil {
		return nil, report, fmt.Errorf("inspect pending batch: %w", err)
	}
	for _, demoted := range report.Demoted {
		if err := pool.Demote(demoted.Hash()); err != nil {
			return nil, report, fmt.Errorf("demote %s: %w", demoted, err)
		}
	}
	return pool.Collect(size), report, nil
}
