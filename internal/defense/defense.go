// Package defense implements the mitigation sketched in Section VIII: run
// the GENTRANSEQ machinery *inside* Bedrock's mempool as a detector. Before
// a batch is released in fee order, compute the worst case — the maximum
// profit any involved user could extract by re-ordering it. If that worst
// case exceeds a fee-derived threshold, demote the minimal set of involved
// transactions to the block behind until the residual arbitrage is
// negligible.
package defense

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/solver"
	"parole/internal/state"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Package errors.
var (
	ErrNoVM  = errors.New("defense: nil VM")
	ErrNoRNG = errors.New("defense: nil RNG")
)

// Optimizer computes the worst-case (maximum) wealth improvement any of the
// given users could gain by validly re-ordering the batch. Implementations
// wrap either the DQN (the paper's proposal) or a search baseline with the
// identical objective.
type Optimizer interface {
	// WorstCase returns the best improvement found for users over batch.
	WorstCase(vm *ovm.VM, st *state.State, batch tx.Seq, users []chainid.Address) (wei.Amount, error)
}

// SearchOptimizer is the fast detector backend: hill-climbing over the same
// objective GENTRANSEQ maximizes. Suited to running on every mempool batch.
type SearchOptimizer struct {
	// Rng drives restarts.
	Rng *rand.Rand
	// MaxEvaluations per inspection (0 = default).
	MaxEvaluations int
}

// WorstCase implements Optimizer.
func (s SearchOptimizer) WorstCase(vm *ovm.VM, st *state.State, batch tx.Seq, users []chainid.Address) (wei.Amount, error) {
	if s.Rng == nil {
		return 0, ErrNoRNG
	}
	obj, err := solver.NewObjective(vm, st, batch, users)
	if err != nil {
		return 0, fmt.Errorf("build objective: %w", err)
	}
	budget := solver.Budget{MaxEvaluations: s.MaxEvaluations}
	if budget.MaxEvaluations == 0 {
		budget.MaxEvaluations = 64 * len(batch)
	}
	sol, err := solver.HillClimb{}.Solve(s.Rng, obj, budget)
	if err != nil {
		return 0, fmt.Errorf("hill climb: %w", err)
	}
	return sol.Improvement, nil
}

// DQNOptimizer is the paper's detector backend: GENTRANSEQ itself, trained
// per inspection. Far more expensive; intended for offline auditing.
type DQNOptimizer struct {
	Rng *rand.Rand
	Cfg gentranseq.Config
}

// WorstCase implements Optimizer.
func (d DQNOptimizer) WorstCase(vm *ovm.VM, st *state.State, batch tx.Seq, users []chainid.Address) (wei.Amount, error) {
	if d.Rng == nil {
		return 0, ErrNoRNG
	}
	cfg := d.Cfg
	cfg.SkipAssessment = true // the detector wants the worst case regardless
	res, err := gentranseq.Optimize(d.Rng, vm, st, batch, users, cfg)
	if err != nil {
		return 0, fmt.Errorf("gentranseq: %w", err)
	}
	return res.Improvement, nil
}

// Config parameterizes the detector.
type Config struct {
	// BaseThreshold is the flat tolerance for worst-case arbitrage.
	BaseThreshold wei.Amount
	// FeeMultiplier scales the batch's total priority fees into extra
	// tolerance — the paper ties the threshold to "the priority of the
	// transactions".
	FeeMultiplier int64
	// MaxDemotions bounds how many transactions one inspection may demote
	// (0 = up to the whole batch).
	MaxDemotions int
}

// Detector screens mempool batches for re-ordering arbitrage.
type Detector struct {
	vm  *ovm.VM
	opt Optimizer
	cfg Config
}

// NewDetector builds a detector with the given worst-case optimizer.
func NewDetector(vm *ovm.VM, opt Optimizer, cfg Config) (*Detector, error) {
	if vm == nil {
		return nil, ErrNoVM
	}
	if opt == nil {
		return nil, errors.New("defense: nil optimizer")
	}
	return &Detector{vm: vm, opt: opt, cfg: cfg}, nil
}

// Report is the outcome of one inspection.
type Report struct {
	// WorstProfit is the maximum extractable improvement found before any
	// demotion, and WorstUser the user achieving it.
	WorstProfit wei.Amount
	WorstUser   chainid.Address
	// Threshold actually applied (base + fee component).
	Threshold wei.Amount
	// Triggered reports whether the worst case exceeded the threshold.
	Triggered bool
	// Demoted lists the transactions sent to the block behind, in order.
	Demoted []tx.Tx
	// ResidualProfit is the worst case of the surviving batch after
	// demotion.
	ResidualProfit wei.Amount
}

// Threshold computes the tolerance for a batch.
func (d *Detector) Threshold(batch tx.Seq) wei.Amount {
	var fees wei.Amount
	for _, t := range batch {
		fees += t.PriorityFee
	}
	return d.cfg.BaseThreshold + fees.Mul(d.cfg.FeeMultiplier)
}

// Inspect analyzes a batch against the L2 state. If the worst-case
// re-ordering profit of any involved user exceeds the threshold, it demotes
// the fewest involved transactions (greedily, most-involved user's
// transactions first) needed to push the residual below the threshold, and
// reports what it did. The caller applies the demotions to the mempool.
func (d *Detector) Inspect(st *state.State, batch tx.Seq) (Report, error) {
	sp := trace.StartSpan(trace.SpanDefenseInspect, trace.Int("batch_size", int64(len(batch))))
	report := Report{Threshold: d.Threshold(batch)}
	defer func() {
		sp.SetAttr(trace.Bool("triggered", report.Triggered),
			trace.Int("demotions", int64(len(report.Demoted))),
			trace.Int("worst_profit_wei", int64(report.WorstProfit)),
			trace.Int("residual_profit_wei", int64(report.ResidualProfit)))
		sp.End()
	}()
	users := involvedUsers(batch)
	if len(users) == 0 || len(batch) < 2 {
		return report, nil
	}

	worst, worstUser, err := d.worstOverUsers(st, batch, users)
	if err != nil {
		return report, err
	}
	report.WorstProfit = worst
	report.WorstUser = worstUser
	report.ResidualProfit = worst
	if worst <= report.Threshold {
		return report, nil
	}
	report.Triggered = true

	// Greedy minimal demotion: repeatedly drop the highest-value involved
	// transaction of the current worst user until the residual worst case
	// is tolerable.
	working := batch.Clone()
	maxDemotions := d.cfg.MaxDemotions
	if maxDemotions <= 0 {
		maxDemotions = len(batch)
	}
	for len(report.Demoted) < maxDemotions && len(working) >= 2 {
		idxs := working.Involving(report.worstOrLastUser(worstUser))
		if len(idxs) == 0 {
			break
		}
		// Demote the worst user's last involvement (transfers in and mints
		// are what the attack monetizes; the tail involvement is the one
		// GENTRANSEQ repositions most profitably).
		demoteIdx := idxs[len(idxs)-1]
		report.Demoted = append(report.Demoted, working[demoteIdx])
		working = append(working[:demoteIdx:demoteIdx], working[demoteIdx+1:]...)

		residual, residualUser, err := d.worstOverUsers(st, working, involvedUsers(working))
		if err != nil {
			return report, err
		}
		report.ResidualProfit = residual
		worstUser = residualUser
		if residual <= report.Threshold {
			break
		}
	}
	return report, nil
}

// worstOrLastUser keeps demotion going against the most recent worst user.
func (r *Report) worstOrLastUser(current chainid.Address) chainid.Address {
	if current.IsZero() {
		return r.WorstUser
	}
	return current
}

// worstOverUsers scans every involved user for the maximum extractable
// improvement.
func (d *Detector) worstOverUsers(st *state.State, batch tx.Seq, users []chainid.Address) (wei.Amount, chainid.Address, error) {
	var (
		worst     wei.Amount
		worstUser chainid.Address
	)
	if len(batch) < 2 {
		return 0, worstUser, nil
	}
	for _, u := range users {
		// Only users with multiple involvements can be favored (Section
		// V-B).
		if len(batch.Involving(u)) < 2 {
			continue
		}
		imp, err := d.opt.WorstCase(d.vm, st, batch, []chainid.Address{u})
		if err != nil {
			return 0, worstUser, fmt.Errorf("worst case for %s: %w", u, err)
		}
		if imp > worst {
			worst, worstUser = imp, u
		}
	}
	return worst, worstUser, nil
}

// involvedUsers returns the distinct user addresses appearing in the batch,
// sorted for determinism.
func involvedUsers(batch tx.Seq) []chainid.Address {
	set := make(map[chainid.Address]bool)
	for _, t := range batch {
		set[t.From] = true
		if t.Kind == tx.KindTransfer {
			set[t.To] = true
		}
	}
	users := make([]chainid.Address, 0, len(set))
	for u := range set {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return string(users[i][:]) < string(users[j][:]) })
	return users
}
