package defense_test

import (
	"testing"

	"parole/internal/casestudy"
	"parole/internal/defense"
	"parole/internal/mempool"
	"parole/internal/wei"
)

// TestGuardedCollectSanitizesBatch: a defended collection demotes the
// attack-enabling transactions so the aggregator's batch is safe, while the
// demoted transactions stay pending for the next block.
func TestGuardedCollectSanitizesBatch(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New()
	if err := pool.AddAll(s.Original); err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{BaseThreshold: wei.FromFloat(0.05)})

	batch, report, err := d.GuardedCollect(pool, s.State, len(s.Original))
	if err != nil {
		t.Fatal(err)
	}
	if !report.Triggered {
		t.Fatal("detector did not trigger on the case-study batch")
	}
	if len(batch) != len(s.Original) {
		t.Fatalf("collected %d txs, want %d (demoted txs still collect, at the back)", len(batch), len(s.Original))
	}
	// Demoted transactions must appear after every non-demoted one.
	demoted := make(map[string]bool, len(report.Demoted))
	for _, dt := range report.Demoted {
		demoted[dt.String()] = true
	}
	seenDemoted := false
	for _, txn := range batch {
		if demoted[txn.String()] {
			seenDemoted = true
		} else if seenDemoted {
			t.Fatal("a non-demoted tx collected after a demoted one")
		}
	}
	if !seenDemoted {
		t.Fatal("demoted transactions vanished from the pool")
	}
}

// TestGuardedCollectNoTrigger: a permissive threshold leaves the batch
// untouched.
func TestGuardedCollectNoTrigger(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New()
	if err := pool.AddAll(s.Original); err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{BaseThreshold: wei.FromETH(100)})
	batch, report, err := d.GuardedCollect(pool, s.State, len(s.Original))
	if err != nil {
		t.Fatal(err)
	}
	if report.Triggered {
		t.Fatal("triggered with a permissive threshold")
	}
	// The batch comes out in the original fee order.
	for i := range batch {
		if batch[i] != s.Original[i] {
			t.Fatal("untriggered GuardedCollect changed the order")
		}
	}
}

// TestGuardedCollectPartialWindow: inspection only covers the batch-size
// window, like a real per-block detector.
func TestGuardedCollectPartialWindow(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New()
	if err := pool.AddAll(s.Original); err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, defense.Config{BaseThreshold: wei.FromFloat(0.05)})
	batch, _, err := d.GuardedCollect(pool, s.State, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("collected %d, want 3", len(batch))
	}
	if pool.Size() != len(s.Original)-3 {
		t.Fatalf("pool size = %d", pool.Size())
	}
}
