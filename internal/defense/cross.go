package defense

import (
	"fmt"
	"sort"

	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/state"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// ChainBatch pairs one rollup's collected batch with the pre-state it will
// execute against — the unit the cross-chain inspector correlates.
type ChainBatch struct {
	ChainID uint64
	State   *state.State
	Batch   tx.Seq
}

// CrossConfig parameterizes cross-rollup inspection.
type CrossConfig struct {
	// Config is applied per chain before the correlation pass.
	Config
	// JointThreshold is the tolerance for a user's *summed* worst case
	// across every chain they touch. Zero defaults to the maximum of the
	// per-chain thresholds — strictly tighter than the sum of thresholds
	// the chains would apply in isolation, which is exactly the blind spot
	// a cross-chain adversary exploits (under every individual threshold,
	// over all of them combined).
	JointThreshold wei.Amount
}

// CrossReport is the outcome of one cross-rollup inspection.
type CrossReport struct {
	// Chains holds the per-chain single-rollup reports, in input order.
	Chains []Report
	// JointThreshold actually applied to summed cross-chain worst cases.
	JointThreshold wei.Amount
	// Suspects are the users involved on at least two chains whose summed
	// worst case exceeded the joint threshold, sorted.
	Suspects []chainid.Address
	// Triggered reports whether the correlation pass found any suspect.
	Triggered bool
	// Demoted lists the transactions the correlation pass demoted on each
	// chain, beyond the per-chain demotions already in Chains.
	Demoted map[uint64][]tx.Tx
}

// DemotedCount returns the total demotions across the per-chain and
// cross-chain passes.
func (r CrossReport) DemotedCount() int {
	n := 0
	for _, cr := range r.Chains {
		n += len(cr.Demoted)
	}
	for _, txs := range r.Demoted {
		n += len(txs)
	}
	return n
}

// CrossDetector correlates suspicious orderings across rollups: each chain's
// batch is first screened by the ordinary Section VIII detector, then users
// active on several chains have their per-chain worst cases *summed* and held
// against a joint threshold. An adversary spreading its extraction thinly
// over N rollups stays under every local threshold; the sum gives it away.
type CrossDetector struct {
	det *Detector
	cfg CrossConfig
}

// NewCrossDetector builds the cross-rollup inspector.
func NewCrossDetector(vm *ovm.VM, opt Optimizer, cfg CrossConfig) (*CrossDetector, error) {
	det, err := NewDetector(vm, opt, cfg.Config)
	if err != nil {
		return nil, err
	}
	return &CrossDetector{det: det, cfg: cfg}, nil
}

// Inspect runs the per-chain detector on every batch, then the cross-chain
// correlation pass. The caller applies the union of both passes' demotions to
// the respective mempools (Report.Demoted per chain plus CrossReport.Demoted).
func (d *CrossDetector) Inspect(batches []ChainBatch) (CrossReport, error) {
	report := CrossReport{Demoted: make(map[uint64][]tx.Tx)}
	sp := trace.StartSpan(trace.SpanDefenseCrossInspect,
		trace.Int("chains", int64(len(batches))))
	defer func() {
		sp.SetAttr(trace.Bool("triggered", report.Triggered),
			trace.Int("suspects", int64(len(report.Suspects))))
		sp.End()
	}()

	// Per-chain pass; the correlation works on what survives it.
	working := make([]tx.Seq, len(batches))
	var jointThreshold wei.Amount
	for i, cb := range batches {
		cr, err := d.det.Inspect(cb.State, cb.Batch)
		if err != nil {
			return report, fmt.Errorf("chain %d: %w", cb.ChainID, err)
		}
		report.Chains = append(report.Chains, cr)
		working[i] = withoutDemoted(cb.Batch, cr.Demoted)
		if th := d.det.Threshold(cb.Batch); th > jointThreshold {
			jointThreshold = th
		}
	}
	if d.cfg.JointThreshold > 0 {
		jointThreshold = d.cfg.JointThreshold
	}
	report.JointThreshold = jointThreshold

	// Correlation pass: sum each multi-chain user's per-chain worst cases.
	for _, user := range multiChainUsers(working) {
		contrib, err := d.contributions(batches, working, user)
		if err != nil {
			return report, err
		}
		joint := sum(contrib)
		if joint <= jointThreshold {
			continue
		}
		report.Triggered = true
		report.Suspects = append(report.Suspects, user)

		// Greedy cross-chain demotion: repeatedly demote the user's tail
		// involvement on the chain contributing most, until the summed
		// residual is tolerable.
		maxDemotions := d.cfg.MaxDemotions
		if maxDemotions <= 0 {
			maxDemotions = len(working) * 4
		}
		for demoted := 0; joint > jointThreshold && demoted < maxDemotions; demoted++ {
			ci := argmax(contrib)
			idxs := working[ci].Involving(user)
			if len(idxs) == 0 {
				break
			}
			di := idxs[len(idxs)-1]
			cid := batches[ci].ChainID
			report.Demoted[cid] = append(report.Demoted[cid], working[ci][di])
			working[ci] = append(working[ci][:di:di], working[ci][di+1:]...)
			if contrib[ci], err = d.chainWorst(batches[ci].State, working[ci], user); err != nil {
				return report, err
			}
			joint = sum(contrib)
		}
	}
	return report, nil
}

// contributions computes the user's worst case on every chain's working
// batch.
func (d *CrossDetector) contributions(batches []ChainBatch, working []tx.Seq, user chainid.Address) ([]wei.Amount, error) {
	out := make([]wei.Amount, len(working))
	for i := range working {
		w, err := d.chainWorst(batches[i].State, working[i], user)
		if err != nil {
			return nil, fmt.Errorf("chain %d: %w", batches[i].ChainID, err)
		}
		out[i] = w
	}
	return out, nil
}

// chainWorst is the user's single-chain worst case, zero when the batch is
// too small or the user too uninvolved to be favorable (Section V-B).
func (d *CrossDetector) chainWorst(st *state.State, batch tx.Seq, user chainid.Address) (wei.Amount, error) {
	if len(batch) < 2 || len(batch.Involving(user)) < 2 {
		return 0, nil
	}
	return d.det.opt.WorstCase(d.det.vm, st, batch, []chainid.Address{user})
}

// multiChainUsers returns the users involved in at least two of the batches,
// sorted for determinism.
func multiChainUsers(batches []tx.Seq) []chainid.Address {
	counts := make(map[chainid.Address]int)
	for _, b := range batches {
		for _, u := range involvedUsers(b) {
			counts[u]++
		}
	}
	var out []chainid.Address
	for u, n := range counts {
		if n >= 2 {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i][:]) < string(out[j][:]) })
	return out
}

// withoutDemoted removes the demoted transactions from a batch.
func withoutDemoted(batch tx.Seq, demoted []tx.Tx) tx.Seq {
	if len(demoted) == 0 {
		return batch.Clone()
	}
	drop := make(map[chainid.Hash]bool, len(demoted))
	for _, t := range demoted {
		drop[t.Hash()] = true
	}
	var out tx.Seq
	for _, t := range batch {
		if !drop[t.Hash()] {
			out = append(out, t)
		}
	}
	return out
}

func sum(xs []wei.Amount) wei.Amount {
	var total wei.Amount
	for _, x := range xs {
		total += x
	}
	return total
}

func argmax(xs []wei.Amount) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}
