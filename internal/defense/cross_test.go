package defense_test

import (
	"math/rand"
	"testing"

	"parole/internal/casestudy"
	"parole/internal/defense"
	"parole/internal/ovm"
	"parole/internal/wei"
)

func newCrossDetector(t *testing.T, cfg defense.CrossConfig) *defense.CrossDetector {
	t.Helper()
	d, err := defense.NewCrossDetector(ovm.New(), defense.SearchOptimizer{
		Rng:            rand.New(rand.NewSource(7)),
		MaxEvaluations: 2000,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// crossBatches replays the paper's case study on n independent "chains": the
// same adversary runs the same favorable batch everywhere, staying under any
// per-chain threshold set above one chain's worst case while its summed
// extraction grows with n.
func crossBatches(t *testing.T, n int) []defense.ChainBatch {
	t.Helper()
	out := make([]defense.ChainBatch, n)
	for i := range out {
		s, err := casestudy.New()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = defense.ChainBatch{ChainID: uint64(i + 1), State: s.State, Batch: s.Original}
	}
	return out
}

// TestCrossInspectCatchesSpreadExtraction: per-chain thresholds far above the
// single-chain worst case keep every local detector quiet, but the joint
// threshold catches the user replicated across both chains and demotes until
// the summed worst case is tolerable.
func TestCrossInspectCatchesSpreadExtraction(t *testing.T) {
	d := newCrossDetector(t, defense.CrossConfig{
		Config:         defense.Config{BaseThreshold: wei.FromETH(100)},
		JointThreshold: wei.FromFloat(0.01),
	})
	report, err := d.Inspect(crossBatches(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range report.Chains {
		if cr.Triggered || len(cr.Demoted) != 0 {
			t.Fatalf("chain %d: local detector triggered under a permissive threshold", i+1)
		}
	}
	if !report.Triggered {
		t.Fatal("cross pass missed the extraction spread over two chains")
	}
	if len(report.Suspects) == 0 {
		t.Fatal("triggered cross pass named no suspects")
	}
	if report.DemotedCount() == 0 {
		t.Fatal("triggered cross pass demoted nothing")
	}
}

// TestCrossInspectToleratesSmallSpread: a huge joint threshold means no
// suspects and no demotions beyond what the per-chain pass decides.
func TestCrossInspectToleratesSmallSpread(t *testing.T) {
	d := newCrossDetector(t, defense.CrossConfig{
		Config:         defense.Config{BaseThreshold: wei.FromETH(100)},
		JointThreshold: wei.FromETH(500),
	})
	report, err := d.Inspect(crossBatches(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if report.Triggered || len(report.Suspects) != 0 || report.DemotedCount() != 0 {
		t.Fatal("cross pass triggered despite a permissive joint threshold")
	}
	if len(report.Chains) != 2 {
		t.Fatalf("per-chain reports = %d, want 2", len(report.Chains))
	}
}

// TestCrossInspectNeedsTwoChains: with a single batch no user is multi-chain,
// so the correlation pass stays quiet no matter how tight the joint threshold.
func TestCrossInspectNeedsTwoChains(t *testing.T) {
	d := newCrossDetector(t, defense.CrossConfig{
		Config:         defense.Config{BaseThreshold: wei.FromETH(100)},
		JointThreshold: 1,
	})
	report, err := d.Inspect(crossBatches(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if report.Triggered || len(report.Demoted) != 0 {
		t.Fatal("correlation pass triggered on a single chain")
	}
}

// TestCrossInspectDefaultJointThreshold: the zero value falls back to the max
// of the per-chain thresholds.
func TestCrossInspectDefaultJointThreshold(t *testing.T) {
	base := wei.FromFloat(0.01)
	d := newCrossDetector(t, defense.CrossConfig{
		Config: defense.Config{BaseThreshold: base},
	})
	report, err := d.Inspect(crossBatches(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if report.JointThreshold < base {
		t.Fatalf("joint threshold %s below the per-chain base %s", report.JointThreshold, base)
	}
}
