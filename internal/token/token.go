// Package token models the limited-edition ERC-721 contract the PAROLE
// attack trades on (the "PAROLE Token", PT).
//
// A Contract tracks a fixed maximum supply S⁰, the set of currently minted
// tokens, and the scarcity-driven unit price of Eq. 10:
//
//	P^t = S⁰ / S^t · P⁰
//
// where S^t is the number of tokens still available to be minted after the
// t-th transaction. Minting decreases S^t (price rises); burning increases it
// (price falls); transfers leave it unchanged. These are exactly the
// operational semantics of Eq. 2, 4, and 6 in the paper; the executability
// constraints of Eq. 1, 3, and 5 are enforced by CanMint/CanTransfer/CanBurn
// and applied transactionally by the OVM.
package token

import (
	"errors"
	"fmt"
	"sort"

	"parole/internal/chainid"
	"parole/internal/wei"
)

// Constraint violations (Eq. 1, 3, 5).
var (
	ErrSoldOut          = errors.New("token: no tokens available to mint")
	ErrAlreadyMinted    = errors.New("token: id already minted")
	ErrNotOwner         = errors.New("token: actor does not own the token")
	ErrNotMinted        = errors.New("token: id not minted")
	ErrBadConfiguration = errors.New("token: invalid contract configuration")
)

// Config describes a limited-edition ERC-721 deployment.
type Config struct {
	Name         string
	Symbol       string
	MaxSupply    uint64     // S⁰: hard cap written into the contract
	InitialPrice wei.Amount // P⁰: price when no token is minted
}

// Validate reports whether the configuration is deployable.
func (c Config) Validate() error {
	if c.MaxSupply == 0 {
		return fmt.Errorf("%w: zero max supply", ErrBadConfiguration)
	}
	if c.InitialPrice <= 0 {
		return fmt.Errorf("%w: non-positive initial price", ErrBadConfiguration)
	}
	return nil
}

// Contract is the in-memory state of one deployed limited-edition NFT
// contract. It is a plain mutable value; the OVM clones it before executing
// candidate sequences so that exploration never corrupts chain state.
type Contract struct {
	addr    chainid.Address
	cfg     Config
	owners  map[uint64]chainid.Address // minted token id -> current owner
	nextID  uint64                     // smallest id never minted, for auto-assignment
	events  []Event                    // per-instance history; see Events
	version uint64                     // bumped on every state mutation; see Version

	// Price memo: priceCache holds PriceAt(priceAvail-1); priceAvail == 0
	// means empty. Availability fully determines the curve value (Eq. 10).
	priceAvail uint64
	priceCache wei.Amount

	// dig is the incremental state-digest structure (digest.go), built
	// lazily on the first StateDigest call and maintained by every owner-
	// table mutation afterwards. Clones drop it, like the event log.
	dig *digestState
}

// Deploy creates a contract instance at addr.
func Deploy(addr chainid.Address, cfg Config) (*Contract, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Contract{
		addr:   addr,
		cfg:    cfg,
		owners: make(map[uint64]chainid.Address),
	}, nil
}

// Address returns the contract's address.
func (c *Contract) Address() chainid.Address { return c.addr }

// Config returns the deployment configuration.
func (c *Contract) Config() Config { return c.cfg }

// MaxSupply returns S⁰.
func (c *Contract) MaxSupply() uint64 { return c.cfg.MaxSupply }

// Version is a monotone counter bumped by every state mutation (mint,
// transfer, burn, and journal reverts). Callers that cache derived values —
// the state root cache in internal/state — compare versions instead of
// re-hashing the ownership table to detect staleness.
func (c *Contract) Version() uint64 { return c.version }

// Minted returns the number of currently minted (live) tokens.
func (c *Contract) Minted() uint64 { return uint64(len(c.owners)) }

// Available returns S^t, the number of tokens that can still be minted.
func (c *Contract) Available() uint64 { return c.cfg.MaxSupply - uint64(len(c.owners)) }

// Price returns the current unit price P^t per Eq. 10, truncating to gwei.
// When the collection is sold out (S^t = 0) the bonding curve diverges; we
// pin the price at the S^t = 1 value, the last finite point of the curve.
//
// The curve is a pure function of availability, so the last evaluation is
// memoized per contract: candidate evaluation asks for the price several
// times per transaction, and transfers don't move availability at all.
func (c *Contract) Price() wei.Amount {
	a := c.Available()
	if c.priceAvail == a+1 {
		return c.priceCache
	}
	p := c.PriceAt(a)
	c.priceAvail, c.priceCache = a+1, p
	return p
}

// PriceAt evaluates Eq. 10 for an arbitrary availability level. It is used
// by the GENTRANSEQ encoder to price hypothetical states without mutating
// the contract.
func (c *Contract) PriceAt(available uint64) wei.Amount {
	if available == 0 {
		available = 1
	}
	return wei.MulDiv(c.cfg.InitialPrice, int64(c.cfg.MaxSupply), int64(available))
}

// OwnerOf returns the current owner of id, if minted.
func (c *Contract) OwnerOf(id uint64) (chainid.Address, bool) {
	owner, ok := c.owners[id]
	return owner, ok
}

// Owns reports whether addr currently owns token id (the O_k^{i,t} predicate
// of Table I).
func (c *Contract) Owns(addr chainid.Address, id uint64) bool {
	owner, ok := c.owners[id]
	return ok && owner == addr
}

// BalanceOf returns the number of tokens addr owns, as ERC-721 balanceOf.
func (c *Contract) BalanceOf(addr chainid.Address) int {
	n := 0
	for _, owner := range c.owners {
		if owner == addr {
			n++
		}
	}
	return n
}

// OwnedBy returns the sorted token ids owned by addr.
func (c *Contract) OwnedBy(addr chainid.Address) []uint64 {
	var ids []uint64
	for id, owner := range c.owners {
		if owner == addr {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HoldingsValue returns the mark-to-market value of addr's tokens at the
// current price: (tokens owned) × P^t. The paper's "IFU total balance" is
// the L2 balance plus this quantity.
func (c *Contract) HoldingsValue(addr chainid.Address) wei.Amount {
	return c.Price().Mul(int64(c.BalanceOf(addr)))
}

// CanMint checks the supply half of Eq. 1: S^{t-1} ≥ 1 and the id is fresh.
// The balance half (B ≥ P) is checked by the OVM, which owns account state.
func (c *Contract) CanMint(id uint64) error {
	if c.Available() == 0 {
		return ErrSoldOut
	}
	if _, minted := c.owners[id]; minted {
		return &idError{err: ErrAlreadyMinted, id: id}
	}
	return nil
}

// Mint records ownership of a fresh token id by owner (Eq. 2's O and S
// updates). The caller must have verified CanMint and debited the price.
func (c *Contract) Mint(owner chainid.Address, id uint64) error {
	if err := c.CanMint(id); err != nil {
		return err
	}
	price := c.Price()
	c.owners[id] = owner
	c.digestTouch(id)
	if id >= c.nextID {
		c.nextID = id + 1
	}
	c.version++
	c.recordEvent(Event{Kind: EventMinted, TokenID: id, To: owner, Price: price})
	return nil
}

// NextID returns a token id that has never been minted on this contract,
// for callers that want auto-assignment.
func (c *Contract) NextID() uint64 { return c.nextID }

// CanTransfer checks the ownership half of Eq. 3: token id is owned by from.
func (c *Contract) CanTransfer(id uint64, from chainid.Address) error {
	owner, ok := c.owners[id]
	if !ok {
		return &idError{err: ErrNotMinted, id: id}
	}
	if owner != from {
		return &ownerError{id: id, owner: owner, from: from}
	}
	return nil
}

// idError and ownerError defer message formatting to Error(): constraint
// failures fire per candidate in the solver hot loop where only errors.Is
// identity matters, and the text is rendered solely in cold reporting paths.
type idError struct {
	err error
	id  uint64
}

func (e *idError) Error() string { return fmt.Sprintf("%v: id %d", e.err, e.id) }
func (e *idError) Unwrap() error { return e.err }

type ownerError struct {
	id          uint64
	owner, from chainid.Address
}

func (e *ownerError) Error() string {
	return fmt.Sprintf("%v: id %d owned by %s, not %s", ErrNotOwner, e.id, e.owner, e.from)
}
func (e *ownerError) Unwrap() error { return ErrNotOwner }

// Transfer moves ownership of id from seller to buyer (Eq. 4's O update).
// Balance movement is the OVM's responsibility.
func (c *Contract) Transfer(id uint64, from, to chainid.Address) error {
	if err := c.CanTransfer(id, from); err != nil {
		return err
	}
	c.owners[id] = to
	c.digestTouch(id)
	c.version++
	c.recordEvent(Event{Kind: EventTransferred, TokenID: id, From: from, To: to, Price: c.Price()})
	return nil
}

// CanBurn checks Eq. 5: id is owned by owner.
func (c *Contract) CanBurn(id uint64, owner chainid.Address) error {
	return c.CanTransfer(id, owner)
}

// Burn destroys token id (Eq. 6: ownership cleared, S^t grows by one).
func (c *Contract) Burn(id uint64, owner chainid.Address) error {
	if err := c.CanBurn(id, owner); err != nil {
		return err
	}
	price := c.Price()
	delete(c.owners, id)
	c.digestTouch(id)
	c.version++
	c.recordEvent(Event{Kind: EventBurned, TokenID: id, From: owner, Price: price})
	return nil
}

// Clone returns an independent deep copy of the contract *state*. The event
// log is deliberately not copied (clones start with an empty log) so that
// candidate-sequence evaluation stays O(state), not O(history); see Events.
// The incremental digest structure is dropped for the same reason: a clone
// whose digest nobody reads pays nothing, and the first StateDigest call
// rebuilds it from the copied owner table.
func (c *Contract) Clone() *Contract {
	owners := make(map[uint64]chainid.Address, len(c.owners))
	for id, owner := range c.owners {
		owners[id] = owner
	}
	return &Contract{addr: c.addr, cfg: c.cfg, owners: owners, nextID: c.nextID, version: c.version}
}

// encodeHeader serializes the deployment configuration for the state
// digest (digest.go).
func (c *Contract) encodeHeader() []byte {
	b := make([]byte, 0, chainid.AddressLen+8+8+len(c.cfg.Name)+len(c.cfg.Symbol))
	b = append(b, c.addr[:]...)
	var u [8]byte
	putUint64(u[:], c.cfg.MaxSupply)
	b = append(b, u[:]...)
	putUint64(u[:], uint64(c.cfg.InitialPrice))
	b = append(b, u[:]...)
	b = append(b, c.cfg.Name...)
	b = append(b, c.cfg.Symbol...)
	return b
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
