package token

import "parole/internal/chainid"

// Journaled mutation support for the scratch-evaluation path
// (internal/state.Scratch). Each JournalMint/JournalTransfer/JournalBurn
// applies the ordinary mutation and returns an Undo that reverses it in
// O(1): the previous owner-table entry and the previous nextID. Undos must
// be replayed in LIFO order relative to the mutations they capture — the
// scratch journal guarantees that.
//
// The journaled mutators do not record history events. Candidate evaluation
// is O(state), not O(history) — the same rule Clone applies when it drops
// the event log — and nothing observable to an evaluation (step outcomes,
// prices, wealth, the state digest) reads events.

// Undo captures the contract-side writes of one mint/transfer/burn so a
// scratch evaluation can reverse them without cloning the contract.
type Undo struct {
	c       *Contract
	id      uint64
	owner   chainid.Address // previous owner of id (valid when existed)
	existed bool            // whether id was minted before the mutation
	nextID  uint64          // nextID before the mutation
}

// The Journal* mutators below inline the constraint check, snapshot, and
// write around a single owner-table lookup instead of composing a snapshot
// helper with Mint/Transfer/Burn (which would probe the map three times per
// operation). They must mirror the plain mutators' semantics exactly; the
// differential test in internal/ovm pins the two paths together.

// JournalMint applies Mint and returns its Undo. On error the contract is
// unchanged and the zero Undo (whose Revert is a no-op) is returned.
func (c *Contract) JournalMint(owner chainid.Address, id uint64) (Undo, error) {
	if c.Available() == 0 {
		return Undo{}, ErrSoldOut
	}
	if _, minted := c.owners[id]; minted {
		return Undo{}, &idError{err: ErrAlreadyMinted, id: id}
	}
	u := Undo{c: c, id: id, existed: false, nextID: c.nextID}
	c.owners[id] = owner
	c.digestTouch(id)
	if id >= c.nextID {
		c.nextID = id + 1
	}
	c.version++
	return u, nil
}

// JournalTransfer applies Transfer and returns its Undo.
func (c *Contract) JournalTransfer(id uint64, from, to chainid.Address) (Undo, error) {
	owner, ok := c.owners[id]
	if !ok {
		return Undo{}, &idError{err: ErrNotMinted, id: id}
	}
	if owner != from {
		return Undo{}, &ownerError{id: id, owner: owner, from: from}
	}
	u := Undo{c: c, id: id, owner: owner, existed: true, nextID: c.nextID}
	c.owners[id] = to
	c.digestTouch(id)
	c.version++
	return u, nil
}

// JournalBurn applies Burn and returns its Undo.
func (c *Contract) JournalBurn(id uint64, owner chainid.Address) (Undo, error) {
	cur, ok := c.owners[id]
	if !ok {
		return Undo{}, &idError{err: ErrNotMinted, id: id}
	}
	if cur != owner {
		return Undo{}, &ownerError{id: id, owner: cur, from: owner}
	}
	u := Undo{c: c, id: id, owner: cur, existed: true, nextID: c.nextID}
	delete(c.owners, id)
	c.digestTouch(id)
	c.version++
	return u, nil
}

// Revert restores the owner-table entry and nextID captured by the Undo.
// Reverting is itself a mutation: the contract version advances (it never
// rolls back) so version-based caches see the change, and the touched
// digest bucket is marked stale so the incremental state digest re-derives
// it along with the restored owner table.
func (u *Undo) Revert() {
	if u.c == nil {
		return
	}
	if u.existed {
		u.c.owners[u.id] = u.owner
	} else {
		delete(u.c.owners, u.id)
	}
	u.c.digestTouch(u.id)
	u.c.nextID = u.nextID
	u.c.version++
}
