package token

import (
	"fmt"

	"parole/internal/chainid"
	"parole/internal/wei"
)

// EventKind classifies a contract event.
type EventKind int

// Event kinds, mirroring the ERC-721 Transfer event conventions (a mint is
// a transfer from the zero address, a burn a transfer to it).
const (
	EventMinted EventKind = iota + 1
	EventTransferred
	EventBurned
)

// String returns the lower-case event name.
func (k EventKind) String() string {
	switch k {
	case EventMinted:
		return "minted"
	case EventTransferred:
		return "transferred"
	case EventBurned:
		return "burned"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one ownership-changing operation on the contract, recorded with
// the unit price at the moment of the operation (the pre-op P^{t-1} that
// settlement used).
type Event struct {
	Kind    EventKind
	TokenID uint64
	From    chainid.Address // zero for mints
	To      chainid.Address // zero for burns
	Price   wei.Amount
}

// String renders the event in log form.
func (e Event) String() string {
	switch e.Kind {
	case EventMinted:
		return fmt.Sprintf("minted #%d to %s at %s", e.TokenID, e.To, e.Price)
	case EventBurned:
		return fmt.Sprintf("burned #%d from %s at %s", e.TokenID, e.From, e.Price)
	default:
		return fmt.Sprintf("transferred #%d %s -> %s at %s", e.TokenID, e.From, e.To, e.Price)
	}
}

// Events returns a copy of this instance's event log.
//
// The log is *per contract instance*, not part of the cloneable chain state:
// Clone starts with an empty log so that the OVM's candidate evaluations
// (thousands per training run) never pay for copying history. The canonical
// contract held by the rollup node accumulates the real history.
func (c *Contract) Events() []Event {
	return append([]Event(nil), c.events...)
}

// recordEvent appends to the instance log.
func (c *Contract) recordEvent(e Event) {
	c.events = append(c.events, e)
}
