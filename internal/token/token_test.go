package token

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parole/internal/chainid"
	"parole/internal/wei"
)

var (
	ptAddr = chainid.DeriveAddress("pt-contract")
	alice  = chainid.UserAddress(1)
	bob    = chainid.UserAddress(2)
)

// caseStudyContract reproduces the system status of Section VI-A: S⁰ = 10,
// P⁰ = 0.2 ETH, 5 tokens already minted (price 0.4 ETH).
func caseStudyContract(t testing.TB) *Contract {
	t.Helper()
	c, err := Deploy(ptAddr, Config{
		Name:         "ParoleToken",
		Symbol:       "PT",
		MaxSupply:    10,
		InitialPrice: wei.FromFloat(0.2),
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	for id := uint64(0); id < 5; id++ {
		owner := alice
		if id >= 2 {
			owner = chainid.UserAddress(int(10 + id))
		}
		if err := c.Mint(owner, id); err != nil {
			t.Fatalf("Mint(%d): %v", id, err)
		}
	}
	return c
}

func TestDeployValidation(t *testing.T) {
	tests := []struct {
		name string
		give Config
	}{
		{name: "zero supply", give: Config{MaxSupply: 0, InitialPrice: 1}},
		{name: "zero price", give: Config{MaxSupply: 10}},
		{name: "negative price", give: Config{MaxSupply: 10, InitialPrice: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Deploy(ptAddr, tt.give); !errors.Is(err, ErrBadConfiguration) {
				t.Errorf("Deploy(%+v) = %v, want ErrBadConfiguration", tt.give, err)
			}
		})
	}
}

func TestEq10PricePoints(t *testing.T) {
	// The exact price points walked by the paper's case studies.
	c := caseStudyContract(t)
	tests := []struct {
		available uint64
		want      wei.Amount
	}{
		{10, wei.FromFloat(0.2)},
		{5, wei.FromFloat(0.4)},
		{4, wei.FromFloat(0.5)},
		{3, 666_666_666}, // the "0.66 ETH" row
		{6, 333_333_333}, // the "0.33 ETH" row after a burn
		{1, wei.FromFloat(2.0)},
		{0, wei.FromFloat(2.0)}, // sold-out boundary pinned at S=1
	}
	for _, tt := range tests {
		if got := c.PriceAt(tt.available); got != tt.want {
			t.Errorf("PriceAt(%d) = %s, want %s", tt.available, got, tt.want)
		}
	}
	if got := c.Price(); got != wei.FromFloat(0.4) {
		t.Errorf("case-study Price() = %s, want 0.4", got)
	}
}

func TestMintTransferBurnLifecycle(t *testing.T) {
	c := caseStudyContract(t)
	if got := c.Available(); got != 5 {
		t.Fatalf("Available() = %d, want 5", got)
	}

	// Mint a fresh id.
	id := c.NextID()
	if err := c.Mint(bob, id); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if !c.Owns(bob, id) {
		t.Fatal("bob should own the freshly minted token")
	}
	if got := c.Available(); got != 4 {
		t.Fatalf("Available() after mint = %d, want 4", got)
	}
	if got := c.Price(); got != wei.FromFloat(0.5) {
		t.Fatalf("Price() after mint = %s, want 0.5", got)
	}

	// Transfer it.
	if err := c.Transfer(id, bob, alice); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if !c.Owns(alice, id) || c.Owns(bob, id) {
		t.Fatal("ownership did not move")
	}
	if got := c.Price(); got != wei.FromFloat(0.5) {
		t.Fatalf("transfer changed the price to %s", got)
	}

	// Burn it.
	if err := c.Burn(id, alice); err != nil {
		t.Fatalf("Burn: %v", err)
	}
	if _, minted := c.OwnerOf(id); minted {
		t.Fatal("burned token still has an owner")
	}
	if got := c.Available(); got != 5 {
		t.Fatalf("Available() after burn = %d, want 5", got)
	}
}

func TestMintErrors(t *testing.T) {
	c := caseStudyContract(t)
	if err := c.Mint(bob, 0); !errors.Is(err, ErrAlreadyMinted) {
		t.Errorf("re-mint = %v, want ErrAlreadyMinted", err)
	}
	// Exhaust the supply.
	for c.Available() > 0 {
		if err := c.Mint(bob, c.NextID()); err != nil {
			t.Fatalf("Mint: %v", err)
		}
	}
	if err := c.Mint(bob, c.NextID()); !errors.Is(err, ErrSoldOut) {
		t.Errorf("mint past cap = %v, want ErrSoldOut", err)
	}
}

func TestTransferErrors(t *testing.T) {
	c := caseStudyContract(t)
	if err := c.Transfer(999, alice, bob); !errors.Is(err, ErrNotMinted) {
		t.Errorf("transfer unminted = %v, want ErrNotMinted", err)
	}
	if err := c.Transfer(0, bob, alice); !errors.Is(err, ErrNotOwner) {
		t.Errorf("transfer by non-owner = %v, want ErrNotOwner", err)
	}
	if err := c.Burn(0, bob); !errors.Is(err, ErrNotOwner) {
		t.Errorf("burn by non-owner = %v, want ErrNotOwner", err)
	}
}

func TestBalanceOfAndOwnedBy(t *testing.T) {
	c := caseStudyContract(t)
	if got := c.BalanceOf(alice); got != 2 {
		t.Fatalf("BalanceOf(alice) = %d, want 2", got)
	}
	ids := c.OwnedBy(alice)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("OwnedBy(alice) = %v, want [0 1]", ids)
	}
	if got := c.BalanceOf(bob); got != 0 {
		t.Fatalf("BalanceOf(bob) = %d, want 0", got)
	}
	if c.OwnedBy(bob) != nil {
		t.Fatal("OwnedBy(bob) should be nil")
	}
}

func TestHoldingsValue(t *testing.T) {
	c := caseStudyContract(t)
	// Alice holds 2 PTs at 0.4 ETH: the case studies' 0.8 ETH valuation.
	if got := c.HoldingsValue(alice); got != wei.FromFloat(0.8) {
		t.Fatalf("HoldingsValue(alice) = %s, want 0.8", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := caseStudyContract(t)
	clone := c.Clone()
	if err := clone.Mint(bob, clone.NextID()); err != nil {
		t.Fatalf("Mint on clone: %v", err)
	}
	if c.Available() != 5 {
		t.Fatal("mutating a clone affected the original")
	}
	if c.StateDigest() == clone.StateDigest() {
		t.Fatal("diverged states share a digest")
	}
}

func TestStateDigestDeterministic(t *testing.T) {
	a := caseStudyContract(t)
	b := caseStudyContract(t)
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("identical states digest differently")
	}
}

// TestSupplyConservation is the property S^t + minted^t = S⁰ under any
// sequence of valid operations.
func TestSupplyConservation(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := Deploy(ptAddr, Config{MaxSupply: 10, InitialPrice: wei.FromFloat(0.2)})
		if err != nil {
			return false
		}
		users := []chainid.Address{alice, bob, chainid.UserAddress(3)}
		for i := 0; i < int(steps); i++ {
			u := users[rng.Intn(len(users))]
			switch rng.Intn(3) {
			case 0:
				_ = c.Mint(u, c.NextID())
			case 1:
				if ids := c.OwnedBy(u); len(ids) > 0 {
					_ = c.Transfer(ids[0], u, users[rng.Intn(len(users))])
				}
			case 2:
				if ids := c.OwnedBy(u); len(ids) > 0 {
					_ = c.Burn(ids[0], u)
				}
			}
			if c.Minted()+c.Available() != c.MaxSupply() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPriceMonotoneInScarcity: fewer available tokens must never lower the
// price (Eq. 10 is monotone decreasing in S^t).
func TestPriceMonotoneInScarcity(t *testing.T) {
	c := caseStudyContract(t)
	prev := c.PriceAt(c.MaxSupply())
	for s := c.MaxSupply() - 1; ; s-- {
		cur := c.PriceAt(s)
		if cur < prev {
			t.Fatalf("PriceAt(%d) = %s < PriceAt(%d) = %s", s, cur, s+1, prev)
		}
		prev = cur
		if s == 0 {
			break
		}
	}
}

func TestEventLog(t *testing.T) {
	c := caseStudyContract(t) // 5 pre-mints recorded
	events := c.Events()
	if len(events) != 5 {
		t.Fatalf("events after setup = %d, want 5", len(events))
	}
	// Pre-mint prices follow the curve: 0.2, 10/9*0.2, 0.25, 10/7*0.2, 10/6*0.2.
	if events[0].Price != wei.FromFloat(0.2) || events[0].Kind != EventMinted {
		t.Fatalf("event 0 = %+v", events[0])
	}
	id := c.NextID()
	if err := c.Mint(bob, id); err != nil {
		t.Fatal(err)
	}
	if err := c.Transfer(id, bob, alice); err != nil {
		t.Fatal(err)
	}
	if err := c.Burn(id, alice); err != nil {
		t.Fatal(err)
	}
	events = c.Events()
	if len(events) != 8 {
		t.Fatalf("events = %d, want 8", len(events))
	}
	mint, transfer, burn := events[5], events[6], events[7]
	if mint.Kind != EventMinted || mint.To != bob || mint.Price != wei.FromFloat(0.4) {
		t.Fatalf("mint event = %+v", mint)
	}
	if transfer.Kind != EventTransferred || transfer.From != bob || transfer.To != alice {
		t.Fatalf("transfer event = %+v", transfer)
	}
	// Transfer happens at the post-mint price 0.5.
	if transfer.Price != wei.FromFloat(0.5) {
		t.Fatalf("transfer price = %s", transfer.Price)
	}
	if burn.Kind != EventBurned || burn.From != alice || burn.Price != wei.FromFloat(0.5) {
		t.Fatalf("burn event = %+v", burn)
	}
	for _, e := range events {
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
}

func TestCloneDoesNotInheritEvents(t *testing.T) {
	c := caseStudyContract(t)
	clone := c.Clone()
	if got := len(clone.Events()); got != 0 {
		t.Fatalf("clone inherited %d events", got)
	}
	if err := clone.Mint(bob, clone.NextID()); err != nil {
		t.Fatal(err)
	}
	if len(clone.Events()) != 1 || len(c.Events()) != 5 {
		t.Fatal("event logs not independent")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	c := caseStudyContract(t)
	events := c.Events()
	events[0].TokenID = 999
	if c.Events()[0].TokenID == 999 {
		t.Fatal("Events exposed internal storage")
	}
}
