package token

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/wei"
)

func newJT(t *testing.T) *Contract {
	t.Helper()
	c, err := Deploy(chainid.DeriveAddress("journal-token"), Config{
		Name:         "Journal",
		Symbol:       "JT",
		MaxSupply:    4,
		InitialPrice: wei.FromFloat(0.1),
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return c
}

func TestJournalMintRevert(t *testing.T) {
	c := newJT(t)
	carol := chainid.UserAddress(3)
	before := c.StateDigest()
	v0 := c.Version()

	u, err := c.JournalMint(carol, c.NextID())
	if err != nil {
		t.Fatalf("JournalMint: %v", err)
	}
	if !c.Owns(carol, 0) {
		t.Fatal("mint did not apply")
	}
	if c.Version() <= v0 {
		t.Fatal("mint did not bump version")
	}

	u.Revert()
	if c.StateDigest() != before {
		t.Fatal("revert did not restore the state digest")
	}
	if c.Minted() != 0 || c.NextID() != 0 {
		t.Fatalf("revert left minted=%d nextID=%d", c.Minted(), c.NextID())
	}
	if c.Version() <= v0 {
		t.Fatal("revert must advance version, not roll it back")
	}
}

func TestJournalLIFORoundTrip(t *testing.T) {
	c := newJT(t)
	a, b := chainid.UserAddress(1), chainid.UserAddress(2)

	digests := []chainid.Hash{c.StateDigest()}
	var undos []Undo

	step := func(u Undo, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("journal op: %v", err)
		}
		undos = append(undos, u)
		digests = append(digests, c.StateDigest())
	}
	step(c.JournalMint(a, c.NextID())) // id 0 -> a
	step(c.JournalMint(b, c.NextID())) // id 1 -> b
	step(c.JournalTransfer(0, a, b))   // id 0 -> b
	step(c.JournalTransfer(0, b, a))   // id 0 -> a (repeated write to same key)
	step(c.JournalBurn(1, b))          // id 1 gone
	step(c.JournalMint(a, c.NextID())) // id 2 -> a

	for i := len(undos) - 1; i >= 0; i-- {
		undos[i].Revert()
		if got, want := c.StateDigest(), digests[i]; got != want {
			t.Fatalf("after reverting op %d: digest mismatch", i)
		}
	}
	if c.Minted() != 0 {
		t.Fatalf("full revert left %d tokens minted", c.Minted())
	}
}

func TestJournalFailedOpReturnsNoopUndo(t *testing.T) {
	c := newJT(t)
	a := chainid.UserAddress(1)
	if err := c.Mint(a, 0); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	digest := c.StateDigest()

	u, err := c.JournalMint(a, 0) // double mint must fail
	if err == nil {
		t.Fatal("double JournalMint succeeded")
	}
	if c.StateDigest() != digest {
		t.Fatal("failed journal op mutated the contract")
	}
	u.Revert() // zero Undo: must be a no-op
	if c.StateDigest() != digest {
		t.Fatal("zero Undo.Revert mutated the contract")
	}
}

func TestCloneCopiesVersion(t *testing.T) {
	c := newJT(t)
	if err := c.Mint(chainid.UserAddress(1), 0); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	cl := c.Clone()
	if cl.Version() != c.Version() {
		t.Fatalf("Clone version = %d, want %d", cl.Version(), c.Version())
	}
}
