package token

import (
	"math/rand"
	"testing"

	"parole/internal/chainid"
)

// digestContract deploys a wide contract so random ids spread over many
// digest buckets (ids up to 4096 span 128 buckets at 32 ids each).
func digestContract(t testing.TB) *Contract {
	t.Helper()
	c, err := Deploy(ptAddr, Config{
		Name:         "ParoleToken",
		Symbol:       "PT",
		MaxSupply:    1 << 20,
		InitialPrice: 1,
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return c
}

// TestStateDigestMatchesColdAcrossInterleavings is the incremental-digest
// property test, mirroring state.TestIncrementalRootMatchesColdRebuild:
// random interleavings of plain mutators, journaled mutators, LIFO reverts,
// and digest reads (which build the incremental structure at arbitrary
// points) must keep StateDigest equal to the from-scratch ColdStateDigest
// at every checkpoint.
func TestStateDigestMatchesColdAcrossInterleavings(t *testing.T) {
	const (
		trials  = 25
		steps   = 400
		idSpace = 4096 // 128 digest buckets
		users   = 8
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		c := digestContract(t)
		if trial%2 == 0 {
			// Half the trials build the incremental structure up front so
			// every mutation below exercises the maintenance path; the other
			// half build it lazily mid-run at the first checkpoint.
			_ = c.StateDigest()
		}

		// Journaled mutations are reverted strictly LIFO, and plain
		// mutations only run with an empty journal — the same discipline
		// state.Scratch enforces.
		var undos []Undo

		check := func(step int) {
			if got, want := c.StateDigest(), c.ColdStateDigest(); got != want {
				t.Fatalf("trial %d step %d: StateDigest %s != ColdStateDigest %s (minted=%d)",
					trial, step, got, want, c.Minted())
			}
		}

		randomLive := func() (uint64, chainid.Address, bool) {
			for attempt := 0; attempt < 8; attempt++ {
				id := uint64(rng.Intn(idSpace))
				if owner, ok := c.OwnerOf(id); ok {
					return id, owner, true
				}
			}
			return 0, chainid.Address{}, false
		}

		for step := 0; step < steps; step++ {
			op := rng.Intn(10)
			journaled := len(undos) > 0 || rng.Intn(2) == 0
			switch {
			case op < 4: // mint
				id := uint64(rng.Intn(idSpace))
				owner := chainid.UserAddress(rng.Intn(users))
				if journaled {
					if u, err := c.JournalMint(owner, id); err == nil {
						undos = append(undos, u)
					}
				} else {
					_ = c.Mint(owner, id)
				}
			case op < 6: // transfer
				if id, owner, ok := randomLive(); ok {
					to := chainid.UserAddress(rng.Intn(users))
					if journaled {
						if u, err := c.JournalTransfer(id, owner, to); err == nil {
							undos = append(undos, u)
						}
					} else {
						_ = c.Transfer(id, owner, to)
					}
				}
			case op < 8: // burn
				if id, owner, ok := randomLive(); ok {
					if journaled {
						if u, err := c.JournalBurn(id, owner); err == nil {
							undos = append(undos, u)
						}
					} else {
						_ = c.Burn(id, owner)
					}
				}
			case op == 8: // revert a LIFO suffix of the journal
				if n := len(undos); n > 0 {
					keep := rng.Intn(n)
					for i := n - 1; i >= keep; i-- {
						undos[i].Revert()
					}
					undos = undos[:keep]
				}
			default: // read the digest at a random point
				_ = c.StateDigest()
			}
			if step%53 == 0 {
				check(step)
			}
		}
		// Unwind any remaining journal and verify the final state.
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i].Revert()
		}
		check(steps)

		// A clone must produce the same digest from a fresh lazy build.
		if got, want := c.Clone().StateDigest(), c.StateDigest(); got != want {
			t.Fatalf("trial %d: clone digest %s != original %s", trial, got, want)
		}
	}
}

// TestColdStateDigestLeavesIncrementalUntouched pins that the reference
// path is genuinely independent: interleaving ColdStateDigest reads must
// not perturb the incremental structure.
func TestColdStateDigestLeavesIncrementalUntouched(t *testing.T) {
	c := digestContract(t)
	for id := uint64(0); id < 600; id++ {
		if err := c.Mint(chainid.UserAddress(int(id%5)), id); err != nil {
			t.Fatalf("Mint(%d): %v", id, err)
		}
	}
	warm := c.StateDigest()
	if cold := c.ColdStateDigest(); cold != warm {
		t.Fatalf("ColdStateDigest %s != StateDigest %s", cold, warm)
	}
	if err := c.Burn(3, chainid.UserAddress(3)); err != nil {
		t.Fatalf("Burn: %v", err)
	}
	cold := c.ColdStateDigest()
	if got := c.StateDigest(); got != cold {
		t.Fatalf("post-burn StateDigest %s != ColdStateDigest %s", got, cold)
	}
	if got := c.StateDigest(); got != cold {
		t.Fatalf("repeated StateDigest %s != ColdStateDigest %s", got, cold)
	}
}
