package token

// Incremental state digest.
//
// StateDigest commits to the contract's full ownership table and feeds the
// L2 state root, so the sequencer reads it after every batch. The original
// implementation sorted and re-hashed the entire owner table per read —
// O(owners · log owners) — which at 100k owners dominated the per-batch
// root reads of the scaling pipeline (docs/SCALING.md).
//
// The digest is now maintained incrementally as a two-level commitment over
// the sorted owner table:
//
//   - Level 0 — per-bucket sub-digests. Token ids partition into fixed
//     ranges of 1<<digestBucketShift ids; each non-empty bucket keeps an
//     unordered accumulator, the XOR of H("parole/token-entry", id, owner)
//     over its live entries. XOR is its own inverse, so a mint, burn, or
//     transfer updates its bucket in O(1) hash operations (a transfer
//     touches one bucket twice: remove the old owner pair, add the new).
//     Ids are unique within a contract, so a bucket's accumulator is a
//     commitment to its exact entry set for any collision-resistant entry
//     hash (two distinct sets differ in at least one (id, owner) pair);
//     it deliberately trades the ordering information — already implied
//     by the id — for O(1) updates.
//   - Level 1 — the top digest hashes the header and every (bucket index,
//     accumulator) pair in ascending bucket order. Recomputed lazily on
//     read when any bucket changed: O(owners / bucket size), ~400 buckets
//     at 100k owners instead of 100k sorted entries.
//
// The structure is built lazily on the first StateDigest call (Contract
// mutation stays O(1) map work for contracts whose digest nobody reads,
// and Clone — the OVM's per-candidate hot path — drops it, exactly as it
// drops the event log). Once built, every mutation path maintains it:
// Mint/Transfer/Burn, the journaled mutators, and Undo.Revert, so a
// Scratch rollback restores the digest along with the owner table.
// ColdStateDigest keeps the from-scratch recomputation as the reference;
// TestStateDigestMatchesColdAcrossInterleavings pins the two together.

import (
	"sort"

	"parole/internal/chainid"
	"parole/internal/telemetry"
)

// Digest-maintenance metrics (docs/METRICS.md §token).
var (
	mDigestBuilds     = telemetry.Default().Counter("token.digest.builds")
	mDigestRecomputes = telemetry.Default().Counter("token.digest.recomputes")
)

// digestBucketShift sizes the id ranges: 256 ids per bucket keeps the top
// recompute ~2.5 orders of magnitude smaller than the owner table while the
// per-bucket accumulators stay single-hash cheap to update.
const digestBucketShift = 8

// digestState is the incremental commitment. buckets maps a bucket index to
// the XOR accumulator over its entries; count tracks live entries so a
// bucket that empties disappears from the top digest exactly as it would in
// a cold rebuild.
type digestState struct {
	buckets map[uint64]chainid.Hash
	count   map[uint64]int
	top     chainid.Hash
	dirty   bool
}

// entryDigest hashes one (id, owner) pair of the ownership table.
func entryDigest(id uint64, owner chainid.Address) chainid.Hash {
	var b [8 + chainid.AddressLen]byte
	putUint64(b[:8], id)
	copy(b[8:], owner[:])
	return chainid.HashBytes([]byte("parole/token-entry"), b[:])
}

// digestAdd folds a new (id, owner) entry into its bucket. No-op until the
// digest structure exists.
func (c *Contract) digestAdd(id uint64, owner chainid.Address) {
	d := c.dig
	if d == nil {
		return
	}
	b := id >> digestBucketShift
	acc := d.buckets[b]
	h := entryDigest(id, owner)
	for i := range acc {
		acc[i] ^= h[i]
	}
	d.buckets[b] = acc
	d.count[b]++
	d.dirty = true
}

// digestRemove folds an existing (id, owner) entry out of its bucket (XOR
// is self-inverse), dropping the bucket when it empties.
func (c *Contract) digestRemove(id uint64, owner chainid.Address) {
	d := c.dig
	if d == nil {
		return
	}
	b := id >> digestBucketShift
	acc := d.buckets[b]
	h := entryDigest(id, owner)
	for i := range acc {
		acc[i] ^= h[i]
	}
	if n := d.count[b] - 1; n == 0 {
		delete(d.buckets, b)
		delete(d.count, b)
	} else {
		d.buckets[b] = acc
		d.count[b] = n
	}
	d.dirty = true
}

// buildDigest constructs the bucket accumulators from the current owner
// table — the one O(owners) pass, paid on the first StateDigest read.
func (c *Contract) buildDigest() *digestState {
	mDigestBuilds.Inc()
	d := &digestState{
		buckets: make(map[uint64]chainid.Hash),
		count:   make(map[uint64]int),
		dirty:   true,
	}
	for id, owner := range c.owners {
		b := id >> digestBucketShift
		acc := d.buckets[b]
		h := entryDigest(id, owner)
		for i := range acc {
			acc[i] ^= h[i]
		}
		d.buckets[b] = acc
		d.count[b]++
	}
	return d
}

// topDigest hashes the header and the sorted (bucket, accumulator) pairs
// into the committed digest value.
func (d *digestState) topDigest(c *Contract) chainid.Hash {
	idxs := make([]uint64, 0, len(d.buckets))
	for b := range d.buckets {
		idxs = append(idxs, b)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	segments := make([][]byte, 0, 2+len(idxs))
	segments = append(segments, []byte("parole/token-state/v2"), c.encodeHeader())
	for _, b := range idxs {
		acc := d.buckets[b]
		seg := make([]byte, 8+chainid.HashLen)
		putUint64(seg, b)
		copy(seg[8:], acc[:])
		segments = append(segments, seg)
	}
	return chainid.HashBytes(segments...)
}

// StateDigest commits to the full contract state (configuration plus the
// ownership table, bucketed by id range as described at the top of this
// file). It feeds the L2 state root. The first call builds the incremental
// structure (O(owners)); subsequent calls cost O(buckets) when anything
// changed since the last read and O(1) when nothing did.
func (c *Contract) StateDigest() chainid.Hash {
	if c.dig == nil {
		c.dig = c.buildDigest()
	}
	if c.dig.dirty {
		mDigestRecomputes.Inc()
		c.dig.top = c.dig.topDigest(c)
		c.dig.dirty = false
	}
	return c.dig.top
}

// ColdStateDigest recomputes the digest from the raw owner table, bypassing
// and not touching the incremental structure — the reference the property
// tests compare StateDigest against, mirroring state.ColdRoot.
func (c *Contract) ColdStateDigest() chainid.Hash {
	d := &digestState{
		buckets: make(map[uint64]chainid.Hash),
		count:   make(map[uint64]int),
	}
	for id, owner := range c.owners {
		b := id >> digestBucketShift
		acc := d.buckets[b]
		h := entryDigest(id, owner)
		for i := range acc {
			acc[i] ^= h[i]
		}
		d.buckets[b] = acc
		d.count[b]++
	}
	return d.topDigest(c)
}
