package token

// Incremental state digest.
//
// StateDigest commits to the contract's full ownership table and feeds the
// L2 state root, so the sequencer reads it after every batch. The original
// implementation sorted and re-hashed the entire owner table per read —
// O(owners · log owners) — which at 100k owners dominated the per-batch
// root reads of the scaling pipeline (docs/SCALING.md).
//
// The digest is maintained incrementally as a two-level commitment over
// the owner table, with dirty tracking instead of in-place accumulators:
//
//   - Level 0 — per-bucket sub-digests. Token ids partition into fixed
//     ranges of 1<<digestBucketShift ids; each non-empty bucket commits to
//     the hash of its live (id, owner) entries in ascending id order. A
//     mutation does not update the sub-digest in place — it only marks the
//     bucket dirty (O(1)); the sub-digest is re-derived from the owner
//     table on the next read, O(bucket size) per dirty bucket.
//   - Level 1 — the top digest hashes the header and every (bucket index,
//     sub-digest) pair in ascending bucket order. Recomputed lazily on
//     read when any bucket changed: O(owners / bucket size) pairs.
//
// Two properties fall out of deriving sub-digests from the owner table
// rather than folding deltas into an accumulator:
//
//   - Binding. An earlier revision XOR-ed per-entry hashes into each
//     bucket. XOR of hashes is linear over GF(2), so it is NOT a
//     collision-resistant set commitment: 257+ candidate entry hashes in
//     one bucket are linearly dependent in GF(2)^256, and Gaussian
//     elimination finds two distinct ownership assignments with identical
//     accumulators — a forgeable state root (the reason Bitcoin's MuHash
//     and Facebook's LtHash avoid plain XOR). Hashing the bucket's exact
//     ordered entry list inherits the hash function's collision
//     resistance instead.
//   - Self-healing. Sub-digests are always recomputed from the
//     authoritative owner table, never patched from the mutation's
//     arguments, so the structure cannot drift from ColdStateDigest: a
//     mutator bug (say, "removing" an entry that was never live) marks a
//     bucket dirty at worst, and the recompute restores the truth.
//
// The structure is built lazily on the first StateDigest call (Contract
// mutation stays O(1) map work for contracts whose digest nobody reads,
// and Clone — the OVM's per-candidate hot path — drops it, exactly as it
// drops the event log). Once built, every mutation path maintains it:
// Mint/Transfer/Burn, the journaled mutators, and Undo.Revert, so a
// Scratch rollback restores the digest along with the owner table.
// ColdStateDigest keeps the from-scratch recomputation as the reference;
// TestStateDigestMatchesColdAcrossInterleavings pins the two together.

import (
	"sort"

	"parole/internal/chainid"
	"parole/internal/telemetry"
)

// Digest-maintenance metrics (docs/METRICS.md §token).
var (
	mDigestBuilds       = telemetry.Default().Counter("token.digest.builds")
	mDigestRecomputes   = telemetry.Default().Counter("token.digest.recomputes")
	mDigestBucketHashes = telemetry.Default().Counter("token.digest.bucket_rehashes")
)

// digestBucketShift sizes the id ranges at 1<<shift = 32 ids per bucket. A
// StateDigest read costs (dirty buckets · bucket size) entry hashes plus
// O(total buckets) top-level pairs, so the bucket size balances the two:
// for a B-mutation batch over N owners the read is ~B·s + N/s work,
// minimized near s = sqrt(N/B) ≈ 20 at the scaling pipeline's N=100k,
// B=256 operating point. 32 keeps both terms a few thousand hashes — two
// orders of magnitude under the 100k-entry cold rebuild.
const digestBucketShift = 5

// digestBucketSpan is the number of ids per bucket.
const digestBucketSpan = 1 << digestBucketShift

// digestState is the incremental commitment. subs maps a non-empty bucket
// index to the ordered hash of its live entries; dirty marks buckets whose
// sub-digest is stale and must be re-derived from the owner table before
// the next top-digest read.
type digestState struct {
	subs  map[uint64]chainid.Hash
	dirty map[uint64]struct{}
	top   chainid.Hash
	topOK bool
}

// digestTouch marks the bucket holding id stale. Every owner-table mutation
// calls it (a transfer touches one bucket: same id, new owner); the
// sub-digest is re-derived lazily on the next StateDigest read. No-op until
// the digest structure exists.
func (c *Contract) digestTouch(id uint64) {
	d := c.dig
	if d == nil {
		return
	}
	d.dirty[id>>digestBucketShift] = struct{}{}
	d.topOK = false
}

// bucketDigest derives bucket b's sub-digest from the owner table: the hash
// of its live (id, owner) entries in ascending id order. ok is false when
// the bucket has no live entries. Reads only c.owners — it never consults
// the incremental structure, which is what makes recomputing a dirty bucket
// self-healing.
func (c *Contract) bucketDigest(b uint64) (h chainid.Hash, ok bool) {
	const entryLen = 8 + chainid.AddressLen
	lo := b << digestBucketShift
	segments := make([][]byte, 1, 1+digestBucketSpan)
	segments[0] = []byte("parole/token-bucket")
	buf := make([]byte, 0, entryLen*digestBucketSpan)
	for off := uint64(0); off < digestBucketSpan; off++ {
		id := lo | off
		owner, live := c.owners[id]
		if !live {
			continue
		}
		var e [entryLen]byte
		putUint64(e[:8], id)
		copy(e[8:], owner[:])
		buf = append(buf, e[:]...)
		segments = append(segments, buf[len(buf)-entryLen:])
	}
	if len(segments) == 1 {
		return chainid.Hash{}, false
	}
	return chainid.HashBytes(segments...), true
}

// buildDigest seeds the incremental structure: every bucket with a live
// entry starts dirty, so the first StateDigest read derives all sub-digests
// in one O(owners) pass.
func (c *Contract) buildDigest() *digestState {
	mDigestBuilds.Inc()
	d := &digestState{
		subs:  make(map[uint64]chainid.Hash),
		dirty: make(map[uint64]struct{}),
	}
	for id := range c.owners {
		d.dirty[id>>digestBucketShift] = struct{}{}
	}
	return d
}

// flush re-derives every dirty bucket's sub-digest from the owner table,
// dropping buckets that emptied.
func (d *digestState) flush(c *Contract) {
	for b := range d.dirty {
		mDigestBucketHashes.Inc()
		if h, ok := c.bucketDigest(b); ok {
			d.subs[b] = h
		} else {
			delete(d.subs, b)
		}
	}
	clear(d.dirty)
}

// topDigest hashes the header and the sorted (bucket, sub-digest) pairs
// into the committed digest value.
func topDigest(c *Contract, subs map[uint64]chainid.Hash) chainid.Hash {
	idxs := make([]uint64, 0, len(subs))
	for b := range subs {
		idxs = append(idxs, b)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	const pairLen = 8 + chainid.HashLen
	segments := make([][]byte, 0, 2+len(idxs))
	segments = append(segments, []byte("parole/token-state/v3"), c.encodeHeader())
	buf := make([]byte, pairLen*len(idxs))
	for i, b := range idxs {
		sub := subs[b]
		seg := buf[i*pairLen : (i+1)*pairLen]
		putUint64(seg, b)
		copy(seg[8:], sub[:])
		segments = append(segments, seg)
	}
	return chainid.HashBytes(segments...)
}

// StateDigest commits to the full contract state (configuration plus the
// ownership table, bucketed by id range as described at the top of this
// file). It feeds the L2 state root. The first call builds the incremental
// structure (O(owners)); subsequent calls cost O(dirty buckets · bucket
// size + total buckets) when anything changed since the last read and O(1)
// when nothing did.
func (c *Contract) StateDigest() chainid.Hash {
	if c.dig == nil {
		c.dig = c.buildDigest()
	}
	d := c.dig
	if !d.topOK {
		mDigestRecomputes.Inc()
		d.flush(c)
		d.top = topDigest(c, d.subs)
		d.topOK = true
	}
	return d.top
}

// ColdStateDigest recomputes the digest from the raw owner table, bypassing
// and not touching the incremental structure — the reference the property
// tests compare StateDigest against, mirroring state.ColdRoot.
func (c *Contract) ColdStateDigest() chainid.Hash {
	subs := make(map[uint64]chainid.Hash)
	seen := make(map[uint64]struct{})
	for id := range c.owners {
		seen[id>>digestBucketShift] = struct{}{}
	}
	for b := range seen {
		if h, ok := c.bucketDigest(b); ok {
			subs[b] = h
		}
	}
	return topDigest(c, subs)
}
