package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLossValuesAndGradients(t *testing.T) {
	tests := []struct {
		loss     Loss
		diff     float64
		wantVal  float64
		wantGrad float64
	}{
		{LossMSE, 2, 4, 4},
		{LossMSE, -3, 9, -6},
		{LossHuber, 0.5, 0.125, 0.5}, // quadratic region
		{LossHuber, 2, 1.5, 1},       // linear region: δ(|x|−δ/2)
		{LossHuber, -2, 1.5, -1},     // symmetric
		{LossHuber, 1, 0.5, 1},       // boundary
	}
	for _, tt := range tests {
		if got := tt.loss.value(tt.diff); math.Abs(got-tt.wantVal) > 1e-12 {
			t.Errorf("%v.value(%g) = %g, want %g", tt.loss, tt.diff, got, tt.wantVal)
		}
		if got := tt.loss.gradient(tt.diff); math.Abs(got-tt.wantGrad) > 1e-12 {
			t.Errorf("%v.gradient(%g) = %g, want %g", tt.loss, tt.diff, got, tt.wantGrad)
		}
	}
}

func TestHuberGradientBounded(t *testing.T) {
	f := func(diff float64) bool {
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return true
		}
		g := LossHuber.gradient(diff)
		return g >= -HuberDelta && g <= HuberDelta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossString(t *testing.T) {
	if LossMSE.String() != "mse" || LossHuber.String() != "huber" {
		t.Error("loss names wrong")
	}
	if Loss(9).String() != "loss(9)" {
		t.Error("unknown loss name wrong")
	}
}

func TestTrainQBatchLossHuberResistsOutliers(t *testing.T) {
	// One gigantic target: the Huber update must move the weights far less
	// than the MSE update.
	mse := newNet(t, 2, 4, 1)
	huber := mse.Clone()
	sample := []QSample{{Input: []float64{1, 1}, Action: 0, Target: 1e6}}
	if _, err := mse.TrainQBatchLoss(sample, SGD{LR: 0.01}, LossMSE); err != nil {
		t.Fatal(err)
	}
	if _, err := huber.TrainQBatchLoss(sample, SGD{LR: 0.01}, LossHuber); err != nil {
		t.Fatal(err)
	}
	var maxMSE, maxHuber float64
	for li := range mse.layers {
		for wi := range mse.layers[li].w {
			maxMSE = math.Max(maxMSE, math.Abs(mse.layers[li].w[wi]))
			maxHuber = math.Max(maxHuber, math.Abs(huber.layers[li].w[wi]))
		}
	}
	if maxHuber >= maxMSE {
		t.Fatalf("huber weights (%g) moved as much as mse (%g)", maxHuber, maxMSE)
	}
	if maxHuber > 10 {
		t.Fatalf("huber weights exploded: %g", maxHuber)
	}
}

func TestTrainQBatchLossConverges(t *testing.T) {
	n := newNet(t, 2, 8, 2)
	x := []float64{0.4, -0.2}
	var loss float64
	var err error
	for i := 0; i < 500; i++ {
		loss, err = n.TrainQBatchLoss([]QSample{{Input: x, Action: 1, Target: 3}}, SGD{LR: 0.05}, LossHuber)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.01 {
		t.Fatalf("huber training did not converge: loss %g", loss)
	}
}

func TestAdamConverges(t *testing.T) {
	n := newNet(t, 2, 8, 2)
	var opt Adam
	x := []float64{0.4, -0.2}
	var loss float64
	var err error
	for i := 0; i < 2000; i++ {
		loss, err = opt.StepQBatch(n, []QSample{{Input: x, Action: 0, Target: -2}}, LossMSE)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.02 {
		t.Fatalf("adam did not converge: loss %g", loss)
	}
	out, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-(-2)) > 0.2 {
		t.Fatalf("adam Q[0] = %g, want ~-2", out[0])
	}
}

func TestAdamRejectsForeignNetwork(t *testing.T) {
	a := newNet(t, 2, 4, 2)
	b := newNet(t, 2, 5, 2)
	var opt Adam
	if _, err := opt.StepQBatch(a, []QSample{{Input: []float64{1, 0}, Action: 0, Target: 1}}, LossMSE); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.StepQBatch(b, []QSample{{Input: []float64{1, 0}, Action: 0, Target: 1}}, LossMSE); err == nil {
		t.Fatal("Adam accepted a differently-shaped network")
	}
}

func TestAdamEmptyBatch(t *testing.T) {
	n := newNet(t, 2, 3)
	var opt Adam
	if loss, err := opt.StepQBatch(n, nil, LossMSE); err != nil || loss != 0 {
		t.Fatalf("empty batch = (%g, %v)", loss, err)
	}
}

func TestTrainQBatchLossMatchesTrainQBatchForMSE(t *testing.T) {
	// TrainQBatch is definitionally TrainQBatchLoss with MSE.
	rngA := rand.New(rand.NewSource(5))
	a, err := New(rngA, 3, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	sample := []QSample{{Input: []float64{0.1, 0.2, 0.3}, Action: 1, Target: 0.7}}
	lossA, err := a.TrainQBatch(sample, SGD{LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := b.TrainQBatchLoss(sample, SGD{LR: 0.1}, LossMSE)
	if err != nil {
		t.Fatal(err)
	}
	if lossA != lossB {
		t.Fatalf("losses differ: %g vs %g", lossA, lossB)
	}
	xa, err := a.Forward(sample[0].Input)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := b.Forward(sample[0].Input)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatal("updates diverged between TrainQBatch and TrainQBatchLoss(MSE)")
		}
	}
}
