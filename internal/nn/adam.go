package nn

import "math"

// Adam is the Adam optimizer state for one network. It is an alternative to
// the SGD+momentum updater: better suited to the spiky TD-error gradients of
// Q-learning when the reward scale is large.
//
// Usage: create one Adam per network and call StepQBatch instead of
// TrainQBatch. The moment buffers are keyed to the network's parameter
// layout; using one Adam across different networks is a programming error
// and is rejected.
type Adam struct {
	// LR is the learning rate (default 1e-3 when zero).
	LR float64
	// Beta1, Beta2 are the moment decays (defaults 0.9, 0.999).
	Beta1, Beta2 float64
	// Epsilon avoids division by zero (default 1e-8).
	Epsilon float64

	t  int
	mw [][]float64
	vw [][]float64
	mb [][]float64
	vb [][]float64
}

// defaults fills unset hyper-parameters.
func (a *Adam) defaults() {
	if a.LR == 0 {
		a.LR = 1e-3
	}
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Epsilon == 0 {
		a.Epsilon = 1e-8
	}
}

// bind (lazily) sizes the moment buffers to n's layout.
func (a *Adam) bind(n *Network) error {
	if a.mw != nil {
		if len(a.mw) != len(n.layers) {
			return ErrBadArch
		}
		for i, l := range n.layers {
			if len(a.mw[i]) != len(l.w) || len(a.mb[i]) != len(l.b) {
				return ErrBadArch
			}
		}
		return nil
	}
	a.defaults()
	for _, l := range n.layers {
		a.mw = append(a.mw, make([]float64, len(l.w)))
		a.vw = append(a.vw, make([]float64, len(l.w)))
		a.mb = append(a.mb, make([]float64, len(l.b)))
		a.vb = append(a.vb, make([]float64, len(l.b)))
	}
	return nil
}

// StepQBatch performs one Adam update on masked Q targets with the given
// loss, returning the mean per-sample loss.
func (a *Adam) StepQBatch(n *Network, batch []QSample, loss Loss) (float64, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	if err := a.bind(n); err != nil {
		return 0, err
	}
	if loss == 0 {
		loss = LossMSE
	}
	outSize := n.sizes[len(n.sizes)-1]
	n.zeroGrads()
	var total float64
	grad := make([]float64, outSize)
	for _, s := range batch {
		if s.Action < 0 || s.Action >= outSize {
			return 0, ErrBadShape
		}
		pred, err := n.Forward(s.Input)
		if err != nil {
			return 0, err
		}
		diff := pred[s.Action] - s.Target
		total += loss.value(diff)
		for i := range grad {
			grad[i] = 0
		}
		grad[s.Action] = loss.gradient(diff)
		n.accumulate(grad)
	}

	a.t++
	inv := 1.0 / float64(len(batch))
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for li, l := range n.layers {
		for i, g := range l.gw {
			g *= inv
			a.mw[li][i] = a.Beta1*a.mw[li][i] + (1-a.Beta1)*g
			a.vw[li][i] = a.Beta2*a.vw[li][i] + (1-a.Beta2)*g*g
			l.w[i] -= a.LR * (a.mw[li][i] / bc1) / (math.Sqrt(a.vw[li][i]/bc2) + a.Epsilon)
		}
		for i, g := range l.gb {
			g *= inv
			a.mb[li][i] = a.Beta1*a.mb[li][i] + (1-a.Beta1)*g
			a.vb[li][i] = a.Beta2*a.vb[li][i] + (1-a.Beta2)*g*g
			l.b[i] -= a.LR * (a.mb[li][i] / bc1) / (math.Sqrt(a.vb[li][i]/bc2) + a.Epsilon)
		}
	}
	return total / float64(len(batch)), nil
}
