// Package nn is a from-scratch dense neural-network library — the substrate
// that stands in for the Python DRL stack the paper used (no DRL library
// exists for Go; see DESIGN.md §4).
//
// It provides exactly what a DQN needs (Fig. 2 / Fig. 4 of the paper):
// fully-connected feed-forward networks with ReLU hidden layers and a linear
// output head, mini-batch backpropagation with SGD+momentum, a masked
// regression mode for Q-learning targets (gradients flow only through the
// action actually taken), and weight copying for the target network.
//
// All randomness is injected via *rand.Rand so training is reproducible.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"parole/internal/telemetry"
)

// Work-volume metrics (docs/METRICS.md §nn): forward passes, per-sample
// backward passes, and optimizer steps. Pure counts — no clocks.
var (
	mForwards     = telemetry.Default().Counter("nn.forwards")
	mBackwards    = telemetry.Default().Counter("nn.backwards")
	mTrainBatches = telemetry.Default().Counter("nn.train_batches")
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations.
const (
	// ActReLU is max(0, x) — the hidden-layer activation.
	ActReLU Activation = iota + 1
	// ActLinear is the identity — the Q-value output head.
	ActLinear
)

// apply computes the activation in place.
func (a Activation) apply(v []float64) {
	if a == ActReLU {
		for i, x := range v {
			if x < 0 {
				v[i] = 0
			}
		}
	}
}

// derivative returns dact/dz given the post-activation value.
func (a Activation) derivative(activated float64) float64 {
	if a == ActReLU && activated <= 0 {
		return 0
	}
	return 1
}

// Package errors.
var (
	ErrBadShape = errors.New("nn: shape mismatch")
	ErrBadArch  = errors.New("nn: invalid architecture")
)

// layer is one dense layer: y = act(W·x + b).
type layer struct {
	in, out int
	w       []float64 // out × in, row-major
	b       []float64

	// Training caches (mini-batch scratch space).
	act   []float64 // post-activation output of the last forward
	delta []float64 // back-propagated error
	gw    []float64 // accumulated weight gradients
	gb    []float64 // accumulated bias gradients
	vw    []float64 // momentum buffers
	vb    []float64

	activation Activation
}

// Network is a dense feed-forward network.
type Network struct {
	layers []*layer
	sizes  []int
	input  []float64 // cache of the last forward input
}

// New constructs a network with the given layer sizes, e.g. [8N, 64, 64,
// C(N,2)]. Hidden layers use ReLU; the output layer is linear. Weights are
// He-initialized from rng.
func New(rng *rand.Rand, sizes ...int) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: need at least input and output sizes, got %v", ErrBadArch, sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("%w: non-positive layer size in %v", ErrBadArch, sizes)
		}
	}
	n := &Network{sizes: append([]int(nil), sizes...)}
	for i := 1; i < len(sizes); i++ {
		act := ActReLU
		if i == len(sizes)-1 {
			act = ActLinear
		}
		l := &layer{
			in:         sizes[i-1],
			out:        sizes[i],
			w:          make([]float64, sizes[i]*sizes[i-1]),
			b:          make([]float64, sizes[i]),
			act:        make([]float64, sizes[i]),
			delta:      make([]float64, sizes[i]),
			gw:         make([]float64, sizes[i]*sizes[i-1]),
			gb:         make([]float64, sizes[i]),
			vw:         make([]float64, sizes[i]*sizes[i-1]),
			vb:         make([]float64, sizes[i]),
			activation: act,
		}
		// He initialization suits ReLU stacks.
		scale := math.Sqrt(2.0 / float64(l.in))
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * scale
		}
		n.layers = append(n.layers, l)
	}
	return n, nil
}

// Sizes returns the layer sizes the network was built with.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// Forward runs inference and returns a fresh output vector.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.sizes[0] {
		return nil, fmt.Errorf("%w: input %d, want %d", ErrBadShape, len(x), n.sizes[0])
	}
	mForwards.Inc()
	n.input = x
	cur := x
	for _, l := range n.layers {
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			l.act[o] = sum
		}
		l.activation.apply(l.act)
		cur = l.act
	}
	out := make([]float64, len(cur))
	copy(out, cur)
	return out, nil
}

// QSample is one Q-learning training example: regress output[Action]
// towards Target, leaving other outputs untouched.
type QSample struct {
	Input  []float64
	Action int
	Target float64
}

// SGD holds optimizer hyper-parameters.
type SGD struct {
	// LR is the learning rate (the paper's α, Table II).
	LR float64
	// Momentum in [0,1); 0 disables.
	Momentum float64
	// ClipNorm, when positive, rescales each mini-batch gradient so its L2
	// norm does not exceed the bound (stabilizes early Q-learning).
	ClipNorm float64
}

// TrainQBatch performs one mini-batch gradient step on masked Q targets and
// returns the mean squared TD error of the batch.
func (n *Network) TrainQBatch(batch []QSample, opt SGD) (float64, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	outSize := n.sizes[len(n.sizes)-1]
	n.zeroGrads()
	var loss float64
	grad := make([]float64, outSize)
	for _, s := range batch {
		if s.Action < 0 || s.Action >= outSize {
			return 0, fmt.Errorf("%w: action %d of %d", ErrBadShape, s.Action, outSize)
		}
		pred, err := n.Forward(s.Input)
		if err != nil {
			return 0, err
		}
		diff := pred[s.Action] - s.Target
		loss += diff * diff
		for i := range grad {
			grad[i] = 0
		}
		grad[s.Action] = 2 * diff
		n.accumulate(grad)
	}
	n.step(len(batch), opt)
	return loss / float64(len(batch)), nil
}

// FitBatch performs one mini-batch step regressing full output vectors to
// targets (plain MSE). Used by tests and by callers that need a generic
// regressor.
func (n *Network) FitBatch(inputs, targets [][]float64, opt SGD) (float64, error) {
	if len(inputs) != len(targets) {
		return 0, fmt.Errorf("%w: %d inputs, %d targets", ErrBadShape, len(inputs), len(targets))
	}
	if len(inputs) == 0 {
		return 0, nil
	}
	outSize := n.sizes[len(n.sizes)-1]
	n.zeroGrads()
	var loss float64
	grad := make([]float64, outSize)
	for k, x := range inputs {
		if len(targets[k]) != outSize {
			return 0, fmt.Errorf("%w: target %d has %d values, want %d", ErrBadShape, k, len(targets[k]), outSize)
		}
		pred, err := n.Forward(x)
		if err != nil {
			return 0, err
		}
		for i := range grad {
			d := pred[i] - targets[k][i]
			loss += d * d
			grad[i] = 2 * d
		}
		n.accumulate(grad)
	}
	n.step(len(inputs), opt)
	return loss / float64(len(inputs)), nil
}

// CopyFrom overwrites this network's weights with src's — the DQN target-
// network sync (Table II: "Target network update — every 30 steps").
func (n *Network) CopyFrom(src *Network) error {
	if len(n.layers) != len(src.layers) {
		return fmt.Errorf("%w: %v vs %v", ErrBadArch, n.sizes, src.sizes)
	}
	for i, l := range n.layers {
		sl := src.layers[i]
		if l.in != sl.in || l.out != sl.out {
			return fmt.Errorf("%w: layer %d %dx%d vs %dx%d", ErrBadArch, i, l.out, l.in, sl.out, sl.in)
		}
		copy(l.w, sl.w)
		copy(l.b, sl.b)
	}
	return nil
}

// Clone returns an independent copy of the network (weights only; optimizer
// state is reset).
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...)}
	for _, l := range n.layers {
		nl := &layer{
			in: l.in, out: l.out,
			w:          append([]float64(nil), l.w...),
			b:          append([]float64(nil), l.b...),
			act:        make([]float64, l.out),
			delta:      make([]float64, l.out),
			gw:         make([]float64, len(l.w)),
			gb:         make([]float64, len(l.b)),
			vw:         make([]float64, len(l.w)),
			vb:         make([]float64, len(l.b)),
			activation: l.activation,
		}
		c.layers = append(c.layers, nl)
	}
	return c
}

// zeroGrads clears accumulated gradients.
func (n *Network) zeroGrads() {
	for _, l := range n.layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// accumulate back-propagates the output gradient of the most recent Forward
// call, adding parameter gradients into the accumulators.
func (n *Network) accumulate(outGrad []float64) {
	mBackwards.Inc()
	last := len(n.layers) - 1
	copy(n.layers[last].delta, outGrad)
	// Apply activation derivative of the output layer (linear → no-op).
	for o, d := range n.layers[last].delta {
		n.layers[last].delta[o] = d * n.layers[last].activation.derivative(n.layers[last].act[o])
	}
	// Hidden layers.
	for li := last - 1; li >= 0; li-- {
		l, next := n.layers[li], n.layers[li+1]
		for i := 0; i < l.out; i++ {
			var sum float64
			for o := 0; o < next.out; o++ {
				sum += next.w[o*next.in+i] * next.delta[o]
			}
			l.delta[i] = sum * l.activation.derivative(l.act[i])
		}
	}
	// Parameter gradients.
	for li, l := range n.layers {
		var in []float64
		if li == 0 {
			in = n.input
		} else {
			in = n.layers[li-1].act
		}
		for o := 0; o < l.out; o++ {
			d := l.delta[o]
			if d == 0 {
				continue
			}
			row := l.gw[o*l.in : (o+1)*l.in]
			for i, xi := range in {
				row[i] += d * xi
			}
			l.gb[o] += d
		}
	}
}

// step applies the averaged, optionally clipped, momentum-SGD update.
func (n *Network) step(batchSize int, opt SGD) {
	mTrainBatches.Inc()
	inv := 1.0 / float64(batchSize)
	if opt.ClipNorm > 0 {
		var norm float64
		for _, l := range n.layers {
			for _, g := range l.gw {
				norm += g * g * inv * inv
			}
			for _, g := range l.gb {
				norm += g * g * inv * inv
			}
		}
		norm = math.Sqrt(norm)
		if norm > opt.ClipNorm {
			inv *= opt.ClipNorm / norm
		}
	}
	for _, l := range n.layers {
		for i := range l.w {
			l.vw[i] = opt.Momentum*l.vw[i] - opt.LR*l.gw[i]*inv
			l.w[i] += l.vw[i]
		}
		for i := range l.b {
			l.vb[i] = opt.Momentum*l.vb[i] - opt.LR*l.gb[i]*inv
			l.b[i] += l.vb[i]
		}
	}
}
