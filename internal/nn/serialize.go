package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// snapshot is the gob wire form of a network.
type snapshot struct {
	Sizes   []int
	Weights [][]float64
	Biases  [][]float64
}

// MarshalBinary serializes the network weights (encoding.BinaryMarshaler).
// Optimizer state is not persisted; a reloaded network resumes with fresh
// momentum buffers, which matches how the IFU "trains the model offline"
// and ships weights to the aggregator (Section VII-F).
func (n *Network) MarshalBinary() ([]byte, error) {
	snap := snapshot{Sizes: n.Sizes()}
	for _, l := range n.layers {
		snap.Weights = append(snap.Weights, append([]float64(nil), l.w...))
		snap.Biases = append(snap.Biases, append([]float64(nil), l.b...))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a network previously serialized with
// MarshalBinary (encoding.BinaryUnmarshaler).
func (n *Network) UnmarshalBinary(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	if len(snap.Sizes) < 2 || len(snap.Weights) != len(snap.Sizes)-1 || len(snap.Biases) != len(snap.Sizes)-1 {
		return fmt.Errorf("%w: malformed snapshot", ErrBadArch)
	}
	rebuilt, err := New(rand.New(rand.NewSource(0)), snap.Sizes...)
	if err != nil {
		return err
	}
	for i, l := range rebuilt.layers {
		if len(snap.Weights[i]) != len(l.w) || len(snap.Biases[i]) != len(l.b) {
			return fmt.Errorf("%w: layer %d weight shape", ErrBadArch, i)
		}
		copy(l.w, snap.Weights[i])
		copy(l.b, snap.Biases[i])
	}
	*n = *rebuilt
	return nil
}
