package nn

import (
	"fmt"
	"math"
)

// Loss selects the regression loss for Q-target training.
type Loss int

// Supported losses.
const (
	// LossMSE is plain squared error — the default.
	LossMSE Loss = iota + 1
	// LossHuber is the Huber loss (squared near zero, linear beyond
	// HuberDelta) — the standard DQN choice because it bounds the gradient
	// of large TD errors without clipping the network's weights.
	LossHuber
)

// HuberDelta is the |error| beyond which the Huber loss turns linear.
const HuberDelta = 1.0

// value returns the per-element loss for a prediction error.
func (l Loss) value(diff float64) float64 {
	switch l {
	case LossHuber:
		a := math.Abs(diff)
		if a <= HuberDelta {
			return 0.5 * diff * diff
		}
		return HuberDelta * (a - 0.5*HuberDelta)
	default:
		return diff * diff
	}
}

// gradient returns d(loss)/d(prediction).
func (l Loss) gradient(diff float64) float64 {
	switch l {
	case LossHuber:
		if diff > HuberDelta {
			return HuberDelta
		}
		if diff < -HuberDelta {
			return -HuberDelta
		}
		return diff
	default:
		return 2 * diff
	}
}

// String returns the loss name.
func (l Loss) String() string {
	switch l {
	case LossMSE:
		return "mse"
	case LossHuber:
		return "huber"
	default:
		return fmt.Sprintf("loss(%d)", int(l))
	}
}

// TrainQBatchLoss is TrainQBatch with an explicit loss function; TrainQBatch
// uses LossMSE. It returns the mean per-sample loss.
func (n *Network) TrainQBatchLoss(batch []QSample, opt SGD, loss Loss) (float64, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	if loss == 0 {
		loss = LossMSE
	}
	outSize := n.sizes[len(n.sizes)-1]
	n.zeroGrads()
	var total float64
	grad := make([]float64, outSize)
	for _, s := range batch {
		if s.Action < 0 || s.Action >= outSize {
			return 0, fmt.Errorf("%w: action %d of %d", ErrBadShape, s.Action, outSize)
		}
		pred, err := n.Forward(s.Input)
		if err != nil {
			return 0, err
		}
		diff := pred[s.Action] - s.Target
		total += loss.value(diff)
		for i := range grad {
			grad[i] = 0
		}
		grad[s.Action] = loss.gradient(diff)
		n.accumulate(grad)
	}
	n.step(len(batch), opt)
	return total / float64(len(batch)), nil
}
