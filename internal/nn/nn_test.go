package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func newNet(t testing.TB, sizes ...int) *Network {
	t.Helper()
	n, err := New(rand.New(rand.NewSource(1)), sizes...)
	if err != nil {
		t.Fatalf("New(%v): %v", sizes, err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(rng, 4); !errors.Is(err, ErrBadArch) {
		t.Errorf("single layer = %v, want ErrBadArch", err)
	}
	if _, err := New(rng, 4, 0, 2); !errors.Is(err, ErrBadArch) {
		t.Errorf("zero width = %v, want ErrBadArch", err)
	}
}

func TestForwardShapes(t *testing.T) {
	n := newNet(t, 3, 5, 2)
	out, err := n.Forward([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output size = %d, want 2", len(out))
	}
	if _, err := n.Forward([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("bad input = %v, want ErrBadShape", err)
	}
}

func TestForwardDeterministic(t *testing.T) {
	n := newNet(t, 4, 8, 3)
	x := []float64{0.1, -0.2, 0.3, 0.4}
	a, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward is not deterministic")
		}
	}
}

func TestNumParams(t *testing.T) {
	n := newNet(t, 3, 5, 2)
	// (3*5+5) + (5*2+2) = 20 + 12 = 32
	if got := n.NumParams(); got != 32 {
		t.Fatalf("NumParams = %d, want 32", got)
	}
}

// TestGradientCheck compares analytic gradients (via one FitBatch step with
// tiny LR) against numerical finite differences on the loss surface.
func TestGradientCheck(t *testing.T) {
	n := newNet(t, 3, 4, 2)
	x := []float64{0.5, -0.3, 0.8}
	target := []float64{0.2, -0.1}

	loss := func(net *Network) float64 {
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		var l float64
		for i := range out {
			d := out[i] - target[i]
			l += d * d
		}
		return l
	}

	// Analytic gradient: run accumulate through FitBatch machinery on a
	// clone with LR so small the parameters barely move, then recover the
	// gradient from the parameter delta: Δw = -LR * g.
	const lr = 1e-8
	clone := n.Clone()
	if _, err := clone.FitBatch([][]float64{x}, [][]float64{target}, SGD{LR: lr}); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-6
	for li, l := range n.layers {
		for wi := range l.w {
			orig := l.w[wi]
			l.w[wi] = orig + eps
			lp := loss(n)
			l.w[wi] = orig - eps
			lm := loss(n)
			l.w[wi] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := (orig - clone.layers[li].w[wi]) / lr
			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d w[%d]: numeric %g, analytic %g", li, wi, numeric, analytic)
			}
		}
		for bi := range l.b {
			orig := l.b[bi]
			l.b[bi] = orig + eps
			lp := loss(n)
			l.b[bi] = orig - eps
			lm := loss(n)
			l.b[bi] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := (orig - clone.layers[li].b[bi]) / lr
			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d b[%d]: numeric %g, analytic %g", li, bi, numeric, analytic)
			}
		}
	}
}

// TestFitBatchLearnsXOR: the canonical non-linear sanity check.
func TestFitBatchLearnsXOR(t *testing.T) {
	n := newNet(t, 2, 16, 1)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := [][]float64{{0}, {1}, {1}, {0}}
	var loss float64
	var err error
	for epoch := 0; epoch < 4000; epoch++ {
		loss, err = n.FitBatch(inputs, targets, SGD{LR: 0.05, Momentum: 0.9})
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss > 0.02 {
		t.Fatalf("XOR not learned: final loss %g", loss)
	}
	for i, x := range inputs {
		out, err := n.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-targets[i][0]) > 0.25 {
			t.Fatalf("XOR(%v) = %g, want %g", x, out[0], targets[i][0])
		}
	}
}

func TestTrainQBatchMovesOnlySelectedAction(t *testing.T) {
	n := newNet(t, 2, 6, 3)
	x := []float64{0.3, -0.7}
	before, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	target := before[1] + 1.0
	for i := 0; i < 200; i++ {
		if _, err := n.TrainQBatch([]QSample{{Input: x, Action: 1, Target: target}}, SGD{LR: 0.01}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after[1]-target) > 0.05 {
		t.Fatalf("Q[1] = %g, want ~%g", after[1], target)
	}
	// The untrained actions drift far less than the trained one moved.
	if math.Abs(after[0]-before[0]) > 0.5 || math.Abs(after[2]-before[2]) > 0.5 {
		t.Fatalf("masked training leaked: %v -> %v", before, after)
	}
}

func TestTrainQBatchValidation(t *testing.T) {
	n := newNet(t, 2, 3)
	if _, err := n.TrainQBatch([]QSample{{Input: []float64{1, 2}, Action: 5}}, SGD{LR: 0.1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("bad action = %v, want ErrBadShape", err)
	}
	if loss, err := n.TrainQBatch(nil, SGD{LR: 0.1}); err != nil || loss != 0 {
		t.Fatalf("empty batch = (%g, %v)", loss, err)
	}
}

func TestFitBatchValidation(t *testing.T) {
	n := newNet(t, 2, 3)
	if _, err := n.FitBatch([][]float64{{1, 2}}, nil, SGD{LR: 0.1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("mismatched batch = %v", err)
	}
	if _, err := n.FitBatch([][]float64{{1, 2}}, [][]float64{{1}}, SGD{LR: 0.1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("bad target size = %v", err)
	}
}

func TestCopyFromSyncsTargets(t *testing.T) {
	a := newNet(t, 3, 4, 2)
	b, err := New(rand.New(rand.NewSource(99)), 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	outA, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatal("CopyFrom did not sync outputs")
		}
	}
	mismatch := newNet(t, 3, 5, 2)
	if err := mismatch.CopyFrom(a); !errors.Is(err, ErrBadArch) {
		t.Fatalf("mismatched CopyFrom = %v, want ErrBadArch", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := newNet(t, 2, 4, 2)
	c := a.Clone()
	x := []float64{0.5, 0.5}
	before, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := a.TrainQBatch([]QSample{{Input: x, Action: 0, Target: 10}}, SGD{LR: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training the original changed the clone")
		}
	}
}

func TestGradientClipping(t *testing.T) {
	// With a huge target, an unclipped step explodes; a clipped one stays
	// finite and bounded.
	a := newNet(t, 2, 4, 1)
	b := a.Clone()
	sample := []QSample{{Input: []float64{1, 1}, Action: 0, Target: 1e9}}
	if _, err := a.TrainQBatch(sample, SGD{LR: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TrainQBatch(sample, SGD{LR: 0.1, ClipNorm: 1.0}); err != nil {
		t.Fatal(err)
	}
	var maxA, maxB float64
	for li := range a.layers {
		for wi := range a.layers[li].w {
			maxA = math.Max(maxA, math.Abs(a.layers[li].w[wi]))
			maxB = math.Max(maxB, math.Abs(b.layers[li].w[wi]))
		}
	}
	if maxB > 10 {
		t.Fatalf("clipped weights exploded: %g", maxB)
	}
	if maxA < maxB {
		t.Fatal("clipping had no effect")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	a := newNet(t, 4, 6, 3)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Network
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	outA, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatal("serialization round trip changed outputs")
		}
	}
	if err := b.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage should not decode")
	}
}
