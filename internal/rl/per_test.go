package rl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumTreeSetAndTotal(t *testing.T) {
	tr := newSumTree(5) // rounds up to 8 leaves
	tr.set(0, 1)
	tr.set(1, 2)
	tr.set(4, 5)
	if got := tr.total(); got != 8 {
		t.Fatalf("total = %g, want 8", got)
	}
	tr.set(1, 0)
	if got := tr.total(); got != 6 {
		t.Fatalf("total after update = %g, want 6", got)
	}
}

func TestSumTreeSampleBoundaries(t *testing.T) {
	tr := newSumTree(4)
	tr.set(0, 1)
	tr.set(1, 2)
	tr.set(2, 3)
	tr.set(3, 4)
	tests := []struct {
		mass float64
		want int
	}{
		{0, 0},
		{0.99, 0},
		{1, 1},
		{2.99, 1},
		{3, 2},
		{5.99, 2},
		{6, 3},
		{9.99, 3},
	}
	for _, tt := range tests {
		if got := tr.sample(tt.mass); got != tt.want {
			t.Errorf("sample(%g) = %d, want %d", tt.mass, got, tt.want)
		}
	}
}

// TestSumTreeSamplingProportional: empirical sampling frequencies track
// priorities.
func TestSumTreeSamplingProportional(t *testing.T) {
	tr := newSumTree(3)
	tr.set(0, 1)
	tr.set(1, 3)
	tr.set(2, 6)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 3)
	const draws = 30_000
	for i := 0; i < draws; i++ {
		counts[tr.sample(rng.Float64()*tr.total())]++
	}
	for i, wantFrac := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / draws
		if math.Abs(got-wantFrac) > 0.02 {
			t.Errorf("leaf %d frequency = %.3f, want %.1f", i, got, wantFrac)
		}
	}
}

func TestSumTreeInvariantQuick(t *testing.T) {
	// Root always equals the sum of leaves after arbitrary updates.
	f := func(updates []uint16) bool {
		tr := newSumTree(16)
		leaves := make([]float64, 16)
		for _, u := range updates {
			i := int(u) % 16
			p := float64(u%97) / 10
			tr.set(i, p)
			leaves[i] = p
		}
		var want float64
		for _, p := range leaves {
			want += p
		}
		return math.Abs(tr.total()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrioritizedReplayLifecycle(t *testing.T) {
	b, err := NewPrioritizedReplay(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 || b.Cap() != 4 {
		t.Fatalf("fresh buffer len/cap = %d/%d", b.Len(), b.Cap())
	}
	for i := 0; i < 6; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4 (capacity)", b.Len())
	}
	rng := rand.New(rand.NewSource(1))
	got, idxs := b.Sample(rng, 8)
	if len(got) != 8 || len(idxs) != 8 {
		t.Fatalf("sampled %d/%d", len(got), len(idxs))
	}
	for _, tr := range got {
		// Oldest (0,1) were evicted.
		if tr.Action < 2 || tr.Action > 5 {
			t.Fatalf("sampled evicted transition %d", tr.Action)
		}
	}
}

func TestPrioritizedReplayPrioritySkew(t *testing.T) {
	b, err := NewPrioritizedReplay(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b.Add(Transition{Action: i})
	}
	// Crank transition 3's priority far above the rest.
	if err := b.UpdatePriorities([]int{3}, []float64{100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if i != 3 {
			if err := b.UpdatePriorities([]int{i}, []float64{0.001}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	hits := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		got, _ := b.Sample(rng, 1)
		if got[0].Action == 3 {
			hits++
		}
	}
	if frac := float64(hits) / draws; frac < 0.5 {
		t.Fatalf("high-priority transition sampled only %.2f of draws", frac)
	}
}

func TestUpdatePrioritiesValidation(t *testing.T) {
	b, err := NewPrioritizedReplay(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UpdatePriorities([]int{0}, []float64{1, 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("length mismatch = %v", err)
	}
	if err := b.UpdatePriorities([]int{9}, []float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad index = %v", err)
	}
	if _, err := NewPrioritizedReplay(0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero capacity = %v", err)
	}
}

func TestAgentWithPrioritizedReplayLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	cfg.Prioritized = true
	agent, err := NewAgent(rng, 5, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &chainEnv{}
	if _, err := agent.Train(env, 150, 30); err != nil {
		t.Fatal(err)
	}
	res, err := agent.RunEpisode(env, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reward < 5 {
		t.Fatalf("PER agent greedy reward = %g, want ≥ 5", res.Reward)
	}
}
