package rl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parole/internal/nn"
)

// chainEnv is a tiny deterministic MDP for tests: states 0..4 on a line,
// action 0 moves left, action 1 moves right; reaching state 4 gives +10 and
// ends the episode; every step costs -1.
type chainEnv struct {
	pos int
}

func (e *chainEnv) Reset() []float64 {
	e.pos = 0
	return e.obs()
}

func (e *chainEnv) obs() []float64 {
	v := make([]float64, 5)
	v[e.pos] = 1
	return v
}

func (e *chainEnv) Step(action int) ([]float64, float64, bool, error) {
	if action < 0 || action > 1 {
		return nil, 0, false, errors.New("bad action")
	}
	if action == 1 && e.pos < 4 {
		e.pos++
	} else if action == 0 && e.pos > 0 {
		e.pos--
	}
	if e.pos == 4 {
		return e.obs(), 10, true, nil
	}
	return e.obs(), -1, false, nil
}

func (e *chainEnv) ObservationSize() int { return 5 }
func (e *chainEnv) NumActions() int      { return 2 }

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = []int{16}
	cfg.LR = 0.05
	cfg.Gamma = 0.9
	cfg.BufferSize = 500
	cfg.BatchSize = 16
	return cfg
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Epsilon.Max != 0.95 {
		t.Errorf("epsilon = %g, want 0.95", cfg.Epsilon.Max)
	}
	if cfg.Epsilon.Decay != 0.05 {
		t.Errorf("decay = %g, want 0.05", cfg.Epsilon.Decay)
	}
	if cfg.Gamma != 0.618 {
		t.Errorf("gamma = %g, want 0.618", cfg.Gamma)
	}
	if cfg.LR != 0.7 {
		t.Errorf("alpha = %g, want 0.7", cfg.LR)
	}
	if cfg.BufferSize != 5000 {
		t.Errorf("buffer = %d, want 5000", cfg.BufferSize)
	}
	if cfg.QUpdateEvery != 5 {
		t.Errorf("q update = %d, want 5", cfg.QUpdateEvery)
	}
	if cfg.TargetUpdateEvery != 30 {
		t.Errorf("target update = %d, want 30", cfg.TargetUpdateEvery)
	}
}

func TestReplayBufferEviction(t *testing.T) {
	b, err := NewReplayBuffer(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// Oldest (0,1) were evicted: remaining actions are {2,3,4}.
	seen := make(map[int]bool)
	for _, tr := range b.data {
		seen[tr.Action] = true
	}
	for _, want := range []int{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("action %d missing after eviction: %v", want, seen)
		}
	}
}

func TestReplayBufferSample(t *testing.T) {
	b, err := NewReplayBuffer(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if got := b.Sample(rng, 4); got != nil {
		t.Fatal("sampling empty buffer should be nil")
	}
	for i := 0; i < 4; i++ {
		b.Add(Transition{Action: i})
	}
	got := b.Sample(rng, 8)
	if len(got) != 8 {
		t.Fatalf("sample size = %d", len(got))
	}
	for _, tr := range got {
		if tr.Action < 0 || tr.Action > 3 {
			t.Fatalf("sampled transition out of range: %d", tr.Action)
		}
	}
}

func TestNewReplayBufferValidation(t *testing.T) {
	if _, err := NewReplayBuffer(0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero capacity = %v", err)
	}
}

func TestEpsilonScheduleEq9(t *testing.T) {
	s := EpsilonSchedule{Max: 0.95, Min: 0.01, Decay: 0.05}
	if got := s.At(0); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("ε(0) = %g, want 0.95", got)
	}
	// Monotone non-increasing toward the floor.
	prev := s.At(0)
	for i := 1; i <= 300; i++ {
		cur := s.At(i)
		if cur > prev+1e-12 {
			t.Fatalf("ε increased at episode %d", i)
		}
		prev = cur
	}
	if math.Abs(s.At(10000)-0.01) > 1e-6 {
		t.Errorf("ε(∞) = %g, want ~0.01", s.At(10000))
	}
}

func TestEpsilonScheduleQuickBounds(t *testing.T) {
	s := EpsilonSchedule{Max: 1, Min: 0, Decay: 0.05}
	f := func(ep uint16) bool {
		v := s.At(int(ep))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewAgentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewAgent(rng, 0, 2, testConfig()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero obs = %v", err)
	}
	if _, err := NewAgent(rng, 4, 0, testConfig()); !errors.Is(err, ErrNoActions) {
		t.Errorf("zero actions = %v", err)
	}
	bad := testConfig()
	bad.Gamma = 2
	if _, err := NewAgent(rng, 4, 2, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad gamma = %v", err)
	}
	bad = testConfig()
	bad.LR = 0
	if _, err := NewAgent(rng, 4, 2, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad lr = %v", err)
	}
}

func TestSelectActionEpsilonExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	agent, err := NewAgent(rng, 5, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, 5)
	obs[0] = 1
	// ε=0 must be deterministic (pure exploitation).
	first, err := agent.SelectAction(obs, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, err := agent.SelectAction(obs, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a != first {
			t.Fatal("greedy action not deterministic")
		}
	}
	// ε=1 must explore: over many draws both actions appear.
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		a, err := agent.SelectAction(obs, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		seen[a] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("ε=1 did not explore both actions: %v", seen)
	}
}

func TestAgentLearnsChainWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	agent, err := NewAgent(rng, 5, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &chainEnv{}
	results, err := agent.Train(env, 150, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 150 {
		t.Fatalf("episodes = %d", len(results))
	}
	// A trained greedy agent should walk straight right: 4 steps, reward
	// 10-3 = 7.
	res, err := agent.RunEpisode(env, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4 || res.Reward != 7 {
		t.Fatalf("greedy episode: steps=%d reward=%g, want 4/7", res.Steps, res.Reward)
	}
	// Learning curve: late episodes beat early ones on average.
	early, late := 0.0, 0.0
	for i := 0; i < 20; i++ {
		early += results[i].Reward
		late += results[len(results)-1-i].Reward
	}
	if late <= early {
		t.Fatalf("no learning: early avg %g, late avg %g", early/20, late/20)
	}
}

func TestObserveUpdateCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	cfg.QUpdateEvery = 5
	cfg.BatchSize = 4
	agent, err := NewAgent(rng, 5, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, 5)
	var updates int
	for i := 1; i <= 20; i++ {
		loss, err := agent.Observe(Transition{State: obs, Action: 0, Reward: 1, Next: obs})
		if err != nil {
			t.Fatal(err)
		}
		if loss != 0 {
			updates++
			if i%cfg.QUpdateEvery != 0 {
				t.Fatalf("update at off-cadence step %d", i)
			}
		}
	}
	if updates == 0 {
		t.Fatal("no Q updates happened in 20 steps")
	}
	if agent.Steps() != 20 {
		t.Fatalf("Steps = %d", agent.Steps())
	}
}

func TestSyncTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	agent, err := NewAgent(rng, 3, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := []float64{1, 0, 0}
	// Drift the online net away from the target.
	for i := 0; i < 40; i++ {
		if _, err := agent.Observe(Transition{State: obs, Action: 1, Reward: 5, Next: obs, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.SyncTarget(); err != nil {
		t.Fatal(err)
	}
	qOut, err := agent.q.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := agent.target.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qOut {
		if qOut[i] != tOut[i] {
			t.Fatal("SyncTarget did not copy weights")
		}
	}
}

func TestDoubleDQNAndHuberTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig()
	cfg.DoubleDQN = true
	cfg.Loss = nn.LossHuber
	agent, err := NewAgent(rng, 5, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &chainEnv{}
	if _, err := agent.Train(env, 150, 30); err != nil {
		t.Fatal(err)
	}
	res, err := agent.RunEpisode(env, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reward < 5 {
		t.Fatalf("double-DQN/huber agent reward = %g, want ≥ 5", res.Reward)
	}
}
