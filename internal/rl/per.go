package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements proportional prioritized experience replay (PER,
// Schaul et al. 2016) as an optional extension to the paper's uniform
// replay buffer: transitions are sampled with probability proportional to
// (|TD error| + ε)^α, so rare, surprising experiences — e.g. the first
// profitable re-ordering an agent stumbles into — are replayed more often.
// Enable with Config.Prioritized.

// perEpsilon keeps every priority strictly positive so nothing starves.
const perEpsilon = 1e-3

// perAlpha is the prioritization exponent (0 = uniform, 1 = fully
// proportional).
const perAlpha = 0.6

// sumTree is a fixed-capacity binary indexed tree over priorities
// supporting O(log n) update and prefix-sum sampling.
type sumTree struct {
	capacity int
	nodes    []float64 // 1-indexed heap layout; leaves at [capacity, 2*capacity)
}

// newSumTree builds a tree over capacity leaves (rounded up to a power of
// two internally).
func newSumTree(capacity int) *sumTree {
	size := 1
	for size < capacity {
		size *= 2
	}
	return &sumTree{capacity: size, nodes: make([]float64, 2*size)}
}

// set writes the priority of leaf i and updates the path to the root.
func (t *sumTree) set(i int, p float64) {
	idx := t.capacity + i
	t.nodes[idx] = p
	for idx > 1 {
		idx /= 2
		t.nodes[idx] = t.nodes[2*idx] + t.nodes[2*idx+1]
	}
}

// total returns the sum of all priorities.
func (t *sumTree) total() float64 { return t.nodes[1] }

// sample returns the leaf index whose cumulative-priority interval contains
// mass ∈ [0, total).
func (t *sumTree) sample(mass float64) int {
	idx := 1
	for idx < t.capacity {
		left := t.nodes[2*idx]
		if mass < left {
			idx = 2 * idx
		} else {
			mass -= left
			idx = 2*idx + 1
		}
	}
	return idx - t.capacity
}

// PrioritizedReplay is a fixed-capacity prioritized transition store.
type PrioritizedReplay struct {
	data     []Transition
	tree     *sumTree
	next     int
	full     bool
	maxPrio  float64
	capacity int
}

// NewPrioritizedReplay creates a buffer holding up to capacity transitions.
func NewPrioritizedReplay(capacity int) (*PrioritizedReplay, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: buffer capacity %d", ErrBadConfig, capacity)
	}
	return &PrioritizedReplay{
		data:     make([]Transition, capacity),
		tree:     newSumTree(capacity),
		maxPrio:  1,
		capacity: capacity,
	}, nil
}

// Len returns the number of stored transitions.
func (b *PrioritizedReplay) Len() int {
	if b.full {
		return b.capacity
	}
	return b.next
}

// Cap returns the buffer capacity.
func (b *PrioritizedReplay) Cap() int { return b.capacity }

// Add stores a transition at the current maximum priority (so new
// experience is guaranteed at least one replay), evicting the oldest when
// full.
func (b *PrioritizedReplay) Add(t Transition) {
	b.data[b.next] = t
	b.tree.set(b.next, math.Pow(b.maxPrio+perEpsilon, perAlpha))
	b.next++
	if b.next == b.capacity {
		b.next = 0
		b.full = true
	}
}

// Sample draws n transitions proportionally to priority, returning the
// transitions and their buffer indices (for UpdatePriorities).
func (b *PrioritizedReplay) Sample(rng *rand.Rand, n int) ([]Transition, []int) {
	if b.Len() == 0 || n <= 0 {
		return nil, nil
	}
	out := make([]Transition, 0, n)
	idxs := make([]int, 0, n)
	for len(out) < n {
		mass := rng.Float64() * b.tree.total()
		i := b.tree.sample(mass)
		if i >= b.Len() { // rounding at the padded tail; resample
			continue
		}
		out = append(out, b.data[i])
		idxs = append(idxs, i)
	}
	return out, idxs
}

// UpdatePriorities sets the priorities of previously sampled indices to
// their new |TD error|.
func (b *PrioritizedReplay) UpdatePriorities(idxs []int, tdErrors []float64) error {
	if len(idxs) != len(tdErrors) {
		return fmt.Errorf("%w: %d indices, %d errors", ErrBadConfig, len(idxs), len(tdErrors))
	}
	for k, i := range idxs {
		if i < 0 || i >= b.capacity {
			return fmt.Errorf("%w: index %d", ErrBadConfig, i)
		}
		p := math.Abs(tdErrors[k])
		if p > b.maxPrio {
			b.maxPrio = p
		}
		b.tree.set(i, math.Pow(p+perEpsilon, perAlpha))
	}
	return nil
}
