// Package rl provides the model-free deep reinforcement learning machinery
// of the paper's GENTRANSEQ module (Section II-C, V-C): a generic MDP
// environment interface, the replay memory buffer, the ε-greedy exploration
// schedule of Eq. 9, and a DQN agent with a periodically-synced target
// network (Fig. 2).
//
// The package is deliberately independent of the transaction-re-ordering
// domain; internal/gentranseq supplies the environment.
package rl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"parole/internal/nn"
	"parole/internal/telemetry"
)

// Training-progress metrics (docs/METRICS.md §rl). Counters and gauges
// record deterministic quantities only (counts, losses, ε, occupancy) so a
// seeded run is bit-identical with telemetry on or off.
var (
	mEpisodes    = telemetry.Default().Counter("rl.episodes")
	mSteps       = telemetry.Default().Counter("rl.steps")
	mTrainSteps  = telemetry.Default().Counter("rl.train_steps")
	mTargetSyncs = telemetry.Default().Counter("rl.target_syncs")
	mReplayOcc   = telemetry.Default().Gauge("rl.replay.occupancy")
	mLastLoss    = telemetry.Default().Gauge("rl.loss.last")
	mLossHist    = telemetry.Default().Histogram("rl.loss", telemetry.LossBuckets)
	mEpsilon     = telemetry.Default().Gauge("rl.epsilon")
)

// Package errors.
var (
	ErrBadConfig = errors.New("rl: invalid configuration")
	ErrNoActions = errors.New("rl: environment has no actions")
)

// Environment is a Markov decision process the agent interacts with. One
// Reset-to-done interaction is an "episode" (Section V-C1).
type Environment interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action; it returns the next observation, the step
	// reward (Eq. 8), and whether the episode is over.
	Step(action int) (obs []float64, reward float64, done bool, err error)
	// ObservationSize is the length of observation vectors.
	ObservationSize() int
	// NumActions is the size of the discrete action space (C(N,2) swaps in
	// GENTRANSEQ).
	NumActions() int
}

// Transition is one (s, a, r, s') experience stored in replay memory.
type Transition struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
	Done   bool
}

// ReplayBuffer is the fixed-capacity experience store of Fig. 2 ("replay
// memory buffer", Table II size 5000). When full it overwrites the oldest
// entries.
type ReplayBuffer struct {
	data []Transition
	next int
	full bool
}

// NewReplayBuffer creates a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) (*ReplayBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: buffer capacity %d", ErrBadConfig, capacity)
	}
	return &ReplayBuffer{data: make([]Transition, 0, capacity)}, nil
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int {
	if b.full {
		return cap(b.data)
	}
	return len(b.data)
}

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return cap(b.data) }

// Add stores a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(t Transition) {
	if b.full {
		b.data[b.next] = t
		b.next = (b.next + 1) % cap(b.data)
		return
	}
	b.data = append(b.data, t)
	if len(b.data) == cap(b.data) {
		b.full = true
	}
}

// Sample draws n transitions uniformly with replacement.
func (b *ReplayBuffer) Sample(rng *rand.Rand, n int) []Transition {
	if b.Len() == 0 || n <= 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = b.data[rng.Intn(b.Len())]
	}
	return out
}

// EpsilonSchedule is the exploration decay of Eq. 9:
//
//	ε_i = ε_min + (ε_max − ε_min) · e^(−d·i)
//
// (The paper typesets the decay as a power; the standard exponential-decay
// reading is implemented, which matches the described behavior: start near
// ε_max, decay toward ε_min at rate d per episode.)
type EpsilonSchedule struct {
	Max   float64 // initial exploration (Table II: 0.95)
	Min   float64 // exploration floor
	Decay float64 // d (Table II: 0.05)
}

// At returns ε for episode i (0-based).
func (s EpsilonSchedule) At(episode int) float64 {
	return s.Min + (s.Max-s.Min)*math.Exp(-s.Decay*float64(episode))
}

// Config collects the DQN hyper-parameters. DefaultConfig reproduces
// Table II.
type Config struct {
	// Hidden layer widths of the Q-network.
	Hidden []int
	// Gamma is the discount factor γ.
	Gamma float64
	// LR is the learning rate α.
	LR float64
	// Momentum and ClipNorm are optimizer details (not in the paper's
	// table; momentum 0 and a clip of 10 keep Q-learning stable).
	Momentum float64
	ClipNorm float64
	// BufferSize is the replay memory capacity.
	BufferSize int
	// BatchSize of replay samples per Q-network update.
	BatchSize int
	// QUpdateEvery steps between Q-network updates.
	QUpdateEvery int
	// TargetUpdateEvery steps between target-network syncs.
	TargetUpdateEvery int
	// Epsilon is the exploration schedule.
	Epsilon EpsilonSchedule
	// Loss selects the TD regression loss (zero value = MSE; LossHuber is
	// the standard robust choice).
	Loss nn.Loss
	// DoubleDQN switches the Bellman target to the van-Hasselt estimator:
	// the online network picks argmax_a' while the target network values
	// it, reducing Q-value over-estimation.
	DoubleDQN bool
	// Prioritized replaces the uniform replay buffer with proportional
	// prioritized experience replay (see per.go).
	Prioritized bool
}

// DefaultConfig returns the Table II hyper-parameters.
func DefaultConfig() Config {
	return Config{
		Hidden:            []int{64, 64},
		Gamma:             0.618,
		LR:                0.7,
		ClipNorm:          10,
		BufferSize:        5000,
		BatchSize:         32,
		QUpdateEvery:      5,
		TargetUpdateEvery: 30,
		Epsilon:           EpsilonSchedule{Max: 0.95, Min: 0.01, Decay: 0.05},
	}
}

// validate checks the configuration.
func (c Config) validate() error {
	switch {
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("%w: gamma %g", ErrBadConfig, c.Gamma)
	case c.LR <= 0:
		return fmt.Errorf("%w: learning rate %g", ErrBadConfig, c.LR)
	case c.BufferSize <= 0:
		return fmt.Errorf("%w: buffer size %d", ErrBadConfig, c.BufferSize)
	case c.BatchSize <= 0:
		return fmt.Errorf("%w: batch size %d", ErrBadConfig, c.BatchSize)
	case c.QUpdateEvery <= 0 || c.TargetUpdateEvery <= 0:
		return fmt.Errorf("%w: update cadences %d/%d", ErrBadConfig, c.QUpdateEvery, c.TargetUpdateEvery)
	}
	return nil
}

// Agent is a DQN agent: a Q-network, a lagged target network, and replay
// memory, updated per the cadences of Table II.
type Agent struct {
	cfg     Config
	q       *nn.Network
	target  *nn.Network
	buffer  *ReplayBuffer
	pbuffer *PrioritizedReplay
	rng     *rand.Rand
	steps   int // global environment steps observed
}

// NewAgent builds an agent for an observation size and action count.
func NewAgent(rng *rand.Rand, obsSize, numActions int, cfg Config) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if numActions <= 0 {
		return nil, ErrNoActions
	}
	if obsSize <= 0 {
		return nil, fmt.Errorf("%w: observation size %d", ErrBadConfig, obsSize)
	}
	sizes := append([]int{obsSize}, cfg.Hidden...)
	sizes = append(sizes, numActions)
	q, err := nn.New(rng, sizes...)
	if err != nil {
		return nil, fmt.Errorf("build q-network: %w", err)
	}
	target := q.Clone()
	agent := &Agent{cfg: cfg, q: q, target: target, rng: rng}
	if cfg.Prioritized {
		agent.pbuffer, err = NewPrioritizedReplay(cfg.BufferSize)
	} else {
		agent.buffer, err = NewReplayBuffer(cfg.BufferSize)
	}
	if err != nil {
		return nil, err
	}
	return agent, nil
}

// Config returns the agent's hyper-parameters.
func (a *Agent) Config() Config { return a.cfg }

// QNetwork exposes the online network (e.g. for serialization).
func (a *Agent) QNetwork() *nn.Network { return a.q }

// Steps returns the number of transitions observed so far.
func (a *Agent) Steps() int { return a.steps }

// SelectAction is ε-greedy (Algorithm 1, lines 8–12): with probability ε a
// uniformly random action, otherwise argmax_a Q(s,a).
func (a *Agent) SelectAction(obs []float64, epsilon float64, numActions int) (int, error) {
	if numActions <= 0 {
		return 0, ErrNoActions
	}
	if a.rng.Float64() < epsilon {
		return a.rng.Intn(numActions), nil
	}
	return a.Greedy(obs, numActions)
}

// Greedy returns argmax_a Q(s,a) over the first numActions outputs.
func (a *Agent) Greedy(obs []float64, numActions int) (int, error) {
	qs, err := a.q.Forward(obs)
	if err != nil {
		return 0, fmt.Errorf("q forward: %w", err)
	}
	if numActions > len(qs) {
		numActions = len(qs)
	}
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < numActions; i++ {
		if qs[i] > bestV {
			best, bestV = i, qs[i]
		}
	}
	return best, nil
}

// Observe records a transition and performs the scheduled Q-network and
// target-network updates. It returns the TD loss of an update step when one
// ran (otherwise 0).
func (a *Agent) Observe(t Transition) (float64, error) {
	if a.pbuffer != nil {
		a.pbuffer.Add(t)
	} else {
		a.buffer.Add(t)
	}
	a.steps++
	mSteps.Inc()
	mReplayOcc.Set(float64(a.bufferLen()))
	var loss float64
	if a.steps%a.cfg.QUpdateEvery == 0 && a.bufferLen() >= a.cfg.BatchSize {
		var err error
		loss, err = a.trainStep()
		if err != nil {
			return 0, err
		}
		mTrainSteps.Inc()
		mLastLoss.Set(loss)
		mLossHist.Observe(loss)
	}
	if a.steps%a.cfg.TargetUpdateEvery == 0 {
		if err := a.target.CopyFrom(a.q); err != nil {
			return 0, fmt.Errorf("sync target: %w", err)
		}
		mTargetSyncs.Inc()
	}
	return loss, nil
}

// SyncTarget forces a target-network copy — Algorithm 1's "TargetNet.copy
// (QNet) if Profit" path, which GENTRANSEQ invokes when a profitable order
// is first found.
func (a *Agent) SyncTarget() error {
	if err := a.target.CopyFrom(a.q); err != nil {
		return err
	}
	mTargetSyncs.Inc()
	return nil
}

// bufferLen reports the active replay store's size.
func (a *Agent) bufferLen() int {
	if a.pbuffer != nil {
		return a.pbuffer.Len()
	}
	return a.buffer.Len()
}

// trainStep samples a replay batch and regresses Q(s,a) to the Bellman
// target: r + γ·max_a' Q_target(s', a') classically, or the Double-DQN
// estimator r + γ·Q_target(s', argmax_a' Q(s', a')) when configured. With
// prioritized replay the sampled transitions' priorities are refreshed to
// their post-update TD errors.
func (a *Agent) trainStep() (float64, error) {
	var (
		batch []Transition
		idxs  []int
	)
	if a.pbuffer != nil {
		batch, idxs = a.pbuffer.Sample(a.rng, a.cfg.BatchSize)
	} else {
		batch = a.buffer.Sample(a.rng, a.cfg.BatchSize)
	}
	samples := make([]nn.QSample, 0, len(batch))
	for _, t := range batch {
		target := t.Reward
		if !t.Done {
			future, err := a.futureValue(t.Next)
			if err != nil {
				return 0, err
			}
			target += a.cfg.Gamma * future
		}
		samples = append(samples, nn.QSample{Input: t.State, Action: t.Action, Target: target})
	}
	loss, err := a.q.TrainQBatchLoss(samples,
		nn.SGD{LR: a.cfg.LR, Momentum: a.cfg.Momentum, ClipNorm: a.cfg.ClipNorm}, a.cfg.Loss)
	if err != nil {
		return 0, fmt.Errorf("q update: %w", err)
	}
	if a.pbuffer != nil {
		tds := make([]float64, len(samples))
		for i, s := range samples {
			qs, err := a.q.Forward(s.Input)
			if err != nil {
				return 0, fmt.Errorf("per refresh: %w", err)
			}
			tds[i] = qs[s.Action] - s.Target
		}
		if err := a.pbuffer.UpdatePriorities(idxs, tds); err != nil {
			return 0, fmt.Errorf("per priorities: %w", err)
		}
	}
	return loss, nil
}

// futureValue estimates max-a' value of the next state per the configured
// Bellman backup.
func (a *Agent) futureValue(next []float64) (float64, error) {
	tq, err := a.target.Forward(next)
	if err != nil {
		return 0, fmt.Errorf("target forward: %w", err)
	}
	if !a.cfg.DoubleDQN {
		best := math.Inf(-1)
		for _, v := range tq {
			if v > best {
				best = v
			}
		}
		return best, nil
	}
	oq, err := a.q.Forward(next)
	if err != nil {
		return 0, fmt.Errorf("online forward: %w", err)
	}
	argmax, bestV := 0, math.Inf(-1)
	for i, v := range oq {
		if v > bestV {
			argmax, bestV = i, v
		}
	}
	return tq[argmax], nil
}

// EpisodeResult summarizes one training episode.
type EpisodeResult struct {
	// Reward is the accumulated episode reward R^i (Eq. 7).
	Reward float64
	// Steps actually taken.
	Steps int
	// Epsilon used for the episode.
	Epsilon float64
}

// RunEpisode interacts with env for up to maxSteps using the given ε
// (Algorithm 1's inner loop).
func (a *Agent) RunEpisode(env Environment, epsilon float64, maxSteps int) (EpisodeResult, error) {
	res := EpisodeResult{Epsilon: epsilon}
	mEpisodes.Inc()
	mEpsilon.Set(epsilon)
	obs := env.Reset()
	for sp := 0; sp < maxSteps; sp++ {
		action, err := a.SelectAction(obs, epsilon, env.NumActions())
		if err != nil {
			return res, err
		}
		next, reward, done, err := env.Step(action)
		if err != nil {
			return res, fmt.Errorf("env step: %w", err)
		}
		if _, err := a.Observe(Transition{
			State:  obs,
			Action: action,
			Reward: reward,
			Next:   next,
			Done:   done,
		}); err != nil {
			return res, err
		}
		res.Reward += reward
		res.Steps++
		obs = next
		if done {
			break
		}
	}
	return res, nil
}

// Train runs the full episode loop of Algorithm 1, decaying ε per Eq. 9,
// and returns the per-episode results (the Fig. 8 series before smoothing).
func (a *Agent) Train(env Environment, episodes, maxSteps int) ([]EpisodeResult, error) {
	results := make([]EpisodeResult, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		res, err := a.RunEpisode(env, a.cfg.Epsilon.At(ep), maxSteps)
		if err != nil {
			return results, fmt.Errorf("episode %d: %w", ep, err)
		}
		results = append(results, res)
	}
	return results, nil
}
