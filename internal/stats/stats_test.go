package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMovingAverage(t *testing.T) {
	got, err := MovingAverage([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	xs := []float64{3, -1, 7}
	got, err := MovingAverage(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatal("window 1 should be identity")
		}
	}
}

func TestMovingAverageErrors(t *testing.T) {
	if _, err := MovingAverage([]float64{1}, 0); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("window 0 = %v", err)
	}
	if out, err := MovingAverage(nil, 3); err != nil || out != nil {
		t.Fatalf("empty input = (%v, %v)", out, err)
	}
}

func TestMovingAverageConstantIsConstant(t *testing.T) {
	f := func(v int8, nRaw, wRaw uint8) bool {
		n := int(nRaw)%50 + 1
		w := int(wRaw)%9 + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(v)
		}
		out, err := MovingAverage(xs, w)
		if err != nil {
			return false
		}
		for _, o := range out {
			if !almostEqual(o, float64(v), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Fatalf("Mean = %g, want 5", m)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", sd)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatal("empty Mean should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 3},
		{100, 5},
		{25, 2},
		{75, 4},
		{10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmptyInput) {
		t.Error("empty percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should error")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.NormFloat64()*2 + 5
	}
	k, err := NewKDE(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal integration over a wide support.
	const lo, hi = -15.0, 25.0
	const n = 4000
	step := (hi - lo) / n
	var integral float64
	for i := 0; i <= n; i++ {
		w := step
		if i == 0 || i == n {
			w = step / 2
		}
		integral += k.Density(lo+float64(i)*step) * w
	}
	if !almostEqual(integral, 1, 0.01) {
		t.Fatalf("KDE integral = %g, want ~1", integral)
	}
}

func TestKDEModeNearSampleCenter(t *testing.T) {
	// Samples concentrated at 5 (the Fig. 9 headline: mode ≈ 5 swaps).
	samples := []float64{4, 5, 5, 5, 5, 6, 6, 4, 5, 7, 3, 5}
	k, err := NewKDE(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := k.Mode(0, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mode, 5, 0.6) {
		t.Fatalf("mode = %g, want ~5", mode)
	}
}

func TestKDEExplicitBandwidth(t *testing.T) {
	k, err := NewKDE([]float64{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() != 2 {
		t.Fatalf("bandwidth = %g", k.Bandwidth())
	}
	// Density of a single sample with h=2 at x=0 is N(0;0,2)=1/(2√(2π)).
	want := 1 / (2 * math.Sqrt(2*math.Pi))
	if !almostEqual(k.Density(0), want, 1e-12) {
		t.Fatalf("Density(0) = %g, want %g", k.Density(0), want)
	}
}

func TestKDEDegenerateSamples(t *testing.T) {
	// All-equal samples: Silverman bandwidth would be 0; the floor applies.
	k, err := NewKDE([]float64{3, 3, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Fatal("bandwidth must stay positive")
	}
	if k.Density(3) <= 0 {
		t.Fatal("density at the atom must be positive")
	}
}

func TestKDEErrors(t *testing.T) {
	if _, err := NewKDE(nil, 0); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty KDE = %v", err)
	}
	k, err := NewKDE([]float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := k.Curve(0, 1, 1); err == nil {
		t.Error("curve with 1 point should error")
	}
	if _, _, err := k.Curve(2, 1, 10); err == nil {
		t.Error("inverted range should error")
	}
}

func TestCurveShape(t *testing.T) {
	k, err := NewKDE([]float64{0, 0, 0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys, err := k.Curve(-2, 2, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 41 || len(ys) != 41 {
		t.Fatalf("curve lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != -2 || xs[40] != 2 {
		t.Fatalf("curve endpoints %g..%g", xs[0], xs[40])
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0.1, 0.2, 0.9, 1.5, -3, 99}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// [-3, 0.1, 0.2] clamp/fall into bin 0; [0.9, 1.5, 99] into bin 1.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := Histogram(nil, 1, 0, 3); err == nil {
		t.Error("inverted range should error")
	}
}
