// Package stats provides the statistical utilities the evaluation section
// leans on: the moving average that smooths Fig. 8's reward curves (window
// 9), the Gaussian kernel density estimates of Fig. 9's solution-size
// distributions, and basic summaries.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Package errors.
var (
	ErrEmptyInput = errors.New("stats: empty input")
	ErrBadWindow  = errors.New("stats: invalid window")
)

// MovingAverage returns the trailing moving average of xs with the given
// window: out[i] = mean(xs[max(0,i-w+1) .. i]). The first w-1 points average
// over the shorter available prefix, matching how reward curves are usually
// plotted from episode 0.
func MovingAverage(xs []float64, window int) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadWindow, window)
	}
	if len(xs) == 0 {
		return nil, nil
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
			continue
		}
		out[i] = sum / float64(i+1)
	}
	return out, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// KDE is a one-dimensional Gaussian kernel density estimate.
type KDE struct {
	samples   []float64
	bandwidth float64
}

// NewKDE fits a KDE to samples. If bandwidth ≤ 0 it is chosen by Silverman's
// rule of thumb: h = 1.06·σ·n^(−1/5) (with a small floor so degenerate
// samples still yield a density).
func NewKDE(samples []float64, bandwidth float64) (*KDE, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyInput
	}
	if bandwidth <= 0 {
		sigma, err := StdDev(samples)
		if err != nil {
			return nil, err
		}
		bandwidth = 1.06 * sigma * math.Pow(float64(len(samples)), -0.2)
		if bandwidth < 1e-3 {
			bandwidth = 1e-3
		}
	}
	return &KDE{
		samples:   append([]float64(nil), samples...),
		bandwidth: bandwidth,
	}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density evaluates the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, s := range k.samples {
		z := (x - s) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*z*z)
	}
	return sum / (float64(len(k.samples)) * k.bandwidth)
}

// Curve evaluates the density on n evenly spaced points across [lo, hi] and
// returns the (x, density) series — one Fig. 9 curve.
func (k *KDE) Curve(lo, hi float64, n int) (xs, ys []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("stats: curve needs ≥ 2 points, got %d", n)
	}
	if hi <= lo {
		return nil, nil, fmt.Errorf("stats: bad range [%g, %g]", lo, hi)
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Density(xs[i])
	}
	return xs, ys, nil
}

// Mode returns the x in [lo, hi] (scanned at n points) where the density
// peaks — e.g. "solutions with approximately five actions have the highest
// probability" (Section VII-D).
func (k *KDE) Mode(lo, hi float64, n int) (float64, error) {
	xs, ys, err := k.Curve(lo, hi, n)
	if err != nil {
		return 0, err
	}
	best := 0
	for i, y := range ys {
		if y > ys[best] {
			best = i
		}
	}
	return xs[best], nil
}

// Histogram counts xs into nbins equal-width bins across [lo, hi]; values
// outside the range clamp into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: %d bins", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: bad range [%g, %g]", lo, hi)
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, nil
}
