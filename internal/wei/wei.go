// Package wei provides fixed-point monetary arithmetic for the PAROLE
// simulator.
//
// All balances, prices, and fees in the repository are represented as an
// Amount: a signed 64-bit count of gwei (1 ETH = 1e9 gwei). Integer
// arithmetic keeps every component of the system — the optimistic VM, the
// GENTRANSEQ reward function, and the experiment harness — exactly
// reproducible across runs and platforms, which floating point would not.
//
// The paper reports case-study balances in ETH (Fig. 5) but labels the
// profit axis of Fig. 7 in "Satoshis". To regenerate that figure with the
// same units we adopt the Bitcoin convention 1 coin = 1e8 sats and expose
// Sats as a pure display conversion; accounting never happens in sats.
package wei

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Amount is a monetary quantity in gwei (1e-9 ETH). The zero value is zero
// ETH and ready to use. Amounts may be negative: deltas and profits are
// Amounts too.
type Amount int64

// Common denominations.
const (
	Gwei Amount = 1
	// ETH is one ether expressed in gwei.
	ETH Amount = 1_000_000_000
)

// Errors returned by Parse.
var (
	ErrSyntax   = errors.New("wei: invalid amount syntax")
	ErrOverflow = errors.New("wei: amount overflows int64 gwei")
)

// FromETH converts a whole number of ether to an Amount.
func FromETH(eth int64) Amount { return Amount(eth) * ETH }

// FromFloat converts a float ETH quantity to an Amount, rounding to the
// nearest gwei. It is intended for test fixtures and display-level code, not
// for accounting paths.
func FromFloat(eth float64) Amount {
	return Amount(math.Round(eth * float64(ETH)))
}

// ETHFloat returns the amount as a float64 number of ether. Display only.
func (a Amount) ETHFloat() float64 { return float64(a) / float64(ETH) }

// Sats returns the amount using the satoshi display convention of the
// paper's Fig. 7 (1 ETH = 1e8 sats), i.e. gwei/10.
func (a Amount) Sats() int64 { return int64(a) / 10 }

// Mul returns a*k.
func (a Amount) Mul(k int64) Amount { return a * Amount(k) }

// Div returns a/k, truncating toward zero. k must be non-zero.
func (a Amount) Div(k int64) Amount { return a / Amount(k) }

// MulDiv returns a*num/den computed without intermediate overflow for the
// magnitudes used in the simulator (|a| < 2^53, num/den < 2^31). It truncates
// toward zero, matching Eq. 10's integer price points. den must be non-zero.
func MulDiv(a Amount, num, den int64) Amount {
	// Split a into high and low parts so the product stays in range even
	// when a*num would overflow int64.
	const half = int64(1) << 32
	hi, lo := int64(a)/half, int64(a)%half
	return Amount((hi*num/den)*half + (hi*num%den*half+lo*num)/den)
}

// IsNegative reports whether the amount is below zero.
func (a Amount) IsNegative() bool { return a < 0 }

// Abs returns the absolute value of a.
func (a Amount) Abs() Amount {
	if a < 0 {
		return -a
	}
	return a
}

// String renders the amount as a decimal ETH string with trailing zeros
// trimmed, e.g. "0.4", "2.82", "-1", "0.666666666".
func (a Amount) String() string {
	neg := a < 0
	v := int64(a)
	if neg {
		v = -v
	}
	whole, frac := v/int64(ETH), v%int64(ETH)
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteString(strconv.FormatInt(whole, 10))
	if frac != 0 {
		s := fmt.Sprintf("%09d", frac)
		s = strings.TrimRight(s, "0")
		b.WriteByte('.')
		b.WriteString(s)
	}
	return b.String()
}

// Parse parses a decimal ETH string ("1.5", "-0.4", "2") into an Amount.
// At most nine fractional digits are allowed (gwei resolution).
func Parse(s string) (Amount, error) {
	if s == "" {
		return 0, ErrSyntax
	}
	neg := false
	switch s[0] {
	case '-':
		neg, s = true, s[1:]
	case '+':
		s = s[1:]
	}
	if s == "" || s == "." {
		return 0, ErrSyntax
	}
	wholeStr, fracStr := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		wholeStr, fracStr = s[:i], s[i+1:]
	}
	if len(fracStr) > 9 {
		return 0, fmt.Errorf("%w: more than 9 fractional digits in %q", ErrSyntax, s)
	}
	var whole int64
	if wholeStr != "" {
		var err error
		whole, err = strconv.ParseInt(wholeStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrSyntax, s)
		}
	}
	var frac int64
	if fracStr != "" {
		var err error
		frac, err = strconv.ParseInt(fracStr+strings.Repeat("0", 9-len(fracStr)), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrSyntax, s)
		}
	}
	const maxWhole = math.MaxInt64 / int64(ETH)
	if whole > maxWhole || (whole == maxWhole && frac > math.MaxInt64%int64(ETH)) {
		return 0, ErrOverflow
	}
	v := Amount(whole)*ETH + Amount(frac)
	if neg {
		v = -v
	}
	return v, nil
}

// MustParse is Parse for constant fixtures; it panics on malformed input and
// must only be used with literal strings.
func MustParse(s string) Amount {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}
