package wei

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromETH(t *testing.T) {
	tests := []struct {
		give int64
		want Amount
	}{
		{0, 0},
		{1, 1_000_000_000},
		{-3, -3_000_000_000},
		{1000, 1_000_000_000_000},
	}
	for _, tt := range tests {
		if got := FromETH(tt.give); got != tt.want {
			t.Errorf("FromETH(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestFromFloatRounds(t *testing.T) {
	tests := []struct {
		give float64
		want Amount
	}{
		{0.4, 400_000_000},
		{1.5, 1_500_000_000},
		{0.6666666666, 666_666_667}, // rounds to nearest gwei
		{-0.25, -250_000_000},
	}
	for _, tt := range tests {
		if got := FromFloat(tt.give); got != tt.want {
			t.Errorf("FromFloat(%v) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		give Amount
		want string
	}{
		{0, "0"},
		{ETH, "1"},
		{4 * ETH / 10, "0.4"},
		{FromFloat(2.82), "2.82"},
		{-ETH / 2, "-0.5"},
		{666_666_666, "0.666666666"},
		{1, "0.000000001"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Amount(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		give    string
		want    Amount
		wantErr bool
	}{
		{give: "0", want: 0},
		{give: "1.5", want: FromFloat(1.5)},
		{give: "-0.4", want: -400_000_000},
		{give: "+2", want: 2 * ETH},
		{give: ".5", want: ETH / 2},
		{give: "2.", want: 2 * ETH},
		{give: "0.000000001", want: 1},
		{give: "", wantErr: true},
		{give: ".", wantErr: true},
		{give: "-", wantErr: true},
		{give: "1.0000000001", wantErr: true}, // 10 fractional digits
		{give: "abc", wantErr: true},
		{give: "1..2", wantErr: true},
		{give: "99999999999999999999", wantErr: true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) = %d, want error", tt.give, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q) unexpected error: %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestParseOverflowBoundary(t *testing.T) {
	// Largest representable amount: MaxInt64 gwei.
	maxStr := "9223372036.854775807"
	got, err := Parse(maxStr)
	if err != nil {
		t.Fatalf("Parse(%q) unexpected error: %v", maxStr, err)
	}
	if got != math.MaxInt64 {
		t.Fatalf("Parse(%q) = %d, want MaxInt64", maxStr, int64(got))
	}
	if _, err := Parse("9223372036.854775808"); err == nil {
		t.Fatal("Parse of MaxInt64+1 gwei should fail")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		a := Amount(v)
		back, err := Parse(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDiv(t *testing.T) {
	tests := []struct {
		a        Amount
		num, den int64
		want     Amount
	}{
		{FromFloat(0.2), 10, 5, FromFloat(0.4)}, // Eq.10 initial case study price
		{FromFloat(0.2), 10, 4, FromFloat(0.5)}, // after one mint
		{FromFloat(0.2), 10, 3, 666_666_666},    // 0.66 ETH, truncated
		{FromFloat(0.2), 10, 6, 333_333_333},    // 0.33 ETH after burn
		{ETH, 1, 1, ETH},
		{0, 7, 3, 0},
		{-FromFloat(0.2), 10, 4, -FromFloat(0.5)},
	}
	for _, tt := range tests {
		if got := MulDiv(tt.a, tt.num, tt.den); got != tt.want {
			t.Errorf("MulDiv(%d, %d, %d) = %d, want %d", int64(tt.a), tt.num, tt.den, int64(got), int64(tt.want))
		}
	}
}

func TestMulDivLargeNoOverflow(t *testing.T) {
	// 9e6 ETH * 3000/7 would overflow a naive int64 multiply
	// (9e15 gwei * 3000 > 2^63), but must not overflow MulDiv.
	a := FromETH(9_000_000)
	got := MulDiv(a, 3000, 7)
	// 9e15 gwei * 3000 / 7 = 27e18/7 = 3857142857142857142.857…,
	// truncated toward zero.
	const want = Amount(3_857_142_857_142_857_142)
	if got != want {
		t.Fatalf("MulDiv large = %d, want %d", int64(got), int64(want))
	}
}

func TestMulDivMatchesDirectForSmallValues(t *testing.T) {
	f := func(a int32, num uint8, den uint8) bool {
		d := int64(den)%100 + 1
		n := int64(num) % 100
		amt := Amount(a)
		return MulDiv(amt, n, d) == Amount(int64(amt)*n/d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSats(t *testing.T) {
	if got := ETH.Sats(); got != 100_000_000 {
		t.Errorf("1 ETH = %d sats, want 1e8", got)
	}
	if got := FromFloat(0.5).Sats(); got != 50_000_000 {
		t.Errorf("0.5 ETH = %d sats, want 5e7", got)
	}
}

func TestAbsAndIsNegative(t *testing.T) {
	if !Amount(-1).IsNegative() || Amount(1).IsNegative() || Amount(0).IsNegative() {
		t.Error("IsNegative misclassifies")
	}
	if Amount(-5).Abs() != 5 || Amount(5).Abs() != 5 || Amount(0).Abs() != 0 {
		t.Error("Abs wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of garbage did not panic")
		}
	}()
	MustParse("not-a-number")
}
