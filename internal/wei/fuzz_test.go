package wei

import "testing"

// FuzzParse: parsing arbitrary strings must never panic, and every accepted
// input must round-trip through String back to the same Amount.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"0", "1.5", "-0.4", "+2", ".5", "2.", "abc",
		"9223372036.854775807", "1..2", "0.000000001", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(a.String())
		if err != nil {
			t.Fatalf("String() of parsed %q does not re-parse: %v", s, err)
		}
		if back != a {
			t.Fatalf("round trip %q: %d != %d", s, int64(back), int64(a))
		}
	})
}
