package solver_test

import (
	"math/rand"
	"testing"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/solver"
)

func newObjective(t testing.TB) *solver.Objective {
	t.Helper()
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := solver.NewObjective(ovm.New(), s.State, s.Original, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// optimalGain is the exhaustive optimum of the case-study batch, at least
// the paper's case-3 improvement.
var paperCase3Gain = casestudy.FinalCase3 - casestudy.FinalCase1

func TestObjectiveScoresPaperOrders(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := solver.NewObjective(ovm.New(), s.State, s.Original, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if obj.N() != 8 {
		t.Fatalf("N = %d", obj.N())
	}
	imp, valid, err := obj.Score(s.Case3)
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Fatal("case-3 order scored invalid")
	}
	if imp != paperCase3Gain {
		t.Fatalf("case-3 improvement = %s, want %s", imp, paperCase3Gain)
	}
	if obj.Evals() != 1 {
		t.Fatalf("evals = %d, want 1", obj.Evals())
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("8! evaluations")
	}
	obj := newObjective(t)
	sol, err := solver.Exhaustive{}.Solve(nil, obj, solver.Budget{MaxEvaluations: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Complete {
		t.Fatal("exhaustive did not finish 8! = 40320 candidates")
	}
	if sol.Improvement < paperCase3Gain {
		t.Fatalf("exhaustive optimum %s below the paper's case-3 gain %s", sol.Improvement, paperCase3Gain)
	}
	t.Logf("exhaustive optimum improvement: %s (evals %d)", sol.Improvement, sol.Evaluations)
}

func TestExhaustiveRespectsBudget(t *testing.T) {
	obj := newObjective(t)
	sol, err := solver.Exhaustive{}.Solve(nil, obj, solver.Budget{MaxEvaluations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Complete {
		t.Fatal("budget of 100 cannot complete 40320 candidates")
	}
	if sol.Evaluations > 100 {
		t.Fatalf("evaluations = %d exceeded budget", sol.Evaluations)
	}
}

func TestBranchBoundBeatsPaperCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("tree search")
	}
	obj := newObjective(t)
	sol, err := solver.BranchBound{}.Solve(nil, obj, solver.Budget{MaxEvaluations: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Improvement < paperCase3Gain {
		t.Fatalf("branch-and-bound %s below case-3 gain %s", sol.Improvement, paperCase3Gain)
	}
}

func TestHillClimbFindsProfit(t *testing.T) {
	obj := newObjective(t)
	rng := rand.New(rand.NewSource(11))
	sol, err := solver.HillClimb{}.Solve(rng, obj, solver.Budget{MaxEvaluations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Improvement <= 0 {
		t.Fatal("hill climb found no profit on the case-study batch")
	}
	// The result must be a valid permutation that truly scores as claimed.
	check, valid, err := obj.Score(sol.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if !valid || check != sol.Improvement {
		t.Fatalf("reported %s but rescoring gives (%s, valid=%v)", sol.Improvement, check, valid)
	}
}

func TestAnnealFindsProfit(t *testing.T) {
	obj := newObjective(t)
	rng := rand.New(rand.NewSource(12))
	sol, err := solver.Anneal{}.Solve(rng, obj, solver.Budget{MaxEvaluations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Improvement <= 0 {
		t.Fatal("annealing found no profit on the case-study batch")
	}
}

func TestSolversNeverReturnInvalidOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	solvers := []solver.Solver{
		solver.HillClimb{},
		solver.Anneal{},
	}
	for _, s := range solvers {
		obj := newObjective(t)
		sol, err := s.Solve(rng, obj, solver.Budget{MaxEvaluations: 1500})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		_, valid, err := obj.Score(sol.Seq)
		if err != nil {
			t.Fatal(err)
		}
		if !valid {
			t.Fatalf("%s returned an invalid order", s.Name())
		}
	}
}

func TestMeasureFillsInstrumentation(t *testing.T) {
	obj := newObjective(t)
	rng := rand.New(rand.NewSource(9))
	sol, err := solver.Measure(solver.HillClimb{}, rng, obj, solver.Budget{MaxEvaluations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Duration <= 0 {
		t.Fatal("duration not measured")
	}
	if sol.AllocBytes == 0 {
		t.Fatal("allocation volume not measured")
	}
	if sol.Evaluations == 0 || sol.Evaluations > 500 {
		t.Fatalf("evaluations = %d", sol.Evaluations)
	}
}

func TestSolverNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []solver.Solver{
		solver.Exhaustive{}, solver.BranchBound{}, solver.HillClimb{}, solver.Anneal{},
	} {
		if s.Name() == "" {
			t.Fatal("empty solver name")
		}
		if names[s.Name()] {
			t.Fatalf("duplicate name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

func TestObjectiveBaseline(t *testing.T) {
	obj := newObjective(t)
	if got := obj.BaselineWealth(); got != casestudy.FinalCase1 {
		t.Fatalf("baseline = %s, want %s", got, casestudy.FinalCase1)
	}
	imp, valid, err := obj.Score(obj.Original())
	if err != nil {
		t.Fatal(err)
	}
	if imp != 0 || !valid {
		t.Fatalf("identity score = (%s, %v)", imp, valid)
	}
}
