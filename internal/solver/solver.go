// Package solver implements the non-linear-programming baselines that the
// paper compares DQN inference against in Fig. 11.
//
// The paper used the commercial/proprietary solvers APOPT, MINOS, and SNOPT
// through GEKKO/AMPL-style interfaces; none are available (or meaningful) in
// a pure-Go reproduction. Per the substitution policy (DESIGN.md §4), this
// package provides classical combinatorial optimizers with the same cost
// profile over the *identical* objective — maximize the IFUs' final wealth
// over permutations of the batch, subject to the Section V-B validity
// constraint:
//
//   - BranchBound (APOPT analog): exact tree search with an optimistic
//     pruning bound — active-set style exhaustive behavior, exponential
//     worst case.
//   - HillClimb (MINOS analog): steepest-ascent local search with random
//     restarts — reduced-gradient style local improvement.
//   - Anneal (SNOPT analog): simulated annealing — sequential stochastic
//     improvement with a cooling schedule.
//   - Exhaustive: ground truth for small N (tests and calibration).
//
// Fig. 11 compares growth *shapes* (execution time and memory versus
// mempool size), which these substitutes preserve: every baseline explores a
// combinatorial neighborhood whose cost explodes with N, while DQN inference
// stays one forward pass per step.
package solver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Search-effort metrics (docs/METRICS.md §solver). Deterministic counts
// only; wall-clock sampling stays in Measure, the reporting layer.
var (
	mEvals          = telemetry.Default().Counter("solver.evals")
	mBnbPrunes      = telemetry.Default().Counter("solver.bnb.prunes")
	mHillRestarts   = telemetry.Default().Counter("solver.hillclimb.restarts")
	mHillMoves      = telemetry.Default().Counter("solver.hillclimb.moves")
	mAnnealAccepted = telemetry.Default().Counter("solver.anneal.accepted")
	mAnnealRejected = telemetry.Default().Counter("solver.anneal.rejected")
)

// Package errors.
var (
	ErrBudgetExhausted = errors.New("solver: evaluation budget exhausted")
	ErrBadBudget       = errors.New("solver: invalid budget")
)

// Objective scores candidate orders: the summed IFU final wealth versus the
// original order, with validity per Section V-B. It counts evaluations so
// harnesses can report search effort.
//
// Scoring runs on a journaled ovm.Evaluator (built lazily on first Score):
// the candidate is applied to a scratch state with prefix replay instead of
// cloning the world per evaluation, which is the dominant term of the
// Fig. 11 hot path. The differential test in internal/ovm pins the scratch
// path to the clone path byte for byte, so scores — and therefore every
// seeded solver trajectory — are unchanged.
//
// An Objective is not safe for concurrent use (it owns one Evaluator and
// scratch buffers); parallel solvers give each worker its own Fork. The
// evaluation counter is atomic so a parent can aggregate fork counts and
// read Evals while workers run.
type Objective struct {
	vm       *ovm.VM
	base     *state.State
	original tx.Seq
	ifus     []chainid.Address

	baseWealth wei.Amount
	origExec   map[chainid.Hash]bool
	evals      atomic.Int64

	ev *ovm.Evaluator // lazy; one scratch amortized over all Scores

	// Validity bitmask machinery, in the Evaluator's interned-id space: when
	// the Evaluator is lazily created, the original batch is interned in
	// order (so every Fork assigns identical ids) and reqMask gets one bit
	// per originally-executed distinct transaction. Per evaluation, validity
	// is "executed bits cover reqMask", read straight off the Evaluator's
	// applied ids — no hashing and no map probes in the hot loop. A candidate
	// transaction outside the original batch interns to an id past reqMask's
	// range; it cannot be required, so the bounds check skipping it is exact.
	reqMask   []uint64
	exeMask   []uint64     // reused per-eval executed-bits buffer
	wealthBuf []wei.Amount // reused watched-wealth buffer
}

// NewObjective prepares the objective for one batch.
func NewObjective(vm *ovm.VM, base *state.State, original tx.Seq, ifus []chainid.Address) (*Objective, error) {
	if len(ifus) == 0 {
		return nil, errors.New("solver: no IFU given")
	}
	if len(original) == 0 {
		return nil, errors.New("solver: empty sequence")
	}
	_, exec, wealth, err := vm.Evaluate(base, original, ifus...)
	if err != nil {
		return nil, fmt.Errorf("evaluate original: %w", err)
	}
	var total wei.Amount
	for _, w := range wealth {
		total += w
	}
	return &Objective{
		vm:         vm,
		base:       base,
		original:   original.Clone(),
		ifus:       append([]chainid.Address(nil), ifus...),
		baseWealth: total,
		origExec:   exec,
	}, nil
}

// Fork returns a worker-local scorer over the same batch: shared immutable
// problem data (base state, original order, baseline), private Evaluator,
// buffers, and evaluation counter. Parallel portfolio solvers hand one Fork
// to each worker; the parent aggregates fork counts with addEvals.
func (o *Objective) Fork() *Objective {
	return &Objective{
		vm:         o.vm,
		base:       o.base,
		original:   o.original,
		ifus:       o.ifus,
		baseWealth: o.baseWealth,
		origExec:   o.origExec,
	}
}

// Original returns the batch in its collected order.
func (o *Objective) Original() tx.Seq { return o.original.Clone() }

// N returns the batch size.
func (o *Objective) N() int { return len(o.original) }

// Evals returns how many candidate evaluations have been scored.
func (o *Objective) Evals() int { return int(o.evals.Load()) }

// addEvals folds a fork's evaluation count back into this objective.
func (o *Objective) addEvals(n int64) { o.evals.Add(n) }

// BaselineWealth returns Σ_IFU wealth under the original order.
func (o *Objective) BaselineWealth() wei.Amount { return o.baseWealth }

// Score evaluates a candidate order, returning the wealth improvement over
// the original and whether the order is valid (keeps every originally-
// executable transaction executable).
func (o *Objective) Score(candidate tx.Seq) (wei.Amount, bool, error) {
	o.evals.Add(1)
	mEvals.Inc()
	if o.ev == nil {
		ev, err := o.vm.NewEvaluator(o.base)
		if err != nil {
			return 0, false, err
		}
		o.ev = ev
		// Intern the original batch in collected order: ids come out dense
		// and identical across Forks, and reqMask lands in id space.
		distinct := 0
		for _, t := range o.original {
			if id := int(ev.InternID(t)); id >= distinct {
				distinct = id + 1
			}
		}
		o.reqMask = make([]uint64, (distinct+63)/64)
		for _, t := range o.original {
			if o.origExec[t.Hash()] {
				id := ev.InternID(t)
				o.reqMask[id>>6] |= 1 << (id & 63)
			}
		}
		o.exeMask = make([]uint64, len(o.reqMask))
	}
	steps, err := o.ev.Run(candidate)
	if err != nil {
		return 0, false, fmt.Errorf("evaluate candidate: %w", err)
	}
	o.wealthBuf = o.ev.WealthInto(o.wealthBuf, o.ifus...)
	var total wei.Amount
	for _, w := range o.wealthBuf {
		total += w
	}
	for i := range o.exeMask {
		o.exeMask[i] = 0
	}
	ids := o.ev.AppliedIDs()
	for i, s := range steps {
		if s.Executed {
			// Ids past reqMask's range belong to txs outside the original
			// batch; those can't be required, so skipping them is exact.
			if id := ids[i]; int(id) < len(o.exeMask)*64 {
				o.exeMask[id>>6] |= 1 << (id & 63)
			}
		}
	}
	for i := range o.reqMask {
		if o.reqMask[i]&^o.exeMask[i] != 0 {
			return total - o.baseWealth, false, nil
		}
	}
	return total - o.baseWealth, true, nil
}

// Budget bounds a solve.
type Budget struct {
	// MaxEvaluations caps objective evaluations. Zero means a solver-
	// specific default.
	MaxEvaluations int
}

// Solution is a solver's answer.
type Solution struct {
	// Seq is the best valid order found (the original when nothing beat it).
	Seq tx.Seq
	// Improvement is Seq's wealth gain over the original order.
	Improvement wei.Amount
	// Evaluations consumed by the solve.
	Evaluations int
	// Complete reports whether the solver finished its search rather than
	// hitting the budget.
	Complete bool
	// Duration and AllocBytes are filled in by Measure.
	Duration   time.Duration
	AllocBytes uint64
}

// Solver finds a profitable re-ordering.
type Solver interface {
	// Name identifies the solver in reports (e.g. "apopt-analog/bnb").
	Name() string
	// Solve searches for the best valid order within the budget.
	Solve(rng *rand.Rand, obj *Objective, budget Budget) (Solution, error)
}

// Measure runs a solve and fills in wall-clock duration and allocation
// volume (bytes allocated during the solve — the Fig. 11(b) memory proxy).
// As the reporting layer it also records per-backend evaluation counts,
// allocation volume, and a stage timing under "solver.<name>.*".
//
// AllocBytes caveat: runtime.MemStats.TotalAlloc is process-global, so the
// delta attributes every byte allocated by ANY goroutine during the solve
// to this solve. For the sequential backends on an otherwise idle process
// that is exact; for the parallel portfolio solvers it deliberately folds
// all worker allocations in (the total memory cost of the solve, which is
// what Fig. 11(b) plots) — but concurrent unrelated work also pollutes the
// number. Per-worker allocation cannot be attributed with MemStats; workers
// instead record their exact evaluation counts into per-backend telemetry
// counters (see parallel.go), which stay deterministic and unpolluted.
func Measure(s Solver, rng *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sol, err := s.Solve(rng, obj, budget)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return sol, err
	}
	sol.Duration = elapsed
	sol.AllocBytes = after.TotalAlloc - before.TotalAlloc
	reg := telemetry.Default()
	prefix := "solver." + telemetry.SanitizeName(s.Name())
	reg.Counter(prefix + ".evals").Add(int64(sol.Evaluations))
	reg.Counter(prefix + ".alloc_bytes").Add(int64(sol.AllocBytes))
	reg.Timer(prefix + ".time").ObserveDuration(elapsed)
	return sol, nil
}

// better reports whether (imp, valid) beats the incumbent improvement.
func better(imp wei.Amount, valid bool, best wei.Amount) bool {
	return valid && imp > best
}

// startSolveSpan opens the per-backend solve span; endSolveSpan stamps the
// search outcome onto it. Both are no-ops while tracing is disabled.
func startSolveSpan(s Solver, obj *Objective) *trace.Span {
	return trace.StartSpan(trace.SpanSolverSolve,
		trace.Str("backend", s.Name()),
		trace.Int("n", int64(obj.N())))
}

func endSolveSpan(sp *trace.Span, sol *Solution) {
	sp.SetAttr(trace.Int("evals", int64(sol.Evaluations)),
		trace.Int("improvement_wei", int64(sol.Improvement)),
		trace.Bool("complete", sol.Complete))
	sp.End()
}

// ---------------------------------------------------------------------------
// Exhaustive search (ground truth for small N).

// Exhaustive enumerates every permutation (Heap's algorithm) until done or
// out of budget.
type Exhaustive struct{}

// Name implements Solver.
func (Exhaustive) Name() string { return "exhaustive" }

// Solve implements Solver.
func (Exhaustive) Solve(_ *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	maxEvals := budget.MaxEvaluations
	if maxEvals <= 0 {
		maxEvals = 1_000_000
	}
	sol := Solution{Seq: obj.Original(), Complete: true}
	sp := startSolveSpan(Exhaustive{}, obj)
	defer func() { endSolveSpan(sp, &sol) }()
	work := obj.Original()
	n := len(work)
	counters := make([]int, n)
	evalsStart := obj.Evals()

	score := func() (bool, error) {
		if obj.Evals()-evalsStart >= maxEvals {
			sol.Complete = false
			return true, nil
		}
		imp, valid, err := obj.Score(work)
		if err != nil {
			return true, err
		}
		if better(imp, valid, sol.Improvement) {
			sol.Improvement = imp
			sol.Seq = work.Clone()
		}
		return false, nil
	}

	if stop, err := score(); err != nil || stop {
		sol.Evaluations = obj.Evals() - evalsStart
		return sol, err
	}
	// Heap's algorithm, iterative form.
	for i := 0; i < n; {
		if counters[i] < i {
			if i%2 == 0 {
				work.Swap(0, i)
			} else {
				work.Swap(counters[i], i)
			}
			if stop, err := score(); err != nil || stop {
				sol.Evaluations = obj.Evals() - evalsStart
				return sol, err
			}
			counters[i]++
			i = 0
			continue
		}
		counters[i] = 0
		i++
	}
	sol.Evaluations = obj.Evals() - evalsStart
	return sol, nil
}

// ---------------------------------------------------------------------------
// Branch and bound — the APOPT analog.

// BranchBound searches the permutation tree position by position, pruning
// subtrees whose optimistic wealth ceiling cannot beat the incumbent.
type BranchBound struct{}

// Name implements Solver.
func (BranchBound) Name() string { return "apopt-analog/branch-and-bound" }

// Solve implements Solver.
func (BranchBound) Solve(_ *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	maxEvals := budget.MaxEvaluations
	if maxEvals <= 0 {
		maxEvals = 200_000
	}
	sol := Solution{Seq: obj.Original(), Complete: true}
	sp := startSolveSpan(BranchBound{}, obj)
	defer func() { endSolveSpan(sp, &sol) }()
	evalsStart := obj.Evals()

	n := obj.N()
	orig := obj.Original()
	prefix := make(tx.Seq, 0, n)
	used := make([]bool, n)

	// ceiling is an optimistic bound on any completion's improvement: every
	// IFU token marked to the bonding curve's maximum price plus all cash
	// that could possibly flow in. It is loose but cheap and monotone.
	ceiling := optimisticCeiling(obj)

	var rec func() error
	var done bool
	rec = func() error {
		if done {
			return nil
		}
		if len(prefix) == n {
			if obj.Evals()-evalsStart >= maxEvals {
				sol.Complete = false
				done = true
				return nil
			}
			imp, valid, err := obj.Score(prefix)
			if err != nil {
				return err
			}
			if better(imp, valid, sol.Improvement) {
				sol.Improvement = imp
				sol.Seq = prefix.Clone()
			}
			return nil
		}
		if ceiling <= sol.Improvement {
			mBnbPrunes.Inc()
			return nil // nothing below can beat the incumbent
		}
		for i := 0; i < n && !done; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			prefix = append(prefix, orig[i])
			if err := rec(); err != nil {
				return err
			}
			prefix = prefix[:len(prefix)-1]
			used[i] = false
		}
		return nil
	}
	if err := rec(); err != nil {
		return sol, err
	}
	sol.Evaluations = obj.Evals() - evalsStart
	return sol, nil
}

// optimisticCeiling bounds any order's improvement: all IFU holdings plus
// every token the IFUs could acquire in the batch, priced at the curve
// maximum, plus all cash they could receive — minus the baseline.
func optimisticCeiling(obj *Objective) wei.Amount {
	var maxPrice wei.Amount
	tokensTouched := 0
	for _, t := range obj.original {
		if c, err := obj.base.Token(t.Token); err == nil {
			cfg := c.Config()
			p := wei.MulDiv(cfg.InitialPrice, int64(cfg.MaxSupply), 1)
			if p > maxPrice {
				maxPrice = p
			}
		}
		tokensTouched++
	}
	var holdings int64
	var cash wei.Amount
	for _, ifu := range obj.ifus {
		cash += obj.base.Balance(ifu)
		for _, c := range obj.base.Tokens() {
			holdings += int64(c.BalanceOf(ifu))
		}
	}
	// Each batch tx could, at most, hand an IFU one token or its price in
	// cash.
	optimistic := cash + maxPrice.Mul(holdings+int64(len(obj.original))) + maxPrice.Mul(int64(len(obj.original)))
	return optimistic - obj.baseWealth
}

// ---------------------------------------------------------------------------
// Hill climbing with restarts — the MINOS analog.

// HillClimb performs steepest-ascent over the C(N,2) swap neighborhood,
// restarting from random permutations until the budget is spent.
type HillClimb struct{}

// Name implements Solver.
func (HillClimb) Name() string { return "minos-analog/hill-climb" }

// Solve implements Solver.
func (h HillClimb) Solve(rng *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	maxEvals := budget.MaxEvaluations
	if maxEvals <= 0 {
		maxEvals = 20_000
	}
	if rng == nil {
		return Solution{}, errors.New("solver: hill climb needs an RNG")
	}
	sol := Solution{Seq: obj.Original()}
	sp := startSolveSpan(h, obj)
	defer func() { endSolveSpan(sp, &sol) }()
	evalsStart := obj.Evals()
	n := obj.N()

	cur := obj.Original()
	firstRestart := true
	restart := int64(0)
	for obj.Evals()-evalsStart < maxEvals {
		if !firstRestart {
			cur = obj.Original()
			rng.Shuffle(n, cur.Swap)
			mHillRestarts.Inc()
			restart++
		}
		firstRestart = false
		rsp := trace.StartSpan(trace.SpanSolverRestart, trace.Int("restart", restart))
		restartEvals := obj.Evals()

		curImp, curValid, err := obj.Score(cur)
		if err != nil {
			return sol, err
		}
		if better(curImp, curValid, sol.Improvement) {
			sol.Improvement = curImp
			sol.Seq = cur.Clone()
		}
		// Steepest ascent until local optimum or budget.
		for obj.Evals()-evalsStart < maxEvals {
			bestI, bestJ := -1, -1
			bestImp := curImp
			bestValid := curValid
			for i := 0; i < n && obj.Evals()-evalsStart < maxEvals; i++ {
				for j := i + 1; j < n && obj.Evals()-evalsStart < maxEvals; j++ {
					cur.Swap(i, j)
					imp, valid, err := obj.Score(cur)
					cur.Swap(i, j)
					if err != nil {
						return sol, err
					}
					// Climb on valid improvements only.
					if valid && imp > bestImp {
						bestI, bestJ, bestImp, bestValid = i, j, imp, valid
					}
				}
			}
			if bestI < 0 {
				break // local optimum
			}
			cur.Swap(bestI, bestJ)
			mHillMoves.Inc()
			curImp, curValid = bestImp, bestValid
			if better(curImp, curValid, sol.Improvement) {
				sol.Improvement = curImp
				sol.Seq = cur.Clone()
			}
		}
		rsp.SetAttr(trace.Int("evals", int64(obj.Evals()-restartEvals)),
			trace.Int("best_improvement_wei", int64(sol.Improvement)))
		rsp.End()
	}
	sol.Evaluations = obj.Evals() - evalsStart
	sol.Complete = false // restarts never exhaust the space
	return sol, nil
}

// ---------------------------------------------------------------------------
// Simulated annealing — the SNOPT analog.

// Anneal runs simulated annealing over random swaps with geometric cooling.
type Anneal struct {
	// InitialTemp in reward units (ETH of improvement); 0 means default.
	InitialTemp float64
	// Cooling factor per step in (0,1); 0 means default.
	Cooling float64
}

// Name implements Solver.
func (Anneal) Name() string { return "snopt-analog/simulated-annealing" }

// Solve implements Solver.
func (a Anneal) Solve(rng *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	if rng == nil {
		return Solution{}, errors.New("solver: annealing needs an RNG")
	}
	maxEvals := budget.MaxEvaluations
	if maxEvals <= 0 {
		maxEvals = 20_000
	}
	temp := a.InitialTemp
	if temp <= 0 {
		temp = 0.5 // half an ETH of improvement
	}
	cooling := a.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.999
	}
	sol := Solution{Seq: obj.Original()}
	sp := startSolveSpan(a, obj)
	defer func() { endSolveSpan(sp, &sol) }()
	evalsStart := obj.Evals()
	n := obj.N()

	cur := obj.Original()
	curImp, curValid, err := obj.Score(cur)
	if err != nil {
		return sol, err
	}
	if better(curImp, curValid, sol.Improvement) {
		sol.Improvement = curImp
		sol.Seq = cur.Clone()
	}
	curEnergy := energy(curImp, curValid)
	for obj.Evals()-evalsStart < maxEvals {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		cur.Swap(i, j)
		imp, valid, err := obj.Score(cur)
		if err != nil {
			return sol, err
		}
		nextEnergy := energy(imp, valid)
		if nextEnergy >= curEnergy || rng.Float64() < math.Exp((nextEnergy-curEnergy)/temp) {
			curEnergy = nextEnergy
			mAnnealAccepted.Inc()
			if better(imp, valid, sol.Improvement) {
				sol.Improvement = imp
				sol.Seq = cur.Clone()
			}
		} else {
			cur.Swap(i, j) // reject the move
			mAnnealRejected.Inc()
		}
		temp *= cooling
	}
	sol.Evaluations = obj.Evals() - evalsStart
	return sol, nil
}

// energy maps a scored order to the annealer's maximization objective:
// invalid orders sit a fixed ETH below their improvement.
func energy(imp wei.Amount, valid bool) float64 {
	e := imp.ETHFloat()
	if !valid {
		e -= 1.0
	}
	return e
}
