package solver

import (
	"math/rand"
	"runtime"
	"sync"

	"parole/internal/telemetry"
	"parole/internal/trace"
)

// mWorkers counts worker goroutines launched by the parallel portfolio
// solvers (docs/METRICS.md §solver). Deterministic for a fixed Workers
// setting and solve count.
var mWorkers = telemetry.Default().Counter("solver.workers")

// Determinism rules for the parallel portfolio (docs/PERF.md):
//
//  1. Worker seeds are drawn from the caller's RNG up front, in worker
//     order, before any goroutine starts — the parent RNG therefore
//     advances by exactly W draws regardless of scheduling.
//  2. Each worker gets a fixed evaluation budget (maxEvals/W, remainder to
//     the low indices) and a private Objective fork, so its trajectory
//     depends only on its own seed and budget, never on goroutine timing.
//  3. Results merge by strictly-greater improvement scanning workers in
//     index order, so ties break toward the lowest worker index.
//
// Together these make a seeded parallel solve bit-identical run to run and
// across GOMAXPROCS values (as long as Workers itself is fixed).

// portfolio fans a sequential solver out across worker goroutines and
// merges the best valid result deterministically.
func portfolio(parent Solver, inner func(worker int) Solver, workers int,
	rng *rand.Rand, obj *Objective, budget Budget, defaultEvals int) (Solution, error) {
	if rng == nil {
		return Solution{}, errInnerNeedsRNG(parent)
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	maxEvals := budget.MaxEvaluations
	if maxEvals <= 0 {
		maxEvals = defaultEvals
	}
	if w > maxEvals {
		w = maxEvals // never launch a worker with a zero budget
	}

	sol := Solution{Seq: obj.Original()}
	sp := startSolveSpan(parent, obj)
	sp.SetAttr(trace.Int("workers", int64(w)))
	defer func() { endSolveSpan(sp, &sol) }()

	if w == 1 {
		// Degenerate portfolio: run the inner solver on the caller's RNG so
		// a 1-worker parallel solve matches the sequential backend exactly.
		inner0 := inner(0)
		s, err := inner0.Solve(rng, obj, Budget{MaxEvaluations: maxEvals})
		s.Complete = false
		sol = s
		return sol, err
	}

	// Rule 1: seeds drawn up front, in order.
	seeds := make([]int64, w)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	// Rule 2: fixed budgets, remainder to the low indices.
	per, rem := maxEvals/w, maxEvals%w

	mWorkers.Add(int64(w))
	results := make([]Solution, w)
	errs := make([]error, w)
	forks := make([]*Objective, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := per
			if i < rem {
				b++
			}
			f := obj.Fork()
			forks[i] = f
			innerSolver := inner(i)
			results[i], errs[i] = innerSolver.Solve(
				rand.New(rand.NewSource(seeds[i])), f, Budget{MaxEvaluations: b})
			// Per-backend per-worker effort, recorded inside the worker:
			// exact counts, immune to the MemStats pollution Measure notes.
			telemetry.Default().
				Counter("solver." + telemetry.SanitizeName(innerSolver.Name()) + ".evals").
				Add(int64(f.Evals()))
		}(i)
	}
	wg.Wait()

	total := 0
	for i := 0; i < w; i++ {
		if errs[i] != nil {
			return sol, errs[i]
		}
		total += results[i].Evaluations
		obj.addEvals(int64(forks[i].Evals()))
		// Rule 3: strict improvement in index order = lowest-index tie-break.
		if better(results[i].Improvement, true, sol.Improvement) {
			sol.Improvement = results[i].Improvement
			sol.Seq = results[i].Seq
		}
	}
	sol.Evaluations = total
	sol.Complete = false // restarts/chains never exhaust the space
	return sol, nil
}

// errInnerNeedsRNG mirrors the sequential solvers' nil-RNG errors.
func errInnerNeedsRNG(s Solver) error {
	return &rngError{name: s.Name()}
}

type rngError struct{ name string }

func (e *rngError) Error() string { return "solver: " + e.name + " needs an RNG" }

// ParallelHillClimb runs independent hill-climb restart chains across
// Workers goroutines (0 means GOMAXPROCS), each with its own Objective
// fork, scratch state, and deterministically derived RNG, and merges the
// best valid order found. Seeded outputs are bit-identical run to run; see
// the determinism rules above.
type ParallelHillClimb struct {
	// Workers is the goroutine count; 0 means runtime.GOMAXPROCS(0).
	Workers int
}

// Name implements Solver.
func (ParallelHillClimb) Name() string { return "minos-analog/hill-climb-parallel" }

// Solve implements Solver.
func (p ParallelHillClimb) Solve(rng *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	return portfolio(p, func(int) Solver { return HillClimb{} }, p.Workers,
		rng, obj, budget, 20_000)
}

// ParallelAnneal runs independent annealing chains across Workers
// goroutines (0 means GOMAXPROCS) under the same determinism rules as
// ParallelHillClimb. Temperature and cooling apply to every chain.
type ParallelAnneal struct {
	// Workers is the goroutine count; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// InitialTemp and Cooling are forwarded to every chain (zero values
	// pick the Anneal defaults).
	InitialTemp float64
	Cooling     float64
}

// Name implements Solver.
func (ParallelAnneal) Name() string { return "snopt-analog/simulated-annealing-parallel" }

// Solve implements Solver.
func (p ParallelAnneal) Solve(rng *rand.Rand, obj *Objective, budget Budget) (Solution, error) {
	return portfolio(p, func(int) Solver {
		return Anneal{InitialTemp: p.InitialTemp, Cooling: p.Cooling}
	}, p.Workers, rng, obj, budget, 20_000)
}
