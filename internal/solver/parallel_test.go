package solver_test

import (
	"math/rand"
	"testing"

	"parole/internal/solver"
	"parole/internal/tx"
)

// solveTwice runs s twice from the same seed and asserts bit-identical
// seeded output — the determinism contract of the parallel portfolio.
func solveTwice(t *testing.T, s solver.Solver, seed int64, budget solver.Budget) solver.Solution {
	t.Helper()
	var first solver.Solution
	var firstSeq tx.Seq
	for run := 0; run < 2; run++ {
		obj := newObjective(t)
		sol, err := s.Solve(rand.New(rand.NewSource(seed)), obj, budget)
		if err != nil {
			t.Fatalf("%s run %d: %v", s.Name(), run, err)
		}
		if sol.Evaluations != obj.Evals() {
			t.Fatalf("%s: Evaluations=%d but objective counted %d", s.Name(), sol.Evaluations, obj.Evals())
		}
		if run == 0 {
			first, firstSeq = sol, sol.Seq.Clone()
			continue
		}
		if sol.Improvement != first.Improvement {
			t.Fatalf("%s: improvement differs across runs: %s vs %s", s.Name(), sol.Improvement, first.Improvement)
		}
		if sol.Evaluations != first.Evaluations {
			t.Fatalf("%s: evals differ across runs: %d vs %d", s.Name(), sol.Evaluations, first.Evaluations)
		}
		if !sol.Seq.SamePermutation(firstSeq) {
			t.Fatalf("%s: sequences differ across runs", s.Name())
		}
		for i := range sol.Seq {
			if sol.Seq[i] != firstSeq[i] {
				t.Fatalf("%s: seq position %d differs across runs", s.Name(), i)
			}
		}
	}
	return first
}

func TestParallelSolversDeterministic(t *testing.T) {
	budget := solver.Budget{MaxEvaluations: 1200}
	for _, s := range []solver.Solver{
		solver.ParallelHillClimb{Workers: 4},
		solver.ParallelAnneal{Workers: 4},
	} {
		sol := solveTwice(t, s, 7, budget)
		if sol.Improvement < 0 {
			t.Fatalf("%s returned a losing order", s.Name())
		}
		if sol.Complete {
			t.Fatalf("%s claimed a complete search", s.Name())
		}
	}
}

func TestParallelFindsProfit(t *testing.T) {
	obj := newObjective(t)
	sol, err := solver.ParallelHillClimb{Workers: 4}.Solve(
		rand.New(rand.NewSource(3)), obj, solver.Budget{MaxEvaluations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Improvement <= 0 {
		t.Fatalf("parallel hill-climb found no profit (improvement %s)", sol.Improvement)
	}
	// The result must be a genuine valid reordering of the batch.
	imp, valid, err := obj.Fork().Score(sol.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if !valid || imp != sol.Improvement {
		t.Fatalf("re-score: imp=%s valid=%v, solution claimed %s", imp, valid, sol.Improvement)
	}
}

// TestParallelOneWorkerMatchesSequential pins the degenerate portfolio to
// the sequential backend: same seed, same budget, same answer.
func TestParallelOneWorkerMatchesSequential(t *testing.T) {
	budget := solver.Budget{MaxEvaluations: 600}
	objSeq := newObjective(t)
	seq, err := solver.HillClimb{}.Solve(rand.New(rand.NewSource(11)), objSeq, budget)
	if err != nil {
		t.Fatal(err)
	}
	objPar := newObjective(t)
	par, err := solver.ParallelHillClimb{Workers: 1}.Solve(rand.New(rand.NewSource(11)), objPar, budget)
	if err != nil {
		t.Fatal(err)
	}
	if par.Improvement != seq.Improvement || par.Evaluations != seq.Evaluations {
		t.Fatalf("1-worker portfolio (imp %s, evals %d) != sequential (imp %s, evals %d)",
			par.Improvement, par.Evaluations, seq.Improvement, seq.Evaluations)
	}
	for i := range seq.Seq {
		if par.Seq[i] != seq.Seq[i] {
			t.Fatalf("1-worker portfolio seq differs at %d", i)
		}
	}
}

func TestParallelSolverNames(t *testing.T) {
	if got := (solver.ParallelHillClimb{}).Name(); got != "minos-analog/hill-climb-parallel" {
		t.Fatalf("name = %q", got)
	}
	if got := (solver.ParallelAnneal{}).Name(); got != "snopt-analog/simulated-annealing-parallel" {
		t.Fatalf("name = %q", got)
	}
}

func TestParallelNeedsRNG(t *testing.T) {
	obj := newObjective(t)
	if _, err := (solver.ParallelHillClimb{Workers: 2}).Solve(nil, obj, solver.Budget{}); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

// TestForkIsolation drives forks of one objective concurrently; run under
// -race this pins down that worker scorers share nothing mutable.
func TestForkIsolation(t *testing.T) {
	obj := newObjective(t)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			f := obj.Fork()
			rng := rand.New(rand.NewSource(seed))
			order := f.Original()
			for i := 0; i < 50; i++ {
				rng.Shuffle(len(order), order.Swap)
				if _, _, err := f.Score(order); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
