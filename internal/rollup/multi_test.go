package rollup

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/tx"
	"parole/internal/wei"
)

// TestTwoAggregatorsShareTheMempool: each aggregator drains its own batch;
// no transaction is processed twice and both batches finalize.
func TestTwoAggregatorsShareTheMempool(t *testing.T) {
	node, agg1, ver := newDeployment(t)
	agg2Addr := chainid.AggregatorAddress(2)
	node.SetupAccount(agg2Addr, wei.FromETH(10))
	agg2, err := NewAggregator(node, agg2Addr, wei.FromETH(5), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 10 mints (the PT supply cap): agg1 takes 8, agg2 the remaining 2.
	for i := uint64(0); i < 10; i++ {
		user := alice
		if i%2 == 1 {
			user = bob
		}
		if err := node.SubmitTx(tx.Mint(ptAddr, i, user).WithFees(wei.Amount(100-i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	b1, r1, err := agg1.Step()
	if err != nil {
		t.Fatal(err)
	}
	b2, r2, err := agg2.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Txs) != 8 || len(b2.Txs) != 2 {
		t.Fatalf("batch sizes = %d/%d, want 8/2", len(b1.Txs), len(b2.Txs))
	}
	if r1.Executed != 8 || r2.Executed != 2 {
		t.Fatalf("executed = %d/%d", r1.Executed, r2.Executed)
	}
	// No overlap between batches.
	seen := make(map[chainid.Hash]bool)
	for _, batch := range []*tx.Seq{&b1.Txs, &b2.Txs} {
		for _, txn := range *batch {
			h := txn.Hash()
			if seen[h] {
				t.Fatalf("transaction %s processed twice", h)
			}
			seen[h] = true
		}
	}
	// Honest verifier: nothing to challenge; both finalize.
	if challenged, err := ver.Step(); err != nil || len(challenged) != 0 {
		t.Fatalf("challenges = %v, %v", challenged, err)
	}
	node.AdvanceRound()
	anchors := node.AdvanceRound()
	if len(anchors) != 2 {
		t.Fatalf("finalized %d batches, want 2", len(anchors))
	}
	pt, err := node.L2State().Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Minted() != 10 {
		t.Fatalf("minted = %d, want 10", pt.Minted())
	}
}

// TestSequentialBatchesChainRoots: consecutive batches chain their state
// roots (batch k's pre-root equals batch k−1's post-root).
func TestSequentialBatchesChainRoots(t *testing.T) {
	node, agg, _ := newDeployment(t)
	var post chainid.Hash
	for round := uint64(0); round < 3; round++ {
		if err := node.SubmitTx(tx.Mint(ptAddr, round, alice).WithFees(10, 0)); err != nil {
			t.Fatal(err)
		}
		batch, _, err := agg.Step()
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 && batch.PreRoot != post {
			t.Fatalf("batch %d pre-root does not chain", round)
		}
		post = batch.PostRoot
	}
}
