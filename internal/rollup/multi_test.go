package rollup

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// TestTwoAggregatorsShareTheMempool: each aggregator drains its own batch;
// no transaction is processed twice and both batches finalize.
func TestTwoAggregatorsShareTheMempool(t *testing.T) {
	node, agg1, ver := newDeployment(t)
	agg2Addr := chainid.AggregatorAddress(2)
	node.SetupAccount(agg2Addr, wei.FromETH(10))
	agg2, err := NewAggregator(node, agg2Addr, wei.FromETH(5), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 10 mints (the PT supply cap): agg1 takes 8, agg2 the remaining 2.
	for i := uint64(0); i < 10; i++ {
		user := alice
		if i%2 == 1 {
			user = bob
		}
		if err := node.SubmitTx(tx.Mint(ptAddr, i, user).WithFees(wei.Amount(100-i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	b1, r1, err := agg1.Step()
	if err != nil {
		t.Fatal(err)
	}
	b2, r2, err := agg2.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Txs) != 8 || len(b2.Txs) != 2 {
		t.Fatalf("batch sizes = %d/%d, want 8/2", len(b1.Txs), len(b2.Txs))
	}
	if r1.Executed != 8 || r2.Executed != 2 {
		t.Fatalf("executed = %d/%d", r1.Executed, r2.Executed)
	}
	// No overlap between batches.
	seen := make(map[chainid.Hash]bool)
	for _, batch := range []*tx.Seq{&b1.Txs, &b2.Txs} {
		for _, txn := range *batch {
			h := txn.Hash()
			if seen[h] {
				t.Fatalf("transaction %s processed twice", h)
			}
			seen[h] = true
		}
	}
	// Honest verifier: nothing to challenge; both finalize.
	if challenged, err := ver.Step(); err != nil || len(challenged) != 0 {
		t.Fatalf("challenges = %v, %v", challenged, err)
	}
	node.AdvanceRound()
	anchors := node.AdvanceRound()
	if len(anchors) != 2 {
		t.Fatalf("finalized %d batches, want 2", len(anchors))
	}
	pt, err := node.L2State().Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Minted() != 10 {
		t.Fatalf("minted = %d, want 10", pt.Minted())
	}
}

// newWorldDeployment builds a two-rollup world over one shared L1: each
// rollup carries its own PT contract (same address, independent supply),
// alice and bob hold deposits on both chains, and each chain has its own
// bonded aggregator and verifier.
func newWorldDeployment(t *testing.T) (*World, [2]*Node, [2]*Aggregator, [2]*Verifier) {
	t.Helper()
	w := NewWorld(WorldConfig{GenesisL1Number: 17_934_498})
	var (
		nodes [2]*Node
		aggs  [2]*Aggregator
		vers  [2]*Verifier
	)
	for i := 0; i < 2; i++ {
		chainID := uint64(i + 1)
		node, err := w.AddRollup(Config{ChainID: chainID, ChallengePeriod: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.SetupL2(func(st *state.State) error {
			pt, err := token.Deploy(ptAddr, token.Config{
				Name: "ParoleToken", Symbol: "PT",
				MaxSupply: 10, InitialPrice: wei.FromFloat(0.2),
			})
			if err != nil {
				return err
			}
			return st.DeployToken(pt)
		}); err != nil {
			t.Fatal(err)
		}
		aggAddr := chainid.AggregatorAddress(10 + i)
		verAddr := chainid.VerifierAddress(10 + i)
		node.SetupAccount(aggAddr, wei.FromETH(10))
		node.SetupAccount(verAddr, wei.FromETH(10))
		if aggs[i], err = NewAggregator(node, aggAddr, wei.FromETH(5), 8, nil); err != nil {
			t.Fatal(err)
		}
		if vers[i], err = NewVerifier(node, verAddr, wei.FromETH(5)); err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	// One L1 funding per user covers deposits into both rollups — the
	// accounts live on the shared chain.
	nodes[0].SetupAccount(alice, wei.FromETH(20))
	nodes[0].SetupAccount(bob, wei.FromETH(20))
	for i := 0; i < 2; i++ {
		if err := nodes[i].Deposit(alice, wei.FromETH(5)); err != nil {
			t.Fatal(err)
		}
		if err := nodes[i].Deposit(bob, wei.FromETH(5)); err != nil {
			t.Fatal(err)
		}
	}
	return w, nodes, aggs, vers
}

// TestTwoRollupsAnchorToOneL1 interleaves rounds of two rollups over one
// shared chain: both commit batches, both finalize, and the anchors of both
// land on the same L1 while the L2 state roots stay independent.
func TestTwoRollupsAnchorToOneL1(t *testing.T) {
	w, nodes, aggs, _ := newWorldDeployment(t)
	if nodes[0].L1() != nodes[1].L1() {
		t.Fatal("rollups do not share the L1 chain")
	}
	if nodes[0].ORSC().Address() == nodes[1].ORSC().Address() {
		t.Fatal("rollups share an ORSC address")
	}

	// Interleave three rounds: chain 1 mints even ids, chain 2 odd ids.
	for round := uint64(0); round < 3; round++ {
		for i, node := range nodes {
			id := round*2 + uint64(i)
			if err := node.SubmitTx(tx.Mint(ptAddr, id, alice).WithFees(10, 0)); err != nil {
				t.Fatal(err)
			}
		}
		root2Before := nodes[1].L2Root()
		if _, _, err := aggs[0].Step(); err != nil {
			t.Fatal(err)
		}
		// Chain 1's commit must not move chain 2's root.
		if nodes[1].L2Root() != root2Before {
			t.Fatalf("round %d: chain 1 commit perturbed chain 2's root", round)
		}
		if _, _, err := aggs[1].Step(); err != nil {
			t.Fatal(err)
		}
		w.AdvanceRound()
	}
	anchors := w.AdvanceRound()
	total := 0
	for _, chainAnchors := range anchors {
		total += len(chainAnchors)
	}
	if total == 0 {
		t.Fatal("no batches finalized in the final round")
	}
	// Every batch of both chains eventually finalizes.
	for i, node := range nodes {
		pending, finalized, reverted := node.BatchStatusCounts()
		if pending != 0 || reverted != 0 || finalized != 3 {
			t.Fatalf("chain %d: pending/finalized/reverted = %d/%d/%d, want 0/3/0",
				i+1, pending, finalized, reverted)
		}
	}
	// The rollups minted independently: 3 tokens each, different ids.
	for i, node := range nodes {
		pt, err := node.L2State().Token(ptAddr)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Minted() != 3 {
			t.Fatalf("chain %d minted = %d, want 3", i+1, pt.Minted())
		}
	}
	if nodes[0].L2Root() == nodes[1].L2Root() {
		t.Fatal("independent rollups converged on one root (ids differ, they must not)")
	}
}

// TestIndependentChallengeGames forges a batch on each rollup in turn and
// checks the challenge game of one never touches the other: the revert rolls
// back only the forging chain's state, and only that chain's aggregator bond
// is slashed.
func TestIndependentChallengeGames(t *testing.T) {
	_, nodes, aggs, vers := newWorldDeployment(t)
	for i := range nodes {
		other := 1 - i
		forger := aggs[i].Address()
		rootBefore := nodes[i].L2Root()
		otherRootBefore := nodes[other].L2Root()
		otherBondBefore := nodes[other].ORSC().AggregatorBond(aggs[other].Address())

		forged := chainid.HashBytes([]byte("forged"), []byte{byte(i)})
		batch, err := nodes[i].SubmitForgedBatch(forger, tx.Seq{tx.Mint(ptAddr, 9, alice)}, forged)
		if err != nil {
			t.Fatal(err)
		}
		challenged, err := vers[i].Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(challenged) != 1 || challenged[0] != batch.ID {
			t.Fatalf("chain %d: challenged = %v, want [%d]", i+1, challenged, batch.ID)
		}
		if nodes[i].L2Root() != rootBefore {
			t.Fatalf("chain %d: challenge did not roll back the forging chain", i+1)
		}
		if nodes[i].ORSC().AggregatorBond(forger) != 0 {
			t.Fatalf("chain %d: forger kept its bond", i+1)
		}
		// The sibling rollup is untouched: same root, same bonds.
		if nodes[other].L2Root() != otherRootBefore {
			t.Fatalf("chain %d: revert perturbed chain %d's state root", i+1, other+1)
		}
		if nodes[other].ORSC().AggregatorBond(aggs[other].Address()) != otherBondBefore {
			t.Fatalf("chain %d: revert slashed chain %d's aggregator", i+1, other+1)
		}
	}
}

// TestWorldDuplicateChainID pins AddRollup's uniqueness check and Rollup's
// unknown-id error.
func TestWorldDuplicateChainID(t *testing.T) {
	w := NewWorld(WorldConfig{})
	if _, err := w.AddRollup(Config{ChainID: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddRollup(Config{ChainID: 7}); err == nil {
		t.Fatal("duplicate chain id accepted")
	}
	if _, err := w.Rollup(8); err == nil {
		t.Fatal("unknown chain id resolved")
	}
	if got := w.ChainIDs(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("ChainIDs = %v, want [7]", got)
	}
}

// TestSequentialBatchesChainRoots: consecutive batches chain their state
// roots (batch k's pre-root equals batch k−1's post-root).
func TestSequentialBatchesChainRoots(t *testing.T) {
	node, agg, _ := newDeployment(t)
	var post chainid.Hash
	for round := uint64(0); round < 3; round++ {
		if err := node.SubmitTx(tx.Mint(ptAddr, round, alice).WithFees(10, 0)); err != nil {
			t.Fatal(err)
		}
		batch, _, err := agg.Step()
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 && batch.PreRoot != post {
			t.Fatalf("batch %d pre-root does not chain", round)
		}
		post = batch.PostRoot
	}
}
