package rollup

import (
	"math/rand"
	"sync"
	"testing"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/wei"
)

// settleWindow advances the world far enough for every in-flight transfer
// initiated before the call to settle (challenge period 1 → two rounds).
func settleWindow(w *World) {
	w.AdvanceRound()
	w.AdvanceRound()
}

func TestBridgeWeiLifecycle(t *testing.T) {
	w, nodes, _, _ := newWorldDeployment(t)
	supplyBefore := w.L1().TotalSupply()
	aliceOn2Before := nodes[1].L2State().Balance(alice)

	id, err := w.Bridge().SendWei(1, 2, alice, wei.FromETH(2))
	if err != nil {
		t.Fatal(err)
	}
	// Source debited immediately; backing wei moved ORSC₁ → bridge escrow.
	if got := nodes[0].L2State().Balance(alice); got != wei.FromETH(3) {
		t.Fatalf("source balance = %s, want 3 ETH", got)
	}
	if got := w.L1().Balance(w.Bridge().Escrow()); got != wei.FromETH(2) {
		t.Fatalf("escrow = %s, want 2 ETH", got)
	}
	// Not released before the source challenge window closes.
	w.AdvanceRound()
	if got := nodes[1].L2State().Balance(alice); got != aliceOn2Before {
		t.Fatal("destination credited inside the challenge window")
	}
	w.AdvanceRound()
	tr, err := w.Bridge().Transfer(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Status != BridgeReleased {
		t.Fatalf("status = %s, want released", tr.Status)
	}
	if got := nodes[1].L2State().Balance(alice); got != aliceOn2Before+wei.FromETH(2) {
		t.Fatalf("destination balance = %s, want +2 ETH", got)
	}
	if got := w.L1().Balance(w.Bridge().Escrow()); got != 0 {
		t.Fatalf("escrow after release = %s, want 0", got)
	}
	if got := w.L1().TotalSupply(); got != supplyBefore {
		t.Fatalf("L1 supply drifted: %s → %s", supplyBefore, got)
	}
}

func TestBridgeTokenLifecycle(t *testing.T) {
	w, nodes, _, _ := newWorldDeployment(t)
	if err := nodes[0].SetupL2(func(st *state.State) error {
		pt, err := st.Token(ptAddr)
		if err != nil {
			return err
		}
		return st.MintToken(pt, alice, 3)
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := w.Bridge().SendToken(1, 2, alice, ptAddr, 3); err != nil {
		t.Fatal(err)
	}
	// Burned on source, not yet minted on destination: id 3 exists nowhere.
	for i, node := range nodes {
		pt, err := node.L2State().Token(ptAddr)
		if err != nil {
			t.Fatal(err)
		}
		if _, minted := pt.OwnerOf(3); minted {
			t.Fatalf("chain %d owns id 3 while in flight", i+1)
		}
	}
	settleWindow(w)
	pt2, err := nodes[1].L2State().Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !pt2.Owns(alice, 3) {
		t.Fatal("destination did not mint the bridged token for alice")
	}
}

func TestBridgeTokenBounce(t *testing.T) {
	w, nodes, _, _ := newWorldDeployment(t)
	// Mint the same id on both chains: the destination must reject the
	// bridged copy and the source re-mints it at settlement.
	for _, node := range nodes {
		if err := node.SetupL2(func(st *state.State) error {
			pt, err := st.Token(ptAddr)
			if err != nil {
				return err
			}
			return st.MintToken(pt, alice, 5)
		}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := w.Bridge().SendToken(1, 2, alice, ptAddr, 5)
	if err != nil {
		t.Fatal(err)
	}
	settleWindow(w)
	tr, err := w.Bridge().Transfer(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Status != BridgeBounced {
		t.Fatalf("status = %s, want bounced", tr.Status)
	}
	pt1, err := nodes[0].L2State().Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !pt1.Owns(alice, 5) {
		t.Fatal("bounced token not restored on the source chain")
	}
}

func TestBridgeValidation(t *testing.T) {
	w, nodes, _, _ := newWorldDeployment(t)
	if _, err := w.Bridge().SendWei(1, 1, alice, wei.FromETH(1)); err == nil {
		t.Fatal("same-chain transfer accepted")
	}
	if _, err := w.Bridge().SendWei(1, 9, alice, wei.FromETH(1)); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if _, err := w.Bridge().SendWei(1, 2, alice, 0); err == nil {
		t.Fatal("zero amount accepted")
	}
	if _, err := w.Bridge().SendWei(1, 2, alice, wei.FromETH(1_000)); err == nil {
		t.Fatal("over-balance transfer accepted")
	}
	if _, err := w.Bridge().SendToken(1, 2, bob, ptAddr, 99); err == nil {
		t.Fatal("bridging an unminted token accepted")
	}
	if got := nodes[0].L2State().Balance(alice); got != wei.FromETH(5) {
		t.Fatalf("failed sends mutated the source balance: %s", got)
	}
	if w.Bridge().PendingCount() != 0 {
		t.Fatal("failed sends recorded transfers")
	}
}

// bridgePropertyWorld builds the property-test fixture: two rollups, four
// users with L1 funds and L2 deposits, and disjoint preminted token ranges
// (ids 0–9 on chain 1, 100–109 on chain 2) spread across the users.
func bridgePropertyWorld(t *testing.T, rng *rand.Rand) (*World, [2]*Node, []chainid.Address, []uint64) {
	t.Helper()
	w := NewWorld(WorldConfig{GenesisL1Number: 1})
	users := []chainid.Address{
		chainid.UserAddress(1), chainid.UserAddress(2),
		chainid.UserAddress(3), chainid.UserAddress(4),
	}
	var nodes [2]*Node
	var universe []uint64
	for i := 0; i < 2; i++ {
		node, err := w.AddRollup(Config{ChainID: uint64(i + 1), ChallengePeriod: 1})
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(i * 100)
		if err := node.SetupL2(func(st *state.State) error {
			pt, err := token.Deploy(ptAddr, token.Config{
				Name: "ParoleToken", Symbol: "PT",
				MaxSupply: 64, InitialPrice: wei.FromFloat(0.2),
			})
			if err != nil {
				return err
			}
			if err := st.DeployToken(pt); err != nil {
				return err
			}
			for k := uint64(0); k < 10; k++ {
				if err := st.MintToken(pt, users[rng.Intn(len(users))], base+k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 10; k++ {
			universe = append(universe, base+k)
		}
		nodes[i] = node
	}
	for _, u := range users {
		nodes[0].SetupAccount(u, wei.FromETH(40))
		for i := 0; i < 2; i++ {
			if err := nodes[i].Deposit(u, wei.FromETH(10)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w, nodes, users, universe
}

// checkBridgeConservation asserts the bridge's two conservation invariants:
//
//  1. Wei: the L1 total supply never moves, the bridge escrow holds exactly
//     the sum of in-flight wei transfers, and each ORSC's L1 balance equals
//     its rollup's total L2 balance plus its queued-unpaid withdrawals (every
//     L2 wei stays fully collateralized on L1 through any bridging).
//  2. Tokens: every id of the premined universe is owned on exactly one
//     chain, or referenced by exactly one in-flight transfer (L1 escrow) —
//     never both, never neither, never duplicated.
func checkBridgeConservation(t *testing.T, w *World, nodes [2]*Node, universe []uint64, supply wei.Amount, unpaid func(i int) wei.Amount) {
	t.Helper()
	if got := w.L1().TotalSupply(); got != supply {
		t.Fatalf("L1 total supply drifted: want %s, got %s", supply, got)
	}
	var inFlightWei wei.Amount
	inFlightTokens := make(map[uint64]int)
	for _, tr := range w.Bridge().Transfers() {
		if tr.Status != BridgePending {
			continue
		}
		switch tr.Kind {
		case BridgeWei:
			inFlightWei += tr.Amount
		case BridgeToken:
			inFlightTokens[tr.TokenID]++
		}
	}
	if got := w.L1().Balance(w.Bridge().Escrow()); got != inFlightWei {
		t.Fatalf("bridge escrow = %s, want in-flight sum %s", got, inFlightWei)
	}
	for i, node := range nodes {
		backing := node.L2State().TotalBalance() + unpaid(i)
		if got := w.L1().Balance(node.ORSC().Address()); got != backing {
			t.Fatalf("chain %d ORSC balance = %s, want L2 total + queued exits = %s", i+1, got, backing)
		}
	}
	for _, id := range universe {
		owners := inFlightTokens[id]
		for _, node := range nodes {
			pt, err := node.L2State().Token(ptAddr)
			if err != nil {
				t.Fatal(err)
			}
			if _, minted := pt.OwnerOf(id); minted {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("token id %d has %d owners (chains + escrow), want exactly 1", id, owners)
		}
	}
}

// TestBridgeConservationProperty drives random deposit / withdraw / bridge
// interleavings across two rollups and checks conservation after every step.
// Run under -race in CI.
func TestBridgeConservationProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		w, nodes, users, universe := bridgePropertyWorld(t, rng)
		supply := w.L1().TotalSupply()

		// Track queued withdrawals so the backing invariant can subtract the
		// ones not yet paid out.
		type exit struct {
			chain int
			id    uint64
		}
		var exits []exit
		unpaid := func(i int) wei.Amount {
			var total wei.Amount
			for _, e := range exits {
				if e.chain != i {
					continue
				}
				wd, err := nodes[i].ORSC().Withdrawal(e.id)
				if err != nil {
					t.Fatal(err)
				}
				if !wd.Paid {
					total += wd.Amount
				}
			}
			return total
		}

		const steps = 300
		for step := 0; step < steps; step++ {
			user := users[rng.Intn(len(users))]
			src := rng.Intn(2)
			dst := 1 - src
			switch rng.Intn(5) {
			case 0: // deposit fresh L1 funds
				if w.L1().Balance(user) >= wei.FromETH(1) {
					if err := nodes[src].Deposit(user, wei.FromETH(1)); err != nil {
						t.Fatalf("step %d deposit: %v", step, err)
					}
				}
			case 1: // withdraw through the challenge window
				if bal := nodes[src].L2State().Balance(user); bal > 0 {
					amount := wei.Amount(1 + rng.Int63n(int64(bal)))
					id, err := nodes[src].Withdraw(user, amount)
					if err != nil {
						t.Fatalf("step %d withdraw: %v", step, err)
					}
					exits = append(exits, exit{chain: src, id: id})
				}
			case 2: // bridge wei
				if bal := nodes[src].L2State().Balance(user); bal > 0 {
					amount := wei.Amount(1 + rng.Int63n(int64(bal)))
					if _, err := w.Bridge().SendWei(uint64(src+1), uint64(dst+1), user, amount); err != nil {
						t.Fatalf("step %d bridge wei: %v", step, err)
					}
				}
			case 3: // bridge a token the user owns on the source chain
				pt, err := nodes[src].L2State().Token(ptAddr)
				if err != nil {
					t.Fatal(err)
				}
				if ids := pt.OwnedBy(user); len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if _, err := w.Bridge().SendToken(uint64(src+1), uint64(dst+1), user, ptAddr, id); err != nil {
						t.Fatalf("step %d bridge token: %v", step, err)
					}
				}
			case 4: // advance every chain's round; settle matured transfers
				w.AdvanceRound()
			}
			checkBridgeConservation(t, w, nodes, universe, supply, unpaid)
		}
		// Drain: settle everything still in flight and re-check.
		settleWindow(w)
		checkBridgeConservation(t, w, nodes, universe, supply, unpaid)
		if w.Bridge().PendingCount() != 0 {
			t.Fatal("transfers still pending after drain")
		}
	}
}

// TestBridgeConcurrentHammer exercises the shared-mutex contract under the
// race detector: four goroutines bridge wei back and forth while a fifth
// advances rounds; conservation must hold at the end.
func TestBridgeConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w, nodes, users, universe := bridgePropertyWorld(t, rng)
	supply := w.L1().TotalSupply()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := users[g]
			for i := 0; i < 50; i++ {
				src := uint64(1 + (g+i)%2)
				dst := 3 - src
				// Insufficient balance is fine (funds may be in flight);
				// conservation is checked after the dust settles.
				_, _ = w.Bridge().SendWei(src, dst, user, wei.FromETH(1))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			w.AdvanceRound()
		}
	}()
	wg.Wait()
	settleWindow(w)
	checkBridgeConservation(t, w, nodes, universe, supply, func(int) wei.Amount { return 0 })
}
