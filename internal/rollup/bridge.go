package rollup

import (
	"errors"
	"fmt"

	"parole/internal/chainid"
	"parole/internal/telemetry"
	"parole/internal/trace"
	"parole/internal/wei"
)

// Bridge metrics (docs/METRICS.md §rollup).
var (
	mBridgeInitiated = telemetry.Default().Counter("rollup.bridge.initiated")
	mBridgeReleased  = telemetry.Default().Counter("rollup.bridge.released")
	mBridgeBounced   = telemetry.Default().Counter("rollup.bridge.bounced")
)

// Bridge errors.
var (
	ErrBridgeSameChain = errors.New("rollup: bridge source and destination are the same chain")
	ErrBridgeBadAmount = errors.New("rollup: bridge amount must be positive")
	ErrUnknownTransfer = errors.New("rollup: unknown bridge transfer")
)

// BridgeKind discriminates what a transfer carries.
type BridgeKind uint8

// Bridge transfer kinds.
const (
	BridgeWei BridgeKind = iota + 1
	BridgeToken
)

// BridgeStatus is the lifecycle state of a cross-rollup transfer.
type BridgeStatus uint8

// Bridge transfer lifecycle states.
const (
	// BridgePending: the asset left the source chain and sits in L1 escrow
	// until the source chain's challenge window closes.
	BridgePending BridgeStatus = iota + 1
	// BridgeReleased: the asset materialized on the destination chain.
	BridgeReleased
	// BridgeBounced: the destination could not accept the asset (token id
	// collision or sold-out collection); it was restored on the source chain.
	BridgeBounced
)

// String returns the lower-case status name.
func (s BridgeStatus) String() string {
	switch s {
	case BridgePending:
		return "pending"
	case BridgeReleased:
		return "released"
	case BridgeBounced:
		return "bounced"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// BridgeTransfer is one in-flight (or settled) cross-rollup asset move:
// burn-on-source / mint-on-destination for ERC-721s, escrowed wei for native
// balance. Release is gated on the source chain's batch finalization clock —
// the transfer only lands once the source round passes the challenge-window
// deadline, exactly like an optimistic-rollup withdrawal.
type BridgeTransfer struct {
	ID        uint64
	Kind      BridgeKind
	FromChain uint64
	ToChain   uint64
	User      chainid.Address
	// Amount is the escrowed wei (BridgeWei only).
	Amount wei.Amount
	// Token/TokenID identify the bridged ERC-721 (BridgeToken only).
	Token   chainid.Address
	TokenID uint64
	// Deadline is the source-chain ORSC round after which the transfer
	// settles.
	Deadline uint64
	Status   BridgeStatus
}

// Bridge is the world's L1-mediated asset mover. Native wei is backed 1:1 on
// L1: initiating a wei transfer moves the backing ETH from the source ORSC's
// deposit escrow to the bridge escrow account, and release moves it on to the
// destination ORSC — so every L2 balance stays fully collateralized on L1 and
// the chain's TotalSupply is invariant under bridging. Tokens are burned on
// the source chain at initiation and minted on the destination at release;
// while pending, the id exists on no chain (it is "in escrow").
type Bridge struct {
	world     *World
	escrow    chainid.Address
	transfers []*BridgeTransfer
}

// newBridge wires the bridge to its world.
func newBridge(w *World) *Bridge {
	return &Bridge{world: w, escrow: chainid.DeriveAddress("bridge/escrow")}
}

// Escrow returns the bridge's L1 escrow address.
func (b *Bridge) Escrow() chainid.Address { return b.escrow }

// SendWei initiates a native-balance transfer from the user's account on the
// source rollup to the same account on the destination rollup. The user's L2
// balance is debited immediately and the backing L1 ETH moves into bridge
// escrow; the destination credit lands after the source challenge window.
func (b *Bridge) SendWei(fromChain, toChain uint64, user chainid.Address, amount wei.Amount) (uint64, error) {
	b.world.mu.Lock()
	defer b.world.mu.Unlock()
	src, _, err := b.endpointsLocked(fromChain, toChain)
	if err != nil {
		return 0, err
	}
	if amount <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrBridgeBadAmount, amount)
	}
	if err := src.l2.Debit(user, amount); err != nil {
		return 0, err
	}
	if err := b.world.chain.Transfer(src.orsc.Address(), b.escrow, amount); err != nil {
		// The source ORSC escrow cannot back the balance — roll the debit
		// back and surface the accounting failure.
		src.l2.Credit(user, amount)
		return 0, fmt.Errorf("escrow backing: %w", err)
	}
	src.rememberSnapshot()
	return b.recordLocked(&BridgeTransfer{
		Kind: BridgeWei, FromChain: fromChain, ToChain: toChain,
		User: user, Amount: amount,
		Deadline: src.orsc.Round() + src.orsc.ChallengePeriod(),
	}), nil
}

// SendToken initiates an ERC-721 transfer: the token is burned on the source
// rollup now and minted (same contract address, same id) on the destination
// after the source challenge window. If the destination cannot mint the id —
// already minted there, or the collection is sold out — the transfer bounces
// and the token is re-minted on the source chain at settlement.
func (b *Bridge) SendToken(fromChain, toChain uint64, user chainid.Address, tokenAddr chainid.Address, id uint64) (uint64, error) {
	b.world.mu.Lock()
	defer b.world.mu.Unlock()
	src, _, err := b.endpointsLocked(fromChain, toChain)
	if err != nil {
		return 0, err
	}
	tok, err := src.l2.Token(tokenAddr)
	if err != nil {
		return 0, err
	}
	if err := src.l2.BurnToken(tok, id, user); err != nil {
		return 0, err
	}
	src.rememberSnapshot()
	return b.recordLocked(&BridgeTransfer{
		Kind: BridgeToken, FromChain: fromChain, ToChain: toChain,
		User: user, Token: tokenAddr, TokenID: id,
		Deadline: src.orsc.Round() + src.orsc.ChallengePeriod(),
	}), nil
}

// Transfer returns a copy of the transfer record with the given id.
func (b *Bridge) Transfer(id uint64) (BridgeTransfer, error) {
	b.world.mu.Lock()
	defer b.world.mu.Unlock()
	if id >= uint64(len(b.transfers)) {
		return BridgeTransfer{}, fmt.Errorf("%w: %d", ErrUnknownTransfer, id)
	}
	return *b.transfers[id], nil
}

// Transfers returns a copy of every transfer record, in id order.
func (b *Bridge) Transfers() []BridgeTransfer {
	b.world.mu.Lock()
	defer b.world.mu.Unlock()
	out := make([]BridgeTransfer, len(b.transfers))
	for i, t := range b.transfers {
		out[i] = *t
	}
	return out
}

// PendingCount returns how many transfers are still in flight.
func (b *Bridge) PendingCount() int {
	b.world.mu.Lock()
	defer b.world.mu.Unlock()
	n := 0
	for _, t := range b.transfers {
		if t.Status == BridgePending {
			n++
		}
	}
	return n
}

// endpointsLocked resolves and validates the transfer endpoints.
func (b *Bridge) endpointsLocked(fromChain, toChain uint64) (src, dst *Node, err error) {
	if fromChain == toChain {
		return nil, nil, fmt.Errorf("%w: %d", ErrBridgeSameChain, fromChain)
	}
	src, ok := b.world.nodes[fromChain]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownChainID, fromChain)
	}
	dst, ok = b.world.nodes[toChain]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownChainID, toChain)
	}
	return src, dst, nil
}

// recordLocked appends a pending transfer and returns its id.
func (b *Bridge) recordLocked(t *BridgeTransfer) uint64 {
	t.ID = uint64(len(b.transfers))
	t.Status = BridgePending
	b.transfers = append(b.transfers, t)
	mBridgeInitiated.Inc()
	return t.ID
}

// settleLocked releases every pending transfer whose source chain's round
// passed the deadline, in id order. Callers hold the world mutex.
func (b *Bridge) settleLocked() {
	pending := 0
	for _, t := range b.transfers {
		if t.Status == BridgePending {
			pending++
		}
	}
	if pending == 0 {
		return
	}
	sp := trace.StartSpan(trace.SpanBridgeSettle, trace.Int("pending", int64(pending)))
	released, bounced := 0, 0
	for _, t := range b.transfers {
		if t.Status != BridgePending {
			continue
		}
		src := b.world.nodes[t.FromChain]
		if src.orsc.Round() <= t.Deadline {
			continue
		}
		dst := b.world.nodes[t.ToChain]
		switch t.Kind {
		case BridgeWei:
			if err := b.world.chain.Transfer(b.escrow, dst.orsc.Address(), t.Amount); err != nil {
				// Escrow shortfall would mean an accounting bug; leave the
				// transfer pending so conservation tests surface it.
				continue
			}
			dst.l2.Credit(t.User, t.Amount)
			dst.rememberSnapshot()
			t.Status = BridgeReleased
			released++
		case BridgeToken:
			if b.mintOnLocked(dst, t) {
				t.Status = BridgeReleased
				released++
			} else {
				// Destination rejected the id — restore it on the source
				// chain. The source burn freed the id and a supply slot, so
				// the re-mint cannot fail.
				b.mintOnLocked(src, t)
				t.Status = BridgeBounced
				bounced++
			}
		}
	}
	mBridgeReleased.Add(int64(released))
	mBridgeBounced.Add(int64(bounced))
	sp.SetAttr(trace.Int("released", int64(released)), trace.Int("bounced", int64(bounced)))
	sp.End()
}

// mintOnLocked mints the bridged token for its user on the given rollup,
// reporting success. It fails when the chain has no contract at the address,
// the id is already minted there, or the collection is sold out.
func (b *Bridge) mintOnLocked(n *Node, t *BridgeTransfer) bool {
	tok, err := n.l2.Token(t.Token)
	if err != nil {
		return false
	}
	if err := n.l2.MintToken(tok, t.User, t.TokenID); err != nil {
		return false
	}
	n.rememberSnapshot()
	return true
}
