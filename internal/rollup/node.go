// Package rollup ties the PAROLE substrates into the optimistic-rollup
// protocol of Fig. 1 / Section V-A: users deposit through the ORSC on L1,
// pending transactions wait in Bedrock's private mempool, aggregators
// collect fixed-size batches and execute them on the OVM, batches carry a
// Merkle state root as fraud proof, verifiers replay and challenge, and
// unchallenged batches finalize into L1 blocks.
//
// The Node is the authoritative bookkeeper; Aggregator and Verifier are the
// protocol actors. An adversarial aggregator differs from an honest one only
// in its Sequencer (see internal/core): it re-orders the batch it collected
// and nothing else, which is exactly the PAROLE threat model.
package rollup

import (
	"errors"
	"fmt"
	"sync"

	"parole/internal/chainid"
	"parole/internal/l1"
	"parole/internal/logx"
	"parole/internal/mempool"
	"parole/internal/ovm"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Protocol-flow metrics (docs/METRICS.md §rollup).
var (
	mBatchesCommitted = telemetry.Default().Counter("rollup.batches.committed")
	mBatchSize        = telemetry.Default().Histogram("rollup.batch.size", telemetry.SizeBuckets)
	mChallenges       = telemetry.Default().Counter("rollup.challenges")
	mChallengesUpheld = telemetry.Default().Counter("rollup.challenges.upheld")
)

// rollupLog is the protocol layer's structured logger — a strict no-op
// until a binary configures logx, so seeded experiment runs stay silent
// and bit-identical.
var rollupLog = logx.Component("rollup")

// Node errors.
var (
	ErrNotPermutation = errors.New("rollup: batch is not a permutation of the collected set")
	ErrUnknownPreRoot = errors.New("rollup: no snapshot for pre-state root")
	ErrEmptyBatch     = errors.New("rollup: empty batch")
)

// Config parameterizes a rollup deployment.
type Config struct {
	// ChainID distinguishes rollups sharing one L1 (a World); it selects the
	// per-rollup ORSC address. The zero id is the legacy single-chain
	// deployment, whose ORSC address is unchanged.
	ChainID uint64
	// GenesisL1Number is the first L1 block number (display realism only).
	GenesisL1Number uint64
	// ChallengePeriod in ORSC rounds.
	ChallengePeriod uint64
	// StateIndexBase offsets the L1 state index (Table III realism).
	StateIndexBase uint64
	// Mempool configures Bedrock's pool (shard count, capacity bound,
	// replacement policy). The zero value keeps the defaults.
	Mempool mempool.Config
}

// Node owns the canonical L2 state and wires the mempool, OVM, L1 chain, and
// ORSC together. Methods are safe for concurrent use.
type Node struct {
	// mu guards the node's mutable state. A standalone node owns its mutex;
	// nodes created through a World share the world's mutex, because they
	// share one L1 chain — the single-writer structure internal/l1 documents.
	mu *sync.Mutex

	chainID uint64
	l1chain *l1.Chain
	orsc    *l1.ORSC
	pool    *mempool.Pool
	vm      *ovm.VM
	l2      *state.State

	// snapshots maps a state root to the L2 state that produced it, so the
	// adjudicator can replay any batch and a revert can roll back.
	snapshots map[chainid.Hash]*state.State
}

// NewNode builds a standalone rollup deployment (a world of one) with an
// OVM-replaying adjudicator and a private L1 chain.
func NewNode(cfg Config) *Node {
	return newNodeOnChain(l1.NewChain(cfg.GenesisL1Number), &sync.Mutex{}, cfg)
}

// newNodeOnChain builds a rollup node anchored to an existing L1 chain,
// serializing access through the given (possibly shared) mutex.
func newNodeOnChain(chain *l1.Chain, mu *sync.Mutex, cfg Config) *Node {
	n := &Node{
		mu:        mu,
		chainID:   cfg.ChainID,
		l1chain:   chain,
		pool:      mempool.NewWithConfig(cfg.Mempool),
		vm:        ovm.New(),
		l2:        state.New(),
		snapshots: make(map[chainid.Hash]*state.State),
	}
	n.orsc = l1.NewORSC(
		n.l1chain,
		orscAddress(cfg.ChainID),
		l1.AdjudicatorFunc(n.adjudicate),
		l1.ORSCConfig{ChallengePeriod: cfg.ChallengePeriod, StateIndexBase: cfg.StateIndexBase},
	)
	n.rememberSnapshot()
	return n
}

// orscAddress derives the per-rollup contract address. Chain id 0 keeps the
// historical single-chain address so legacy deployments are untouched.
func orscAddress(chainID uint64) chainid.Address {
	if chainID == 0 {
		return chainid.DeriveAddress("orsc")
	}
	return chainid.DeriveAddress(fmt.Sprintf("orsc/%d", chainID))
}

// ChainID returns the rollup's chain id within its world (0 for standalone
// deployments).
func (n *Node) ChainID() uint64 { return n.chainID }

// L1 returns the underlying L1 chain.
func (n *Node) L1() *l1.Chain { return n.l1chain }

// ORSC returns the rollup contract.
func (n *Node) ORSC() *l1.ORSC { return n.orsc }

// Pool returns Bedrock's mempool.
func (n *Node) Pool() *mempool.Pool { return n.pool }

// VM returns the node's OVM.
func (n *Node) VM() *ovm.VM { return n.vm }

// L2State returns a snapshot (clone) of the canonical L2 state.
func (n *Node) L2State() *state.State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.l2.Clone()
}

// ViewL2 runs fn against the canonical L2 state under the node lock — a
// read-only view for serving queries (balances, ownership, token info)
// without paying a full state clone per request. fn must not mutate the
// state or retain references past its return.
func (n *Node) ViewL2(fn func(*state.State)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.l2)
}

// BatchCount returns the total number of batches ever submitted, under the
// node lock.
func (n *Node) BatchCount() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.orsc.BatchCount()
}

// Round returns the ORSC's current round counter, under the node lock.
func (n *Node) Round() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.orsc.Round()
}

// L2Root returns the canonical L2 state root.
func (n *Node) L2Root() chainid.Hash {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.l2.Root()
}

// SetupAccount funds an L1 account (faucet) — scenario construction.
func (n *Node) SetupAccount(addr chainid.Address, amount wei.Amount) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.l1chain.Fund(addr, amount)
}

// SetupL2 applies fn to the canonical L2 state (scenario construction, e.g.
// deploying the PT contract and pre-minting). It refreshes the root
// snapshot.
func (n *Node) SetupL2(fn func(*state.State) error) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := fn(n.l2); err != nil {
		return err
	}
	n.rememberSnapshot()
	return nil
}

// Deposit performs the user-side C^L1 → t^L2 exchange and immediately
// credits the L2 account (the rollup node processes deposit events at the
// next block in production; the simulator folds the two steps).
func (n *Node) Deposit(user chainid.Address, amount wei.Amount) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.orsc.Deposit(user, amount); err != nil {
		return err
	}
	for _, d := range n.orsc.DrainDeposits() {
		n.l2.Credit(d.User, d.Amount)
	}
	n.rememberSnapshot()
	return nil
}

// Withdraw initiates an L2→L1 exit: the user's L2 balance is debited
// immediately and the ETH pays out on L1 after the challenge window (the
// optimistic-rollup exit delay). It returns the withdrawal id.
func (n *Node) Withdraw(user chainid.Address, amount wei.Amount) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.l2.Debit(user, amount); err != nil {
		return 0, err
	}
	w, err := n.orsc.QueueWithdrawal(user, amount)
	if err != nil {
		// Roll the debit back; the withdrawal was rejected.
		n.l2.Credit(user, amount)
		return 0, err
	}
	n.rememberSnapshot()
	return w.ID, nil
}

// SubmitTx sends a user transaction into Bedrock's mempool, stamping the
// user's next L2 nonce.
func (n *Node) SubmitTx(t tx.Tx) error {
	_, err := n.Submit(t)
	return err
}

// Submit is SubmitTx returning the hash of the nonce-stamped transaction
// that actually entered the pool — the identity RPC clients correlate on.
func (n *Node) Submit(t tx.Tx) (chainid.Hash, error) {
	n.mu.Lock()
	nonce := n.l2.Nonce(t.From)
	n.mu.Unlock()
	stamped := t.WithNonce(nonce)
	if err := n.pool.Add(stamped); err != nil {
		return chainid.Hash{}, err
	}
	return stamped.Hash(), nil
}

// L1Height returns the L1 chain height under the node lock (the chain is
// mutated by AdvanceRound, so concurrent readers must come through here).
func (n *Node) L1Height() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.l1chain.Height()
}

// BatchStatusCounts tallies every submitted batch by lifecycle status,
// under the node lock.
func (n *Node) BatchStatusCounts() (pending, finalized, reverted uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := uint64(0); id < n.orsc.BatchCount(); id++ {
		b, err := n.orsc.Batch(id)
		if err != nil {
			continue
		}
		switch b.Status {
		case l1.BatchPending:
			pending++
		case l1.BatchFinalized:
			finalized++
		case l1.BatchReverted:
			reverted++
		}
	}
	return pending, finalized, reverted
}

// Collect pulls the next batch of up to size transactions from the mempool
// in fee order, paired with a clone of the current L2 state — exactly what
// an aggregator receives.
func (n *Node) Collect(size int) (tx.Seq, *state.State) {
	return n.pool.Collect(size), n.L2State()
}

// CommitBatch executes an ordered batch against the canonical L2 state,
// records the snapshot for adjudication, submits the batch and its fraud
// proof to the ORSC, and returns the batch record and execution result.
//
// collected must be the set the aggregator was handed; ordered must be a
// permutation of it. The permutation check models the mempool privacy rule:
// an aggregator can re-order, never inject or drop.
func (n *Node) CommitBatch(aggregator chainid.Address, collected, ordered tx.Seq) (*l1.Batch, *ovm.Result, error) {
	if len(ordered) == 0 {
		return nil, nil, ErrEmptyBatch
	}
	if !collected.SamePermutation(ordered) {
		return nil, nil, ErrNotPermutation
	}
	sp := trace.StartSpan(trace.SpanRollupCommit, trace.Int("batch_size", int64(len(ordered))))
	n.mu.Lock()
	defer n.mu.Unlock()
	res, err := n.vm.Execute(n.l2, ordered)
	if err != nil {
		sp.End()
		return nil, nil, fmt.Errorf("execute batch: %w", err)
	}
	batch, err := n.orsc.SubmitBatch(aggregator, ordered, res.PreRoot, res.PostRoot)
	if err != nil {
		sp.End()
		return nil, nil, fmt.Errorf("submit batch: %w", err)
	}
	// Optimistically advance the canonical state.
	n.l2 = res.State
	n.rememberSnapshot()
	mBatchesCommitted.Inc()
	mBatchSize.Observe(float64(len(ordered)))
	rollupLog.Debug("batch committed",
		logx.Uint64("batch", batch.ID),
		logx.Int("txs", len(ordered)),
		logx.Int("executed", res.Executed),
		logx.Str("postRoot", res.PostRoot.Hex()))
	if trace.Enabled() {
		for i, step := range res.Steps {
			trace.Event(step.Tx.Hash().Hex(), trace.StageRollupCommit, step.Status.String(),
				trace.Int("batch", int64(batch.ID)),
				trace.Int("pos", int64(i)))
		}
	}
	sp.SetAttr(trace.Int("batch", int64(batch.ID)),
		trace.Int("executed", int64(res.Executed)))
	sp.End()
	return batch, res, nil
}

// SubmitForgedBatch executes a batch but records a forged post-state root on
// the ORSC. It exists for failure-injection tests and the adversary example:
// a PAROLE aggregator does NOT need to forge roots (re-ordering yields a
// valid root), and a forged root is exactly what verifiers catch.
func (n *Node) SubmitForgedBatch(aggregator chainid.Address, ordered tx.Seq, forgedRoot chainid.Hash) (*l1.Batch, error) {
	if len(ordered) == 0 {
		return nil, ErrEmptyBatch
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	res, err := n.vm.Execute(n.l2, ordered)
	if err != nil {
		return nil, fmt.Errorf("execute batch: %w", err)
	}
	batch, err := n.orsc.SubmitBatch(aggregator, ordered, res.PreRoot, forgedRoot)
	if err != nil {
		return nil, fmt.Errorf("submit batch: %w", err)
	}
	// The forger still advances local state; a successful challenge rolls
	// it back.
	n.l2 = res.State
	n.rememberSnapshot()
	return batch, nil
}

// Challenge lets a verifier dispute a batch; on success the canonical L2
// state rolls back to the batch's pre-state.
func (n *Node) Challenge(verifier chainid.Address, batchID uint64) (bool, error) {
	sp := trace.StartSpan(trace.SpanRollupChallenge, trace.Int("batch", int64(batchID)))
	defer sp.End()
	n.mu.Lock()
	defer n.mu.Unlock()
	batch, err := n.orsc.Batch(batchID)
	if err != nil {
		return false, err
	}
	ok, err := n.orsc.Challenge(verifier, batchID)
	if err != nil {
		return false, err
	}
	sp.SetAttr(trace.Bool("upheld", ok))
	mChallenges.Inc()
	rollupLog.Info("challenge adjudicated",
		logx.Uint64("batch", batchID),
		logx.Str("verifier", verifier.Hex()),
		logx.Bool("upheld", ok))
	if ok {
		mChallengesUpheld.Inc()
		pre, found := n.snapshots[batch.PreRoot]
		if !found {
			return true, fmt.Errorf("%w: %s", ErrUnknownPreRoot, batch.PreRoot)
		}
		n.l2 = pre.Clone()
		rollupLog.Warn("state rolled back to pre-root",
			logx.Uint64("batch", batchID),
			logx.Str("preRoot", batch.PreRoot.Hex()))
	}
	return ok, nil
}

// AdvanceRound finalizes expired batches into L1 blocks.
func (n *Node) AdvanceRound() []l1.BatchAnchor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.orsc.AdvanceRound()
}

// PendingBatchIDs returns the ids of batches still in their challenge
// window, under the node lock (safe for concurrent actors).
func (n *Node) PendingBatchIDs() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	pending := n.orsc.PendingBatches()
	ids := make([]uint64, 0, len(pending))
	for _, b := range pending {
		ids = append(ids, b.ID)
	}
	return ids
}

// BatchInfo returns a copy of the batch record under the node lock.
func (n *Node) BatchInfo(batchID uint64) (l1.Batch, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, err := n.orsc.Batch(batchID)
	if err != nil {
		return l1.Batch{}, err
	}
	cp := *b
	cp.Txs = b.Txs.Clone()
	return cp, nil
}

// VerifierBond returns a verifier's remaining bond under the node lock.
func (n *Node) VerifierBond(addr chainid.Address) wei.Amount {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.orsc.VerifierBond(addr)
}

// ReplayBatch recomputes the honest post-root of a submitted batch — what a
// verifier does off-chain before deciding to challenge.
func (n *Node) ReplayBatch(batchID uint64) (chainid.Hash, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, err := n.orsc.Batch(batchID)
	if err != nil {
		return chainid.Hash{}, err
	}
	return n.adjudicate(*b)
}

// adjudicate is the ORSC's dispute oracle: replay the batch from its
// pre-state snapshot and report the correct post-root.
func (n *Node) adjudicate(b l1.Batch) (chainid.Hash, error) {
	// Called with n.mu held (Challenge) — read snapshots directly.
	pre, ok := n.snapshots[b.PreRoot]
	if !ok {
		return chainid.Hash{}, fmt.Errorf("%w: %s", ErrUnknownPreRoot, b.PreRoot)
	}
	res, err := n.vm.Execute(pre, b.Txs)
	if err != nil {
		return chainid.Hash{}, err
	}
	return res.PostRoot, nil
}

// rememberSnapshot stores a clone of the current L2 state under its root.
// Callers must hold n.mu.
func (n *Node) rememberSnapshot() {
	n.snapshots[n.l2.Root()] = n.l2.Clone()
}
