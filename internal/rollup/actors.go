package rollup

import (
	"fmt"

	"parole/internal/chainid"
	"parole/internal/l1"
	"parole/internal/ovm"
	"parole/internal/state"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Sequencer decides the execution order of a collected batch. An honest
// aggregator keeps the fee order it was handed; the PAROLE module
// (internal/core) implements an adversarial Sequencer.
type Sequencer interface {
	// Order returns the batch's execution order. It must return a
	// permutation of collected; the node rejects anything else.
	Order(collected tx.Seq, pre *state.State) (tx.Seq, error)
}

// IdentitySequencer keeps the collected (fee-priority) order — the honest
// behavior the protocol expects.
type IdentitySequencer struct{}

// Order implements Sequencer by returning the batch unchanged.
func (IdentitySequencer) Order(collected tx.Seq, _ *state.State) (tx.Seq, error) {
	return collected, nil
}

// Aggregator is a bonded rollup operator that collects batches from
// Bedrock's mempool, orders them with its Sequencer, executes, and submits.
type Aggregator struct {
	node *Node
	addr chainid.Address
	seq  Sequencer
	// BatchSize is the aggregator's "Mempool size" N in the paper's
	// terminology: how many transactions it collects per batch.
	BatchSize int
}

// NewAggregator registers a bonded aggregator on the node. A nil sequencer
// means honest (identity) ordering.
func NewAggregator(node *Node, addr chainid.Address, bond wei.Amount, batchSize int, seq Sequencer) (*Aggregator, error) {
	if seq == nil {
		seq = IdentitySequencer{}
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("rollup: batch size %d must be positive", batchSize)
	}
	if err := node.ORSC().RegisterAggregator(addr, bond); err != nil {
		return nil, fmt.Errorf("register aggregator: %w", err)
	}
	return &Aggregator{node: node, addr: addr, seq: seq, BatchSize: batchSize}, nil
}

// Address returns the aggregator's L1 address.
func (a *Aggregator) Address() chainid.Address { return a.addr }

// Step collects the next batch, orders it, and commits it. It returns
// (nil, nil, nil) when the mempool had nothing to collect.
func (a *Aggregator) Step() (*l1.Batch, *ovm.Result, error) {
	collected, pre := a.node.Collect(a.BatchSize)
	if len(collected) == 0 {
		return nil, nil, nil
	}
	ordered, err := a.seq.Order(collected, pre)
	if err != nil {
		return nil, nil, fmt.Errorf("sequence batch: %w", err)
	}
	batch, res, err := a.node.CommitBatch(a.addr, collected, ordered)
	if err != nil {
		return nil, nil, fmt.Errorf("commit batch: %w", err)
	}
	return batch, res, nil
}

// Verifier is a bonded watcher that replays pending batches and challenges
// invalid fraud proofs.
type Verifier struct {
	node *Node
	addr chainid.Address
}

// NewVerifier registers a bonded verifier on the node.
func NewVerifier(node *Node, addr chainid.Address, bond wei.Amount) (*Verifier, error) {
	if err := node.ORSC().RegisterVerifier(addr, bond); err != nil {
		return nil, fmt.Errorf("register verifier: %w", err)
	}
	return &Verifier{node: node, addr: addr}, nil
}

// Address returns the verifier's L1 address.
func (v *Verifier) Address() chainid.Address { return v.addr }

// Step inspects every pending batch, challenging those whose post-root does
// not match an honest replay. It returns the ids of batches it successfully
// challenged.
func (v *Verifier) Step() ([]uint64, error) {
	var challenged []uint64
	for _, id := range v.node.PendingBatchIDs() {
		if v.node.VerifierBond(v.addr) == 0 {
			break // slashed out of the game
		}
		info, err := v.node.BatchInfo(id)
		if err != nil {
			return challenged, fmt.Errorf("inspect batch %d: %w", id, err)
		}
		correct, err := v.node.ReplayBatch(id)
		if err != nil {
			return challenged, fmt.Errorf("replay batch %d: %w", id, err)
		}
		if correct == info.PostRoot {
			continue
		}
		ok, err := v.node.Challenge(v.addr, id)
		if err != nil {
			return challenged, fmt.Errorf("challenge batch %d: %w", id, err)
		}
		if ok {
			challenged = append(challenged, id)
		}
	}
	return challenged, nil
}
