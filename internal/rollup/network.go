package rollup

import (
	"fmt"
	"sync"

	"parole/internal/l1"
)

// Network drives a set of aggregators and verifiers against one node. It
// offers a deterministic synchronous round loop (RunRound) — what the
// experiment harness uses — and a concurrent mode (Start/Stop) in which each
// actor runs in its own goroutine, modeling independent rollup operators.
type Network struct {
	node        *Node
	aggregators []*Aggregator
	verifiers   []*Verifier

	mu      sync.Mutex
	running bool
	ticks   chan struct{}
	done    chan struct{}
	errs    []error
}

// NewNetwork assembles a network over node.
func NewNetwork(node *Node, aggregators []*Aggregator, verifiers []*Verifier) *Network {
	return &Network{node: node, aggregators: aggregators, verifiers: verifiers}
}

// RoundReport summarizes one synchronous protocol round.
type RoundReport struct {
	// Batches submitted this round, in aggregator order.
	Batches []*l1.Batch
	// Challenged lists batch ids successfully challenged this round.
	Challenged []uint64
	// Finalized lists the batch anchors sealed into L1 this round.
	Finalized []l1.BatchAnchor
}

// RunRound performs one deterministic protocol round: every aggregator
// collects and commits one batch, every verifier audits, and the ORSC clock
// advances (finalizing expired batches).
func (nw *Network) RunRound() (RoundReport, error) {
	var report RoundReport
	for i, agg := range nw.aggregators {
		batch, _, err := agg.Step()
		if err != nil {
			return report, fmt.Errorf("aggregator %d: %w", i, err)
		}
		if batch != nil {
			report.Batches = append(report.Batches, batch)
		}
	}
	for i, v := range nw.verifiers {
		challenged, err := v.Step()
		if err != nil {
			return report, fmt.Errorf("verifier %d: %w", i, err)
		}
		report.Challenged = append(report.Challenged, challenged...)
	}
	report.Finalized = nw.node.AdvanceRound()
	return report, nil
}

// RunRounds executes k rounds, stopping early on error.
func (nw *Network) RunRounds(k int) ([]RoundReport, error) {
	reports := make([]RoundReport, 0, k)
	for i := 0; i < k; i++ {
		r, err := nw.RunRound()
		if err != nil {
			return reports, fmt.Errorf("round %d: %w", i, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// Start launches every actor in its own goroutine. Actors process one
// protocol step per Tick. Call Stop to shut the network down and collect any
// actor errors. Start is a no-op if already running.
func (nw *Network) Start() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.running {
		return
	}
	nw.running = true
	nw.ticks = make(chan struct{})
	nw.done = make(chan struct{})
	nw.errs = nil

	var wg sync.WaitGroup
	// Fan each tick out to every actor; a coordinator goroutine owns the
	// per-actor channels so shutdown is a single close.
	actorTicks := make([]chan struct{}, 0, len(nw.aggregators)+len(nw.verifiers))
	spawn := func(step func() error) {
		ch := make(chan struct{}, 1)
		actorTicks = append(actorTicks, ch)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch {
				if err := step(); err != nil {
					nw.recordErr(err)
				}
			}
		}()
	}
	for _, agg := range nw.aggregators {
		agg := agg
		spawn(func() error {
			_, _, err := agg.Step()
			return err
		})
	}
	for _, v := range nw.verifiers {
		v := v
		spawn(func() error {
			_, err := v.Step()
			return err
		})
	}

	ticks, done, node := nw.ticks, nw.done, nw.node
	go func() {
		defer close(done)
		for range ticks {
			for _, ch := range actorTicks {
				ch <- struct{}{}
			}
			// Wait for the fan-out to drain before advancing the round:
			// per-actor channels have capacity 1 and actors consume in
			// order, so a second send would block until the first step
			// completed. We instead advance optimistically each tick;
			// batches submitted late simply finalize a round later, which
			// is exactly the asynchrony of real rollup operators.
			node.AdvanceRound()
		}
		for _, ch := range actorTicks {
			close(ch)
		}
		wg.Wait()
	}()
}

// Tick triggers one asynchronous protocol round. It blocks until every actor
// has been handed the tick (not until they finish).
func (nw *Network) Tick() {
	nw.mu.Lock()
	ticks := nw.ticks
	running := nw.running
	nw.mu.Unlock()
	if running {
		ticks <- struct{}{}
	}
}

// Stop shuts the concurrent network down, waits for all actors to exit, and
// returns any errors they hit.
func (nw *Network) Stop() []error {
	nw.mu.Lock()
	if !nw.running {
		nw.mu.Unlock()
		return nil
	}
	nw.running = false
	ticks, done := nw.ticks, nw.done
	nw.mu.Unlock()

	close(ticks)
	<-done

	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.errs
}

func (nw *Network) recordErr(err error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.errs = append(nw.errs, err)
}
