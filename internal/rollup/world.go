package rollup

import (
	"errors"
	"fmt"
	"sync"

	"parole/internal/l1"
)

// World errors.
var (
	ErrDuplicateChainID = errors.New("rollup: chain id already registered in world")
	ErrUnknownChainID   = errors.New("rollup: unknown chain id")
)

// WorldConfig parameterizes the shared L1 underneath a multi-rollup world.
type WorldConfig struct {
	// GenesisL1Number is the shared chain's first block number.
	GenesisL1Number uint64
}

// World is N rollups anchored to one shared L1 chain. Each rollup keeps its
// own chain id, mempool, OVM, state tree, and challenge game; the world owns
// the L1 they all settle on and the bridge that moves assets between them.
//
// All rollups in a world share one mutex (the L1 chain is a single-writer
// structure), so any interleaving of per-rollup operations is race-free:
// batch commits, challenges, and bridge settlements serialize in call order.
type World struct {
	mu     sync.Mutex
	chain  *l1.Chain
	nodes  map[uint64]*Node
	order  []uint64 // chain ids in registration order, for deterministic iteration
	bridge *Bridge
}

// NewWorld creates an empty world over a fresh shared L1 chain.
func NewWorld(cfg WorldConfig) *World {
	w := &World{
		chain: l1.NewChain(cfg.GenesisL1Number),
		nodes: make(map[uint64]*Node),
	}
	w.bridge = newBridge(w)
	return w
}

// AddRollup deploys a new rollup (its ORSC and node) on the world's L1. The
// config's GenesisL1Number is ignored — the world's chain already exists.
// Chain ids must be unique within the world.
func (w *World) AddRollup(cfg Config) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.nodes[cfg.ChainID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateChainID, cfg.ChainID)
	}
	n := newNodeOnChain(w.chain, &w.mu, cfg)
	w.nodes[cfg.ChainID] = n
	w.order = append(w.order, cfg.ChainID)
	return n, nil
}

// L1 returns the shared chain.
func (w *World) L1() *l1.Chain { return w.chain }

// Bridge returns the world's cross-rollup bridge.
func (w *World) Bridge() *Bridge { return w.bridge }

// Rollup returns the node with the given chain id.
func (w *World) Rollup(chainID uint64) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, ok := w.nodes[chainID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownChainID, chainID)
	}
	return n, nil
}

// Rollups returns every node in registration order.
func (w *World) Rollups() []*Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*Node, len(w.order))
	for i, id := range w.order {
		out[i] = w.nodes[id]
	}
	return out
}

// ChainIDs returns the registered chain ids in registration order.
func (w *World) ChainIDs() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]uint64(nil), w.order...)
}

// AdvanceRound moves every rollup's ORSC clock one round forward (in
// registration order — finalized batches of different rollups land in
// separate L1 blocks, preserving per-rollup anchoring), then settles every
// bridge transfer whose source-chain challenge window has closed. It returns
// the finalized anchors keyed by chain id.
func (w *World) AdvanceRound() map[uint64][]l1.BatchAnchor {
	w.mu.Lock()
	defer w.mu.Unlock()
	anchors := make(map[uint64][]l1.BatchAnchor, len(w.order))
	for _, id := range w.order {
		anchors[id] = w.nodes[id].orsc.AdvanceRound()
	}
	w.bridge.settleLocked()
	return anchors
}
