package rollup

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/mempool"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// scaleNode builds a node with many funded senders and a large collection so
// the mempool spreads over every shard.
func scaleNode(t *testing.T, cfg Config, senders int) *Node {
	t.Helper()
	node := NewNode(cfg)
	if err := node.SetupL2(func(st *state.State) error {
		pt, err := token.Deploy(ptAddr, token.Config{
			Name: "ParoleToken", Symbol: "PT",
			MaxSupply: 1 << 20, InitialPrice: wei.FromFloat(0.001),
		})
		if err != nil {
			return err
		}
		if err := st.DeployToken(pt); err != nil {
			return err
		}
		for i := 0; i < senders; i++ {
			st.SetBalance(chainid.UserAddress(i), wei.FromETH(100))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return node
}

// submitWorkload pushes an identical transaction stream into the node's
// pool: mints from rotating senders with colliding fees so ordering leans on
// demotion flags and arrival stamps, not just fee values.
func submitWorkload(t *testing.T, node *Node, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		m := tx.Mint(ptAddr, uint64(i), chainid.UserAddress(i%41)).
			WithFees(wei.Amount(1+i%13), wei.Amount(i%5))
		h, err := node.Submit(m)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%23 == 0 {
			if err := node.Pool().Demote(h); err != nil {
				t.Fatalf("demote %d: %v", i, err)
			}
		}
	}
}

// TestShardedCollectSealsIdenticalBatches is the pipeline-level determinism
// check: two identically provisioned nodes fed the same workload, one over
// the default shard count and one over 32 shards, must seal byte-identical
// batches and converge on the same state root.
func TestShardedCollectSealsIdenticalBatches(t *testing.T) {
	const txs, batchSize = 300, 64
	serial := scaleNode(t, Config{ChallengePeriod: 1}, 48)
	parallel := scaleNode(t, Config{
		ChallengePeriod: 1,
		Mempool:         mempool.Config{Shards: 32},
	}, 48)
	submitWorkload(t, serial, txs)
	submitWorkload(t, parallel, txs)

	agg := chainid.AggregatorAddress(9)
	for _, n := range []*Node{serial, parallel} {
		n.SetupAccount(agg, wei.FromETH(10))
		if err := n.ORSC().RegisterAggregator(agg, wei.FromETH(5)); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; ; round++ {
		bs, _ := serial.Collect(batchSize)
		bp, _ := parallel.Collect(batchSize)
		if len(bs) != len(bp) {
			t.Fatalf("round %d: batch sizes %d vs %d", round, len(bs), len(bp))
		}
		if len(bs) == 0 {
			break
		}
		for i := range bs {
			if bs[i] != bp[i] {
				t.Fatalf("round %d: batches diverge at %d:\n serial   %v\n parallel %v",
					round, i, bs[i], bp[i])
			}
		}
		if bs.Hash() != bp.Hash() {
			t.Fatalf("round %d: batch digests differ", round)
		}
		rs, _, err := serial.CommitBatch(agg, bs, bs)
		if err != nil {
			t.Fatalf("round %d serial commit: %v", round, err)
		}
		rp, _, err := parallel.CommitBatch(agg, bp, bp)
		if err != nil {
			t.Fatalf("round %d parallel commit: %v", round, err)
		}
		if rs.PostRoot != rp.PostRoot {
			t.Fatalf("round %d: post roots diverge: %s vs %s", round, rs.PostRoot, rp.PostRoot)
		}
	}
	if sr, pr := serial.L2Root(), parallel.L2Root(); sr != pr {
		t.Fatalf("final roots diverge: %s vs %s", sr, pr)
	}
}

// TestMempoolConfigPlumbing checks the Config.Mempool knobs reach the pool.
func TestMempoolConfigPlumbing(t *testing.T) {
	node := NewNode(Config{Mempool: mempool.Config{Shards: 4, Capacity: 7}})
	cfg := node.Pool().Config()
	if cfg.Shards != 4 || cfg.Capacity != 7 {
		t.Fatalf("pool config = %+v, want Shards 4 Capacity 7", cfg)
	}
	if got := NewNode(Config{}).Pool().Config().Shards; got != mempool.DefaultShards {
		t.Fatalf("default shards = %d, want %d", got, mempool.DefaultShards)
	}
}
