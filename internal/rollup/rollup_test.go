package rollup

import (
	"errors"
	"testing"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

var (
	ptAddr = chainid.DeriveAddress("pt-contract")
	alice  = chainid.UserAddress(1)
	bob    = chainid.UserAddress(2)
	aggA   = chainid.AggregatorAddress(1)
	verA   = chainid.VerifierAddress(1)
)

// newDeployment builds a node with a PT contract, funded/bonded actors, and
// L2 balances for alice and bob.
func newDeployment(t *testing.T) (*Node, *Aggregator, *Verifier) {
	t.Helper()
	node := NewNode(Config{GenesisL1Number: 17_934_498, ChallengePeriod: 1, StateIndexBase: 115_921})
	node.SetupAccount(alice, wei.FromETH(20))
	node.SetupAccount(bob, wei.FromETH(20))
	node.SetupAccount(aggA, wei.FromETH(10))
	node.SetupAccount(verA, wei.FromETH(10))
	if err := node.SetupL2(func(st *state.State) error {
		pt, err := token.Deploy(ptAddr, token.Config{
			Name: "ParoleToken", Symbol: "PT",
			MaxSupply: 10, InitialPrice: wei.FromFloat(0.2),
		})
		if err != nil {
			return err
		}
		return st.DeployToken(pt)
	}); err != nil {
		t.Fatal(err)
	}
	if err := node.Deposit(alice, wei.FromETH(5)); err != nil {
		t.Fatal(err)
	}
	if err := node.Deposit(bob, wei.FromETH(5)); err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(node, aggA, wei.FromETH(5), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := NewVerifier(node, verA, wei.FromETH(5))
	if err != nil {
		t.Fatal(err)
	}
	return node, agg, ver
}

func TestDepositCreditsL2(t *testing.T) {
	node, _, _ := newDeployment(t)
	if got := node.L2State().Balance(alice); got != wei.FromETH(5) {
		t.Fatalf("L2 balance = %s, want 5", got)
	}
	if got := node.L1().Balance(alice); got != wei.FromETH(15) {
		t.Fatalf("L1 balance = %s, want 15", got)
	}
}

func TestEndToEndBatchLifecycle(t *testing.T) {
	node, agg, _ := newDeployment(t)
	if err := node.SubmitTx(tx.Mint(ptAddr, 0, alice).WithFees(10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := node.SubmitTx(tx.Mint(ptAddr, 1, bob).WithFees(10, 1)); err != nil {
		t.Fatal(err)
	}

	batch, res, err := agg.Step()
	if err != nil {
		t.Fatal(err)
	}
	if batch == nil || res == nil {
		t.Fatal("aggregator found no work")
	}
	if res.Executed != 2 {
		t.Fatalf("executed = %d, want 2", res.Executed)
	}
	// Fee ordering: alice's higher-tip mint goes first.
	if batch.Txs[0].From != alice {
		t.Fatal("fee-priority ordering violated")
	}
	// State advanced: both tokens minted at 0.2 then 10/9*0.2.
	st := node.L2State()
	pt, err := st.Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Minted() != 2 {
		t.Fatalf("minted = %d", pt.Minted())
	}

	// Finalization after the challenge window.
	node.AdvanceRound() // round 1 == deadline
	anchors := node.AdvanceRound()
	if len(anchors) != 1 {
		t.Fatalf("anchors = %v", anchors)
	}
	if anchors[0].StateIndex != 115_922 {
		t.Fatalf("state index = %d, want 115922 (Table III)", anchors[0].StateIndex)
	}
	if node.L1().Height() != 17_934_499 {
		t.Fatalf("L1 height = %d, want 17934499 (Table III)", node.L1().Height())
	}
}

func TestAggregatorIdleWithEmptyPool(t *testing.T) {
	_, agg, _ := newDeployment(t)
	batch, res, err := agg.Step()
	if err != nil {
		t.Fatal(err)
	}
	if batch != nil || res != nil {
		t.Fatal("Step on empty pool should be a no-op")
	}
}

func TestCommitBatchRejectsNonPermutation(t *testing.T) {
	node, _, _ := newDeployment(t)
	collected := tx.Seq{tx.Mint(ptAddr, 0, alice)}
	injected := tx.Seq{tx.Mint(ptAddr, 0, alice), tx.Mint(ptAddr, 1, bob)}
	if _, _, err := node.CommitBatch(aggA, collected, injected); !errors.Is(err, ErrNotPermutation) {
		t.Fatalf("injection = %v, want ErrNotPermutation", err)
	}
	if _, _, err := node.CommitBatch(aggA, nil, nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch = %v, want ErrEmptyBatch", err)
	}
}

func TestReorderedBatchPassesVerification(t *testing.T) {
	// The PAROLE property: a *re-ordered* batch produces a valid fraud
	// proof, so an honest verifier has nothing to challenge.
	node, _, ver := newDeployment(t)
	collected := tx.Seq{
		tx.Mint(ptAddr, 0, alice).WithFees(10, 5),
		tx.Mint(ptAddr, 1, bob).WithFees(10, 1),
	}
	reordered := tx.Seq{collected[1], collected[0]}
	batch, _, err := node.CommitBatch(aggA, collected, reordered)
	if err != nil {
		t.Fatal(err)
	}
	challenged, err := ver.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(challenged) != 0 {
		t.Fatal("verifier challenged a correctly-executed reordered batch")
	}
	correct, err := node.ReplayBatch(batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if correct != batch.PostRoot {
		t.Fatal("replay disagrees with submitted root")
	}
}

func TestForgedRootGetsChallengedAndRolledBack(t *testing.T) {
	node, _, ver := newDeployment(t)
	rootBefore := node.L2Root()
	forged := chainid.HashBytes([]byte("forged"))
	batch, err := node.SubmitForgedBatch(aggA, tx.Seq{tx.Mint(ptAddr, 0, alice)}, forged)
	if err != nil {
		t.Fatal(err)
	}
	// The forger optimistically advanced the state.
	if node.L2Root() == rootBefore {
		t.Fatal("forged batch did not advance local state")
	}
	challenged, err := ver.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(challenged) != 1 || challenged[0] != batch.ID {
		t.Fatalf("challenged = %v, want [%d]", challenged, batch.ID)
	}
	// Rollback restored the pre-state and the aggregator lost its bond.
	if node.L2Root() != rootBefore {
		t.Fatal("challenge did not roll back L2 state")
	}
	if node.ORSC().AggregatorBond(aggA) != 0 {
		t.Fatal("fraudulent aggregator kept its bond")
	}
}

func TestNetworkRunRounds(t *testing.T) {
	node, agg, ver := newDeployment(t)
	for i := uint64(0); i < 6; i++ {
		user := alice
		if i%2 == 1 {
			user = bob
		}
		if err := node.SubmitTx(tx.Mint(ptAddr, i, user).WithFees(wei.Amount(10+i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	nw := NewNetwork(node, []*Aggregator{agg}, []*Verifier{ver})
	reports, err := nw.RunRounds(3)
	if err != nil {
		t.Fatal(err)
	}
	var batches, finalized int
	for _, r := range reports {
		batches += len(r.Batches)
		finalized += len(r.Finalized)
		if len(r.Challenged) != 0 {
			t.Fatal("honest network produced challenges")
		}
	}
	if batches != 1 {
		t.Fatalf("batches = %d, want 1 (all 6 txs fit one batch of 8)", batches)
	}
	if finalized != 1 {
		t.Fatalf("finalized = %d, want 1", finalized)
	}
	pt, err := node.L2State().Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Minted() != 6 {
		t.Fatalf("minted = %d, want 6", pt.Minted())
	}
}

func TestNetworkConcurrentLifecycle(t *testing.T) {
	node, agg, ver := newDeployment(t)
	for i := uint64(0); i < 4; i++ {
		if err := node.SubmitTx(tx.Mint(ptAddr, i, alice).WithFees(1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	nw := NewNetwork(node, []*Aggregator{agg}, []*Verifier{ver})
	nw.Start()
	nw.Start() // idempotent
	for i := 0; i < 5; i++ {
		nw.Tick()
	}
	if errs := nw.Stop(); len(errs) != 0 {
		t.Fatalf("actor errors: %v", errs)
	}
	if errs := nw.Stop(); errs != nil {
		t.Fatal("double Stop should be a no-op")
	}
	pt, err := node.L2State().Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Minted() != 4 {
		t.Fatalf("minted = %d, want 4", pt.Minted())
	}
}

func TestNewAggregatorValidation(t *testing.T) {
	node, _, _ := newDeployment(t)
	if _, err := NewAggregator(node, chainid.AggregatorAddress(2), wei.FromETH(100), 8, nil); err == nil {
		t.Fatal("unfunded aggregator bond should fail")
	}
	node.SetupAccount(chainid.AggregatorAddress(3), wei.FromETH(10))
	if _, err := NewAggregator(node, chainid.AggregatorAddress(3), wei.FromETH(1), 0, nil); err == nil {
		t.Fatal("zero batch size should fail")
	}
}
