package rollup

import (
	"testing"

	"parole/internal/tx"
	"parole/internal/wei"
)

// TestWithdrawLifecycle: an L2→L1 exit debits L2 immediately and pays out on
// L1 only after the challenge window (the optimistic exit delay).
func TestWithdrawLifecycle(t *testing.T) {
	node, _, _ := newDeployment(t)
	l1Before := node.L1().Balance(alice)

	id, err := node.Withdraw(alice, wei.FromETH(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := node.L2State().Balance(alice); got != wei.FromETH(3) {
		t.Fatalf("L2 balance after withdraw = %s, want 3", got)
	}
	if got := node.L1().Balance(alice); got != l1Before {
		t.Fatal("withdrawal paid out before the challenge window")
	}
	w, err := node.ORSC().Withdrawal(id)
	if err != nil {
		t.Fatal(err)
	}
	if w.Paid {
		t.Fatal("withdrawal marked paid immediately")
	}

	// Challenge period is 1 round: round 1 is the deadline, round 2 pays.
	node.AdvanceRound()
	if w.Paid {
		t.Fatal("paid at the deadline round")
	}
	node.AdvanceRound()
	if !w.Paid {
		t.Fatal("withdrawal not paid after the window")
	}
	if got := node.L1().Balance(alice); got != l1Before+wei.FromETH(2) {
		t.Fatalf("L1 balance after payout = %s", got)
	}
}

func TestWithdrawValidation(t *testing.T) {
	node, _, _ := newDeployment(t)
	if _, err := node.Withdraw(alice, wei.FromETH(100)); err == nil {
		t.Fatal("overdraft withdrawal accepted")
	}
	// A failed withdrawal must not change the L2 balance.
	if got := node.L2State().Balance(alice); got != wei.FromETH(5) {
		t.Fatalf("balance after failed withdrawal = %s", got)
	}
	if _, err := node.Withdraw(alice, 0); err == nil {
		t.Fatal("zero withdrawal accepted")
	}
	// The zero-amount rejection happens after the debit; balance restored.
	if got := node.L2State().Balance(alice); got != wei.FromETH(5) {
		t.Fatalf("balance after zero withdrawal = %s", got)
	}
}

// TestDepositWithdrawRoundTripConservesL1 checks the full C^L1 → t^L2 → C^L1
// cycle conserves total L1 supply.
func TestDepositWithdrawRoundTripConservesL1(t *testing.T) {
	node, _, _ := newDeployment(t)
	supply := node.L1().TotalSupply()
	if _, err := node.Withdraw(alice, wei.FromETH(5)); err != nil {
		t.Fatal(err)
	}
	node.AdvanceRound()
	node.AdvanceRound()
	if got := node.L1().TotalSupply(); got != supply {
		t.Fatalf("L1 supply changed: %s -> %s", supply, got)
	}
	// Alice is back to her pre-deposit L1 holdings.
	if got := node.L1().Balance(alice); got != wei.FromETH(20) {
		t.Fatalf("alice L1 balance = %s, want 20", got)
	}
	if got := node.L2State().Balance(alice); got != 0 {
		t.Fatalf("alice L2 balance = %s, want 0", got)
	}
}

// TestWithdrawDoesNotCorruptSnapshots: withdrawing between batches keeps the
// adjudication snapshots coherent (replay still matches).
func TestWithdrawDoesNotCorruptSnapshots(t *testing.T) {
	node, agg, ver := newDeployment(t)
	if err := node.SubmitTx(tx.Mint(ptAddr, 0, alice).WithFees(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := agg.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Withdraw(alice, wei.FromETH(1)); err != nil {
		t.Fatal(err)
	}
	if err := node.SubmitTx(tx.Mint(ptAddr, 1, bob).WithFees(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := agg.Step(); err != nil {
		t.Fatal(err)
	}
	challenged, err := ver.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(challenged) != 0 {
		t.Fatal("honest batches challenged after a withdrawal")
	}
}
