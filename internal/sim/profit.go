package sim

import (
	"fmt"
	"math/rand"

	"parole/internal/ovm"
	"parole/internal/wei"
)

// Fig6Config parameterizes the Fig. 6 sweep: average attack profit per IFU
// while serving different numbers of IFUs, across mempool sizes, for a given
// adversarial share of the aggregator set.
type Fig6Config struct {
	// MempoolSizes to sweep (paper: 10, 25, 50, 100).
	MempoolSizes []int
	// IFUCounts to sweep (paper: 1–4).
	IFUCounts []int
	// AdversarialFraction of the aggregator population (paper: 0.10, 0.50).
	AdversarialFraction float64
	// Aggregators is the total aggregator population (default 10).
	Aggregators int
	// Trials per cell (independent scenarios per adversarial aggregator).
	Trials int
	// Optimizer backend and budget.
	Optimizer OptimizerConfig
	// Seed for the sweep's RNG.
	Seed int64
}

// DefaultFig6Config returns the paper's grid with a laptop-scale budget.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		MempoolSizes:        []int{10, 25, 50, 100},
		IFUCounts:           []int{1, 2, 3, 4},
		AdversarialFraction: 0.10,
		Aggregators:         10,
		Trials:              2,
		Optimizer:           DefaultOptimizer(),
		Seed:                1,
	}
}

// Fig6Row is one point of Fig. 6: the average profit per served IFU,
// accumulated across all adversarial aggregators in an epoch.
type Fig6Row struct {
	MempoolSize     int
	IFUs            int
	AdversarialFrac float64
	// AvgProfitPerIFU is the per-epoch profit an IFU accumulates across
	// every adversarial aggregator, averaged over trials.
	AvgProfitPerIFU wei.Amount
	// Batches optimized for this cell.
	Batches int
}

// RunFig6 produces the Fig. 6 series.
func RunFig6(cfg Fig6Config) ([]Fig6Row, error) {
	if err := validateSweep(cfg.MempoolSizes, cfg.IFUCounts, cfg.Trials); err != nil {
		return nil, err
	}
	if cfg.Aggregators <= 0 {
		cfg.Aggregators = 10
	}
	advCount := adversaryCount(cfg.Aggregators, cfg.AdversarialFraction)
	rng := rand.New(rand.NewSource(cfg.Seed))
	vm := ovm.New()

	var rows []Fig6Row
	for _, n := range cfg.MempoolSizes {
		for _, k := range cfg.IFUCounts {
			row := Fig6Row{MempoolSize: n, IFUs: k, AdversarialFrac: cfg.AdversarialFraction}
			var total wei.Amount
			for trial := 0; trial < cfg.Trials; trial++ {
				for a := 0; a < advCount; a++ {
					sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: n, NumIFUs: k})
					if err != nil {
						return nil, fmt.Errorf("fig6 n=%d k=%d: %w", n, k, err)
					}
					out, err := OptimizeBatch(rng, vm, sc, cfg.Optimizer)
					if err != nil {
						return nil, fmt.Errorf("fig6 n=%d k=%d: %w", n, k, err)
					}
					total += out.Improvement
					row.Batches++
				}
			}
			// Per-IFU profit accumulates across every adversarial
			// aggregator serving the IFU in an epoch — which is why the
			// paper's 50%-adversarial case is substantially higher than
			// the 10% one — and averages over trials and IFUs.
			row.AvgProfitPerIFU = total.Div(int64(cfg.Trials * k))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig7Config parameterizes the Fig. 7 sweep: total profit across all IFUs
// versus the adversarial share of aggregators.
type Fig7Config struct {
	// AdversarialPercents to sweep (paper: 10–50).
	AdversarialPercents []int
	// MempoolSizes to sweep (paper plots 25, 50, 100).
	MempoolSizes []int
	// IFUs served (paper: subfigure (a) 1, (b) 2).
	IFUs int
	// Aggregators population (default 10).
	Aggregators int
	// Trials per cell.
	Trials int
	// Optimizer backend and budget.
	Optimizer OptimizerConfig
	// Seed for the sweep's RNG.
	Seed int64
}

// DefaultFig7Config returns the paper's grid with a laptop-scale budget.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		AdversarialPercents: []int{10, 20, 30, 40, 50},
		MempoolSizes:        []int{25, 50, 100},
		IFUs:                1,
		Aggregators:         10,
		Trials:              2,
		Optimizer:           DefaultOptimizer(),
		Seed:                2,
	}
}

// Fig7Row is one point of Fig. 7.
type Fig7Row struct {
	AdversarialPercent int
	MempoolSize        int
	IFUs               int
	// TotalProfit summed over every adversarial aggregator, averaged over
	// trials.
	TotalProfit wei.Amount
	// TotalProfitSats is the same quantity on the paper's satoshi axis.
	TotalProfitSats int64
}

// RunFig7 produces the Fig. 7 series.
func RunFig7(cfg Fig7Config) ([]Fig7Row, error) {
	if err := validateSweep(cfg.MempoolSizes, []int{cfg.IFUs}, cfg.Trials); err != nil {
		return nil, err
	}
	if cfg.Aggregators <= 0 {
		cfg.Aggregators = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vm := ovm.New()

	var rows []Fig7Row
	for _, pct := range cfg.AdversarialPercents {
		for _, n := range cfg.MempoolSizes {
			advCount := adversaryCount(cfg.Aggregators, float64(pct)/100)
			var total wei.Amount
			for trial := 0; trial < cfg.Trials; trial++ {
				for a := 0; a < advCount; a++ {
					sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: n, NumIFUs: cfg.IFUs})
					if err != nil {
						return nil, fmt.Errorf("fig7 pct=%d n=%d: %w", pct, n, err)
					}
					out, err := OptimizeBatch(rng, vm, sc, cfg.Optimizer)
					if err != nil {
						return nil, fmt.Errorf("fig7 pct=%d n=%d: %w", pct, n, err)
					}
					total += out.Improvement
				}
			}
			avg := total.Div(int64(cfg.Trials))
			rows = append(rows, Fig7Row{
				AdversarialPercent: pct,
				MempoolSize:        n,
				IFUs:               cfg.IFUs,
				TotalProfit:        avg,
				TotalProfitSats:    avg.Sats(),
			})
		}
	}
	return rows, nil
}

// adversaryCount converts a fraction of the population to a count, at least
// one adversary when the fraction is positive.
func adversaryCount(population int, fraction float64) int {
	count := int(float64(population)*fraction + 0.5)
	if count < 1 && fraction > 0 {
		count = 1
	}
	return count
}

func validateSweep(mempools, ifus []int, trials int) error {
	if len(mempools) == 0 || len(ifus) == 0 {
		return fmt.Errorf("%w: empty sweep axes", ErrBadScenario)
	}
	if trials <= 0 {
		return fmt.Errorf("%w: trials %d", ErrBadScenario, trials)
	}
	return nil
}
