package sim

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"parole/internal/ovm"
)

// TestRegisteredOptimizers pins the built-in backend set (sorted, as
// RegisteredOptimizers promises) — the kinds parole-bench -h advertises.
func TestRegisteredOptimizers(t *testing.T) {
	kinds := RegisteredOptimizers()
	if !sort.SliceIsSorted(kinds, func(i, j int) bool { return kinds[i] < kinds[j] }) {
		t.Fatalf("RegisteredOptimizers not sorted: %v", kinds)
	}
	want := []OptimizerKind{OptDQN, OptHillClimb, OptAnneal, OptBranchBound, OptHillClimbParallel, OptAnnealParallel}
	have := map[OptimizerKind]bool{}
	for _, k := range kinds {
		have[k] = true
	}
	for _, k := range want {
		if !have[k] {
			t.Errorf("built-in backend %q not registered (got %v)", k, kinds)
		}
	}
	names := RegisteredOptimizerNames()
	if len(names) != len(kinds) {
		t.Fatalf("RegisteredOptimizerNames length %d, want %d", len(names), len(kinds))
	}
}

// TestUnknownBackendError checks the typed unknown-backend failure: it
// matches ErrUnknownBackend via errors.Is and its message lists every
// registered kind so a command-line typo is self-correcting.
func TestUnknownBackendError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 8, NumIFUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = OptimizeBatch(rng, ovm.New(), sc, OptimizerConfig{Kind: "bogus"})
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("OptimizeBatch(bogus) error = %v, want ErrUnknownBackend", err)
	}
	var unknown *UnknownBackendError
	if !errors.As(err, &unknown) {
		t.Fatalf("error type = %T, want *UnknownBackendError", err)
	}
	if unknown.Kind != "bogus" {
		t.Fatalf("unknown.Kind = %q", unknown.Kind)
	}
	for _, kind := range RegisteredOptimizers() {
		if !strings.Contains(err.Error(), string(kind)) {
			t.Errorf("error %q does not list registered backend %q", err, kind)
		}
	}
}

// TestRegisterOptimizerPanics checks the registration guard rails: empty
// kinds, nil funcs, and duplicates are init-path programming errors.
func TestRegisterOptimizerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty kind", func() { RegisterOptimizer("", nil) })
	mustPanic("nil func", func() {
		RegisterOptimizer("nil-func", nil)
	})
	mustPanic("duplicate", func() {
		RegisterOptimizer(OptDQN, func(*rand.Rand, *ovm.VM, *Scenario, OptimizerConfig) (AttackOutcome, error) {
			return AttackOutcome{}, nil
		})
	})
}

// TestEmptyKindDefaultsToDQN pins the legacy convenience: an unset Kind
// selects the paper's attack.
func TestEmptyKindDefaultsToDQN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 6, NumIFUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := DefaultOptimizer().Gen
	gen.Episodes, gen.MaxSteps = 1, 4
	out, err := OptimizeBatch(rng, ovm.New(), sc, OptimizerConfig{Gen: gen})
	if err != nil {
		t.Fatalf("empty kind: %v", err)
	}
	if out.InferenceSwaps < -1 {
		t.Fatalf("InferenceSwaps = %d", out.InferenceSwaps)
	}
}
