// Package sim is the experiment harness behind the paper's evaluation
// (Section VII): it generates randomized rollup workloads, dispatches them
// to the attack optimizers, and produces the data series of every table and
// figure — Fig. 6 (profit vs. IFUs), Fig. 7 (profit vs. adversarial share),
// Fig. 8 (reward curves), Fig. 9 (solution-size KDEs), Fig. 10 (snapshot
// study, via internal/snapshot), Fig. 11 (solver comparison), and Table III
// (PT transaction behavior).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Package errors.
var (
	ErrBadScenario = errors.New("sim: invalid scenario configuration")
	ErrStuck       = errors.New("sim: could not generate a feasible transaction")
)

// ScenarioConfig parameterizes one randomized workload.
type ScenarioConfig struct {
	// Users is the number of rollup users (0 = scaled from MempoolSize).
	Users int
	// MempoolSize is the batch size N the adversarial aggregator collects.
	MempoolSize int
	// NumIFUs is how many colluding users the attack serves.
	NumIFUs int
	// IFUInvolvement is how many transactions each IFU participates in
	// (0 = scaled from MempoolSize: max(2, N/8)). More involvement gives
	// the re-ordering attack more to work with — the paper's larger-
	// mempool-more-profit effect.
	IFUInvolvement int
	// MaxSupply of the limited-edition token (0 = scaled from N).
	MaxSupply uint64
	// InitialPrice P⁰ (0 = the case studies' 0.2 ETH).
	InitialPrice wei.Amount
	// MinBalance/MaxBalance bound each user's L2 funding (0 = 1–5 ETH).
	MinBalance, MaxBalance wei.Amount
}

// withDefaults fills derived defaults.
func (c ScenarioConfig) withDefaults() (ScenarioConfig, error) {
	if c.MempoolSize < 2 {
		return c, fmt.Errorf("%w: mempool size %d", ErrBadScenario, c.MempoolSize)
	}
	if c.IFUInvolvement == 0 {
		c.IFUInvolvement = max(2, c.MempoolSize/8)
	}
	if c.IFUInvolvement < 2 {
		return c, fmt.Errorf("%w: IFU involvement %d below the Section V-B minimum of 2",
			ErrBadScenario, c.IFUInvolvement)
	}
	// Leave at least a third of the batch to background traffic.
	for c.NumIFUs > 0 && c.NumIFUs*c.IFUInvolvement > 2*c.MempoolSize/3 && c.IFUInvolvement > 2 {
		c.IFUInvolvement--
	}
	if c.NumIFUs < 0 || c.NumIFUs*c.IFUInvolvement > c.MempoolSize {
		return c, fmt.Errorf("%w: %d IFUs need %d slots in a batch of %d",
			ErrBadScenario, c.NumIFUs, c.NumIFUs*c.IFUInvolvement, c.MempoolSize)
	}
	if c.Users == 0 {
		c.Users = c.MempoolSize/2 + 6
	}
	if c.Users < c.NumIFUs+2 {
		c.Users = c.NumIFUs + 2
	}
	if c.MaxSupply == 0 {
		c.MaxSupply = uint64(2*c.MempoolSize + 8)
	}
	if c.InitialPrice == 0 {
		c.InitialPrice = wei.FromFloat(0.2)
	}
	if c.MinBalance == 0 {
		c.MinBalance = wei.FromETH(1)
	}
	if c.MaxBalance <= c.MinBalance {
		c.MaxBalance = c.MinBalance + wei.FromETH(4)
	}
	return c, nil
}

// Scenario is one generated workload: the L2 state an aggregator sees and
// the fee-ordered batch it collected.
type Scenario struct {
	State *state.State
	Batch tx.Seq
	IFUs  []chainid.Address
	Token chainid.Address
	Cfg   ScenarioConfig
}

// GenerateScenario builds a randomized workload in which the batch is fully
// executable in its original (fee) order — the paper's setting, where the
// aggregator receives transactions that all satisfied their constraints in
// sequence — and every IFU is involved in at least a mint plus a transfer
// (the Section V-B opportunity precondition).
func GenerateScenario(rng *rand.Rand, cfg ScenarioConfig) (*Scenario, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	st := state.New()
	tokenAddr := chainid.DeriveAddress("sim/limited-edition-token")
	pt, err := token.Deploy(tokenAddr, token.Config{
		Name: "SimToken", Symbol: "SIM",
		MaxSupply: cfg.MaxSupply, InitialPrice: cfg.InitialPrice,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy token: %w", err)
	}
	if err := st.DeployToken(pt); err != nil {
		return nil, err
	}

	users := make([]chainid.Address, cfg.Users)
	for i := range users {
		users[i] = chainid.UserAddress(i + 1)
		span := int64(cfg.MaxBalance - cfg.MinBalance)
		st.SetBalance(users[i], cfg.MinBalance+wei.Amount(rng.Int63n(span+1)))
	}
	ifus := users[:cfg.NumIFUs]
	// IFUs must be able to afford their forced mint and buy even at the
	// bonding curve's ceiling price (P⁰·S⁰); top them up past it.
	ceiling := wei.MulDiv(cfg.InitialPrice, int64(cfg.MaxSupply), 1)
	for _, ifu := range ifus {
		st.SetBalance(ifu, st.Balance(ifu)+ceiling.Mul(2))
	}

	// Pre-mint about half the supply to random users so transfers and burns
	// are feasible from the first slot.
	premint := cfg.MaxSupply / 2
	for i := uint64(0); i < premint; i++ {
		owner := users[rng.Intn(len(users))]
		if err := pt.Mint(owner, pt.NextID()); err != nil {
			return nil, fmt.Errorf("pre-mint: %w", err)
		}
	}

	// Reserve IFUInvolvement slots per IFU at random positions: at least a
	// mint and a buy (the Section V-B preconditions), the rest a random mix.
	type quota struct {
		ifu  chainid.Address
		kind tx.Kind
	}
	slots := make([]*quota, cfg.MempoolSize)
	perm := rng.Perm(cfg.MempoolSize)
	next := 0
	kinds := []tx.Kind{tx.KindMint, tx.KindTransfer, tx.KindBurn}
	for _, ifu := range ifus {
		for j := 0; j < cfg.IFUInvolvement; j++ {
			kind := kinds[rng.Intn(len(kinds))]
			switch j {
			case 0:
				kind = tx.KindMint
			case 1:
				kind = tx.KindTransfer
			}
			slots[perm[next]] = &quota{ifu: ifu, kind: kind}
			next++
		}
	}

	// Build the batch against a shadow state so the original order is fully
	// executable.
	vm := ovm.New()
	shadow := st.Clone()
	batch := make(tx.Seq, 0, cfg.MempoolSize)
	for i := 0; i < cfg.MempoolSize; i++ {
		var (
			t   tx.Tx
			err error
		)
		if q := slots[i]; q != nil {
			t, err = generateFor(rng, shadow, tokenAddr, q.ifu, q.kind, users)
		} else {
			t, err = generateAny(rng, shadow, tokenAddr, users)
		}
		if err != nil {
			return nil, fmt.Errorf("slot %d: %w", i, err)
		}
		// Descending fees reproduce the mempool's fee-priority order.
		t = t.WithFees(wei.Amount((cfg.MempoolSize-i)*10), 0)
		res, err := vm.Execute(shadow, tx.Seq{t})
		if err != nil {
			return nil, err
		}
		if res.Executed != 1 {
			return nil, fmt.Errorf("%w: generated tx not executable: %v (%v)",
				ErrStuck, t, res.Steps[0].Reason)
		}
		shadow = res.State
		batch = append(batch, t)
	}
	return &Scenario{
		State: st,
		Batch: batch,
		IFUs:  append([]chainid.Address(nil), ifus...),
		Token: tokenAddr,
		Cfg:   cfg,
	}, nil
}

// generateFor builds a feasible transaction involving actor, preferring the
// requested kind but falling back to any involvement that keeps the IFU's
// Section V-B preconditions satisfiable.
func generateFor(rng *rand.Rand, st *state.State, tokenAddr chainid.Address, actor chainid.Address, kind tx.Kind, users []chainid.Address) (tx.Tx, error) {
	pt, err := st.Token(tokenAddr)
	if err != nil {
		return tx.Tx{}, err
	}
	price := pt.Price()

	mint := func() (tx.Tx, bool) {
		if pt.Available() > 0 && st.Balance(actor) >= price {
			return tx.Mint(tokenAddr, pt.NextID(), actor), true
		}
		return tx.Tx{}, false
	}
	buy := func() (tx.Tx, bool) {
		if st.Balance(actor) < price {
			return tx.Tx{}, false
		}
		for _, attempt := range rng.Perm(len(users)) {
			seller := users[attempt]
			if seller == actor {
				continue
			}
			if ids := pt.OwnedBy(seller); len(ids) > 0 {
				return tx.Transfer(tokenAddr, ids[rng.Intn(len(ids))], seller, actor), true
			}
		}
		return tx.Tx{}, false
	}
	sell := func() (tx.Tx, bool) {
		ids := pt.OwnedBy(actor)
		if len(ids) == 0 {
			return tx.Tx{}, false
		}
		for _, attempt := range rng.Perm(len(users)) {
			buyer := users[attempt]
			if buyer != actor && st.Balance(buyer) >= price {
				return tx.Transfer(tokenAddr, ids[rng.Intn(len(ids))], actor, buyer), true
			}
		}
		return tx.Tx{}, false
	}
	burn := func() (tx.Tx, bool) {
		if ids := pt.OwnedBy(actor); len(ids) > 0 {
			return tx.Burn(tokenAddr, ids[rng.Intn(len(ids))], actor), true
		}
		return tx.Tx{}, false
	}

	var order []func() (tx.Tx, bool)
	switch kind {
	case tx.KindMint:
		order = []func() (tx.Tx, bool){mint, buy, sell, burn}
	case tx.KindTransfer:
		order = []func() (tx.Tx, bool){buy, sell, mint, burn}
	case tx.KindBurn:
		order = []func() (tx.Tx, bool){burn, sell, mint, buy}
	default:
		return tx.Tx{}, fmt.Errorf("%w: kind %v", ErrBadScenario, kind)
	}
	for _, gen := range order {
		if t, ok := gen(); ok {
			return t, nil
		}
	}
	return tx.Tx{}, fmt.Errorf("%w: no feasible involvement for forced actor", ErrStuck)
}

// generateAny builds a random feasible transaction by any user, preferring
// the mint/transfer/burn mix 3:5:2 that keeps supply and ownership healthy.
func generateAny(rng *rand.Rand, st *state.State, tokenAddr chainid.Address, users []chainid.Address) (tx.Tx, error) {
	pt, err := st.Token(tokenAddr)
	if err != nil {
		return tx.Tx{}, err
	}
	price := pt.Price()
	const attempts = 60
	for a := 0; a < attempts; a++ {
		actor := users[rng.Intn(len(users))]
		roll := rng.Intn(10)
		switch {
		case roll < 3: // mint
			if pt.Available() > 0 && st.Balance(actor) >= price {
				return tx.Mint(tokenAddr, pt.NextID(), actor), nil
			}
		case roll < 8: // transfer: actor buys from a random owner
			if st.Balance(actor) < price {
				continue
			}
			seller := users[rng.Intn(len(users))]
			if seller == actor {
				continue
			}
			if ids := pt.OwnedBy(seller); len(ids) > 0 {
				return tx.Transfer(tokenAddr, ids[rng.Intn(len(ids))], seller, actor), nil
			}
		default: // burn
			if ids := pt.OwnedBy(actor); len(ids) > 0 {
				return tx.Burn(tokenAddr, ids[rng.Intn(len(ids))], actor), nil
			}
		}
	}
	return tx.Tx{}, ErrStuck
}
