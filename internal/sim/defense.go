package sim

import (
	"fmt"
	"math/rand"

	"parole/internal/defense"
	"parole/internal/ovm"
	"parole/internal/solver"
	"parole/internal/tx"
	"parole/internal/wei"
)

// DefenseConfig parameterizes the defense-evaluation study — the validation
// the paper defers to future work (Section VIII): sweep the detector's
// tolerance threshold and measure how often it triggers, how much it
// demotes, and how much extractable profit survives.
type DefenseConfig struct {
	// Thresholds to sweep.
	Thresholds []wei.Amount
	// MempoolSize and IFUs of the generated workloads.
	MempoolSize int
	IFUs        int
	// Scenarios per threshold.
	Scenarios int
	// DetectorEvals bounds the detector's per-inspection search budget;
	// AttackerEvals bounds the adversary's post-defense search (the
	// attacker is given a larger budget than the detector, the worst case
	// for the defense).
	DetectorEvals, AttackerEvals int
	// Seed drives workload generation and both searches.
	Seed int64
}

// DefaultDefenseConfig returns the EXPERIMENTS.md configuration.
func DefaultDefenseConfig() DefenseConfig {
	return DefenseConfig{
		Thresholds: []wei.Amount{
			0, wei.FromFloat(0.02), wei.FromFloat(0.05),
			wei.FromFloat(0.1), wei.FromFloat(0.25),
		},
		MempoolSize:   16,
		IFUs:          1,
		Scenarios:     8,
		DetectorEvals: 2000,
		AttackerEvals: 6000,
		Seed:          6,
	}
}

// DefenseRow is one threshold's outcome.
type DefenseRow struct {
	Threshold wei.Amount
	Scenarios int
	// Triggered counts inspections exceeding the threshold.
	Triggered int
	// AvgDemotions is the mean number of transactions sent to the block
	// behind per triggered inspection.
	AvgDemotions float64
	// AvgUndefendedProfit is the adversary's mean extractable profit on
	// the raw batches; AvgResidualProfit the mean on the defended batches.
	AvgUndefendedProfit wei.Amount
	AvgResidualProfit   wei.Amount
}

// RunDefenseStudy sweeps the detector threshold over generated workloads.
func RunDefenseStudy(cfg DefenseConfig) ([]DefenseRow, error) {
	if len(cfg.Thresholds) == 0 || cfg.Scenarios <= 0 {
		return nil, fmt.Errorf("%w: defense study axes", ErrBadScenario)
	}
	vm := ovm.New()
	rows := make([]DefenseRow, 0, len(cfg.Thresholds))
	for ti, threshold := range cfg.Thresholds {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*1000))
		row := DefenseRow{Threshold: threshold, Scenarios: cfg.Scenarios}
		var demotions int
		var undefended, residual wei.Amount
		for i := 0; i < cfg.Scenarios; i++ {
			sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: cfg.MempoolSize, NumIFUs: cfg.IFUs})
			if err != nil {
				return nil, fmt.Errorf("defense scenario %d: %w", i, err)
			}
			// The adversary's take on the raw batch.
			raw, err := attackerProfit(rng, vm, sc, sc.Batch, cfg.AttackerEvals)
			if err != nil {
				return nil, err
			}
			undefended += raw

			det, err := defense.NewDetector(vm, defense.SearchOptimizer{
				Rng:            rng,
				MaxEvaluations: cfg.DetectorEvals,
			}, defense.Config{BaseThreshold: threshold})
			if err != nil {
				return nil, err
			}
			report, err := det.Inspect(sc.State, sc.Batch)
			if err != nil {
				return nil, fmt.Errorf("inspect scenario %d: %w", i, err)
			}
			if report.Triggered {
				row.Triggered++
				demotions += len(report.Demoted)
			}
			// The adversary's take on what survives the demotions.
			surviving := survivingBatch(sc, report)
			if len(surviving) >= 2 {
				res, err := attackerProfit(rng, vm, sc, surviving, cfg.AttackerEvals)
				if err != nil {
					return nil, err
				}
				residual += res
			}
		}
		if row.Triggered > 0 {
			row.AvgDemotions = float64(demotions) / float64(row.Triggered)
		}
		row.AvgUndefendedProfit = undefended.Div(int64(cfg.Scenarios))
		row.AvgResidualProfit = residual.Div(int64(cfg.Scenarios))
		rows = append(rows, row)
	}
	return rows, nil
}

// attackerProfit is the adversary's best valid improvement on batch.
func attackerProfit(rng *rand.Rand, vm *ovm.VM, sc *Scenario, batch tx.Seq, evals int) (wei.Amount, error) {
	obj, err := solver.NewObjective(vm, sc.State, batch, sc.IFUs)
	if err != nil {
		return 0, err
	}
	sol, err := solver.HillClimb{}.Solve(rng, obj, solver.Budget{MaxEvaluations: evals})
	if err != nil {
		return 0, err
	}
	return sol.Improvement, nil
}

// survivingBatch removes the demoted transactions from the scenario batch.
func survivingBatch(sc *Scenario, report defense.Report) tx.Seq {
	demoted := make(map[string]bool, len(report.Demoted))
	for _, d := range report.Demoted {
		demoted[d.String()] = true
	}
	var out tx.Seq
	for _, t := range sc.Batch {
		if !demoted[t.String()] {
			out = append(out, t)
		}
	}
	return out
}
