package sim

import (
	"fmt"
	"math/rand"

	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rl"
	"parole/internal/stats"
)

// Fig8Config parameterizes the reward-curve study: moving-average episode
// rewards of the DQN agent for different initial exploration values.
type Fig8Config struct {
	// Epsilons are the ε₀ values to compare (paper: 0, 0.5, 1).
	Epsilons []float64
	// IFUs served (paper: subfigure (a) 1, (b) 2).
	IFUs int
	// MempoolSize of the training batch.
	MempoolSize int
	// Episodes and MaxSteps of each training run (paper: 100 × 200).
	Episodes, MaxSteps int
	// Window of the moving average (paper: 9).
	Window int
	// RL hyper-parameters (epsilon is overridden per curve).
	RL rl.Config
	// Env reward shaping.
	Env gentranseq.EnvConfig
	// Seed for scenario generation and training.
	Seed int64
}

// DefaultFig8Config returns the paper's setting at a laptop-scale budget.
func DefaultFig8Config() Fig8Config {
	cfg := Fig8Config{
		Epsilons:    []float64{0, 0.5, 1},
		IFUs:        1,
		MempoolSize: 25,
		Episodes:    100,
		MaxSteps:    60,
		Window:      9,
		RL:          rl.DefaultConfig(),
		Env:         gentranseq.DefaultEnvConfig(),
		Seed:        3,
	}
	cfg.RL.Hidden = []int{32, 32}
	return cfg
}

// Fig8Point is one point of a Fig. 8 curve. Alongside the paper's
// moving-average reward it records the best valid improvement found by that
// episode (in ETH) — the solution-quality series that makes the exploration
// effect legible independent of penalty accounting (see EXPERIMENTS.md).
type Fig8Point struct {
	Epsilon  float64
	IFUs     int
	Episode  int
	Reward   float64
	Smoothed float64
	// BestGainETH is the cumulative best wealth improvement found by the
	// end of this episode.
	BestGainETH float64
}

// RunFig8 trains one agent per ε₀ on a fixed scenario and returns the
// per-episode rewards with their moving average.
func RunFig8(cfg Fig8Config) ([]Fig8Point, error) {
	if len(cfg.Epsilons) == 0 || cfg.Episodes <= 0 || cfg.MaxSteps <= 0 {
		return nil, fmt.Errorf("%w: fig8 axes", ErrBadScenario)
	}
	if cfg.Window <= 0 {
		cfg.Window = 9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vm := ovm.New()
	sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: cfg.MempoolSize, NumIFUs: cfg.IFUs})
	if err != nil {
		return nil, fmt.Errorf("fig8 scenario: %w", err)
	}

	var points []Fig8Point
	for _, eps := range cfg.Epsilons {
		env, err := gentranseq.NewEnv(vm, sc.State, sc.Batch, sc.IFUs, cfg.Env)
		if err != nil {
			return nil, err
		}
		rlCfg := cfg.RL
		schedule := rl.EpsilonSchedule{Max: eps, Min: min(eps, 0.01), Decay: rlCfg.Epsilon.Decay}
		if schedule.Decay == 0 {
			schedule.Decay = 0.05
		}
		rlCfg.Epsilon = schedule
		agent, err := rl.NewAgent(rand.New(rand.NewSource(cfg.Seed+int64(eps*1000))), env.ObservationSize(), env.NumActions(), rlCfg)
		if err != nil {
			return nil, err
		}
		bestGain := make([]float64, 0, cfg.Episodes)
		rewards, err := gentranseq.TrainAgentHooked(agent, env, cfg.Episodes, cfg.MaxSteps, schedule,
			func(_ int, _ float64, e *gentranseq.Env) {
				_, best := e.Best()
				bestGain = append(bestGain, best.ETHFloat())
			})
		if err != nil {
			return nil, fmt.Errorf("fig8 ε=%g: %w", eps, err)
		}
		smoothed, err := stats.MovingAverage(rewards, cfg.Window)
		if err != nil {
			return nil, err
		}
		for i := range rewards {
			points = append(points, Fig8Point{
				Epsilon:     eps,
				IFUs:        cfg.IFUs,
				Episode:     i,
				Reward:      rewards[i],
				Smoothed:    smoothed[i],
				BestGainETH: bestGain[i],
			})
		}
	}
	return points, nil
}

// Fig9Config parameterizes the solution-size study: the distribution of the
// number of swaps a trained agent needs to reach its first candidate
// solution.
type Fig9Config struct {
	// MempoolSize of the batches (paper: subfigures use 50 and 100).
	MempoolSize int
	// IFUCounts to overlay (paper: 1–4).
	IFUCounts []int
	// Runs per curve: each run trains a fresh agent on a fresh scenario and
	// contributes one sample.
	Runs int
	// Gen is the per-run training budget.
	Gen gentranseq.Config
	// CurvePoints of the KDE evaluation grid.
	CurvePoints int
	// Seed for the study's RNG.
	Seed int64
}

// DefaultFig9Config returns a laptop-scale version of the paper's study.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		MempoolSize: 50,
		IFUCounts:   []int{1, 2, 3, 4},
		Runs:        12,
		Gen:         gentranseq.FastConfig(),
		CurvePoints: 60,
		Seed:        4,
	}
}

// Fig9Curve is one KDE curve of Fig. 9.
type Fig9Curve struct {
	MempoolSize int
	IFUs        int
	// Samples are the raw swap counts (unsolved runs excluded).
	Samples []float64
	// Unsolved counts runs whose trained agent found no candidate.
	Unsolved int
	// X and Density trace the KDE curve.
	X, Density []float64
	// Mode is the most likely solution size.
	Mode float64
}

// RunFig9 produces the solution-size KDE curves.
func RunFig9(cfg Fig9Config) ([]Fig9Curve, error) {
	if cfg.Runs <= 0 || len(cfg.IFUCounts) == 0 {
		return nil, fmt.Errorf("%w: fig9 axes", ErrBadScenario)
	}
	if cfg.CurvePoints < 2 {
		cfg.CurvePoints = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vm := ovm.New()

	var curves []Fig9Curve
	for _, k := range cfg.IFUCounts {
		curve := Fig9Curve{MempoolSize: cfg.MempoolSize, IFUs: k}
		for run := 0; run < cfg.Runs; run++ {
			sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: cfg.MempoolSize, NumIFUs: k})
			if err != nil {
				return nil, fmt.Errorf("fig9 k=%d run=%d: %w", k, run, err)
			}
			gen := cfg.Gen
			gen.SkipAssessment = true
			// Give the agent a step budget proportional to the batch so the
			// C(N,2) action space is coverable.
			if gen.MaxSteps < 2*cfg.MempoolSize {
				gen.MaxSteps = 2 * cfg.MempoolSize
			}
			res, err := gentranseq.Optimize(rng, vm, sc.State, sc.Batch, sc.IFUs, gen)
			if err != nil {
				return nil, fmt.Errorf("fig9 k=%d run=%d: %w", k, run, err)
			}
			// Prefer the deterministic greedy rollout; fall back to the last
			// (near-greedy) training episode when the rollout loops without
			// finding a candidate.
			swaps := res.InferenceSwaps
			if swaps < 0 {
				swaps = res.FinalEpisodeSwaps
			}
			if swaps < 0 {
				curve.Unsolved++
				continue
			}
			curve.Samples = append(curve.Samples, float64(swaps))
		}
		if len(curve.Samples) > 0 {
			kde, err := stats.NewKDE(curve.Samples, 0)
			if err != nil {
				return nil, err
			}
			hi := float64(cfg.Gen.MaxSteps)
			if adaptive := float64(2 * cfg.MempoolSize); adaptive > hi {
				hi = adaptive // the run raised the step budget to 2·N
			}
			if hi <= 0 {
				hi = 60
			}
			curve.X, curve.Density, err = kde.Curve(0, hi, cfg.CurvePoints)
			if err != nil {
				return nil, err
			}
			curve.Mode, err = kde.Mode(0, hi, 4*cfg.CurvePoints)
			if err != nil {
				return nil, err
			}
		}
		curves = append(curves, curve)
	}
	return curves, nil
}
