package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/solver"
	"parole/internal/wei"
)

// OptimizerKind selects the re-ordering search backend for an experiment.
// Kinds are registry keys: the built-in backends below register themselves at
// package init, and extensions add theirs with RegisterOptimizer.
type OptimizerKind string

// Built-in backends.
const (
	// OptDQN is the paper's GENTRANSEQ DQN.
	OptDQN OptimizerKind = "dqn"
	// OptHillClimb is the fast search baseline with the identical
	// objective; useful for wide sweeps and CI.
	OptHillClimb OptimizerKind = "hillclimb"
	// OptAnneal is the annealing baseline.
	OptAnneal OptimizerKind = "anneal"
	// OptBranchBound is the exact branch-and-bound baseline (budgeted).
	OptBranchBound OptimizerKind = "bnb"
	// OptHillClimbParallel is the deterministic parallel hill-climb
	// portfolio (OptimizerConfig.Workers goroutines).
	OptHillClimbParallel OptimizerKind = "hillclimb-parallel"
	// OptAnnealParallel is the deterministic parallel annealing portfolio.
	OptAnnealParallel OptimizerKind = "anneal-parallel"
)

// OptimizerConfig bundles the backend and its budget.
type OptimizerConfig struct {
	Kind OptimizerKind
	// Gen is the DQN budget (used when Kind == OptDQN).
	Gen gentranseq.Config
	// SolverEvals caps baseline evaluations (0 = 40·N²).
	SolverEvals int
	// AdaptiveSteps scales the DQN's per-episode step budget with the
	// batch size (MaxSteps = max(MaxSteps, 2·N)) so the agent can cover
	// the C(N,2) action space of larger mempools.
	AdaptiveSteps bool
	// Workers is the goroutine count for the parallel portfolio backends
	// (0 = GOMAXPROCS). Sequential backends ignore it.
	Workers int
}

// DefaultOptimizer returns the sweep-friendly DQN configuration with the
// step budget scaling to the batch size.
func DefaultOptimizer() OptimizerConfig {
	return OptimizerConfig{Kind: OptDQN, Gen: gentranseq.FastConfig(), AdaptiveSteps: true}
}

// AttackOutcome is the per-batch result of one optimized attack.
type AttackOutcome struct {
	// Improvement is the summed IFU wealth gain of the best valid order.
	Improvement wei.Amount
	// InferenceSwaps is the Fig. 9 statistic (DQN only; −1 otherwise).
	InferenceSwaps int
	// EpisodeRewards is the Fig. 8 series (DQN only).
	EpisodeRewards []float64
}

// OptimizerFunc runs one registered backend on a scenario's batch.
type OptimizerFunc func(rng *rand.Rand, vm *ovm.VM, sc *Scenario, cfg OptimizerConfig) (AttackOutcome, error)

// ErrUnknownBackend is the sentinel every unknown-backend failure wraps;
// match it with errors.Is. The concrete error is *UnknownBackendError, which
// carries the offending kind and the registered alternatives.
var ErrUnknownBackend = errors.New("sim: unknown optimizer backend")

// UnknownBackendError reports a lookup of an unregistered optimizer kind.
type UnknownBackendError struct {
	// Kind is the unknown backend that was requested.
	Kind OptimizerKind
	// Registered lists the available kinds, sorted.
	Registered []OptimizerKind
}

// Error implements error, listing the registered kinds so a typo on a
// command line is self-correcting.
func (e *UnknownBackendError) Error() string {
	kinds := make([]string, len(e.Registered))
	for i, k := range e.Registered {
		kinds[i] = string(k)
	}
	return fmt.Sprintf("sim: unknown optimizer backend %q (registered: %s)",
		e.Kind, strings.Join(kinds, ", "))
}

// Unwrap makes errors.Is(err, ErrUnknownBackend) hold.
func (e *UnknownBackendError) Unwrap() error { return ErrUnknownBackend }

// optimizerRegistry maps backend kinds to their implementations. Built-ins
// register at init; RegisterOptimizer admits extensions.
var optimizerRegistry = struct {
	sync.RWMutex
	m map[OptimizerKind]OptimizerFunc
}{m: map[OptimizerKind]OptimizerFunc{}}

// RegisterOptimizer adds a backend under kind. Registering an empty kind or
// re-registering an existing one panics: both are programming errors in an
// init path, not runtime conditions.
func RegisterOptimizer(kind OptimizerKind, fn OptimizerFunc) {
	if kind == "" || fn == nil {
		panic("sim: RegisterOptimizer with empty kind or nil func")
	}
	optimizerRegistry.Lock()
	defer optimizerRegistry.Unlock()
	if _, dup := optimizerRegistry.m[kind]; dup {
		panic(fmt.Sprintf("sim: optimizer backend %q registered twice", kind))
	}
	optimizerRegistry.m[kind] = fn
}

// RegisteredOptimizers returns every registered backend kind, sorted.
func RegisteredOptimizers() []OptimizerKind {
	optimizerRegistry.RLock()
	defer optimizerRegistry.RUnlock()
	kinds := make([]OptimizerKind, 0, len(optimizerRegistry.m))
	for k := range optimizerRegistry.m {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// RegisteredOptimizerNames returns the sorted kinds as plain strings — the
// form command-line help wants.
func RegisteredOptimizerNames() []string {
	kinds := RegisteredOptimizers()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return names
}

// OptimizeBatch runs the configured backend on a scenario's batch. An empty
// kind selects the DQN (the paper's attack). Unknown kinds return a
// *UnknownBackendError wrapping ErrUnknownBackend.
func OptimizeBatch(rng *rand.Rand, vm *ovm.VM, sc *Scenario, cfg OptimizerConfig) (AttackOutcome, error) {
	kind := cfg.Kind
	if kind == "" {
		kind = OptDQN
	}
	optimizerRegistry.RLock()
	fn, ok := optimizerRegistry.m[kind]
	optimizerRegistry.RUnlock()
	if !ok {
		return AttackOutcome{InferenceSwaps: -1},
			&UnknownBackendError{Kind: kind, Registered: RegisteredOptimizers()}
	}
	return fn(rng, vm, sc, cfg)
}

func init() {
	RegisterOptimizer(OptDQN, optimizeDQN)
	RegisterOptimizer(OptHillClimb, solverBackend(func(OptimizerConfig) solver.Solver {
		return solver.HillClimb{}
	}))
	RegisterOptimizer(OptAnneal, solverBackend(func(OptimizerConfig) solver.Solver {
		return solver.Anneal{}
	}))
	RegisterOptimizer(OptBranchBound, solverBackend(func(OptimizerConfig) solver.Solver {
		return solver.BranchBound{}
	}))
	RegisterOptimizer(OptHillClimbParallel, solverBackend(func(cfg OptimizerConfig) solver.Solver {
		return solver.ParallelHillClimb{Workers: cfg.Workers}
	}))
	RegisterOptimizer(OptAnnealParallel, solverBackend(func(cfg OptimizerConfig) solver.Solver {
		return solver.ParallelAnneal{Workers: cfg.Workers}
	}))
}

// optimizeDQN is the paper's GENTRANSEQ attack.
func optimizeDQN(rng *rand.Rand, vm *ovm.VM, sc *Scenario, cfg OptimizerConfig) (AttackOutcome, error) {
	out := AttackOutcome{InferenceSwaps: -1}
	gen := cfg.Gen
	if gen.Episodes == 0 {
		gen = gentranseq.FastConfig()
	}
	if cfg.AdaptiveSteps && gen.MaxSteps < 2*len(sc.Batch) {
		gen.MaxSteps = 2 * len(sc.Batch)
	}
	res, err := gentranseq.Optimize(rng, vm, sc.State, sc.Batch, sc.IFUs, gen)
	if err != nil {
		return out, fmt.Errorf("dqn optimize: %w", err)
	}
	if res.Improved {
		out.Improvement = res.Improvement
	}
	out.InferenceSwaps = res.InferenceSwaps
	out.EpisodeRewards = res.EpisodeRewards
	return out, nil
}

// solverBackend adapts a baseline solver constructor to an OptimizerFunc
// with the sweep default budget (40·N² evaluations).
func solverBackend(build func(cfg OptimizerConfig) solver.Solver) OptimizerFunc {
	return func(rng *rand.Rand, vm *ovm.VM, sc *Scenario, cfg OptimizerConfig) (AttackOutcome, error) {
		out := AttackOutcome{InferenceSwaps: -1}
		obj, err := solver.NewObjective(vm, sc.State, sc.Batch, sc.IFUs)
		if err != nil {
			return out, err
		}
		budget := solver.Budget{MaxEvaluations: cfg.SolverEvals}
		if budget.MaxEvaluations == 0 {
			budget.MaxEvaluations = 40 * obj.N() * obj.N()
		}
		s := build(cfg)
		sol, err := s.Solve(rng, obj, budget)
		if err != nil {
			return out, fmt.Errorf("%s: %w", s.Name(), err)
		}
		out.Improvement = sol.Improvement
		return out, nil
	}
}
