package sim

import (
	"fmt"
	"math/rand"

	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/solver"
	"parole/internal/wei"
)

// OptimizerKind selects the re-ordering search backend for an experiment.
type OptimizerKind string

// Available backends.
const (
	// OptDQN is the paper's GENTRANSEQ DQN.
	OptDQN OptimizerKind = "dqn"
	// OptHillClimb is the fast search baseline with the identical
	// objective; useful for wide sweeps and CI.
	OptHillClimb OptimizerKind = "hillclimb"
	// OptAnneal is the annealing baseline.
	OptAnneal OptimizerKind = "anneal"
)

// OptimizerConfig bundles the backend and its budget.
type OptimizerConfig struct {
	Kind OptimizerKind
	// Gen is the DQN budget (used when Kind == OptDQN).
	Gen gentranseq.Config
	// SolverEvals caps baseline evaluations (0 = 40·N²).
	SolverEvals int
	// AdaptiveSteps scales the DQN's per-episode step budget with the
	// batch size (MaxSteps = max(MaxSteps, 2·N)) so the agent can cover
	// the C(N,2) action space of larger mempools.
	AdaptiveSteps bool
}

// DefaultOptimizer returns the sweep-friendly DQN configuration with the
// step budget scaling to the batch size.
func DefaultOptimizer() OptimizerConfig {
	return OptimizerConfig{Kind: OptDQN, Gen: gentranseq.FastConfig(), AdaptiveSteps: true}
}

// AttackOutcome is the per-batch result of one optimized attack.
type AttackOutcome struct {
	// Improvement is the summed IFU wealth gain of the best valid order.
	Improvement wei.Amount
	// InferenceSwaps is the Fig. 9 statistic (DQN only; −1 otherwise).
	InferenceSwaps int
	// EpisodeRewards is the Fig. 8 series (DQN only).
	EpisodeRewards []float64
}

// OptimizeBatch runs the configured backend on a scenario's batch.
func OptimizeBatch(rng *rand.Rand, vm *ovm.VM, sc *Scenario, cfg OptimizerConfig) (AttackOutcome, error) {
	out := AttackOutcome{InferenceSwaps: -1}
	switch cfg.Kind {
	case OptDQN, "":
		gen := cfg.Gen
		if gen.Episodes == 0 {
			gen = gentranseq.FastConfig()
		}
		if cfg.AdaptiveSteps && gen.MaxSteps < 2*len(sc.Batch) {
			gen.MaxSteps = 2 * len(sc.Batch)
		}
		res, err := gentranseq.Optimize(rng, vm, sc.State, sc.Batch, sc.IFUs, gen)
		if err != nil {
			return out, fmt.Errorf("dqn optimize: %w", err)
		}
		if res.Improved {
			out.Improvement = res.Improvement
		}
		out.InferenceSwaps = res.InferenceSwaps
		out.EpisodeRewards = res.EpisodeRewards
		return out, nil
	case OptHillClimb, OptAnneal:
		obj, err := solver.NewObjective(vm, sc.State, sc.Batch, sc.IFUs)
		if err != nil {
			return out, err
		}
		budget := solver.Budget{MaxEvaluations: cfg.SolverEvals}
		if budget.MaxEvaluations == 0 {
			budget.MaxEvaluations = 40 * obj.N() * obj.N()
		}
		var s solver.Solver = solver.HillClimb{}
		if cfg.Kind == OptAnneal {
			s = solver.Anneal{}
		}
		sol, err := s.Solve(rng, obj, budget)
		if err != nil {
			return out, fmt.Errorf("%s: %w", s.Name(), err)
		}
		out.Improvement = sol.Improvement
		return out, nil
	default:
		return out, fmt.Errorf("sim: unknown optimizer kind %q", cfg.Kind)
	}
}
