package sim

import (
	"errors"
	"math/rand"
	"testing"

	"parole/internal/ovm"
)

func newTestRand(t *testing.T) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(11))
}

func newTestVM() *ovm.VM { return ovm.New() }

func TestAdversaryCount(t *testing.T) {
	tests := []struct {
		population int
		fraction   float64
		want       int
	}{
		{10, 0.10, 1},
		{10, 0.50, 5},
		{10, 0.25, 3}, // rounds to nearest
		{10, 0.01, 1}, // at least one when positive
		{10, 0, 0},
		{4, 0.5, 2},
	}
	for _, tt := range tests {
		if got := adversaryCount(tt.population, tt.fraction); got != tt.want {
			t.Errorf("adversaryCount(%d, %g) = %d, want %d", tt.population, tt.fraction, got, tt.want)
		}
	}
}

func TestRunFig6Validation(t *testing.T) {
	if _, err := RunFig6(Fig6Config{}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("empty fig6 config = %v", err)
	}
	if _, err := RunFig6(Fig6Config{MempoolSizes: []int{8}, IFUCounts: []int{1}}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("zero trials = %v", err)
	}
}

func TestRunFig7Validation(t *testing.T) {
	if _, err := RunFig7(Fig7Config{}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("empty fig7 config = %v", err)
	}
}

func TestRunFig8Validation(t *testing.T) {
	if _, err := RunFig8(Fig8Config{}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("empty fig8 config = %v", err)
	}
}

func TestRunFig9Validation(t *testing.T) {
	if _, err := RunFig9(Fig9Config{}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("empty fig9 config = %v", err)
	}
}

func TestRunFig11Validation(t *testing.T) {
	if _, err := RunFig11(Fig11Config{}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("empty fig11 config = %v", err)
	}
}

func TestOptimizeBatchAdaptiveSteps(t *testing.T) {
	// AdaptiveSteps must not fail on tiny budgets; it only raises MaxSteps.
	rng := newTestRand(t)
	sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 12, NumIFUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := OptimizerConfig{Kind: OptDQN, Gen: tinyDQN(), AdaptiveSteps: true}
	out, err := OptimizeBatch(rng, newTestVM(), sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Improvement < 0 {
		t.Fatal("negative improvement")
	}
}
