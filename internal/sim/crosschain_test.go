package sim

import (
	"testing"

	"parole/internal/wei"
)

// crossRun executes one variant of the shared small configuration.
func crossRun(t *testing.T, variant CrossVariant, inspect CrossInspect, adversaryChain uint64) *CrossChainResult {
	t.Helper()
	cfg := DefaultCrossChainConfig()
	cfg.Variant = variant
	cfg.Inspect = inspect
	cfg.AdversaryChain = adversaryChain
	res, err := RunCrossChain(cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", variant, inspect, err)
	}
	return res
}

// TestCrossChainAdversaryLadder is the experiment's central claim: with the
// same seeds, the shared sequencer and the head-start arbitrageur each
// extract strictly more than the best per-chain adversary.
func TestCrossChainAdversaryLadder(t *testing.T) {
	honest := crossRun(t, CrossHonest, CrossInspectOff, 1)
	if honest.Reordered != 0 || honest.BridgesInitiated != 0 {
		t.Fatalf("honest run reordered %d / bridged %d", honest.Reordered, honest.BridgesInitiated)
	}

	var bestSingle wei.Amount
	cfg := DefaultCrossChainConfig()
	for chain := uint64(1); chain <= uint64(cfg.Chains); chain++ {
		res := crossRun(t, CrossSingle, CrossInspectOff, chain)
		if p := res.Wealth - honest.Wealth; p > bestSingle {
			bestSingle = p
		}
	}
	shared := crossRun(t, CrossShared, CrossInspectOff, 1)
	head := crossRun(t, CrossHeadStart, CrossInspectOff, 1)

	sharedProfit := shared.Wealth - honest.Wealth
	headProfit := head.Wealth - honest.Wealth
	t.Logf("profit: best-single=%s shared=%s headstart=%s", bestSingle, sharedProfit, headProfit)
	if sharedProfit <= bestSingle {
		t.Errorf("shared sequencer profit %s not above best single-chain %s", sharedProfit, bestSingle)
	}
	if headProfit <= bestSingle {
		t.Errorf("head-start profit %s not above best single-chain %s", headProfit, bestSingle)
	}
	if head.BridgesInitiated == 0 || head.BridgesReleased == 0 {
		t.Errorf("head-start bridged %d / released %d, want both > 0",
			head.BridgesInitiated, head.BridgesReleased)
	}
}

// TestCrossChainDeterminism: identical configurations give identical results.
func TestCrossChainDeterminism(t *testing.T) {
	a := crossRun(t, CrossShared, CrossInspectOn, 1)
	b := crossRun(t, CrossShared, CrossInspectOn, 1)
	if *a != *b {
		t.Fatalf("runs diverged:\n %+v\n %+v", a, b)
	}
}

// TestCrossChainInspectBites: the cross detector demotes something against
// the shared sequencer and never increases its take.
func TestCrossChainInspectBites(t *testing.T) {
	open := crossRun(t, CrossShared, CrossInspectOff, 1)
	guarded := crossRun(t, CrossShared, CrossInspectOn, 1)
	if guarded.Demotions == 0 {
		t.Error("cross inspection demoted nothing against the shared sequencer")
	}
	if guarded.Wealth > open.Wealth {
		t.Errorf("inspection increased the adversary's wealth: %s > %s",
			guarded.Wealth, open.Wealth)
	}
}

// TestCrossChainConfigValidation pins the axis checks.
func TestCrossChainConfigValidation(t *testing.T) {
	bad := []func(*CrossChainConfig){
		func(c *CrossChainConfig) { c.Chains = 1 },
		func(c *CrossChainConfig) { c.PremintPct = []int{60} },
		func(c *CrossChainConfig) { c.Rounds = 0 },
		func(c *CrossChainConfig) { c.Variant = "warp" },
		func(c *CrossChainConfig) { c.Variant = CrossSingle; c.AdversaryChain = 9 },
	}
	for i, mutate := range bad {
		cfg := DefaultCrossChainConfig()
		mutate(&cfg)
		if _, err := RunCrossChain(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
