package sim

import (
	"errors"
	"testing"

	"parole/internal/wei"
)

func TestRunDefenseStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("search sweeps")
	}
	cfg := DefenseConfig{
		Thresholds:    []wei.Amount{0, wei.FromFloat(0.1), wei.FromETH(100)},
		MempoolSize:   10,
		IFUs:          1,
		Scenarios:     4,
		DetectorEvals: 600,
		AttackerEvals: 1200,
		Seed:          6,
	}
	rows, err := RunDefenseStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	zero, mid, huge := rows[0], rows[1], rows[2]
	// A zero threshold triggers on anything exploitable; an enormous one
	// never triggers.
	if zero.Triggered < mid.Triggered {
		t.Fatalf("trigger counts not monotone: %d < %d", zero.Triggered, mid.Triggered)
	}
	if huge.Triggered != 0 {
		t.Fatalf("huge threshold triggered %d times", huge.Triggered)
	}
	// The defense must not increase extractable profit, and with no
	// trigger the residual equals the undefended baseline.
	for _, r := range rows {
		if r.AvgResidualProfit > r.AvgUndefendedProfit {
			t.Fatalf("threshold %s: residual %s exceeds undefended %s",
				r.Threshold, r.AvgResidualProfit, r.AvgUndefendedProfit)
		}
	}
	if huge.AvgResidualProfit != huge.AvgUndefendedProfit {
		t.Fatalf("untriggered residual %s != undefended %s",
			huge.AvgResidualProfit, huge.AvgUndefendedProfit)
	}
	// A triggered defense must reduce profit on average.
	if zero.Triggered > 0 && zero.AvgResidualProfit >= zero.AvgUndefendedProfit {
		t.Fatal("triggered defense removed no profit")
	}
}

func TestRunDefenseStudyValidation(t *testing.T) {
	if _, err := RunDefenseStudy(DefenseConfig{}); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("empty config = %v", err)
	}
}
