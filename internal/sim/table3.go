package sim

import (
	"fmt"

	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/rollup"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Table3Row is one row of Table III: the on-chain behavior of one PT
// transaction through the full rollup pipeline.
type Table3Row struct {
	TxType       string
	TxHash       chainid.Hash
	BlockNumber  uint64
	L1StateIndex uint64
	GasUsagePct  float64
	FeeGwei      int64
}

// RunTable3 deploys the ParoleToken on a fresh rollup, performs one mint,
// one transfer, and one burn (each in its own batch so each gets its own L1
// anchor), and reports the Table III columns. Genesis parameters are chosen
// so the mint lands on the paper's block 17934499 / state index 115922.
func RunTable3() ([]Table3Row, error) {
	node := rollup.NewNode(rollup.Config{
		GenesisL1Number: 17_934_498,
		ChallengePeriod: 1,
		StateIndexBase:  115_921,
	})
	ptAddr := chainid.DeriveAddress("parole-token")
	alice := chainid.UserAddress(1)
	bob := chainid.UserAddress(2)
	aggAddr := chainid.AggregatorAddress(1)
	verAddr := chainid.VerifierAddress(1)

	node.SetupAccount(alice, wei.FromETH(20))
	node.SetupAccount(bob, wei.FromETH(20))
	node.SetupAccount(aggAddr, wei.FromETH(10))
	node.SetupAccount(verAddr, wei.FromETH(10))

	if err := node.SetupL2(func(st *state.State) error {
		pt, err := token.Deploy(ptAddr, token.Config{
			Name: "ParoleToken", Symbol: "PT",
			MaxSupply: 10, InitialPrice: wei.FromFloat(0.2),
		})
		if err != nil {
			return err
		}
		return st.DeployToken(pt)
	}); err != nil {
		return nil, err
	}
	for _, u := range []chainid.Address{alice, bob} {
		if err := node.Deposit(u, wei.FromETH(5)); err != nil {
			return nil, err
		}
	}
	agg, err := rollup.NewAggregator(node, aggAddr, wei.FromETH(5), 1, nil)
	if err != nil {
		return nil, err
	}
	ver, err := rollup.NewVerifier(node, verAddr, wei.FromETH(5))
	if err != nil {
		return nil, err
	}

	gas := ovm.DefaultGasSchedule()
	steps := []struct {
		name string
		txn  tx.Tx
	}{
		{"Minting", tx.Mint(ptAddr, 0, alice)},
		{"Transfer", tx.Transfer(ptAddr, 0, alice, bob)},
		{"Burning", tx.Burn(ptAddr, 0, bob)},
	}
	rows := make([]Table3Row, 0, len(steps))
	for _, s := range steps {
		if err := node.SubmitTx(s.txn); err != nil {
			return nil, fmt.Errorf("submit %s: %w", s.name, err)
		}
		batch, res, err := agg.Step()
		if err != nil {
			return nil, fmt.Errorf("aggregate %s: %w", s.name, err)
		}
		if batch == nil || res.Executed != 1 {
			return nil, fmt.Errorf("%s did not execute", s.name)
		}
		if _, err := ver.Step(); err != nil {
			return nil, fmt.Errorf("verify %s: %w", s.name, err)
		}
		// Finalize through the challenge window.
		var anchors []Table3Row
		for i := 0; i < 3 && len(anchors) == 0; i++ {
			for _, a := range node.AdvanceRound() {
				anchors = append(anchors, Table3Row{
					TxType:       s.name,
					TxHash:       res.Steps[0].Tx.Hash(),
					BlockNumber:  node.L1().Height(),
					L1StateIndex: a.StateIndex,
					GasUsagePct:  gas.UsagePercent(res.Steps[0].Tx.Kind),
					FeeGwei:      int64(res.Steps[0].Fee / wei.Gwei),
				})
			}
		}
		if len(anchors) != 1 {
			return nil, fmt.Errorf("%s finalized %d anchors", s.name, len(anchors))
		}
		rows = append(rows, anchors[0])
	}
	return rows, nil
}
