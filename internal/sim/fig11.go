package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rl"
	"parole/internal/solver"
	"parole/internal/telemetry"
	"parole/internal/wei"
)

// Fig11Config parameterizes the DQN-vs-NLP-solver comparison of Fig. 11:
// execution time and memory versus mempool size.
type Fig11Config struct {
	// MempoolSizes to sweep (paper: 5, 10, 25, 50, 100).
	MempoolSizes []int
	// IFUs served.
	IFUs int
	// Gen is the DQN *training* budget (training happens offline in the
	// paper's threat model and is excluded from the measured inference).
	Gen gentranseq.Config
	// InferenceSteps bounds the measured DQN rollout.
	InferenceSteps int
	// SolverEvals caps each baseline's evaluations (0 = 40·N²).
	SolverEvals int
	// Workers selects the solver portfolio: ≤1 runs the sequential
	// hill-climb/annealing baselines (the default, and the configuration
	// whose seeded outputs the committed results pin down); ≥2 swaps in the
	// parallel portfolio solvers with that worker count. Branch-and-bound
	// stays sequential either way.
	Workers int
	// Seed for the study's RNG.
	Seed int64
}

// DefaultFig11Config returns the paper's grid at a laptop-scale budget.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		MempoolSizes:   []int{5, 10, 25, 50, 100},
		IFUs:           1,
		Gen:            gentranseq.FastConfig(),
		InferenceSteps: 60,
		Seed:           5,
	}
}

// Fig11Row is one measured point: a solver's cost at a mempool size.
type Fig11Row struct {
	MempoolSize int
	Solver      string
	Duration    time.Duration
	AllocBytes  uint64
	// Evaluations is the search effort: objective evaluations for the
	// baselines, environment steps for the DQN inference rollout.
	Evaluations int
	// Improvement found within the budget (context, not plotted).
	Improvement wei.Amount
}

// RunFig11 measures DQN inference against the solver baselines on identical
// scenarios.
func RunFig11(cfg Fig11Config) ([]Fig11Row, error) {
	if len(cfg.MempoolSizes) == 0 {
		return nil, fmt.Errorf("%w: fig11 axes", ErrBadScenario)
	}
	if cfg.InferenceSteps <= 0 {
		cfg.InferenceSteps = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vm := ovm.New()

	var rows []Fig11Row
	for _, n := range cfg.MempoolSizes {
		sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: n, NumIFUs: cfg.IFUs})
		if err != nil {
			return nil, fmt.Errorf("fig11 n=%d: %w", n, err)
		}

		// DQN: train offline (unmeasured), then measure a greedy inference
		// rollout — the cost an adversarial aggregator pays per batch.
		env, err := gentranseq.NewEnv(vm, sc.State, sc.Batch, sc.IFUs, cfg.Gen.Env)
		if err != nil {
			return nil, err
		}
		agent, trainErr := trainForInference(rng, env, cfg.Gen)
		if trainErr != nil {
			return nil, trainErr
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := gentranseq.RunGreedyEpisode(agent, env, cfg.InferenceSteps); err != nil {
			return nil, fmt.Errorf("fig11 n=%d dqn inference: %w", n, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		_, dqnImp := env.Best()
		rows = append(rows, Fig11Row{
			MempoolSize: n,
			Solver:      "dqn-inference",
			Duration:    elapsed,
			AllocBytes:  after.TotalAlloc - before.TotalAlloc,
			Evaluations: cfg.InferenceSteps, // the rollout never terminates early
			Improvement: dqnImp,
		})
		reg := telemetry.Default()
		reg.Counter("solver.dqn-inference.evals").Add(int64(cfg.InferenceSteps))
		reg.Counter("solver.dqn-inference.alloc_bytes").Add(int64(after.TotalAlloc - before.TotalAlloc))
		reg.Timer("solver.dqn-inference.time").ObserveDuration(elapsed)
		peak := reg.Gauge(telemetry.Metricf("fig11.heap_alloc_peak_bytes.n%03d", n))
		peak.SetMax(float64(reg.SampleMemStats().HeapAlloc))

		// Baselines on the same scenario with comparable budgets.
		budget := solver.Budget{MaxEvaluations: cfg.SolverEvals}
		if budget.MaxEvaluations == 0 {
			budget.MaxEvaluations = 40 * n * n
		}
		solvers := []solver.Solver{
			solver.BranchBound{},
			solver.HillClimb{},
			solver.Anneal{},
		}
		if cfg.Workers > 1 {
			solvers = []solver.Solver{
				solver.BranchBound{},
				solver.ParallelHillClimb{Workers: cfg.Workers},
				solver.ParallelAnneal{Workers: cfg.Workers},
			}
		}
		for _, s := range solvers {
			obj, err := solver.NewObjective(vm, sc.State, sc.Batch, sc.IFUs)
			if err != nil {
				return nil, err
			}
			sol, err := solver.Measure(s, rng, obj, budget)
			if err != nil {
				return nil, fmt.Errorf("fig11 n=%d %s: %w", n, s.Name(), err)
			}
			rows = append(rows, Fig11Row{
				MempoolSize: n,
				Solver:      s.Name(),
				Duration:    sol.Duration,
				AllocBytes:  sol.AllocBytes,
				Evaluations: sol.Evaluations,
				Improvement: sol.Improvement,
			})
			peak.SetMax(float64(reg.SampleMemStats().HeapAlloc))
		}
	}
	return rows, nil
}

// trainForInference performs the offline training phase (excluded from the
// Fig. 11 measurements, matching the paper: "the IFU trains the model
// offline").
func trainForInference(rng *rand.Rand, env *gentranseq.Env, gen gentranseq.Config) (*rl.Agent, error) {
	agent, err := rl.NewAgent(rng, env.ObservationSize(), env.NumActions(), gen.RL)
	if err != nil {
		return nil, fmt.Errorf("build agent: %w", err)
	}
	if _, err := gentranseq.TrainAgent(agent, env, gen.Episodes, gen.MaxSteps, gen.RL.Epsilon); err != nil {
		return nil, fmt.Errorf("offline training: %w", err)
	}
	return agent, nil
}
