package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parole/internal/arbitrage"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
)

func TestGenerateScenarioExecutable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vm := ovm.New()
	for _, n := range []int{5, 10, 25, 50} {
		sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: n, NumIFUs: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(sc.Batch) != n {
			t.Fatalf("n=%d: batch length %d", n, len(sc.Batch))
		}
		res, err := vm.Execute(sc.State, sc.Batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Executed != n {
			t.Fatalf("n=%d: only %d/%d executable in original order", n, res.Executed, n)
		}
	}
}

func TestGenerateScenarioIFUInvolvement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 3, 4} {
		sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 20, NumIFUs: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(sc.IFUs) != k {
			t.Fatalf("k=%d: %d IFUs", k, len(sc.IFUs))
		}
		a, err := arbitrage.Assess(sc.Batch, sc.IFUs)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Opportunity {
			t.Fatalf("k=%d: generated scenario presents no opportunity", k)
		}
		for i, ifu := range sc.IFUs {
			if got := len(sc.Batch.Involving(ifu)); got < 2 {
				t.Fatalf("k=%d: IFU %d involved in only %d txs", k, i, got)
			}
		}
	}
}

func TestGenerateScenarioFeeOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 15, NumIFUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sc.Batch); i++ {
		if sc.Batch[i-1].Fee() <= sc.Batch[i].Fee() {
			t.Fatal("batch not in descending fee order")
		}
	}
}

func TestGenerateScenarioValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 1}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("tiny mempool = %v", err)
	}
	if _, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 4, NumIFUs: 3}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("too many IFUs = %v", err)
	}
}

func TestGenerateScenarioDeterministicPerSeed(t *testing.T) {
	f := func(seed int64) bool {
		a, err := GenerateScenario(rand.New(rand.NewSource(seed)), ScenarioConfig{MempoolSize: 12, NumIFUs: 2})
		if err != nil {
			return false
		}
		b, err := GenerateScenario(rand.New(rand.NewSource(seed)), ScenarioConfig{MempoolSize: 12, NumIFUs: 2})
		if err != nil {
			return false
		}
		return a.Batch.Hash() == b.Batch.Hash() && a.State.Root() == b.State.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func fastSolverOptimizer() OptimizerConfig {
	return OptimizerConfig{Kind: OptHillClimb, SolverEvals: 800}
}

func tinyDQN() gentranseq.Config {
	cfg := gentranseq.FastConfig()
	cfg.Episodes = 6
	cfg.MaxSteps = 25
	cfg.RL.Hidden = []int{16}
	return cfg
}

func TestOptimizeBatchBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vm := ovm.New()
	sc, err := GenerateScenario(rng, ScenarioConfig{MempoolSize: 10, NumIFUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []OptimizerKind{OptHillClimb, OptAnneal} {
		out, err := OptimizeBatch(rng, vm, sc, OptimizerConfig{Kind: kind, SolverEvals: 600})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if out.Improvement < 0 {
			t.Fatalf("%s: negative improvement", kind)
		}
	}
	out, err := OptimizeBatch(rng, vm, sc, OptimizerConfig{Kind: OptDQN, Gen: tinyDQN()})
	if err != nil {
		t.Fatalf("dqn: %v", err)
	}
	if len(out.EpisodeRewards) != tinyDQN().Episodes {
		t.Fatalf("dqn rewards = %d episodes", len(out.EpisodeRewards))
	}
	if _, err := OptimizeBatch(rng, vm, sc, OptimizerConfig{Kind: "bogus"}); err == nil {
		t.Fatal("bogus optimizer accepted")
	}
}

func TestRunFig6Shape(t *testing.T) {
	cfg := Fig6Config{
		MempoolSizes:        []int{8, 16},
		IFUCounts:           []int{1, 2},
		AdversarialFraction: 0.10,
		Aggregators:         10,
		Trials:              3,
		Optimizer:           fastSolverOptimizer(),
		Seed:                6,
	}
	rows, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byCell := make(map[[2]int]Fig6Row)
	for _, r := range rows {
		byCell[[2]int{r.MempoolSize, r.IFUs}] = r
		if r.Batches != cfg.Trials*1 { // 10% of 10 aggregators = 1 adversary
			t.Fatalf("batches = %d", r.Batches)
		}
	}
	// Larger mempool must not hurt average profit per IFU (Fig. 6 trend).
	if byCell[[2]int{16, 1}].AvgProfitPerIFU < byCell[[2]int{8, 1}].AvgProfitPerIFU/2 {
		t.Log("warning: larger mempool gave much lower profit; seed variance")
	}
}

func TestRunFig7Shape(t *testing.T) {
	cfg := Fig7Config{
		AdversarialPercents: []int{10, 50},
		MempoolSizes:        []int{10},
		IFUs:                1,
		Aggregators:         10,
		Trials:              3,
		Optimizer:           fastSolverOptimizer(),
		Seed:                7,
	}
	rows, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Five adversaries must extract more total profit than one.
	var at10, at50 Fig7Row
	for _, r := range rows {
		if r.AdversarialPercent == 10 {
			at10 = r
		} else {
			at50 = r
		}
	}
	if at50.TotalProfit <= at10.TotalProfit {
		t.Fatalf("50%% adversaries (%s) should beat 10%% (%s)", at50.TotalProfit, at10.TotalProfit)
	}
	if at50.TotalProfitSats != at50.TotalProfit.Sats() {
		t.Fatal("sats conversion inconsistent")
	}
}

func TestRunFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training")
	}
	cfg := DefaultFig8Config()
	cfg.Episodes = 8
	cfg.MaxSteps = 15
	cfg.MempoolSize = 8
	cfg.RL.Hidden = []int{16}
	points, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfg.Epsilons)*cfg.Episodes {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Episode < 0 || p.Episode >= cfg.Episodes {
			t.Fatalf("episode %d out of range", p.Episode)
		}
	}
}

func TestRunFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training")
	}
	cfg := Fig9Config{
		MempoolSize: 8,
		IFUCounts:   []int{1},
		Runs:        4,
		Gen:         tinyDQN(),
		CurvePoints: 20,
		Seed:        8,
	}
	curves, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 1 {
		t.Fatalf("curves = %d", len(curves))
	}
	c := curves[0]
	if len(c.Samples)+c.Unsolved != cfg.Runs {
		t.Fatalf("samples %d + unsolved %d != runs %d", len(c.Samples), c.Unsolved, cfg.Runs)
	}
	if len(c.Samples) > 0 && len(c.X) != cfg.CurvePoints {
		t.Fatalf("curve points = %d", len(c.X))
	}
}

func TestRunFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training + solver sweeps")
	}
	cfg := Fig11Config{
		MempoolSizes:   []int{5, 10},
		IFUs:           1,
		Gen:            tinyDQN(),
		InferenceSteps: 20,
		SolverEvals:    300,
		Seed:           9,
	}
	rows, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 solvers × 2 sizes.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Duration <= 0 {
			t.Fatalf("%s at n=%d has no duration", r.Solver, r.MempoolSize)
		}
	}
}

func TestRunTable3MatchesPaper(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	wants := []struct {
		txType     string
		stateIndex uint64
		usage      float64
		feeGwei    int64
	}{
		{"Minting", 115_922, 90.91, 253},
		{"Transfer", 115_923, 69.84, 142_000},
		{"Burning", 115_924, 69.82, 141_000},
	}
	for i, w := range wants {
		r := rows[i]
		if r.TxType != w.txType {
			t.Fatalf("row %d type = %s", i, r.TxType)
		}
		if r.L1StateIndex != w.stateIndex {
			t.Errorf("%s state index = %d, want %d", w.txType, r.L1StateIndex, w.stateIndex)
		}
		if diff := r.GasUsagePct - w.usage; diff > 0.005 || diff < -0.005 {
			t.Errorf("%s gas usage = %.4f, want %.2f", w.txType, r.GasUsagePct, w.usage)
		}
		if r.FeeGwei != w.feeGwei {
			t.Errorf("%s fee = %d gwei, want %d", w.txType, r.FeeGwei, w.feeGwei)
		}
	}
	// The mint must land on the paper's block number.
	if rows[0].BlockNumber != 17_934_499 {
		t.Errorf("mint block = %d, want 17934499", rows[0].BlockNumber)
	}
	// Block numbers strictly increase.
	if !(rows[0].BlockNumber < rows[1].BlockNumber && rows[1].BlockNumber < rows[2].BlockNumber) {
		t.Error("block numbers not increasing")
	}
}
