package sim

import (
	"fmt"
	"math/rand"

	"parole/internal/chainid"
	"parole/internal/core"
	"parole/internal/defense"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rollup"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// CrossVariant names the adversary a cross-chain run deploys.
type CrossVariant string

// The crosschain experiment's adversary ladder, weakest to strongest.
const (
	// CrossHonest sequences every chain honestly — the profit baseline.
	CrossHonest CrossVariant = "honest"
	// CrossSingle is the paper's per-rollup adversary, confined to
	// AdversaryChain; every other chain is honest.
	CrossSingle CrossVariant = "single"
	// CrossShared is one entity holding every chain's sequencing rights,
	// reordering all batches atomically.
	CrossShared CrossVariant = "shared"
	// CrossHeadStart sequences the cheapest chain and sees the priciest
	// chain's sealed batch one round early, bridging tokens over the
	// spread.
	CrossHeadStart CrossVariant = "headstart"
)

// CrossInspect selects the defense posture of a cross-chain run.
type CrossInspect string

// Defense postures.
const (
	// CrossInspectOff runs no detector at all.
	CrossInspectOff CrossInspect = "off"
	// CrossInspectOn runs the cross-rollup detector over every chain's
	// collected batch each round and drops the demoted transactions.
	CrossInspectOn CrossInspect = "cross"
)

// CrossChainConfig parameterizes one multi-rollup run: a World of Chains
// rollups trading independent bonding-curve markets of the same collection,
// with the premint fractions seeding a cross-chain price discrepancy.
type CrossChainConfig struct {
	// Chains is the number of rollups sharing the L1 (2–3).
	Chains int
	// Users per chain (the same addresses act on every chain).
	Users int
	// MempoolSize is the per-chain per-round batch size.
	MempoolSize int
	// Rounds of the interleaved pipeline.
	Rounds int
	// NumIFUs is the adversary's colluding-user count.
	NumIFUs int
	// MaxSupply and InitialPrice of each chain's collection.
	MaxSupply    uint64
	InitialPrice wei.Amount
	// PremintPct is each chain's preminted share of MaxSupply in percent
	// (len Chains). Fewer available tokens mean a higher bonding-curve
	// price, so unequal fractions open the spread the head-start
	// arbitrageur harvests.
	PremintPct []int
	// Variant selects the adversary; AdversaryChain (1-based) confines
	// CrossSingle.
	Variant        CrossVariant
	AdversaryChain uint64
	// Inspect selects the defense posture; JointThreshold and
	// DetectorEvals parameterize the cross detector.
	Inspect        CrossInspect
	JointThreshold wei.Amount
	DetectorEvals  int
	// Gen is the GENTRANSEQ budget of every adversarial sequencer.
	Gen gentranseq.Config
	// MinSpread and MaxBridgesPerRound parameterize CrossHeadStart.
	MinSpread          wei.Amount
	MaxBridgesPerRound int
	// Seed drives workload generation, the adversary, and the detector.
	Seed int64
}

// DefaultCrossChainConfig returns the EXPERIMENTS.md two-rollup setup: an
// expensive chain (60% preminted) and a cheap one (20%).
func DefaultCrossChainConfig() CrossChainConfig {
	return CrossChainConfig{
		Chains:             2,
		Users:              12,
		MempoolSize:        12,
		Rounds:             4,
		NumIFUs:            1,
		MaxSupply:          96,
		InitialPrice:       wei.FromFloat(0.2),
		PremintPct:         []int{60, 20},
		Variant:            CrossHonest,
		AdversaryChain:     1,
		Inspect:            CrossInspectOff,
		JointThreshold:     wei.FromFloat(0.05),
		DetectorEvals:      1500,
		Gen:                gentranseq.FastConfig(),
		MaxBridgesPerRound: 4,
		Seed:               9,
	}
}

// CrossChainResult is one run's outcome.
type CrossChainResult struct {
	// Wealth is the IFUs' summed end-of-run TotalWealth across every
	// chain, after all bridges settled. Profit is Wealth minus the same
	// run's CrossHonest Wealth.
	Wealth wei.Amount
	// Batches committed and Reordered deviations across all chains.
	Batches   int
	Reordered int
	// BridgesInitiated/Released count the arbitrageur's token bridges.
	BridgesInitiated int
	BridgesReleased  int
	// Demotions is the total transactions the detector dropped; Triggers
	// counts the rounds in which the cross pass fired.
	Demotions int
	Triggers  int
}

// crossTokenAddr is every chain's collection contract address — the "same
// collection deployed on several rollups" the bridge maps 1:1.
var crossTokenAddr = chainid.DeriveAddress("sim/crosschain-collection")

// premintBase spaces each chain's preminted ids into disjoint ranges so a
// bridged token never collides on the destination chain.
func premintBase(chainID uint64) uint64 { return chainID * 1_000_000 }

// RunCrossChain executes one multi-rollup run on a real rollup.World: every
// round each chain receives a generated workload, the (possibly shared or
// time-advantaged) sequencer orders each collected batch, batches commit,
// and the world advances — finalizing batches and settling bridges.
func RunCrossChain(cfg CrossChainConfig) (*CrossChainResult, error) {
	if cfg.Chains < 2 || len(cfg.PremintPct) != cfg.Chains {
		return nil, fmt.Errorf("%w: %d chains need %d premint fractions",
			ErrBadScenario, cfg.Chains, cfg.Chains)
	}
	if cfg.MempoolSize < 2 || cfg.Rounds <= 0 || cfg.NumIFUs < 1 || cfg.Users < cfg.NumIFUs+2 {
		return nil, fmt.Errorf("%w: crosschain axes", ErrBadScenario)
	}

	users := make([]chainid.Address, cfg.Users)
	for i := range users {
		users[i] = chainid.UserAddress(i + 1)
	}
	ifus := append([]chainid.Address(nil), users[:cfg.NumIFUs]...)

	w, nodes, aggs, err := buildCrossWorld(cfg, users, ifus)
	if err != nil {
		return nil, err
	}

	vm := ovm.New()
	seqs, shared, head, err := crossSequencers(vm, cfg, ifus)
	if err != nil {
		return nil, err
	}
	var det *defense.CrossDetector
	if cfg.Inspect == CrossInspectOn {
		det, err = defense.NewCrossDetector(vm, defense.SearchOptimizer{
			Rng:            rand.New(rand.NewSource(cfg.Seed + 29)),
			MaxEvaluations: cfg.DetectorEvals,
		}, defense.CrossConfig{JointThreshold: cfg.JointThreshold})
		if err != nil {
			return nil, err
		}
	}
	leading, lagging := crossSpreadEndpoints(cfg)

	result := &CrossChainResult{}
	for round := 0; round < cfg.Rounds; round++ {
		// Feed every chain its round workload.
		for ci, node := range nodes {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(round)*1000 + int64(ci) + 1))
			if err := submitCrossWorkload(rng, node, users, ifus, cfg, round, ci); err != nil {
				return nil, fmt.Errorf("round %d chain %d: %w", round, ci+1, err)
			}
		}
		// Collect everywhere, then inspect across chains before anything
		// executes — the detector sees what the sequencers see.
		collected := make([]tx.Seq, cfg.Chains)
		pres := make([]*state.State, cfg.Chains)
		for ci, node := range nodes {
			collected[ci], pres[ci] = node.Collect(cfg.MempoolSize)
		}
		if det != nil {
			if err := crossInspectRound(det, nodes, collected, pres, result); err != nil {
				return nil, fmt.Errorf("round %d: %w", round, err)
			}
		}
		// Order and commit chain by chain, registration order. The
		// head-start adversary acts between the leading chain's commit and
		// the lagging chain's: it has seen a sealed batch the lagging
		// chain has not.
		for ci, node := range nodes {
			if err := commitCrossBatch(node, aggs[ci], seqs[ci], collected[ci], pres[ci], result); err != nil {
				return nil, fmt.Errorf("round %d chain %d: %w", round, ci+1, err)
			}
			if head != nil && node.ChainID() == leading {
				if err := headStartBridge(w, head, leading, lagging); err != nil {
					return nil, fmt.Errorf("round %d: %w", round, err)
				}
			}
		}
		w.AdvanceRound()
	}
	// Drain: finalize the tail batches and release every pending bridge.
	w.AdvanceRound()
	w.AdvanceRound()

	for _, t := range w.Bridge().Transfers() {
		result.BridgesInitiated++
		if t.Status == rollup.BridgeReleased {
			result.BridgesReleased++
		}
	}
	result.Reordered = crossReorderCount(seqs, shared, head)
	for _, node := range nodes {
		for _, ifu := range ifus {
			result.Wealth += node.L2State().TotalWealth(ifu)
		}
	}
	return result, nil
}

// buildCrossWorld assembles the rollups, markets, balances, and bonded
// aggregators of one run.
func buildCrossWorld(cfg CrossChainConfig, users, ifus []chainid.Address) (*rollup.World, []*rollup.Node, []chainid.Address, error) {
	w := rollup.NewWorld(rollup.WorldConfig{GenesisL1Number: 17_934_498})
	nodes := make([]*rollup.Node, cfg.Chains)
	aggs := make([]chainid.Address, cfg.Chains)
	ceiling := wei.MulDiv(cfg.InitialPrice, int64(cfg.MaxSupply), 1)
	for ci := 0; ci < cfg.Chains; ci++ {
		chainID := uint64(ci + 1)
		node, err := w.AddRollup(rollup.Config{ChainID: chainID, ChallengePeriod: 1})
		if err != nil {
			return nil, nil, nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 500 + int64(chainID)))
		if err := node.SetupL2(func(st *state.State) error {
			return setupCrossMarket(rng, st, cfg, chainID, users, ifus, ceiling)
		}); err != nil {
			return nil, nil, nil, err
		}
		agg := chainid.AggregatorAddress(90 + ci)
		node.SetupAccount(agg, wei.FromETH(10))
		if err := node.ORSC().RegisterAggregator(agg, wei.FromETH(5)); err != nil {
			return nil, nil, nil, err
		}
		nodes[ci] = node
		aggs[ci] = agg
	}
	return w, nodes, aggs, nil
}

// setupCrossMarket deploys one chain's market: the shared-address collection
// with the chain's premint fraction (ids in the chain's disjoint range, the
// earliest quarter owned by IFUs so the arbitrageur has inventory to bridge)
// and randomized user balances with IFUs topped past the curve ceiling.
func setupCrossMarket(rng *rand.Rand, st *state.State, cfg CrossChainConfig, chainID uint64, users, ifus []chainid.Address, ceiling wei.Amount) error {
	pt, err := token.Deploy(crossTokenAddr, token.Config{
		Name: "CrossToken", Symbol: "XPT",
		MaxSupply: cfg.MaxSupply, InitialPrice: cfg.InitialPrice,
	})
	if err != nil {
		return err
	}
	if err := st.DeployToken(pt); err != nil {
		return err
	}
	count := cfg.MaxSupply * uint64(cfg.PremintPct[chainID-1]) / 100
	for k := uint64(0); k < count; k++ {
		owner := users[rng.Intn(len(users))]
		if k < count/4 {
			owner = ifus[int(k)%len(ifus)]
		}
		if err := pt.Mint(owner, premintBase(chainID)+k); err != nil {
			return fmt.Errorf("premint chain %d: %w", chainID, err)
		}
	}
	for _, u := range users {
		st.SetBalance(u, wei.FromETH(1)+wei.Amount(rng.Int63n(int64(wei.FromETH(4))+1)))
	}
	for _, ifu := range ifus {
		st.SetBalance(ifu, st.Balance(ifu)+ceiling.Mul(2))
	}
	return nil
}

// crossSequencers wires each chain's sequencer for the configured variant.
func crossSequencers(vm *ovm.VM, cfg CrossChainConfig, ifus []chainid.Address) ([]rollup.Sequencer, *core.SharedSequencer, *core.HeadStart, error) {
	seqs := make([]rollup.Sequencer, cfg.Chains)
	for i := range seqs {
		seqs[i] = rollup.IdentitySequencer{}
	}
	attack := core.Config{IFUs: ifus, Gen: cfg.Gen}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	switch cfg.Variant {
	case CrossHonest:
		return seqs, nil, nil, nil
	case CrossSingle:
		if cfg.AdversaryChain < 1 || cfg.AdversaryChain > uint64(cfg.Chains) {
			return nil, nil, nil, fmt.Errorf("%w: adversary chain %d of %d",
				ErrBadScenario, cfg.AdversaryChain, cfg.Chains)
		}
		seq, err := core.NewSequencer(vm, rng, attack)
		if err != nil {
			return nil, nil, nil, err
		}
		seqs[cfg.AdversaryChain-1] = seq
		return seqs, nil, nil, nil
	case CrossShared:
		ss, err := core.NewSharedSequencer(vm, rng, attack)
		if err != nil {
			return nil, nil, nil, err
		}
		for i := range seqs {
			seqs[i] = ss.ForChain(uint64(i + 1))
		}
		return seqs, ss, nil, nil
	case CrossHeadStart:
		_, lagging := crossSpreadEndpoints(cfg)
		hs, err := core.NewHeadStart(vm, rng, core.HeadStartConfig{
			Config:             attack,
			Token:              crossTokenAddr,
			MinSpread:          cfg.MinSpread,
			MaxBridgesPerRound: cfg.MaxBridgesPerRound,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		seqs[lagging-1] = hs
		return seqs, nil, hs, nil
	default:
		return nil, nil, nil, fmt.Errorf("%w: variant %q", ErrBadScenario, cfg.Variant)
	}
}

// crossSpreadEndpoints picks the priciest (most preminted) chain as the
// leading end of the spread and the cheapest as the lagging end the
// arbitrageur sequences. Ties break toward the lower chain id.
func crossSpreadEndpoints(cfg CrossChainConfig) (leading, lagging uint64) {
	leading, lagging = 1, 1
	for i, pct := range cfg.PremintPct {
		if pct > cfg.PremintPct[leading-1] {
			leading = uint64(i + 1)
		}
		if pct < cfg.PremintPct[lagging-1] {
			lagging = uint64(i + 1)
		}
	}
	return leading, lagging
}

// submitCrossWorkload generates MempoolSize feasible transactions against
// the chain's live state — every IFU involved in at least a mint and a buy,
// descending fees reproducing the mempool's fee order — and submits them.
// Nonces are stamped per (round, chain, slot) so repeated shapes across
// rounds stay distinct in the pool.
func submitCrossWorkload(rng *rand.Rand, node *rollup.Node, users, ifus []chainid.Address, cfg CrossChainConfig, round, chainIdx int) error {
	involvement := max(2, cfg.MempoolSize/8)
	for len(ifus)*involvement > 2*cfg.MempoolSize/3 && involvement > 2 {
		involvement--
	}
	type quota struct {
		ifu  chainid.Address
		kind tx.Kind
	}
	slots := make([]*quota, cfg.MempoolSize)
	perm := rng.Perm(cfg.MempoolSize)
	next := 0
	kinds := []tx.Kind{tx.KindMint, tx.KindTransfer, tx.KindBurn}
	for _, ifu := range ifus {
		for j := 0; j < involvement; j++ {
			kind := kinds[rng.Intn(len(kinds))]
			switch j {
			case 0:
				kind = tx.KindMint
			case 1:
				kind = tx.KindTransfer
			}
			slots[perm[next]] = &quota{ifu: ifu, kind: kind}
			next++
		}
	}
	vm := ovm.New()
	shadow := node.L2State()
	for i := 0; i < cfg.MempoolSize; i++ {
		var (
			t   tx.Tx
			err error
		)
		if q := slots[i]; q != nil {
			t, err = generateFor(rng, shadow, crossTokenAddr, q.ifu, q.kind, users)
		} else {
			t, err = generateAny(rng, shadow, crossTokenAddr, users)
		}
		if err != nil {
			return fmt.Errorf("slot %d: %w", i, err)
		}
		t = t.WithFees(wei.Amount((cfg.MempoolSize-i)*10), 0).
			WithNonce(uint64(round)*10_000 + uint64(chainIdx)*1_000 + uint64(i))
		res, err := vm.Execute(shadow, tx.Seq{t})
		if err != nil {
			return err
		}
		if res.Executed != 1 {
			return fmt.Errorf("%w: generated tx not executable: %v", ErrStuck, t)
		}
		shadow = res.State
		if err := node.SubmitTx(t); err != nil {
			return fmt.Errorf("submit slot %d: %w", i, err)
		}
	}
	return nil
}

// crossInspectRound runs the cross detector over the round's collected
// batches and drops the demoted transactions before sequencing.
func crossInspectRound(det *defense.CrossDetector, nodes []*rollup.Node, collected []tx.Seq, pres []*state.State, result *CrossChainResult) error {
	batches := make([]defense.ChainBatch, len(nodes))
	for ci, node := range nodes {
		batches[ci] = defense.ChainBatch{ChainID: node.ChainID(), State: pres[ci], Batch: collected[ci]}
	}
	report, err := det.Inspect(batches)
	if err != nil {
		return err
	}
	if report.Triggered {
		result.Triggers++
	}
	for _, cr := range report.Chains {
		if cr.Triggered {
			result.Triggers++
		}
	}
	result.Demotions += report.DemotedCount()
	for ci, node := range nodes {
		drop := append([]tx.Tx(nil), report.Chains[ci].Demoted...)
		drop = append(drop, report.Demoted[node.ChainID()]...)
		collected[ci] = crossSurviving(collected[ci], drop)
	}
	return nil
}

// crossSurviving removes demoted transactions from a collected batch.
func crossSurviving(batch tx.Seq, demoted []tx.Tx) tx.Seq {
	if len(demoted) == 0 {
		return batch
	}
	drop := make(map[chainid.Hash]bool, len(demoted))
	for _, t := range demoted {
		drop[t.Hash()] = true
	}
	var out tx.Seq
	for _, t := range batch {
		if !drop[t.Hash()] {
			out = append(out, t)
		}
	}
	return out
}

// commitCrossBatch orders the surviving batch with the chain's sequencer and
// commits it. Batches thinned below two transactions commit as-is.
func commitCrossBatch(node *rollup.Node, agg chainid.Address, seq rollup.Sequencer, batch tx.Seq, pre *state.State, result *CrossChainResult) error {
	if len(batch) == 0 {
		return nil
	}
	ordered := batch
	if len(batch) >= 2 {
		var err error
		if ordered, err = seq.Order(batch, pre); err != nil {
			return err
		}
	}
	if _, _, err := node.CommitBatch(agg, batch, ordered); err != nil {
		return err
	}
	result.Batches++
	return nil
}

// headStartBridge feeds the arbitrageur the leading chain's sealed state and
// executes its bridge plan: IFU-owned tokens leave the cheap chain for the
// expensive one.
func headStartBridge(w *rollup.World, head *core.HeadStart, leading, lagging uint64) error {
	lead, err := w.Rollup(leading)
	if err != nil {
		return err
	}
	lag, err := w.Rollup(lagging)
	if err != nil {
		return err
	}
	if err := head.Observe(lead.L2State()); err != nil {
		return err
	}
	lagState := lag.L2State()
	plan, err := head.PlanBridge(lagState)
	if err != nil {
		return err
	}
	if len(plan.TokenIDs) == 0 {
		return nil
	}
	pt, err := lagState.Token(crossTokenAddr)
	if err != nil {
		return err
	}
	for _, id := range plan.TokenIDs {
		owner, ok := pt.OwnerOf(id)
		if !ok {
			return fmt.Errorf("sim: planned bridge of unminted token %d", id)
		}
		if _, err := w.Bridge().SendToken(lagging, leading, owner, crossTokenAddr, id); err != nil {
			return fmt.Errorf("bridge token %d: %w", id, err)
		}
	}
	return nil
}

// crossReorderCount totals the adversary's deviations from fee order.
func crossReorderCount(seqs []rollup.Sequencer, shared *core.SharedSequencer, head *core.HeadStart) int {
	n := 0
	if shared != nil {
		for _, r := range shared.Reports() {
			if r.Reordered {
				n++
			}
		}
		return n
	}
	if head != nil {
		for _, r := range head.Reports() {
			if r.Reordered {
				n++
			}
		}
		return n
	}
	for _, s := range seqs {
		if adv, ok := s.(*core.Sequencer); ok {
			for _, r := range adv.Reports() {
				if r.Reordered {
					n++
				}
			}
		}
	}
	return n
}
