package sim

import "testing"

// TestAdversaryCountRounding pins the fraction→count conversion at the
// boundaries the Fig. 7 sweep exercises: round-half-up, a floor of one
// adversary for any positive fraction, and zero only at fraction zero.
func TestAdversaryCountRounding(t *testing.T) {
	cases := []struct {
		population int
		fraction   float64
		want       int
	}{
		{100, 0, 0},       // zero fraction → no adversaries
		{0, 0, 0},         // empty population, zero fraction
		{100, 0.25, 25},   // exact cell
		{100, 0.5, 50},    // the paper's 50% point
		{100, 1, 100},     // everyone
		{10, 0.04, 1},     // 0.4 rounds down but positive fraction floors at 1
		{10, 0.05, 1},     // 0.5 rounds half-up to 1
		{10, 0.14, 1},     // 1.4 → 1
		{10, 0.15, 2},     // 1.5 → 2 (half-up)
		{10, 0.25, 3},     // 2.5 → 3 (half-up, not banker's)
		{3, 0.5, 2},       // 1.5 → 2 on an odd population
		{1, 0.001, 1},     // tiny fraction of one user still yields one
		{0, 0.5, 1},       // degenerate: positive fraction of empty population floors at 1
		{1000, 0.0004, 1}, // 0.4 → floor kicks in
		{1000, 0.0005, 1}, // 0.5 → rounds to 1 anyway
		{1000, 0.0015, 2}, // 1.5 → 2
	}
	for _, tc := range cases {
		if got := adversaryCount(tc.population, tc.fraction); got != tc.want {
			t.Errorf("adversaryCount(%d, %g) = %d, want %d", tc.population, tc.fraction, got, tc.want)
		}
	}
}
