// Package load generates sustained JSON-RPC traffic against a running
// parole-node and measures what the node does under it: per-method p50/p99
// latency and sustained TPS, published as a results/load_*.tsv artifact
// (cmd/parole-load).
//
// The write side replays synthetic user populations derived from
// internal/snapshot collection histories — the same geometric-random-walk
// price paths behind Fig. 10. Each history step becomes an NFT operation
// (price rising → mint, falling → burn, flat → transfer between users), so
// the traffic shape tracks the paper's marketplace dynamics rather than
// uniform noise. The read side rotates over the node's query surface. The
// whole schedule is precomputed from one seed, so a load run is
// reproducible request-for-request.
package load

import (
	"fmt"
	"math/rand"

	"parole/internal/rpc"
	"parole/internal/snapshot"
	"parole/internal/wei"
)

// Config parameterizes a load run.
type Config struct {
	// Requests is the total number of RPC requests to issue.
	Requests int
	// Workers is the number of concurrent request workers.
	Workers int
	// RPS throttles the aggregate request rate; 0 means unthrottled.
	RPS float64
	// Users is the synthetic population size. Users map to
	// chainid.UserAddress(0..Users-1), matching parole-node's genesis
	// accounts.
	Users int
	// Collections is how many snapshot histories drive the write mix.
	// Zero defaults to 6 (both chains × three FT classes).
	Collections int
	// ReadFraction is the share of requests that are reads in [0,1).
	ReadFraction float64
	// Seed derives the whole schedule; equal seeds give identical
	// request streams.
	Seed int64
}

// Validate fills defaults and rejects nonsense.
func (c *Config) Validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("load: requests must be positive, got %d", c.Requests)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("load: workers must be positive, got %d", c.Workers)
	}
	if c.Users <= 0 {
		return fmt.Errorf("load: users must be positive, got %d", c.Users)
	}
	if c.ReadFraction < 0 || c.ReadFraction >= 1 {
		return fmt.Errorf("load: read fraction %g out of [0,1)", c.ReadFraction)
	}
	if c.Collections <= 0 {
		c.Collections = 6
	}
	return nil
}

// Call is one scheduled JSON-RPC request.
type Call struct {
	Method string
	Params []any
}

// BuildSchedule precomputes the full request stream for a run against the
// collection deployed at tokenHex, with userHex the population's addresses.
// The schedule is a pure function of cfg.Seed.
func BuildSchedule(cfg Config, tokenHex string, userHex []string) ([]Call, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(userHex) == 0 {
		return nil, fmt.Errorf("load: empty user population")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	writes := newWriteStream(rng, cfg, tokenHex, userHex)
	calls := make([]Call, 0, cfg.Requests)
	for len(calls) < cfg.Requests {
		if rng.Float64() < cfg.ReadFraction {
			calls = append(calls, writes.read(rng))
		} else {
			calls = append(calls, writes.write(rng))
		}
	}
	return calls, nil
}

// writeStream turns snapshot price histories into NFT operations while
// tracking a local view of ownership, so transfers and burns reference ids
// this run actually minted.
type writeStream struct {
	token string
	users []string

	// ops is the flattened direction stream from the generated histories;
	// cursor walks it, cycling when exhausted.
	ops    []direction
	cursor int

	nextID uint64
	owned  []ownedToken
}

type ownedToken struct {
	id    uint64
	owner int // index into users
}

type direction int8

const (
	dirUp direction = iota
	dirDown
	dirFlat
)

// newWriteStream generates cfg.Collections snapshot histories (alternating
// chains, cycling the three FT classes) and flattens them into one
// direction stream.
func newWriteStream(rng *rand.Rand, cfg Config, tokenHex string, userHex []string) *writeStream {
	ownerships := []int{40, 500, 5000} // one per FT class: LFT, MFT, HFT
	chains := []snapshot.Chain{snapshot.Optimism, snapshot.Arbitrum}
	var ops []direction
	for i := 0; i < cfg.Collections; i++ {
		col, err := snapshot.Generate(rng, snapshot.GenConfig{
			Chain:      chains[i%len(chains)],
			Ownerships: ownerships[i%len(ownerships)],
		})
		if err != nil {
			// Generate only fails on invalid config; the inputs above are
			// fixed valid values.
			panic(fmt.Sprintf("load: generate collection: %v", err))
		}
		for j := 1; j < len(col.History); j++ {
			switch {
			case col.History[j].Price > col.History[j-1].Price:
				ops = append(ops, dirUp)
			case col.History[j].Price < col.History[j-1].Price:
				ops = append(ops, dirDown)
			default:
				ops = append(ops, dirFlat)
			}
		}
	}
	return &writeStream{token: tokenHex, users: userHex, ops: ops, nextID: 1}
}

// write produces the next transaction submission in the stream.
func (w *writeStream) write(rng *rand.Rand) Call {
	dir := w.ops[w.cursor%len(w.ops)]
	w.cursor++
	p := rpc.SendTxParams{
		Token:       w.token,
		BaseFee:     wei.Amount(1 + rng.Intn(20)),
		PriorityFee: wei.Amount(rng.Intn(10)),
	}
	switch {
	case dir == dirDown && len(w.owned) > 0:
		// Falling price: an owner exits — burn.
		i := rng.Intn(len(w.owned))
		t := w.owned[i]
		w.owned[i] = w.owned[len(w.owned)-1]
		w.owned = w.owned[:len(w.owned)-1]
		p.Kind, p.TokenID, p.From = "burn", t.id, w.users[t.owner]
	case dir == dirFlat && len(w.owned) > 0:
		// Flat price: tokens change hands — transfer.
		i := rng.Intn(len(w.owned))
		t := &w.owned[i]
		buyer := rng.Intn(len(w.users) - 1)
		if buyer >= t.owner {
			buyer++ // any user but the seller
		}
		p.Kind, p.TokenID, p.From, p.To = "transfer", t.id, w.users[t.owner], w.users[buyer]
		t.owner = buyer
	default:
		// Rising price (or nothing to sell yet): demand — mint.
		owner := rng.Intn(len(w.users))
		p.Kind, p.TokenID, p.From = "mint", w.nextID, w.users[owner]
		w.owned = append(w.owned, ownedToken{id: w.nextID, owner: owner})
		w.nextID++
	}
	return Call{Method: "parole_sendTransaction", Params: []any{p}}
}

// read produces the next query, rotating over the node's read surface.
func (w *writeStream) read(rng *rand.Rand) Call {
	switch rng.Intn(6) {
	case 0:
		return Call{Method: "eth_getBalance", Params: []any{w.users[rng.Intn(len(w.users))], "latest"}}
	case 1:
		if len(w.owned) > 0 {
			t := w.owned[rng.Intn(len(w.owned))]
			return Call{Method: "parole_ownerOf", Params: []any{w.token, t.id}}
		}
		return Call{Method: "parole_tokenInfo", Params: []any{w.token}}
	case 2:
		return Call{Method: "parole_stateRoot", Params: []any{}}
	case 3:
		return Call{Method: "parole_mempoolStatus", Params: []any{}}
	case 4:
		return Call{Method: "parole_health", Params: []any{}}
	default:
		return Call{Method: "eth_blockNumber", Params: []any{}}
	}
}
