package load

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"parole/internal/rpc"
)

// Sample is the measurement of one issued request.
type Sample struct {
	Method  string
	Latency time.Duration
	// Err is nil on success, an *rpc.Error when the server returned a
	// JSON-RPC error, and any other error for transport/protocol failures.
	Err error
}

// Result is the raw outcome of a run.
type Result struct {
	Samples []Sample
	// Wall is issue-to-last-response wall time.
	Wall time.Duration
	// Requests, Errors, and Malformed tally the samples: Errors are
	// JSON-RPC error responses, Malformed are transport failures or
	// protocol violations (the acceptance bar requires zero of either).
	Requests, Errors, Malformed int
}

// Run issues every scheduled call against c using the given worker count,
// optionally throttled to rps aggregate requests per second. Workers pull
// from a shared stream, so request order across workers is nondeterministic
// but the set of requests is exactly the schedule. A ctx cancellation
// aborts the run with an error — partial measurements are never reported.
func Run(ctx context.Context, c *rpc.Client, calls []Call, workers int, rps float64) (*Result, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("load: workers must be positive, got %d", workers)
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("load: empty schedule")
	}

	feed := make(chan Call)
	samples := make([]Sample, 0, len(calls))
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Sample, 0, len(calls)/workers+1)
			for call := range feed {
				t0 := time.Now()
				err := c.Call(ctx, call.Method, nil, call.Params...)
				local = append(local, Sample{Method: call.Method, Latency: time.Since(t0), Err: err})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}()
	}

	// Feed the schedule, pacing each dispatch to its slot when throttled.
	var cancelled bool
feedLoop:
	for i, call := range calls {
		if rps > 0 {
			slot := start.Add(time.Duration(float64(i) / rps * float64(time.Second)))
			if d := time.Until(slot); d > 0 {
				select {
				case <-ctx.Done():
					cancelled = true
					break feedLoop
				case <-time.After(d):
				}
			}
		}
		select {
		case <-ctx.Done():
			cancelled = true
			break feedLoop
		case feed <- call:
		}
	}
	close(feed)
	wg.Wait()
	if cancelled {
		return nil, fmt.Errorf("load: run aborted: %w", ctx.Err())
	}

	res := &Result{Samples: samples, Wall: time.Since(start), Requests: len(samples)}
	for _, s := range samples {
		if s.Err == nil {
			continue
		}
		var rpcErr *rpc.Error
		if errors.As(s.Err, &rpcErr) {
			res.Errors++
		} else {
			res.Malformed++
		}
	}
	return res, nil
}
