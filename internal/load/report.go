package load

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parole/internal/stats"
)

// MethodStats is one aggregated row of the latency report.
type MethodStats struct {
	Method   string
	Requests int
	Errors   int
	P50      float64 // milliseconds
	P99      float64 // milliseconds
	TPS      float64 // completed requests per wall-clock second
}

// OverallRow is the Method value of the aggregate row.
const OverallRow = "ALL"

// Aggregate folds a run into per-method rows (sorted by method name)
// followed by the OverallRow aggregate — the table results/load_*.tsv
// records.
func Aggregate(res *Result) ([]MethodStats, error) {
	wallSec := res.Wall.Seconds()
	if wallSec <= 0 {
		return nil, fmt.Errorf("load: non-positive wall time %s", res.Wall)
	}
	byMethod := map[string][]Sample{}
	for _, s := range res.Samples {
		byMethod[s.Method] = append(byMethod[s.Method], s)
	}
	methods := make([]string, 0, len(byMethod))
	for m := range byMethod {
		methods = append(methods, m)
	}
	sort.Strings(methods)

	rows := make([]MethodStats, 0, len(methods)+1)
	for _, m := range methods {
		row, err := aggregateRow(m, byMethod[m], wallSec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	all, err := aggregateRow(OverallRow, res.Samples, wallSec)
	if err != nil {
		return nil, err
	}
	return append(rows, all), nil
}

func aggregateRow(method string, samples []Sample, wallSec float64) (MethodStats, error) {
	lat := make([]float64, 0, len(samples))
	errs := 0
	for _, s := range samples {
		lat = append(lat, float64(s.Latency.Microseconds())/1e3)
		if s.Err != nil {
			errs++
		}
	}
	p50, err := stats.Percentile(lat, 50)
	if err != nil {
		return MethodStats{}, fmt.Errorf("load: %s p50: %w", method, err)
	}
	p99, err := stats.Percentile(lat, 99)
	if err != nil {
		return MethodStats{}, fmt.Errorf("load: %s p99: %w", method, err)
	}
	return MethodStats{
		Method:   method,
		Requests: len(samples),
		Errors:   errs,
		P50:      p50,
		P99:      p99,
		TPS:      float64(len(samples)) / wallSec,
	}, nil
}

// FormatTSV renders the report table.
func FormatTSV(rows []MethodStats) string {
	var b strings.Builder
	b.WriteString("method\trequests\terrors\tp50_ms\tp99_ms\ttps\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%d\t%d\t%.3f\t%.3f\t%.1f\n",
			r.Method, r.Requests, r.Errors, r.P50, r.P99, r.TPS)
	}
	return b.String()
}

// WriteTSV writes the report to path atomically (tmp file + rename in the
// destination directory), creating parent directories as needed. An
// aborted run therefore never leaves a partial artifact.
func WriteTSV(path string, rows []MethodStats) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(FormatTSV(rows)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
