package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"parole/internal/chainid"
	"parole/internal/rollup"
	"parole/internal/rpc"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/wei"
)

func testConfig() Config {
	return Config{
		Requests:     200,
		Workers:      4,
		Users:        8,
		Collections:  3,
		ReadFraction: 0.4,
		Seed:         7,
	}
}

func testUsers(n int) []string {
	out := make([]string, n)
	for k := range out {
		out[k] = chainid.UserAddress(k).Hex()
	}
	return out
}

func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := testConfig()
	token := chainid.DeriveAddress("load-test/collection").Hex()
	a, err := BuildSchedule(cfg, token, testUsers(cfg.Users))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(cfg, token, testUsers(cfg.Users))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Requests {
		t.Fatalf("schedule length %d, want %d", len(a), cfg.Requests)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}

	cfg.Seed++
	c, err := BuildSchedule(cfg, token, testUsers(cfg.Users))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}

	// The mix holds roughly: both reads and writes are present.
	reads, writes := 0, 0
	for _, call := range a {
		if call.Method == "parole_sendTransaction" {
			writes++
		} else {
			reads++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("degenerate mix: %d reads, %d writes", reads, writes)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Requests: 0, Workers: 1, Users: 1, Collections: 1},
		{Requests: 1, Workers: 0, Users: 1, Collections: 1},
		{Requests: 1, Workers: 1, Users: 0, Collections: 1},
		{Requests: 1, Workers: 1, Users: 1, Collections: 1, ReadFraction: 1.5},
		{Requests: 1, Workers: 1, Users: 1, Collections: 1, ReadFraction: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
	// Zero collections is not an error — it defaults to 6 (both chains ×
	// three FT classes).
	defaulted := Config{Requests: 1, Workers: 1, Users: 1}
	if err := defaulted.Validate(); err != nil {
		t.Errorf("Validate rejected zero collections: %v", err)
	}
	if defaulted.Collections != 6 {
		t.Errorf("Collections defaulted to %d, want 6", defaulted.Collections)
	}
}

// newLoadTarget stands up a full in-process node (rollup + sequencer + RPC
// server) and returns a client plus the deployed collection.
func newLoadTarget(t *testing.T, users int) (*rpc.Client, string) {
	t.Helper()
	node := rollup.NewNode(rollup.Config{ChallengePeriod: 2})
	collection := chainid.DeriveAddress("load-test/collection")
	contract, err := token.Deploy(collection, token.Config{
		Name: "Load PT", Symbol: "LPT", MaxSupply: 1 << 20, InitialPrice: wei.FromFloat(0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.SetupL2(func(s *state.State) error { return s.DeployToken(contract) }); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < users; k++ {
		u := chainid.UserAddress(k)
		node.SetupAccount(u, wei.FromETH(1000))
		if err := node.Deposit(u, wei.FromETH(1000)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := rpc.NewSequencer(node, rpc.SequencerConfig{Interval: time.Hour, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rpc.NewServer(node, seq, rpc.Config{}))
	t.Cleanup(ts.Close)
	return rpc.NewClient(ts.URL), collection.Hex()
}

func TestRunAgainstNode(t *testing.T) {
	cfg := testConfig()
	client, collection := newLoadTarget(t, cfg.Users)
	schedule, err := BuildSchedule(cfg, collection, testUsers(cfg.Users))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), client, schedule, cfg.Workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != cfg.Requests {
		t.Fatalf("measured %d requests, want %d", res.Requests, cfg.Requests)
	}
	if res.Malformed != 0 || res.Errors != 0 {
		t.Fatalf("run drew %d errors, %d malformed; want 0/0", res.Errors, res.Malformed)
	}

	rows, err := Aggregate(res)
	if err != nil {
		t.Fatal(err)
	}
	overall := rows[len(rows)-1]
	if overall.Method != OverallRow || overall.Requests != cfg.Requests {
		t.Fatalf("last row = %+v, want %s with %d requests", overall, OverallRow, cfg.Requests)
	}
	if overall.P50 <= 0 || overall.P99 < overall.P50 || overall.TPS <= 0 {
		t.Fatalf("implausible aggregate: %+v", overall)
	}
	// Per-method rows are sorted by name.
	for i := 1; i < len(rows)-1; i++ {
		if rows[i-1].Method > rows[i].Method {
			t.Fatalf("rows not sorted: %q before %q", rows[i-1].Method, rows[i].Method)
		}
	}
}

func TestRunCancellationLeavesNoPartialArtifacts(t *testing.T) {
	cfg := testConfig()
	client, collection := newLoadTarget(t, cfg.Users)
	schedule, err := BuildSchedule(cfg, collection, testUsers(cfg.Users))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort, not report partials
	// Throttle hard so the feed loop hits its ctx check even if the first
	// few dispatches race the cancellation.
	res, err := Run(ctx, client, schedule, cfg.Workers, 10)
	if err == nil {
		t.Fatal("Run returned measurements from a cancelled context")
	}
	if res != nil {
		t.Fatalf("Run returned partial result %+v alongside error", res)
	}

	// The artifact path stays untouched on an aborted run: WriteTSV is only
	// reached with a complete Result, and even then writes atomically.
	dir := t.TempDir()
	out := filepath.Join(dir, "load_abort.tsv")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("aborted run left files behind: %v", entries)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("artifact exists after aborted run: %v", err)
	}
}

func TestRunRejectsBadArguments(t *testing.T) {
	client, _ := newLoadTarget(t, 1)
	if _, err := Run(context.Background(), client, nil, 4, 0); err == nil {
		t.Error("Run accepted an empty schedule")
	}
	if _, err := Run(context.Background(), client, []Call{{Method: "parole_health"}}, 0, 0); err == nil {
		t.Error("Run accepted zero workers")
	}
}

func TestWriteTSVAtomic(t *testing.T) {
	rows := []MethodStats{
		{Method: "parole_health", Requests: 10, P50: 1.5, P99: 2.5, TPS: 100},
		{Method: OverallRow, Requests: 10, P50: 1.5, P99: 2.5, TPS: 100},
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "load_test.tsv")
	if err := WriteTSV(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != "method\trequests\terrors\tp50_ms\tp99_ms\ttps" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	for _, line := range lines[1:] {
		if cols := strings.Split(line, "\t"); len(cols) != 6 {
			t.Fatalf("row %q has %d columns, want 6", line, len(cols))
		}
	}
	// No tmp residue next to the artifact.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("artifact dir holds %d entries, want just the TSV: %v", len(entries), entries)
	}
}

func TestScheduleParamsAreWellFormedJSON(t *testing.T) {
	cfg := testConfig()
	schedule, err := BuildSchedule(cfg, chainid.DeriveAddress("x").Hex(), testUsers(cfg.Users))
	if err != nil {
		t.Fatal(err)
	}
	for _, call := range schedule {
		if _, err := json.Marshal(call.Params); err != nil {
			t.Fatalf("%s params not marshalable: %v", call.Method, err)
		}
	}
}
