package cli

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestListenWritesPortFile(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "node.port")
	ln, err := Listen("127.0.0.1:0", portFile)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	data, err := os.ReadFile(portFile)
	if err != nil {
		t.Fatalf("port file not written: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != ln.Addr().String() {
		t.Fatalf("port file records %q, listener bound %q", got, ln.Addr())
	}
}

func TestListenNoPortFile(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
}

// TestServeHTTPDrainsInFlight is the long-running-server shutdown contract:
// cancelling the context must let an already-accepted request run to
// completion (the client sees a full 200 response, not a reset), and
// ServeHTTP must return nil for the clean stop.
func TestServeHTTPDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	})

	ln, err := Listen("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ServeHTTP(ctx, ln, &http.Server{Handler: mux}, 5*time.Second) }()

	got := make(chan string, 1)
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			reqErr <- err
			return
		}
		got <- string(body)
	}()

	// Once the request is in the handler, trigger shutdown, then let the
	// handler finish. Shutdown must wait for it.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}
	cancel()
	time.Sleep(10 * time.Millisecond) // give shutdown a head start before releasing
	close(release)

	select {
	case body := <-got:
		if body != "drained" {
			t.Fatalf("in-flight response = %q, want %q", body, "drained")
		}
	case err := <-reqErr:
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeHTTP returned %v after clean shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeHTTP did not return after shutdown")
	}

	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/slow"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestServeHTTPReturnsServeError(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // closed listener → Serve fails immediately
	if err := ServeHTTP(context.Background(), ln, &http.Server{Handler: http.NewServeMux()}, time.Second); err == nil {
		t.Fatal("ServeHTTP = nil on a closed listener, want error")
	}
}
