package cli

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPprofOwnMuxAndGracefulStop pins the -pprof fix: the profiler serves on
// its own mux (so the default mux can't leak handlers into it and vice
// versa), binds a discoverable address, and dies with Stop — the
// graceful-drain hook Report runs.
func TestPprofOwnMuxAndGracefulStop(t *testing.T) {
	var o Observability
	o.Tool = "test-tool"
	o.Pprof = "127.0.0.1:0"
	if err := o.startPprof(); err != nil {
		t.Fatal(err)
	}
	addr := o.PprofAddr()
	if addr == nil {
		t.Fatal("PprofAddr = nil after start")
	}

	get := func(path string) (*http.Response, error) {
		client := &http.Client{Timeout: 5 * time.Second}
		return client.Get("http://" + addr.String() + path)
	}

	resp, err := get("/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index = %d %q", resp.StatusCode, string(body)[:min(len(body), 120)])
	}

	// A poke at a path the pprof mux doesn't own must 404 here, proving this
	// is a dedicated mux and not http.DefaultServeMux.
	resp, err = get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-pprof path on pprof mux = %d, want 404", resp.StatusCode)
	}

	if err := o.Stop(2 * time.Second); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if o.PprofAddr() != nil {
		t.Fatal("PprofAddr must be nil after Stop")
	}
	if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		t.Fatal("pprof listener still accepting after Stop")
	}

	// Stop is idempotent and safe when -pprof was never given.
	if err := o.Stop(time.Second); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	var off Observability
	if err := off.Stop(time.Second); err != nil {
		t.Fatalf("Stop without pprof: %v", err)
	}
}
