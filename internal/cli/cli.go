// Package cli holds the plumbing the parole binaries used to duplicate:
// the -metrics/-trace/-pprof observability flags with their exit-time
// export block, signal/timeout-aware contexts, and usage text that lists
// the experiment and optimizer registries. Each binary is a thin flag
// parser over this package plus the registries.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on the default mux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parole/internal/telemetry"
	"parole/internal/trace"
)

// Observability bundles the observability flags shared by every binary.
// Register the flags, Start before the workload, Report after it; none of
// it affects seeded outputs (the telemetry and trace guard tests pin this).
type Observability struct {
	// Tool names the binary in diagnostics ("parole-bench").
	Tool string
	// Metrics is the -metrics path (TSV, or JSON when it ends in .json).
	Metrics string
	// TracePath is the -trace path (Chrome trace JSON plus derived
	// .summary.tsv and .timeline.tsv).
	TracePath string
	// Pprof is the -pprof listen address.
	Pprof string
}

// Register installs the three flags on fs with the canonical help text (the
// four binaries' copies had drifted).
func (o *Observability) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Metrics, "metrics", "",
		"write a telemetry snapshot to this path at exit (TSV, or JSON for .json)")
	fs.StringVar(&o.TracePath, "trace", "",
		"enable span tracing and write a Chrome trace (plus .summary.tsv/.timeline.tsv) to this path at exit")
	fs.StringVar(&o.Pprof, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Start enables the stage timers, switches the tracer on when -trace was
// given, and starts the pprof server when -pprof was given. Call it after
// flag parsing, before the workload.
func (o *Observability) Start() {
	// Stage timers are reporting-layer wall-clock sampling; enabling them
	// never touches the seeded experiment paths. The span tracer is equally
	// passive (docs/TRACING.md).
	telemetry.Default().EnableTimers(true)
	if o.TracePath != "" {
		trace.Default().Enable()
	}
	if o.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(o.Pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", o.Tool, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "%s: pprof at http://%s/debug/pprof/\n", o.Tool, o.Pprof)
	}
}

// Report writes the telemetry snapshot (-metrics) and the trace artifacts
// (-trace), returning the snapshot and the trace record for a run manifest.
func (o *Observability) Report() (telemetry.Snapshot, *telemetry.TraceInfo, error) {
	snap := telemetry.Default().Snapshot()
	info := &telemetry.TraceInfo{Enabled: trace.Default().Enabled()}
	if o.Metrics != "" {
		if err := snap.WriteFile(o.Metrics); err != nil {
			return snap, info, err
		}
	}
	if o.TracePath != "" {
		sha, err := trace.Default().WriteFiles(o.TracePath)
		if err != nil {
			return snap, info, err
		}
		info.File = o.TracePath
		info.SHA256 = sha
	}
	return snap, info, nil
}

// Context returns a context that cancels on SIGINT/SIGTERM and, when
// timeout is positive, after the timeout. The experiment runner's atomic
// emission turns either into a clean stop with no partial output files.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// Listen opens a TCP listener on addr. When portFile is non-empty the bound
// address (host:port) is written there — that is how scripts and CI discover
// the port of a node started with "-listen 127.0.0.1:0".
func Listen(addr, portFile string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return nil, fmt.Errorf("write port file: %w", err)
		}
	}
	return ln, nil
}

// ServeHTTP serves srv on ln until ctx cancels (SIGINT/SIGTERM/-timeout via
// Context), then shuts the server down gracefully: the listener closes
// immediately, in-flight requests get up to grace to finish, and only then
// does ServeHTTP return. A clean shutdown returns nil.
func ServeHTTP(ctx context.Context, ln net.Listener, srv *http.Server, grace time.Duration) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Main is the shared outermost error handler: run, prefix any failure with
// the tool name, exit non-zero.
func Main(tool string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// SetUsage appends registry listings to the default flag usage so -h shows
// what is actually runnable: the registered experiments and optimizer
// backends (extensions included, since the lists come from the registries
// at call time).
func SetUsage(fs *flag.FlagSet, tool string, sections map[string][]string, order ...string) {
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage of %s:\n", tool)
		fs.PrintDefaults()
		for _, title := range order {
			fmt.Fprintf(fs.Output(), "\n%s:\n  %s\n", title, strings.Join(sections[title], ", "))
		}
	}
}
