// Package cli holds the plumbing the parole binaries used to duplicate:
// the -metrics/-trace/-pprof observability flags with their exit-time
// export block, signal/timeout-aware contexts, and usage text that lists
// the experiment and optimizer registries. Each binary is a thin flag
// parser over this package plus the registries.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parole/internal/telemetry"
	"parole/internal/trace"
)

// Observability bundles the observability flags shared by every binary.
// Register the flags, Start before the workload, Report after it; none of
// it affects seeded outputs (the telemetry and trace guard tests pin this).
type Observability struct {
	// Tool names the binary in diagnostics ("parole-bench").
	Tool string
	// Metrics is the -metrics path (TSV, or JSON when it ends in .json).
	Metrics string
	// TracePath is the -trace path (Chrome trace JSON plus derived
	// .summary.tsv and .timeline.tsv).
	TracePath string
	// Pprof is the -pprof listen address.
	Pprof string

	// pprofSrv is the running profiling server (own mux, own listener) so
	// Stop can shut it down with the rest of the process — it must not
	// outlive the binary's graceful drain.
	pprofSrv  *http.Server
	pprofAddr net.Addr
}

// Register installs the three flags on fs with the canonical help text (the
// four binaries' copies had drifted).
func (o *Observability) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Metrics, "metrics", "",
		"write a telemetry snapshot to this path at exit (TSV, or JSON for .json)")
	fs.StringVar(&o.TracePath, "trace", "",
		"enable span tracing and write a Chrome trace (plus .summary.tsv/.timeline.tsv) to this path at exit")
	fs.StringVar(&o.Pprof, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Start enables the stage timers, switches the tracer on when -trace was
// given, and starts the pprof server when -pprof was given. Call it after
// flag parsing, before the workload.
func (o *Observability) Start() {
	// Stage timers are reporting-layer wall-clock sampling; enabling them
	// never touches the seeded experiment paths. The span tracer is equally
	// passive (docs/TRACING.md).
	telemetry.Default().EnableTimers(true)
	if o.TracePath != "" {
		trace.Default().Enable()
	}
	if o.Pprof != "" {
		if err := o.startPprof(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", o.Tool, err)
		}
	}
}

// startPprof serves the profiling endpoints on their own mux and listener —
// never the default mux, which a library import could pollute and which
// offers no shutdown. The server lives until Stop (called by Report), so
// profiling dies with the process's graceful drain instead of leaking a
// fire-and-forget goroutine.
func (o *Observability) startPprof() error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", o.Pprof)
	if err != nil {
		return err
	}
	o.pprofSrv = &http.Server{Handler: mux}
	o.pprofAddr = ln.Addr()
	go func() {
		if err := o.pprofSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", o.Tool, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "%s: pprof at http://%s/debug/pprof/\n", o.Tool, ln.Addr())
	return nil
}

// PprofAddr returns the bound pprof address, nil when -pprof is off (or the
// listener failed).
func (o *Observability) PprofAddr() net.Addr { return o.pprofAddr }

// Stop shuts the pprof server down, draining in-flight profile requests up
// to grace. Safe to call when -pprof was never given; Report calls it, so
// every binary's exit path stops the profiler with the node.
func (o *Observability) Stop(grace time.Duration) error {
	if o.pprofSrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := o.pprofSrv.Shutdown(ctx)
	o.pprofSrv = nil
	o.pprofAddr = nil
	return err
}

// pprofStopGrace bounds how long Report waits for in-flight profile
// requests (a hung 30s CPU profile must not wedge shutdown).
const pprofStopGrace = 2 * time.Second

// Report writes the telemetry snapshot (-metrics) and the trace artifacts
// (-trace), returning the snapshot and the trace record for a run manifest.
// It also stops the -pprof server: Report is every binary's exit path, so
// the profiler participates in the same graceful drain as the workload.
func (o *Observability) Report() (telemetry.Snapshot, *telemetry.TraceInfo, error) {
	if err := o.Stop(pprofStopGrace); err != nil {
		fmt.Fprintf(os.Stderr, "%s: pprof shutdown: %v\n", o.Tool, err)
	}
	snap := telemetry.Default().Snapshot()
	info := &telemetry.TraceInfo{Enabled: trace.Default().Enabled()}
	if o.Metrics != "" {
		if err := snap.WriteFile(o.Metrics); err != nil {
			return snap, info, err
		}
	}
	if o.TracePath != "" {
		sha, err := trace.Default().WriteFiles(o.TracePath)
		if err != nil {
			return snap, info, err
		}
		info.File = o.TracePath
		info.SHA256 = sha
	}
	return snap, info, nil
}

// Context returns a context that cancels on SIGINT/SIGTERM and, when
// timeout is positive, after the timeout. The experiment runner's atomic
// emission turns either into a clean stop with no partial output files.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// Listen opens a TCP listener on addr. When portFile is non-empty the bound
// address (host:port) is written there — that is how scripts and CI discover
// the port of a node started with "-listen 127.0.0.1:0".
func Listen(addr, portFile string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return nil, fmt.Errorf("write port file: %w", err)
		}
	}
	return ln, nil
}

// ServeHTTP serves srv on ln until ctx cancels (SIGINT/SIGTERM/-timeout via
// Context), then shuts the server down gracefully: the listener closes
// immediately, in-flight requests get up to grace to finish, and only then
// does ServeHTTP return. A clean shutdown returns nil.
func ServeHTTP(ctx context.Context, ln net.Listener, srv *http.Server, grace time.Duration) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Main is the shared outermost error handler: run, prefix any failure with
// the tool name, exit non-zero.
func Main(tool string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// SetUsage appends registry listings to the default flag usage so -h shows
// what is actually runnable: the registered experiments and optimizer
// backends (extensions included, since the lists come from the registries
// at call time).
func SetUsage(fs *flag.FlagSet, tool string, sections map[string][]string, order ...string) {
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage of %s:\n", tool)
		fs.PrintDefaults()
		for _, title := range order {
			fmt.Fprintf(fs.Output(), "\n%s:\n  %s\n", title, strings.Join(sections[title], ", "))
		}
	}
}
