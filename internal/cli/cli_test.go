package cli

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestObservabilityRegisterAndReport(t *testing.T) {
	var o Observability
	o.Tool = "test-tool"
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.Register(fs)
	metrics := filepath.Join(t.TempDir(), "metrics.tsv")
	if err := fs.Parse([]string{"-metrics", metrics}); err != nil {
		t.Fatal(err)
	}
	if o.Metrics != metrics {
		t.Fatalf("Metrics = %q, want %q", o.Metrics, metrics)
	}
	_, info, err := o.Report()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("Report returned nil TraceInfo")
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
}

func TestContextTimeout(t *testing.T) {
	ctx, cancel := Context(time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout context did not expire")
	}
	if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v, want DeadlineExceeded", err)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := Context(0)
	cancel()
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("ctx.Err() = %v, want Canceled", err)
	}
}

func TestSetUsageListsRegistrySections(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.String("exp", "all", "experiments")
	SetUsage(fs, "test-tool", map[string][]string{
		"registered experiments": {"table3", "fig11"},
		"registered backends":    {"dqn", "hillclimb"},
	}, "registered experiments", "registered backends")
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"Usage of test-tool", "registered experiments:", "table3, fig11", "registered backends:", "dqn, hillclimb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output missing %q:\n%s", want, out)
		}
	}
}
