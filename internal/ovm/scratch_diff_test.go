package ovm

import (
	"math/rand"
	"testing"

	"parole/internal/chainid"
	"parole/internal/tx"
	"parole/internal/wei"
)

// randomBatch builds a batch of mint/transfer/burn transactions over the
// newWorld fixture with randomized fees and deliberately conflicting token
// ids, so candidate orders differ in which transactions execute.
func randomBatch(rng *rand.Rand, n int) tx.Seq {
	users := []chainid.Address{alice, bob, carol}
	seq := make(tx.Seq, 0, n)
	for i := 0; i < n; i++ {
		from := users[rng.Intn(len(users))]
		to := users[rng.Intn(len(users))]
		id := uint64(rng.Intn(6)) // ids 0..2 pre-minted, 3..5 contested mints
		var t tx.Tx
		switch rng.Intn(3) {
		case 0:
			t = tx.Mint(ptAddr, id, from)
		case 1:
			t = tx.Transfer(ptAddr, id, from, to)
		default:
			t = tx.Burn(ptAddr, id, from)
		}
		t = t.WithFees(wei.Amount(rng.Int63n(1000)+1), wei.Amount(rng.Int63n(500)))
		seq = append(seq, t)
	}
	return seq
}

// TestEvaluateScratchMatchesEvaluate is the differential property test the
// scratch path is certified by: for randomized batches and candidate orders,
// EvaluateScratch (one shared Evaluator, prefix replay across candidates)
// must agree byte for byte with the clone-based Evaluate on every step,
// the executed-hash set, the watched wealth vector, and the post-state
// Merkle root. Run under -race with the parallel portfolio enabled (the
// solver package does) this also pins down per-worker isolation.
func TestEvaluateScratchMatchesEvaluate(t *testing.T) {
	vm := New()
	watch := []chainid.Address{alice, bob, carol}

	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		base := newWorld(t,
			[]chainid.Address{alice, bob, carol}, // ids 0..2 pre-minted
			wei.FromFloat(3.0), alice, bob, carol)
		baseRoot := base.Root()

		batch := randomBatch(rng, 4+rng.Intn(5))
		ev, err := vm.NewEvaluator(base)
		if err != nil {
			t.Fatalf("NewEvaluator: %v", err)
		}

		// Many candidate orders against one Evaluator: adjacent swaps and
		// full shuffles, mimicking how the solvers actually probe the space.
		for cand := 0; cand < 30; cand++ {
			order := batch.Clone()
			if cand%2 == 0 {
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			} else if len(order) > 1 {
				i := rng.Intn(len(order) - 1)
				order.Swap(i, i+1)
			}

			wantSteps, wantExec, wantWealth, err := vm.Evaluate(base, order, watch...)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			gotSteps, gotExec, gotWealth, err := vm.EvaluateScratch(ev, order, watch...)
			if err != nil {
				t.Fatalf("EvaluateScratch: %v", err)
			}

			if len(gotSteps) != len(wantSteps) {
				t.Fatalf("trial %d cand %d: %d steps, want %d", trial, cand, len(gotSteps), len(wantSteps))
			}
			for i := range wantSteps {
				if gotSteps[i] != wantSteps[i] {
					t.Fatalf("trial %d cand %d step %d: scratch %+v, clone %+v",
						trial, cand, i, gotSteps[i], wantSteps[i])
				}
			}
			if len(gotExec) != len(wantExec) {
				t.Fatalf("trial %d cand %d: executed set size %d, want %d", trial, cand, len(gotExec), len(wantExec))
			}
			for h := range wantExec {
				if !gotExec[h] {
					t.Fatalf("trial %d cand %d: executed hash missing from scratch set", trial, cand)
				}
			}
			for i := range wantWealth {
				if gotWealth[i] != wantWealth[i] {
					t.Fatalf("trial %d cand %d: wealth[%d] scratch %s, clone %s",
						trial, cand, i, gotWealth[i], wantWealth[i])
				}
			}

			// Post-state commitment must match a fresh clone-based Execute.
			res, err := vm.Execute(base, order)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if got := ev.Scratch().State().Root(); got != res.PostRoot {
				t.Fatalf("trial %d cand %d: scratch post-root %x, clone post-root %x",
					trial, cand, got, res.PostRoot)
			}
		}

		// The Evaluator must never leak writes into the base.
		if got := base.Root(); got != baseRoot {
			t.Fatalf("trial %d: base root changed during scratch evaluation", trial)
		}
		ev.Reset()
		if got := ev.Scratch().State().Root(); got != baseRoot {
			t.Fatalf("trial %d: Reset did not restore base root", trial)
		}
	}
}

func TestEvaluateScratchNilEvaluator(t *testing.T) {
	vm := New()
	if _, _, _, err := vm.EvaluateScratch(nil, nil); err != ErrNoEvaluator {
		t.Fatalf("EvaluateScratch(nil) = %v, want ErrNoEvaluator", err)
	}
}
