package ovm

import (
	"math"
	"testing"

	"parole/internal/tx"
	"parole/internal/wei"
)

// TestTable3Calibration pins the default gas schedule to the paper's
// Table III rows: mint 90.91% / 253 gwei, transfer 69.84% / 142k gwei,
// burn 69.82% / 141k gwei.
func TestTable3Calibration(t *testing.T) {
	g := DefaultGasSchedule()
	tests := []struct {
		kind        tx.Kind
		wantUsage   float64
		wantFeeGwei int64
	}{
		{tx.KindMint, 90.91, 253},
		{tx.KindTransfer, 69.84, 142_000},
		{tx.KindBurn, 69.82, 141_000},
	}
	for _, tt := range tests {
		if got := g.UsagePercent(tt.kind); math.Abs(got-tt.wantUsage) > 0.005 {
			t.Errorf("%s usage = %.4f%%, want %.2f%%", tt.kind, got, tt.wantUsage)
		}
		if got := g.Fee(tt.kind); got != wei.Amount(tt.wantFeeGwei)*wei.Gwei {
			t.Errorf("%s fee = %s, want %d gwei", tt.kind, got, tt.wantFeeGwei)
		}
	}
}

func TestGasLimitsNonZero(t *testing.T) {
	g := DefaultGasSchedule()
	for _, k := range []tx.Kind{tx.KindMint, tx.KindTransfer, tx.KindBurn} {
		if g.GasLimit(k) == 0 || g.GasUsed(k) == 0 {
			t.Errorf("%s has zero gas parameters", k)
		}
		if g.GasUsed(k) > g.GasLimit(k) {
			t.Errorf("%s gas used exceeds limit", k)
		}
	}
}

func TestUnknownKindGasIsZero(t *testing.T) {
	g := DefaultGasSchedule()
	if g.GasUsed(tx.Kind(99)) != 0 || g.Fee(tx.Kind(99)) != 0 {
		t.Error("unknown kind should have zero gas profile")
	}
	if (KindGas{}).UsagePercent() != 0 {
		t.Error("zero KindGas usage should be 0, not NaN")
	}
}
