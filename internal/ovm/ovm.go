// Package ovm implements the optimistic virtual machine of the PAROLE
// simulator: a deterministic executor that applies a transaction sequence to
// a copy of the L2 world state.
//
// The VM enforces the executability constraints of Eq. 1, 3, and 5 and
// applies the state operations of Eq. 2, 4, and 6:
//
//   - Mint: requires B_k ≥ P and S ≥ 1; debits the minter by the pre-tx
//     price (escrowed to the contract address) and assigns ownership.
//   - Transfer: requires B_j ≥ P (buyer) and ownership by the seller; moves
//     the price from buyer to seller and the token from seller to buyer.
//   - Burn: requires ownership; clears it and returns the slot to the
//     mintable supply.
//
// A transaction whose constraint fails at its position is *skipped*, exactly
// as an aggregator fails an inapplicable transaction; the arbitrage module
// compares executed sets between orders before accepting a re-ordering.
//
// Execution is pure with respect to the base state: the VM always works on a
// clone, which is what lets GENTRANSEQ evaluate thousands of candidate
// permutations safely. Following the paper's case studies, protocol fees are
// metered and reported (they drive Table III) but not deducted from user
// balances.
package ovm

import (
	"errors"
	"fmt"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/token"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Execution-outcome metrics (docs/METRICS.md §ovm): one count per applied
// transaction by outcome, plus whole-sequence evaluation counts. Deterministic
// — the VM is the hot path of every candidate evaluation.
var (
	mTxExecuted = telemetry.Default().Counter("ovm.tx.executed")
	mTxSkipped  = telemetry.Default().Counter("ovm.tx.skipped")
	mTxInvalid  = telemetry.Default().Counter("ovm.tx.invalid")
	mEvaluates  = telemetry.Default().Counter("ovm.evaluations")
)

// ErrNoState is returned when Execute is called without a base state.
var ErrNoState = errors.New("ovm: nil base state")

// StepStatus classifies the outcome of one transaction in a sequence.
type StepStatus uint8

// Step outcomes.
const (
	// StatusExecuted means the constraints held and state ops were applied.
	StatusExecuted StepStatus = iota + 1
	// StatusSkipped means an executability constraint (Eq. 1/3/5) failed at
	// this position; state is unchanged by the tx.
	StatusSkipped
	// StatusInvalid means the transaction was structurally malformed.
	StatusInvalid
)

// String returns the lower-case status name.
func (s StepStatus) String() string {
	switch s {
	case StatusExecuted:
		return "executed"
	case StatusSkipped:
		return "skipped"
	case StatusInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Step records the execution of one transaction.
type Step struct {
	Tx     tx.Tx
	Status StepStatus
	// Reason explains a skip or invalidation; nil when executed.
	Reason error
	// Price is the unit price P^t *after* this step (the column the paper's
	// Fig. 5 tables print).
	Price wei.Amount
	// Available is S^t, the mintable supply after this step.
	Available uint64
	// GasUsed and Fee come from the VM's gas schedule (Table III).
	GasUsed uint64
	Fee     wei.Amount
}

// Result is the outcome of executing a sequence.
type Result struct {
	// Steps has one entry per input transaction, in execution order.
	Steps []Step
	// State is the post-execution world state (a clone; the base state is
	// never mutated).
	State *state.State
	// PreRoot and PostRoot are the Merkle roots before and after.
	PreRoot, PostRoot chainid.Hash
	// Executed counts StatusExecuted steps.
	Executed int
	// GasTotal and FeeTotal aggregate over executed steps.
	GasTotal uint64
	FeeTotal wei.Amount
}

// ExecutedSet returns the hashes of the transactions that executed. The
// arbitrage assessment uses it to verify that a re-ordering preserves the
// executable set (Section V-B).
func (r *Result) ExecutedSet() map[chainid.Hash]bool {
	set := make(map[chainid.Hash]bool, r.Executed)
	for _, s := range r.Steps {
		if s.Status == StatusExecuted {
			set[s.Tx.Hash()] = true
		}
	}
	return set
}

// VM executes transaction sequences under a gas schedule. The zero value is
// not usable; construct with New.
type VM struct {
	gas GasSchedule
}

// Option configures a VM.
type Option interface{ apply(*VM) }

type gasOption GasSchedule

func (g gasOption) apply(vm *VM) { vm.gas = GasSchedule(g) }

// WithGasSchedule overrides the default Table III-calibrated gas schedule.
func WithGasSchedule(g GasSchedule) Option { return gasOption(g) }

// New constructs a VM with the default gas schedule.
func New(opts ...Option) *VM {
	vm := &VM{gas: DefaultGasSchedule()}
	for _, o := range opts {
		o.apply(vm)
	}
	return vm
}

// Execute runs seq against a clone of base and returns the full trace.
func (vm *VM) Execute(base *state.State, seq tx.Seq) (*Result, error) {
	if base == nil {
		return nil, ErrNoState
	}
	sp := trace.StartSpan(trace.SpanOVMExecute, trace.Int("seq_len", int64(len(seq))))
	st := base.Clone()
	res := &Result{
		Steps:   make([]Step, 0, len(seq)),
		State:   st,
		PreRoot: base.Root(),
	}
	for i, t := range seq {
		res.Steps = append(res.Steps, vm.apply(st, t))
		last := &res.Steps[len(res.Steps)-1]
		if last.Status == StatusExecuted {
			res.Executed++
			res.GasTotal += last.GasUsed
			res.FeeTotal += last.Fee
		}
		if trace.Enabled() {
			// Per-tx lifecycle events come from the full-fidelity path only;
			// the Evaluate hot path would flood the trace.
			trace.Event(t.Hash().Hex(), trace.StageOVMExecute, last.Status.String(),
				trace.Int("pos", int64(i)),
				trace.Int("price", int64(last.Price)))
		}
	}
	res.PostRoot = st.Root()
	sp.SetAttr(trace.Int("executed", int64(res.Executed)))
	sp.End()
	return res, nil
}

// FinalWealth executes seq against a clone of base and returns the total
// wealth (L2 balance + NFT mark-to-market) of each watched address after the
// last transaction, plus the number of executed transactions. It is the
// allocation-light path GENTRANSEQ calls once per training step.
func (vm *VM) FinalWealth(base *state.State, seq tx.Seq, watch ...chainid.Address) ([]wei.Amount, int, error) {
	if base == nil {
		return nil, 0, ErrNoState
	}
	st := base.Clone()
	executed := 0
	for _, t := range seq {
		if s := vm.apply(st, t); s.Status == StatusExecuted {
			executed++
		}
	}
	wealth := make([]wei.Amount, len(watch))
	for i, a := range watch {
		wealth[i] = st.TotalWealth(a)
	}
	return wealth, executed, nil
}

// WealthTrace executes seq and returns, for each step, the watched address's
// total wealth after that step — the rightmost column of the paper's Fig. 5
// case-study tables.
func (vm *VM) WealthTrace(base *state.State, seq tx.Seq, watch chainid.Address) ([]wei.Amount, *Result, error) {
	if base == nil {
		return nil, nil, ErrNoState
	}
	st := base.Clone()
	res := &Result{
		Steps:   make([]Step, 0, len(seq)),
		State:   st,
		PreRoot: base.Root(),
	}
	trace := make([]wei.Amount, 0, len(seq))
	for _, t := range seq {
		res.Steps = append(res.Steps, vm.apply(st, t))
		last := &res.Steps[len(res.Steps)-1]
		if last.Status == StatusExecuted {
			res.Executed++
			res.GasTotal += last.GasUsed
			res.FeeTotal += last.Fee
		}
		trace = append(trace, st.TotalWealth(watch))
	}
	res.PostRoot = st.Root()
	return trace, res, nil
}

// execState is the mutable-state surface apply needs. *state.State backs
// the full-fidelity clone path; *state.Scratch backs the journaled
// evaluation path. Both expose identical semantics, which the differential
// property test (scratch_diff_test.go) pins down.
type execState interface {
	Balance(chainid.Address) wei.Amount
	Debit(chainid.Address, wei.Amount) error
	Credit(chainid.Address, wei.Amount)
	BumpNonce(chainid.Address) uint64
	Token(chainid.Address) (*token.Contract, error)
	MintToken(c *token.Contract, owner chainid.Address, id uint64) error
	TransferToken(c *token.Contract, id uint64, from, to chainid.Address) error
	BurnToken(c *token.Contract, id uint64, owner chainid.Address) error
}

// apply executes one transaction against st in place and reports the step.
func (vm *VM) apply(st execState, t tx.Tx) Step {
	var step Step
	vm.applyInto(st, &t, &step, false, nil)
	step.Tx = t
	countStatus(step.Status, 1)
	return step
}

// countStatus publishes n apply outcomes of the given status. applyInto
// leaves counting to its callers so the Evaluator's replay loop can batch
// one atomic add per status per evaluation instead of one per transaction.
func countStatus(status StepStatus, n int64) {
	switch status {
	case StatusExecuted:
		mTxExecuted.Add(n)
	case StatusSkipped:
		mTxSkipped.Add(n)
	case StatusInvalid:
		mTxInvalid.Add(n)
	}
}

// applyInto is apply with caller-owned buffers: t and step are passed by
// pointer so the per-transaction replay loop of the journaled Evaluator
// copies no Tx or Step values. Two pre-resolution hooks shave constant work
// off the replay loop, both justified by immutability: preValidated skips
// the structural Validate (validity is a pure function of the value, so the
// Evaluator caches it per interned transaction), and a non-nil contract
// skips the token-address lookup (contract pointers in a working state are
// stable for its lifetime, so the Evaluator resolves each interned
// transaction's contract once). step.Tx is left zero — the apply wrapper
// fills it for callers that report full steps; the Evaluator never reads it.
func (vm *VM) applyInto(st execState, t *tx.Tx, step *Step, preValidated bool, contract *token.Contract) {
	*step = Step{}
	if !preValidated {
		if err := t.Validate(); err != nil {
			step.Status = StatusInvalid
			step.Reason = err
			step.Price = currentPrice(st, t.Token)
			return
		}
	}
	if contract == nil {
		var err error
		contract, err = st.Token(t.Token)
		if err != nil {
			step.Status = StatusSkipped
			step.Reason = err
			return
		}
	}
	price := contract.Price() // P^{t-1}: constraints and settlement use the pre-tx price

	switch t.Kind {
	case tx.KindMint:
		// Eq. 1: B_k ≥ P ∧ S ≥ 1 (and the id must be fresh).
		if err := contract.CanMint(t.TokenID); err != nil {
			step.skip(contract, err)
			return
		}
		// Eq. 2: debit the minter (B_k ≥ P is checked by Debit itself),
		// escrow to the contract, assign ownership.
		if err := st.Debit(t.From, price); err != nil {
			step.skip(contract, &balanceError{role: "minter", addr: t.From})
			return
		}
		st.Credit(t.Token, price)
		if err := st.MintToken(contract, t.From, t.TokenID); err != nil {
			step.skip(contract, err) // unreachable after CanMint; defensive
			return
		}
	case tx.KindTransfer:
		// Eq. 3: B_j ≥ P ∧ O_k^i.
		if err := contract.CanTransfer(t.TokenID, t.From); err != nil {
			step.skip(contract, err)
			return
		}
		// Eq. 4: buyer pays seller (B_j ≥ P is checked by Debit itself);
		// ownership moves.
		if err := st.Debit(t.To, price); err != nil {
			step.skip(contract, &balanceError{role: "buyer", addr: t.To})
			return
		}
		st.Credit(t.From, price)
		if err := st.TransferToken(contract, t.TokenID, t.From, t.To); err != nil {
			step.skip(contract, err)
			return
		}
	case tx.KindBurn:
		// Eq. 5: O_k^i.
		if err := contract.CanBurn(t.TokenID, t.From); err != nil {
			step.skip(contract, err)
			return
		}
		// Eq. 6: ownership cleared, supply grows.
		if err := st.BurnToken(contract, t.TokenID, t.From); err != nil {
			step.skip(contract, err)
			return
		}
	}

	st.BumpNonce(t.From)
	step.Status = StatusExecuted
	step.Price = contract.Price() // P^t after the operation
	step.Available = contract.Available()
	step.GasUsed = vm.gas.GasUsed(t.Kind)
	step.Fee = vm.gas.Fee(t.Kind)
}

// balanceError defers message formatting to Error(): Eq. 1/3 balance skips
// fire per candidate in the solver hot loop, where only errors.Is identity
// matters; the text is only rendered by cold reporting paths.
type balanceError struct {
	role string
	addr chainid.Address
}

func (e *balanceError) Error() string {
	return fmt.Sprintf("%v: %s %s", state.ErrInsufficientBalance, e.role, e.addr)
}
func (e *balanceError) Unwrap() error { return state.ErrInsufficientBalance }

// skip marks the step as skipped with the given reason, stamping the
// contract's current price and availability.
func (step *Step) skip(contract *token.Contract, err error) {
	step.Status = StatusSkipped
	step.Reason = err
	step.Price = contract.Price()
	step.Available = contract.Available()
}

func currentPrice(st execState, tokenAddr chainid.Address) wei.Amount {
	if c, err := st.Token(tokenAddr); err == nil {
		return c.Price()
	}
	return 0
}

// EvalStep is the light-weight per-transaction record produced by Evaluate.
type EvalStep struct {
	// Executed reports whether the transaction's constraints held.
	Executed bool
	// Price is P^t after the step; Available is S^t.
	Price     wei.Amount
	Available uint64
}

// Evaluate executes seq against a clone of base without computing Merkle
// roots, returning per-step price/supply, the set of executed tx hashes, and
// the final total wealth of each watched address. It is the hot path of
// GENTRANSEQ training (thousands of candidate evaluations) and of the
// baseline solvers.
func (vm *VM) Evaluate(base *state.State, seq tx.Seq, watch ...chainid.Address) ([]EvalStep, map[chainid.Hash]bool, []wei.Amount, error) {
	if base == nil {
		return nil, nil, nil, ErrNoState
	}
	sp := trace.StartSpan(trace.SpanOVMEvaluate, trace.Int("seq_len", int64(len(seq))))
	defer sp.End()
	mEvaluates.Inc()
	st := base.Clone()
	steps := make([]EvalStep, 0, len(seq))
	executed := make(map[chainid.Hash]bool, len(seq))
	for _, t := range seq {
		s := vm.apply(st, t)
		ok := s.Status == StatusExecuted
		if ok {
			executed[t.Hash()] = true
		}
		steps = append(steps, EvalStep{Executed: ok, Price: s.Price, Available: s.Available})
	}
	wealth := make([]wei.Amount, len(watch))
	for i, a := range watch {
		wealth[i] = st.TotalWealth(a)
	}
	return steps, executed, wealth, nil
}
