package ovm

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

var (
	goldAddr   = chainid.DeriveAddress("gold-nft")
	silverAddr = chainid.DeriveAddress("silver-nft")
)

// newTwoTokenWorld deploys two limited-edition contracts with different
// curves: gold (S⁰=4, P⁰=1 ETH) and silver (S⁰=20, P⁰=0.1 ETH).
func newTwoTokenWorld(t *testing.T) *state.State {
	t.Helper()
	st := state.New()
	gold, err := token.Deploy(goldAddr, token.Config{
		Name: "Gold", Symbol: "AU", MaxSupply: 4, InitialPrice: wei.FromETH(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	silver, err := token.Deploy(silverAddr, token.Config{
		Name: "Silver", Symbol: "AG", MaxSupply: 20, InitialPrice: wei.FromFloat(0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*token.Contract{gold, silver} {
		if err := st.DeployToken(c); err != nil {
			t.Fatal(err)
		}
	}
	st.SetBalance(alice, wei.FromETH(10))
	st.SetBalance(bob, wei.FromETH(10))
	return st
}

// TestMultiTokenBatchIndependentCurves: operations on one contract must not
// move the other's price.
func TestMultiTokenBatchIndependentCurves(t *testing.T) {
	st := newTwoTokenWorld(t)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{
		tx.Mint(goldAddr, 0, alice), // gold: 4/3 ETH after
		tx.Mint(silverAddr, 0, bob), // silver: 20/19*0.1 after
		tx.Mint(goldAddr, 1, bob),   // gold: 2 ETH after
		tx.Burn(silverAddr, 0, bob), // silver back to 0.1
		tx.Transfer(goldAddr, 0, alice, bob),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 5 {
		t.Fatalf("executed = %d/5", res.Executed)
	}
	gold, err := res.State.Token(goldAddr)
	if err != nil {
		t.Fatal(err)
	}
	silver, err := res.State.Token(silverAddr)
	if err != nil {
		t.Fatal(err)
	}
	if got := gold.Price(); got != wei.FromETH(2) {
		t.Fatalf("gold price = %s, want 2", got)
	}
	if got := silver.Price(); got != wei.FromFloat(0.1) {
		t.Fatalf("silver price = %s, want 0.1", got)
	}
	// Wealth spans both contracts: bob holds gold #0, gold #1 at 2 ETH each.
	wantBob := res.State.Balance(bob) + wei.FromETH(4)
	if got := res.State.TotalWealth(bob); got != wantBob {
		t.Fatalf("bob wealth = %s, want %s", got, wantBob)
	}
}

// TestMultiTokenWealthTraceAcrossContracts: the trace accounts for all
// holdings even when only one contract trades.
func TestMultiTokenWealthTraceAcrossContracts(t *testing.T) {
	st := newTwoTokenWorld(t)
	vm := New()
	pre, err := vm.Execute(st, tx.Seq{
		tx.Mint(goldAddr, 0, alice),
		tx.Mint(silverAddr, 0, alice),
	})
	if err != nil {
		t.Fatal(err)
	}
	base := pre.State
	// Silver-only activity by bob still revalues alice's silver holding.
	trace, _, err := vm.WealthTrace(base, tx.Seq{
		tx.Mint(silverAddr, 1, bob),
		tx.Mint(silverAddr, 2, bob),
	}, alice)
	if err != nil {
		t.Fatal(err)
	}
	if !(trace[1] > trace[0]) {
		t.Fatalf("alice's wealth did not rise with silver scarcity: %v", trace)
	}
}
