package ovm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

var (
	ptAddr = chainid.DeriveAddress("pt-contract")
	alice  = chainid.UserAddress(1)
	bob    = chainid.UserAddress(2)
	carol  = chainid.UserAddress(3)
)

// newWorld builds a state with a PT contract (S⁰=10, P⁰=0.2) with `minted`
// tokens pre-minted to the given owners (ids 0..minted-1) and every listed
// user funded with `funding`.
func newWorld(t testing.TB, owners []chainid.Address, funding wei.Amount, users ...chainid.Address) *state.State {
	t.Helper()
	st := state.New()
	pt, err := token.Deploy(ptAddr, token.Config{
		Name: "ParoleToken", Symbol: "PT",
		MaxSupply: 10, InitialPrice: wei.FromFloat(0.2),
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	for id, owner := range owners {
		if err := pt.Mint(owner, uint64(id)); err != nil {
			t.Fatalf("pre-mint %d: %v", id, err)
		}
	}
	if err := st.DeployToken(pt); err != nil {
		t.Fatalf("DeployToken: %v", err)
	}
	for _, u := range users {
		st.SetBalance(u, funding)
	}
	return st
}

func TestExecuteNilState(t *testing.T) {
	vm := New()
	if _, err := vm.Execute(nil, nil); !errors.Is(err, ErrNoState) {
		t.Fatalf("Execute(nil) = %v, want ErrNoState", err)
	}
	if _, _, err := vm.FinalWealth(nil, nil); !errors.Is(err, ErrNoState) {
		t.Fatalf("FinalWealth(nil) = %v, want ErrNoState", err)
	}
	if _, _, err := vm.WealthTrace(nil, nil, alice); !errors.Is(err, ErrNoState) {
		t.Fatalf("WealthTrace(nil) = %v, want ErrNoState", err)
	}
}

func TestMintExecution(t *testing.T) {
	st := newWorld(t, nil, wei.FromETH(1), alice)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{tx.Mint(ptAddr, 0, alice)})
	if err != nil {
		t.Fatal(err)
	}
	step := res.Steps[0]
	if step.Status != StatusExecuted {
		t.Fatalf("mint status = %v (%v)", step.Status, step.Reason)
	}
	// Price paid is P⁰ = 0.2 (pre-tx price at full availability).
	if got := res.State.Balance(alice); got != wei.FromFloat(0.8) {
		t.Fatalf("minter balance = %s, want 0.8", got)
	}
	// Payment escrowed at the contract address.
	if got := res.State.Balance(ptAddr); got != wei.FromFloat(0.2) {
		t.Fatalf("escrow balance = %s, want 0.2", got)
	}
	// Post-price reflects the new scarcity: 10/9 * 0.2.
	if step.Price != wei.MulDiv(wei.FromFloat(0.2), 10, 9) {
		t.Fatalf("post price = %s", step.Price)
	}
	if res.State.Nonce(alice) != 1 {
		t.Fatal("nonce not bumped")
	}
}

func TestMintSkippedWhenBroke(t *testing.T) {
	st := newWorld(t, nil, wei.FromFloat(0.1), alice)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{tx.Mint(ptAddr, 0, alice)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusSkipped {
		t.Fatalf("status = %v, want skipped", res.Steps[0].Status)
	}
	if !errors.Is(res.Steps[0].Reason, state.ErrInsufficientBalance) {
		t.Fatalf("reason = %v", res.Steps[0].Reason)
	}
	if res.State.Balance(alice) != wei.FromFloat(0.1) {
		t.Fatal("skipped mint moved money")
	}
	if res.State.Nonce(alice) != 0 {
		t.Fatal("skipped tx bumped nonce")
	}
}

func TestMintSkippedWhenSoldOutOrDuplicate(t *testing.T) {
	owners := make([]chainid.Address, 10)
	for i := range owners {
		owners[i] = bob
	}
	st := newWorld(t, owners, wei.FromETH(100), alice)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{tx.Mint(ptAddr, 11, alice)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusSkipped || !errors.Is(res.Steps[0].Reason, token.ErrSoldOut) {
		t.Fatalf("sold-out mint: %v/%v", res.Steps[0].Status, res.Steps[0].Reason)
	}

	st2 := newWorld(t, []chainid.Address{bob}, wei.FromETH(100), alice)
	res2, err := vm.Execute(st2, tx.Seq{tx.Mint(ptAddr, 0, alice)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps[0].Status != StatusSkipped || !errors.Is(res2.Steps[0].Reason, token.ErrAlreadyMinted) {
		t.Fatalf("duplicate mint: %v/%v", res2.Steps[0].Status, res2.Steps[0].Reason)
	}
}

func TestTransferExecution(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	vm := New()
	price := wei.MulDiv(wei.FromFloat(0.2), 10, 9) // one minted
	res, err := vm.Execute(st, tx.Seq{tx.Transfer(ptAddr, 0, alice, bob)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusExecuted {
		t.Fatalf("transfer: %v (%v)", res.Steps[0].Status, res.Steps[0].Reason)
	}
	if got := res.State.Balance(bob); got != wei.FromETH(1)-price {
		t.Fatalf("buyer balance = %s", got)
	}
	if got := res.State.Balance(alice); got != wei.FromETH(1)+price {
		t.Fatalf("seller balance = %s", got)
	}
	pt, err := res.State.Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Owns(bob, 0) {
		t.Fatal("ownership did not move")
	}
	if res.Steps[0].Price != price {
		t.Fatal("transfer changed the price")
	}
}

func TestTransferSkips(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, 0, alice, bob)
	vm := New()
	// Buyer has no funds.
	res, err := vm.Execute(st, tx.Seq{tx.Transfer(ptAddr, 0, alice, bob)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusSkipped || !errors.Is(res.Steps[0].Reason, state.ErrInsufficientBalance) {
		t.Fatalf("broke buyer: %v/%v", res.Steps[0].Status, res.Steps[0].Reason)
	}
	// Seller does not own.
	st2 := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	res2, err := vm.Execute(st2, tx.Seq{tx.Transfer(ptAddr, 0, carol, bob)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps[0].Status != StatusSkipped || !errors.Is(res2.Steps[0].Reason, token.ErrNotOwner) {
		t.Fatalf("non-owner sale: %v/%v", res2.Steps[0].Status, res2.Steps[0].Reason)
	}
}

func TestBurnExecutionAndSupplyReturn(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice, alice}, wei.FromETH(1), alice)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{tx.Burn(ptAddr, 0, alice)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusExecuted {
		t.Fatalf("burn: %v (%v)", res.Steps[0].Status, res.Steps[0].Reason)
	}
	pt, err := res.State.Token(ptAddr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Available() != 9 {
		t.Fatalf("available = %d, want 9", pt.Available())
	}
	// Burn moves no money.
	if res.State.Balance(alice) != wei.FromETH(1) {
		t.Fatal("burn changed a balance")
	}
}

func TestInvalidTxMarkedInvalid(t *testing.T) {
	st := newWorld(t, nil, wei.FromETH(1), alice)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{{Kind: 0, From: alice}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusInvalid {
		t.Fatalf("status = %v, want invalid", res.Steps[0].Status)
	}
}

func TestUnknownTokenSkips(t *testing.T) {
	st := newWorld(t, nil, wei.FromETH(1), alice)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{tx.Mint(chainid.DeriveAddress("ghost"), 0, alice)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Status != StatusSkipped || !errors.Is(res.Steps[0].Reason, state.ErrUnknownToken) {
		t.Fatalf("unknown token: %v/%v", res.Steps[0].Status, res.Steps[0].Reason)
	}
}

func TestExecuteIsPure(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	root := st.Root()
	vm := New()
	if _, err := vm.Execute(st, tx.Seq{
		tx.Transfer(ptAddr, 0, alice, bob),
		tx.Mint(ptAddr, 1, bob),
		tx.Burn(ptAddr, 0, bob),
	}); err != nil {
		t.Fatal(err)
	}
	if st.Root() != root {
		t.Fatal("Execute mutated the base state")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	seq := tx.Seq{
		tx.Transfer(ptAddr, 0, alice, bob),
		tx.Mint(ptAddr, 1, bob),
		tx.Burn(ptAddr, 1, bob),
	}
	vm := New()
	r1, err := vm.Execute(st, seq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := vm.Execute(st, seq)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PostRoot != r2.PostRoot || r1.Executed != r2.Executed {
		t.Fatal("execution not deterministic")
	}
}

// TestConservationUnderRandomSequences: for any random tx sequence, the sum
// of all account balances (users + contract escrow) is invariant, and
// minted+available = S⁰.
func TestConservationUnderRandomSequences(t *testing.T) {
	users := []chainid.Address{alice, bob, carol, chainid.UserAddress(4)}
	vm := New()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newWorld(t, []chainid.Address{alice, bob}, wei.FromETH(3), users...)
		total := st.TotalBalance()
		seq := randomSeq(rng, users, int(n)%24+1)
		res, err := vm.Execute(st, seq)
		if err != nil {
			return false
		}
		pt, err := res.State.Token(ptAddr)
		if err != nil {
			return false
		}
		return res.State.TotalBalance() == total &&
			pt.Minted()+pt.Available() == pt.MaxSupply()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFinalWealthMatchesExecute: the fast path must agree with the traced
// path.
func TestFinalWealthMatchesExecute(t *testing.T) {
	users := []chainid.Address{alice, bob, carol}
	vm := New()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newWorld(t, []chainid.Address{alice, bob}, wei.FromETH(2), users...)
		seq := randomSeq(rng, users, int(n)%16+1)
		wealth, executed, err := vm.FinalWealth(st, seq, alice, bob)
		if err != nil {
			return false
		}
		res, err := vm.Execute(st, seq)
		if err != nil {
			return false
		}
		return executed == res.Executed &&
			wealth[0] == res.State.TotalWealth(alice) &&
			wealth[1] == res.State.TotalWealth(bob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWealthTrace(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	vm := New()
	seq := tx.Seq{
		tx.Transfer(ptAddr, 0, alice, bob), // alice sells at 10/9*0.2
		tx.Mint(ptAddr, 1, alice),          // alice mints at 10/9*0.2, price ->0.25
	}
	trace, res, err := vm.WealthTrace(st, seq, alice)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 {
		t.Fatalf("trace length = %d", len(trace))
	}
	p1 := wei.MulDiv(wei.FromFloat(0.2), 10, 9)
	if trace[0] != wei.FromETH(1)+p1 {
		t.Fatalf("trace[0] = %s", trace[0])
	}
	if res.Executed != 2 {
		t.Fatalf("executed = %d", res.Executed)
	}
	// After mint: balance 1+p1-p1 = 1, owns one token priced 0.25.
	if trace[1] != wei.FromETH(1)+wei.FromFloat(0.25) {
		t.Fatalf("trace[1] = %s", trace[1])
	}
}

func TestExecutedSet(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	vm := New()
	good := tx.Transfer(ptAddr, 0, alice, bob)
	bad := tx.Transfer(ptAddr, 7, carol, bob) // unminted
	res, err := vm.Execute(st, tx.Seq{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	set := res.ExecutedSet()
	if !set[good.Hash()] || set[bad.Hash()] {
		t.Fatalf("executed set wrong: %v", set)
	}
}

func TestGasAccountingAggregates(t *testing.T) {
	st := newWorld(t, []chainid.Address{alice}, wei.FromETH(1), alice, bob)
	vm := New()
	res, err := vm.Execute(st, tx.Seq{
		tx.Mint(ptAddr, 1, bob),
		tx.Transfer(ptAddr, 0, alice, bob),
		tx.Burn(ptAddr, 0, bob),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := DefaultGasSchedule()
	wantGas := g.GasUsed(tx.KindMint) + g.GasUsed(tx.KindTransfer) + g.GasUsed(tx.KindBurn)
	wantFee := g.Fee(tx.KindMint) + g.Fee(tx.KindTransfer) + g.Fee(tx.KindBurn)
	if res.GasTotal != wantGas {
		t.Errorf("GasTotal = %d, want %d", res.GasTotal, wantGas)
	}
	if res.FeeTotal != wantFee {
		t.Errorf("FeeTotal = %s, want %s", res.FeeTotal, wantFee)
	}
}

// randomSeq builds an arbitrary (often partially inapplicable) sequence.
func randomSeq(rng *rand.Rand, users []chainid.Address, n int) tx.Seq {
	seq := make(tx.Seq, 0, n)
	for i := 0; i < n; i++ {
		u := users[rng.Intn(len(users))]
		v := users[rng.Intn(len(users))]
		id := uint64(rng.Intn(12))
		switch rng.Intn(3) {
		case 0:
			seq = append(seq, tx.Mint(ptAddr, id, u))
		case 1:
			if u == v {
				seq = append(seq, tx.Burn(ptAddr, id, u))
			} else {
				seq = append(seq, tx.Transfer(ptAddr, id, u, v))
			}
		case 2:
			seq = append(seq, tx.Burn(ptAddr, id, u))
		}
	}
	return seq
}
