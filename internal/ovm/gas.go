package ovm

import (
	"parole/internal/tx"
	"parole/internal/wei"
)

// GasSchedule models per-kind gas consumption and fees. The defaults are
// calibrated so that the simulator reproduces the paper's Table III rows for
// the PAROLE Token on the OpenSea testnet via Optimism Goerli:
//
//	kind      gas usage   tx fee
//	mint      90.91%      253 gwei
//	transfer  69.84%      142k gwei
//	burn      69.82%      141k gwei
//
// "Gas usage" is gasUsed/gasLimit for the transaction. The mint row's fee is
// three orders of magnitude below the transfer/burn rows in the paper (a
// consequence of when the authors submitted each tx relative to L1 base-fee
// swings); the schedule reproduces the reported values rather than a uniform
// gas price.
type GasSchedule struct {
	Mint     KindGas
	Transfer KindGas
	Burn     KindGas
}

// KindGas is the gas profile of one transaction kind.
type KindGas struct {
	GasLimit uint64
	GasUsed  uint64
	Fee      wei.Amount
}

// UsagePercent returns gasUsed/gasLimit as a percentage.
func (k KindGas) UsagePercent() float64 {
	if k.GasLimit == 0 {
		return 0
	}
	return 100 * float64(k.GasUsed) / float64(k.GasLimit)
}

// DefaultGasSchedule returns the Table III-calibrated schedule.
func DefaultGasSchedule() GasSchedule {
	return GasSchedule{
		Mint:     KindGas{GasLimit: 100_000, GasUsed: 90_910, Fee: 253 * wei.Gwei},
		Transfer: KindGas{GasLimit: 100_000, GasUsed: 69_840, Fee: 142_000 * wei.Gwei},
		Burn:     KindGas{GasLimit: 100_000, GasUsed: 69_820, Fee: 141_000 * wei.Gwei},
	}
}

// forKind selects the profile for a transaction kind.
func (g GasSchedule) forKind(k tx.Kind) KindGas {
	switch k {
	case tx.KindMint:
		return g.Mint
	case tx.KindTransfer:
		return g.Transfer
	case tx.KindBurn:
		return g.Burn
	default:
		return KindGas{}
	}
}

// GasUsed returns the gas consumed by a transaction of kind k.
func (g GasSchedule) GasUsed(k tx.Kind) uint64 { return g.forKind(k).GasUsed }

// GasLimit returns the gas limit of a transaction of kind k.
func (g GasSchedule) GasLimit(k tx.Kind) uint64 { return g.forKind(k).GasLimit }

// Fee returns the protocol fee of a transaction of kind k.
func (g GasSchedule) Fee(k tx.Kind) wei.Amount { return g.forKind(k).Fee }

// UsagePercent returns the gas-usage percentage of kind k.
func (g GasSchedule) UsagePercent(k tx.Kind) float64 { return g.forKind(k).UsagePercent() }
