package ovm

import (
	"testing"

	"parole/internal/tx"
	"parole/internal/wei"
)

func TestStepStatusString(t *testing.T) {
	tests := []struct {
		give StepStatus
		want string
	}{
		{StatusExecuted, "executed"},
		{StatusSkipped, "skipped"},
		{StatusInvalid, "invalid"},
		{StepStatus(9), "status(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("StepStatus(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestWithGasSchedule(t *testing.T) {
	custom := DefaultGasSchedule()
	custom.Mint.Fee = 999 * wei.Gwei
	vm := New(WithGasSchedule(custom))
	st := newWorld(t, nil, wei.FromETH(1), alice)
	res, err := vm.Execute(st, tx.Seq{tx.Mint(ptAddr, 0, alice)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Fee != 999*wei.Gwei {
		t.Fatalf("custom fee = %s, want 999 gwei", res.Steps[0].Fee)
	}
}

func TestEvaluateMatchesExecute(t *testing.T) {
	st := newWorld(t, nil, wei.FromETH(1), alice, bob)
	seq := tx.Seq{
		tx.Mint(ptAddr, 0, alice),
		tx.Transfer(ptAddr, 0, alice, bob),
		tx.Transfer(ptAddr, 5, alice, bob), // unminted: skips
		tx.Burn(ptAddr, 0, bob),
	}
	vm := New()
	steps, executed, wealth, err := vm.Evaluate(st, seq, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Execute(st, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(res.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(steps), len(res.Steps))
	}
	for i := range steps {
		wantExec := res.Steps[i].Status == StatusExecuted
		if steps[i].Executed != wantExec {
			t.Fatalf("step %d executed = %v, want %v", i, steps[i].Executed, wantExec)
		}
		if steps[i].Price != res.Steps[i].Price {
			t.Fatalf("step %d price = %s vs %s", i, steps[i].Price, res.Steps[i].Price)
		}
		if steps[i].Available != res.Steps[i].Available && wantExec {
			t.Fatalf("step %d available = %d vs %d", i, steps[i].Available, res.Steps[i].Available)
		}
	}
	if len(executed) != res.Executed {
		t.Fatalf("executed set size = %d, want %d", len(executed), res.Executed)
	}
	if wealth[0] != res.State.TotalWealth(alice) || wealth[1] != res.State.TotalWealth(bob) {
		t.Fatal("Evaluate wealth disagrees with Execute")
	}
}

func TestEvaluateNilState(t *testing.T) {
	vm := New()
	if _, _, _, err := vm.Evaluate(nil, nil); err == nil {
		t.Fatal("Evaluate(nil) should fail")
	}
}
