package ovm

import (
	"errors"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/token"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Scratch-path metrics (docs/METRICS.md §ovm). reused_prefix_txs versus
// replayed_txs is the prefix-checkpointing win: branch-and-bound descends
// and hill-climb/annealing swap positions, so consecutive candidates share
// long prefixes that never get re-executed.
var (
	mEvaluatesScratch = telemetry.Default().Counter("ovm.evaluations_scratch")
	mScratchReused    = telemetry.Default().Counter("ovm.scratch.reused_prefix_txs")
	mScratchReplayed  = telemetry.Default().Counter("ovm.scratch.replayed_txs")
)

// ErrNoEvaluator is returned when EvaluateScratch is called without an
// evaluator.
var ErrNoEvaluator = errors.New("ovm: nil evaluator")

// Evaluator amortizes world-state access across many candidate evaluations.
// It owns one journaled state.Scratch and keeps, for the currently applied
// sequence, a per-position journal watermark. Scoring the next candidate
// reverts only past the first position whose transaction differs and
// replays the suffix from there, so the cost of one evaluation is
// O(changed suffix) state writes instead of a full O(world) clone — the
// three-layer speedup of the Fig. 11 hot path rests on this type.
//
// An Evaluator is not safe for concurrent use; the parallel solver
// portfolio holds one per worker. The base state must stay frozen for the
// Evaluator's lifetime.
type Evaluator struct {
	vm      *VM
	sc      *state.Scratch
	applied tx.Seq     // transactions currently applied to the scratch
	marks   []int      // journal watermark before each applied position
	steps   []EvalStep // outcome per applied position

	// Transaction interning. Candidate sequences are permutations of a small
	// set of distinct transactions, so each distinct value is assigned a
	// dense uint32 id on first sight and its structural Validate result is
	// cached. Replays then skip Validate for known-good values, and callers
	// (the solver objective) can track executed-transaction sets as bitmasks
	// over ids instead of hashing transactions per evaluation.
	intern     map[tx.Tx]uint32
	validErr   []error           // cached Validate result, indexed by interned id
	tokC       []*token.Contract // cached contract per interned id (nil if unresolved)
	appliedIDs []uint32          // interned id per applied position
}

// NewEvaluator builds an evaluator over base, paying the one-time deep
// clone that every subsequent evaluation amortizes.
func (vm *VM) NewEvaluator(base *state.State) (*Evaluator, error) {
	if base == nil {
		return nil, ErrNoState
	}
	return &Evaluator{vm: vm, sc: state.NewScratch(base)}, nil
}

// Scratch returns the underlying journaled view (for tests and callers that
// need the post-evaluation working state, e.g. its Merkle root).
func (e *Evaluator) Scratch() *state.Scratch { return e.sc }

// Reset reverts the working state all the way back to the base. Interned
// ids survive a Reset: they identify transaction values, not positions.
func (e *Evaluator) Reset() {
	e.sc.Revert()
	e.applied = e.applied[:0]
	e.marks = e.marks[:0]
	e.steps = e.steps[:0]
	e.appliedIDs = e.appliedIDs[:0]
}

// InternID returns the dense id for t, assigning the next free one on first
// sight. Interning caches the two per-value facts the replay loop needs —
// t.Validate() and the working state's contract for t.Token (contract
// pointers are stable for the scratch's lifetime) — so replays skip both.
// Ids are assigned in call order, so callers that intern a reference set up
// front get deterministic ids.
func (e *Evaluator) InternID(t tx.Tx) uint32 {
	if id, ok := e.intern[t]; ok {
		return id
	}
	if e.intern == nil {
		e.intern = make(map[tx.Tx]uint32)
	}
	id := uint32(len(e.validErr))
	e.intern[t] = id
	e.validErr = append(e.validErr, t.Validate())
	c, err := e.sc.Token(t.Token)
	if err != nil {
		c = nil // applyInto re-resolves and reports the skip reason
	}
	e.tokC = append(e.tokC, c)
	return id
}

// AppliedIDs returns the interned id of each currently applied position.
// The slice is live and only valid until the next Run or Reset.
func (e *Evaluator) AppliedIDs() []uint32 { return e.appliedIDs }

// Run applies seq to the scratch, reusing the journaled prefix it shares
// with the previously applied sequence, and returns one EvalStep per
// position. The returned slice is live: it is only valid until the next Run
// (EvaluateScratch copies it for callers that need stability). After Run
// returns, the scratch holds seq's post-state.
func (e *Evaluator) Run(seq tx.Seq) ([]EvalStep, error) {
	// Span attrs are built only when the tracer records; at tens of
	// thousands of Runs per solve the disabled-path allocation matters.
	var sp *trace.Span
	if trace.Enabled() {
		sp = trace.StartSpan(trace.SpanOVMEvaluate,
			trace.Int("seq_len", int64(len(seq))),
			trace.Bool("scratch", true))
	}
	defer sp.End()
	mEvaluatesScratch.Inc()

	// Shared prefix by transaction value: identical txs produce identical
	// state transitions, so their journal entries stand as-is.
	keep := 0
	for keep < len(e.applied) && keep < len(seq) && e.applied[keep] == seq[keep] {
		keep++
	}
	// The truncated tails stay readable through these aliases: the loop
	// below reads old position i before appending (and so overwriting) it,
	// which lets replayed positions that hold the same transaction as last
	// time — all but two, for the swap moves the local solvers make —
	// recover their interned id with one struct compare instead of a map
	// probe on a 90-byte key.
	oldLen := len(e.applied)
	oldApplied := e.applied[:oldLen]
	oldIDs := e.appliedIDs[:oldLen]
	if keep < len(e.applied) {
		e.sc.RevertTo(e.marks[keep])
		e.applied = e.applied[:keep]
		e.marks = e.marks[:keep]
		e.steps = e.steps[:keep]
		e.appliedIDs = e.appliedIDs[:keep]
	}
	mScratchReused.Add(int64(keep))
	mScratchReplayed.Add(int64(len(seq) - keep))

	var step Step
	var nExec, nSkip, nInval int64
	for i := keep; i < len(seq); i++ {
		mark := e.sc.Mark()
		var id uint32
		if i < oldLen && seq[i] == oldApplied[i] {
			id = oldIDs[i]
		} else {
			id = e.InternID(seq[i])
		}
		e.vm.applyInto(e.sc, &seq[i], &step, e.validErr[id] == nil, e.tokC[id])
		switch step.Status {
		case StatusExecuted:
			nExec++
		case StatusSkipped:
			nSkip++
		case StatusInvalid:
			nInval++
		}
		e.applied = append(e.applied, seq[i])
		e.appliedIDs = append(e.appliedIDs, id)
		e.marks = append(e.marks, mark)
		e.steps = append(e.steps, EvalStep{
			Executed:  step.Status == StatusExecuted,
			Price:     step.Price,
			Available: step.Available,
		})
	}
	if nExec > 0 {
		countStatus(StatusExecuted, nExec)
	}
	if nSkip > 0 {
		countStatus(StatusSkipped, nSkip)
	}
	if nInval > 0 {
		countStatus(StatusInvalid, nInval)
	}
	e.sc.FlushMetrics()
	if sp != nil {
		sp.SetAttr(trace.Int("prefix_reused", int64(keep)))
	}
	return e.steps, nil
}

// WealthInto appends each watched address's total wealth in the current
// working state to buf (reset to length zero first), so steady-state
// scoring allocates nothing.
func (e *Evaluator) WealthInto(buf []wei.Amount, watch ...chainid.Address) []wei.Amount {
	buf = buf[:0]
	for _, a := range watch {
		buf = append(buf, e.sc.TotalWealth(a))
	}
	return buf
}

// EvaluateScratch is Evaluate's journaled counterpart: identical contract
// (per-step price/supply, executed tx hashes, final watched wealth — the
// differential property test pins byte-for-byte agreement), but evaluation
// runs on ev's scratch with prefix replay instead of cloning base. The
// returned slices and map are the caller's to keep.
func (vm *VM) EvaluateScratch(ev *Evaluator, seq tx.Seq, watch ...chainid.Address) ([]EvalStep, map[chainid.Hash]bool, []wei.Amount, error) {
	if ev == nil {
		return nil, nil, nil, ErrNoEvaluator
	}
	live, err := ev.Run(seq)
	if err != nil {
		return nil, nil, nil, err
	}
	steps := make([]EvalStep, len(live))
	copy(steps, live)
	executed := make(map[chainid.Hash]bool, len(seq))
	for i, s := range steps {
		if s.Executed {
			executed[seq[i].Hash()] = true
		}
	}
	wealth := ev.WealthInto(make([]wei.Amount, 0, len(watch)), watch...)
	return steps, executed, wealth, nil
}
