// Package arbitrage implements the PAROLE module's opportunity assessment
// (Section V-B): given the batch an adversarial aggregator collected and the
// identities of the illicitly favored users (IFUs), decide whether
// re-ordering can plausibly raise the IFUs' final balance, and verify that a
// proposed re-ordering keeps every originally-executable transaction
// executable.
package arbitrage

import (
	"errors"
	"fmt"

	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/state"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Package errors.
var (
	ErrNoIFU = errors.New("arbitrage: no IFU given")
)

// Assessment is the outcome of screening a batch for arbitrage potential.
type Assessment struct {
	// Opportunity is the overall verdict.
	Opportunity bool
	// Involvement maps each IFU (by input index) to the indices of batch
	// transactions involving it.
	Involvement [][]int
	// PriceMovers counts mint/burn transactions in the batch: the only
	// transactions that move the Eq. 10 price, so without at least one the
	// order cannot matter to a mark-to-market balance.
	PriceMovers int
	// IFUAcquisitions counts transactions in which some IFU gains a token
	// (mint, or transfer where the IFU buys) and IFUTrades counts all IFU
	// mint/transfer involvements; the paper's screen wants "at least ... a
	// pair of minting and transfer transactions".
	IFUAcquisitions int
	IFUTrades       int
}

// Assess screens a collected batch. The paper's criteria (Section V-B):
// the IFU must be involved in multiple transactions — ideally at least one
// mint plus one transfer — and the batch must contain supply-moving
// transactions for re-ordering to change anything.
func Assess(batch tx.Seq, ifus []chainid.Address) (Assessment, error) {
	if len(ifus) == 0 {
		return Assessment{}, ErrNoIFU
	}
	sp := trace.StartSpan(trace.SpanArbitrageAssess,
		trace.Int("batch_len", int64(len(batch))),
		trace.Int("ifus", int64(len(ifus))))
	defer sp.End()
	a := Assessment{Involvement: make([][]int, len(ifus))}
	for i, ifu := range ifus {
		a.Involvement[i] = batch.Involving(ifu)
	}
	a.PriceMovers = batch.CountKind(tx.KindMint) + batch.CountKind(tx.KindBurn)
	for _, t := range batch {
		for _, ifu := range ifus {
			if !t.Involves(ifu) {
				continue
			}
			switch t.Kind {
			case tx.KindMint:
				a.IFUAcquisitions++
				a.IFUTrades++
			case tx.KindTransfer:
				if t.To == ifu {
					a.IFUAcquisitions++
				}
				a.IFUTrades++
			}
			break // count each tx once even with several IFUs involved
		}
	}
	// Every IFU must appear in at least two transactions, there must be an
	// IFU-side trade, and the batch must move the price.
	a.Opportunity = a.PriceMovers > 0 && a.IFUTrades >= 1
	for _, inv := range a.Involvement {
		if len(inv) < 2 {
			a.Opportunity = false
			break
		}
	}
	if trace.Enabled() {
		verdict := "no_opportunity"
		if a.Opportunity {
			verdict = "opportunity"
		}
		sp.SetAttr(trace.Bool("opportunity", a.Opportunity),
			trace.Int("price_movers", int64(a.PriceMovers)),
			trace.Int("ifu_trades", int64(a.IFUTrades)))
		seen := make(map[int]bool)
		for _, inv := range a.Involvement {
			for _, idx := range inv {
				if seen[idx] {
					continue
				}
				seen[idx] = true
				trace.Event(batch[idx].Hash().Hex(), trace.StageArbitrageScreen, verdict,
					trace.Int("batch_pos", int64(idx)),
					trace.Str("kind", batch[idx].Kind.String()))
			}
		}
	}
	return a, nil
}

// ReorderCheck is the verdict on a candidate re-ordering.
type ReorderCheck struct {
	// Valid means the candidate is a permutation of the original whose
	// executed set covers the original's executed set ("it is crucial to
	// verify the execution of specific transactions, all of which would
	// have satisfied the constraints in the original sequence").
	Valid bool
	// Reason is a human-readable explanation when Valid is false.
	Reason string
	// Improvement is the summed IFU final-wealth delta (candidate −
	// original), valid or not.
	Improvement wei.Amount
	// OriginalWealth and CandidateWealth hold per-IFU final wealth.
	OriginalWealth  []wei.Amount
	CandidateWealth []wei.Amount
}

// CheckReorder evaluates a candidate order against the original under base
// state, per the constraints of Section V-B.
func CheckReorder(vm *ovm.VM, base *state.State, original, candidate tx.Seq, ifus []chainid.Address) (ReorderCheck, error) {
	if len(ifus) == 0 {
		return ReorderCheck{}, ErrNoIFU
	}
	var check ReorderCheck
	if !original.SamePermutation(candidate) {
		check.Reason = "candidate is not a permutation of the original batch"
		return check, nil
	}
	_, origExec, origWealth, err := vm.Evaluate(base, original, ifus...)
	if err != nil {
		return check, fmt.Errorf("evaluate original: %w", err)
	}
	_, candExec, candWealth, err := vm.Evaluate(base, candidate, ifus...)
	if err != nil {
		return check, fmt.Errorf("evaluate candidate: %w", err)
	}
	check.OriginalWealth = origWealth
	check.CandidateWealth = candWealth
	for i := range ifus {
		check.Improvement += candWealth[i] - origWealth[i]
	}
	for h := range origExec {
		if !candExec[h] {
			check.Reason = "candidate order drops an originally-executable transaction"
			return check, nil
		}
	}
	check.Valid = true
	return check, nil
}
