package arbitrage_test

import (
	"errors"
	"testing"

	"parole/internal/arbitrage"
	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/ovm"
	"parole/internal/tx"
	"parole/internal/wei"
)

func scenario(t *testing.T) *casestudy.Scenario {
	t.Helper()
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAssessCaseStudyBatch(t *testing.T) {
	s := scenario(t)
	a, err := arbitrage.Assess(s.Original, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Opportunity {
		t.Fatal("case-study batch should present an opportunity")
	}
	// IFU is involved in TX3, TX5, TX8 (indices 2, 4, 7).
	want := []int{2, 4, 7}
	if len(a.Involvement[0]) != len(want) {
		t.Fatalf("involvement = %v, want %v", a.Involvement[0], want)
	}
	for i := range want {
		if a.Involvement[0][i] != want[i] {
			t.Fatalf("involvement = %v, want %v", a.Involvement[0], want)
		}
	}
	// Price movers: TX2, TX5 mints + TX7 burn.
	if a.PriceMovers != 3 {
		t.Fatalf("price movers = %d, want 3", a.PriceMovers)
	}
	// IFU trades: mint TX5 + transfers TX3, TX8; acquisitions: TX5, TX8.
	if a.IFUTrades != 3 || a.IFUAcquisitions != 2 {
		t.Fatalf("trades/acquisitions = %d/%d, want 3/2", a.IFUTrades, a.IFUAcquisitions)
	}
}

func TestAssessRejectsNoIFU(t *testing.T) {
	s := scenario(t)
	if _, err := arbitrage.Assess(s.Original, nil); !errors.Is(err, arbitrage.ErrNoIFU) {
		t.Fatalf("Assess(nil IFUs) = %v", err)
	}
}

func TestAssessNoOpportunityCases(t *testing.T) {
	s := scenario(t)
	stranger := chainid.UserAddress(500)

	// Uninvolved IFU: no opportunity.
	a, err := arbitrage.Assess(s.Original, []chainid.Address{stranger})
	if err != nil {
		t.Fatal(err)
	}
	if a.Opportunity {
		t.Fatal("stranger should have no opportunity")
	}

	// Single involvement only.
	one := tx.Seq{s.Original[2], s.Original[1]} // one IFU transfer + a mint
	a, err = arbitrage.Assess(one, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if a.Opportunity {
		t.Fatal("single IFU involvement should not be an opportunity")
	}

	// No price movers: transfers only.
	flat := tx.Seq{s.Original[2], s.Original[7], s.Original[3]}
	a, err = arbitrage.Assess(flat, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if a.PriceMovers != 0 {
		t.Fatalf("price movers = %d, want 0", a.PriceMovers)
	}
	if a.Opportunity {
		t.Fatal("transfer-only batch cannot be an opportunity")
	}
}

func TestCheckReorderAcceptsPaperOrders(t *testing.T) {
	s := scenario(t)
	vm := ovm.New()
	tests := []struct {
		name      string
		candidate tx.Seq
		wantGain  wei.Amount
	}{
		{name: "case2", candidate: s.Case2, wantGain: casestudy.FinalCase2 - casestudy.FinalCase1},
		{name: "case3", candidate: s.Case3, wantGain: casestudy.FinalCase3 - casestudy.FinalCase1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			check, err := arbitrage.CheckReorder(vm, s.State, s.Original, tt.candidate, []chainid.Address{casestudy.IFU})
			if err != nil {
				t.Fatal(err)
			}
			if !check.Valid {
				t.Fatalf("valid reorder rejected: %s", check.Reason)
			}
			if check.Improvement != tt.wantGain {
				t.Fatalf("improvement = %s, want %s", check.Improvement, tt.wantGain)
			}
		})
	}
}

func TestCheckReorderRejectsNonPermutation(t *testing.T) {
	s := scenario(t)
	vm := ovm.New()
	truncated := s.Original[:7]
	check, err := arbitrage.CheckReorder(vm, s.State, s.Original, truncated, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if check.Valid {
		t.Fatal("truncated candidate accepted")
	}
}

func TestCheckReorderRejectsDroppedExecution(t *testing.T) {
	s := scenario(t)
	vm := ovm.New()
	// Move TX8 (U1 sells token 3 to IFU) before TX1 and move TX3 (IFU sells
	// token 0) to position 2 priced at 0.4... we need an order where an
	// originally-executed tx becomes non-executable. Putting TX4 (U19 sells
	// token 4) after a crafted burn is hard here; instead craft directly:
	// move TX5 (IFU mint, costs ≥0.33) after TX8+TX3 manipulations that
	// drain the IFU below the price. Simpler: an order where the IFU buys
	// twice before selling: TX8 first (pay 0.4), then TX5 mint (pay 0.4),
	// leaves 0.7; that's still fine. So craft via supply: burn TX7 before
	// TX1 makes TX1 still fine... Use economic starvation of U2: U2 funds 5
	// ETH — plenty. Instead exercise the check with an order that drops
	// TX7: burning token 2 before U2 owns it (TX7 before TX1).
	reordered := tx.Seq{s.Original[6], s.Original[0], s.Original[1], s.Original[2],
		s.Original[3], s.Original[4], s.Original[5], s.Original[7]}
	check, err := arbitrage.CheckReorder(vm, s.State, s.Original, reordered, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if check.Valid {
		t.Fatal("order dropping TX7's executability was accepted")
	}
	if check.Reason == "" {
		t.Fatal("invalid reorder should carry a reason")
	}
}

func TestCheckReorderIdentity(t *testing.T) {
	s := scenario(t)
	vm := ovm.New()
	check, err := arbitrage.CheckReorder(vm, s.State, s.Original, s.Original, []chainid.Address{casestudy.IFU})
	if err != nil {
		t.Fatal(err)
	}
	if !check.Valid || check.Improvement != 0 {
		t.Fatalf("identity reorder: valid=%v improvement=%s", check.Valid, check.Improvement)
	}
}
