package experiment

import (
	"context"
	"fmt"
	"strconv"

	"parole/internal/sim"
	"parole/internal/wei"
)

// defenseExp reproduces the Section VIII defense study: sweep the detector's
// tolerance threshold and measure trigger rate, demotions, and residual
// profit. RunDefenseStudy seeds each threshold independently
// (base + index·1000), so the threshold is the point: each point runs a
// single-threshold study at that derived seed, bit-identical to the legacy
// all-thresholds loop.
type defenseExp struct{}

func (defenseExp) Name() string { return "defense" }

func (defenseExp) Columns() []string {
	return []string{"threshold_eth", "scenarios", "triggered", "avg_demotions", "avg_undefended_profit_eth", "avg_residual_profit_eth"}
}

// defenseConfig is the per-scale study configuration with the legacy base
// seed not yet applied.
func defenseConfig(scale Scale) sim.DefenseConfig {
	c := sim.DefaultDefenseConfig()
	switch scale {
	case ScaleFull:
		c.Scenarios = 20
		c.MempoolSize = 25
	case ScaleSmoke:
		c.Thresholds = []wei.Amount{0, wei.FromFloat(0.05)}
		c.Scenarios = 1
		c.MempoolSize = 8
		c.DetectorEvals = 200
		c.AttackerEvals = 400
	}
	return c
}

func (defenseExp) Points(cfg Config) ([]Point, error) {
	thresholds := defenseConfig(cfg.Scale).Thresholds
	points := make([]Point, 0, len(thresholds))
	for ti, threshold := range thresholds {
		points = append(points, Point{
			Index: ti,
			Label: fmt.Sprintf("defense_t%s", threshold),
			File:  "defense",
			// RunDefenseStudy derives threshold ti's RNG from
			// seed + ti·1000; folding the offset into the point seed and
			// running a one-threshold study reproduces it exactly.
			Seed: cfg.Seed + 50 + int64(ti)*1000,
		})
	}
	return points, nil
}

func (defenseExp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	c := defenseConfig(cfg.Scale)
	if p.Index < 0 || p.Index >= len(c.Thresholds) {
		return nil, fmt.Errorf("defense: point index %d out of range", p.Index)
	}
	c.Thresholds = c.Thresholds[p.Index : p.Index+1]
	c.Seed = p.Seed
	rows, err := sim.RunDefenseStudy(c)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		out[i] = Row{
			row.Threshold.String(),
			strconv.Itoa(row.Scenarios),
			strconv.Itoa(row.Triggered),
			fmt.Sprintf("%.2f", row.AvgDemotions),
			row.AvgUndefendedProfit.String(),
			row.AvgResidualProfit.String(),
		}
	}
	return out, nil
}
