package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runToDir executes the experiments into a fresh directory and returns the
// per-file contents, with any volatile columns normalized.
func runToDir(t *testing.T, workers int, exps []Experiment, cfg Config) map[string]string {
	t.Helper()
	dir := t.TempDir()
	runner := &Runner{Workers: workers}
	if err := runner.Run(context.Background(), exps, cfg, &DirEmitter{Dir: dir}); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	byName := map[string]Experiment{}
	for _, e := range exps {
		points, err := e.Points(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			byName[p.File] = e
		}
	}
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		data, err := os.ReadFile(filepath.Join(dir, entry.Name()))
		if err != nil {
			t.Fatal(err)
		}
		file := strings.TrimSuffix(entry.Name(), ".tsv")
		out[entry.Name()] = normalizeVolatile(t, byName[file], string(data))
	}
	return out
}

// normalizeVolatile blanks the run-varying cells (wall clock, allocator
// readings) an experiment declares, leaving all seeded values intact.
func normalizeVolatile(t *testing.T, exp Experiment, content string) string {
	t.Helper()
	v, ok := exp.(Volatile)
	if !ok {
		return content
	}
	volatile := map[string]bool{}
	for _, col := range v.VolatileColumns() {
		volatile[col] = true
	}
	var idx []int
	for i, col := range exp.Columns() {
		if volatile[col] {
			idx = append(idx, i)
		}
	}
	lines := strings.Split(content, "\n")
	for li := 1; li < len(lines); li++ { // keep the header
		if lines[li] == "" {
			continue
		}
		cells := strings.Split(lines[li], "\t")
		for _, i := range idx {
			if i < len(cells) {
				cells[i] = "_"
			}
		}
		lines[li] = strings.Join(cells, "\t")
	}
	return strings.Join(lines, "\n")
}

// TestParallelMatchesSerial is the engine's core determinism property: for
// every registered experiment, a 4-worker run emits byte-identical files to
// a serial run (volatile measurement columns normalized). CI runs this
// under -race, which also exercises the pool for data races.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := Config{Seed: 7, Scale: ScaleSmoke}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.Name(), func(t *testing.T) {
			serial := runToDir(t, 1, []Experiment{exp}, cfg)
			parallel := runToDir(t, 4, []Experiment{exp}, cfg)
			if len(serial) == 0 {
				t.Fatal("serial run emitted no files")
			}
			if len(parallel) != len(serial) {
				t.Fatalf("file sets differ: serial %d, parallel %d", len(serial), len(parallel))
			}
			for name, want := range serial {
				got, ok := parallel[name]
				if !ok {
					t.Fatalf("parallel run missing %s", name)
				}
				if got != want {
					t.Errorf("%s differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s", name, want, got)
				}
			}
		})
	}
}

// TestStreamEmitterFormat pins the stdout format the legacy per-figure
// printers used: a blank line, "# <file>", the header, then the rows.
func TestStreamEmitterFormat(t *testing.T) {
	exp, err := Lookup("table3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runner := &Runner{}
	if err := runner.Run(context.Background(), []Experiment{exp}, Config{Scale: ScaleSmoke}, &StreamEmitter{W: &buf}); err != nil {
		t.Fatal(err)
	}
	wantPrefix := "\n# table3\n" + strings.Join(exp.Columns(), "\t") + "\n"
	if !strings.HasPrefix(buf.String(), wantPrefix) {
		t.Fatalf("stream output starts with %q, want prefix %q", buf.String()[:min(len(buf.String()), 120)], wantPrefix)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 4 {
		t.Fatalf("stream output has %d lines, want header plus rows", lines)
	}
}

// stubExp is a controllable experiment for runner-behavior tests. It is
// never registered: runner tests pass it to Run directly so the global
// registry stays exactly the nine built-ins.
type stubExp struct {
	name   string
	points []Point
	run    func(ctx context.Context, p Point) ([]Row, error)
}

func (s stubExp) Name() string                   { return s.name }
func (s stubExp) Columns() []string              { return []string{"point", "value"} }
func (s stubExp) Points(Config) ([]Point, error) { return s.points, nil }
func (s stubExp) RunPoint(ctx context.Context, _ Config, p Point) ([]Row, error) {
	return s.run(ctx, p)
}

func stubPoints(n int, file func(i int) string) []Point {
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{Index: i, Label: fmt.Sprintf("p%d", i), File: file(i), Seed: int64(i)}
	}
	return points
}

// TestCancellationLeavesNoPartialFiles cancels a 4-worker sweep from inside
// a point and asserts the run stops with the context error and the output
// directory holds no files at all — complete or partial — because emission
// only happens after an experiment's points all succeed, and files land by
// atomic rename.
func TestCancellationLeavesNoPartialFiles(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stub := stubExp{
		name:   "cancelstub",
		points: stubPoints(16, func(i int) string { return fmt.Sprintf("f%d", i/4) }),
		run: func(ctx context.Context, p Point) ([]Row, error) {
			if p.Index == 2 {
				cancel()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return []Row{{p.Label, "1"}}, nil
		},
	}
	dir := t.TempDir()
	runner := &Runner{Workers: 4}
	err := runner.Run(ctx, []Experiment{stub}, Config{}, &DirEmitter{Dir: dir})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, entry := range entries {
		t.Errorf("cancelled run left %s behind", entry.Name())
	}
}

// TestPointErrorReportsEarliestAndEmitsNothing injects a failure into one
// point of a parallel run: the runner must report that point's error (the
// earliest failure, deterministically) and emit no files.
func TestPointErrorReportsEarliestAndEmitsNothing(t *testing.T) {
	boom := errors.New("boom")
	stub := stubExp{
		name:   "errstub",
		points: stubPoints(8, func(int) string { return "f" }),
		run: func(_ context.Context, p Point) ([]Row, error) {
			if p.Index == 3 {
				return nil, boom
			}
			return []Row{{p.Label, "1"}}, nil
		},
	}
	dir := t.TempDir()
	runner := &Runner{Workers: 4}
	err := runner.Run(context.Background(), []Experiment{stub}, Config{}, &DirEmitter{Dir: dir})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want the injected point error", err)
	}
	if !strings.Contains(err.Error(), "p3") {
		t.Fatalf("error %q does not identify the failing point", err)
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Fatalf("failed run left files behind: %v", entries)
	}
}

// TestRunnerOrdersMultiFileOutput checks ordered commit across a mix of
// files and a worker pool: every file must contain its points in point
// order no matter which worker finished first.
func TestRunnerOrdersMultiFileOutput(t *testing.T) {
	stub := stubExp{
		name:   "orderstub",
		points: stubPoints(12, func(i int) string { return fmt.Sprintf("f%d", i/6) }),
		run: func(_ context.Context, p Point) ([]Row, error) {
			return []Row{{p.Label, fmt.Sprint(p.Seed)}}, nil
		},
	}
	dir := t.TempDir()
	runner := &Runner{Workers: 5}
	if err := runner.Run(context.Background(), []Experiment{stub}, Config{}, &DirEmitter{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("f%d.tsv", f)))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 7 { // header + 6 points
			t.Fatalf("f%d has %d lines, want 7:\n%s", f, len(lines), data)
		}
		for i, line := range lines[1:] {
			wantLabel := fmt.Sprintf("p%d", f*6+i)
			if !strings.HasPrefix(line, wantLabel+"\t") {
				t.Fatalf("f%d row %d = %q, want point %s", f, i, line, wantLabel)
			}
		}
	}
}

// TestDirEmitterJSONMirror checks the -json mirror: same rows, keyed by
// column, written beside the TSV.
func TestDirEmitterJSONMirror(t *testing.T) {
	stub := stubExp{
		name:   "jsonstub",
		points: stubPoints(2, func(int) string { return "f" }),
		run: func(_ context.Context, p Point) ([]Row, error) {
			return []Row{{p.Label, "42"}}, nil
		},
	}
	dir := t.TempDir()
	runner := &Runner{}
	if err := runner.Run(context.Background(), []Experiment{stub}, Config{}, &DirEmitter{Dir: dir, JSON: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "f.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"point": "p0"`, `"point": "p1"`, `"value": "42"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("json mirror missing %s:\n%s", want, data)
		}
	}
}
