package experiment

// The built-in studies register here in the evaluation's canonical order —
// the order an "all" run executes and emits, matching the paper's
// presentation (Table III, Fig. 5–11, the Section VIII defense study), then
// the batch-pipeline scaling study (docs/SCALING.md).
func init() {
	Register(table3Exp{})
	Register(fig5Exp{})
	Register(fig6Exp{})
	Register(fig7Exp{})
	Register(fig8Exp{})
	Register(fig9Exp{})
	Register(fig10Exp{})
	Register(fig11Exp{})
	Register(defenseExp{})
	Register(scaleExp{})
	Register(crosschainExp{})
}
