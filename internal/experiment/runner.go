package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"parole/internal/telemetry"
	"parole/internal/trace"
)

// DefaultWorkers is the pool size a "0 = GOMAXPROCS" worker flag resolves
// to.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Runner executes experiments point by point, serially or with a
// deterministic worker pool. Parallelism never changes output: every point
// owns an independent seed, and results are committed to the emitter
// strictly in point order, so a -workers 8 run is byte-identical to a serial
// one.
type Runner struct {
	// Workers is the point-pool size; ≤1 runs serially.
	Workers int
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// Run executes each experiment in order through the emitter. It stops at the
// first point error or context cancellation; because emission is
// file-at-a-time through the emitter's atomic protocol, an aborted run never
// leaves a corrupt partial file behind.
func (r *Runner) Run(ctx context.Context, exps []Experiment, cfg Config, em Emitter) error {
	for _, exp := range exps {
		if err := r.runOne(ctx, exp, cfg, em); err != nil {
			return fmt.Errorf("%s: %w", exp.Name(), err)
		}
	}
	return nil
}

// runOne executes one experiment's points and emits its files.
func (r *Runner) runOne(ctx context.Context, exp Experiment, cfg Config, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	points, err := exp.Points(cfg)
	if err != nil {
		return err
	}
	if err := validatePoints(points); err != nil {
		return err
	}
	reg := telemetry.Default()
	stop := reg.Timer("experiment." + exp.Name() + ".time").Start()
	defer stop()
	defer reg.SampleMemStats()

	results, err := r.execute(ctx, exp, cfg, points)
	if err != nil {
		return err
	}
	return emitOrdered(exp, points, results, em)
}

// execute runs the points and returns their rows, index-aligned with points.
func (r *Runner) execute(ctx context.Context, exp Experiment, cfg Config, points []Point) ([][]Row, error) {
	workers := r.Workers
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		return r.executeSerial(ctx, exp, cfg, points)
	}
	return r.executeParallel(ctx, exp, cfg, points, workers)
}

func (r *Runner) executeSerial(ctx context.Context, exp Experiment, cfg Config, points []Point) ([][]Row, error) {
	results := make([][]Row, len(points))
	for i, p := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := r.runPoint(ctx, exp, cfg, p)
		if err != nil {
			return nil, err
		}
		results[i] = rows
	}
	return results, nil
}

// executeParallel fans the points over a worker pool. Workers claim points
// by atomically advancing a shared cursor; each point's rows land in its own
// slot, so the later ordered emission is independent of scheduling.
func (r *Runner) executeParallel(ctx context.Context, exp Experiment, cfg Config, points []Point, workers int) ([][]Row, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([][]Row, len(points))
	errs := make([]error, len(points))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				rows, err := r.runPoint(ctx, exp, cfg, points[i])
				if err != nil {
					errs[i] = err
					cancel() // stop the other workers claiming new points
					return
				}
				results[i] = rows
			}
		}()
	}
	wg.Wait()
	// Report the error of the earliest failed point: deterministic even when
	// several workers fail at once.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPoint executes one point with its telemetry and trace envelope.
func (r *Runner) runPoint(ctx context.Context, exp Experiment, cfg Config, p Point) ([]Row, error) {
	span := trace.StartSpan(trace.SpanExperimentPoint,
		trace.Str("experiment", exp.Name()),
		trace.Str("point", p.Label),
		trace.Str("file", p.File),
		trace.Int("seed", p.Seed))
	rows, err := exp.RunPoint(ctx, cfg, p)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("point %s (seed %d): %w", p.Label, p.Seed, err)
	}
	telemetry.Default().Counter("experiment.points").Add(1)
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "%s: %s (%d rows)\n", exp.Name(), p.Label, len(rows))
	}
	return rows, nil
}

// emitOrdered streams the completed results through the emitter in point
// order, opening and closing files at the contiguous-group boundaries.
func emitOrdered(exp Experiment, points []Point, results [][]Row, em Emitter) error {
	open := ""
	for i, p := range points {
		if p.File != open {
			if open != "" {
				if err := em.EndFile(); err != nil {
					return err
				}
			}
			if err := em.BeginFile(exp, p.File); err != nil {
				return err
			}
			open = p.File
		}
		if err := em.Rows(results[i]); err != nil {
			return err
		}
	}
	if open != "" {
		return em.EndFile()
	}
	return nil
}

// validatePoints enforces the Point contract: non-empty file names and
// file-contiguity (so emission can stream file by file).
func validatePoints(points []Point) error {
	seen := map[string]bool{}
	open := ""
	for i, p := range points {
		if p.File == "" {
			return fmt.Errorf("point %d (%s): empty file", i, p.Label)
		}
		if p.File != open {
			if seen[p.File] {
				return fmt.Errorf("point %d (%s): file %q not contiguous", i, p.Label, p.File)
			}
			seen[p.File] = true
			open = p.File
		}
	}
	return nil
}
