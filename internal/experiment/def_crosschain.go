package experiment

import (
	"context"
	"fmt"
	"strconv"

	"parole/internal/sim"
	"parole/internal/wei"
)

// crosschainExp is the multi-rollup study (docs/CROSSCHAIN.md): a World of
// rollups trading the same collection at seeded price discrepancies, swept
// over the adversary ladder — the paper's per-chain sequencer, a shared
// sequencer ordering every chain's batches atomically, and a time-advantaged
// arbitrageur bridging tokens over the spread — with and without the
// cross-rollup inspector.
//
// Every point runs at the SAME derived seed: the cells differ only in the
// adversary and defense, so the committed rows compare variants on identical
// workloads, which is what makes "shared > best single-chain" a claim rather
// than noise. Each cell re-runs its own honest baseline and reports profit
// as joint IFU end-wealth over that baseline; the "single" cell runs every
// possible adversary chain and keeps the most profitable.
type crosschainExp struct{}

// crossCell is one committed row: an adversary/defense pairing.
type crossCell struct {
	variant sim.CrossVariant
	inspect sim.CrossInspect
}

// crossCells is the committed grid, the ladder under both postures.
var crossCells = []crossCell{
	{sim.CrossHonest, sim.CrossInspectOff},
	{sim.CrossSingle, sim.CrossInspectOff},
	{sim.CrossShared, sim.CrossInspectOff},
	{sim.CrossHeadStart, sim.CrossInspectOff},
	{sim.CrossSingle, sim.CrossInspectOn},
	{sim.CrossShared, sim.CrossInspectOn},
	{sim.CrossHeadStart, sim.CrossInspectOn},
}

func (crosschainExp) Name() string { return "crosschain" }

func (crosschainExp) Columns() []string {
	return []string{
		"chains", "mempool", "rounds", "variant", "inspect",
		"profit_eth", "wealth_eth", "reordered",
		"bridges", "released", "demotions", "triggers", "batches",
	}
}

// crosschainConfig is the per-scale run shape, seed not yet applied.
func crosschainConfig(scale Scale) sim.CrossChainConfig {
	c := sim.DefaultCrossChainConfig()
	switch scale {
	case ScaleFull:
		c.Rounds = 6
		c.MempoolSize = 16
		c.Users = 14
		c.MaxSupply = 128
	case ScaleSmoke:
		c.Rounds = 2
		c.MempoolSize = 8
		c.Users = 10
		c.MaxSupply = 64
		c.DetectorEvals = 200
	}
	return c
}

func (crosschainExp) Points(cfg Config) ([]Point, error) {
	points := make([]Point, len(crossCells))
	for i, cell := range crossCells {
		points[i] = Point{
			Index: i,
			Label: fmt.Sprintf("crosschain_%s_%s", cell.variant, cell.inspect),
			File:  "crosschain",
			// One shared seed across all cells — identical workloads are
			// the comparison's premise.
			Seed: cfg.Seed + 70,
		}
	}
	return points, nil
}

func (crosschainExp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	if p.Index < 0 || p.Index >= len(crossCells) {
		return nil, fmt.Errorf("crosschain: point index %d out of range", p.Index)
	}
	cell := crossCells[p.Index]
	c := crosschainConfig(cfg.Scale)
	c.Seed = p.Seed

	baseCfg := c
	baseCfg.Variant = sim.CrossHonest
	baseCfg.Inspect = sim.CrossInspectOff
	baseline, err := sim.RunCrossChain(baseCfg)
	if err != nil {
		return nil, fmt.Errorf("crosschain baseline: %w", err)
	}

	best, bestProfit := baseline, wei.Amount(0)
	switch cell.variant {
	case sim.CrossHonest:
		run := c
		run.Inspect = cell.inspect
		if best, err = sim.RunCrossChain(run); err != nil {
			return nil, err
		}
		bestProfit = best.Wealth - baseline.Wealth
	case sim.CrossSingle:
		// The strongest per-chain adversary: try every chain, keep the
		// most profitable.
		for chain := uint64(1); chain <= uint64(c.Chains); chain++ {
			run := c
			run.Variant = cell.variant
			run.Inspect = cell.inspect
			run.AdversaryChain = chain
			res, err := sim.RunCrossChain(run)
			if err != nil {
				return nil, fmt.Errorf("crosschain %s chain %d: %w", cell.variant, chain, err)
			}
			if profit := res.Wealth - baseline.Wealth; chain == 1 || profit > bestProfit {
				best, bestProfit = res, profit
			}
		}
	default:
		run := c
		run.Variant = cell.variant
		run.Inspect = cell.inspect
		if best, err = sim.RunCrossChain(run); err != nil {
			return nil, fmt.Errorf("crosschain %s: %w", cell.variant, err)
		}
		bestProfit = best.Wealth - baseline.Wealth
	}

	return []Row{{
		strconv.Itoa(c.Chains),
		strconv.Itoa(c.MempoolSize),
		strconv.Itoa(c.Rounds),
		string(cell.variant),
		string(cell.inspect),
		bestProfit.String(),
		best.Wealth.String(),
		strconv.Itoa(best.Reordered),
		strconv.Itoa(best.BridgesInitiated),
		strconv.Itoa(best.BridgesReleased),
		strconv.Itoa(best.Demotions),
		strconv.Itoa(best.Triggers),
		strconv.Itoa(best.Batches),
	}}, nil
}
