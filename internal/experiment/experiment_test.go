package experiment

import (
	"errors"
	"strings"
	"testing"
)

// TestRegistryNames pins the canonical registration order — the order an
// "all" run executes and emits.
func TestRegistryNames(t *testing.T) {
	want := []string{"table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "defense", "scale", "crosschain"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("fig99")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("Lookup(fig99) error = %v, want ErrUnknownExperiment", err)
	}
	var unknown *UnknownExperimentError
	if !errors.As(err, &unknown) {
		t.Fatalf("Lookup(fig99) error type = %T, want *UnknownExperimentError", err)
	}
	if unknown.Name != "fig99" {
		t.Fatalf("unknown.Name = %q", unknown.Name)
	}
	// The message lists every registered name so a CLI typo is
	// self-correcting.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered experiment %q", err, name)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Names()) {
		t.Fatalf("Select(all) = %d experiments, err %v", len(all), err)
	}
	// A comma list resolves, deduplicates, and returns registry order
	// regardless of spec order.
	got, err := Select("fig8, table3,fig8")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(got) != 2 || got[0].Name() != "table3" || got[1].Name() != "fig8" {
		names := make([]string, len(got))
		for i, e := range got {
			names[i] = e.Name()
		}
		t.Fatalf("Select(fig8,table3,fig8) = %v, want [table3 fig8]", names)
	}
	if _, err := Select("table3,fig99"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("Select with unknown name error = %v, want ErrUnknownExperiment", err)
	}
}

func TestScaleString(t *testing.T) {
	for scale, want := range map[Scale]string{ScaleQuick: "quick", ScaleFull: "full", ScaleSmoke: "smoke"} {
		if got := scale.String(); got != want {
			t.Fatalf("Scale(%d).String() = %q, want %q", scale, got, want)
		}
	}
}

func TestValidatePoints(t *testing.T) {
	ok := []Point{{File: "a"}, {File: "a"}, {File: "b"}}
	if err := validatePoints(ok); err != nil {
		t.Fatalf("contiguous points rejected: %v", err)
	}
	split := []Point{{File: "a"}, {File: "b"}, {File: "a"}}
	if err := validatePoints(split); err == nil {
		t.Fatal("non-contiguous file accepted")
	}
	if err := validatePoints([]Point{{Label: "x"}}); err == nil {
		t.Fatal("empty file name accepted")
	}
}

// TestPointSeedsMatchLegacyDerivation pins the per-point seed formulas the
// legacy per-figure drivers used; the committed results depend on them.
func TestPointSeedsMatchLegacyDerivation(t *testing.T) {
	cfg := Config{Seed: 1}
	want := map[string]map[string]int64{
		"fig6": {
			"fig6_adv10_search": 1, "fig6_adv50_search": 1,
			"fig6_adv10_dqn": 1, "fig6_adv50_dqn": 1,
		},
		"fig7": {
			"fig7_ifus1_search": 2, "fig7_ifus2_search": 3,
			"fig7_ifus1_dqn": 2, "fig7_ifus2_dqn": 3,
		},
		"fig8":  {"fig8_ifus1": 12, "fig8_ifus2": 13},
		"fig9":  {"fig9_mempool25": 46, "fig9_mempool50": 71},
		"fig10": {"fig10": 31},
		"fig11": {"fig11": 41},
	}
	for name, files := range want {
		exp, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		points, err := exp.Points(cfg)
		if err != nil {
			t.Fatalf("%s points: %v", name, err)
		}
		seen := map[string]int64{}
		for _, p := range points {
			seen[p.Label] = p.Seed
		}
		for label, seed := range files {
			if seen[label] != seed {
				t.Errorf("%s point %q seed = %d, want %d", name, label, seen[label], seed)
			}
		}
	}
	// Defense folds the legacy per-threshold offset (base+50 + index·1000)
	// into the point seed.
	exp, err := Lookup("defense")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Points(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("defense points = %d, want 5", len(points))
	}
	for ti, p := range points {
		if want := int64(51 + ti*1000); p.Seed != want {
			t.Errorf("defense point %d seed = %d, want %d", ti, p.Seed, want)
		}
	}
}
