package experiment

import (
	"context"
	"fmt"
	"strconv"

	"parole/internal/sim"
)

// fig6Exp reproduces Fig. 6: average attack profit per served IFU across
// mempool sizes and IFU counts, for 10% and 50% adversarial aggregator
// shares, recorded once per optimizer backend. Each (backend, share) pair
// threads one RNG through its whole grid and lands in its own file, so the
// pair is the point.
type fig6Exp struct{}

func (fig6Exp) Name() string { return "fig6" }

func (fig6Exp) Columns() []string {
	return []string{"mempool", "ifus", "adv_frac", "avg_profit_per_ifu_eth", "avg_profit_per_ifu_sats", "batches"}
}

func (fig6Exp) Points(cfg Config) ([]Point, error) {
	var points []Point
	for _, backend := range profitBackends(cfg.Scale) {
		for _, frac := range []float64{0.10, 0.50} {
			name := fmt.Sprintf("fig6_adv%d_%s", int(frac*100), backend.label)
			points = append(points, Point{
				Index: len(points),
				Label: name,
				File:  name,
				// Every pair reuses the base seed — the legacy driver's
				// derivation, kept verbatim so committed series reproduce.
				Seed: cfg.Seed,
			})
		}
	}
	return points, nil
}

func (fig6Exp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	backend, frac, err := profitPoint(cfg.Scale, p)
	if err != nil {
		return nil, err
	}
	c := sim.DefaultFig6Config()
	c.AdversarialFraction = frac
	c.Seed = p.Seed
	c.Optimizer = backend.cfg
	switch cfg.Scale {
	case ScaleFull:
		// The paper's grid (the DefaultFig6Config axes) at the Table II
		// training budget.
	case ScaleSmoke:
		c.MempoolSizes = []int{8}
		c.IFUCounts = []int{1}
		c.Trials = 1
	default:
		c.Trials = 2
		if backend.label == "dqn" {
			// The DQN variant is the budget-limited series; one trial and
			// N ≤ 50 keep the default sweep laptop-scale (EXPERIMENTS.md
			// documents the large-N budget regime).
			c.Trials = 1
			c.MempoolSizes = []int{10, 25, 50}
		}
	}
	rows, err := sim.RunFig6(c)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		out[i] = Row{
			strconv.Itoa(row.MempoolSize),
			strconv.Itoa(row.IFUs),
			fmt.Sprintf("%.2f", row.AdversarialFrac),
			row.AvgProfitPerIFU.String(),
			fmt.Sprintf("%d", row.AvgProfitPerIFU.Sats()),
			strconv.Itoa(row.Batches),
		}
	}
	return out, nil
}

// profitPoint recovers the backend and adversarial fraction a fig6 point
// encodes in its file name position.
func profitPoint(scale Scale, p Point) (profitBackend, float64, error) {
	backends := profitBackends(scale)
	fracs := []float64{0.10, 0.50}
	if p.Index < 0 || p.Index >= len(backends)*len(fracs) {
		return profitBackend{}, 0, fmt.Errorf("fig6: point index %d out of range", p.Index)
	}
	return backends[p.Index/len(fracs)], fracs[p.Index%len(fracs)], nil
}

// fig7Exp reproduces Fig. 7: total profit across all IFUs versus the
// adversarial share of aggregators, per backend and per IFU count. Like
// Fig. 6 the (backend, IFU count) file is the point.
type fig7Exp struct{}

func (fig7Exp) Name() string { return "fig7" }

func (fig7Exp) Columns() []string {
	return []string{"adv_percent", "mempool", "ifus", "total_profit_eth", "total_profit_sats"}
}

func (fig7Exp) Points(cfg Config) ([]Point, error) {
	var points []Point
	for _, backend := range profitBackends(cfg.Scale) {
		for _, ifus := range []int{1, 2} {
			points = append(points, Point{
				Index: len(points),
				Label: fmt.Sprintf("fig7_ifus%d_%s", ifus, backend.label),
				File:  fmt.Sprintf("fig7_ifus%d_%s", ifus, backend.label),
				Seed:  cfg.Seed + int64(ifus),
			})
		}
	}
	return points, nil
}

func (fig7Exp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	backends := profitBackends(cfg.Scale)
	ifuCounts := []int{1, 2}
	if p.Index < 0 || p.Index >= len(backends)*len(ifuCounts) {
		return nil, fmt.Errorf("fig7: point index %d out of range", p.Index)
	}
	backend := backends[p.Index/len(ifuCounts)]
	c := sim.DefaultFig7Config()
	c.IFUs = ifuCounts[p.Index%len(ifuCounts)]
	c.Seed = p.Seed
	c.Optimizer = backend.cfg
	switch cfg.Scale {
	case ScaleFull:
	case ScaleSmoke:
		c.AdversarialPercents = []int{10, 50}
		c.MempoolSizes = []int{8}
		c.Trials = 1
	default:
		c.Trials = 2
		if backend.label == "dqn" {
			c.Trials = 1
			c.MempoolSizes = []int{25, 50}
		}
	}
	rows, err := sim.RunFig7(c)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		out[i] = Row{
			strconv.Itoa(row.AdversarialPercent),
			strconv.Itoa(row.MempoolSize),
			strconv.Itoa(row.IFUs),
			row.TotalProfit.String(),
			fmt.Sprintf("%d", row.TotalProfitSats),
		}
	}
	return out, nil
}
