package experiment

import (
	"context"
	"fmt"
	"strconv"

	"parole/internal/sim"
)

// fig8Exp reproduces Fig. 8: moving-average episode rewards of the DQN agent
// for different initial exploration values, one file (and point) per IFU
// count.
type fig8Exp struct{}

func (fig8Exp) Name() string { return "fig8" }

func (fig8Exp) Columns() []string {
	return []string{"epsilon", "ifus", "episode", "reward", "moving_avg_w9", "best_gain_eth"}
}

func (fig8Exp) Points(cfg Config) ([]Point, error) {
	points := make([]Point, 0, 2)
	for _, ifus := range []int{1, 2} {
		points = append(points, Point{
			Index: len(points),
			Label: fmt.Sprintf("fig8_ifus%d", ifus),
			File:  fmt.Sprintf("fig8_ifus%d", ifus),
			Seed:  cfg.Seed + 10 + int64(ifus),
		})
	}
	return points, nil
}

func (fig8Exp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	c := sim.DefaultFig8Config()
	c.IFUs = p.Index + 1
	c.Seed = p.Seed
	switch cfg.Scale {
	case ScaleFull:
		c.Episodes, c.MaxSteps = 100, 200
		c.MempoolSize = 50
	case ScaleSmoke:
		c.Episodes, c.MaxSteps = 6, 12
		c.MempoolSize = 8
	}
	points, err := sim.RunFig8(c)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(points))
	for i, pt := range points {
		out[i] = Row{
			fmt.Sprintf("%.2f", pt.Epsilon),
			strconv.Itoa(pt.IFUs),
			strconv.Itoa(pt.Episode),
			fmt.Sprintf("%.2f", pt.Reward),
			fmt.Sprintf("%.2f", pt.Smoothed),
			fmt.Sprintf("%.4f", pt.BestGainETH),
		}
	}
	return out, nil
}

// fig9Exp reproduces Fig. 9: the KDE of the number of swaps a trained agent
// needs to reach its first candidate solution, one file (and point) per
// mempool size.
type fig9Exp struct{}

func (fig9Exp) Name() string { return "fig9" }

func (fig9Exp) Columns() []string {
	return []string{"mempool", "ifus", "samples", "unsolved", "mode_swaps", "x", "density"}
}

// fig9Sizes is the per-scale mempool-size axis (which also names the files).
func fig9Sizes(scale Scale) []int {
	switch scale {
	case ScaleFull:
		return []int{50, 100}
	case ScaleSmoke:
		return []int{8}
	default:
		return []int{25, 50}
	}
}

func (fig9Exp) Points(cfg Config) ([]Point, error) {
	sizes := fig9Sizes(cfg.Scale)
	points := make([]Point, 0, len(sizes))
	for _, n := range sizes {
		points = append(points, Point{
			Index: len(points),
			Label: fmt.Sprintf("fig9_mempool%d", n),
			File:  fmt.Sprintf("fig9_mempool%d", n),
			Seed:  cfg.Seed + 20 + int64(n),
		})
	}
	return points, nil
}

func (fig9Exp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	sizes := fig9Sizes(cfg.Scale)
	if p.Index < 0 || p.Index >= len(sizes) {
		return nil, fmt.Errorf("fig9: point index %d out of range", p.Index)
	}
	c := sim.DefaultFig9Config()
	c.MempoolSize = sizes[p.Index]
	c.Seed = p.Seed
	c.Gen = genBudget(cfg.Scale)
	switch cfg.Scale {
	case ScaleFull:
	case ScaleSmoke:
		c.Runs = 2
	default:
		c.Runs = 10
	}
	curves, err := sim.RunFig9(c)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, curve := range curves {
		for i := range curve.X {
			out = append(out, Row{
				strconv.Itoa(curve.MempoolSize),
				strconv.Itoa(curve.IFUs),
				strconv.Itoa(len(curve.Samples)),
				strconv.Itoa(curve.Unsolved),
				fmt.Sprintf("%.1f", curve.Mode),
				fmt.Sprintf("%.2f", curve.X[i]),
				fmt.Sprintf("%.5f", curve.Density[i]),
			})
		}
	}
	return out, nil
}
