package experiment

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// runScale executes the scaling study at the smoke budget and returns the
// volatile-normalized scale.tsv contents.
func runScale(t *testing.T, workers int) string {
	t.Helper()
	exp, err := Lookup("scale")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	runner := &Runner{Workers: workers}
	cfg := Config{Seed: 1, Scale: ScaleSmoke}
	if err := runner.Run(context.Background(), []Experiment{exp}, cfg, &DirEmitter{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scale.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	return normalizeVolatile(t, exp, string(data))
}

// TestScaleSmokeDeterminism runs the N=1k pipeline serially and with a
// parallel runner: the deterministic columns — including the chained batch
// digest and the final state root — must match byte for byte. The in-point
// serial-vs-parallel collection check and the incremental-vs-cold root check
// run as part of every point, so a passing run is also a correctness check
// of the sharded mempool and the incremental tree at pipeline scale.
func TestScaleSmokeDeterminism(t *testing.T) {
	serial := runScale(t, 1)
	parallel := runScale(t, 4)
	if serial != parallel {
		t.Fatalf("scale.tsv differs between -workers 1 and -workers 4:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
