package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Emitter receives a run's output file by file: BeginFile, Rows (one or more
// times, already in point order), EndFile. The Runner only calls EndFile on
// complete files, so emitters can make completion atomic.
type Emitter interface {
	// BeginFile opens the named series (TSV base name, no extension).
	BeginFile(exp Experiment, file string) error
	// Rows appends records to the open series.
	Rows(rows []Row) error
	// EndFile completes the open series.
	EndFile() error
}

// StreamEmitter writes every series to one stream, each introduced by a
// "# name" heading — the binaries' stdout mode, format-compatible with the
// legacy per-figure printers.
type StreamEmitter struct {
	// W is the destination stream.
	W   io.Writer
	err error
}

// BeginFile prints the series heading and header row.
func (e *StreamEmitter) BeginFile(exp Experiment, file string) error {
	e.err = nil
	if _, err := fmt.Fprintf(e.W, "\n# %s\n", file); err != nil {
		return err
	}
	_, err := fmt.Fprintln(e.W, strings.Join(exp.Columns(), "\t"))
	return err
}

// Rows prints the records as TSV lines.
func (e *StreamEmitter) Rows(rows []Row) error {
	if e.err != nil {
		return e.err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(e.W, strings.Join(row, "\t")); err != nil {
			e.err = err
			return err
		}
	}
	return nil
}

// EndFile is a no-op for streams.
func (e *StreamEmitter) EndFile() error { return e.err }

// DirEmitter writes one <file>.tsv per series into Dir, atomically: rows
// accumulate in a hidden temp file that is renamed into place only on
// EndFile, so a cancelled or failed run never leaves a truncated series
// behind. With JSON set it also writes a <file>.json mirror (an array of
// column→cell objects) beside each TSV.
type DirEmitter struct {
	// Dir is the output directory (created by the caller).
	Dir string
	// JSON additionally writes a .json mirror per series.
	JSON bool

	exp  Experiment
	file string
	tmp  *os.File
	rows []Row
}

// BeginFile opens the temp file and writes the header.
func (e *DirEmitter) BeginFile(exp Experiment, file string) error {
	if e.tmp != nil {
		return fmt.Errorf("experiment: BeginFile %q with %q still open", file, e.file)
	}
	tmp, err := os.CreateTemp(e.Dir, "."+file+".tsv.tmp*")
	if err != nil {
		return err
	}
	e.exp, e.file, e.tmp, e.rows = exp, file, tmp, nil
	if _, err := fmt.Fprintln(tmp, strings.Join(exp.Columns(), "\t")); err != nil {
		e.abort()
		return err
	}
	return nil
}

// Rows appends records to the temp file.
func (e *DirEmitter) Rows(rows []Row) error {
	if e.tmp == nil {
		return fmt.Errorf("experiment: Rows with no open file")
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(e.tmp, strings.Join(row, "\t")); err != nil {
			e.abort()
			return err
		}
	}
	if e.JSON {
		e.rows = append(e.rows, rows...)
	}
	return nil
}

// EndFile syncs the temp file and renames it into place (plus the JSON
// mirror when configured).
func (e *DirEmitter) EndFile() error {
	if e.tmp == nil {
		return fmt.Errorf("experiment: EndFile with no open file")
	}
	tmp, file, exp, rows := e.tmp, e.file, e.exp, e.rows
	e.exp, e.file, e.tmp, e.rows = nil, "", nil, nil
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(e.Dir, file+".tsv")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if !e.JSON {
		return nil
	}
	return writeJSONMirror(e.Dir, file, exp.Columns(), rows)
}

// abort discards the open temp file after a write error.
func (e *DirEmitter) abort() {
	if e.tmp != nil {
		name := e.tmp.Name()
		e.tmp.Close()
		os.Remove(name)
	}
	e.exp, e.file, e.tmp, e.rows = nil, "", nil, nil
}

// writeJSONMirror writes <file>.json atomically: an array of objects keyed
// by column name, cells kept as the TSV's formatted strings so the two
// artifacts can never disagree.
func writeJSONMirror(dir, file string, columns []string, rows []Row) error {
	records := make([]map[string]string, len(rows))
	for i, row := range rows {
		rec := make(map[string]string, len(columns))
		for c, col := range columns {
			if c < len(row) {
				rec[col] = row[c]
			}
		}
		records[i] = rec
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+file+".json.tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, file+".json"))
}
