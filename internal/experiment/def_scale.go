package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"parole/internal/chainid"
	"parole/internal/mempool"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// scaleExp is the batch-pipeline scaling study (docs/SCALING.md): for each
// workload size N it drives the full mempool → batch → state-root pipeline —
// admit N transactions into two identically provisioned sharded pools,
// collect fixed-size batches from both, apply every batch to one live State,
// and read the incremental Merkle root after each batch.
//
// The point fails, rather than emitting a row, if any batch from the twin
// pool differs from its counterpart in any position, or if the final
// incremental root disagrees with a cold rebuild — so a committed scale.tsv
// row is itself evidence of the determinism and correctness claims, not just
// a timing.
//
// Deterministic columns come first (the batch digest chains every sealed
// batch, so one differing transaction anywhere changes the committed cell);
// the wall-clock columns are volatile and normalized by the determinism
// tests.
type scaleExp struct{}

// Fixed pipeline shape: varied knobs would multiply the committed grid
// without adding information — shard/worker invariance is separately pinned
// by the mempool and rollup test suites. Config.MempoolShards can override
// the shard count for invariance smokes (the Makefile scale-smoke target
// diffs a 1-shard run against the default and expects every deterministic
// column except the recorded shard count to match).
const (
	scaleShards    = 32
	scaleBatchSize = 256
)

// shardCount resolves the effective pool shard count for a run.
func shardCount(cfg Config) int {
	if cfg.MempoolShards > 0 {
		return cfg.MempoolShards
	}
	return scaleShards
}

func (scaleExp) Name() string { return "scale" }

func (scaleExp) Columns() []string {
	return []string{
		"n", "users", "shards", "batches", "executed", "skipped",
		"batch_digest", "state_root",
		"admit_ms", "collect_ms", "exec_ms", "root_ms", "cold_root_ms", "total_ms",
	}
}

// VolatileColumns marks the wall-clock measurements.
func (scaleExp) VolatileColumns() []string {
	return []string{"admit_ms", "collect_ms", "exec_ms", "root_ms", "cold_root_ms", "total_ms"}
}

// scaleSizes selects the workload sizes per budget.
func scaleSizes(s Scale) []int {
	switch s {
	case ScaleFull:
		return []int{1_000, 10_000, 100_000, 300_000}
	case ScaleSmoke:
		return []int{1_000}
	default:
		return []int{1_000, 10_000, 100_000}
	}
}

func (scaleExp) Points(cfg Config) ([]Point, error) {
	sizes := scaleSizes(cfg.Scale)
	points := make([]Point, len(sizes))
	for i, n := range sizes {
		points[i] = Point{
			Index: i,
			Label: fmt.Sprintf("scale-n%d", n),
			File:  "scale",
			Seed:  cfg.Seed + 60 + int64(i),
		}
	}
	return points, nil
}

func (scaleExp) RunPoint(ctx context.Context, cfg Config, p Point) ([]Row, error) {
	n := scaleSizes(cfg.Scale)[p.Index]
	users := n / 16
	if users < 32 {
		users = 32
	}
	if users > 4096 {
		users = 4096
	}
	rng := rand.New(rand.NewSource(p.Seed))
	start := time.Now()

	// World state: funded senders plus one large collection.
	st := state.New()
	for i := 0; i < users; i++ {
		st.SetBalance(chainid.UserAddress(i), wei.FromETH(1_000))
	}
	ptAddr := chainid.DeriveAddress("scale-pt")
	pt, err := token.Deploy(ptAddr, token.Config{
		Name: "ScalePT", Symbol: "SPT",
		MaxSupply: uint64(n) + 1, InitialPrice: wei.FromFloat(0.001),
	})
	if err != nil {
		return nil, err
	}
	if err := st.DeployToken(pt); err != nil {
		return nil, err
	}
	st.Root() // build the incremental tree once, before the batch loop

	// Twin pools, identical admission stream: every batch must come out
	// byte-identical from both (positional divergence fails the point).
	shards := shardCount(cfg)
	poolCfg := mempool.Config{Shards: shards}
	serial := mempool.NewWithConfig(poolCfg)
	twin := mempool.NewWithConfig(poolCfg)
	tAdmit := time.Now()
	for i := 0; i < n; i++ {
		m := tx.Mint(ptAddr, uint64(i), chainid.UserAddress(rng.Intn(users))).
			WithFees(wei.Amount(1+rng.Int63n(1_000)), wei.Amount(rng.Int63n(100)))
		if err := serial.Add(m); err != nil {
			return nil, fmt.Errorf("scale: admit serial tx %d: %w", i, err)
		}
		if err := twin.Add(m); err != nil {
			return nil, fmt.Errorf("scale: admit twin tx %d: %w", i, err)
		}
	}
	admitMS := time.Since(tAdmit)

	// Batch loop: collect both ways, require byte identity, apply to the
	// state, and read the incremental root after every batch.
	var (
		batches, executed, skipped int
		collectMS, execMS, rootMS  time.Duration
		digest                     chainid.Hash
		root                       chainid.Hash
	)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		bs := serial.Collect(scaleBatchSize)
		bp := twin.Collect(scaleBatchSize)
		collectMS += time.Since(t0)
		if len(bs) != len(bp) {
			return nil, fmt.Errorf("scale: batch %d: serial collected %d, twin %d", batches, len(bs), len(bp))
		}
		if len(bs) == 0 {
			break
		}
		for i := range bs {
			if bs[i] != bp[i] {
				return nil, fmt.Errorf("scale: batch %d diverges at position %d: serial %v, twin %v",
					batches, i, bs[i], bp[i])
			}
		}
		digest = chainid.CombineHashes(digest, bs.Hash())

		t1 := time.Now()
		for _, m := range bs {
			if err := st.Debit(m.From, m.Fee()); err != nil {
				skipped++
				continue
			}
			if err := st.MintToken(pt, m.From, m.TokenID); err != nil {
				st.Credit(m.From, m.Fee()) // refund the failed mint
				skipped++
				continue
			}
			st.BumpNonce(m.From)
			executed++
		}
		execMS += time.Since(t1)

		t2 := time.Now()
		root = st.Root()
		rootMS += time.Since(t2)
		batches++
	}

	// The committed row asserts the incremental root agrees with a cold
	// rebuild over the final state.
	t3 := time.Now()
	cold := st.ColdRoot()
	coldMS := time.Since(t3)
	if root != cold {
		return nil, fmt.Errorf("scale: incremental root %s != cold rebuild %s after %d batches", root, cold, batches)
	}

	return []Row{{
		strconv.Itoa(n),
		strconv.Itoa(users),
		strconv.Itoa(shards),
		strconv.Itoa(batches),
		strconv.Itoa(executed),
		strconv.Itoa(skipped),
		digest.Hex(),
		root.Hex(),
		strconv.FormatInt(admitMS.Milliseconds(), 10),
		strconv.FormatInt(collectMS.Milliseconds(), 10),
		strconv.FormatInt(execMS.Milliseconds(), 10),
		strconv.FormatInt(rootMS.Milliseconds(), 10),
		strconv.FormatInt(coldMS.Milliseconds(), 10),
		strconv.FormatInt(time.Since(start).Milliseconds(), 10),
	}}, nil
}
