package experiment

import (
	"parole/internal/gentranseq"
	"parole/internal/sim"
)

// This file holds the pieces the built-in experiment definitions share: the
// DQN training budget per scale and the optimizer backend variants the
// profit sweeps record.

// genBudget picks the DQN budget for a scale: the paper's Table II budget at
// full scale, the laptop-scale FastConfig at quick, and a seconds-scale
// budget for smoke runs.
func genBudget(scale Scale) gentranseq.Config {
	switch scale {
	case ScaleFull:
		return gentranseq.DefaultConfig()
	case ScaleSmoke:
		cfg := gentranseq.FastConfig()
		cfg.Episodes = 2
		cfg.MaxSteps = 16
		return cfg
	default:
		return gentranseq.FastConfig()
	}
}

// profitBackend pairs an optimizer config with its file label.
type profitBackend struct {
	label string
	cfg   sim.OptimizerConfig
}

// profitBackends returns the optimizer variants each profit experiment
// records: the hill-climb "strong optimizer" series that isolates the
// paper's economic claim (more reordering flexibility → more profit), and
// the DQN series at the configured training budget. See EXPERIMENTS.md for
// why both are recorded.
func profitBackends(scale Scale) []profitBackend {
	return []profitBackend{
		{label: "search", cfg: sim.OptimizerConfig{Kind: sim.OptHillClimb}},
		{label: "dqn", cfg: sim.OptimizerConfig{Kind: sim.OptDQN, Gen: genBudget(scale), AdaptiveSteps: true}},
	}
}
