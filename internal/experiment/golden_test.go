package experiment

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// The golden tests pin the engine's quick-scale, seed-1 output against the
// committed results/ series: the refactor from hand-rolled per-figure loops
// to the engine provably changes zero numbers. Tiers by runtime:
//
//   - table3/fig5/fig10 run always (seconds);
//   - defense/fig8 skip under -short (tens of seconds);
//   - fig6/fig9/fig11 only run when PAROLE_GOLDEN_FULL=1 (many minutes —
//     make golden-full covers them; fig6's committed files are the search
//     backend's, and fig11's measurement columns are normalized).
//
// Every run also exercises -workers 4, so the goldens double as a
// parallel-determinism check against the committed bytes.

// resultsDir locates the committed seed results.
func resultsDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "results"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("committed results not available: %v", err)
	}
	return dir
}

// goldenCompare runs one experiment at the committed configuration (quick
// scale, seed 1, 4 workers) and diffs every generated file that has a
// committed counterpart.
func goldenCompare(t *testing.T, name string) {
	t.Helper()
	results := resultsDir(t)
	exp, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 1, Scale: ScaleQuick}
	dir := t.TempDir()
	runner := &Runner{Workers: 4}
	if err := runner.Run(context.Background(), []Experiment{exp}, cfg, &DirEmitter{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	points, err := exp.Points(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.File] {
			continue
		}
		seen[p.File] = true
		committed, err := os.ReadFile(filepath.Join(results, p.File+".tsv"))
		if os.IsNotExist(err) {
			// Not every quick-scale series is committed (the DQN profit
			// sweeps take hours); those files are covered by the
			// parallel-determinism property test instead.
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		generated, err := os.ReadFile(filepath.Join(dir, p.File+".tsv"))
		if err != nil {
			t.Fatal(err)
		}
		want := normalizeVolatile(t, exp, string(committed))
		got := normalizeVolatile(t, exp, string(generated))
		if got != want {
			t.Errorf("%s.tsv differs from the committed seed output\ncommitted:\n%s\ngenerated:\n%s", p.File, want, got)
		}
		compared++
	}
	if compared == 0 {
		t.Fatalf("%s: no committed files to compare against", name)
	}
}

func TestGoldenTable3(t *testing.T) { goldenCompare(t, "table3") }
func TestGoldenFig5(t *testing.T)   { goldenCompare(t, "fig5") }
func TestGoldenFig10(t *testing.T)  { goldenCompare(t, "fig10") }

func TestGoldenDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("defense golden takes ~15s; skipped under -short")
	}
	goldenCompare(t, "defense")
}

func TestGoldenFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 golden takes ~15s; skipped under -short")
	}
	goldenCompare(t, "fig8")
}

func TestGoldenCrosschain(t *testing.T) {
	if testing.Short() {
		t.Skip("crosschain golden takes ~15s; skipped under -short")
	}
	goldenCompare(t, "crosschain")
}

// goldenFull gates the minutes-scale goldens behind PAROLE_GOLDEN_FULL=1
// (`make golden-full`).
func goldenFull(t *testing.T) {
	t.Helper()
	if os.Getenv("PAROLE_GOLDEN_FULL") == "" {
		t.Skip("minutes-scale golden; set PAROLE_GOLDEN_FULL=1 (or run `make golden-full`) to enable")
	}
}

func TestGoldenFig6(t *testing.T)  { goldenFull(t); goldenCompare(t, "fig6") }
func TestGoldenFig9(t *testing.T)  { goldenFull(t); goldenCompare(t, "fig9") }
func TestGoldenFig11(t *testing.T) { goldenFull(t); goldenCompare(t, "fig11") }

// The scaling study's N=100k point takes ~20s (minutes under -race), so its
// golden runs with the full tier; TestScaleSmokeDeterminism in scale_test.go
// covers the N=1k pipeline on every test run.
func TestGoldenScale(t *testing.T) { goldenFull(t); goldenCompare(t, "scale") }
