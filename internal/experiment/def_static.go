package experiment

import (
	"context"
	"fmt"

	"parole/internal/casestudy"
	"parole/internal/ovm"
	"parole/internal/sim"
)

// table3Exp reproduces Table III: the on-chain behavior of the PT
// transactions through the full rollup pipeline. The pipeline is fully
// deterministic (no RNG), so the experiment is a single point.
type table3Exp struct{}

func (table3Exp) Name() string { return "table3" }

func (table3Exp) Columns() []string {
	return []string{"tx_type", "tx_hash", "block_number", "l1_state_index", "gas_usage_pct", "tx_fee_gwei"}
}

func (table3Exp) Points(cfg Config) ([]Point, error) {
	return []Point{{Label: "table3", File: "table3", Seed: cfg.Seed}}, nil
}

func (table3Exp) RunPoint(_ context.Context, _ Config, _ Point) ([]Row, error) {
	rows, err := sim.RunTable3()
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		out[i] = Row{
			row.TxType,
			row.TxHash.String(),
			fmt.Sprintf("%d", row.BlockNumber),
			fmt.Sprintf("%d", row.L1StateIndex),
			fmt.Sprintf("%.2f", row.GasUsagePct),
			fmt.Sprintf("%d", row.FeeGwei),
		}
	}
	return out, nil
}

// fig5Exp replays the paper's pinned case-study world (Fig. 5): the original
// fee order and the two altered orders, each a deterministic point emitting
// its per-transaction wealth trace.
type fig5Exp struct{}

func (fig5Exp) Name() string { return "fig5" }

func (fig5Exp) Columns() []string {
	return []string{"case", "row", "tx", "pt_price_eth", "ifu_total_eth"}
}

func (fig5Exp) Points(cfg Config) ([]Point, error) {
	points := make([]Point, 3)
	for i, name := range []string{"case1", "case2", "case3"} {
		points[i] = Point{Index: i, Label: name, File: "fig5", Seed: cfg.Seed}
	}
	return points, nil
}

func (fig5Exp) RunPoint(_ context.Context, _ Config, p Point) ([]Row, error) {
	s, err := casestudy.New()
	if err != nil {
		return nil, err
	}
	seq := s.Original
	switch p.Label {
	case "case2":
		seq = s.Case2
	case "case3":
		seq = s.Case3
	}
	vm := ovm.New()
	wealth, res, err := vm.WealthTrace(s.State, seq, casestudy.IFU)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(res.Steps))
	for i, step := range res.Steps {
		out[i] = Row{
			p.Label,
			fmt.Sprintf("%d", i+1),
			step.Tx.String(),
			step.Price.String(),
			wealth[i].String(),
		}
	}
	return out, nil
}
