package experiment

import (
	"context"
	"fmt"
	"runtime"
	"strconv"

	"parole/internal/sim"
)

// fig11Exp reproduces Fig. 11: DQN inference versus the NLP-solver baselines
// in execution time and memory across mempool sizes. One RNG threads the
// whole sweep, so it is a single point. The timing and allocation columns
// are measurements — run-varying by nature — which the experiment declares
// via VolatileColumns so determinism tests normalize them.
type fig11Exp struct{}

func (fig11Exp) Name() string { return "fig11" }

func (fig11Exp) Columns() []string {
	return []string{"mempool", "solver", "exec_time_us", "alloc_bytes", "evals", "improvement_eth"}
}

// VolatileColumns marks the wall-clock and allocator measurements.
func (fig11Exp) VolatileColumns() []string {
	return []string{"exec_time_us", "alloc_bytes"}
}

func (fig11Exp) Points(cfg Config) ([]Point, error) {
	return []Point{{Label: "fig11", File: "fig11", Seed: cfg.Seed + 40}}, nil
}

func (fig11Exp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	c := sim.DefaultFig11Config()
	c.Seed = p.Seed
	c.Gen = genBudget(cfg.Scale)
	c.Workers = cfg.SolverWorkers
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch cfg.Scale {
	case ScaleFull:
	case ScaleSmoke:
		c.MempoolSizes = []int{5}
		c.InferenceSteps = 20
	default:
		c.MempoolSizes = []int{5, 10, 25, 50}
	}
	rows, err := sim.RunFig11(c)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		out[i] = Row{
			strconv.Itoa(row.MempoolSize),
			row.Solver,
			fmt.Sprintf("%d", row.Duration.Microseconds()),
			fmt.Sprintf("%d", row.AllocBytes),
			strconv.Itoa(row.Evaluations),
			row.Improvement.String(),
		}
	}
	return out, nil
}
