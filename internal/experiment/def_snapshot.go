package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"parole/internal/snapshot"
)

// fig10Exp reproduces Fig. 10: the snapshot study's arbitrage opportunity per
// (chain, FT class) cell. snapshot.RunStudy threads one RNG across the whole
// grid, so the study is a single point.
type fig10Exp struct{}

func (fig10Exp) Name() string { return "fig10" }

func (fig10Exp) Columns() []string {
	return []string{"chain", "ft_class", "collections", "total_profit_eth", "avg_profit_eth"}
}

func (fig10Exp) Points(cfg Config) ([]Point, error) {
	return []Point{{Label: "fig10", File: "fig10", Seed: cfg.Seed + 30}}, nil
}

func (fig10Exp) RunPoint(_ context.Context, cfg Config, p Point) ([]Row, error) {
	c := snapshot.DefaultStudyConfig()
	switch cfg.Scale {
	case ScaleFull:
		c.CollectionsPerCell = 100
	case ScaleSmoke:
		c.CollectionsPerCell = 2
	}
	rows, err := snapshot.RunStudy(rand.New(rand.NewSource(p.Seed)), c)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		out[i] = Row{
			fmt.Sprintf("%s", row.Chain),
			fmt.Sprintf("%s", row.Class),
			strconv.Itoa(row.Collections),
			row.TotalProfit.String(),
			row.AvgProfit.String(),
		}
	}
	return out, nil
}
