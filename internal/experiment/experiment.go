// Package experiment is the unified engine behind the paper's evaluation:
// every table and figure (Table III, Fig. 5–11, and the Section VIII defense
// study) is a registered Experiment, executed by a Runner that is serial or
// deterministically parallel, and emitted through one layer (TSV, optional
// JSON mirrors, and the run manifest).
//
// The contract that makes wide sweeps parallelizable without changing a
// single committed number: an experiment decomposes into Points — units that
// already own an independent, deterministically derived RNG seed — and the
// Runner commits point results strictly in point order. A -workers 8 run
// therefore produces byte-identical series to a serial run (and to the
// committed results/ for the quick scale), which the property and golden
// tests in this package enforce.
//
// Registering a new study is one Experiment implementation plus one
// Register call; registering a new attack backend is one
// sim.RegisterOptimizer call. The binaries are thin lookups over these two
// registries.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Scale selects a workload budget.
type Scale int

// Budgets.
const (
	// ScaleQuick is the default minutes-scale budget that produced the
	// committed results/ series.
	ScaleQuick Scale = iota
	// ScaleFull is the paper's Table II budget and full grids (hours).
	ScaleFull
	// ScaleSmoke is a seconds-scale budget for tests and CI smoke jobs;
	// still deterministic, just tiny.
	ScaleSmoke
)

// String names the scale for manifests and progress output.
func (s Scale) String() string {
	switch s {
	case ScaleFull:
		return "full"
	case ScaleSmoke:
		return "smoke"
	default:
		return "quick"
	}
}

// Config parameterizes one engine run. The zero value is the quick scale at
// seed 0 with sequential solvers.
type Config struct {
	// Seed is the base RNG seed; every point derives its own seed from it
	// (each experiment keeps the derivation the legacy drivers used, so
	// seeded outputs are unchanged).
	Seed int64
	// Scale selects the budget.
	Scale Scale
	// SolverWorkers is forwarded to Fig. 11's solver portfolio: ≤1 runs
	// the sequential baselines (the committed-results configuration), ≥2
	// swaps in the parallel portfolio solvers.
	SolverWorkers int
	// MempoolShards overrides the scaling experiment's pool shard count
	// (≤0 keeps the default, 32). The collected batches are shard-count
	// invariant, so every deterministic column except the recorded shards
	// value is unchanged — the CI scale-smoke diff pins exactly that.
	MempoolShards int
}

// Row is one emitted record: pre-formatted cells, one per column.
type Row []string

// Point is one independently runnable unit of an experiment: it owns a
// deterministic seed and appends rows to exactly one output file.
type Point struct {
	// Index is the point's position in the experiment's point list.
	Index int
	// Label identifies the point in progress lines and trace spans.
	Label string
	// File is the output series (TSV base name) the point's rows extend.
	// Points sharing a file must be contiguous in the point list.
	File string
	// Seed is the point's deterministically derived RNG seed.
	Seed int64
}

// Experiment is one registered study.
type Experiment interface {
	// Name is the registry key (the -exp name).
	Name() string
	// Columns is the TSV header shared by every file the experiment emits.
	Columns() []string
	// Points derives the run's independent execution units, in emission
	// order. Points sharing a File must be contiguous.
	Points(cfg Config) ([]Point, error)
	// RunPoint executes one point and returns its rows. Implementations
	// must derive all randomness from p.Seed so any scheduling of points
	// yields identical rows; ctx is honored at whatever granularity the
	// underlying study allows.
	RunPoint(ctx context.Context, cfg Config, p Point) ([]Row, error)
}

// Volatile is implemented by experiments whose series include wall-clock or
// allocation measurements. Those cells vary run to run; determinism tests
// normalize them before comparing.
type Volatile interface {
	// VolatileColumns names the run-varying columns.
	VolatileColumns() []string
}

// ErrUnknownExperiment is the sentinel every unknown-experiment lookup
// wraps; match it with errors.Is.
var ErrUnknownExperiment = errors.New("experiment: unknown experiment")

// UnknownExperimentError reports a lookup of an unregistered experiment.
type UnknownExperimentError struct {
	// Name is the unknown experiment.
	Name string
	// Registered lists the available names in registration order.
	Registered []string
}

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return fmt.Sprintf("experiment: unknown experiment %q (registered: %s)",
		e.Name, strings.Join(e.Registered, ", "))
}

// Unwrap makes errors.Is(err, ErrUnknownExperiment) hold.
func (e *UnknownExperimentError) Unwrap() error { return ErrUnknownExperiment }

// registry holds the experiments in registration order — the order an "all"
// run executes and emits.
var registry = struct {
	sync.RWMutex
	order  []string
	byName map[string]Experiment
}{byName: map[string]Experiment{}}

// Register adds an experiment to the registry. Registering an empty name or
// a duplicate panics: both are init-path programming errors.
func Register(e Experiment) {
	name := e.Name()
	if name == "" {
		panic("experiment: Register with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("experiment: %q registered twice", name))
	}
	registry.byName[name] = e
	registry.order = append(registry.order, name)
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// All returns every registered experiment in registration order.
func All() []Experiment {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Experiment, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Lookup returns the experiment registered under name, or an
// *UnknownExperimentError wrapping ErrUnknownExperiment.
func Lookup(name string) (Experiment, error) {
	registry.RLock()
	e, ok := registry.byName[name]
	registry.RUnlock()
	if !ok {
		return nil, &UnknownExperimentError{Name: name, Registered: Names()}
	}
	return e, nil
}

// Select resolves a -exp specification: "all" (or "") for every registered
// experiment, otherwise a comma-separated list of names, deduplicated,
// returned in registry order.
func Select(spec string) ([]Experiment, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return All(), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	var out []Experiment
	for _, e := range All() {
		if want[e.Name()] {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, &UnknownExperimentError{Name: spec, Registered: Names()}
	}
	return out, nil
}
