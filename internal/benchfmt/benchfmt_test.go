package benchfmt

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// sample mirrors real `go test -bench=. -benchmem .` output from this repo,
// including custom ReportMetric units with awkward characters.
const sample = `goos: linux
goarch: amd64
pkg: parole
cpu: AMD EPYC 7763 64-Core Processor
BenchmarkTable2TrainingStep-8   	     100	  11883472 ns/op	 1035482 B/op	   15341 allocs/op
BenchmarkFig6AvgProfitPerIFU-8  	       2	 600128946 ns/op	        51.50 sats/IFU@N=10	45822276 B/op	  746024 allocs/op
BenchmarkFig11SolverComparison-8	       1	1903445021 ns/op	         0.9221 dqn-time-share	187188656 B/op	 3029974 allocs/op
BenchmarkOVMExecute-8           	   21926	     54344 ns/op	   33576 B/op	     377 allocs/op
BenchmarkAblationBaseline       	       5	 240000000 ns/op	        12.00 mETH-gain
PASS
ok  	parole	42.617s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "parole" {
		t.Errorf("header = %q/%q/%q", rep.GoOS, rep.GoArch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "EPYC") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(rep.Results))
	}

	exe, ok := rep.Get("BenchmarkOVMExecute")
	if !ok {
		t.Fatal("BenchmarkOVMExecute not found")
	}
	if exe.Procs != 8 || exe.Iterations != 21926 {
		t.Errorf("procs=%d iters=%d, want 8/21926", exe.Procs, exe.Iterations)
	}
	want := map[string]float64{"ns/op": 54344, "B/op": 33576, "allocs/op": 377}
	for unit, v := range want {
		if got := exe.Metrics[unit]; got != v {
			t.Errorf("%s = %g, want %g", unit, got, v)
		}
	}

	// Custom ReportMetric units survive, including '@', '%', '/', '='.
	fig6, _ := rep.Get("BenchmarkFig6AvgProfitPerIFU")
	if got := fig6.Metrics["sats/IFU@N=10"]; got != 51.5 {
		t.Errorf("sats/IFU@N=10 = %g, want 51.5", got)
	}
	fig11, _ := rep.Get("BenchmarkFig11SolverComparison")
	if got := fig11.Metrics["dqn-time-share"]; got != 0.9221 {
		t.Errorf("dqn-time-share = %g, want 0.9221", got)
	}

	// A line without the -P suffix defaults to procs 1.
	abl, _ := rep.Get("BenchmarkAblationBaseline")
	if abl.Procs != 1 {
		t.Errorf("suffix-less procs = %d, want 1", abl.Procs)
	}
	if got := abl.Metrics["mETH-gain"]; got != 12 {
		t.Errorf("mETH-gain = %g, want 12", got)
	}
}

func TestParseRejectsMalformedBenchmarkLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkOdd-8 100 54344",            // dangling value without unit
		"BenchmarkNoIters-8 fast 54344 ns/op", // non-numeric iterations
		"BenchmarkNoNs-8 100 33576 B/op",      // missing ns/op
		"BenchmarkBadVal-8 100 fast ns/op",    // non-numeric value
	} {
		if _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("Parse accepted malformed line %q", bad)
		}
	}
}

func TestParseIgnoresChatter(t *testing.T) {
	rep, err := Parse(strings.NewReader("=== RUN TestFoo\n--- PASS: TestFoo\nPASS\nok \tparole\t1.2s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("parsed %d results from chatter, want 0", len(rep.Results))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.Date = "2026-08-06"
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not re-parse: %v", err)
	}
	if back.Date != "2026-08-06" || len(back.Results) != len(rep.Results) {
		t.Errorf("round trip lost data: date=%q results=%d", back.Date, len(back.Results))
	}
	for i, r := range rep.Results {
		b := back.Results[i]
		if b.Name != r.Name || b.Iterations != r.Iterations || len(b.Metrics) != len(r.Metrics) {
			t.Errorf("result %d differs after round trip: %+v vs %+v", i, b, r)
		}
	}
}

func TestCompareRanksWorstRegressionFirst(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 200}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 50}},
	}}
	cur := &Report{Results: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 150}}, // 1.5× slower
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 100}}, // 2× faster
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 10}},
	}}
	deltas := Compare(old, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (unmatched names skipped)", len(deltas))
	}
	if deltas[0].Name != "BenchmarkA" || math.Abs(deltas[0].Ratio-1.5) > 1e-9 {
		t.Errorf("worst delta = %+v, want BenchmarkA at 1.5", deltas[0])
	}
	if deltas[1].Name != "BenchmarkB" || math.Abs(deltas[1].Ratio-0.5) > 1e-9 {
		t.Errorf("second delta = %+v, want BenchmarkB at 0.5", deltas[1])
	}
}
