// Package benchfmt parses the text output of `go test -bench -benchmem` into
// a machine-readable report — the input of the bench-regression emitter
// (`make bench` → BENCH_<date>.json). It understands the standard columns
// (ns/op, B/op, allocs/op) and every custom unit reported via
// testing.B.ReportMetric, such as this repo's "sats/IFU@N=10" or
// "dqn-time-share". Like internal/trace it is dependency-free: parsing uses
// only the standard library.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix
	// ("BenchmarkOVMExecute").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the b.N the harness settled on.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every value/unit pair on the line:
	// always "ns/op", plus "B/op" and "allocs/op" under -benchmem, plus any
	// custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// NsPerOp returns the ns/op column (0 if absent).
func (r Result) NsPerOp() float64 { return r.Metrics["ns/op"] }

// Report is one full `go test -bench` run.
type Report struct {
	// Date is the YYYY-MM-DD stamp the emitter embeds in the file name;
	// filled by the caller, not by Parse.
	Date string `json:"date,omitempty"`
	// GoOS/GoArch/Pkg/CPU echo the run's header lines when present.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Results are the parsed benchmark lines in input order.
	Results []Result `json:"results"`
}

// Get returns the first result with the given name.
func (rep *Report) Get(name string) (Result, bool) {
	for _, r := range rep.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Parse reads `go test -bench` output line by line. Header lines (goos:,
// goarch:, pkg:, cpu:) fill the report metadata; lines starting with
// "Benchmark" become Results; everything else (test chatter, PASS, ok) is
// ignored. A Benchmark line that does not parse is an error — silent drops
// would make a regression file lie about coverage.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: line %d: %w", lineNo, err)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: read: %w", err)
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName-P  N  v1 unit1  v2 unit2 …" line.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	res := Result{Name: fields[0], Procs: 1, Metrics: make(map[string]float64)}
	if i := strings.LastIndex(res.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil && p > 0 {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count %q: %w", fields[1], err)
	}
	res.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		res.Metrics[fields[i+1]] = v
	}
	if _, ok := res.Metrics["ns/op"]; !ok {
		return Result{}, fmt.Errorf("benchmark line %q has no ns/op column", line)
	}
	return res, nil
}

// WriteJSON renders the report as indented JSON with metric keys sorted
// (maps serialize key-sorted in encoding/json, so output is deterministic
// for a given run).
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON parses a report previously written by WriteJSON (a BENCH_*.json
// regression record). It is strict about shape: unknown top-level fields are
// an error, so a record from a future incompatible format fails loudly
// instead of diffing as "no benchmarks in common".
func ReadJSON(r io.Reader) (*Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	rep := &Report{}
	if err := dec.Decode(rep); err != nil {
		return nil, fmt.Errorf("benchfmt: decode JSON report: %w", err)
	}
	return rep, nil
}

// Delta is one benchmark's change between two reports.
type Delta struct {
	Name string `json:"name"`
	// OldNsPerOp/NewNsPerOp are the ns/op columns; Ratio is new/old
	// (1.0 = unchanged, 2.0 = twice as slow).
	OldNsPerOp float64 `json:"old_ns_per_op"`
	NewNsPerOp float64 `json:"new_ns_per_op"`
	Ratio      float64 `json:"ratio"`
}

// Compare matches benchmarks by name and reports ns/op ratios, sorted by
// ratio descending (worst regression first). Benchmarks present in only one
// report are skipped.
func Compare(old, new *Report) []Delta {
	var out []Delta
	for _, n := range new.Results {
		o, ok := old.Get(n.Name)
		if !ok || o.NsPerOp() == 0 {
			continue
		}
		out = append(out, Delta{
			Name:       n.Name,
			OldNsPerOp: o.NsPerOp(),
			NewNsPerOp: n.NsPerOp(),
			Ratio:      n.NsPerOp() / o.NsPerOp(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Name < out[j].Name
	})
	return out
}
