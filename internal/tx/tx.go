// Package tx defines the NFT transaction model of the PAROLE paper.
//
// The paper's optimistic-rollup workload consists of exactly three
// transaction kinds over a limited-edition ERC-721 token (Table I):
//
//   - Mint   M_k^{i,t}: user k creates token i,
//   - Transfer T_{k,j}^{i,t}: user k sells token i to user j at the current
//     bonding-curve price, and
//   - Burn   D_k^{i,t}: user k destroys token i, returning it to the
//     mintable supply.
//
// Transactions carry base and priority fees because Bedrock's mempool orders
// pending transactions by fee (Section VIII); the adversarial aggregator's
// deviation from that order is the attack.
package tx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"parole/internal/chainid"
	"parole/internal/wei"
)

// Kind enumerates the NFT transaction types.
type Kind uint8

// The three transaction kinds of Table I.
const (
	KindMint Kind = iota + 1
	KindTransfer
	KindBurn
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindMint:
		return "mint"
	case KindTransfer:
		return "transfer"
	case KindBurn:
		return "burn"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k >= KindMint && k <= KindBurn }

// Validation errors.
var (
	ErrInvalidKind   = errors.New("tx: invalid transaction kind")
	ErrZeroActor     = errors.New("tx: zero actor address")
	ErrMissingBuyer  = errors.New("tx: transfer requires a buyer")
	ErrSelfTransfer  = errors.New("tx: transfer to self")
	ErrNegativeFee   = errors.New("tx: negative fee")
	ErrShortEncoding = errors.New("tx: encoding too short")
)

// Tx is one NFT transaction. Fields follow Table I of the paper.
//
// For a mint, From is the minter and To is unused. For a transfer, From is
// the seller (current owner) and To the buyer who pays the current price.
// For a burn, From is the owner destroying the token.
type Tx struct {
	Kind    Kind
	Token   chainid.Address // the NFT contract the tx operates on
	TokenID uint64          // unique token identifier i
	From    chainid.Address
	To      chainid.Address
	Nonce   uint64

	// BaseFee and PriorityFee drive the mempool's default ordering.
	BaseFee     wei.Amount
	PriorityFee wei.Amount
}

// Mint constructs a mint transaction of token id by minter.
func Mint(token chainid.Address, id uint64, minter chainid.Address) Tx {
	return Tx{Kind: KindMint, Token: token, TokenID: id, From: minter}
}

// Transfer constructs a sale of token id from seller to buyer.
func Transfer(token chainid.Address, id uint64, seller, buyer chainid.Address) Tx {
	return Tx{Kind: KindTransfer, Token: token, TokenID: id, From: seller, To: buyer}
}

// Burn constructs a burn of token id by its owner.
func Burn(token chainid.Address, id uint64, owner chainid.Address) Tx {
	return Tx{Kind: KindBurn, Token: token, TokenID: id, From: owner}
}

// WithFees returns a copy of t carrying the given base and priority fees.
func (t Tx) WithFees(base, priority wei.Amount) Tx {
	t.BaseFee, t.PriorityFee = base, priority
	return t
}

// WithNonce returns a copy of t carrying the given nonce.
func (t Tx) WithNonce(n uint64) Tx {
	t.Nonce = n
	return t
}

// Fee returns the total fee the sender offers (base + priority).
func (t Tx) Fee() wei.Amount { return t.BaseFee + t.PriorityFee }

// Validate checks structural well-formedness. It does not consult chain
// state; executability against a state is the OVM's job.
func (t Tx) Validate() error {
	if !t.Kind.Valid() {
		return ErrInvalidKind
	}
	if t.From.IsZero() {
		return ErrZeroActor
	}
	if t.BaseFee < 0 || t.PriorityFee < 0 {
		return ErrNegativeFee
	}
	switch t.Kind {
	case KindTransfer:
		if t.To.IsZero() {
			return ErrMissingBuyer
		}
		if t.To == t.From {
			return ErrSelfTransfer
		}
	case KindMint, KindBurn:
		if !t.To.IsZero() {
			return fmt.Errorf("tx: %s must not set To", t.Kind)
		}
	}
	return nil
}

// Involves reports whether addr participates in the transaction — as minter,
// seller, buyer, or burner. This is the IFU-involvement test of Section V-B.
func (t Tx) Involves(addr chainid.Address) bool {
	return t.From == addr || (t.Kind == KindTransfer && t.To == addr)
}

// encodedSize is the fixed byte length of an encoded transaction.
const encodedSize = 1 + chainid.AddressLen*3 + 8*4

// Encode serializes the transaction into a fixed-width binary form. The
// encoding is canonical: equal transactions encode identically, so the hash
// is a stable identity.
func (t Tx) Encode() []byte {
	buf := make([]byte, 0, encodedSize)
	buf = append(buf, byte(t.Kind))
	buf = append(buf, t.Token[:]...)
	buf = append(buf, t.From[:]...)
	buf = append(buf, t.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, t.TokenID)
	buf = binary.BigEndian.AppendUint64(buf, t.Nonce)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.BaseFee))
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.PriorityFee))
	return buf
}

// Decode parses a transaction previously produced by Encode.
func Decode(b []byte) (Tx, error) {
	if len(b) < encodedSize {
		return Tx{}, fmt.Errorf("%w: %d bytes", ErrShortEncoding, len(b))
	}
	var t Tx
	t.Kind = Kind(b[0])
	off := 1
	copy(t.Token[:], b[off:])
	off += chainid.AddressLen
	copy(t.From[:], b[off:])
	off += chainid.AddressLen
	copy(t.To[:], b[off:])
	off += chainid.AddressLen
	t.TokenID = binary.BigEndian.Uint64(b[off:])
	t.Nonce = binary.BigEndian.Uint64(b[off+8:])
	t.BaseFee = wei.Amount(binary.BigEndian.Uint64(b[off+16:]))
	t.PriorityFee = wei.Amount(binary.BigEndian.Uint64(b[off+24:]))
	if !t.Kind.Valid() {
		return Tx{}, ErrInvalidKind
	}
	return t, nil
}

// Hash returns the transaction id.
func (t Tx) Hash() chainid.Hash {
	return chainid.HashBytes([]byte("parole/tx"), t.Encode())
}

// String renders the transaction in the notation of the paper's case-study
// tables, e.g. "Transfer PT#3: 0xab..cd -> 0xef..01".
func (t Tx) String() string {
	switch t.Kind {
	case KindTransfer:
		return fmt.Sprintf("Transfer #%d: %s -> %s", t.TokenID, t.From, t.To)
	case KindMint:
		return fmt.Sprintf("Mint #%d: %s", t.TokenID, t.From)
	case KindBurn:
		return fmt.Sprintf("Burn #%d: %s", t.TokenID, t.From)
	default:
		return fmt.Sprintf("invalid tx kind %d", t.Kind)
	}
}
