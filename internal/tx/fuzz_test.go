package tx

import (
	"bytes"
	"testing"
)

// FuzzDecode: decoding arbitrary bytes must never panic, and anything that
// decodes must re-encode to the canonical prefix it was decoded from.
func FuzzDecode(f *testing.F) {
	f.Add(Mint(testToken, 1, alice).Encode())
	f.Add(Transfer(testToken, 7, alice, bob).WithFees(5, 2).Encode())
	f.Add(Burn(testToken, 3, bob).WithNonce(9).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		re := decoded.Encode()
		if len(data) < len(re) {
			t.Fatalf("decoded from %d bytes but re-encodes to %d", len(data), len(re))
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("canonical re-encoding mismatch")
		}
	})
}
