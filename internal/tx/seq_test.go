package tx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parole/internal/chainid"
)

func sampleSeq() Seq {
	return Seq{
		Transfer(testToken, 1, alice, bob),
		Mint(testToken, 6, chainid.UserAddress(19)),
		Transfer(testToken, 2, bob, alice),
		Burn(testToken, 3, bob),
	}
}

func TestSeqCloneIndependence(t *testing.T) {
	s := sampleSeq()
	c := s.Clone()
	c.Swap(0, 1)
	if s[0].Kind != KindTransfer {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestSwapIsInvolution(t *testing.T) {
	f := func(seed int64, iRaw, jRaw uint8) bool {
		s := sampleSeq()
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(s), s.Swap)
		i, j := int(iRaw)%len(s), int(jRaw)%len(s)
		orig := s.Clone()
		s.Swap(i, j)
		s.Swap(i, j)
		return s.Hash() == orig.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqHashOrderSensitive(t *testing.T) {
	s := sampleSeq()
	if s.Hash() == s.Swapped(0, 1).Hash() {
		t.Fatal("sequence hash ignores order")
	}
	if s.Hash() != sampleSeq().Hash() {
		t.Fatal("sequence hash not deterministic")
	}
}

func TestSwappedLeavesOriginal(t *testing.T) {
	s := sampleSeq()
	h := s.Hash()
	_ = s.Swapped(1, 3)
	if s.Hash() != h {
		t.Fatal("Swapped mutated the receiver")
	}
}

func TestInvolving(t *testing.T) {
	s := sampleSeq()
	got := s.Involving(alice)
	want := []int{0, 2}
	if len(got) != len(want) {
		t.Fatalf("Involving(alice) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Involving(alice) = %v, want %v", got, want)
		}
	}
	if s.Involving(chainid.UserAddress(99)) != nil {
		t.Error("Involving(stranger) should be nil")
	}
}

func TestCountKind(t *testing.T) {
	s := sampleSeq()
	if s.CountKind(KindTransfer) != 2 || s.CountKind(KindMint) != 1 || s.CountKind(KindBurn) != 1 {
		t.Errorf("CountKind mismatch: %d/%d/%d",
			s.CountKind(KindTransfer), s.CountKind(KindMint), s.CountKind(KindBurn))
	}
}

func TestSamePermutation(t *testing.T) {
	s := sampleSeq()
	shuffled := s.Clone()
	shuffled.Swap(0, 3)
	shuffled.Swap(1, 2)
	if !s.SamePermutation(shuffled) {
		t.Error("a true permutation was rejected")
	}
	if s.SamePermutation(s[:3]) {
		t.Error("shorter sequence accepted as permutation")
	}
	injected := s.Clone()
	injected[0] = Mint(testToken, 99, bob)
	if s.SamePermutation(injected) {
		t.Error("sequence with injected tx accepted as permutation")
	}
	// Duplicate handling: [a,a,b] is not a permutation of [a,b,b].
	a := Mint(testToken, 1, alice)
	b := Burn(testToken, 2, bob)
	if (Seq{a, a, b}).SamePermutation(Seq{a, b, b}) {
		t.Error("multiset counting broken for duplicates")
	}
}

func TestSamePermutationQuickShuffle(t *testing.T) {
	f := func(seed int64) bool {
		s := sampleSeq()
		o := s.Clone()
		rand.New(rand.NewSource(seed)).Shuffle(len(o), o.Swap)
		return s.SamePermutation(o) && o.SamePermutation(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
