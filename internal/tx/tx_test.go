package tx

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"parole/internal/chainid"
	"parole/internal/wei"
)

var (
	testToken = chainid.DeriveAddress("pt-contract")
	alice     = chainid.UserAddress(1)
	bob       = chainid.UserAddress(2)
)

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{KindMint, "mint"},
		{KindTransfer, "transfer"},
		{KindBurn, "burn"},
		{Kind(9), "kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Tx
		wantErr error
	}{
		{name: "valid mint", give: Mint(testToken, 1, alice)},
		{name: "valid transfer", give: Transfer(testToken, 1, alice, bob)},
		{name: "valid burn", give: Burn(testToken, 1, alice)},
		{name: "bad kind", give: Tx{Kind: 0, From: alice}, wantErr: ErrInvalidKind},
		{name: "zero actor", give: Tx{Kind: KindMint}, wantErr: ErrZeroActor},
		{name: "transfer without buyer", give: Tx{Kind: KindTransfer, From: alice}, wantErr: ErrMissingBuyer},
		{name: "self transfer", give: Transfer(testToken, 1, alice, alice), wantErr: ErrSelfTransfer},
		{
			name:    "negative fee",
			give:    Mint(testToken, 1, alice).WithFees(-1, 0),
			wantErr: ErrNegativeFee,
		},
		{
			name:    "mint with To set",
			give:    Tx{Kind: KindMint, From: alice, To: bob},
			wantErr: nil, // matched by message below
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
				}
				return
			}
			if tt.name == "mint with To set" {
				if err == nil {
					t.Fatal("mint with To set should fail validation")
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate() unexpected error: %v", err)
			}
		})
	}
}

func TestInvolves(t *testing.T) {
	carol := chainid.UserAddress(3)
	tr := Transfer(testToken, 5, alice, bob)
	if !tr.Involves(alice) || !tr.Involves(bob) {
		t.Error("transfer should involve both seller and buyer")
	}
	if tr.Involves(carol) {
		t.Error("transfer should not involve a stranger")
	}
	m := Mint(testToken, 5, alice)
	if !m.Involves(alice) || m.Involves(bob) {
		t.Error("mint involvement wrong")
	}
	b := Burn(testToken, 5, bob)
	if !b.Involves(bob) || b.Involves(alice) {
		t.Error("burn involvement wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	give := Transfer(testToken, 42, alice, bob).
		WithFees(wei.FromFloat(0.001), wei.FromFloat(0.0002)).
		WithNonce(7)
	got, err := Decode(give.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != give {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, give)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShortEncoding) {
		t.Errorf("Decode(nil) = %v, want ErrShortEncoding", err)
	}
	enc := Mint(testToken, 1, alice).Encode()
	enc[0] = 200 // invalid kind byte
	if _, err := Decode(enc); !errors.Is(err, ErrInvalidKind) {
		t.Errorf("Decode(bad kind) = %v, want ErrInvalidKind", err)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(kindSel uint8, id, nonce uint64, base, prio int32, fromSeed, toSeed uint16) bool {
		give := Tx{
			Kind:        Kind(kindSel%3 + 1),
			Token:       testToken,
			TokenID:     id,
			From:        chainid.UserAddress(int(fromSeed)),
			To:          chainid.UserAddress(int(toSeed)),
			Nonce:       nonce,
			BaseFee:     wei.Amount(base).Abs(),
			PriorityFee: wei.Amount(prio).Abs(),
		}
		got, err := Decode(give.Encode())
		return err == nil && got == give
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashIdentity(t *testing.T) {
	a := Mint(testToken, 1, alice)
	b := Mint(testToken, 1, alice)
	if a.Hash() != b.Hash() {
		t.Error("equal txs hash differently")
	}
	if a.Hash() == a.WithNonce(1).Hash() {
		t.Error("nonce change did not change hash")
	}
	if a.Hash() == Mint(testToken, 2, alice).Hash() {
		t.Error("token id change did not change hash")
	}
}

func TestFee(t *testing.T) {
	give := Mint(testToken, 1, alice).WithFees(100, 25)
	if got := give.Fee(); got != 125 {
		t.Errorf("Fee() = %d, want 125", got)
	}
}

func TestString(t *testing.T) {
	if s := Transfer(testToken, 3, alice, bob).String(); !strings.HasPrefix(s, "Transfer #3:") {
		t.Errorf("transfer String() = %q", s)
	}
	if s := Mint(testToken, 9, alice).String(); !strings.HasPrefix(s, "Mint #9:") {
		t.Errorf("mint String() = %q", s)
	}
	if s := Burn(testToken, 1, bob).String(); !strings.HasPrefix(s, "Burn #1:") {
		t.Errorf("burn String() = %q", s)
	}
}
