package tx

import (
	"parole/internal/chainid"
)

// Seq is an ordered sequence of transactions — the aggregator's "Mempool" of
// size N in the paper's terminology. The GENTRANSEQ module permutes a Seq
// via swap actions.
type Seq []Tx

// Clone returns an independent copy of the sequence.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Swap exchanges the transactions at positions i and j in place.
func (s Seq) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Swapped returns a copy of the sequence with positions i and j exchanged.
func (s Seq) Swapped(i, j int) Seq {
	out := s.Clone()
	out.Swap(i, j)
	return out
}

// Hash commits to the exact order and content of the sequence. Two sequences
// with the same transactions in different orders hash differently; this is
// what batches and fraud proofs commit to.
func (s Seq) Hash() chainid.Hash {
	segments := make([][]byte, 0, len(s)+1)
	segments = append(segments, []byte("parole/seq"))
	for _, t := range s {
		segments = append(segments, t.Encode())
	}
	return chainid.HashBytes(segments...)
}

// Involving returns the indices of transactions that involve addr.
func (s Seq) Involving(addr chainid.Address) []int {
	var idx []int
	for i, t := range s {
		if t.Involves(addr) {
			idx = append(idx, i)
		}
	}
	return idx
}

// CountKind returns how many transactions of kind k the sequence contains.
func (s Seq) CountKind(k Kind) int {
	n := 0
	for _, t := range s {
		if t.Kind == k {
			n++
		}
	}
	return n
}

// SamePermutation reports whether o contains exactly the same multiset of
// transactions as s (in any order). It is the well-formedness check verifiers
// can apply to a re-ordered batch: the PAROLE attack permutes, it never
// injects or drops.
func (s Seq) SamePermutation(o Seq) bool {
	if len(s) != len(o) {
		return false
	}
	counts := make(map[chainid.Hash]int, len(s))
	for _, t := range s {
		counts[t.Hash()]++
	}
	for _, t := range o {
		h := t.Hash()
		counts[h]--
		if counts[h] < 0 {
			return false
		}
	}
	return true
}
