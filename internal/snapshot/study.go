package snapshot

import (
	"fmt"
	"math/rand"

	"parole/internal/wei"
)

// StudyRow is one bar of Fig. 10: a (chain, FT class) cell's arbitrage
// opportunity.
type StudyRow struct {
	Chain       Chain
	Class       FTClass
	Collections int
	// TotalProfit sums the scanned arbitrage across the cell's collections.
	TotalProfit wei.Amount
	// AvgProfit is TotalProfit per collection.
	AvgProfit wei.Amount
}

// StudyConfig parameterizes the Fig. 10 reproduction.
type StudyConfig struct {
	// CollectionsPerCell is how many collections to sample per (chain,
	// class) cell.
	CollectionsPerCell int
	// Ownerships per class (defaults follow the paper's taxonomy).
	LFTOwnerships int
	MFTOwnerships int
	HFTOwnerships int
}

// DefaultStudyConfig returns the defaults used in EXPERIMENTS.md.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		CollectionsPerCell: 25,
		LFTOwnerships:      60,
		MFTOwnerships:      1200,
		HFTOwnerships:      8000,
	}
}

// RunStudy generates and scans the full Fig. 10 grid: both chains × the
// three FT classes.
func RunStudy(rng *rand.Rand, cfg StudyConfig) ([]StudyRow, error) {
	if cfg.CollectionsPerCell <= 0 {
		return nil, fmt.Errorf("snapshot: collections per cell %d", cfg.CollectionsPerCell)
	}
	classes := []struct {
		class      FTClass
		ownerships int
	}{
		{LFT, cfg.LFTOwnerships},
		{MFT, cfg.MFTOwnerships},
		{HFT, cfg.HFTOwnerships},
	}
	var rows []StudyRow
	for _, chain := range []Chain{Optimism, Arbitrum} {
		for _, cl := range classes {
			row := StudyRow{Chain: chain, Class: cl.class, Collections: cfg.CollectionsPerCell}
			for i := 0; i < cfg.CollectionsPerCell; i++ {
				c, err := Generate(rng, GenConfig{Chain: chain, Ownerships: cl.ownerships})
				if err != nil {
					return nil, fmt.Errorf("generate %s/%s: %w", chain, cl.class, err)
				}
				if got := c.Class(); got != cl.class {
					return nil, fmt.Errorf("generated class %s, want %s", got, cl.class)
				}
				row.TotalProfit += TotalProfit(c)
			}
			row.AvgProfit = row.TotalProfit.Div(int64(cfg.CollectionsPerCell))
			rows = append(rows, row)
		}
	}
	return rows, nil
}
