// Package snapshot models the real-world NFT snapshot analysis of Section
// VII-E / Fig. 10.
//
// The paper inspected historical snapshots of NFT collections deployed via
// the optimistic-rollup mainchains (Optimism and Arbitrum) through services
// such as holders.at, classifying collections by transaction frequency (FT):
// LFT (< 100 ownerships), MFT (101–3000), and HFT (> 3000), and scanned each
// collection's price history for arbitrage opportunities.
//
// Those snapshots are third-party, point-in-time data we cannot fetch
// offline; per the substitution policy (DESIGN.md §4) this package ships (a)
// a JSON-lines loader for real holders.at-style exports, and (b) a synthetic
// generator calibrated to the paper's qualitative findings — Arbitrum
// collections show wider price dispersion (hence more arbitrage) than
// Optimism ones, and higher-FT classes carry more total opportunity. The
// arbitrage scanner itself is data-source agnostic.
package snapshot

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"parole/internal/chainid"
	"parole/internal/wei"
)

// Chain identifies the rollup mainchain a collection lives on.
type Chain string

// The two optimistic rollups the paper samples.
const (
	Optimism Chain = "optimism"
	Arbitrum Chain = "arbitrum"
)

// FTClass is the paper's transaction-frequency taxonomy.
type FTClass int

// Frequency classes (Section VII-E).
const (
	LFT FTClass = iota + 1 // fewer than 100 ownerships
	MFT                    // 101 to 3000 ownerships
	HFT                    // more than 3000 ownerships
)

// String returns the class abbreviation used in Fig. 10.
func (c FTClass) String() string {
	switch c {
	case LFT:
		return "LFT"
	case MFT:
		return "MFT"
	case HFT:
		return "HFT"
	default:
		return fmt.Sprintf("FTClass(%d)", int(c))
	}
}

// ClassOf buckets an ownership count.
func ClassOf(ownerships int) FTClass {
	switch {
	case ownerships <= 100:
		return LFT
	case ownerships <= 3000:
		return MFT
	default:
		return HFT
	}
}

// PricePoint is one observation in a collection's snapshot history: the
// collection's going price at a given (logical) time.
type PricePoint struct {
	Seq   int        `json:"seq"`
	Price wei.Amount `json:"priceGwei"`
}

// Collection is one NFT collection's snapshot.
type Collection struct {
	Chain      Chain           `json:"chain"`
	Address    chainid.Address `json:"-"`
	AddressHex string          `json:"address"`
	Ownerships int             `json:"ownerships"`
	History    []PricePoint    `json:"history"`
}

// Class returns the collection's FT class.
func (c *Collection) Class() FTClass { return ClassOf(c.Ownerships) }

// Validate checks structural sanity.
func (c *Collection) Validate() error {
	if c.Chain != Optimism && c.Chain != Arbitrum {
		return fmt.Errorf("snapshot: unknown chain %q", c.Chain)
	}
	if c.Ownerships <= 0 {
		return fmt.Errorf("snapshot: non-positive ownerships %d", c.Ownerships)
	}
	if len(c.History) == 0 {
		return errors.New("snapshot: empty history")
	}
	prev := -1
	for _, p := range c.History {
		if p.Price < 0 {
			return fmt.Errorf("snapshot: negative price at seq %d", p.Seq)
		}
		if p.Seq <= prev {
			return fmt.Errorf("snapshot: non-increasing seq %d", p.Seq)
		}
		prev = p.Seq
	}
	return nil
}

// Opportunity is one buy-low/sell-high pair found in a history.
type Opportunity struct {
	BuySeq, SellSeq int
	Profit          wei.Amount
}

// ScanArbitrage finds the maximal set of non-overlapping profitable
// buy/sell pairs: every maximal ascending run contributes one opportunity
// (the classic multi-transaction stock-profit decomposition). This is the
// "same NFT priced differently at different times" scan of Section VII-E.
func ScanArbitrage(c *Collection) []Opportunity {
	var (
		ops     []Opportunity
		holding = false
		buyIdx  int
	)
	h := c.History
	for i := 0; i < len(h); i++ {
		rising := i+1 < len(h) && h[i+1].Price > h[i].Price
		if !holding && rising {
			holding, buyIdx = true, i
			continue
		}
		if holding && !rising {
			profit := h[i].Price - h[buyIdx].Price
			if profit > 0 {
				ops = append(ops, Opportunity{
					BuySeq:  h[buyIdx].Seq,
					SellSeq: h[i].Seq,
					Profit:  profit,
				})
			}
			holding = false
		}
	}
	return ops
}

// TotalProfit sums every scanned opportunity — the per-collection quantity
// behind a Fig. 10 bar.
func TotalProfit(c *Collection) wei.Amount {
	var total wei.Amount
	for _, op := range ScanArbitrage(c) {
		total += op.Profit
	}
	return total
}

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	// Chain the collection is deployed on. Arbitrum histories get wider
	// dispersion (the paper observed more arbitrage there).
	Chain Chain
	// Ownerships fixes the FT class; history length scales with it.
	Ownerships int
	// BasePrice of the collection (0 = default 0.05 ETH).
	BasePrice wei.Amount
}

// volatility returns the per-step log-price step size for a chain.
func volatility(chain Chain) float64 {
	if chain == Arbitrum {
		return 0.09 // wider swings → more arbitrage opportunity
	}
	return 0.05
}

// Generate synthesizes one collection snapshot: a geometric random walk
// whose event count tracks the ownership count (more owners → more trades →
// longer history).
func Generate(rng *rand.Rand, cfg GenConfig) (*Collection, error) {
	if cfg.Ownerships <= 0 {
		return nil, fmt.Errorf("snapshot: ownerships %d", cfg.Ownerships)
	}
	if cfg.Chain != Optimism && cfg.Chain != Arbitrum {
		return nil, fmt.Errorf("snapshot: unknown chain %q", cfg.Chain)
	}
	base := cfg.BasePrice
	if base <= 0 {
		base = wei.FromFloat(0.05)
	}
	// History length: roughly one price point per 10 ownerships, bounded.
	n := cfg.Ownerships/10 + 8
	if n > 2000 {
		n = 2000
	}
	sigma := volatility(cfg.Chain)
	history := make([]PricePoint, 0, n)
	logPrice := math.Log(base.ETHFloat())
	for i := 0; i < n; i++ {
		logPrice += rng.NormFloat64() * sigma
		price := wei.FromFloat(math.Exp(logPrice))
		if price < 1 {
			price = 1
		}
		history = append(history, PricePoint{Seq: i, Price: price})
	}
	addr := chainid.DeriveAddress(fmt.Sprintf("snapshot/%s/%d/%d", cfg.Chain, cfg.Ownerships, rng.Int63()))
	c := &Collection{
		Chain:      cfg.Chain,
		Address:    addr,
		AddressHex: addr.Hex(),
		Ownerships: cfg.Ownerships,
		History:    history,
	}
	return c, c.Validate()
}

// LoadJSONL reads collections from a JSON-lines stream (one collection per
// line), the shape a holders.at export would be converted into.
func LoadJSONL(r io.Reader) ([]*Collection, error) {
	var out []*Collection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var c Collection
		if err := json.Unmarshal(raw, &c); err != nil {
			return nil, fmt.Errorf("snapshot: line %d: %w", line, err)
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("snapshot: line %d: %w", line, err)
		}
		out = append(out, &c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: scan: %w", err)
	}
	return out, nil
}

// WriteJSONL writes collections as JSON lines.
func WriteJSONL(w io.Writer, cs []*Collection) error {
	enc := json.NewEncoder(w)
	for i, c := range cs {
		if err := enc.Encode(c); err != nil {
			return fmt.Errorf("snapshot: encode collection %d: %w", i, err)
		}
	}
	return nil
}
