package snapshot

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parole/internal/wei"
)

func TestClassOf(t *testing.T) {
	tests := []struct {
		give int
		want FTClass
	}{
		{1, LFT},
		{100, LFT},
		{101, MFT},
		{3000, MFT},
		{3001, HFT},
		{50000, HFT},
	}
	for _, tt := range tests {
		if got := ClassOf(tt.give); got != tt.want {
			t.Errorf("ClassOf(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestScanArbitrageKnownSeries(t *testing.T) {
	c := &Collection{
		Chain:      Optimism,
		Ownerships: 10,
		History: []PricePoint{
			{Seq: 0, Price: 100},
			{Seq: 1, Price: 80},  // buy here
			{Seq: 2, Price: 120}, // rising
			{Seq: 3, Price: 150}, // sell here (peak)
			{Seq: 4, Price: 90},  // buy here
			{Seq: 5, Price: 95},  // sell here
		},
	}
	ops := ScanArbitrage(c)
	if len(ops) != 2 {
		t.Fatalf("ops = %+v, want 2", ops)
	}
	if ops[0].BuySeq != 1 || ops[0].SellSeq != 3 || ops[0].Profit != 70 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].BuySeq != 4 || ops[1].SellSeq != 5 || ops[1].Profit != 5 {
		t.Fatalf("op1 = %+v", ops[1])
	}
	if TotalProfit(c) != 75 {
		t.Fatalf("TotalProfit = %d, want 75", TotalProfit(c))
	}
}

func TestScanArbitrageMonotone(t *testing.T) {
	down := &Collection{Chain: Optimism, Ownerships: 5, History: []PricePoint{
		{Seq: 0, Price: 100}, {Seq: 1, Price: 90}, {Seq: 2, Price: 50},
	}}
	if ops := ScanArbitrage(down); ops != nil {
		t.Fatalf("declining series has ops: %+v", ops)
	}
	up := &Collection{Chain: Optimism, Ownerships: 5, History: []PricePoint{
		{Seq: 0, Price: 50}, {Seq: 1, Price: 90}, {Seq: 2, Price: 100},
	}}
	ops := ScanArbitrage(up)
	if len(ops) != 1 || ops[0].Profit != 50 {
		t.Fatalf("ascending series ops = %+v", ops)
	}
}

// TestScanProfitEqualsSumOfRises: the multi-trade decomposition's total
// profit equals the sum of all positive one-step price moves.
func TestScanProfitEqualsSumOfRises(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%40 + 2
		history := make([]PricePoint, n)
		for i := range history {
			history[i] = PricePoint{Seq: i, Price: wei.Amount(rng.Int63n(1000) + 1)}
		}
		c := &Collection{Chain: Optimism, Ownerships: 10, History: history}
		var wantTotal wei.Amount
		for i := 1; i < n; i++ {
			if d := history[i].Price - history[i-1].Price; d > 0 {
				wantTotal += d
			}
		}
		return TotalProfit(c) == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := Generate(rng, GenConfig{Chain: Arbitrum, Ownerships: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if c.Class() != MFT {
		t.Fatalf("class = %v", c.Class())
	}
	if len(c.History) != 1200/10+8 {
		t.Fatalf("history length = %d", len(c.History))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(rng, GenConfig{Chain: "solana", Ownerships: 5}); err == nil {
		t.Fatal("unknown chain accepted")
	}
	if _, err := Generate(rng, GenConfig{Chain: Optimism, Ownerships: 0}); err == nil {
		t.Fatal("zero ownerships accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Collection{
		{Chain: "x", Ownerships: 5, History: []PricePoint{{Seq: 0, Price: 1}}},
		{Chain: Optimism, Ownerships: 0, History: []PricePoint{{Seq: 0, Price: 1}}},
		{Chain: Optimism, Ownerships: 5},
		{Chain: Optimism, Ownerships: 5, History: []PricePoint{{Seq: 0, Price: -1}}},
		{Chain: Optimism, Ownerships: 5, History: []PricePoint{{Seq: 1, Price: 1}, {Seq: 1, Price: 2}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad collection %d validated", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var cs []*Collection
	for i := 0; i < 3; i++ {
		c, err := Generate(rng, GenConfig{Chain: Optimism, Ownerships: 50 * (i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, cs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cs) {
		t.Fatalf("loaded %d, want %d", len(got), len(cs))
	}
	for i := range cs {
		if got[i].Ownerships != cs[i].Ownerships || len(got[i].History) != len(cs[i].History) {
			t.Fatalf("collection %d mismatch", i)
		}
		if TotalProfit(got[i]) != TotalProfit(cs[i]) {
			t.Fatalf("collection %d profit changed in round trip", i)
		}
	}
}

func TestLoadJSONLErrors(t *testing.T) {
	if _, err := LoadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := LoadJSONL(strings.NewReader(`{"chain":"x","ownerships":1,"history":[{"seq":0,"priceGwei":1}]}` + "\n")); err == nil {
		t.Fatal("invalid collection accepted")
	}
	got, err := LoadJSONL(strings.NewReader("\n\n"))
	if err != nil || got != nil {
		t.Fatalf("blank stream = (%v, %v)", got, err)
	}
}

// TestStudyReproducesFig10Shape is the Fig. 10 reproduction check:
// Arbitrum shows more arbitrage than Optimism in every class, and profit
// grows with the FT class on each chain.
func TestStudyReproducesFig10Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows, err := RunStudy(rng, DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	get := func(chain Chain, class FTClass) StudyRow {
		for _, r := range rows {
			if r.Chain == chain && r.Class == class {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", chain, class)
		return StudyRow{}
	}
	for _, chain := range []Chain{Optimism, Arbitrum} {
		l, m, h := get(chain, LFT), get(chain, MFT), get(chain, HFT)
		if !(h.TotalProfit > m.TotalProfit && m.TotalProfit > l.TotalProfit) {
			t.Errorf("%s: profit not increasing with FT class: %s / %s / %s",
				chain, l.TotalProfit, m.TotalProfit, h.TotalProfit)
		}
	}
	for _, class := range []FTClass{LFT, MFT, HFT} {
		if get(Arbitrum, class).TotalProfit <= get(Optimism, class).TotalProfit {
			t.Errorf("%s: Arbitrum should out-arbitrage Optimism", class)
		}
	}
}

func TestRunStudyValidation(t *testing.T) {
	if _, err := RunStudy(rand.New(rand.NewSource(1)), StudyConfig{}); err == nil {
		t.Fatal("zero collections accepted")
	}
}
