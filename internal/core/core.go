// Package core assembles the PAROLE attack (Fig. 3): an adversarial
// aggregator that, colluding with one or more illicitly favored users
// (IFUs), re-orders each batch it collects from Bedrock's mempool via the
// GENTRANSEQ module before executing and submitting it.
//
// The attack is *protocol-conformant by construction*: the sequencer only
// permutes the batch it was handed (the rollup node enforces the permutation
// property), it executes the permuted order faithfully, and the submitted
// fraud proof is the true post-state root — so honest verifiers have nothing
// to challenge. That is precisely the vulnerability the paper exploits.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rollup"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Attack-surface metrics (docs/METRICS.md §core). Reorder depth is the
// number of batch positions whose transaction differs from the fee order —
// how far the shipped order strays from honest sequencing.
var (
	mBatches      = telemetry.Default().Counter("core.batches")
	mReordered    = telemetry.Default().Counter("core.batches.reordered")
	mReorderDepth = telemetry.Default().Histogram("core.reorder.depth", telemetry.DepthBuckets)
)

// Package errors.
var (
	ErrNoIFU = errors.New("core: adversarial sequencer needs at least one IFU")
	ErrNoRNG = errors.New("core: adversarial sequencer needs an RNG")
)

// Config parameterizes the adversarial sequencer.
type Config struct {
	// IFUs are the colluding users whose balance the attack maximizes.
	IFUs []chainid.Address
	// Gen is the GENTRANSEQ budget (DefaultConfig reproduces Table II;
	// FastConfig is the sweep-friendly budget).
	Gen gentranseq.Config
	// MinImprovement is the smallest wealth gain worth deviating for; at or
	// below it the sequencer keeps the honest fee order.
	MinImprovement wei.Amount
}

// Report records one batch the adversarial sequencer processed — the
// experiment harness aggregates these into the Fig. 6/7 profit series.
type Report struct {
	// BatchSize is the aggregator's "Mempool size" N for this batch.
	BatchSize int
	// Opportunity is the arbitrage screen's verdict.
	Opportunity bool
	// Reordered reports whether the sequencer deviated from the fee order.
	Reordered bool
	// Improvement is the IFUs' summed final-wealth gain of the shipped
	// order versus the fee order (zero when not reordered).
	Improvement wei.Amount
	// BaselineWealth is the IFUs' summed final wealth under the fee order.
	BaselineWealth wei.Amount
	// InferenceSwaps is the Fig. 9 solution-size statistic for this batch
	// (−1 when the trained agent found no candidate).
	InferenceSwaps int
}

// Sequencer is the adversarial rollup.Sequencer. It is safe for concurrent
// use by a single aggregator goroutine plus inspection goroutines.
type Sequencer struct {
	vm  *ovm.VM
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	reports []Report
}

var _ rollup.Sequencer = (*Sequencer)(nil)

// NewSequencer builds the adversarial sequencer.
func NewSequencer(vm *ovm.VM, rng *rand.Rand, cfg Config) (*Sequencer, error) {
	if len(cfg.IFUs) == 0 {
		return nil, ErrNoIFU
	}
	if rng == nil {
		return nil, ErrNoRNG
	}
	if vm == nil {
		vm = ovm.New()
	}
	return &Sequencer{vm: vm, cfg: cfg, rng: rng}, nil
}

// Order implements rollup.Sequencer: it runs the PAROLE module on the
// collected batch and returns the profitable order when one exists, the
// original fee order otherwise.
func (s *Sequencer) Order(collected tx.Seq, pre *state.State) (tx.Seq, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	sp := trace.StartSpan(trace.SpanCoreOrder, trace.Int("batch_size", int64(len(collected))))
	report := Report{BatchSize: len(collected), InferenceSwaps: -1}
	res, err := gentranseq.Optimize(s.rng, s.vm, pre, collected, s.cfg.IFUs, s.cfg.Gen)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("gentranseq: %w", err)
	}
	report.Opportunity = res.Opportunity
	report.BaselineWealth = res.BaselineWealth
	report.InferenceSwaps = res.InferenceSwaps

	ordered := collected
	if res.Improved && res.Improvement > s.cfg.MinImprovement {
		ordered = res.Final
		report.Reordered = true
		report.Improvement = res.Improvement
	}
	mBatches.Inc()
	depth := 0
	if report.Reordered {
		mReordered.Inc()
		depth = reorderDepth(collected, ordered)
		mReorderDepth.Observe(float64(depth))
	}
	if trace.Enabled() && report.Reordered {
		feePos := make(map[chainid.Hash]int, len(collected))
		for i, t := range collected {
			feePos[t.Hash()] = i
		}
		for to, t := range ordered {
			if from := feePos[t.Hash()]; from != to {
				trace.Event(t.Hash().Hex(), trace.StageCoreReorder, "reordered",
					trace.Int("from", int64(from)),
					trace.Int("to", int64(to)))
			}
		}
	}
	sp.SetAttr(trace.Bool("reordered", report.Reordered),
		trace.Int("depth", int64(depth)),
		trace.Int("improvement_wei", int64(report.Improvement)))
	sp.End()
	s.reports = append(s.reports, report)
	return ordered, nil
}

// reorderDepth counts positions whose transaction differs between the fee
// order and the shipped order.
func reorderDepth(fee, shipped tx.Seq) int {
	depth := 0
	for i := range fee {
		if i >= len(shipped) || fee[i].Hash() != shipped[i].Hash() {
			depth++
		}
	}
	return depth
}

// Reports returns a copy of the per-batch attack log.
func (s *Sequencer) Reports() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Report(nil), s.reports...)
}

// TotalProfit sums the improvements across all processed batches — the
// quantity Fig. 7 plots (in satoshis).
func (s *Sequencer) TotalProfit() wei.Amount {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total wei.Amount
	for _, r := range s.reports {
		total += r.Improvement
	}
	return total
}

// Attack is the one-shot library entry point: run the PAROLE module on a
// single batch outside any rollup deployment.
func Attack(rng *rand.Rand, vm *ovm.VM, pre *state.State, batch tx.Seq, ifus []chainid.Address, gen gentranseq.Config) (*gentranseq.Result, error) {
	if len(ifus) == 0 {
		return nil, ErrNoIFU
	}
	if rng == nil {
		return nil, ErrNoRNG
	}
	if vm == nil {
		vm = ovm.New()
	}
	return gentranseq.Optimize(rng, vm, pre, batch, ifus, gen)
}
