// Cross-chain adversaries. PAROLE's attack is per-rollup: an adversarial
// sequencer permutes one chain's batches. The multi-rollup world admits two
// stronger variants from the literature (PAPERS.md): a *shared sequencer*
// that wins the sequencing rights of several rollups and orders all their
// batches as one atomic entity ("Atomic Execution is Not Enough"), and a
// *time-advantaged arbitrageur* who sees the leading chain's sealed batch
// one round before the lagging chain seals and bridges tokens across the
// price spread ("MEV Capture Through Time-Advantaged Arbitrage").
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"parole/internal/chainid"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rollup"
	"parole/internal/state"
	"parole/internal/telemetry"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Cross-chain attack metrics (docs/METRICS.md §core).
var (
	mCrossBatches   = telemetry.Default().Counter("core.cross.batches")
	mCrossReordered = telemetry.Default().Counter("core.cross.reordered")
	mCrossBridges   = telemetry.Default().Counter("core.cross.bridges")
)

// CrossReport is one per-chain batch report of a cross-chain adversary.
type CrossReport struct {
	ChainID uint64
	Report
}

// SharedSequencer is the atomic cross-rollup adversary: one entity holds the
// sequencing rights of every chain it serves and orders all their batches
// under a single lock with a single RNG and IFU set — the joint extraction
// the per-chain adversary cannot coordinate. Install ForChain(id) as each
// rollup's Sequencer.
type SharedSequencer struct {
	vm  *ovm.VM
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	reports []CrossReport
}

// NewSharedSequencer builds the shared sequencer.
func NewSharedSequencer(vm *ovm.VM, rng *rand.Rand, cfg Config) (*SharedSequencer, error) {
	if len(cfg.IFUs) == 0 {
		return nil, ErrNoIFU
	}
	if rng == nil {
		return nil, ErrNoRNG
	}
	if vm == nil {
		vm = ovm.New()
	}
	return &SharedSequencer{vm: vm, cfg: cfg, rng: rng}, nil
}

// ForChain returns the rollup.Sequencer view of this entity for one chain.
func (s *SharedSequencer) ForChain(chainID uint64) rollup.Sequencer {
	return chainView{s: s, chainID: chainID}
}

// chainView adapts the shared entity to one rollup's Sequencer slot.
type chainView struct {
	s       *SharedSequencer
	chainID uint64
}

// Order implements rollup.Sequencer.
func (c chainView) Order(collected tx.Seq, pre *state.State) (tx.Seq, error) {
	return c.s.order(c.chainID, collected, pre)
}

// order runs the PAROLE module on one chain's batch under the entity-wide
// lock: orderings of different chains serialize through one decision stream,
// which is what makes the extraction atomic across rollups.
func (s *SharedSequencer) order(chainID uint64, collected tx.Seq, pre *state.State) (tx.Seq, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	sp := trace.StartSpan(trace.SpanCoreOrder,
		trace.Int("batch_size", int64(len(collected))),
		trace.Int("chain_id", int64(chainID)))
	defer sp.End()
	report := Report{BatchSize: len(collected), InferenceSwaps: -1}
	res, err := gentranseq.Optimize(s.rng, s.vm, pre, collected, s.cfg.IFUs, s.cfg.Gen)
	if err != nil {
		return nil, fmt.Errorf("gentranseq: %w", err)
	}
	report.Opportunity = res.Opportunity
	report.BaselineWealth = res.BaselineWealth
	report.InferenceSwaps = res.InferenceSwaps

	ordered := collected
	if res.Improved && res.Improvement > s.cfg.MinImprovement {
		ordered = res.Final
		report.Reordered = true
		report.Improvement = res.Improvement
	}
	mCrossBatches.Inc()
	if report.Reordered {
		mCrossReordered.Inc()
	}
	sp.SetAttr(trace.Bool("reordered", report.Reordered),
		trace.Int("improvement_wei", int64(report.Improvement)))
	s.reports = append(s.reports, CrossReport{ChainID: chainID, Report: report})
	return ordered, nil
}

// Reports returns a copy of the per-batch log across every chain.
func (s *SharedSequencer) Reports() []CrossReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CrossReport(nil), s.reports...)
}

// TotalProfit sums the reorder improvements across every chain the entity
// sequences — the joint-extraction quantity the crosschain experiment plots.
func (s *SharedSequencer) TotalProfit() wei.Amount {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total wei.Amount
	for _, r := range s.reports {
		total += r.Improvement
	}
	return total
}

// ChainProfit sums the improvements extracted on one chain.
func (s *SharedSequencer) ChainProfit(chainID uint64) wei.Amount {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total wei.Amount
	for _, r := range s.reports {
		if r.ChainID == chainID {
			total += r.Improvement
		}
	}
	return total
}

// HeadStartConfig parameterizes the time-advantaged arbitrageur.
type HeadStartConfig struct {
	// Config is the underlying PAROLE sequencer configuration for the
	// lagging chain the adversary sequences.
	Config
	// Token is the collection whose cross-chain price spread is harvested.
	Token chainid.Address
	// MinSpread is the smallest per-token price gap worth bridging for.
	MinSpread wei.Amount
	// MaxBridgesPerRound caps the tokens moved per observation (0 = 4).
	MaxBridgesPerRound int
}

// HeadStart is the time-advantaged cross-chain arbitrageur: it sequences the
// lagging chain (ordinary PAROLE reordering) and, because it sees the leading
// chain's sealed batch one round before the lagging chain seals, it knows the
// leading chain's post-batch price while deciding. When that price exceeds
// the lagging chain's by more than MinSpread it bridges IFU-owned tokens from
// the lagging (cheap) chain to the leading (expensive) one — a mark-to-market
// gain of spread × tokens once the bridge releases.
type HeadStart struct {
	seq *Sequencer
	cfg HeadStartConfig

	obsMu         sync.Mutex
	observedPrice wei.Amount
	observed      bool
}

// NewHeadStart builds the arbitrageur. Install it as the lagging chain's
// Sequencer; feed Observe with the leading chain's sealed post-states.
func NewHeadStart(vm *ovm.VM, rng *rand.Rand, cfg HeadStartConfig) (*HeadStart, error) {
	seq, err := NewSequencer(vm, rng, cfg.Config)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBridgesPerRound <= 0 {
		cfg.MaxBridgesPerRound = 4
	}
	return &HeadStart{seq: seq, cfg: cfg}, nil
}

var _ rollup.Sequencer = (*HeadStart)(nil)

// Order implements rollup.Sequencer on the lagging chain.
func (h *HeadStart) Order(collected tx.Seq, pre *state.State) (tx.Seq, error) {
	return h.seq.Order(collected, pre)
}

// Observe records the leading chain's sealed post-state — the information
// advantage. Call it after the leading chain commits, before the lagging
// chain seals its own batch for the round.
func (h *HeadStart) Observe(post *state.State) error {
	tok, err := post.Token(h.cfg.Token)
	if err != nil {
		return err
	}
	price := tok.Price()
	h.obsMu.Lock()
	h.observedPrice, h.observed = price, true
	h.obsMu.Unlock()
	return nil
}

// BridgePlan is one decided cross-chain move: which token ids to bridge off
// the lagging chain and the per-token spread backing the decision.
type BridgePlan struct {
	TokenIDs []uint64
	Spread   wei.Amount
}

// PlanBridge compares the observed leading-chain price against the lagging
// chain's current price and, when the spread clears MinSpread, picks up to
// MaxBridgesPerRound IFU-owned token ids (ascending, for determinism) to
// bridge toward the expensive chain. An empty plan means stand pat.
func (h *HeadStart) PlanBridge(lagging *state.State) (BridgePlan, error) {
	h.obsMu.Lock()
	observedPrice, observed := h.observedPrice, h.observed
	h.obsMu.Unlock()
	if !observed {
		return BridgePlan{}, nil
	}
	tok, err := lagging.Token(h.cfg.Token)
	if err != nil {
		return BridgePlan{}, err
	}
	spread := observedPrice - tok.Price()
	if spread <= h.cfg.MinSpread {
		return BridgePlan{}, nil
	}
	var ids []uint64
	for _, ifu := range h.cfg.IFUs {
		ids = append(ids, tok.OwnedBy(ifu)...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > h.cfg.MaxBridgesPerRound {
		ids = ids[:h.cfg.MaxBridgesPerRound]
	}
	if len(ids) > 0 {
		mCrossBridges.Add(int64(len(ids)))
	}
	return BridgePlan{TokenIDs: ids, Spread: spread}, nil
}

// Reports returns the lagging chain's per-batch attack log.
func (h *HeadStart) Reports() []Report { return h.seq.Reports() }

// ReorderProfit is the lagging-chain reorder component of the arbitrageur's
// take (the bridge component is mark-to-market and measured by the scenario).
func (h *HeadStart) ReorderProfit() wei.Amount { return h.seq.TotalProfit() }
