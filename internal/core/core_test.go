package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/core"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rollup"
	"parole/internal/state"
	"parole/internal/wei"
)

func fastCfg() core.Config {
	cfg := gentranseq.FastConfig()
	cfg.Episodes = 25
	cfg.MaxSteps = 60
	return core.Config{IFUs: []chainid.Address{casestudy.IFU}, Gen: cfg}
}

func TestNewSequencerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := core.NewSequencer(nil, rng, core.Config{}); !errors.Is(err, core.ErrNoIFU) {
		t.Errorf("no IFU = %v", err)
	}
	if _, err := core.NewSequencer(nil, nil, fastCfg()); !errors.Is(err, core.ErrNoRNG) {
		t.Errorf("no RNG = %v", err)
	}
}

func TestSequencerKeepsOrderWithoutOpportunity(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.IFUs = []chainid.Address{chainid.UserAddress(777)} // uninvolved
	seq, err := core.NewSequencer(ovm.New(), rand.New(rand.NewSource(2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := seq.Order(s.Original, s.State)
	if err != nil {
		t.Fatal(err)
	}
	if ordered.Hash() != s.Original.Hash() {
		t.Fatal("sequencer deviated without an opportunity")
	}
	reports := seq.Reports()
	if len(reports) != 1 || reports[0].Opportunity || reports[0].Reordered {
		t.Fatalf("reports = %+v", reports)
	}
	if seq.TotalProfit() != 0 {
		t.Fatal("profit without reordering")
	}
}

func TestSequencerProfitsOnCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training")
	}
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.NewSequencer(ovm.New(), rand.New(rand.NewSource(42)), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := seq.Order(s.Original, s.State)
	if err != nil {
		t.Fatal(err)
	}
	if ordered.Hash() == s.Original.Hash() {
		t.Fatal("sequencer failed to find the case-study arbitrage")
	}
	if !s.Original.SamePermutation(ordered) {
		t.Fatal("sequencer violated the permutation constraint")
	}
	if seq.TotalProfit() <= 0 {
		t.Fatal("no recorded profit")
	}
}

// TestAdversarialAggregatorEndToEnd is the attack's full-protocol
// integration test: the adversarial aggregator re-orders inside a live
// rollup deployment, the IFU's wealth beats the honest counterfactual, the
// verifier finds nothing to challenge, and the batch finalizes on L1.
func TestAdversarialAggregatorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training")
	}
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}

	build := func(adversarial bool) (*rollup.Node, *rollup.Aggregator, *rollup.Verifier, *core.Sequencer) {
		node := rollup.NewNode(rollup.Config{ChallengePeriod: 1})
		if err := node.SetupL2(func(st *state.State) error {
			// Transplant the case-study L2 world.
			fresh, err := casestudy.New()
			if err != nil {
				return err
			}
			*st = *fresh.State
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		aggAddr := chainid.AggregatorAddress(1)
		verAddr := chainid.VerifierAddress(1)
		node.SetupAccount(aggAddr, wei.FromETH(10))
		node.SetupAccount(verAddr, wei.FromETH(10))

		var sequencer rollup.Sequencer
		var adv *core.Sequencer
		if adversarial {
			var err error
			adv, err = core.NewSequencer(node.VM(), rand.New(rand.NewSource(42)), fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			sequencer = adv
		}
		agg, err := rollup.NewAggregator(node, aggAddr, wei.FromETH(5), len(s.Original), sequencer)
		if err != nil {
			t.Fatal(err)
		}
		ver, err := rollup.NewVerifier(node, verAddr, wei.FromETH(5))
		if err != nil {
			t.Fatal(err)
		}
		for _, txn := range s.Original {
			if err := node.SubmitTx(txn); err != nil {
				t.Fatal(err)
			}
		}
		return node, agg, ver, adv
	}

	run := func(adversarial bool) (wei.Amount, *core.Sequencer) {
		node, agg, ver, adv := build(adversarial)
		nw := rollup.NewNetwork(node, []*rollup.Aggregator{agg}, []*rollup.Verifier{ver})
		reports, err := nw.RunRounds(3)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if len(r.Challenged) != 0 {
				t.Fatal("verifier challenged the batch")
			}
		}
		// The batch must have finalized on L1.
		var finalized int
		for _, r := range reports {
			finalized += len(r.Finalized)
		}
		if finalized != 1 {
			t.Fatalf("finalized = %d, want 1", finalized)
		}
		return node.L2State().TotalWealth(casestudy.IFU), adv
	}

	honestWealth, _ := run(false)
	attackedWealth, adv := run(true)

	if honestWealth != casestudy.FinalCase1 {
		t.Fatalf("honest IFU wealth = %s, want %s", honestWealth, casestudy.FinalCase1)
	}
	if attackedWealth <= honestWealth {
		t.Fatalf("attack gained nothing: %s vs %s", attackedWealth, honestWealth)
	}
	if got := adv.TotalProfit(); got != attackedWealth-honestWealth {
		t.Fatalf("reported profit %s, actual %s", got, attackedWealth-honestWealth)
	}
}

func TestAttackOneShot(t *testing.T) {
	s, err := casestudy.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Attack(nil, nil, s.State, s.Original, []chainid.Address{casestudy.IFU}, gentranseq.FastConfig()); !errors.Is(err, core.ErrNoRNG) {
		t.Errorf("no RNG = %v", err)
	}
	if _, err := core.Attack(rand.New(rand.NewSource(1)), nil, s.State, s.Original, nil, gentranseq.FastConfig()); !errors.Is(err, core.ErrNoIFU) {
		t.Errorf("no IFU = %v", err)
	}
}
