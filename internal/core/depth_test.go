package core

// reorderDepth is unexported, so its edge cases are pinned here in an
// internal test (core_test.go is the package's external black-box suite).

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/tx"
)

func depthBatch(n int) tx.Seq {
	seq := make(tx.Seq, n)
	for i := range seq {
		seq[i] = tx.Mint(chainid.DeriveAddress("depth-test-token"), uint64(i), chainid.UserAddress(i+1))
	}
	return seq
}

func TestReorderDepthEdgeCases(t *testing.T) {
	batch := depthBatch(4)
	swapped := append(tx.Seq(nil), batch...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	reversed := append(tx.Seq(nil), batch...)
	for i, j := 0, len(reversed)-1; i < j; i, j = i+1, j-1 {
		reversed[i], reversed[j] = reversed[j], reversed[i]
	}

	cases := []struct {
		name         string
		fee, shipped tx.Seq
		want         int
	}{
		{"both empty", tx.Seq{}, tx.Seq{}, 0},
		{"nil vs nil", nil, nil, 0},
		{"identical order", batch, batch, 0},
		{"single element same", batch[:1], batch[:1], 0},
		{"single element differs", batch[:1], batch[1:2], 1},
		{"one adjacent swap", batch, swapped, 2},
		{"full reversal", batch, reversed, 4},
		{"shipped truncated", batch, batch[:2], 2},
		{"shipped empty", batch, tx.Seq{}, 4},
	}
	for _, tc := range cases {
		if got := reorderDepth(tc.fee, tc.shipped); got != tc.want {
			t.Errorf("%s: reorderDepth = %d, want %d", tc.name, got, tc.want)
		}
	}
}
