package logx

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var testClock = func() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 123e6, time.UTC)
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, " warn ": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "none": LevelOff,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat must reject unknown formats")
	}
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	log := newAt(&buf, LevelDebug, FormatText, testClock)
	log = Logger{c: log.c, component: "rollup"}
	log.Info("batch committed",
		Uint64("batch", 3), Int("txs", 50), Str("root", "0xabc"),
		Dur("took", 1500*time.Microsecond), Bool("ok", true))
	got := buf.String()
	want := `2026-08-08T12:00:00.123Z INFO  rollup: batch committed batch=3 txs=50 root=0xabc took=1.5ms ok=true` + "\n"
	if got != want {
		t.Errorf("text record:\n got %q\nwant %q", got, want)
	}
}

func TestTextQuoting(t *testing.T) {
	var buf bytes.Buffer
	log := newAt(&buf, LevelDebug, FormatText, testClock)
	log.Warn("odd", Str("a", "has space"), Str("b", ""), Str("c", `x="1"`))
	got := buf.String()
	for _, want := range []string{`a="has space"`, `b=""`, `c="x=\"1\""`} {
		if !strings.Contains(got, want) {
			t.Errorf("quoted field %q missing from %q", want, got)
		}
	}
}

func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	log := newAt(&buf, LevelDebug, FormatJSON, testClock)
	log = Logger{c: log.c, component: "rpc"}
	log.Warn("slow request",
		Str("method", "parole_health"),
		Dur("elapsed", 250*time.Millisecond),
		Err(errors.New("deadline")))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("record is not one JSON object: %v\n%s", err, buf.String())
	}
	for key, want := range map[string]any{
		"level": "warn", "component": "rpc", "msg": "slow request",
		"method": "parole_health", "elapsed": 0.25, "err": "deadline",
	} {
		if got := rec[key]; got != want {
			t.Errorf("rec[%q] = %v (%T), want %v", key, got, got, want)
		}
	}
	if _, ok := rec["ts"]; !ok {
		t.Error("JSON record missing ts")
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("JSON records must be newline-terminated lines")
	}
}

func TestLevelGate(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, LevelWarn, FormatText)
	log.Debug("dropped")
	log.Info("dropped")
	log.Warn("kept")
	log.Error("kept")
	if got := strings.Count(buf.String(), "kept"); got != 2 {
		t.Errorf("kept records = %d, want 2\n%s", got, buf.String())
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Errorf("below-threshold record emitted:\n%s", buf.String())
	}
	if log.Enabled(LevelInfo) || !log.Enabled(LevelError) {
		t.Error("Enabled disagrees with the gate")
	}
}

func TestDefaultIsDisabled(t *testing.T) {
	// Component loggers on the package default must drop everything until a
	// binary calls Configure — library init must never produce output.
	if Enabled(LevelError) {
		t.Skip("another test configured the default core") // defensive; tests below restore
	}
	log := Component("test")
	log.Error("must not panic or emit")
}

func TestConfigureAndDisable(t *testing.T) {
	defer Disable()
	var buf bytes.Buffer
	Configure(&buf, LevelInfo, FormatText)
	Component("cfg").Info("hello")
	if !strings.Contains(buf.String(), "cfg: hello") {
		t.Fatalf("configured default did not emit: %q", buf.String())
	}
	n := buf.Len()
	Disable()
	Component("cfg").Error("after disable")
	if buf.Len() != n {
		t.Errorf("Disable did not stop emission: %q", buf.String()[n:])
	}
	SetLevel(LevelError)
	if Enabled(LevelWarn) || !Enabled(LevelError) {
		t.Error("SetLevel threshold wrong")
	}
}

func TestWith(t *testing.T) {
	var buf bytes.Buffer
	log := newAt(&buf, LevelDebug, FormatText, testClock)
	child := log.With(Str("shard", "3"))
	child.Info("msg", Int("n", 1))
	if !strings.Contains(buf.String(), "shard=3 n=1") {
		t.Errorf("base fields must precede per-record fields: %q", buf.String())
	}
	buf.Reset()
	log.Info("msg") // parent unaffected
	if strings.Contains(buf.String(), "shard") {
		t.Errorf("With leaked into the parent: %q", buf.String())
	}
}

func TestErrNil(t *testing.T) {
	f := Err(nil)
	if f.Key != "err" || f.Val != "<nil>" {
		t.Errorf("Err(nil) = %+v", f)
	}
}

func TestConcurrentEmitters(t *testing.T) {
	// Records from concurrent goroutines must interleave only at line
	// granularity (the core's mutex) — run with -race.
	var buf bytes.Buffer
	log := New(&buf, LevelDebug, FormatJSON)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := log.With(Int("g", g))
			for i := 0; i < 50; i++ {
				l.Info("tick", Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("torn record %q: %v", line, err)
		}
	}
}

func BenchmarkDisabledDebug(b *testing.B) {
	log := New(nil, LevelOff, FormatText)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log.Debug("dropped", Int("i", i))
	}
}
