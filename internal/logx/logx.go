// Package logx is the PAROLE node's structured, leveled logging substrate:
// dependency-free, concurrency-safe, and a strict no-op until a binary
// configures it — the same reporting-layer discipline as internal/telemetry
// and internal/trace, so seeded experiment outputs stay bit-identical with
// logging enabled or disabled (the telemetry guard test runs with logging
// on).
//
// Library packages take a component-scoped logger at init:
//
//	var log = logx.Component("rollup")
//
// and emit typed key/value fields:
//
//	log.Info("batch committed", logx.Uint64("batch", id), logx.Int("txs", n))
//
// Binaries pick the sink, format, and threshold once at startup:
//
//	logx.Configure(os.Stderr, logx.LevelInfo, logx.FormatText)
//
// Two formats ship: a human-readable single-line text form and a JSON-lines
// form for ingestion (docs/OBSERVABILITY.md documents the field grammar).
// Records below the configured level cost one atomic load and no
// allocation.
package logx

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Severities, least to most severe. LevelOff disables every record and is
// the package default.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String returns the canonical lower-case name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelOff, fmt.Errorf("logx: unknown level %q (want debug|info|warn|error|off)", s)
}

// Format selects the output encoding.
type Format int

// Output encodings for Configure.
const (
	FormatText Format = iota
	FormatJSON
)

// ParseFormat maps a -log-format flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("logx: unknown format %q (want text|json)", s)
}

// Field is one typed key/value pair on a record.
type Field struct {
	Key string
	Val any
}

// Str builds a string field.
func Str(key, val string) Field { return Field{Key: key, Val: val} }

// Int builds an int field.
func Int(key string, val int) Field { return Field{Key: key, Val: int64(val)} }

// Int64 builds an int64 field.
func Int64(key string, val int64) Field { return Field{Key: key, Val: val} }

// Uint64 builds a uint64 field.
func Uint64(key string, val uint64) Field { return Field{Key: key, Val: val} }

// Float builds a float64 field.
func Float(key string, val float64) Field { return Field{Key: key, Val: val} }

// Bool builds a bool field.
func Bool(key string, val bool) Field { return Field{Key: key, Val: val} }

// Dur builds a duration field, rendered in seconds (JSON) or Go duration
// syntax (text).
func Dur(key string, val time.Duration) Field { return Field{Key: key, Val: val} }

// Err builds the conventional "err" field; a nil error renders as "<nil>".
func Err(err error) Field {
	if err == nil {
		return Field{Key: "err", Val: "<nil>"}
	}
	return Field{Key: "err", Val: err.Error()}
}

// core is the shared sink every Logger writes through. One core backs the
// whole process (the package default); tests build private ones via New.
type core struct {
	level  atomic.Int32
	mu     sync.Mutex
	w      io.Writer
	format Format
	// now is the record clock; swappable for deterministic test output.
	now func() time.Time
}

// Logger emits records for one component. Loggers are cheap values; derive
// them freely with Component and With.
type Logger struct {
	c         *core
	component string
	base      []Field
}

// defaultCore starts disabled: every record below LevelOff (i.e. all of
// them) is dropped until Configure runs.
var defaultCore = func() *core {
	c := &core{w: io.Discard, format: FormatText, now: time.Now}
	c.level.Store(int32(LevelOff))
	return c
}()

// Configure points the process-default logger at w with the given
// threshold and format. Safe to call at any time; records in flight finish
// on the previous sink.
func Configure(w io.Writer, level Level, format Format) {
	defaultCore.mu.Lock()
	defaultCore.w = w
	defaultCore.format = format
	defaultCore.mu.Unlock()
	defaultCore.level.Store(int32(level))
}

// Disable restores the package default: drop everything.
func Disable() { Configure(io.Discard, LevelOff, FormatText) }

// SetLevel adjusts the process-default threshold without touching the sink.
func SetLevel(level Level) { defaultCore.level.Store(int32(level)) }

// Enabled reports whether the process-default logger emits at level.
func Enabled(level Level) bool { return Level(defaultCore.level.Load()) <= level }

// Component returns a process-default logger tagged with the component
// name — what library packages store in a package-level var.
func Component(name string) Logger { return Logger{c: defaultCore, component: name} }

// New builds a private logger (tests, embedded tools) over its own core.
func New(w io.Writer, level Level, format Format) Logger {
	c := &core{w: w, format: format, now: time.Now}
	c.level.Store(int32(level))
	return Logger{c: c}
}

// newAt is New with a fixed clock — deterministic encoder tests.
func newAt(w io.Writer, level Level, format Format, now func() time.Time) Logger {
	l := New(w, level, format)
	l.c.now = now
	return l
}

// With returns a logger that appends fields to every record.
func (l Logger) With(fields ...Field) Logger {
	base := make([]Field, 0, len(l.base)+len(fields))
	base = append(base, l.base...)
	base = append(base, fields...)
	return Logger{c: l.c, component: l.component, base: base}
}

// Enabled reports whether this logger emits at level.
func (l Logger) Enabled(level Level) bool {
	return l.c != nil && Level(l.c.level.Load()) <= level
}

// Debug emits at LevelDebug.
func (l Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits at LevelInfo.
func (l Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits at LevelWarn.
func (l Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits at LevelError.
func (l Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	ts := l.c.now()
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	switch l.c.format {
	case FormatJSON:
		writeJSONRecord(l.c.w, ts, level, l.component, msg, l.base, fields)
	default:
		writeTextRecord(l.c.w, ts, level, l.component, msg, l.base, fields)
	}
}

// writeTextRecord renders
//
//	2026-08-08T12:00:00.000Z INFO  rollup: batch committed batch=3 txs=50
func writeTextRecord(w io.Writer, ts time.Time, level Level, component, msg string, base, fields []Field) {
	var b strings.Builder
	b.WriteString(ts.UTC().Format("2006-01-02T15:04:05.000Z"))
	fmt.Fprintf(&b, " %-5s ", strings.ToUpper(level.String()))
	if component != "" {
		b.WriteString(component)
		b.WriteString(": ")
	}
	b.WriteString(msg)
	for _, f := range base {
		appendTextField(&b, f)
	}
	for _, f := range fields {
		appendTextField(&b, f)
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
}

func appendTextField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	switch v := f.Val.(type) {
	case string:
		if strings.ContainsAny(v, " \t\"=") || v == "" {
			b.WriteString(strconv.Quote(v))
		} else {
			b.WriteString(v)
		}
	case time.Duration:
		b.WriteString(v.String())
	case float64:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case bool:
		b.WriteString(strconv.FormatBool(v))
	default:
		fmt.Fprintf(b, "%v", v)
	}
}

// writeJSONRecord renders one JSON object per line with the reserved keys
// ts, level, component, msg, then every field.
func writeJSONRecord(w io.Writer, ts time.Time, level Level, component, msg string, base, fields []Field) {
	rec := make(map[string]any, 4+len(base)+len(fields))
	rec["ts"] = ts.UTC().Format(time.RFC3339Nano)
	rec["level"] = level.String()
	if component != "" {
		rec["component"] = component
	}
	rec["msg"] = msg
	for _, f := range base {
		rec[f.Key] = jsonVal(f.Val)
	}
	for _, f := range fields {
		rec[f.Key] = jsonVal(f.Val)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		fmt.Fprintf(w, `{"level":"error","component":"logx","msg":"marshal record: %v"}`+"\n", err)
		return
	}
	w.Write(append(data, '\n'))
}

// jsonVal renders durations as seconds so JSON consumers get numbers.
func jsonVal(v any) any {
	if d, ok := v.(time.Duration); ok {
		return d.Seconds()
	}
	return v
}
