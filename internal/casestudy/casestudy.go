// Package casestudy builds the exact Section VI scenario of the paper: the
// PAROLE-Token world of the three Fig. 5 case studies, with the original
// transaction sequence and the paper's two altered orders.
//
// System status (Section VI-A): the PT contract has max supply S⁰ = 10 and
// initial price P⁰ = 0.2 ETH; 5 tokens are already minted, so one PT costs
// 0.4 ETH; the IFU holds an L2 balance of 1.5 ETH and owns 2 PTs (total
// balance 2.3 ETH).
//
// Ownership reconciliation. The paper's case studies are over-constrained:
// with only five pre-minted tokens, the eight transactions cannot all be
// executable in all three printed orders (TX4 — U19 selling — precedes U19's
// mint TX2 in both altered orders, and U1 must sell twice while U13 sells
// once). We resolve it the only way that keeps every *printed* price and
// balance column exact in all three orders AND keeps the executed set
// identical across them: the five pre-minted tokens are owned by IFU (ids 0,
// 1), U1 (ids 2, 3), and U19 (id 4); U13 owns nothing, so TX6 (U13 → U3) is
// skipped in every order — consistent with its rows, which never change any
// printed value. This choice is documented in EXPERIMENTS.md.
package casestudy

import (
	"fmt"

	"parole/internal/chainid"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Actor addresses of the case studies.
var (
	// IFU is the illicitly favored user.
	IFU = chainid.DeriveAddress("ifu")
	// PTAddr is the PAROLE-Token contract address.
	PTAddr = chainid.DeriveAddress("parole-token")

	u1  = chainid.UserAddress(1)
	u2  = chainid.UserAddress(2)
	u3  = chainid.UserAddress(3)
	u6  = chainid.UserAddress(6)
	u11 = chainid.UserAddress(11)
	u13 = chainid.UserAddress(13)
	u19 = chainid.UserAddress(19)
)

// Token ids used by the scenario.
const (
	ifuToken0   = 0 // pre-minted, IFU (sold to U11 in TX3)
	ifuToken1   = 1 // pre-minted, IFU
	u1Token2    = 2 // pre-minted, U1 (sold to U2 in TX1, burned in TX7)
	u1Token3    = 3 // pre-minted, U1 (sold to IFU in TX8)
	u19Token4   = 4 // pre-minted, U19 (sold to U6 in TX4)
	ifuMint5    = 5 // minted by the IFU in TX5
	u19Mint6    = 6 // minted by U19 in TX2
	u13Phantom7 = 7 // referenced by TX6; U13 owns nothing, so TX6 skips
)

// Scenario is the assembled case-study world.
type Scenario struct {
	// State is the L2 state right before the batch executes.
	State *state.State
	// Original is the fee-order sequence TX1..TX8 of Fig. 5(a).
	Original tx.Seq
	// Case2 is the candidate altered order of Fig. 5(b):
	// TX1, TX7, TX5, TX4, TX3, TX6, TX2, TX8.
	Case2 tx.Seq
	// Case3 is the optimal altered order of Fig. 5(c):
	// TX1, TX7, TX8, TX5, TX4, TX3, TX6, TX2.
	Case3 tx.Seq
}

// Expected balances of the paper (exact integer arithmetic; the paper
// prints per-row roundings of the same quantities).
var (
	// InitialTotal is the IFU's total balance before the batch: 2.3 ETH.
	InitialTotal = wei.FromFloat(2.3)
	// FinalCase1 is the IFU total balance after the original order: 2.5 ETH.
	FinalCase1 = wei.FromFloat(2.5)
	// FinalCase2 after the Fig. 5(b) order: 1.5−1/3+0.4−0.4+0.4 = 1.566…
	// L2 plus 3 PTs at 0.5 = 2.5666… ETH (printed as 2.57).
	FinalCase2 = wei.Amount(2_566_666_667)
	// FinalCase3 after the Fig. 5(c) order: 1.2333… L2 plus 3 PTs at 0.5 =
	// 2.7333… ETH (printed as 2.74).
	FinalCase3 = wei.Amount(2_733_333_334)
)

// New assembles the case-study scenario.
func New() (*Scenario, error) {
	st := state.New()
	pt, err := token.Deploy(PTAddr, token.Config{
		Name:         "ParoleToken",
		Symbol:       "PT",
		MaxSupply:    10,
		InitialPrice: wei.FromFloat(0.2),
	})
	if err != nil {
		return nil, fmt.Errorf("deploy PT: %w", err)
	}
	premints := []struct {
		id    uint64
		owner chainid.Address
	}{
		{ifuToken0, IFU},
		{ifuToken1, IFU},
		{u1Token2, u1},
		{u1Token3, u1},
		{u19Token4, u19},
	}
	for _, m := range premints {
		if err := pt.Mint(m.owner, m.id); err != nil {
			return nil, fmt.Errorf("pre-mint %d: %w", m.id, err)
		}
	}
	if err := st.DeployToken(pt); err != nil {
		return nil, fmt.Errorf("deploy token into state: %w", err)
	}

	// L2 balances: the IFU's printed 1.5 ETH; counterparties funded enough
	// to satisfy every buyer/minter constraint in any order.
	st.SetBalance(IFU, wei.FromFloat(1.5))
	for _, u := range []chainid.Address{u1, u2, u3, u6, u11, u13, u19} {
		st.SetBalance(u, wei.FromETH(5))
	}

	// TX1..TX8 in the original (fee-priority) order of Fig. 5(a). Fees are
	// strictly decreasing so Bedrock's mempool reproduces this order.
	txs := tx.Seq{
		tx.Transfer(PTAddr, u1Token2, u1, u2),     // TX1
		tx.Mint(PTAddr, u19Mint6, u19),            // TX2
		tx.Transfer(PTAddr, ifuToken0, IFU, u11),  // TX3
		tx.Transfer(PTAddr, u19Token4, u19, u6),   // TX4
		tx.Mint(PTAddr, ifuMint5, IFU),            // TX5
		tx.Transfer(PTAddr, u13Phantom7, u13, u3), // TX6 (skips: U13 owns
		// nothing — see the package comment)
		tx.Burn(PTAddr, u1Token2, u2),          // TX7
		tx.Transfer(PTAddr, u1Token3, u1, IFU), // TX8
	}
	for i := range txs {
		txs[i] = txs[i].WithFees(wei.Amount(100-10*i), 0)
	}

	s := &Scenario{State: st, Original: txs}
	s.Case2 = pick(txs, 1, 7, 5, 4, 3, 6, 2, 8)
	s.Case3 = pick(txs, 1, 7, 8, 5, 4, 3, 6, 2)
	return s, nil
}

// pick selects 1-based original positions into a new order.
func pick(txs tx.Seq, order ...int) tx.Seq {
	out := make(tx.Seq, 0, len(order))
	for _, pos := range order {
		out = append(out, txs[pos-1])
	}
	return out
}
