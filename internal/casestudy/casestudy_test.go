package casestudy

import (
	"testing"

	"parole/internal/ovm"
	"parole/internal/wei"
)

// TestFig5CaseStudies replays the paper's three case studies and pins every
// printed IFU-balance and price column (exact integer arithmetic; the paper
// rounds to two decimals).
func TestFig5CaseStudies(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	vm := ovm.New()

	if got := s.State.TotalWealth(IFU); got != InitialTotal {
		t.Fatalf("initial IFU total = %s, want %s", got, InitialTotal)
	}

	tests := []struct {
		name       string
		order      int // 0=original, 2, 3
		wantFinal  wei.Amount
		wantPrices []wei.Amount // post-step PT price per row
		wantTotals []wei.Amount // post-step IFU total per row
	}{
		{
			name:      "case1 original order",
			order:     0,
			wantFinal: FinalCase1,
			wantPrices: []wei.Amount{
				wei.FromFloat(0.4), wei.FromFloat(0.5), wei.FromFloat(0.5),
				wei.FromFloat(0.5), 666_666_666, 666_666_666,
				wei.FromFloat(0.5), wei.FromFloat(0.5),
			},
			wantTotals: []wei.Amount{
				wei.FromFloat(2.3), wei.FromFloat(2.5), wei.FromFloat(2.5),
				wei.FromFloat(2.5), 2_833_333_332, 2_833_333_332,
				wei.FromFloat(2.5), wei.FromFloat(2.5),
			},
		},
		{
			name:      "case2 candidate order",
			order:     2,
			wantFinal: FinalCase2,
			wantPrices: []wei.Amount{
				wei.FromFloat(0.4), 333_333_333, wei.FromFloat(0.4),
				wei.FromFloat(0.4), wei.FromFloat(0.4), wei.FromFloat(0.4),
				wei.FromFloat(0.5), wei.FromFloat(0.5),
			},
			wantTotals: []wei.Amount{
				wei.FromFloat(2.3), 2_166_666_666, 2_366_666_667,
				2_366_666_667, 2_366_666_667, 2_366_666_667,
				2_566_666_667, 2_566_666_667,
			},
		},
		{
			name:      "case3 optimal order",
			order:     3,
			wantFinal: FinalCase3,
			wantPrices: []wei.Amount{
				wei.FromFloat(0.4), 333_333_333, 333_333_333,
				wei.FromFloat(0.4), wei.FromFloat(0.4), wei.FromFloat(0.4),
				wei.FromFloat(0.4), wei.FromFloat(0.5),
			},
			wantTotals: []wei.Amount{
				wei.FromFloat(2.3), 2_166_666_666, 2_166_666_666,
				2_433_333_334, 2_433_333_334, 2_433_333_334,
				2_433_333_334, 2_733_333_334,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			seq := s.Original
			switch tt.order {
			case 2:
				seq = s.Case2
			case 3:
				seq = s.Case3
			}
			trace, res, err := vm.WealthTrace(s.State, seq, IFU)
			if err != nil {
				t.Fatal(err)
			}
			// Exactly one transaction (TX6) skips in every order.
			if res.Executed != len(seq)-1 {
				t.Fatalf("executed = %d, want %d", res.Executed, len(seq)-1)
			}
			for i, step := range res.Steps {
				if step.Price != tt.wantPrices[i] {
					t.Errorf("row %d price = %s, want %s", i+1, step.Price, tt.wantPrices[i])
				}
				if trace[i] != tt.wantTotals[i] {
					t.Errorf("row %d IFU total = %s, want %s", i+1, trace[i], tt.wantTotals[i])
				}
			}
			if got := trace[len(trace)-1]; got != tt.wantFinal {
				t.Fatalf("final IFU total = %s, want %s", got, tt.wantFinal)
			}
		})
	}
}

// TestExecutedSetsAgreeAcrossOrders verifies the Section V-B constraint:
// the paper's altered orders keep the originally-executable set intact.
func TestExecutedSetsAgreeAcrossOrders(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	vm := ovm.New()
	_, origSet, _, err := vm.Evaluate(s.State, s.Original)
	if err != nil {
		t.Fatal(err)
	}
	for name, seq := range map[string]struct{ seq []int }{"case2": {}, "case3": {}} {
		_ = seq
		alt := s.Case2
		if name == "case3" {
			alt = s.Case3
		}
		_, altSet, _, err := vm.Evaluate(s.State, alt)
		if err != nil {
			t.Fatal(err)
		}
		if len(altSet) != len(origSet) {
			t.Fatalf("%s executed %d txs, original %d", name, len(altSet), len(origSet))
		}
		for h := range origSet {
			if !altSet[h] {
				t.Fatalf("%s dropped an originally-executed tx", name)
			}
		}
	}
}

// TestL2PortionImprovement checks the paper's headline: the altered orders
// improve the non-volatile L2 portion by ~7% (case 2) and ~24% (case 3)
// versus the original order's 1.0 ETH.
func TestL2PortionImprovement(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	vm := ovm.New()
	run := func(order int) wei.Amount {
		seq := s.Original
		switch order {
		case 2:
			seq = s.Case2
		case 3:
			seq = s.Case3
		}
		res, err := vm.Execute(s.State, seq)
		if err != nil {
			t.Fatal(err)
		}
		return res.State.Balance(IFU)
	}
	base := run(0)
	if base != wei.FromETH(1) {
		t.Fatalf("case1 L2 balance = %s, want 1", base)
	}
	c2 := run(2)
	c3 := run(3)
	// Case 2: 1.0666… (+6.7%, printed as 1.07/+7%).
	if c2 != wei.Amount(1_066_666_667) {
		t.Fatalf("case2 L2 balance = %s", c2)
	}
	// Case 3: 1.2333… (+23.3%, printed as 1.24/+24%).
	if c3 != wei.Amount(1_233_333_334) {
		t.Fatalf("case3 L2 balance = %s", c3)
	}
	if !(c3 > c2 && c2 > base) {
		t.Fatal("L2-portion ordering violated")
	}
}
