package state

import (
	"errors"
	"fmt"

	"parole/internal/chainid"
)

// The Merkle tree here is a plain binary hash tree over an ordered leaf
// list. Odd nodes at any level are paired with a domain-separated empty
// digest so that a tree over k leaves cannot be confused with a tree over a
// prefix of them.

// emptyLeaf is the padding digest for odd levels.
var emptyLeaf = chainid.HashBytes([]byte("parole/merkle-empty"))

// ErrBadProof is returned when a proof's index is out of range.
var ErrBadProof = errors.New("state: invalid merkle proof parameters")

// Proof is a Merkle membership proof for one leaf.
type Proof struct {
	Leaf     chainid.Hash
	Index    int
	Siblings []chainid.Hash
}

// MerkleRoot folds the leaf list into a single root. An empty list hashes to
// the domain-separated empty digest.
func MerkleRoot(leaves []chainid.Hash) chainid.Hash {
	if len(leaves) == 0 {
		return emptyLeaf
	}
	level := make([]chainid.Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := make([]chainid.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			right := emptyLeaf
			if i+1 < len(level) {
				right = level[i+1]
			}
			next = append(next, chainid.CombineHashes(level[i], right))
		}
		level = next
	}
	return level[0]
}

// BuildProof constructs the membership proof for leaves[index].
func BuildProof(leaves []chainid.Hash, index int) (Proof, error) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, fmt.Errorf("%w: index %d of %d leaves", ErrBadProof, index, len(leaves))
	}
	proof := Proof{Leaf: leaves[index], Index: index}
	level := make([]chainid.Hash, len(leaves))
	copy(level, leaves)
	pos := index
	for len(level) > 1 {
		sibling := emptyLeaf
		if pos%2 == 0 {
			if pos+1 < len(level) {
				sibling = level[pos+1]
			}
		} else {
			sibling = level[pos-1]
		}
		proof.Siblings = append(proof.Siblings, sibling)

		next := make([]chainid.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			right := emptyLeaf
			if i+1 < len(level) {
				right = level[i+1]
			}
			next = append(next, chainid.CombineHashes(level[i], right))
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// Verify recomputes the root implied by the proof and compares it to want.
func (p Proof) Verify(want chainid.Hash) bool {
	h := p.Leaf
	pos := p.Index
	for _, sibling := range p.Siblings {
		if pos%2 == 0 {
			h = chainid.CombineHashes(h, sibling)
		} else {
			h = chainid.CombineHashes(sibling, h)
		}
		pos /= 2
	}
	return h == want
}
