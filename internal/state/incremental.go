package state

import (
	"sort"

	"parole/internal/chainid"
	"parole/internal/telemetry"
	"parole/internal/trace"
)

// Incremental-root metrics (docs/METRICS.md §state). The root cache now has
// three outcomes instead of two: a full rebuild (computes), an incremental
// dirty-path update (incremental, with dirty_leaves counting the leaves that
// actually changed), and a pure cache hit — which includes the case where
// every pending write turned out to be a no-op, e.g. a fully rolled-back
// Scratch (unchanged_leaves counts those saved rebuilds' leaves).
var (
	mRootIncremental = telemetry.Default().Counter("state.root.incremental")
	mRootDirtyLeaves = telemetry.Default().Counter("state.root.dirty_leaves")
	mRootUnchanged   = telemetry.Default().Counter("state.root.unchanged_leaves")
	// mRootTime is the wall-clock cost of Root() — gated like every timer,
	// so library callers pay one atomic load; parole-top renders it as the
	// state-root update latency.
	mRootTime = telemetry.Default().Timer("state.root.time")
)

// itree is the persisted interior of the state's Merkle tree. levels[0] is
// the canonical leaf order (sorted account leaves, then sorted token state
// digests, exactly State.leaves()); levels[k+1] holds the parents of
// levels[k]; the top level has one entry, the root.
//
// The tree supports exactly two mutations between rebuilds:
//
//   - value changes of existing leaves (account writes to known addresses,
//     token mutations detected via the per-contract version counters), which
//     recompute only the leaf's root path;
//   - structural changes (a new or deleted account record, a new contract),
//     which invalidate the leaf indexing and force a full rebuild on the
//     next Root() — the rare case: batch execution touches existing
//     accounts almost exclusively.
//
// Account writes are recorded as *pending addresses*, not dirty indices:
// whether a write really changed the leaf (or created/destroyed one) is
// resolved lazily at Root() time by comparing against the stored leaf hash.
// That is what makes a fully rolled-back Scratch free — its writes all
// resolve to "hash unchanged" and the cached root stays valid without a
// single CombineHashes call.
type itree struct {
	levels [][]chainid.Hash

	// Leaf indexing captured at build time: accounts[i] owns leaf i,
	// tokAddrs[j] owns leaf len(addrs)+j at the version tokVers[j] held when
	// the leaf was last hashed.
	addrs     []chainid.Address
	addrIndex map[chainid.Address]int
	tokAddrs  []chainid.Address
	tokVers   []uint64

	// pending is the set of account addresses written since the last
	// Root(); structural records a leaf-set change that defeats incremental
	// repair.
	pending    map[chainid.Address]struct{}
	structural bool
}

// noteAccountWrite records that addr's account record was written (created,
// mutated, or deleted). Cheap by design: one nil check on the cold-start
// path (no tree yet — the next Root() builds from scratch anyway) and one
// map insert once a tree exists.
func (s *State) noteAccountWrite(addr chainid.Address) {
	if s.tree == nil {
		return
	}
	s.tree.pending[addr] = struct{}{}
}

// noteStructuralChange forces a full rebuild on the next Root() (new
// contract deployment; the account path never calls this directly — account
// creation/deletion is detected when pending addresses resolve).
func (s *State) noteStructuralChange() {
	if s.tree == nil {
		return
	}
	s.tree.structural = true
}

// Root returns the Merkle state root over the full world state. Leaves are
// the sorted account records followed by each token contract's state digest;
// the root is the commitment aggregators submit with their batch.
//
// The tree behind the root is incremental: interior nodes persist between
// calls, account writes mark their address pending, token mutations are
// detected via the per-contract version counters, and Root() recomputes only
// the root paths of leaves whose hash actually changed. Leaf-set changes
// (new accounts, deployments) fall back to a full rebuild. Like all State
// methods, Root is not safe for concurrent use.
func (s *State) Root() chainid.Hash {
	stopTimer := mRootTime.Start()
	defer stopTimer()
	t := s.tree
	if t == nil || t.structural || len(t.tokAddrs) != len(s.tokens) {
		return s.rebuildRoot()
	}

	// Resolve pending account writes against the stored leaves.
	var dirty []int
	for addr := range t.pending {
		acct, inMap := s.accounts[addr]
		idx, inTree := t.addrIndex[addr]
		if inMap != inTree {
			// A leaf appeared or disappeared: structural.
			return s.rebuildRoot()
		}
		if !inMap {
			continue // created and then rolled back before any Root()
		}
		if h := accountLeaf(addr, acct); h != t.levels[0][idx] {
			t.levels[0][idx] = h
			dirty = append(dirty, idx)
		} else {
			mRootUnchanged.Inc()
		}
	}

	// Detect token mutations via the monotone version counters.
	tokBase := len(t.addrs)
	for j, a := range t.tokAddrs {
		c, ok := s.tokens[a]
		if !ok {
			return s.rebuildRoot()
		}
		if v := c.Version(); v != t.tokVers[j] {
			t.tokVers[j] = v
			idx := tokBase + j
			if h := c.StateDigest(); h != t.levels[0][idx] {
				t.levels[0][idx] = h
				dirty = append(dirty, idx)
			} else {
				mRootUnchanged.Inc()
			}
		}
	}
	clear(t.pending)

	if len(dirty) == 0 {
		mRootCacheHits.Inc()
		return s.cachedRoot
	}
	mRootIncremental.Inc()
	mRootDirtyLeaves.Add(int64(len(dirty)))
	t.update(dirty)
	s.cachedRoot = t.levels[len(t.levels)-1][0]
	return s.cachedRoot
}

// ColdRoot recomputes the root from the raw leaves, bypassing and not
// touching the incremental tree — the reference the property tests and the
// scaling experiment compare Root() against.
func (s *State) ColdRoot() chainid.Hash {
	return MerkleRoot(s.leaves())
}

// rebuildRoot builds the full tree from the current leaves and re-captures
// the leaf indexing.
func (s *State) rebuildRoot() chainid.Hash {
	mRootComputes.Inc()
	sp := trace.StartSpan(trace.SpanStateRootRebuild,
		trace.Int("accounts", int64(len(s.accounts))),
		trace.Int("tokens", int64(len(s.tokens))))
	defer sp.End()

	t := &itree{
		addrs:     s.Accounts(),
		addrIndex: make(map[chainid.Address]int, len(s.accounts)),
		pending:   make(map[chainid.Address]struct{}),
	}
	for i, a := range t.addrs {
		t.addrIndex[a] = i
	}
	leaves := make([]chainid.Hash, 0, len(t.addrs)+len(s.tokens))
	for _, a := range t.addrs {
		leaves = append(leaves, accountLeaf(a, s.accounts[a]))
	}
	t.tokAddrs = make([]chainid.Address, 0, len(s.tokens))
	for a := range s.tokens {
		t.tokAddrs = append(t.tokAddrs, a)
	}
	sort.Slice(t.tokAddrs, func(i, j int) bool {
		return string(t.tokAddrs[i][:]) < string(t.tokAddrs[j][:])
	})
	t.tokVers = make([]uint64, len(t.tokAddrs))
	for j, a := range t.tokAddrs {
		c := s.tokens[a]
		t.tokVers[j] = c.Version()
		leaves = append(leaves, c.StateDigest())
	}
	t.build(leaves)
	s.tree = t
	if len(leaves) == 0 {
		s.cachedRoot = emptyLeaf
	} else {
		s.cachedRoot = t.levels[len(t.levels)-1][0]
	}
	return s.cachedRoot
}

// build constructs every level above the given leaves, mirroring MerkleRoot
// node for node (odd nodes pair with the domain-separated empty digest).
func (t *itree) build(leaves []chainid.Hash) {
	if len(leaves) == 0 {
		t.levels = nil
		return
	}
	t.levels = [][]chainid.Hash{leaves}
	for level := leaves; len(level) > 1; {
		next := make([]chainid.Hash, (len(level)+1)/2)
		for i := range next {
			right := emptyLeaf
			if 2*i+1 < len(level) {
				right = level[2*i+1]
			}
			next[i] = chainid.CombineHashes(level[2*i], right)
		}
		t.levels = append(t.levels, next)
		level = next
	}
}

// update recomputes the root paths of the given (already rewritten) leaf
// indices, level by level. Duplicate parents are recomputed once per level.
func (t *itree) update(dirty []int) {
	sort.Ints(dirty)
	frontier := dirty
	for k := 0; k+1 < len(t.levels); k++ {
		level, parents := t.levels[k], t.levels[k+1]
		next := frontier[:0]
		prev := -1
		for _, idx := range frontier {
			p := idx / 2
			if p == prev {
				continue
			}
			prev = p
			right := emptyLeaf
			if 2*p+1 < len(level) {
				right = level[2*p+1]
			}
			parents[p] = chainid.CombineHashes(level[2*p], right)
			next = append(next, p)
		}
		frontier = next
	}
}
