package state

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parole/internal/chainid"
	"parole/internal/token"
	"parole/internal/wei"
)

var (
	alice = chainid.UserAddress(1)
	bob   = chainid.UserAddress(2)
)

func newPT(t testing.TB) *token.Contract {
	t.Helper()
	c, err := token.Deploy(chainid.DeriveAddress("pt-contract"), token.Config{
		Name:         "ParoleToken",
		Symbol:       "PT",
		MaxSupply:    10,
		InitialPrice: wei.FromFloat(0.2),
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return c
}

func TestCreditDebit(t *testing.T) {
	s := New()
	s.Credit(alice, wei.FromFloat(1.5))
	if got := s.Balance(alice); got != wei.FromFloat(1.5) {
		t.Fatalf("Balance = %s, want 1.5", got)
	}
	if err := s.Debit(alice, wei.FromFloat(0.4)); err != nil {
		t.Fatalf("Debit: %v", err)
	}
	if got := s.Balance(alice); got != wei.FromFloat(1.1) {
		t.Fatalf("Balance after debit = %s, want 1.1", got)
	}
	if err := s.Debit(alice, wei.FromFloat(2.0)); !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("overdraft = %v, want ErrInsufficientBalance", err)
	}
	if got := s.Balance(alice); got != wei.FromFloat(1.1) {
		t.Fatalf("failed debit changed balance to %s", got)
	}
}

func TestNegativeMovesPanic(t *testing.T) {
	s := New()
	for _, f := range []func(){
		func() { s.Credit(alice, -1) },
		func() { _ = s.Debit(alice, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative money movement did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNonce(t *testing.T) {
	s := New()
	if s.Nonce(alice) != 0 {
		t.Fatal("fresh nonce not zero")
	}
	if got := s.BumpNonce(alice); got != 1 {
		t.Fatalf("BumpNonce = %d, want 1", got)
	}
	if got := s.Nonce(alice); got != 1 {
		t.Fatalf("Nonce = %d, want 1", got)
	}
	if s.Nonce(bob) != 0 {
		t.Fatal("bumping alice affected bob")
	}
}

func TestDeployAndLookupToken(t *testing.T) {
	s := New()
	pt := newPT(t)
	if err := s.DeployToken(pt); err != nil {
		t.Fatalf("DeployToken: %v", err)
	}
	if err := s.DeployToken(pt); !errors.Is(err, ErrTokenExists) {
		t.Fatalf("duplicate deploy = %v, want ErrTokenExists", err)
	}
	got, err := s.Token(pt.Address())
	if err != nil || got != pt {
		t.Fatalf("Token lookup = (%v, %v)", got, err)
	}
	if _, err := s.Token(chainid.DeriveAddress("nowhere")); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("unknown token = %v, want ErrUnknownToken", err)
	}
}

func TestTotalWealthMatchesCaseStudySetup(t *testing.T) {
	// Section VI-A status: IFU has 1.5 ETH and 2 PTs at 0.4 ETH = 2.3 total.
	s := New()
	pt := newPT(t)
	if err := s.DeployToken(pt); err != nil {
		t.Fatal(err)
	}
	ifu := chainid.UserAddress(42)
	s.Credit(ifu, wei.FromFloat(1.5))
	for id := uint64(0); id < 5; id++ {
		owner := chainid.UserAddress(int(10 + id))
		if id < 2 {
			owner = ifu
		}
		if err := pt.Mint(owner, id); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.TotalWealth(ifu); got != wei.FromFloat(2.3) {
		t.Fatalf("TotalWealth = %s, want 2.3", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New()
	pt := newPT(t)
	if err := s.DeployToken(pt); err != nil {
		t.Fatal(err)
	}
	s.Credit(alice, 100)
	c := s.Clone()
	c.Credit(alice, 50)
	ct, err := c.Token(pt.Address())
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Mint(bob, 0); err != nil {
		t.Fatal(err)
	}
	if s.Balance(alice) != 100 {
		t.Fatal("clone shares account map")
	}
	if pt.Minted() != 0 {
		t.Fatal("clone shares token contract")
	}
	if s.Root() == c.Root() {
		t.Fatal("diverged states share a root")
	}
}

func TestRootDeterministicAndSensitive(t *testing.T) {
	build := func() *State {
		s := New()
		s.Credit(alice, 100)
		s.Credit(bob, 200)
		return s
	}
	a, b := build(), build()
	if a.Root() != b.Root() {
		t.Fatal("identical states root differently")
	}
	b.Credit(bob, 1)
	if a.Root() == b.Root() {
		t.Fatal("balance change did not change root")
	}
	c := build()
	c.BumpNonce(alice)
	if a.Root() == c.Root() {
		t.Fatal("nonce change did not change root")
	}
}

func TestTotalBalance(t *testing.T) {
	s := New()
	s.Credit(alice, 100)
	s.Credit(bob, 250)
	if got := s.TotalBalance(); got != 350 {
		t.Fatalf("TotalBalance() = %d, want 350", got)
	}
	if got := s.TotalBalance(alice); got != 100 {
		t.Fatalf("TotalBalance(alice) = %d, want 100", got)
	}
}

func TestTransfersConserveTotalBalance(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		users := []chainid.Address{alice, bob, chainid.UserAddress(3), chainid.UserAddress(4)}
		for _, u := range users {
			s.Credit(u, wei.Amount(rng.Int63n(1000)))
		}
		want := s.TotalBalance()
		for i := 0; i < int(steps); i++ {
			from := users[rng.Intn(len(users))]
			to := users[rng.Intn(len(users))]
			amt := wei.Amount(rng.Int63n(500))
			if err := s.Debit(from, amt); err == nil {
				s.Credit(to, amt)
			}
		}
		return s.TotalBalance() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccountsSorted(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		s.Credit(chainid.UserAddress(i), 1)
	}
	addrs := s.Accounts()
	if len(addrs) != 20 {
		t.Fatalf("Accounts() returned %d entries", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if string(addrs[i-1][:]) >= string(addrs[i][:]) {
			t.Fatal("Accounts() not sorted")
		}
	}
}
