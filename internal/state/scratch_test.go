package state

import (
	"testing"

	"parole/internal/chainid"
	"parole/internal/wei"
)

// buildWorld returns a small populated state: two funded accounts and one
// deployed NFT contract with a token already minted to alice.
func buildWorld(t *testing.T) *State {
	t.Helper()
	s := New()
	s.Credit(alice, wei.FromFloat(2.0))
	s.Credit(bob, wei.FromFloat(1.0))
	c := newPT(t)
	if err := s.DeployToken(c); err != nil {
		t.Fatalf("DeployToken: %v", err)
	}
	if err := c.Mint(alice, 0); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	return s
}

func TestScratchRevertRestoresBase(t *testing.T) {
	s := buildWorld(t)
	baseRoot := s.Root()

	sc := NewScratch(s)
	if got := sc.State().Root(); got != baseRoot {
		t.Fatal("fresh scratch root differs from base root")
	}

	c, err := sc.Token(chainid.DeriveAddress("pt-contract"))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	sc.Credit(bob, wei.FromFloat(0.5))
	if err := sc.Debit(alice, wei.FromFloat(1.0)); err != nil {
		t.Fatalf("Debit: %v", err)
	}
	sc.BumpNonce(alice)
	if err := sc.MintToken(c, bob, 1); err != nil {
		t.Fatalf("MintToken: %v", err)
	}
	if err := sc.TransferToken(c, 0, alice, bob); err != nil {
		t.Fatalf("TransferToken: %v", err)
	}
	if err := sc.BurnToken(c, 1, bob); err != nil {
		t.Fatalf("BurnToken: %v", err)
	}
	if sc.State().Root() == baseRoot {
		t.Fatal("mutations did not change the working root")
	}

	sc.Revert()
	if got := sc.State().Root(); got != baseRoot {
		t.Fatalf("Revert root = %x, want base %x", got, baseRoot)
	}
	if got := sc.Balance(alice); got != wei.FromFloat(2.0) {
		t.Fatalf("alice balance after revert = %s", got)
	}
	if got := sc.Nonce(alice); got != 0 {
		t.Fatalf("alice nonce after revert = %d", got)
	}
	if !c.Owns(alice, 0) || c.Minted() != 1 {
		t.Fatal("token state not restored")
	}
	// The base itself must never have moved.
	if got := s.Root(); got != baseRoot {
		t.Fatal("base state was mutated through the scratch")
	}
}

func TestScratchRevertToWatermark(t *testing.T) {
	s := buildWorld(t)
	sc := NewScratch(s)

	sc.Credit(alice, wei.FromFloat(0.1))
	mark := sc.Mark()
	midRoot := sc.State().Root()

	sc.Credit(bob, wei.FromFloat(0.2))
	sc.BumpNonce(bob)
	if sc.State().Root() == midRoot {
		t.Fatal("suffix writes did not change root")
	}

	sc.RevertTo(mark)
	if got := sc.State().Root(); got != midRoot {
		t.Fatal("RevertTo did not restore the watermark state")
	}
	if sc.Len() != mark {
		t.Fatalf("journal len = %d, want %d", sc.Len(), mark)
	}
	// Reverting to the current mark is a no-op.
	sc.RevertTo(sc.Mark())
	if got := sc.State().Root(); got != midRoot {
		t.Fatal("no-op RevertTo changed state")
	}
}

func TestScratchFailedDebitHarmless(t *testing.T) {
	s := buildWorld(t)
	sc := NewScratch(s)
	root := sc.State().Root()

	if err := sc.Debit(alice, wei.FromFloat(100)); err == nil {
		t.Fatal("overdraft debit succeeded")
	}
	if got := sc.State().Root(); got != root {
		t.Fatal("failed debit changed state")
	}
	sc.Revert() // the leftover identical-restore entry must be harmless
	if got := sc.State().Root(); got != root {
		t.Fatal("revert after failed debit changed state")
	}
}

func TestScratchInvalidMarkPanics(t *testing.T) {
	sc := NewScratch(New())
	for _, mark := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RevertTo(%d) did not panic", mark)
				}
			}()
			sc.RevertTo(mark)
		}()
	}
}

func TestRootCacheTracksTokenMutations(t *testing.T) {
	s := buildWorld(t)
	r1 := s.Root()
	if got := s.Root(); got != r1 {
		t.Fatal("repeated Root changed")
	}

	// Token mutations bypass the State entirely; the version-sum fingerprint
	// must still invalidate the cached root.
	c, err := s.Token(chainid.DeriveAddress("pt-contract"))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	if err := c.Mint(bob, 1); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	r2 := s.Root()
	if r2 == r1 {
		t.Fatal("root cache served a stale root after a direct token mutation")
	}

	// Account writes flip the dirty flag.
	s.Credit(alice, 1)
	if s.Root() == r2 {
		t.Fatal("root cache served a stale root after an account write")
	}

	// Cached and recomputed roots agree with a cold clone's root.
	if got, want := s.Root(), s.Clone().Root(); got != want {
		t.Fatalf("cached root %x != cold-clone root %x", got, want)
	}
}
