package state

import (
	"errors"
	"strconv"
	"testing"
	"testing/quick"

	"parole/internal/chainid"
	weipkg "parole/internal/wei"
)

func leafSet(n int) []chainid.Hash {
	leaves := make([]chainid.Hash, n)
	for i := range leaves {
		leaves[i] = chainid.HashBytes([]byte("leaf-" + strconv.Itoa(i)))
	}
	return leaves
}

func TestMerkleRootEmptyAndSingle(t *testing.T) {
	if MerkleRoot(nil) != emptyLeaf {
		t.Error("empty root should be the empty digest")
	}
	one := leafSet(1)
	if MerkleRoot(one) != one[0] {
		t.Error("single-leaf root should be the leaf itself")
	}
}

func TestMerkleRootDistinguishesSizes(t *testing.T) {
	// A k-leaf tree must not equal the tree over a prefix.
	seen := make(map[chainid.Hash]int)
	for n := 0; n <= 9; n++ {
		root := MerkleRoot(leafSet(n))
		if prev, dup := seen[root]; dup {
			t.Fatalf("trees of %d and %d leaves share a root", prev, n)
		}
		seen[root] = n
	}
}

func TestMerkleRootOrderSensitive(t *testing.T) {
	leaves := leafSet(4)
	root := MerkleRoot(leaves)
	leaves[0], leaves[1] = leaves[1], leaves[0]
	if MerkleRoot(leaves) == root {
		t.Fatal("leaf order does not affect root")
	}
}

func TestBuildProofAllIndices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33} {
		leaves := leafSet(n)
		root := MerkleRoot(leaves)
		for i := 0; i < n; i++ {
			proof, err := BuildProof(leaves, i)
			if err != nil {
				t.Fatalf("BuildProof(n=%d, i=%d): %v", n, i, err)
			}
			if !proof.Verify(root) {
				t.Fatalf("proof for leaf %d of %d failed to verify", i, n)
			}
		}
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	leaves := leafSet(8)
	proof, err := BuildProof(leaves, 3)
	if err != nil {
		t.Fatal(err)
	}
	other := MerkleRoot(leafSet(9))
	if proof.Verify(other) {
		t.Fatal("proof verified against the wrong root")
	}
}

func TestProofRejectsTamperedLeaf(t *testing.T) {
	leaves := leafSet(8)
	root := MerkleRoot(leaves)
	proof, err := BuildProof(leaves, 3)
	if err != nil {
		t.Fatal(err)
	}
	proof.Leaf = chainid.HashBytes([]byte("forged"))
	if proof.Verify(root) {
		t.Fatal("tampered leaf verified")
	}
}

func TestBuildProofBadIndex(t *testing.T) {
	leaves := leafSet(4)
	for _, i := range []int{-1, 4, 100} {
		if _, err := BuildProof(leaves, i); !errors.Is(err, ErrBadProof) {
			t.Errorf("BuildProof(i=%d) = %v, want ErrBadProof", i, err)
		}
	}
}

func TestProofQuick(t *testing.T) {
	f := func(sizeRaw uint8, idxRaw uint8) bool {
		n := int(sizeRaw)%64 + 1
		i := int(idxRaw) % n
		leaves := leafSet(n)
		proof, err := BuildProof(leaves, i)
		if err != nil {
			return false
		}
		return proof.Verify(MerkleRoot(leaves))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccountProofAgainstStateRoot(t *testing.T) {
	s := New()
	for i := 0; i < 13; i++ {
		s.Credit(chainid.UserAddress(i), weipkg.Amount(i+1))
	}
	root := s.Root()
	for i := 0; i < 13; i++ {
		proof, err := s.AccountProof(chainid.UserAddress(i))
		if err != nil {
			t.Fatalf("AccountProof(%d): %v", i, err)
		}
		if !proof.Verify(root) {
			t.Fatalf("account proof %d failed against state root", i)
		}
	}
	if _, err := s.AccountProof(chainid.UserAddress(999)); err == nil {
		t.Fatal("proof for absent account should fail")
	}
}
