package state

import (
	"fmt"

	"parole/internal/chainid"
	"parole/internal/telemetry"
	"parole/internal/token"
	"parole/internal/wei"
)

// Journal metrics (docs/METRICS.md §state). Writes are counted per journal
// entry, reverts per RevertTo call; reverted_entries is the undo volume —
// with prefix checkpointing it stays well below writes, which is the whole
// point of the journal.
var (
	mJournalScratches = telemetry.Default().Counter("state.journal.scratches")
	mJournalWrites    = telemetry.Default().Counter("state.journal.writes")
	mJournalReverts   = telemetry.Default().Counter("state.journal.reverts")
	mJournalReverted  = telemetry.Default().Counter("state.journal.reverted_entries")
)

// entryKind tags one journal record.
type entryKind uint8

const (
	entryAccount entryKind = iota + 1
	entryToken
)

// scratchEntry is one undo record: for entryAccount it carries the previous
// account record for addr (including whether the map key existed, so Revert
// restores the exact leaf set); for entryToken the payload lives at the
// matching position of the Scratch's token-undo stack. Keeping the token
// Undo out of line halves the bytes copied per account write, and account
// writes are ~3× as frequent as token writes (debit + credit + nonce per
// executed transfer versus one ownership change).
type scratchEntry struct {
	kind    entryKind
	existed bool
	addr    chainid.Address
	prev    Account
}

// Scratch is a journaled copy-on-write evaluation view over a frozen base
// State. Construction pays one deep Clone; every mutation afterwards is
// applied in place to the private copy and recorded in an undo log, so
// rolling back a candidate evaluation costs O(entries written) instead of a
// fresh O(world) clone per candidate. That inverts the cost model of the
// Fig. 11 hot path: the solvers evaluate tens of thousands of candidate
// orders against one base state, and with a Scratch they pay for the state
// once and for the diffs per candidate.
//
// The base State is never touched after construction and must not be
// mutated by anyone else while the Scratch lives. A Scratch is not safe for
// concurrent use; parallel searchers hold one Scratch per worker.
type Scratch struct {
	base   *State // frozen original, kept for Reset and invariant checks
	st     *State // private working copy, mutated in place
	log    []scratchEntry
	tokLog []token.Undo // payloads for entryToken records, in log order

	// writes counts journal entries ever recorded; reported is the portion
	// already flushed to the telemetry counter. Batching the flush keeps the
	// innermost write loop free of atomic operations (FlushMetrics runs once
	// per evaluation, and RevertTo flushes so snapshots never miss entries
	// that were recorded and then undone).
	writes   int64
	reported int64

	// One-entry token-contract cache. The working state's contract set is
	// fixed for the Scratch's lifetime (deploys don't go through Scratch)
	// and candidate batches overwhelmingly touch one contract, so caching
	// the last lookup removes a map probe per transaction. Contract
	// pointers survive reverts (reverts mutate contract state in place),
	// so the cache never needs invalidation.
	lastTokAddr chainid.Address
	lastTok     *token.Contract
}

// NewScratch builds a scratch view over base.
func NewScratch(base *State) *Scratch {
	mJournalScratches.Inc()
	return &Scratch{base: base, st: base.Clone()}
}

// Base returns the frozen base state the scratch was built over.
func (s *Scratch) Base() *State { return s.base }

// State returns the working state the journal mutates. Callers may read it
// freely (e.g. Root for a post-state commitment) but must route every
// mutation through the Scratch, or Revert cannot restore the base.
func (s *Scratch) State() *State { return s.st }

// Mark returns the current journal watermark. Passing it to RevertTo rolls
// the working state back to this exact point; solver prefix checkpointing
// stores one mark per sequence position.
func (s *Scratch) Mark() int { return len(s.log) }

// Len returns the number of journal entries currently live (same as Mark;
// kept for readability at call sites that mean "how much is written").
func (s *Scratch) Len() int { return len(s.log) }

// FlushMetrics publishes any not-yet-reported journal writes to the
// `state.journal.writes` counter. The per-entry count is kept in a plain
// field so the hot write path performs no atomic operations; callers that
// care about fresh counters (the Evaluator, snapshot points) flush at
// evaluation boundaries.
func (s *Scratch) FlushMetrics() {
	if d := s.writes - s.reported; d > 0 {
		mJournalWrites.Add(d)
		s.reported = s.writes
	}
}

// RevertTo undoes every write after the given watermark, newest first.
func (s *Scratch) RevertTo(mark int) {
	if mark < 0 || mark > len(s.log) {
		panic("state: revert to invalid journal mark")
	}
	if mark == len(s.log) {
		return
	}
	s.FlushMetrics()
	mJournalReverts.Inc()
	mJournalReverted.Add(int64(len(s.log) - mark))
	for i := len(s.log) - 1; i >= mark; i-- {
		e := &s.log[i]
		switch e.kind {
		case entryAccount:
			if e.existed {
				s.st.accounts[e.addr] = e.prev
			} else {
				delete(s.st.accounts, e.addr)
			}
			// The restored record is noted like any other write; if it is
			// byte-identical to what the last Root() hashed (a fully rolled
			// back candidate), the pending entry resolves to a no-op and the
			// cached root stays valid without recomputation.
			s.st.noteAccountWrite(e.addr)
		case entryToken:
			last := len(s.tokLog) - 1
			s.tokLog[last].Revert()
			s.tokLog = s.tokLog[:last]
		}
	}
	s.log = s.log[:mark]
}

// Revert rolls the working state all the way back to the base.
func (s *Scratch) Revert() { s.RevertTo(0) }

// noteAccount journals addr's current record before a write.
func (s *Scratch) noteAccount(addr chainid.Address) {
	acct, ok := s.st.accounts[addr]
	s.log = append(s.log, scratchEntry{kind: entryAccount, addr: addr, prev: acct, existed: ok})
	s.writes++
}

// noteToken journals a token-side undo.
func (s *Scratch) noteToken(u token.Undo) {
	s.log = append(s.log, scratchEntry{kind: entryToken})
	s.tokLog = append(s.tokLog, u)
	s.writes++
}

// Balance returns addr's balance in the working state.
func (s *Scratch) Balance(addr chainid.Address) wei.Amount { return s.st.Balance(addr) }

// Nonce returns addr's nonce in the working state.
func (s *Scratch) Nonce(addr chainid.Address) uint64 { return s.st.Nonce(addr) }

// Token returns the working copy of the contract deployed at addr. Mutate
// it only through MintToken/TransferToken/BurnToken.
func (s *Scratch) Token(addr chainid.Address) (*token.Contract, error) {
	if s.lastTok != nil && addr == s.lastTokAddr {
		return s.lastTok, nil
	}
	c, err := s.st.Token(addr)
	if err != nil {
		return nil, err
	}
	s.lastTokAddr, s.lastTok = addr, c
	return c, nil
}

// TotalWealth returns addr's balance plus NFT mark-to-market in the working
// state.
func (s *Scratch) TotalWealth(addr chainid.Address) wei.Amount { return s.st.TotalWealth(addr) }

// The account mutators below inline the journal + write pair around a
// single map lookup instead of composing noteAccount with the State
// methods: one hash-and-probe per operation instead of three. These are the
// innermost writes of the candidate-evaluation hot path, and the map
// accesses dominate its profile.

// Credit journals and applies a balance credit.
func (s *Scratch) Credit(addr chainid.Address, amount wei.Amount) {
	if amount < 0 {
		panic("state: negative credit")
	}
	acct, ok := s.st.accounts[addr]
	s.log = append(s.log, scratchEntry{kind: entryAccount, addr: addr, prev: acct, existed: ok})
	s.writes++
	acct.Balance += amount
	s.st.accounts[addr] = acct
	s.st.noteAccountWrite(addr)
}

// Debit journals and applies a balance debit. On failure the working state
// and the journal are both untouched.
func (s *Scratch) Debit(addr chainid.Address, amount wei.Amount) error {
	if amount < 0 {
		panic("state: negative debit")
	}
	acct, ok := s.st.accounts[addr]
	if acct.Balance < amount {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance, addr, acct.Balance, amount)
	}
	s.log = append(s.log, scratchEntry{kind: entryAccount, addr: addr, prev: acct, existed: ok})
	s.writes++
	acct.Balance -= amount
	s.st.accounts[addr] = acct
	s.st.noteAccountWrite(addr)
	return nil
}

// BumpNonce journals and applies a nonce increment.
func (s *Scratch) BumpNonce(addr chainid.Address) uint64 {
	acct, ok := s.st.accounts[addr]
	s.log = append(s.log, scratchEntry{kind: entryAccount, addr: addr, prev: acct, existed: ok})
	s.writes++
	acct.Nonce++
	s.st.accounts[addr] = acct
	s.st.noteAccountWrite(addr)
	return acct.Nonce
}

// MintToken journals and applies a mint on the working copy c.
func (s *Scratch) MintToken(c *token.Contract, owner chainid.Address, id uint64) error {
	u, err := c.JournalMint(owner, id)
	if err != nil {
		return err
	}
	s.noteToken(u)
	return nil
}

// TransferToken journals and applies a transfer on the working copy c.
func (s *Scratch) TransferToken(c *token.Contract, id uint64, from, to chainid.Address) error {
	u, err := c.JournalTransfer(id, from, to)
	if err != nil {
		return err
	}
	s.noteToken(u)
	return nil
}

// BurnToken journals and applies a burn on the working copy c.
func (s *Scratch) BurnToken(c *token.Contract, id uint64, owner chainid.Address) error {
	u, err := c.JournalBurn(id, owner)
	if err != nil {
		return err
	}
	s.noteToken(u)
	return nil
}
