package state

import (
	"math/rand"
	"testing"

	"parole/internal/chainid"
	"parole/internal/token"
	"parole/internal/wei"
)

// TestIncrementalRootMatchesColdRebuild is the property test pinning the
// incremental tree to the reference: across randomized write / journal /
// rollback sequences — direct State writes, Scratch writes, partial and full
// reverts, new-account creation, token mutations, deployments — Root() must
// equal a cold MerkleRoot rebuild over the current leaves after every step.
func TestIncrementalRootMatchesColdRebuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		st := New()

		users := make([]chainid.Address, 24)
		for i := range users {
			users[i] = chainid.UserAddress(i)
			st.SetBalance(users[i], wei.FromETH(100))
		}
		tok, err := token.Deploy(chainid.DeriveAddress("inc-pt"), token.Config{
			Name: "PT", Symbol: "PT", MaxSupply: 512, InitialPrice: wei.FromETH(1) / 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.DeployToken(tok); err != nil {
			t.Fatal(err)
		}
		nextID := uint64(0)

		check := func(step string) {
			t.Helper()
			if got, want := st.Root(), st.ColdRoot(); got != want {
				t.Fatalf("seed %d, %s: incremental root %s != cold rebuild %s", seed, step, got, want)
			}
		}
		check("initial")

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // direct balance write on a known account
				st.Credit(users[rng.Intn(len(users))], wei.Amount(1+rng.Int63n(1e9)))
			case op < 4: // nonce bump
				st.BumpNonce(users[rng.Intn(len(users))])
			case op < 5: // brand-new account record (structural change)
				st.SetBalance(chainid.UserAddress(1000+rng.Intn(1<<16)), wei.Amount(rng.Int63n(1e9)))
			case op < 6: // token mutation without going through the State
				if err := tok.Mint(users[rng.Intn(len(users))], nextID); err == nil {
					nextID++
				}
			case op < 7: // no-op between two Root() calls (cache-hit path)
			default: // journaled Scratch episode with partial + full rollback
				sc := NewScratch(st)
				w := sc.State()
				mark := -1
				for k, n := 0, 2+rng.Intn(12); k < n; k++ {
					if k == n/2 {
						mark = sc.Mark()
					}
					u := users[rng.Intn(len(users))]
					switch rng.Intn(4) {
					case 0:
						sc.Credit(u, wei.Amount(1+rng.Int63n(1e9)))
					case 1:
						_ = sc.Debit(u, wei.Amount(1+rng.Int63n(1e9)))
					case 2:
						sc.BumpNonce(u)
					case 3:
						sc.Credit(chainid.UserAddress(2000+rng.Intn(1<<16)), wei.Amount(1+rng.Int63n(1e6)))
					}
					if rng.Intn(3) == 0 {
						if got, want := w.Root(), w.ColdRoot(); got != want {
							t.Fatalf("seed %d, scratch mid-episode: %s != %s", seed, got, want)
						}
					}
				}
				if got, want := w.Root(), w.ColdRoot(); got != want {
					t.Fatalf("seed %d, scratch pre-revert: %s != %s", seed, got, want)
				}
				if mark >= 0 && rng.Intn(2) == 0 {
					sc.RevertTo(mark)
					if got, want := w.Root(), w.ColdRoot(); got != want {
						t.Fatalf("seed %d, scratch partial revert: %s != %s", seed, got, want)
					}
				}
				sc.Revert()
				if got, want := w.Root(), w.ColdRoot(); got != want {
					t.Fatalf("seed %d, scratch full revert: %s != %s", seed, got, want)
				}
				if got, want := w.Root(), st.Root(); got != want {
					t.Fatalf("seed %d, reverted scratch root %s != base root %s", seed, got, want)
				}
			}
			check("step")
		}
	}
}

// TestIncrementalRootAcrossDeployments covers the structural path: deploying
// additional contracts between Root() calls must rebuild correctly.
func TestIncrementalRootAcrossDeployments(t *testing.T) {
	st := New()
	st.SetBalance(chainid.UserAddress(1), wei.FromETH(5))
	r1 := st.Root()
	if r1 != st.ColdRoot() {
		t.Fatal("pre-deploy root mismatch")
	}
	for i := 0; i < 3; i++ {
		tok, err := token.Deploy(chainid.UserAddress(500+i), token.Config{
			Name: "T", Symbol: "T", MaxSupply: 10, InitialPrice: 1e9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.DeployToken(tok); err != nil {
			t.Fatal(err)
		}
		if got, want := st.Root(), st.ColdRoot(); got != want {
			t.Fatalf("after deploy %d: %s != %s", i, got, want)
		}
	}
}

// TestEmptyStateRoot pins the empty-tree special case.
func TestEmptyStateRoot(t *testing.T) {
	st := New()
	if got, want := st.Root(), MerkleRoot(nil); got != want {
		t.Fatalf("empty root = %s, want %s", got, want)
	}
	// And it stays correct once the first leaf appears.
	st.SetBalance(chainid.UserAddress(9), 1)
	if got, want := st.Root(), st.ColdRoot(); got != want {
		t.Fatalf("first-leaf root = %s, want %s", got, want)
	}
}

// TestRolledBackScratchKeepsRootCacheValid is the regression test for the
// spurious-recompute bug: a Scratch episode that is fully rolled back must
// leave the working state's cached root valid — the next Root() may hash the
// touched leaves to discover nothing changed, but it must not rebuild the
// tree or recompute a single interior node.
func TestRolledBackScratchKeepsRootCacheValid(t *testing.T) {
	st := New()
	for i := 0; i < 16; i++ {
		st.SetBalance(chainid.UserAddress(i), wei.FromETH(10))
	}
	sc := NewScratch(st)
	w := sc.State()
	before := w.Root() // builds the working copy's tree

	mark := sc.Mark()
	sc.Credit(chainid.UserAddress(3), 123)
	sc.BumpNonce(chainid.UserAddress(5))
	sc.Credit(chainid.UserAddress(900), 7) // brand-new record, also rolled back
	sc.RevertTo(mark)

	computes := mRootComputes.Value()
	incremental := mRootIncremental.Value()
	hits := mRootCacheHits.Value()
	if got := w.Root(); got != before {
		t.Fatalf("root after rollback = %s, want %s", got, before)
	}
	if d := mRootComputes.Value() - computes; d != 0 {
		t.Errorf("rolled-back scratch triggered %d full rebuild(s)", d)
	}
	if d := mRootIncremental.Value() - incremental; d != 0 {
		t.Errorf("rolled-back scratch triggered %d incremental update(s)", d)
	}
	if d := mRootCacheHits.Value() - hits; d != 1 {
		t.Errorf("cache hits advanced by %d, want 1", d)
	}
	// The pending set must also be drained: a second read is a pure hit.
	hits = mRootCacheHits.Value()
	if got := w.Root(); got != before {
		t.Fatalf("second root read = %s, want %s", got, before)
	}
	if d := mRootCacheHits.Value() - hits; d != 1 {
		t.Errorf("second read: cache hits advanced by %d, want 1", d)
	}
}

// TestPartialRollbackRecomputesOnlyChangedPaths checks the counters on the
// mixed case: two leaves written, one write rolled back — exactly one leaf
// recomputes its root path.
func TestPartialRollbackRecomputesOnlyChangedPaths(t *testing.T) {
	st := New()
	for i := 0; i < 16; i++ {
		st.SetBalance(chainid.UserAddress(i), wei.FromETH(10))
	}
	sc := NewScratch(st)
	w := sc.State()
	w.Root()

	sc.Credit(chainid.UserAddress(1), 50)
	mark := sc.Mark()
	sc.Credit(chainid.UserAddress(2), 60)
	sc.RevertTo(mark)

	dirty := mRootDirtyLeaves.Value()
	unchanged := mRootUnchanged.Value()
	if got, want := w.Root(), w.ColdRoot(); got != want {
		t.Fatalf("root = %s, want %s", got, want)
	}
	if d := mRootDirtyLeaves.Value() - dirty; d != 1 {
		t.Errorf("dirty leaves = %d, want 1 (only the surviving write)", d)
	}
	if d := mRootUnchanged.Value() - unchanged; d != 1 {
		t.Errorf("unchanged leaves = %d, want 1 (the rolled-back write)", d)
	}
}

// TestAccountProofStillVerifiesAfterIncrementalUpdates ensures the proof
// path (built from raw leaves) agrees with the incrementally maintained
// root.
func TestAccountProofStillVerifiesAfterIncrementalUpdates(t *testing.T) {
	st := New()
	for i := 0; i < 9; i++ {
		st.SetBalance(chainid.UserAddress(i), wei.FromETH(1))
	}
	st.Root()
	st.Credit(chainid.UserAddress(4), 999)
	root := st.Root()
	proof, err := st.AccountProof(chainid.UserAddress(4))
	if err != nil {
		t.Fatal(err)
	}
	if !proof.Verify(root) {
		t.Fatal("proof does not verify against the incremental root")
	}
}
