// Package state holds the L2 world state of the PAROLE rollup simulator:
// account balances/nonces plus the deployed limited-edition NFT contracts,
// and the Merkle commitment over all of it that aggregators submit as the
// fraud-proof state root (Section V-A).
package state

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"parole/internal/chainid"
	"parole/internal/telemetry"
	"parole/internal/token"
	"parole/internal/wei"
)

// Root-cache effectiveness metrics (docs/METRICS.md §state). Deterministic
// counts; the cache never changes a returned root, only how much of the leaf
// tree is rebuilt. See incremental.go for the incremental-update counters.
var (
	mRootComputes  = telemetry.Default().Counter("state.root.computes")
	mRootCacheHits = telemetry.Default().Counter("state.root.cache_hits")
)

// Errors returned by state operations.
var (
	ErrInsufficientBalance = errors.New("state: insufficient balance")
	ErrUnknownToken        = errors.New("state: unknown token contract")
	ErrTokenExists         = errors.New("state: token contract already deployed")
)

// Account is the L2-side record for one address: its t^L2 token balance and
// transaction nonce.
type Account struct {
	Balance wei.Amount
	Nonce   uint64
}

// State is the mutable L2 world state. It is not safe for concurrent
// mutation; the rollup layer serializes access, and the OVM works on clones
// or journaled Scratch views.
type State struct {
	accounts map[chainid.Address]Account
	tokens   map[chainid.Address]*token.Contract

	// Root-cache fields: the Merkle root is a pure function of the leaves
	// and is memoized behind the incremental tree (incremental.go). Account
	// writes mark their address pending on the tree; token mutations are
	// detected by comparing the monotone per-contract version counters,
	// since callers mutate contracts without going through the State. Root()
	// recomputes only the root paths of leaves that actually changed; a nil
	// tree (fresh or cloned state) rebuilds in full on first use.
	cachedRoot chainid.Hash
	tree       *itree
}

// New returns an empty world state.
func New() *State {
	return &State{
		accounts: make(map[chainid.Address]Account),
		tokens:   make(map[chainid.Address]*token.Contract),
	}
}

// Account returns the account record for addr (zero-valued if untouched).
func (s *State) Account(addr chainid.Address) Account { return s.accounts[addr] }

// Balance returns addr's L2 token balance.
func (s *State) Balance(addr chainid.Address) wei.Amount { return s.accounts[addr].Balance }

// SetBalance overwrites addr's balance. Intended for scenario setup; the
// execution path uses Credit/Debit so conservation is auditable.
func (s *State) SetBalance(addr chainid.Address, amount wei.Amount) {
	acct := s.accounts[addr]
	acct.Balance = amount
	s.accounts[addr] = acct
	s.noteAccountWrite(addr)
}

// Credit adds amount (which must be non-negative) to addr's balance.
func (s *State) Credit(addr chainid.Address, amount wei.Amount) {
	if amount < 0 {
		panic("state: negative credit") // programmer error, not a runtime condition
	}
	acct := s.accounts[addr]
	acct.Balance += amount
	s.accounts[addr] = acct
	s.noteAccountWrite(addr)
}

// Debit removes amount from addr's balance, failing if it would go negative.
func (s *State) Debit(addr chainid.Address, amount wei.Amount) error {
	if amount < 0 {
		panic("state: negative debit")
	}
	acct := s.accounts[addr]
	if acct.Balance < amount {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance, addr, acct.Balance, amount)
	}
	acct.Balance -= amount
	s.accounts[addr] = acct
	s.noteAccountWrite(addr)
	return nil
}

// Nonce returns addr's current nonce.
func (s *State) Nonce(addr chainid.Address) uint64 { return s.accounts[addr].Nonce }

// BumpNonce increments addr's nonce and returns the new value.
func (s *State) BumpNonce(addr chainid.Address) uint64 {
	acct := s.accounts[addr]
	acct.Nonce++
	s.accounts[addr] = acct
	s.noteAccountWrite(addr)
	return acct.Nonce
}

// DeployToken registers a new NFT contract in the state.
func (s *State) DeployToken(c *token.Contract) error {
	if _, exists := s.tokens[c.Address()]; exists {
		return fmt.Errorf("%w: %s", ErrTokenExists, c.Address())
	}
	s.tokens[c.Address()] = c
	s.noteStructuralChange()
	return nil
}

// Token returns the NFT contract deployed at addr.
func (s *State) Token(addr chainid.Address) (*token.Contract, error) {
	c, ok := s.tokens[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownToken, addr)
	}
	return c, nil
}

// Tokens returns the deployed contracts sorted by address.
func (s *State) Tokens() []*token.Contract {
	out := make([]*token.Contract, 0, len(s.tokens))
	for _, c := range s.tokens {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Address(), out[j].Address()
		return string(a[:]) < string(b[:])
	})
	return out
}

// TotalBalance sums the L2 balances of the given addresses; with no
// arguments it sums every account. Conservation tests lean on this.
func (s *State) TotalBalance(addrs ...chainid.Address) wei.Amount {
	var total wei.Amount
	if len(addrs) == 0 {
		for _, acct := range s.accounts {
			total += acct.Balance
		}
		return total
	}
	for _, a := range addrs {
		total += s.accounts[a].Balance
	}
	return total
}

// TotalWealth returns addr's L2 balance plus the mark-to-market value of all
// its NFT holdings — the "IFU total balance" of the paper's case studies.
func (s *State) TotalWealth(addr chainid.Address) wei.Amount {
	total := s.Balance(addr)
	for _, c := range s.tokens {
		total += c.HoldingsValue(addr)
	}
	return total
}

// Accounts returns the addresses with a non-zero account record, sorted.
func (s *State) Accounts() []chainid.Address {
	out := make([]chainid.Address, 0, len(s.accounts))
	for a := range s.accounts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i][:]) < string(out[j][:]) })
	return out
}

// Clone returns an independent deep copy of the state. The OVM clones before
// executing every candidate sequence.
func (s *State) Clone() *State {
	c := &State{
		accounts: make(map[chainid.Address]Account, len(s.accounts)),
		tokens:   make(map[chainid.Address]*token.Contract, len(s.tokens)),
	}
	for a, acct := range s.accounts {
		c.accounts[a] = acct
	}
	for a, tc := range s.tokens {
		c.tokens[a] = tc.Clone()
	}
	return c
}

// MintToken applies a mint on c. Token mutations route through the State so
// the clone-based and journaled (Scratch) execution paths share one call
// surface; see ovm's execState interface.
func (s *State) MintToken(c *token.Contract, owner chainid.Address, id uint64) error {
	return c.Mint(owner, id)
}

// TransferToken applies a transfer on c; see MintToken.
func (s *State) TransferToken(c *token.Contract, id uint64, from, to chainid.Address) error {
	return c.Transfer(id, from, to)
}

// BurnToken applies a burn on c; see MintToken.
func (s *State) BurnToken(c *token.Contract, id uint64, owner chainid.Address) error {
	return c.Burn(id, owner)
}

// leaves produces the canonical leaf hashes of the state tree.
func (s *State) leaves() []chainid.Hash {
	addrs := s.Accounts()
	leaves := make([]chainid.Hash, 0, len(addrs)+len(s.tokens))
	for _, a := range addrs {
		leaves = append(leaves, accountLeaf(a, s.accounts[a]))
	}
	for _, c := range s.Tokens() {
		leaves = append(leaves, c.StateDigest())
	}
	return leaves
}

// AccountProof produces a Merkle membership proof for addr's account record,
// suitable for the dispute game: a verifier can check a single account
// against a claimed root without the full state.
func (s *State) AccountProof(addr chainid.Address) (Proof, error) {
	addrs := s.Accounts()
	idx := -1
	for i, a := range addrs {
		if a == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Proof{}, fmt.Errorf("state: no account record for %s", addr)
	}
	return BuildProof(s.leaves(), idx)
}

// accountLeaf hashes one account record into a leaf.
func accountLeaf(addr chainid.Address, acct Account) chainid.Hash {
	buf := make([]byte, chainid.AddressLen+16)
	copy(buf, addr[:])
	binary.BigEndian.PutUint64(buf[chainid.AddressLen:], uint64(acct.Balance))
	binary.BigEndian.PutUint64(buf[chainid.AddressLen+8:], acct.Nonce)
	return chainid.HashBytes([]byte("parole/account"), buf)
}
