package trace

// Span kinds recorded by the instrumented packages. docs/TRACING.md
// documents each with the pipeline stage it covers; keep both in sync
// (internal/telemetry/docs_test.go checks the table).
const (
	// SpanMempoolCollect covers one mempool batch collection.
	SpanMempoolCollect = "mempool.collect"
	// SpanArbitrageAssess covers one Section V-B opportunity screen.
	SpanArbitrageAssess = "arbitrage.assess"
	// SpanGenOptimize covers one full GENTRANSEQ Optimize run.
	SpanGenOptimize = "gentranseq.optimize"
	// SpanGenEpisode covers one DQN training episode.
	SpanGenEpisode = "gentranseq.episode"
	// SpanGenGreedy covers one greedy (ε = 0) inference rollout.
	SpanGenGreedy = "gentranseq.greedy_rollout"
	// SpanSolverSolve covers one baseline solver Solve call.
	SpanSolverSolve = "solver.solve"
	// SpanSolverRestart covers one hill-climb restart (descent to a local
	// optimum from one starting permutation).
	SpanSolverRestart = "solver.hillclimb.restart"
	// SpanOVMExecute covers one full-fidelity sequence execution (Merkle
	// roots included).
	SpanOVMExecute = "ovm.execute"
	// SpanOVMEvaluate covers one root-free candidate evaluation — the hot
	// path of every search backend.
	SpanOVMEvaluate = "ovm.evaluate"
	// SpanCoreOrder covers one adversarial-sequencer ordering decision.
	SpanCoreOrder = "core.order"
	// SpanRollupCommit covers one batch execution + ORSC submission.
	SpanRollupCommit = "rollup.commit"
	// SpanRollupChallenge covers one verifier challenge adjudication.
	SpanRollupChallenge = "rollup.challenge"
	// SpanDefenseInspect covers one Section VIII detector inspection.
	SpanDefenseInspect = "defense.inspect"
	// SpanExperimentPoint covers one point of a registered experiment run
	// by the internal/experiment engine.
	SpanExperimentPoint = "experiment.point"
	// SpanRPCRequest covers one JSON-RPC request handled by parole-node,
	// from envelope decode to response encode.
	SpanRPCRequest = "rpc.request"
	// SpanNodeSeal covers one sequencer sealing pass: mempool collection,
	// batch execution, ORSC submission, and round advancement.
	SpanNodeSeal = "node.seal"
	// SpanStateRootRebuild covers one full rebuild of the incremental Merkle
	// state tree (first Root() on a state, or a leaf-set change); the cheap
	// incremental dirty-path updates are counted by telemetry instead of
	// spanned.
	SpanStateRootRebuild = "state.root.rebuild"
	// SpanMempoolMerge covers the k-way merge of the per-shard fee orders
	// inside one mempool batch collection (child of mempool.collect).
	SpanMempoolMerge = "mempool.merge"
	// SpanBridgeSettle covers one bridge settlement pass over the in-flight
	// cross-rollup transfers (World.AdvanceRound).
	SpanBridgeSettle = "rollup.bridge.settle"
	// SpanDefenseCrossInspect covers one cross-rollup correlation pass over
	// the per-chain batches (defense.CrossDetector.Inspect).
	SpanDefenseCrossInspect = "defense.cross_inspect"
)

// Per-transaction lifecycle stages recorded via Event. A transaction's
// timeline chains mempool.admit → mempool.collect → arbitrage.screen →
// core.reorder → ovm.execute → rollup.commit, with mempool.demote on the
// defense path.
const (
	// StageMempoolAdmit is mempool admission (Pool.Add).
	StageMempoolAdmit = "mempool.admit"
	// StageMempoolDemote is a Section VIII demotion ("send to the block
	// behind").
	StageMempoolDemote = "mempool.demote"
	// StageMempoolCollect is inclusion in a collected batch, with the
	// batch position as an attribute.
	StageMempoolCollect = "mempool.collect"
	// StageArbitrageScreen is the Section V-B screen verdict for a tx that
	// involves an IFU.
	StageArbitrageScreen = "arbitrage.screen"
	// StageCoreReorder is a position change between the fee order and the
	// shipped order (from/to attributes).
	StageCoreReorder = "core.reorder"
	// StageOVMExecute is the execution outcome inside a full-fidelity
	// Execute (executed/skipped/invalid).
	StageOVMExecute = "ovm.execute"
	// StageRollupCommit is inclusion in a committed batch, with the batch
	// id and final status.
	StageRollupCommit = "rollup.commit"
)
