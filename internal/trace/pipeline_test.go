package trace_test

import (
	"fmt"
	"math/rand"
	"testing"

	"parole/internal/casestudy"
	"parole/internal/chainid"
	"parole/internal/core"
	"parole/internal/gentranseq"
	"parole/internal/ovm"
	"parole/internal/rollup"
	"parole/internal/solver"
	"parole/internal/state"
	"parole/internal/token"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// withTracing runs fn with the process-global tracer in the given state and
// restores a clean disabled tracer afterwards.
func withTracing(t *testing.T, on bool, fn func()) {
	t.Helper()
	tr := trace.Default()
	tr.Reset()
	if on {
		tr.Enable()
	} else {
		tr.Disable()
	}
	defer func() {
		tr.Disable()
		tr.Reset()
	}()
	fn()
}

// TestSeededOutputsUnaffectedByTracing is the sibling of telemetry's
// TestSeededOutputsUnaffectedByTelemetry: a seeded solver run and a seeded
// GENTRANSEQ optimization must produce bit-identical outputs whether the
// span tracer records or not. Tracing is passive — it reads clocks and
// copies values but never feeds anything back into computation or RNG
// consumption.
func TestSeededOutputsUnaffectedByTracing(t *testing.T) {
	run := func(tracingOn bool) string {
		var out string
		withTracing(t, tracingOn, func() {
			s, err := casestudy.New()
			if err != nil {
				t.Fatal(err)
			}
			vm := ovm.New()
			ifus := []chainid.Address{casestudy.IFU}
			rng := rand.New(rand.NewSource(7))

			obj, err := solver.NewObjective(vm, s.State, s.Original, ifus)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := solver.Measure(solver.HillClimb{}, rng, obj, solver.Budget{MaxEvaluations: 400})
			if err != nil {
				t.Fatal(err)
			}

			cfg := gentranseq.FastConfig()
			cfg.Episodes, cfg.MaxSteps = 5, 20
			res, err := gentranseq.Optimize(rng, vm, s.State, s.Original, ifus, cfg)
			if err != nil {
				t.Fatal(err)
			}

			out = fmt.Sprintf("solver seq=%v evals=%d imp=%s complete=%v | gen final=%v imp=%s improved=%v swaps=%d rewards=%v",
				sol.Seq, sol.Evaluations, sol.Improvement, sol.Complete,
				res.Final, res.Improvement, res.Improved, res.InferenceSwaps, res.EpisodeRewards)
		})
		return out
	}

	off := run(false)
	on := run(true)
	offAgain := run(false)
	if off != on {
		t.Errorf("seeded outputs differ with tracing on vs off:\noff: %s\non:  %s", off, on)
	}
	if off != offAgain {
		t.Errorf("seeded outputs not reproducible across runs:\n1st: %s\n2nd: %s", off, offAgain)
	}
}

// TestPipelineTimelineCoversFullLifecycle drives the real attack pipeline —
// mempool admission, batch collection, the Section V-B screen, GENTRANSEQ
// search, OVM execution, and ORSC commit — through a rollup deployment with
// an adversarial sequencer, and asserts that an IFU transaction's timeline
// chains every lifecycle stage in causal order.
func TestPipelineTimelineCoversFullLifecycle(t *testing.T) {
	withTracing(t, true, func() {
		node := rollup.NewNode(rollup.Config{ChallengePeriod: 1})
		// Rebuild the Section VI world inside the node's L2 state.
		if err := node.SetupL2(func(st *state.State) error {
			pt, err := token.Deploy(casestudy.PTAddr, token.Config{
				Name: "ParoleToken", Symbol: "PT",
				MaxSupply: 10, InitialPrice: wei.FromFloat(0.2),
			})
			if err != nil {
				return err
			}
			if err := pt.Mint(casestudy.IFU, 0); err != nil {
				return err
			}
			if err := st.DeployToken(pt); err != nil {
				return err
			}
			st.SetBalance(casestudy.IFU, wei.FromETH(2))
			for i := 1; i <= 3; i++ {
				st.SetBalance(chainid.UserAddress(i), wei.FromETH(5))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		u1, u2 := chainid.UserAddress(1), chainid.UserAddress(2)
		// A small batch with the IFU minting, trading, and a price mover, so
		// the screen sees an opportunity. Fees strictly decreasing fix the
		// collection order.
		batch := tx.Seq{
			tx.Transfer(casestudy.PTAddr, 0, casestudy.IFU, u1).WithFees(100, 0),
			tx.Mint(casestudy.PTAddr, 1, u2).WithFees(90, 0),
			tx.Mint(casestudy.PTAddr, 2, casestudy.IFU).WithFees(80, 0),
			tx.Mint(casestudy.PTAddr, 3, u1).WithFees(70, 0),
		}
		for _, bt := range batch {
			if err := node.SubmitTx(bt); err != nil {
				t.Fatal(err)
			}
		}

		cfg := gentranseq.FastConfig()
		cfg.Episodes, cfg.MaxSteps = 3, 12
		seq, err := core.NewSequencer(node.VM(), rand.New(rand.NewSource(11)), core.Config{
			IFUs: []chainid.Address{casestudy.IFU},
			Gen:  cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		aggAddr := chainid.AggregatorAddress(1)
		node.SetupAccount(aggAddr, wei.FromETH(10))
		agg, err := rollup.NewAggregator(node, aggAddr, wei.FromETH(5), len(batch), seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := agg.Step(); err != nil {
			t.Fatal(err)
		}

		// The IFU's mint was submitted with the IFU's then-current nonce (0).
		ifuMint := batch[2].WithNonce(0).Hash().Hex()
		wantChain := []string{
			trace.StageMempoolAdmit,
			trace.StageMempoolCollect,
			trace.StageArbitrageScreen,
			trace.StageOVMExecute,
			trace.StageRollupCommit,
		}
		var ifuEvents []trace.TxEvent
		for _, timeline := range trace.Default().Timeline() {
			if timeline[0].Tx == ifuMint {
				ifuEvents = timeline
				break
			}
		}
		if ifuEvents == nil {
			t.Fatalf("no timeline recorded for IFU tx %s", ifuMint)
		}
		// wantChain must appear as an ordered subsequence (the screen may run
		// more than once, and search spans add no per-tx events).
		next := 0
		for _, e := range ifuEvents {
			if next < len(wantChain) && e.Stage == wantChain[next] {
				next++
			}
		}
		if next != len(wantChain) {
			stages := make([]string, len(ifuEvents))
			for i, e := range ifuEvents {
				stages[i] = e.Stage + "/" + e.Outcome
			}
			t.Fatalf("IFU timeline missing stage %q; got chain %v", wantChain[next], stages)
		}

		// The search itself must have produced spans: GENTRANSEQ optimize with
		// episode children, plus OVM evaluate spans under them.
		sums := map[string]trace.KindSummary{}
		for _, s := range trace.Default().Summary() {
			sums[s.Kind] = s
		}
		for _, kind := range []string{
			trace.SpanMempoolCollect, trace.SpanArbitrageAssess,
			trace.SpanGenOptimize, trace.SpanGenEpisode, trace.SpanGenGreedy,
			trace.SpanOVMExecute, trace.SpanOVMEvaluate,
			trace.SpanCoreOrder, trace.SpanRollupCommit,
		} {
			if sums[kind].Count == 0 {
				t.Errorf("no %s spans recorded by the pipeline", kind)
			}
		}
		if sums[trace.SpanGenEpisode].Count != 3 {
			t.Errorf("episode spans = %d, want 3", sums[trace.SpanGenEpisode].Count)
		}

		// Parent links: every gentranseq.episode span hangs under the
		// gentranseq.optimize span, which hangs under core.order.
		spans := trace.Default().Spans()
		byID := make(map[uint64]trace.SpanRecord, len(spans))
		for _, s := range spans {
			byID[s.ID] = s
		}
		for _, s := range spans {
			switch s.Kind {
			case trace.SpanGenEpisode:
				if p := byID[s.Parent]; p.Kind != trace.SpanGenOptimize {
					t.Errorf("episode span parent = %q, want gentranseq.optimize", p.Kind)
				}
			case trace.SpanGenOptimize:
				if p := byID[s.Parent]; p.Kind != trace.SpanCoreOrder {
					t.Errorf("optimize span parent = %q, want core.order", p.Kind)
				}
			}
		}
	})
}
