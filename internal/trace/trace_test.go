package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerIsStrictNoop(t *testing.T) {
	tr := New()
	if tr.Enabled() {
		t.Fatal("new tracer must start disabled")
	}
	sp := tr.StartSpan("ovm.execute", Int("n", 8))
	if sp != nil {
		t.Fatalf("disabled StartSpan = %v, want nil", sp)
	}
	// Every method must be nil-safe.
	sp.SetAttr(Str("k", "v"))
	sp.End()
	tr.Event("0xabc", StageMempoolAdmit, "ok")
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
	if got := tr.Summary(); len(got) != 0 {
		t.Fatalf("disabled tracer aggregated %d kinds", len(got))
	}
}

func TestNestingParentLinksAndSelfTime(t *testing.T) {
	tr := New()
	tr.Enable()

	root := tr.StartSpan(SpanRollupCommit, Int("batch", 1))
	child := tr.StartSpan(SpanOVMExecute)
	grand := tr.StartSpan(SpanOVMEvaluate)
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	sibling := tr.StartSpan(SpanOVMEvaluate)
	sibling.End()
	root.SetAttr(Bool("ok", true))
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byKindOrder := map[int]string{
		0: SpanOVMEvaluate, 1: SpanOVMExecute, 2: SpanOVMEvaluate, 3: SpanRollupCommit,
	}
	for i, want := range byKindOrder {
		if spans[i].Kind != want {
			t.Errorf("spans[%d].Kind = %q, want %q", i, spans[i].Kind, want)
		}
	}
	grandRec, childRec, sibRec, rootRec := spans[0], spans[1], spans[2], spans[3]
	if rootRec.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootRec.Parent)
	}
	if childRec.Parent != rootRec.ID {
		t.Errorf("child parent = %d, want root id %d", childRec.Parent, rootRec.ID)
	}
	if grandRec.Parent != childRec.ID {
		t.Errorf("grandchild parent = %d, want child id %d", grandRec.Parent, childRec.ID)
	}
	if sibRec.Parent != rootRec.ID {
		t.Errorf("sibling parent = %d, want root id %d", sibRec.Parent, rootRec.ID)
	}
	// Self time: the root's self excludes its two direct children.
	if want := rootRec.Dur - childRec.Dur - sibRec.Dur; rootRec.Self != want {
		t.Errorf("root self = %v, want %v", rootRec.Self, want)
	}
	if want := childRec.Dur - grandRec.Dur; childRec.Self != want {
		t.Errorf("child self = %v, want %v", childRec.Self, want)
	}
	if grandRec.Self != grandRec.Dur {
		t.Errorf("leaf self = %v, want its dur %v", grandRec.Self, grandRec.Dur)
	}
	// Attrs preserved in order, including the late SetAttr.
	if len(rootRec.Attrs) != 2 || rootRec.Attrs[0].Key != "batch" || rootRec.Attrs[1].Key != "ok" {
		t.Errorf("root attrs = %+v, want [batch ok]", rootRec.Attrs)
	}

	sums := tr.Summary()
	if len(sums) != 3 {
		t.Fatalf("got %d summary kinds, want 3", len(sums))
	}
	// Sorted by kind: ovm.evaluate, ovm.execute, rollup.commit.
	if sums[0].Kind != SpanOVMEvaluate || sums[0].Count != 2 {
		t.Errorf("summary[0] = %+v, want ovm.evaluate count 2", sums[0])
	}
	if sums[0].Total != grandRec.Dur+sibRec.Dur {
		t.Errorf("evaluate total = %v, want %v", sums[0].Total, grandRec.Dur+sibRec.Dur)
	}
}

func TestDoubleEndIgnored(t *testing.T) {
	tr := New()
	tr.Enable()
	sp := tr.StartSpan(SpanCoreOrder)
	sp.End()
	sp.End()
	if got := tr.Spans(); len(got) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(got))
	}
	if sums := tr.Summary(); sums[0].Count != 1 {
		t.Fatalf("double End aggregated count %d, want 1", sums[0].Count)
	}
}

func TestLimitsDropDetailButKeepExactSummary(t *testing.T) {
	tr := New()
	tr.Enable()
	tr.SetLimits(3, 2)
	for i := 0; i < 10; i++ {
		tr.StartSpan(SpanOVMEvaluate).End()
		tr.Event(fmt.Sprintf("0x%02x", i), StageMempoolAdmit, "ok")
	}
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("detailed spans = %d, want 3", got)
	}
	if got := len(tr.Events()); got != 2 {
		t.Errorf("detailed events = %d, want 2", got)
	}
	dsp, dev := tr.Dropped()
	if dsp != 7 || dev != 8 {
		t.Errorf("dropped = (%d, %d), want (7, 8)", dsp, dev)
	}
	sums := tr.Summary()
	if len(sums) != 1 || sums[0].Count != 10 {
		t.Fatalf("summary = %+v, want exact count 10 past the cap", sums)
	}
}

func TestConcurrentSpansStayPerGoroutine(t *testing.T) {
	tr := New()
	tr.Enable()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				outer := tr.StartSpan(SpanSolverSolve, Int("worker", int64(w)))
				inner := tr.StartSpan(SpanOVMEvaluate)
				inner.End()
				outer.End()
				tr.Event(fmt.Sprintf("0x%d", w), StageOVMExecute, "executed")
			}
		}(w)
	}
	wg.Wait()

	spans := tr.Spans()
	if len(spans) != workers*50*2 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*50*2)
	}
	byID := make(map[uint64]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		switch s.Kind {
		case SpanOVMEvaluate:
			p, ok := byID[s.Parent]
			if !ok || p.Kind != SpanSolverSolve {
				t.Fatalf("evaluate span parent %d is %+v, want a solver.solve span", s.Parent, p)
			}
			if p.G != s.G {
				t.Fatalf("parent crossed goroutines: child g=%d parent g=%d", s.G, p.G)
			}
		case SpanSolverSolve:
			if s.Parent != 0 {
				t.Fatalf("solve span got parent %d, want root", s.Parent)
			}
		}
	}
	if got := len(tr.Events()); got != workers*50 {
		t.Fatalf("got %d events, want %d", got, workers*50)
	}
}

func TestResetClearsEverything(t *testing.T) {
	tr := New()
	tr.Enable()
	tr.StartSpan(SpanCoreOrder).End()
	tr.Event("0x1", StageCoreReorder, "reordered")
	tr.Reset()
	if len(tr.Spans()) != 0 || len(tr.Events()) != 0 || len(tr.Summary()) != 0 {
		t.Fatal("Reset left records behind")
	}
	if !tr.Enabled() {
		t.Fatal("Reset must not disable the tracer")
	}
	tr.StartSpan(SpanCoreOrder).End()
	if spans := tr.Spans(); len(spans) != 1 || spans[0].ID != 1 {
		t.Fatalf("post-Reset span = %+v, want fresh id 1", spans)
	}
}

// TestChromeTraceSchemaShape asserts the Perfetto/chrome://tracing
// trace-event contract: a JSON object with a traceEvents array whose
// entries carry name, ph, ts, pid and tid; "X" events a numeric dur; "i"
// events a scope.
func TestChromeTraceSchemaShape(t *testing.T) {
	tr := New()
	tr.Enable()
	root := tr.StartSpan(SpanRollupCommit, Int("batch", 3))
	tr.StartSpan(SpanOVMExecute).End()
	tr.Event("0xdeadbeef", StageRollupCommit, "committed", Int("batch", 3))
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not a JSON object: %v", err)
	}
	rawEvents, ok := doc["traceEvents"]
	if !ok {
		t.Fatal("chrome trace missing traceEvents")
	}
	var events []map[string]any
	if err := json.Unmarshal(rawEvents, &events); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d trace events, want 3", len(events))
	}
	var sawX, sawI bool
	for i, e := range events {
		for _, field := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, e)
			}
		}
		if _, ok := e["name"].(string); !ok {
			t.Errorf("event %d name is not a string", i)
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Errorf("event %d ts is not numeric", i)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Errorf("event %d pid is not numeric", i)
		}
		if _, ok := e["tid"].(float64); !ok {
			t.Errorf("event %d tid is not numeric", i)
		}
		switch ph := e["ph"].(string); ph {
		case "X":
			sawX = true
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("complete event %d missing numeric dur", i)
			}
		case "i":
			sawI = true
			if s, _ := e["s"].(string); s != "t" {
				t.Errorf("instant event %d scope = %q, want \"t\"", i, s)
			}
		default:
			t.Errorf("event %d has unexpected phase %q", i, ph)
		}
	}
	if !sawX || !sawI {
		t.Fatalf("want both complete and instant events, got X=%v i=%v", sawX, sawI)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := New()
	tr.Enable()
	root := tr.StartSpan(SpanGenOptimize, Int("batch_len", 8))
	ep := tr.StartSpan(SpanGenEpisode, Int("episode", 0))
	ep.SetAttr(Float("reward", 1.25), Bool("improved", true))
	ep.End()
	root.End()
	tr.Event("0xaa", StageMempoolAdmit, "admitted", Int("pool_size", 1))
	tr.Event("0xbb", StageMempoolAdmit, "admitted")
	tr.Event("0xaa", StageRollupCommit, "committed")

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParseChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Spans) != 2 || len(p.Events) != 3 {
		t.Fatalf("parsed %d spans / %d events, want 2 / 3", len(p.Spans), len(p.Events))
	}

	// Summaries agree (same kinds, counts, totals to µs precision).
	want, got := tr.Summary(), p.Summary()
	if len(want) != len(got) {
		t.Fatalf("summary kinds: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Count != want[i].Count {
			t.Errorf("summary[%d] = %+v, want %+v", i, got[i], want[i])
		}
		if d := got[i].Total - want[i].Total; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("summary[%d] total drift %v", i, d)
		}
	}

	// Timelines group per tx, causal order preserved.
	tl := p.Timeline()
	if len(tl) != 2 {
		t.Fatalf("parsed %d timelines, want 2", len(tl))
	}
	if tl[0][0].Tx != "0xaa" || len(tl[0]) != 2 || tl[0][1].Stage != StageRollupCommit {
		t.Errorf("timeline[0] = %+v, want 0xaa admit→commit", tl[0])
	}
	if tl[1][0].Tx != "0xbb" || len(tl[1]) != 1 {
		t.Errorf("timeline[1] = %+v, want 0xbb admit only", tl[1])
	}

	// Typed attrs survive: int stays int, float stays float, bool stays bool.
	var parsedEp *SpanRecord
	for i := range p.Spans {
		if p.Spans[i].Kind == SpanGenEpisode {
			parsedEp = &p.Spans[i]
		}
	}
	if parsedEp == nil {
		t.Fatal("episode span lost in round trip")
	}
	kinds := map[string]ValueKind{}
	for _, a := range parsedEp.Attrs {
		kinds[a.Key] = a.Value.Kind
	}
	if kinds["episode"] != ValueInt || kinds["reward"] != ValueFloat || kinds["improved"] != ValueBool {
		t.Errorf("attr kinds after round trip = %v", kinds)
	}

	// TSV renderings from live tracer and parsed file agree byte-for-byte.
	var live, parsed bytes.Buffer
	if err := tr.WriteTimelineTSV(&live); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteTimelineTSV(&parsed); err != nil {
		t.Fatal(err)
	}
	if live.String() != parsed.String() {
		t.Errorf("timeline TSV diverged:\nlive:\n%s\nparsed:\n%s", live.String(), parsed.String())
	}
}

func TestSummaryTSVDeterministic(t *testing.T) {
	tr := New()
	tr.Enable()
	tr.StartSpan(SpanOVMEvaluate).End()
	tr.StartSpan(SpanArbitrageAssess).End()
	tr.StartSpan(SpanOVMEvaluate).End()

	var a, b bytes.Buffer
	if err := tr.WriteSummaryTSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSummaryTSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("summary TSV not deterministic across writes")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d summary lines, want header + 2 kinds:\n%s", len(lines), a.String())
	}
	if lines[0] != "kind\tcount\ttotal_us\tself_us\tavg_us" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], SpanArbitrageAssess+"\t1\t") {
		t.Errorf("line 1 = %q, want arbitrage.assess count 1 first (sorted)", lines[1])
	}
	if !strings.HasPrefix(lines[2], SpanOVMEvaluate+"\t2\t") {
		t.Errorf("line 2 = %q, want ovm.evaluate count 2", lines[2])
	}
}

func TestWriteFilesArtifactsAndSHA(t *testing.T) {
	tr := New()
	tr.Enable()
	tr.StartSpan(SpanMempoolCollect, Int("n", 4)).End()
	tr.Event("0x01", StageMempoolCollect, "collected", Int("pos", 0))

	dir := t.TempDir()
	path := filepath.Join(dir, "out.trace.json")
	sha, err := tr.WriteFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if want := hex.EncodeToString(sum[:]); sha != want {
		t.Errorf("WriteFiles sha = %s, want %s", sha, want)
	}
	summaryPath, timelinePath := DeriveArtifactPaths(path)
	if want := filepath.Join(dir, "out.trace.summary.tsv"); summaryPath != want {
		t.Errorf("summary path = %s, want %s", summaryPath, want)
	}
	if want := filepath.Join(dir, "out.trace.timeline.tsv"); timelinePath != want {
		t.Errorf("timeline path = %s, want %s", timelinePath, want)
	}
	for _, p := range []string{summaryPath, timelinePath} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("artifact %s: %v", p, err)
		}
		if len(bytes.TrimSpace(b)) == 0 {
			t.Errorf("artifact %s is empty", p)
		}
	}
	if _, err := ParseChrome(bytes.NewReader(raw)); err != nil {
		t.Errorf("written chrome file does not re-parse: %v", err)
	}
}
