// Package trace is the causal-tracing substrate of the PAROLE reproduction:
// a dependency-free, concurrency-safe span tracer with parent links, typed
// attributes, and per-transaction lifecycle events, plus export to the
// Chrome trace-event JSON that Perfetto and chrome://tracing load, a
// deterministic TSV span summary, and a per-tx timeline.
//
// Where internal/telemetry answers "how many" (counts, sizes, occupancies),
// this package answers "where did the time and the profit come from": which
// fraction of a Fig. 11 run was OVM replay inside hill-climb restarts, and
// what happened to one IFU transaction between mempool admission and batch
// commit.
//
// Design rules (mirroring the telemetry guard; see docs/TRACING.md):
//
//   - The tracer is a *strict no-op* until a binary enables it. A disabled
//     StartSpan is one atomic load returning a nil *Span whose methods are
//     nil-safe no-ops; a disabled TxEvent is one atomic load. No clock is
//     read, nothing allocates, and nothing is recorded.
//   - Tracing is passive even when enabled: spans and events record wall
//     time and copies of values, never feed anything back into computation,
//     and never touch an RNG — so seeded experiment outputs are
//     bit-identical with tracing on or off
//     (TestSeededOutputsUnaffectedByTracing guards this).
//   - Span kinds are dot-separated lower-case paths ("ovm.evaluate",
//     "solver.hillclimb.restart"); docs/TRACING.md catalogues every kind.
//
// Bounded memory: a tracer keeps at most SpanLimit detailed span records and
// EventLimit tx events (oldest kept, newest dropped, drop counts exported),
// but the per-kind summary aggregates (count, total, self time) are exact
// over the whole run regardless of the caps.
package trace

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Default limits on detailed records. Summaries stay exact past them.
const (
	DefaultSpanLimit  = 200_000
	DefaultEventLimit = 100_000
)

// AttrValue is the union of attribute value types a span or event carries.
// Exactly one field is meaningful, per Kind.
type AttrValue struct {
	Kind ValueKind
	Int  int64
	Str  string
	F    float64
	B    bool
}

// ValueKind discriminates AttrValue.
type ValueKind uint8

// Attribute value kinds.
const (
	ValueInt ValueKind = iota + 1
	ValueStr
	ValueFloat
	ValueBool
)

// Attr is one typed key/value attribute.
type Attr struct {
	Key   string
	Value AttrValue
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr {
	return Attr{Key: key, Value: AttrValue{Kind: ValueInt, Int: v}}
}

// Str builds a string attribute.
func Str(key, v string) Attr {
	return Attr{Key: key, Value: AttrValue{Kind: ValueStr, Str: v}}
}

// Float builds a float attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Value: AttrValue{Kind: ValueFloat, F: v}}
}

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	return Attr{Key: key, Value: AttrValue{Kind: ValueBool, B: v}}
}

// String renders the value for TSV output.
func (v AttrValue) String() string {
	switch v.Kind {
	case ValueInt:
		return strconv.FormatInt(v.Int, 10)
	case ValueStr:
		return v.Str
	case ValueFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case ValueBool:
		return strconv.FormatBool(v.B)
	default:
		return ""
	}
}

// SpanRecord is one finished span as stored by the tracer.
type SpanRecord struct {
	// ID and Parent link spans causally; Parent is 0 for roots.
	ID, Parent uint64
	// Kind is the span's dot-separated name (docs/TRACING.md).
	Kind string
	// G is the goroutine the span ran on (the Chrome "tid").
	G uint64
	// Start is the offset from the tracer epoch; Dur the wall duration;
	// Self is Dur minus the summed duration of direct children.
	Start, Dur, Self time.Duration
	// Attrs are the span's typed attributes, in the order they were set.
	Attrs []Attr
}

// TxEvent is one per-transaction lifecycle event.
type TxEvent struct {
	// Seq is the global admission order of the event (ties on identical
	// timestamps resolve deterministically by Seq).
	Seq uint64
	// Tx is the transaction hash (full 0x hex).
	Tx string
	// Stage is the lifecycle stage ("mempool.admit", "rollup.commit", …).
	Stage string
	// Outcome qualifies the stage ("executed", "skipped", "reordered", …).
	Outcome string
	// Start is the offset from the tracer epoch.
	Start time.Duration
	// G is the goroutine the event was recorded on.
	G uint64
	// Attrs carry stage detail (positions, prices, profits).
	Attrs []Attr
}

// KindSummary aggregates every span of one kind, exact over the whole run.
type KindSummary struct {
	Kind  string
	Count int64
	// Total sums span durations; Self subtracts time spent in child spans.
	Total, Self time.Duration
}

// openSpan is the mutable state of a started span.
type openSpan struct {
	rec      SpanRecord
	start    time.Time
	childDur time.Duration
}

// Tracer records spans and tx events. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool

	mu         sync.Mutex
	epoch      time.Time
	nextID     uint64
	nextSeq    uint64
	stacks     map[uint64][]*openSpan // goroutine id → open span stack
	spans      []SpanRecord
	events     []TxEvent
	agg        map[string]*KindSummary
	spanLimit  int
	eventLimit int
	droppedSp  uint64
	droppedEv  uint64
}

// New returns a disabled tracer with the default record limits.
func New() *Tracer {
	return &Tracer{
		stacks:     make(map[uint64][]*openSpan),
		agg:        make(map[string]*KindSummary),
		spanLimit:  DefaultSpanLimit,
		eventLimit: DefaultEventLimit,
	}
}

// defaultTracer is the process-global tracer every instrumented package
// records into; binaries enable it behind -trace.
var defaultTracer = New()

// Default returns the process-global tracer.
func Default() *Tracer { return defaultTracer }

// Enabled reports whether the process-global tracer records. Call sites
// guard any per-record work (hash hex encoding, attribute construction)
// behind it.
func Enabled() bool { return defaultTracer.Enabled() }

// StartSpan starts a span on the process-global tracer.
func StartSpan(kind string, attrs ...Attr) *Span {
	return defaultTracer.StartSpan(kind, attrs...)
}

// Event records a tx lifecycle event on the process-global tracer.
func Event(txHex, stage, outcome string, attrs ...Attr) {
	defaultTracer.Event(txHex, stage, outcome, attrs...)
}

// Enable switches recording on. The first Enable after construction (or
// Reset) pins the tracer epoch.
func (t *Tracer) Enable() {
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = time.Now()
	}
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable switches recording off. Already-open spans may still End.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer records.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetLimits overrides the detailed-record caps (tests; 0 keeps a current
// value). Summaries are exact regardless.
func (t *Tracer) SetLimits(spans, events int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if spans > 0 {
		t.spanLimit = spans
	}
	if events > 0 {
		t.eventLimit = events
	}
}

// Reset discards every recorded span and event and clears the epoch. It
// does not change the enabled flag.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch = time.Time{}
	t.nextID = 0
	t.nextSeq = 0
	t.stacks = make(map[uint64][]*openSpan)
	t.spans = nil
	t.events = nil
	t.agg = make(map[string]*KindSummary)
	t.droppedSp = 0
	t.droppedEv = 0
	if t.enabled.Load() {
		t.epoch = time.Now()
	}
}

// Span is a started span. A nil *Span (what StartSpan returns while the
// tracer is disabled) is a valid no-op receiver for every method.
type Span struct {
	t    *Tracer
	open *openSpan
	g    uint64
}

// StartSpan begins a span as a child of the innermost open span on the
// calling goroutine (a root span otherwise). It returns nil — a no-op span
// — while the tracer is disabled.
func (t *Tracer) StartSpan(kind string, attrs ...Attr) *Span {
	if !t.enabled.Load() {
		return nil
	}
	now := time.Now()
	g := gid()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.epoch.IsZero() {
		t.epoch = now
	}
	t.nextID++
	o := &openSpan{
		rec: SpanRecord{
			ID:    t.nextID,
			Kind:  kind,
			G:     g,
			Start: now.Sub(t.epoch),
			Attrs: append([]Attr(nil), attrs...),
		},
		start: now,
	}
	stack := t.stacks[g]
	if len(stack) > 0 {
		o.rec.Parent = stack[len(stack)-1].rec.ID
	}
	t.stacks[g] = append(stack, o)
	return &Span{t: t, open: o, g: g}
}

// SetAttr appends attributes to a span (no-op on a nil span).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.open.rec.Attrs = append(s.open.rec.Attrs, attrs...)
	s.t.mu.Unlock()
}

// End finishes the span, records it, and charges its duration to the
// parent's child time (no-op on a nil span). End is idempotent per span
// only in the sense that double-End is detected and ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	stack := t.stacks[s.g]
	// Pop this span (and anything opened above it that leaked un-ended).
	idx := -1
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == s.open {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // already ended
	}
	t.stacks[s.g] = stack[:idx]
	if idx == 0 {
		delete(t.stacks, s.g)
	}

	rec := s.open.rec
	rec.Dur = now.Sub(s.open.start)
	rec.Self = rec.Dur - s.open.childDur
	if rec.Self < 0 {
		rec.Self = 0
	}
	if idx > 0 {
		stack[idx-1].childDur += rec.Dur
	}

	sum, ok := t.agg[rec.Kind]
	if !ok {
		sum = &KindSummary{Kind: rec.Kind}
		t.agg[rec.Kind] = sum
	}
	sum.Count++
	sum.Total += rec.Dur
	sum.Self += rec.Self

	if len(t.spans) < t.spanLimit {
		t.spans = append(t.spans, rec)
	} else {
		t.droppedSp++
	}
}

// Event records a per-transaction lifecycle event (no-op while disabled).
// txHex should be the transaction hash's full hex form.
func (t *Tracer) Event(txHex, stage, outcome string, attrs ...Attr) {
	if !t.enabled.Load() {
		return
	}
	now := time.Now()
	g := gid()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.epoch.IsZero() {
		t.epoch = now
	}
	if len(t.events) >= t.eventLimit {
		t.droppedEv++
		return
	}
	t.nextSeq++
	t.events = append(t.events, TxEvent{
		Seq:     t.nextSeq,
		Tx:      txHex,
		Stage:   stage,
		Outcome: outcome,
		Start:   now.Sub(t.epoch),
		G:       g,
		Attrs:   append([]Attr(nil), attrs...),
	})
}

// Spans returns a copy of the detailed span records, in end order.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Events returns a copy of the tx events, in record order.
func (t *Tracer) Events() []TxEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TxEvent(nil), t.events...)
}

// Dropped reports how many detailed spans and events were discarded past
// the record limits.
func (t *Tracer) Dropped() (spans, events uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedSp, t.droppedEv
}

// Summary returns the exact per-kind aggregates, sorted by kind.
func (t *Tracer) Summary() []KindSummary {
	t.mu.Lock()
	out := make([]KindSummary, 0, len(t.agg))
	for _, s := range t.agg {
		out = append(out, *s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Timeline groups the tx events per transaction hash, each timeline ordered
// by record sequence, transactions ordered by their first event.
func (t *Tracer) Timeline() [][]TxEvent {
	events := t.Events()
	byTx := make(map[string][]TxEvent)
	var order []string
	for _, e := range events {
		if _, seen := byTx[e.Tx]; !seen {
			order = append(order, e.Tx)
		}
		byTx[e.Tx] = append(byTx[e.Tx], e)
	}
	out := make([][]TxEvent, 0, len(order))
	for _, h := range order {
		evs := byTx[h]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		out = append(out, evs)
	}
	return out
}

// gid returns the calling goroutine's id, parsed from the runtime stack
// header ("goroutine 123 [running]:"). Only called while tracing is
// enabled; the ~µs cost never touches a disabled path.
func gid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes), parse digits.
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
