package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// ChromeEvent is one entry of the Chrome trace-event JSON array — the
// subset of the schema Perfetto and chrome://tracing accept: complete spans
// (ph "X" with ts + dur) and instant events (ph "i" with scope "t").
// Timestamps are microseconds from the tracer epoch.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON object container format ({"traceEvents": […]}).
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// Chrome trace categories and reserved argument keys.
const (
	CatSpan = "span"
	CatTx   = "tx"

	argSpanID     = "span_id"
	argSpanParent = "span_parent"
	argTx         = "tx"
	argOutcome    = "outcome"
	argSeq        = "seq"
)

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func attrArgs(args map[string]any, attrs []Attr) map[string]any {
	for _, a := range attrs {
		switch a.Value.Kind {
		case ValueInt:
			args[a.Key] = a.Value.Int
		case ValueStr:
			args[a.Key] = a.Value.Str
		case ValueFloat:
			args[a.Key] = a.Value.F
		case ValueBool:
			args[a.Key] = a.Value.B
		}
	}
	return args
}

// Chrome renders the recorded spans and tx events as a ChromeTrace.
func (t *Tracer) Chrome() ChromeTrace {
	spans := t.Spans()
	events := t.Events()
	droppedSp, droppedEv := t.Dropped()

	out := ChromeTrace{
		TraceEvents:     make([]ChromeEvent, 0, len(spans)+len(events)),
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"producer":       "parole/internal/trace",
			"dropped_spans":  fmt.Sprintf("%d", droppedSp),
			"dropped_events": fmt.Sprintf("%d", droppedEv),
		},
	}
	for _, s := range spans {
		dur := micros(s.Dur)
		args := attrArgs(map[string]any{argSpanID: s.ID}, s.Attrs)
		if s.Parent != 0 {
			args[argSpanParent] = s.Parent
		}
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name:  s.Kind,
			Cat:   CatSpan,
			Phase: "X",
			TS:    micros(s.Start),
			Dur:   &dur,
			PID:   1,
			TID:   s.G,
			Args:  args,
		})
	}
	for _, e := range events {
		args := attrArgs(map[string]any{
			argTx:      e.Tx,
			argOutcome: e.Outcome,
			argSeq:     e.Seq,
		}, e.Attrs)
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name:  e.Stage,
			Cat:   CatTx,
			Phase: "i",
			TS:    micros(e.Start),
			PID:   1,
			TID:   e.G,
			Scope: "t",
			Args:  args,
		})
	}
	// Stable order: by timestamp, spans before instants on ties, then ids.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		if out.TraceEvents[i].TS != out.TraceEvents[j].TS {
			return out.TraceEvents[i].TS < out.TraceEvents[j].TS
		}
		return out.TraceEvents[i].Phase < out.TraceEvents[j].Phase
	})
	return out
}

// WriteChrome writes the Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Chrome())
}

// WriteSummaryTSV writes the per-kind span summary, sorted by kind:
//
//	kind  count  total_us  self_us  avg_us
//
// Counts and totals are exact over the whole run even when detailed span
// records were capped.
func (t *Tracer) WriteSummaryTSV(w io.Writer) error {
	return writeSummaryTSV(w, t.Summary())
}

func writeSummaryTSV(w io.Writer, sums []KindSummary) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "kind\tcount\ttotal_us\tself_us\tavg_us")
	for _, s := range sums {
		avg := 0.0
		if s.Count > 0 {
			avg = micros(s.Total) / float64(s.Count)
		}
		fmt.Fprintf(bw, "%s\t%d\t%.1f\t%.1f\t%.1f\n",
			s.Kind, s.Count, micros(s.Total), micros(s.Self), avg)
	}
	return bw.Flush()
}

// WriteTimelineTSV writes the per-transaction timelines, one row per
// lifecycle event in per-tx causal order:
//
//	tx  seq  ts_us  stage  outcome  attrs
//
// where attrs is "key=value,…", keys sorted — so the TSV recomputed from
// the trace JSON (whose args decode in sorted order) is byte-identical to
// the one written live.
func (t *Tracer) WriteTimelineTSV(w io.Writer) error {
	return writeTimelineTSV(w, t.Timeline())
}

func writeTimelineTSV(w io.Writer, timelines [][]TxEvent) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "tx\tseq\tts_us\tstage\toutcome\tattrs")
	for _, evs := range timelines {
		for _, e := range evs {
			sorted := append([]Attr(nil), e.Attrs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
			var attrs strings.Builder
			for i, a := range sorted {
				if i > 0 {
					attrs.WriteByte(',')
				}
				fmt.Fprintf(&attrs, "%s=%s", a.Key, a.Value.String())
			}
			fmt.Fprintf(bw, "%s\t%d\t%.1f\t%s\t%s\t%s\n",
				e.Tx, e.Seq, micros(e.Start), e.Stage, e.Outcome, attrs.String())
		}
	}
	return bw.Flush()
}

// DeriveArtifactPaths maps the -trace PATH to the sibling summary and
// timeline files: "out.trace.json" → "out.trace.summary.tsv",
// "out.trace.timeline.tsv".
func DeriveArtifactPaths(path string) (summary, timeline string) {
	base := strings.TrimSuffix(path, ".json")
	return base + ".summary.tsv", base + ".timeline.tsv"
}

// WriteFiles writes the three trace artifacts — the Chrome JSON at path
// plus the derived summary and timeline TSVs — and returns the hex SHA-256
// of the Chrome JSON file (what the run manifest records).
func (t *Tracer) WriteFiles(path string) (sha string, err error) {
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("trace: create %s: %w", path, err)
	}
	h := sha256.New()
	err = t.WriteChrome(io.MultiWriter(f, h))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("trace: write %s: %w", path, err)
	}
	summaryPath, timelinePath := DeriveArtifactPaths(path)
	if err := writeFileWith(summaryPath, t.WriteSummaryTSV); err != nil {
		return "", err
	}
	if err := writeFileWith(timelinePath, t.WriteTimelineTSV); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// Parsed is a trace file loaded back from its Chrome JSON form —
// cmd/parole-trace works on this.
type Parsed struct {
	Spans  []SpanRecord
	Events []TxEvent
	Other  map[string]string
}

// ParseChrome loads a Chrome trace-event JSON produced by WriteChrome (it
// tolerates any trace using the same span/tx categories).
func ParseChrome(r io.Reader) (*Parsed, error) {
	var ct ChromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("trace: parse chrome json: %w", err)
	}
	p := &Parsed{Other: ct.OtherData}
	for _, e := range ct.TraceEvents {
		switch e.Phase {
		case "X":
			rec := SpanRecord{
				Kind:  e.Name,
				G:     e.TID,
				Start: time.Duration(e.TS * 1e3),
			}
			if e.Dur != nil {
				rec.Dur = time.Duration(*e.Dur * 1e3)
			}
			rec.ID = uintArg(e.Args, argSpanID)
			rec.Parent = uintArg(e.Args, argSpanParent)
			rec.Attrs = argsToAttrs(e.Args)
			p.Spans = append(p.Spans, rec)
		case "i", "I":
			ev := TxEvent{
				Stage: e.Name,
				G:     e.TID,
				Start: time.Duration(e.TS * 1e3),
				Seq:   uintArg(e.Args, argSeq),
			}
			if v, ok := e.Args[argTx].(string); ok {
				ev.Tx = v
			}
			if v, ok := e.Args[argOutcome].(string); ok {
				ev.Outcome = v
			}
			ev.Attrs = argsToAttrs(e.Args)
			p.Events = append(p.Events, ev)
		}
	}
	// Recompute self time from parent links (summaries from a parsed file
	// are limited to the detailed records the file carries).
	childDur := make(map[uint64]time.Duration)
	for _, s := range p.Spans {
		if s.Parent != 0 {
			childDur[s.Parent] += s.Dur
		}
	}
	for i := range p.Spans {
		self := p.Spans[i].Dur - childDur[p.Spans[i].ID]
		if self < 0 {
			self = 0
		}
		p.Spans[i].Self = self
	}
	return p, nil
}

func uintArg(args map[string]any, key string) uint64 {
	if v, ok := args[key].(float64); ok && v >= 0 {
		return uint64(v)
	}
	return 0
}

var reservedArgs = map[string]bool{
	argSpanID: true, argSpanParent: true,
	argTx: true, argOutcome: true, argSeq: true,
}

// argsToAttrs converts non-reserved Chrome args back into sorted attrs
// (JSON maps are unordered; sorting keeps re-exports deterministic).
func argsToAttrs(args map[string]any) []Attr {
	keys := make([]string, 0, len(args))
	for k := range args {
		if !reservedArgs[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(keys))
	for _, k := range keys {
		switch v := args[k].(type) {
		case string:
			attrs = append(attrs, Str(k, v))
		case float64:
			if v == float64(int64(v)) {
				attrs = append(attrs, Int(k, int64(v)))
			} else {
				attrs = append(attrs, Float(k, v))
			}
		case bool:
			attrs = append(attrs, Bool(k, v))
		}
	}
	if len(attrs) == 0 {
		return nil
	}
	return attrs
}

// Summary aggregates a parsed trace per kind, sorted by kind.
func (p *Parsed) Summary() []KindSummary {
	agg := make(map[string]*KindSummary)
	for _, s := range p.Spans {
		sum, ok := agg[s.Kind]
		if !ok {
			sum = &KindSummary{Kind: s.Kind}
			agg[s.Kind] = sum
		}
		sum.Count++
		sum.Total += s.Dur
		sum.Self += s.Self
	}
	out := make([]KindSummary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Timeline groups a parsed trace's tx events per transaction, like
// Tracer.Timeline.
func (p *Parsed) Timeline() [][]TxEvent {
	byTx := make(map[string][]TxEvent)
	var order []string
	for _, e := range p.Events {
		if _, seen := byTx[e.Tx]; !seen {
			order = append(order, e.Tx)
		}
		byTx[e.Tx] = append(byTx[e.Tx], e)
	}
	out := make([][]TxEvent, 0, len(order))
	for _, h := range order {
		evs := byTx[h]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		out = append(out, evs)
	}
	return out
}

// WriteSummaryTSV writes the parsed summary in the Tracer's TSV format.
func (p *Parsed) WriteSummaryTSV(w io.Writer) error {
	return writeSummaryTSV(w, p.Summary())
}

// WriteTimelineTSV writes the parsed timelines in the Tracer's TSV format.
func (p *Parsed) WriteTimelineTSV(w io.Writer) error {
	return writeTimelineTSV(w, p.Timeline())
}
