package l1

import (
	"errors"
	"fmt"

	"parole/internal/chainid"
	"parole/internal/tx"
	"parole/internal/wei"
)

// ORSC errors.
var (
	ErrNotRegistered    = errors.New("orsc: actor not registered")
	ErrAlreadyBonded    = errors.New("orsc: actor already registered")
	ErrUnknownBatch     = errors.New("orsc: unknown batch")
	ErrBatchClosed      = errors.New("orsc: batch no longer challengeable")
	ErrChallengeExpired = errors.New("orsc: challenge period over")
	ErrBadDeposit       = errors.New("orsc: invalid deposit")
)

// BatchStatus is the lifecycle state of a submitted batch.
type BatchStatus uint8

// Batch lifecycle states.
const (
	BatchPending BatchStatus = iota + 1
	BatchFinalized
	BatchReverted
)

// String returns the lower-case status name.
func (s BatchStatus) String() string {
	switch s {
	case BatchPending:
		return "pending"
	case BatchFinalized:
		return "finalized"
	case BatchReverted:
		return "reverted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Batch is a rollup batch recorded on the ORSC awaiting its challenge
// window. The full transaction payload is posted (data availability), so a
// challenger can replay it.
type Batch struct {
	ID         uint64
	Aggregator chainid.Address
	Txs        tx.Seq
	PreRoot    chainid.Hash
	PostRoot   chainid.Hash
	Status     BatchStatus
	// Deadline is the ORSC round after which the batch finalizes if
	// unchallenged.
	Deadline uint64
}

// Adjudicator decides a challenge: it must return the correct post-state
// root of replaying batch.Txs from batch.PreRoot. In the real protocol this
// is the interactive fraud-proof game; the rollup layer wires in an
// OVM-replaying implementation.
type Adjudicator interface {
	CorrectPostRoot(batch Batch) (chainid.Hash, error)
}

// AdjudicatorFunc adapts a function to the Adjudicator interface.
type AdjudicatorFunc func(batch Batch) (chainid.Hash, error)

// CorrectPostRoot implements Adjudicator.
func (f AdjudicatorFunc) CorrectPostRoot(b Batch) (chainid.Hash, error) { return f(b) }

// ORSC is the optimistic-rollup smart contract: deposit escrow, bond
// registry, batch ledger, and challenge game.
type ORSC struct {
	chain *Chain
	addr  chainid.Address
	adj   Adjudicator

	challengePeriod uint64 // in ORSC rounds
	round           uint64

	aggregatorBonds map[chainid.Address]wei.Amount
	verifierBonds   map[chainid.Address]wei.Amount
	batches         []*Batch
	stateIndex      uint64

	// deposits accumulated but not yet pulled by the rollup node.
	pendingDeposits []Deposit
	// withdrawals awaiting their challenge window before paying out on L1.
	withdrawals []*Withdrawal
}

// Deposit is a user's L1→L2 transfer awaiting L2 credit.
type Deposit struct {
	User   chainid.Address
	Amount wei.Amount
}

// Withdrawal is an L2→L1 exit. Like batches, withdrawals only pay out after
// the optimistic challenge window — the famous optimistic-rollup exit delay.
type Withdrawal struct {
	ID       uint64
	User     chainid.Address
	Amount   wei.Amount
	Deadline uint64
	Paid     bool
}

// ORSCConfig parameterizes contract deployment.
type ORSCConfig struct {
	// ChallengePeriod is how many rounds a batch stays challengeable.
	ChallengePeriod uint64
	// StateIndexBase offsets the running L1 state index so scenarios can
	// mirror Table III's values.
	StateIndexBase uint64
}

// NewORSC deploys the rollup contract on chain.
func NewORSC(chain *Chain, addr chainid.Address, adj Adjudicator, cfg ORSCConfig) *ORSC {
	if cfg.ChallengePeriod == 0 {
		cfg.ChallengePeriod = 1
	}
	return &ORSC{
		chain:           chain,
		addr:            addr,
		adj:             adj,
		challengePeriod: cfg.ChallengePeriod,
		aggregatorBonds: make(map[chainid.Address]wei.Amount),
		verifierBonds:   make(map[chainid.Address]wei.Amount),
		stateIndex:      cfg.StateIndexBase,
	}
}

// Address returns the contract's L1 address.
func (o *ORSC) Address() chainid.Address { return o.addr }

// Round returns the contract's current round counter.
func (o *ORSC) Round() uint64 { return o.round }

// ChallengePeriod returns how many rounds a batch (or exit) stays
// challengeable — the window cross-rollup bridge releases are gated on.
func (o *ORSC) ChallengePeriod() uint64 { return o.challengePeriod }

// StateIndex returns the current L1 state index (Table III column).
func (o *ORSC) StateIndex() uint64 { return o.stateIndex }

// Deposit escrows amount of user's L1 ETH with the contract and queues an
// equivalent L2 credit — the C^L1 → t^L2 exchange of Fig. 1.
func (o *ORSC) Deposit(user chainid.Address, amount wei.Amount) error {
	if amount <= 0 {
		return fmt.Errorf("%w: %s", ErrBadDeposit, amount)
	}
	if err := o.chain.transfer(user, o.addr, amount); err != nil {
		return err
	}
	o.pendingDeposits = append(o.pendingDeposits, Deposit{User: user, Amount: amount})
	return nil
}

// QueueWithdrawal registers an L2→L1 exit initiated by the rollup node
// (which has already debited the user's L2 balance). The ETH pays out on L1
// after the challenge window.
func (o *ORSC) QueueWithdrawal(user chainid.Address, amount wei.Amount) (*Withdrawal, error) {
	if amount <= 0 {
		return nil, fmt.Errorf("%w: %s", ErrBadDeposit, amount)
	}
	w := &Withdrawal{
		ID:       uint64(len(o.withdrawals)),
		User:     user,
		Amount:   amount,
		Deadline: o.round + o.challengePeriod,
	}
	o.withdrawals = append(o.withdrawals, w)
	return w, nil
}

// Withdrawal returns the exit record with the given id.
func (o *ORSC) Withdrawal(id uint64) (*Withdrawal, error) {
	if id >= uint64(len(o.withdrawals)) {
		return nil, fmt.Errorf("%w: withdrawal %d", ErrUnknownBatch, id)
	}
	return o.withdrawals[id], nil
}

// DrainDeposits hands the queued deposits to the rollup node, which credits
// them on L2, and clears the queue.
func (o *ORSC) DrainDeposits() []Deposit {
	out := o.pendingDeposits
	o.pendingDeposits = nil
	return out
}

// RegisterAggregator bonds an aggregator.
func (o *ORSC) RegisterAggregator(addr chainid.Address, bond wei.Amount) error {
	return o.register(o.aggregatorBonds, addr, bond)
}

// RegisterVerifier bonds a verifier.
func (o *ORSC) RegisterVerifier(addr chainid.Address, bond wei.Amount) error {
	return o.register(o.verifierBonds, addr, bond)
}

func (o *ORSC) register(bonds map[chainid.Address]wei.Amount, addr chainid.Address, bond wei.Amount) error {
	if _, dup := bonds[addr]; dup {
		return fmt.Errorf("%w: %s", ErrAlreadyBonded, addr)
	}
	if err := o.chain.transfer(addr, o.addr, bond); err != nil {
		return err
	}
	bonds[addr] = bond
	return nil
}

// AggregatorBond returns the remaining bond of an aggregator.
func (o *ORSC) AggregatorBond(addr chainid.Address) wei.Amount { return o.aggregatorBonds[addr] }

// VerifierBond returns the remaining bond of a verifier.
func (o *ORSC) VerifierBond(addr chainid.Address) wei.Amount { return o.verifierBonds[addr] }

// SubmitBatch records a rollup batch with its fraud proof (the post-state
// root). The batch enters its challenge window.
func (o *ORSC) SubmitBatch(aggregator chainid.Address, seq tx.Seq, preRoot, postRoot chainid.Hash) (*Batch, error) {
	if _, ok := o.aggregatorBonds[aggregator]; !ok {
		return nil, fmt.Errorf("%w: aggregator %s", ErrNotRegistered, aggregator)
	}
	b := &Batch{
		ID:         uint64(len(o.batches)),
		Aggregator: aggregator,
		Txs:        seq.Clone(),
		PreRoot:    preRoot,
		PostRoot:   postRoot,
		Status:     BatchPending,
		Deadline:   o.round + o.challengePeriod,
	}
	o.batches = append(o.batches, b)
	return b, nil
}

// BatchCount returns how many batches have ever been submitted. Batch ids
// are dense, so ids range over [0, BatchCount).
func (o *ORSC) BatchCount() uint64 { return uint64(len(o.batches)) }

// Batch returns the batch with the given id.
func (o *ORSC) Batch(id uint64) (*Batch, error) {
	if id >= uint64(len(o.batches)) {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownBatch, id)
	}
	return o.batches[id], nil
}

// PendingBatches returns batches still inside their challenge window.
func (o *ORSC) PendingBatches() []*Batch {
	var out []*Batch
	for _, b := range o.batches {
		if b.Status == BatchPending {
			out = append(out, b)
		}
	}
	return out
}

// Challenge lets a bonded verifier dispute a pending batch. The adjudicator
// replays the batch; if the submitted post-root is wrong the batch reverts
// and the aggregator's bond is slashed to the challenger (Section V-A). If
// the proof was valid, the *verifier's* bond is slashed instead.
//
// The returned bool reports whether the challenge succeeded.
func (o *ORSC) Challenge(verifier chainid.Address, batchID uint64) (bool, error) {
	bond, ok := o.verifierBonds[verifier]
	if !ok {
		return false, fmt.Errorf("%w: verifier %s", ErrNotRegistered, verifier)
	}
	b, err := o.Batch(batchID)
	if err != nil {
		return false, err
	}
	if b.Status != BatchPending {
		return false, fmt.Errorf("%w: batch %d is %s", ErrBatchClosed, batchID, b.Status)
	}
	if o.round > b.Deadline {
		return false, fmt.Errorf("%w: batch %d deadline %d, round %d", ErrChallengeExpired, batchID, b.Deadline, o.round)
	}
	correct, err := o.adj.CorrectPostRoot(*b)
	if err != nil {
		return false, fmt.Errorf("adjudicate batch %d: %w", batchID, err)
	}
	if correct != b.PostRoot {
		// Fraud proven: revert and slash the aggregator to the challenger.
		b.Status = BatchReverted
		slashed := o.aggregatorBonds[b.Aggregator]
		o.aggregatorBonds[b.Aggregator] = 0
		if err := o.chain.transfer(o.addr, verifier, slashed); err != nil {
			return false, fmt.Errorf("pay out slash: %w", err)
		}
		return true, nil
	}
	// Frivolous challenge: slash the verifier to the aggregator.
	o.verifierBonds[verifier] = 0
	if err := o.chain.transfer(o.addr, b.Aggregator, bond); err != nil {
		return false, fmt.Errorf("pay out slash: %w", err)
	}
	return false, nil
}

// AdvanceRound moves the contract clock one round forward, finalizing every
// pending batch whose challenge window has closed. Finalized batches are
// anchored into a fresh L1 block; each anchor consumes one L1 state index.
func (o *ORSC) AdvanceRound() []BatchAnchor {
	o.round++
	var anchors []BatchAnchor
	for _, b := range o.batches {
		if b.Status != BatchPending || o.round <= b.Deadline {
			continue
		}
		b.Status = BatchFinalized
		o.stateIndex++
		anchors = append(anchors, BatchAnchor{
			BatchID:    b.ID,
			Sequence:   b.Txs.Hash(),
			StateRoot:  b.PostRoot,
			Aggregator: b.Aggregator,
			StateIndex: o.stateIndex,
			TxCount:    len(b.Txs),
		})
	}
	if len(anchors) > 0 {
		o.chain.AppendBlock(anchors)
	}
	// Pay out matured withdrawals from the contract escrow.
	for _, w := range o.withdrawals {
		if w.Paid || o.round <= w.Deadline {
			continue
		}
		if err := o.chain.transfer(o.addr, w.User, w.Amount); err != nil {
			// Escrow shortfall would mean an accounting bug; surface it
			// loudly in tests via the unpaid flag rather than panicking.
			continue
		}
		w.Paid = true
	}
	return anchors
}
