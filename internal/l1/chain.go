// Package l1 implements the simulator's Layer-1 chain and the
// optimistic-rollup smart contract (ORSC) that lives on it.
//
// The paper's workflow (Fig. 1, Section V-A) needs four things from L1:
// ETH accounts users deposit from, a contract that escrows deposits and
// issues L2 tokens, a registry of bonded aggregators and verifiers, and the
// batch/challenge ledger that finalizes rollup blocks after an unchallenged
// dispute window. All four live here; the actors that drive them live in
// internal/rollup.
package l1

import (
	"errors"
	"fmt"

	"parole/internal/chainid"
	"parole/internal/wei"
)

// Chain errors.
var (
	ErrInsufficientFunds = errors.New("l1: insufficient funds")
)

// BatchAnchor is the record of one finalized rollup batch inside an L1
// block: the on-chain footprint of Table III's "Block Number" and "L1 state
// index" columns.
type BatchAnchor struct {
	BatchID    uint64
	Sequence   chainid.Hash // commitment to the ordered tx list
	StateRoot  chainid.Hash // post-state root (the fraud proof)
	Aggregator chainid.Address
	StateIndex uint64 // running index of L2 state commitments on L1
	TxCount    int
}

// Block is one L1 block.
type Block struct {
	Number  uint64
	Parent  chainid.Hash
	Anchors []BatchAnchor
}

// Hash returns the block id.
func (b Block) Hash() chainid.Hash {
	segments := make([][]byte, 0, 2+len(b.Anchors))
	var head [8]byte
	putUint64(head[:], b.Number)
	segments = append(segments, []byte("parole/l1-block"), head[:], b.Parent[:])
	for _, a := range b.Anchors {
		seg := make([]byte, 0, 8+chainid.HashLen*2)
		var n [8]byte
		putUint64(n[:], a.BatchID)
		seg = append(seg, n[:]...)
		seg = append(seg, a.Sequence[:]...)
		seg = append(seg, a.StateRoot[:]...)
		segments = append(segments, seg)
	}
	return chainid.HashBytes(segments...)
}

// Chain is the L1 ledger: a block list plus native ETH accounts. It is a
// single-writer structure; the rollup node serializes access.
type Chain struct {
	blocks   []Block
	accounts map[chainid.Address]wei.Amount
}

// NewChain creates an L1 chain whose genesis block carries the given number,
// letting scenarios print realistic block heights (Table III shows blocks in
// the 17.9M range).
func NewChain(genesisNumber uint64) *Chain {
	return &Chain{
		blocks:   []Block{{Number: genesisNumber}},
		accounts: make(map[chainid.Address]wei.Amount),
	}
}

// Head returns the latest block.
func (c *Chain) Head() Block { return c.blocks[len(c.blocks)-1] }

// Height returns the latest block number.
func (c *Chain) Height() uint64 { return c.Head().Number }

// Len returns the number of blocks on the chain.
func (c *Chain) Len() int { return len(c.blocks) }

// Block returns the i-th block (0 = genesis).
func (c *Chain) Block(i int) (Block, error) {
	if i < 0 || i >= len(c.blocks) {
		return Block{}, fmt.Errorf("l1: block index %d out of range [0,%d)", i, len(c.blocks))
	}
	return c.blocks[i], nil
}

// AppendBlock seals a new block carrying the given batch anchors.
func (c *Chain) AppendBlock(anchors []BatchAnchor) Block {
	head := c.Head()
	b := Block{
		Number:  head.Number + 1,
		Parent:  head.Hash(),
		Anchors: anchors,
	}
	c.blocks = append(c.blocks, b)
	return b
}

// Balance returns addr's native ETH balance.
func (c *Chain) Balance(addr chainid.Address) wei.Amount { return c.accounts[addr] }

// Fund credits native ETH to addr (scenario setup / faucet).
func (c *Chain) Fund(addr chainid.Address, amount wei.Amount) {
	if amount < 0 {
		panic("l1: negative funding")
	}
	c.accounts[addr] += amount
}

// Transfer moves native ETH between accounts. L1-resident contracts that
// are not the ORSC — the cross-rollup bridge escrow in internal/rollup —
// move their backing funds through here; conservation (TotalSupply) holds
// across every transfer by construction.
func (c *Chain) Transfer(from, to chainid.Address, amount wei.Amount) error {
	return c.transfer(from, to, amount)
}

// transfer moves native ETH between accounts.
func (c *Chain) transfer(from, to chainid.Address, amount wei.Amount) error {
	if amount < 0 {
		panic("l1: negative transfer")
	}
	if c.accounts[from] < amount {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientFunds, from, c.accounts[from], amount)
	}
	c.accounts[from] -= amount
	c.accounts[to] += amount
	return nil
}

// TotalSupply returns the sum of all native balances (conservation tests).
func (c *Chain) TotalSupply() wei.Amount {
	var total wei.Amount
	for _, b := range c.accounts {
		total += b
	}
	return total
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
