package l1

import (
	"errors"
	"testing"

	"parole/internal/chainid"
	"parole/internal/wei"
)

func TestORSCGetters(t *testing.T) {
	_, orsc := newFixture(t)
	if orsc.Address() != orscAddr {
		t.Error("Address mismatch")
	}
	if orsc.Round() != 0 {
		t.Errorf("fresh round = %d", orsc.Round())
	}
	if orsc.StateIndex() != 115_000 {
		t.Errorf("state index = %d", orsc.StateIndex())
	}
	orsc.AdvanceRound()
	if orsc.Round() != 1 {
		t.Errorf("round after advance = %d", orsc.Round())
	}
}

func TestBatchStatusString(t *testing.T) {
	tests := []struct {
		give BatchStatus
		want string
	}{
		{BatchPending, "pending"},
		{BatchFinalized, "finalized"},
		{BatchReverted, "reverted"},
		{BatchStatus(9), "status(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("BatchStatus(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestQueueWithdrawalLifecycle(t *testing.T) {
	chain, orsc := newFixture(t)
	// Escrow some funds so the payout can succeed.
	if err := orsc.Deposit(alice, wei.FromETH(3)); err != nil {
		t.Fatal(err)
	}
	w, err := orsc.QueueWithdrawal(alice, wei.FromETH(2))
	if err != nil {
		t.Fatal(err)
	}
	if w.Paid || w.Deadline != orsc.Round()+2 {
		t.Fatalf("withdrawal = %+v", w)
	}
	got, err := orsc.Withdrawal(w.ID)
	if err != nil || got != w {
		t.Fatalf("Withdrawal lookup = (%v, %v)", got, err)
	}
	if _, err := orsc.Withdrawal(99); !errors.Is(err, ErrUnknownBatch) {
		t.Fatalf("unknown withdrawal = %v", err)
	}
	if _, err := orsc.QueueWithdrawal(alice, 0); !errors.Is(err, ErrBadDeposit) {
		t.Fatalf("zero withdrawal = %v", err)
	}
	balBefore := chain.Balance(alice)
	orsc.AdvanceRound()
	orsc.AdvanceRound()
	if w.Paid {
		t.Fatal("paid before window closed")
	}
	orsc.AdvanceRound()
	if !w.Paid {
		t.Fatal("not paid after window")
	}
	if got := chain.Balance(alice); got != balBefore+wei.FromETH(2) {
		t.Fatalf("payout balance = %s", got)
	}
}

func TestWithdrawalShortfallStaysUnpaid(t *testing.T) {
	// A withdrawal exceeding the contract escrow must not pay out (and must
	// not panic); it stays unpaid as a visible accounting alarm.
	chain := NewChain(0)
	orsc := NewORSC(chain, orscAddr, honestAdjudicator(), ORSCConfig{ChallengePeriod: 1})
	w, err := orsc.QueueWithdrawal(alice, wei.FromETH(5))
	if err != nil {
		t.Fatal(err)
	}
	orsc.AdvanceRound()
	orsc.AdvanceRound()
	if w.Paid {
		t.Fatal("shortfall withdrawal paid")
	}
}

func TestNewORSCZeroChallengePeriodDefaults(t *testing.T) {
	chain := NewChain(0)
	chain.Fund(agg, wei.FromETH(10))
	orsc := NewORSC(chain, orscAddr, honestAdjudicator(), ORSCConfig{})
	if err := orsc.RegisterAggregator(agg, wei.FromETH(1)); err != nil {
		t.Fatal(err)
	}
	b, err := orsc.SubmitBatch(agg, sampleBatchSeq(), chainid.Hash{}, trueRoot)
	if err != nil {
		t.Fatal(err)
	}
	if b.Deadline != 1 {
		t.Fatalf("deadline = %d, want default challenge period 1", b.Deadline)
	}
}

func TestBlockHashCoversAnchors(t *testing.T) {
	a := Block{Number: 5, Anchors: []BatchAnchor{{BatchID: 1, StateIndex: 7}}}
	b := Block{Number: 5, Anchors: []BatchAnchor{{BatchID: 2, StateIndex: 7}}}
	if a.Hash() == b.Hash() {
		t.Fatal("block hash ignores anchor content")
	}
	if a.Hash() != a.Hash() {
		t.Fatal("block hash not deterministic")
	}
}
