package l1

import (
	"errors"
	"testing"

	"parole/internal/chainid"
	"parole/internal/tx"
	"parole/internal/wei"
)

var (
	ptAddr   = chainid.DeriveAddress("pt-contract")
	orscAddr = chainid.DeriveAddress("orsc")
	alice    = chainid.UserAddress(1)
	agg      = chainid.AggregatorAddress(1)
	ver      = chainid.VerifierAddress(1)
)

// trueRoot is a canned "correct" post-root used by the test adjudicator.
var trueRoot = chainid.HashBytes([]byte("true-root"))

func honestAdjudicator() Adjudicator {
	return AdjudicatorFunc(func(Batch) (chainid.Hash, error) { return trueRoot, nil })
}

func newFixture(t *testing.T) (*Chain, *ORSC) {
	t.Helper()
	chain := NewChain(17_934_000)
	orsc := NewORSC(chain, orscAddr, honestAdjudicator(), ORSCConfig{
		ChallengePeriod: 2,
		StateIndexBase:  115_000,
	})
	chain.Fund(alice, wei.FromETH(10))
	chain.Fund(agg, wei.FromETH(10))
	chain.Fund(ver, wei.FromETH(10))
	if err := orsc.RegisterAggregator(agg, wei.FromETH(5)); err != nil {
		t.Fatal(err)
	}
	if err := orsc.RegisterVerifier(ver, wei.FromETH(5)); err != nil {
		t.Fatal(err)
	}
	return chain, orsc
}

func sampleBatchSeq() tx.Seq {
	return tx.Seq{tx.Mint(ptAddr, 1, alice)}
}

func TestChainGenesisAndAppend(t *testing.T) {
	c := NewChain(100)
	if c.Height() != 100 || c.Len() != 1 {
		t.Fatalf("genesis height=%d len=%d", c.Height(), c.Len())
	}
	b := c.AppendBlock(nil)
	if b.Number != 101 {
		t.Fatalf("appended number = %d", b.Number)
	}
	if b.Parent != (Block{Number: 100}).Hash() {
		t.Fatal("parent link broken")
	}
	if _, err := c.Block(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Block(2); err == nil {
		t.Fatal("out-of-range Block lookup should fail")
	}
}

func TestFundAndTransferConservation(t *testing.T) {
	c := NewChain(0)
	c.Fund(alice, 100)
	c.Fund(agg, 50)
	total := c.TotalSupply()
	if err := c.transfer(alice, agg, 30); err != nil {
		t.Fatal(err)
	}
	if c.TotalSupply() != total {
		t.Fatal("transfer changed total supply")
	}
	if err := c.transfer(alice, agg, 1000); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overdraft = %v", err)
	}
}

func TestDepositEscrowsAndQueues(t *testing.T) {
	chain, orsc := newFixture(t)
	if err := orsc.Deposit(alice, wei.FromETH(3)); err != nil {
		t.Fatal(err)
	}
	if got := chain.Balance(alice); got != wei.FromETH(7) {
		t.Fatalf("alice L1 balance = %s", got)
	}
	deps := orsc.DrainDeposits()
	if len(deps) != 1 || deps[0].User != alice || deps[0].Amount != wei.FromETH(3) {
		t.Fatalf("deposits = %+v", deps)
	}
	if len(orsc.DrainDeposits()) != 0 {
		t.Fatal("DrainDeposits did not clear the queue")
	}
	if err := orsc.Deposit(alice, 0); !errors.Is(err, ErrBadDeposit) {
		t.Fatalf("zero deposit = %v", err)
	}
	if err := orsc.Deposit(alice, wei.FromETH(100)); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("over-deposit = %v", err)
	}
}

func TestRegistrationRules(t *testing.T) {
	_, orsc := newFixture(t)
	if err := orsc.RegisterAggregator(agg, 1); !errors.Is(err, ErrAlreadyBonded) {
		t.Fatalf("double registration = %v", err)
	}
	broke := chainid.AggregatorAddress(9)
	if err := orsc.RegisterAggregator(broke, wei.FromETH(1)); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("unfunded registration = %v", err)
	}
	if got := orsc.AggregatorBond(agg); got != wei.FromETH(5) {
		t.Fatalf("bond = %s", got)
	}
}

func TestSubmitBatchRequiresRegistration(t *testing.T) {
	_, orsc := newFixture(t)
	if _, err := orsc.SubmitBatch(chainid.AggregatorAddress(9), sampleBatchSeq(), chainid.Hash{}, trueRoot); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unregistered submit = %v", err)
	}
}

func TestBatchFinalizationAfterChallengeWindow(t *testing.T) {
	chain, orsc := newFixture(t)
	heightBefore := chain.Height()
	b, err := orsc.SubmitBatch(agg, sampleBatchSeq(), chainid.Hash{}, trueRoot)
	if err != nil {
		t.Fatal(err)
	}
	// Challenge period is 2 rounds: rounds 1 and 2 keep it pending.
	if anchors := orsc.AdvanceRound(); anchors != nil {
		t.Fatal("finalized inside the challenge window")
	}
	if anchors := orsc.AdvanceRound(); anchors != nil {
		t.Fatal("finalized at the deadline round")
	}
	anchors := orsc.AdvanceRound()
	if len(anchors) != 1 {
		t.Fatalf("anchors = %v", anchors)
	}
	if b.Status != BatchFinalized {
		t.Fatalf("batch status = %v", b.Status)
	}
	if anchors[0].StateIndex != 115_001 {
		t.Fatalf("state index = %d, want 115001", anchors[0].StateIndex)
	}
	if chain.Height() != heightBefore+1 {
		t.Fatal("finalization did not append an L1 block")
	}
	if got := chain.Head().Anchors[0].Sequence; got != sampleBatchSeq().Hash() {
		t.Fatalf("anchored sequence hash = %s", got)
	}
}

func TestSuccessfulChallengeSlashesAggregator(t *testing.T) {
	chain, orsc := newFixture(t)
	forged := chainid.HashBytes([]byte("forged-root"))
	b, err := orsc.SubmitBatch(agg, sampleBatchSeq(), chainid.Hash{}, forged)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := orsc.Challenge(ver, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid challenge reported failure")
	}
	if b.Status != BatchReverted {
		t.Fatalf("batch status = %v, want reverted", b.Status)
	}
	if orsc.AggregatorBond(agg) != 0 {
		t.Fatal("aggregator bond not slashed")
	}
	// The verifier received the slashed bond on L1.
	if got := chain.Balance(ver); got != wei.FromETH(10) {
		t.Fatalf("verifier balance = %s, want 10 (5 free + 5 slashed)", got)
	}
	// Reverted batches never finalize.
	orsc.AdvanceRound()
	orsc.AdvanceRound()
	if anchors := orsc.AdvanceRound(); anchors != nil {
		t.Fatal("reverted batch finalized")
	}
}

func TestFrivolousChallengeSlashesVerifier(t *testing.T) {
	chain, orsc := newFixture(t)
	b, err := orsc.SubmitBatch(agg, sampleBatchSeq(), chainid.Hash{}, trueRoot)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := orsc.Challenge(ver, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("challenge of a valid batch reported success")
	}
	if orsc.VerifierBond(ver) != 0 {
		t.Fatal("verifier bond not slashed")
	}
	if got := chain.Balance(agg); got != wei.FromETH(10) {
		t.Fatalf("aggregator balance = %s, want 10", got)
	}
	if b.Status != BatchPending {
		t.Fatal("frivolous challenge changed batch status")
	}
}

func TestChallengeWindowEnforcement(t *testing.T) {
	_, orsc := newFixture(t)
	b, err := orsc.SubmitBatch(agg, sampleBatchSeq(), chainid.Hash{}, trueRoot)
	if err != nil {
		t.Fatal(err)
	}
	orsc.AdvanceRound()
	orsc.AdvanceRound()
	orsc.AdvanceRound() // finalizes
	if _, err := orsc.Challenge(ver, b.ID); !errors.Is(err, ErrBatchClosed) {
		t.Fatalf("late challenge = %v", err)
	}
	if _, err := orsc.Challenge(ver, 99); !errors.Is(err, ErrUnknownBatch) {
		t.Fatalf("unknown batch challenge = %v", err)
	}
	if _, err := orsc.Challenge(chainid.VerifierAddress(9), b.ID); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unregistered challenger = %v", err)
	}
}

func TestPendingBatches(t *testing.T) {
	_, orsc := newFixture(t)
	if _, err := orsc.SubmitBatch(agg, sampleBatchSeq(), chainid.Hash{}, trueRoot); err != nil {
		t.Fatal(err)
	}
	if got := len(orsc.PendingBatches()); got != 1 {
		t.Fatalf("pending = %d", got)
	}
	orsc.AdvanceRound()
	orsc.AdvanceRound()
	orsc.AdvanceRound()
	if got := len(orsc.PendingBatches()); got != 0 {
		t.Fatalf("pending after finalization = %d", got)
	}
}
