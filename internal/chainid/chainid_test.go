package chainid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeriveAddressDeterministic(t *testing.T) {
	a1 := DeriveAddress("user-7")
	a2 := DeriveAddress("user-7")
	if a1 != a2 {
		t.Fatal("DeriveAddress is not deterministic")
	}
	if a1 == DeriveAddress("user-8") {
		t.Fatal("distinct labels produced the same address")
	}
	if a1.IsZero() {
		t.Fatal("derived address is the zero address")
	}
}

func TestUserAggregatorVerifierNamespaces(t *testing.T) {
	// The same index in different roles must yield different addresses.
	if UserAddress(1) == AggregatorAddress(1) {
		t.Error("user and aggregator namespaces collide")
	}
	if AggregatorAddress(1) == VerifierAddress(1) {
		t.Error("aggregator and verifier namespaces collide")
	}
	seen := make(map[Address]bool)
	for i := 0; i < 100; i++ {
		for _, a := range []Address{UserAddress(i), AggregatorAddress(i), VerifierAddress(i)} {
			if seen[a] {
				t.Fatalf("address collision at index %d", i)
			}
			seen[a] = true
		}
	}
}

func TestHashBytesSegmentBoundaries(t *testing.T) {
	// Length prefixing must distinguish segment splits.
	h1 := HashBytes([]byte("ab"), []byte("c"))
	h2 := HashBytes([]byte("a"), []byte("bc"))
	if h1 == h2 {
		t.Fatal("segment boundary ambiguity: HashBytes(ab,c) == HashBytes(a,bc)")
	}
	if HashBytes() == (Hash{}) {
		t.Fatal("empty HashBytes should still be a real digest, not zero")
	}
}

func TestHashBytesDeterministic(t *testing.T) {
	f := func(a, b []byte) bool {
		return HashBytes(a, b) == HashBytes(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineHashesOrderSensitive(t *testing.T) {
	l := HashBytes([]byte("left"))
	r := HashBytes([]byte("right"))
	if CombineHashes(l, r) == CombineHashes(r, l) {
		t.Fatal("CombineHashes must be order-sensitive")
	}
}

func TestStringForms(t *testing.T) {
	a := DeriveAddress("alice")
	if !strings.HasPrefix(a.String(), "0x") || !strings.Contains(a.String(), "..") {
		t.Errorf("short address form %q malformed", a.String())
	}
	if len(a.Hex()) != 2+2*AddressLen {
		t.Errorf("Hex() length = %d", len(a.Hex()))
	}
	h := HashBytes([]byte("x"))
	if !strings.HasPrefix(h.String(), "0x") || !strings.Contains(h.String(), "..") {
		t.Errorf("short hash form %q malformed", h.String())
	}
	if len(h.Hex()) != 2+2*HashLen {
		t.Errorf("hash Hex() length = %d", len(h.Hex()))
	}
}

func TestZeroValues(t *testing.T) {
	var h Hash
	if !h.IsZero() {
		t.Error("zero hash not IsZero")
	}
	if !ZeroAddress.IsZero() {
		t.Error("ZeroAddress not IsZero")
	}
}

func TestContractAddressVariesWithNonce(t *testing.T) {
	d := DeriveAddress("deployer")
	if ContractAddress(d, 0) == ContractAddress(d, 1) {
		t.Error("contract address ignores nonce")
	}
	if ContractAddress(d, 0) == ContractAddress(DeriveAddress("other"), 0) {
		t.Error("contract address ignores deployer")
	}
}
