// Package chainid defines the primitive identity types shared by every layer
// of the PAROLE simulator: 20-byte addresses, 32-byte hashes, and the helpers
// that derive them deterministically.
//
// The real system hashes with Keccak-256; the Go standard library does not
// ship Keccak, so SHA-256 stands in. Nothing in the paper depends on the
// choice of hash function — only on hashes being collision-resistant
// commitments — so the substitution is behavior-preserving (see DESIGN.md §4).
package chainid

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// AddressLen is the byte length of an Address, matching Ethereum's 20 bytes.
const AddressLen = 20

// HashLen is the byte length of a Hash.
const HashLen = 32

// Address identifies an externally-owned account or a contract.
type Address [AddressLen]byte

// Hash is a 32-byte digest used for transaction ids, state roots, and block
// ids.
type Hash [HashLen]byte

// ZeroAddress is the null address; transfers from it denote mints in event
// logs, following the ERC-721 convention.
var ZeroAddress Address

// String renders the address as 0x-prefixed hex, shortened for logs.
func (a Address) String() string {
	h := hex.EncodeToString(a[:])
	return "0x" + h[:6] + ".." + h[len(h)-4:]
}

// Hex returns the full 0x-prefixed hex form of the address.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// IsZero reports whether the address is the null address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// String renders the hash as 0x-prefixed hex, shortened for logs, in the
// style of the paper's Table III ("0x8f56…").
func (h Hash) String() string {
	s := hex.EncodeToString(h[:])
	return "0x" + s[:6] + ".." + s[len(s)-4:]
}

// Hex returns the full 0x-prefixed hex form of the hash.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is all zeros.
func (h Hash) IsZero() bool { return h == Hash{} }

// HashBytes digests arbitrary byte segments into a Hash. Segments are
// length-prefixed before hashing so that ("ab","c") and ("a","bc") produce
// different digests.
func HashBytes(segments ...[]byte) Hash {
	d := sha256.New()
	var lenBuf [8]byte
	for _, s := range segments {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		d.Write(lenBuf[:])
		d.Write(s)
	}
	var h Hash
	copy(h[:], d.Sum(nil))
	return h
}

// CombineHashes computes the parent digest of two Merkle children.
func CombineHashes(left, right Hash) Hash {
	return HashBytes(left[:], right[:])
}

// DeriveAddress deterministically derives an address from a human-readable
// label, e.g. "user-7" or "aggregator-2". It is how the simulator creates
// account identities without key management.
func DeriveAddress(label string) Address {
	h := HashBytes([]byte("parole/address"), []byte(label))
	var a Address
	copy(a[:], h[:AddressLen])
	return a
}

// UserAddress returns the address of the k-th simulated rollup user,
// following the paper's U_k notation.
func UserAddress(k int) Address {
	return DeriveAddress(fmt.Sprintf("user-%d", k))
}

// AggregatorAddress returns the address of the k-th rollup aggregator (A_k).
func AggregatorAddress(k int) Address {
	return DeriveAddress(fmt.Sprintf("aggregator-%d", k))
}

// VerifierAddress returns the address of the k-th rollup verifier (V_k).
func VerifierAddress(k int) Address {
	return DeriveAddress(fmt.Sprintf("verifier-%d", k))
}

// ContractAddress derives a contract address from a deployer and nonce, in
// the spirit of CREATE.
func ContractAddress(deployer Address, nonce uint64) Address {
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	h := HashBytes([]byte("parole/contract"), deployer[:], nb[:])
	var a Address
	copy(a[:], h[:AddressLen])
	return a
}
