package rpc

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parole/internal/telemetry"
)

func TestLifecycleTransitions(t *testing.T) {
	lc := NewLifecycle()
	if lc.State() != StateStarting {
		t.Fatalf("fresh lifecycle = %v, want starting", lc.State())
	}
	lc.Ready()
	if lc.State() != StateReady || lc.State().String() != "ok" {
		t.Fatalf("after Ready = %v", lc.State())
	}
	lc.Draining()
	if lc.State() != StateDraining {
		t.Fatalf("after Draining = %v", lc.State())
	}
	// Forward-only: a late Ready must not resurrect a draining node.
	lc.Ready()
	if lc.State() != StateDraining {
		t.Fatalf("Ready resurrected a draining node: %v", lc.State())
	}
	if lc.Uptime() < 0 {
		t.Fatalf("uptime = %v, want >= 0", lc.Uptime())
	}
}

// newObsEnv is a test env served through NodeMux with an explicit lifecycle
// and a live collector — the full parole-node wiring.
func newObsEnv(t *testing.T) (*testEnv, *Lifecycle, *telemetry.Collector) {
	t.Helper()
	lc := NewLifecycle()
	col := telemetry.NewCollector(telemetry.Default(), 8)
	env := newTestEnv(t, Config{EnableFaucet: true, Lifecycle: lc, Collector: col})
	ts := httptest.NewServer(NodeMux(env.server))
	t.Cleanup(ts.Close)
	env.client = NewClient(ts.URL)
	return env, lc, col
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestNodeMuxEndpoints(t *testing.T) {
	env, lc, _ := newObsEnv(t)
	base := env.client.URL

	t.Run("readyz gates on lifecycle", func(t *testing.T) {
		if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
			t.Fatalf("starting readyz = %d %q, want 503 starting", code, body)
		}
		lc.Ready()
		if code, body := get(t, base+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
			t.Fatalf("ready readyz = %d %q, want 200 ok", code, body)
		}
	})
	t.Run("healthz always 200", func(t *testing.T) {
		code, body := get(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz = %d, want 200", code)
		}
		if !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, "uptimeSeconds") {
			t.Fatalf("healthz body = %q", body)
		}
	})
	t.Run("health reports lifecycle status and fractional uptime", func(t *testing.T) {
		var h Health
		env.call(t, "parole_health", &h)
		if h.Status != "ok" {
			t.Fatalf("status = %q, want ok", h.Status)
		}
		if h.UptimeSeconds <= 0 {
			t.Fatalf("uptimeSeconds = %v, want > 0 (fractional)", h.UptimeSeconds)
		}
	})
	t.Run("metrics serves prometheus text", func(t *testing.T) {
		// Generate some traffic so rpc.requests exists.
		env.call(t, "parole_stateRoot", new(string))
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("Content-Type = %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		for _, want := range []string{"# TYPE rpc_requests_total counter", "rpc_requests_total "} {
			if !strings.Contains(string(body), want) {
				t.Fatalf("exposition missing %q", want)
			}
		}
	})
	t.Run("json-rpc still served at root", func(t *testing.T) {
		var v string
		env.call(t, "web3_clientVersion", &v)
		if v != ClientVersion {
			t.Fatalf("clientVersion through mux = %q", v)
		}
	})
	t.Run("draining flips readyz and health", func(t *testing.T) {
		lc.Draining()
		if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Fatalf("draining readyz = %d %q, want 503 draining", code, body)
		}
		var h Health
		env.call(t, "parole_health", &h)
		if h.Status != "draining" {
			t.Fatalf("draining health status = %q", h.Status)
		}
	})
}

func TestMetricsDeltaWithCollector(t *testing.T) {
	env, lc, col := newObsEnv(t)
	lc.Ready()

	// Baseline tick, traffic, then a completed window.
	now := time.Now()
	col.Tick(now)
	env.call(t, "parole_stateRoot", new(string))
	env.call(t, "parole_stateRoot", new(string))
	col.Tick(now.Add(time.Second))

	var d MetricsDelta
	env.call(t, "parole_metricsDelta", &d, 5)
	if !d.Enabled {
		t.Fatal("collector configured, enabled must be true")
	}
	if len(d.Windows) != 1 {
		t.Fatalf("windows = %d, want 1", len(d.Windows))
	}
	w := d.Windows[0]
	// At least the two stateRoot calls landed in the window (the delta call
	// itself arrives after the tick).
	if w.Counters["rpc.requests"] < 2 {
		t.Fatalf("rpc.requests delta = %d, want >= 2", w.Counters["rpc.requests"])
	}
	if len(d.Mempool.ShardDepths) == 0 {
		t.Fatal("mempool shard depths missing")
	}
	sum := 0
	for _, s := range d.Mempool.ShardDepths {
		sum += s
	}
	if sum != d.Mempool.Pending {
		t.Fatalf("shard depths sum %d != pending %d", sum, d.Mempool.Pending)
	}

	t.Run("rejects negative n", func(t *testing.T) {
		err := env.client.Call(context.Background(), "parole_metricsDelta", nil, -1)
		rpcErr, ok := err.(*Error)
		if !ok || rpcErr.Code != CodeInvalidParams {
			t.Fatalf("err = %v, want invalid-params", err)
		}
	})
}

func TestSlowRequestInstrumentation(t *testing.T) {
	// SlowRequest: 1ns makes every request slow; the counter must move and
	// the per-method timer must exist for registered methods only.
	prevTimers := telemetry.Default().TimersEnabled()
	telemetry.Default().EnableTimers(true)
	defer telemetry.Default().EnableTimers(prevTimers)

	lc := NewLifecycle()
	lc.Ready()
	env := newTestEnv(t, Config{Lifecycle: lc, SlowRequest: time.Nanosecond})
	before := telemetry.Default().Counter("rpc.requests.slow").Value()
	env.call(t, "parole_stateRoot", new(string))
	if got := telemetry.Default().Counter("rpc.requests.slow").Value(); got <= before {
		t.Fatalf("slow counter = %d, want > %d", got, before)
	}
	snap := telemetry.Default().Snapshot()
	if _, ok := snap.Get("rpc.method.time.parole_stateRoot"); !ok {
		t.Fatal("per-method timer missing for a registered method")
	}
	// Unknown methods must not mint unbounded per-method series.
	_ = env.client.Call(context.Background(), "parole_junkMethod", nil)
	snap = telemetry.Default().Snapshot()
	if _, ok := snap.Get("rpc.method.time.parole_junkMethod"); ok {
		t.Fatal("per-method timer minted for an unregistered method (cardinality leak)")
	}
}
