package rpc

import (
	"context"
	"testing"
	"time"
)

func TestSequencerSealCommitsAndFinalizes(t *testing.T) {
	env := newTestEnv(t, Config{})

	// Two mints pending → one sealed batch of two.
	for id := uint64(1); id <= 2; id++ {
		env.call(t, "parole_sendTransaction", nil, SendTxParams{
			Kind: "mint", Token: env.collection.Hex(), TokenID: id,
			From: env.users[int(id)].Hex(), BaseFee: 5,
		})
	}
	info, err := env.seq.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.BatchID != 0 || info.TxCount != 2 || info.Executed != 2 {
		t.Fatalf("Seal() = %+v, want batch 0 with 2 executed txs", info)
	}
	if info.PostRoot != env.node.L2Root().Hex() {
		t.Fatalf("SealInfo root %s != node root %s", info.PostRoot, env.node.L2Root().Hex())
	}

	// An empty seal still advances the round so the batch finalizes after
	// the challenge period (1 round in the test env).
	empty, err := env.seq.Seal()
	if err != nil || empty != nil {
		t.Fatalf("empty Seal() = %+v, %v; want nil, nil", empty, err)
	}
	_, finalized, reverted := env.node.BatchStatusCounts()
	if finalized != 1 || reverted != 0 {
		t.Fatalf("finalized=%d reverted=%d, want 1/0", finalized, reverted)
	}

	sealed, txs, last := env.seq.Stats()
	if sealed != 1 || txs != 2 || last.IsZero() {
		t.Fatalf("Stats() = %d batches, %d txs, last %v; want 1, 2, non-zero", sealed, txs, last)
	}
}

func TestSequencerRunLoop(t *testing.T) {
	env := newTestEnvInterval(t, Config{}, 2*time.Millisecond)
	env.call(t, "parole_sendTransaction", nil, SendTxParams{
		Kind: "mint", Token: env.collection.Hex(), TokenID: 1,
		From: env.users[0].Hex(), BaseFee: 5,
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { env.seq.Run(ctx); close(done) }()

	deadline := time.After(5 * time.Second)
	for env.node.BatchCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("sequencer loop never committed a batch")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if sealed, txs, _ := env.seq.Stats(); sealed == 0 || txs != 1 {
		t.Fatalf("Stats() = %d batches, %d txs; want >0 batches carrying 1 tx", sealed, txs)
	}
}
