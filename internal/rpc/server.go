package rpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"parole/internal/logx"
	"parole/internal/rollup"
	"parole/internal/telemetry"
	"parole/internal/trace"
)

// Request-serving metrics (docs/METRICS.md §rpc).
var (
	mRequests     = telemetry.Default().Counter("rpc.requests")
	mErrors       = telemetry.Default().Counter("rpc.errors")
	mRequestTime  = telemetry.Default().Timer("rpc.request.time")
	mSlowRequests = telemetry.Default().Counter("rpc.requests.slow")
)

// rpcLog is the serving layer's structured logger (no-op until the binary
// configures logx).
var rpcLog = logx.Component("rpc")

// maxBodyBytes bounds a request body; a batch of parole transactions is a
// few hundred bytes, so 1 MiB leaves two orders of magnitude of headroom.
const maxBodyBytes = 1 << 20

// maxBatchRequests bounds a JSON-RPC batch array.
const maxBatchRequests = 256

// ClientVersion is the web3_clientVersion string served by the node.
const ClientVersion = "parole-node/v0.6.0/go"

// ChainID is the rollup's chain id (served by eth_chainId and net_version).
// 2024 is the paper's publication year — an arbitrary but stable constant.
const ChainID = 2024

// handler serves one method: decode+validate params from raw, act, return a
// JSON-marshalable result or an *Error.
type handler func(raw json.RawMessage) (any, *Error)

// Config parameterizes a Server.
type Config struct {
	// EnableFaucet switches parole_faucet on — the dev-mode credit that
	// load generators use to fund fresh accounts. Leave off for anything
	// shared.
	EnableFaucet bool
	// Lifecycle is the node's drain-aware run state, shared with the
	// binary's shutdown path. Nil builds a private lifecycle marked ready
	// immediately (tests, embedded servers).
	Lifecycle *Lifecycle
	// Collector is the windowed time-series ring parole_metricsDelta
	// serves. Nil leaves the method answering with enabled=false.
	Collector *telemetry.Collector
	// SlowRequest is the latency above which a dispatched request emits a
	// warn-level structured log line (and counts in rpc.requests.slow).
	// Zero disables slow-request logging.
	SlowRequest time.Duration
}

// Server is the JSON-RPC facade over one rollup deployment. It implements
// http.Handler and is safe for concurrent use: every backend touch goes
// through rollup.Node's locked methods or the Sequencer's own mutex.
type Server struct {
	node *rollup.Node
	seq  *Sequencer
	cfg  Config

	lifecycle *Lifecycle

	mu      sync.RWMutex
	methods map[string]handler
}

// NewServer builds a server over node. seq may be nil (no sequencer-backed
// methods advertise state then); pass the sequencer that drives the node so
// parole_sealBatch and parole_health can reach it.
func NewServer(node *rollup.Node, seq *Sequencer, cfg Config) *Server {
	lc := cfg.Lifecycle
	if lc == nil {
		// No binary-managed lifecycle: serve immediately (tests, embedded
		// servers) — the historical "always ok" behavior.
		lc = NewLifecycle()
		lc.Ready()
	}
	s := &Server{
		node:      node,
		seq:       seq,
		cfg:       cfg,
		lifecycle: lc,
		methods:   make(map[string]handler),
	}
	s.registerAll()
	return s
}

// register installs a method handler. Registration happens once in
// NewServer; the write lock keeps the registry safe for tests that probe it
// concurrently.
func (s *Server) register(name string, h handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.methods[name]; dup {
		panic(fmt.Sprintf("rpc: duplicate method %q", name))
	}
	s.methods[name] = h
}

// MethodNames returns every registered method, sorted. The docs drift test
// and the e2e coverage guard both enumerate this.
func (s *Server) MethodNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.methods))
	for name := range s.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP implements http.Handler: POST a JSON-RPC 2.0 request (single
// object or batch array) to any path.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "parole-node speaks JSON-RPC 2.0 over POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeJSON(w, newResponse(nil, nil, Errorf(CodeInvalidRequest, "read body: %v", err)))
		return
	}
	if len(body) > maxBodyBytes {
		writeJSON(w, newResponse(nil, nil, Errorf(CodeInvalidRequest, "body exceeds %d bytes", maxBodyBytes)))
		return
	}
	if isBatch(body) {
		s.serveBatch(w, body)
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, newResponse(nil, nil, Errorf(CodeParse, "parse request: %v", err)))
		return
	}
	writeJSON(w, s.dispatch(&req))
}

// serveBatch handles a JSON-RPC batch array: one response per request, in
// order.
func (s *Server) serveBatch(w http.ResponseWriter, body []byte) {
	var reqs []Request
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeJSON(w, newResponse(nil, nil, Errorf(CodeParse, "parse batch: %v", err)))
		return
	}
	if len(reqs) == 0 {
		writeJSON(w, newResponse(nil, nil, Errorf(CodeInvalidRequest, "empty batch")))
		return
	}
	if len(reqs) > maxBatchRequests {
		writeJSON(w, newResponse(nil, nil, Errorf(CodeInvalidRequest, "batch exceeds %d requests", maxBatchRequests)))
		return
	}
	resps := make([]Response, len(reqs))
	for i := range reqs {
		resps[i] = s.dispatch(&reqs[i])
	}
	writeJSON(w, resps)
}

// dispatch validates the envelope, looks the method up, and runs it. Every
// request counts in rpc.requests; every error response counts in
// rpc.errors; the whole dispatch is timed (aggregate and per-method) and
// traced, and anything slower than Config.SlowRequest logs a warning.
func (s *Server) dispatch(req *Request) Response {
	mRequests.Inc()
	start := time.Now()
	sp := trace.StartSpan(trace.SpanRPCRequest, trace.Str("method", req.Method))
	resp := s.dispatchInner(req)
	sp.SetAttr(trace.Bool("ok", resp.Err == nil))
	sp.End()
	elapsed := time.Since(start)
	mRequestTime.ObserveDuration(elapsed)
	s.observeMethod(req.Method, elapsed, resp.Err)
	if resp.Err != nil {
		mErrors.Inc()
	}
	return resp
}

// observeMethod records the per-method latency histogram and the
// slow-request log line. Only registered method names mint timers —
// arbitrary junk from clients must not grow the metric namespace.
func (s *Server) observeMethod(method string, elapsed time.Duration, rpcErr *Error) {
	s.mu.RLock()
	_, known := s.methods[method]
	s.mu.RUnlock()
	if known {
		telemetry.Default().Timer("rpc.method.time." + method).ObserveDuration(elapsed)
	}
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		mSlowRequests.Inc()
		fields := []logx.Field{
			logx.Str("method", method),
			logx.Dur("elapsed", elapsed),
			logx.Dur("threshold", s.cfg.SlowRequest),
		}
		if rpcErr != nil {
			fields = append(fields, logx.Int("code", rpcErr.Code))
		}
		rpcLog.Warn("slow request", fields...)
	}
}

func (s *Server) dispatchInner(req *Request) Response {
	if rpcErr := req.Validate(); rpcErr != nil {
		return newResponse(req.ID, nil, rpcErr)
	}
	s.mu.RLock()
	h, ok := s.methods[req.Method]
	s.mu.RUnlock()
	if !ok {
		return newResponse(req.ID, nil, Errorf(CodeMethodNotFound, "unknown method %q", req.Method))
	}
	result, rpcErr := h(req.Params)
	return newResponse(req.ID, result, rpcErr)
}

// isBatch reports whether the body's first non-space byte opens an array.
func isBatch(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			return true
		default:
			return false
		}
	}
	return false
}

// writeJSON encodes v as the HTTP response. JSON-RPC errors still ride on
// HTTP 200; only transport-level failures use other status codes.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
