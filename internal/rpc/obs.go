package rpc

// Live-observability surface of parole-node (docs/OBSERVABILITY.md):
//
//   - Lifecycle tracks the node through starting → ok → draining and is
//     what parole_health and /readyz report.
//   - NodeMux mounts the operational GET endpoints — /metrics (Prometheus
//     text exposition), /healthz, /readyz — beside the JSON-RPC handler.
//   - parole_metricsDelta (methods.go) serves the windowed time-series
//     ring that cmd/parole-top renders.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"parole/internal/logx"
	"parole/internal/telemetry"
)

// LifecycleState is one phase of the node's life.
type LifecycleState int32

// Lifecycle phases, in order. The JSON/health spellings are "starting",
// "ok", and "draining".
const (
	StateStarting LifecycleState = iota
	StateReady
	StateDraining
)

// String returns the health-status spelling.
func (s LifecycleState) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ok"
	case StateDraining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Lifecycle is the node's drain-aware run state: what /readyz gates on and
// what parole_health reports. Transitions are forward-only; a late Ready()
// never resurrects a draining node.
type Lifecycle struct {
	state atomic.Int32
	start time.Time
}

// NewLifecycle returns a lifecycle in StateStarting with the uptime clock
// running.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{start: time.Now()}
}

// Ready marks the node serving. No-op unless the node is still starting.
func (l *Lifecycle) Ready() {
	l.state.CompareAndSwap(int32(StateStarting), int32(StateReady))
}

// Draining marks the node shutting down; /readyz flips to 503 and
// parole_health reports "draining" while in-flight requests finish.
func (l *Lifecycle) Draining() {
	l.state.Store(int32(StateDraining))
}

// State returns the current phase.
func (l *Lifecycle) State() LifecycleState {
	return LifecycleState(l.state.Load())
}

// Uptime returns fractional seconds since the lifecycle was created.
func (l *Lifecycle) Uptime() float64 {
	return time.Since(l.start).Seconds()
}

// NodeMux mounts the JSON-RPC handler at / and the operational GET
// endpoints beside it:
//
//	GET /metrics — Prometheus text exposition of the telemetry registry
//	GET /healthz — liveness: 200 with a small JSON body in every state
//	GET /readyz  — readiness: 200 "ok" only in StateReady, else 503
//
// POSTs to / keep the exact JSON-RPC behavior of the bare Server handler.
func NodeMux(s *Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := telemetry.Default().Snapshot()
	if err := snap.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log.
		rpcLog.Error("prometheus exposition failed", logx.Err(err))
	}
}

// handleHealthz is the liveness probe: 200 as long as the process serves,
// with the lifecycle state and fractional uptime in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":        s.lifecycle.State().String(),
		"uptimeSeconds": s.lifecycle.Uptime(),
	})
}

// handleReadyz is the readiness probe: 200 "ok" only while the node accepts
// work; starting and draining answer 503 so load balancers and smoke tests
// route away during boot and drain.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.lifecycle.State()
	if st != StateReady {
		http.Error(w, st.String(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
