package rpc

import (
	"encoding/json"
	"testing"
)

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		code int // 0 = valid
	}{
		{"valid", Request{Version: "2.0", Method: "parole_health"}, 0},
		{"valid string id", Request{Version: "2.0", Method: "m", ID: json.RawMessage(`"abc"`)}, 0},
		{"valid null id", Request{Version: "2.0", Method: "m", ID: json.RawMessage(`null`)}, 0},
		{"wrong version", Request{Version: "1.0", Method: "m"}, CodeInvalidRequest},
		{"missing version", Request{Method: "m"}, CodeInvalidRequest},
		{"missing method", Request{Version: "2.0"}, CodeInvalidRequest},
		{"object id", Request{Version: "2.0", Method: "m", ID: json.RawMessage(`{"a":1}`)}, CodeInvalidRequest},
		{"array id", Request{Version: "2.0", Method: "m", ID: json.RawMessage(`[1]`)}, CodeInvalidRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.Validate()
			switch {
			case c.code == 0 && err != nil:
				t.Fatalf("Validate() = %v, want nil", err)
			case c.code != 0 && err == nil:
				t.Fatalf("Validate() = nil, want code %d", c.code)
			case c.code != 0 && err.Code != c.code:
				t.Fatalf("Validate() code = %d, want %d", err.Code, c.code)
			}
		})
	}
}

func TestDecodeParamsArity(t *testing.T) {
	var a string
	var b uint64

	// Two required, two given.
	if err := decodeParams(json.RawMessage(`["x", 7]`), 2, &a, &b); err != nil {
		t.Fatalf("decodeParams: %v", err)
	}
	if a != "x" || b != 7 {
		t.Fatalf("decoded (%q, %d), want (x, 7)", a, b)
	}

	// Optional trailing param omitted.
	if err := decodeParams(json.RawMessage(`["y"]`), 1, &a, &b); err != nil {
		t.Fatalf("optional param: %v", err)
	}

	// Missing params field entirely, zero required.
	if err := decodeParams(nil, 0); err != nil {
		t.Fatalf("no params: %v", err)
	}
	if err := decodeParams(json.RawMessage(`null`), 0); err != nil {
		t.Fatalf("null params: %v", err)
	}

	// Too few / too many / wrong shape / wrong type.
	for name, raw := range map[string]string{
		"too few":   `[]`,
		"too many":  `["a", 1, 2]`,
		"object":    `{"a":1}`,
		"bad type":  `[3, "not a number"]`,
		"bad value": `["ok", "nan"]`,
	} {
		if err := decodeParams(json.RawMessage(raw), 1, &a, &b); err == nil {
			t.Errorf("%s: decodeParams accepted %s", name, raw)
		} else if err.Code != CodeInvalidParams {
			t.Errorf("%s: code = %d, want %d", name, err.Code, CodeInvalidParams)
		}
	}
}

func TestNewResponseEchoesID(t *testing.T) {
	resp := newResponse(json.RawMessage(`"req-9"`), 42, nil)
	if string(resp.ID) != `"req-9"` {
		t.Fatalf("id = %s, want \"req-9\"", resp.ID)
	}
	if string(resp.Result) != "42" {
		t.Fatalf("result = %s, want 42", resp.Result)
	}
	if resp.Err != nil {
		t.Fatalf("unexpected error %v", resp.Err)
	}

	// A missing id becomes null, per spec.
	resp = newResponse(nil, nil, Errorf(CodeParse, "boom"))
	if string(resp.ID) != "null" {
		t.Fatalf("id = %s, want null", resp.ID)
	}
	if resp.Err == nil || resp.Err.Code != CodeParse {
		t.Fatalf("error = %v, want parse error", resp.Err)
	}
}

func TestIsBatch(t *testing.T) {
	if !isBatch([]byte("  \n\t[{}]")) {
		t.Error("leading whitespace before [ should be a batch")
	}
	if isBatch([]byte(`{"jsonrpc":"2.0"}`)) {
		t.Error("object is not a batch")
	}
	if isBatch(nil) {
		t.Error("empty body is not a batch")
	}
}

func TestParseAddressRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "0x", "0x12", "zz", "0x" + "12" + "34"} {
		if _, err := parseAddress(bad); err == nil {
			t.Errorf("parseAddress(%q) accepted", bad)
		}
	}
}
