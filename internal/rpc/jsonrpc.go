// Package rpc serves the PAROLE rollup over an Ethereum-style HTTP
// JSON-RPC facade — the layer that turns the library into a long-running
// service (cmd/parole-node).
//
// The package follows the shape of smartbch's rpc/api layer: a small
// JSON-RPC 2.0 envelope (this file), a method registry keyed by
// "namespace_method" names over a concurrency-safe backend (server.go,
// methods.go), and a background sequencer that seals mempool batches on a
// fixed interval (sequencer.go) — Bedrock's block cadence. Familiar
// read-side methods live in the eth_/net_/web3_ namespaces so standard
// tooling can poke the node; everything rollup-specific (ownership, batch
// and challenge status, admin introspection) lives under parole_.
//
// docs/RPC.md documents every registered method; a grep-based drift test
// (docs_test.go) keeps the two in sync in both directions.
package rpc

import (
	"encoding/json"
	"fmt"
)

// Version is the fixed JSON-RPC protocol version.
const Version = "2.0"

// JSON-RPC 2.0 error codes, plus the server-defined range used by the
// rollup backend. docs/RPC.md lists the full table.
const (
	// CodeParse means the request body was not valid JSON.
	CodeParse = -32700
	// CodeInvalidRequest means the envelope was malformed (wrong version,
	// bad id type, missing method).
	CodeInvalidRequest = -32600
	// CodeMethodNotFound means the method is not registered.
	CodeMethodNotFound = -32601
	// CodeInvalidParams means the params failed to decode or validate.
	CodeInvalidParams = -32602
	// CodeInternal means the handler itself failed unexpectedly.
	CodeInternal = -32603
	// CodeExecution means the rollup backend rejected the operation (e.g.
	// duplicate transaction, unknown token, insufficient balance).
	CodeExecution = -32000
	// CodeUnavailable means the method exists but is disabled on this node
	// (e.g. parole_faucet with the faucet switched off).
	CodeUnavailable = -32001
)

// Error is a JSON-RPC error object. It implements the error interface so
// handlers and the client can pass it through Go error plumbing.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

// Errorf builds an *Error with a formatted message.
func Errorf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Request is the JSON-RPC 2.0 request envelope. ID is kept raw so the
// response echoes numbers, strings, and null byte-for-byte.
type Request struct {
	Version string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// Validate checks the envelope (not the params) against the 2.0 spec subset
// the server accepts.
func (r *Request) Validate() *Error {
	if r.Version != Version {
		return Errorf(CodeInvalidRequest, "jsonrpc must be %q, got %q", Version, r.Version)
	}
	if r.Method == "" {
		return Errorf(CodeInvalidRequest, "missing method")
	}
	if len(r.ID) > 0 {
		// The id must be a number, a string, or null.
		switch r.ID[0] {
		case '{', '[':
			return Errorf(CodeInvalidRequest, "id must be a number, string, or null")
		}
	}
	return nil
}

// Response is the JSON-RPC 2.0 response envelope. Exactly one of Result and
// Err is set.
type Response struct {
	Version string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Err     *Error          `json:"error,omitempty"`
}

// newResponse wraps a handler outcome into a response for the given id.
func newResponse(id json.RawMessage, result any, rpcErr *Error) Response {
	if len(id) == 0 {
		id = json.RawMessage("null")
	}
	resp := Response{Version: Version, ID: id}
	if rpcErr != nil {
		resp.Err = rpcErr
		return resp
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Err = Errorf(CodeInternal, "marshal result: %v", err)
		return resp
	}
	resp.Result = raw
	return resp
}

// decodeParams unmarshals a positional-params array into dst pointers,
// enforcing arity between min and len(dst). A missing or null params field
// counts as zero arguments.
func decodeParams(raw json.RawMessage, min int, dst ...any) *Error {
	var args []json.RawMessage
	if len(raw) > 0 && string(raw) != "null" {
		if err := json.Unmarshal(raw, &args); err != nil {
			return Errorf(CodeInvalidParams, "params must be a positional array: %v", err)
		}
	}
	if len(args) < min || len(args) > len(dst) {
		return Errorf(CodeInvalidParams, "want %d to %d params, got %d", min, len(dst), len(args))
	}
	for i, arg := range args {
		if err := json.Unmarshal(arg, dst[i]); err != nil {
			return Errorf(CodeInvalidParams, "param %d: %v", i, err)
		}
	}
	return nil
}
