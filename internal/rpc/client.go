package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Client is a minimal JSON-RPC 2.0 client for parole-node — what
// cmd/parole-load and the e2e tests drive. It is safe for concurrent use.
type Client struct {
	// URL of the node's HTTP endpoint, e.g. "http://127.0.0.1:8547".
	URL string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client

	nextID atomic.Uint64
}

// NewClient returns a client for the given endpoint URL.
func NewClient(url string) *Client { return &Client{URL: url} }

// Call invokes method with positional params and unmarshals the result into
// result (which may be nil to discard it). A JSON-RPC error response is
// returned as an *Error; a malformed response (wrong version, mismatched
// id, missing body) is a plain error — the load generator counts those as
// protocol violations.
func (c *Client) Call(ctx context.Context, method string, result any, params ...any) error {
	id := c.nextID.Add(1)
	req := struct {
		Version string `json:"jsonrpc"`
		ID      uint64 `json:"id"`
		Method  string `json:"method"`
		Params  []any  `json:"params"`
	}{Version: Version, ID: id, Method: method, Params: params}
	if req.Params == nil {
		req.Params = []any{}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpc: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	httpResp, err := hc.Do(httpReq)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", method, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("rpc: %s: http status %d", method, httpResp.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("rpc: %s: malformed response: %w", method, err)
	}
	if resp.Version != Version {
		return fmt.Errorf("rpc: %s: malformed response: jsonrpc %q", method, resp.Version)
	}
	var gotID uint64
	if err := json.Unmarshal(resp.ID, &gotID); err != nil || gotID != id {
		return fmt.Errorf("rpc: %s: malformed response: id %s, want %d", method, resp.ID, id)
	}
	if resp.Err != nil {
		return resp.Err
	}
	if result == nil {
		return nil
	}
	if len(resp.Result) == 0 {
		resp.Result = json.RawMessage("null")
	}
	if err := json.Unmarshal(resp.Result, result); err != nil {
		return fmt.Errorf("rpc: %s: unmarshal result: %w", method, err)
	}
	return nil
}
