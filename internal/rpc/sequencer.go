package rpc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"parole/internal/chainid"
	"parole/internal/logx"
	"parole/internal/rollup"
	"parole/internal/telemetry"
	"parole/internal/trace"
	"parole/internal/tx"
	"parole/internal/wei"
)

// Sealing-loop metrics (docs/METRICS.md §node) and the sequencer's
// structured logger. node.seal.time is the seal-latency histogram the
// obs-smoke scrape and parole-top's p50/p99 read.
var (
	mSealTime    = telemetry.Default().Timer("node.seal.time")
	mSealBatches = telemetry.Default().Counter("node.seal.batches")
	mSealTxs     = telemetry.Default().Counter("node.seal.txs")

	seqLog = logx.Component("sequencer")
)

// SequencerConfig parameterizes the sealing loop.
type SequencerConfig struct {
	// Interval between sealing passes — Bedrock's fixed block cadence.
	// Zero defaults to 500ms.
	Interval time.Duration
	// BatchSize caps how many mempool transactions one batch collects (the
	// paper's mempool size N). Zero defaults to 50.
	BatchSize int
	// Bond posted when registering the aggregator on the ORSC. Zero
	// defaults to 10 ETH.
	Bond wei.Amount
}

// SealInfo summarizes one sealed batch for RPC consumers.
type SealInfo struct {
	BatchID  uint64 `json:"batchId"`
	TxCount  int    `json:"txCount"`
	Executed int    `json:"executed"`
	PostRoot string `json:"postRoot"`
}

// Sequencer is the node's honest block producer: on a fixed interval it
// collects the next fee-ordered batch from the mempool, commits it in
// exactly the collected order (no PAROLE reordering — this daemon is the
// victim infrastructure, not the adversary), and advances the ORSC round so
// expired batches finalize into L1 blocks. It is safe for concurrent use;
// Seal may be called directly (parole_sealBatch) while Run ticks.
type Sequencer struct {
	node *rollup.Node
	addr chainid.Address
	cfg  SequencerConfig

	mu        sync.Mutex
	sealed    uint64
	txsSealed uint64
	lastSeal  time.Time
}

// NewSequencer funds and bonds an aggregator account on the node's ORSC and
// returns the sealing loop around it.
func NewSequencer(node *rollup.Node, cfg SequencerConfig) (*Sequencer, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 50
	}
	if cfg.Bond <= 0 {
		cfg.Bond = wei.FromETH(10)
	}
	addr := chainid.AggregatorAddress(0)
	node.SetupAccount(addr, cfg.Bond)
	if err := node.ORSC().RegisterAggregator(addr, cfg.Bond); err != nil {
		return nil, fmt.Errorf("rpc: bond sequencer: %w", err)
	}
	return &Sequencer{node: node, addr: addr, cfg: cfg}, nil
}

// Address returns the sequencer's aggregator address.
func (q *Sequencer) Address() chainid.Address { return q.addr }

// Config returns the sealing parameters.
func (q *Sequencer) Config() SequencerConfig { return q.cfg }

// Run ticks the sealing loop until ctx is cancelled. Pending transactions
// left in the mempool at shutdown stay there (they were never acknowledged
// as sequenced — an RPC submission only promises admission).
func (q *Sequencer) Run(ctx context.Context) {
	ticker := time.NewTicker(q.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			// A tick always advances the round so already-submitted
			// batches finalize even when no new traffic arrives.
			_, _ = q.Seal()
		}
	}
}

// Seal runs one sealing pass: collect, commit in collected order, advance
// the round. It returns nil info when the mempool was empty.
func (q *Sequencer) Seal() (*SealInfo, error) {
	sp := trace.StartSpan(trace.SpanNodeSeal)
	defer sp.End()
	stopTimer := mSealTime.Start()
	defer stopTimer()
	batch, _ := q.node.Collect(q.cfg.BatchSize)
	if len(batch) == 0 {
		q.node.AdvanceRound()
		sp.SetAttr(trace.Int("txs", 0))
		return nil, nil
	}
	rec, res, err := q.node.CommitBatch(q.addr, batch, batch)
	if err != nil {
		// The batch was already drained from the pool; put it back so a
		// transient failure does not silently drop user transactions.
		q.requeue(batch)
		seqLog.Warn("seal failed, batch requeued",
			logx.Int("txs", len(batch)), logx.Err(err))
		return nil, fmt.Errorf("rpc: seal: %w", err)
	}
	q.node.AdvanceRound()
	q.mu.Lock()
	q.sealed++
	q.txsSealed += uint64(len(batch))
	q.lastSeal = time.Now()
	q.mu.Unlock()
	mSealBatches.Inc()
	mSealTxs.Add(int64(len(batch)))
	sp.SetAttr(trace.Int("txs", int64(len(batch))), trace.Int("batch", int64(rec.ID)))
	seqLog.Debug("batch sealed",
		logx.Uint64("batch", rec.ID),
		logx.Int("txs", len(batch)),
		logx.Int("executed", res.Executed),
		logx.Str("postRoot", res.PostRoot.Hex()))
	return &SealInfo{
		BatchID:  rec.ID,
		TxCount:  len(batch),
		Executed: res.Executed,
		PostRoot: res.PostRoot.Hex(),
	}, nil
}

// requeue re-admits a drained batch after a failed commit, best-effort
// (a concurrent resubmission winning the duplicate check is fine).
func (q *Sequencer) requeue(batch tx.Seq) {
	for _, t := range batch {
		_ = q.node.Pool().Add(t)
	}
}

// Stats reports how much the loop has sealed.
func (q *Sequencer) Stats() (sealed, txs uint64, lastSeal time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sealed, q.txsSealed, q.lastSeal
}
